package numamig_test

import (
	"bytes"
	"encoding/json"
	"fmt"

	"numamig"
	"numamig/internal/artifact"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/tenancy"
)

// ExampleSystem_Run demonstrates kernel next-touch: pages follow the
// thread that touches them after a migrate-on-next-touch mark.
func ExampleSystem_Run() {
	sys := numamig.New(numamig.Config{})
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 1<<20, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		nt := sys.NewKernelNT()
		if _, err := nt.Mark(t, buf.Region()); err != nil {
			panic(err)
		}
		t.MigrateTo(12) // node 3
		if err := buf.Access(t, numamig.Stream, false); err != nil {
			panic(err)
		}
		hist, _ := buf.NodeHistogram(t)
		fmt.Println(hist)
	})
	if err != nil {
		panic(err)
	}
	// Output: [0 0 0 256]
}

// ExampleManager shows the joint thread+data migration model of §3.4:
// the scheduler moves a thread and its workset follows lazily, with
// untouched pages never migrating.
func ExampleManager() {
	sys := numamig.New(numamig.Config{})
	mgr := sys.NewManager(numamig.LazyKernel, true)
	err := sys.Run(func(t *numamig.Task) {
		ws := numamig.MustAlloc(t, 64*numamig.PageSize, numamig.Bind(0))
		if err := ws.Prefault(t); err != nil {
			panic(err)
		}
		mgr.Attach(t, ws.Region())
		if err := mgr.MoveThread(t, 4); err != nil { // node 1
			panic(err)
		}
		// Touch only the first half.
		if err := t.AccessRange(ws.Base, ws.Size/2, numamig.Stream, false); err != nil {
			panic(err)
		}
		hist, _ := ws.NodeHistogram(t)
		fmt.Println(hist)
	})
	if err != nil {
		panic(err)
	}
	// Output: [32 32 0 0]
}

// ExampleSystem_EnableAutoNUMA demonstrates automatic NUMA balancing:
// no marks and no madvise — the scanner daemon and hinting faults
// discover the thread move and promote the pages toward it.
func ExampleSystem_EnableAutoNUMA() {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(numamig.AutoNUMAConfig{})
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 256*numamig.PageSize, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		t.MigrateTo(12) // node 3; the balancer must notice on its own
		for i := 0; i < 12; i++ {
			if err := buf.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
		}
		hist, _ := buf.NodeHistogram(t)
		fmt.Println(hist)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(bal.Stats.PagesPromoted > 0)
	// Output:
	// [0 0 0 256]
	// true
}

// ExampleSystem_EnableDemotion demonstrates the memory-tiering half:
// a node overcommitted past its watermarks sheds its cold pages
// through the kswapd-style daemons while a swept hot set survives.
func ExampleSystem_EnableDemotion() {
	sys := numamig.New(numamig.Config{
		Nodes:      2,
		MemPerNode: 1024 * numamig.PageSize,
		Demotion:   true, // or sys.EnableDemotion() after New
	})
	err := sys.Run(func(t *numamig.Task) {
		hot := numamig.MustAlloc(t, 64*numamig.PageSize, numamig.Bind(0))
		if err := hot.Prefault(t); err != nil {
			panic(err)
		}
		cold := numamig.MustAlloc(t, 1100*numamig.PageSize, numamig.Preferred(0))
		if err := cold.Prefault(t); err != nil {
			panic(err)
		}
		// Sweeping keeps the hot pages' accessed bits fresh across the
		// daemons' clock scans; the untouched cold set ages out.
		for i := 0; i < 40; i++ {
			if err := hot.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
		}
		hist, _ := hot.NodeHistogram(t)
		fmt.Println(hist[0] == 64)
	})
	if err != nil {
		panic(err)
	}
	st := sys.Stats()
	fmt.Println(st.PagesDemoted > 0, st.PromoteDemoteFlips)
	// Output:
	// true
	// true 0
}

// Example_tieredMemory configures an explicit CXL slow-memory tier —
// two DRAM nodes plus one expander node with its own bandwidth and
// latency class — and shows the tier contract: allocation never lands
// on CXL (the overcommitted first-touch spills across the DRAM tier
// instead), and the slow tier fills only by kswapd demoting the cold
// working set down (slow_tier_resident, read via SlowTierResident).
func Example_tieredMemory() {
	p := numamig.DefaultParams()
	p.TierClasses = []numamig.TierClass{{Name: "dram"}, numamig.CXLTier()}
	p.NodeTier = []int{0, 0, 1} // nodes 0,1 = DRAM; node 2 = CXL
	sys := numamig.New(numamig.Config{
		Nodes:      3,
		MemPerNode: 512 * numamig.PageSize,
		Demotion:   true,
		Params:     &p,
	})
	err := sys.Run(func(t *numamig.Task) {
		// Overcommit node 0: the spill crosses the DRAM tier, never CXL.
		cold := numamig.MustAlloc(t, 640*numamig.PageSize, numamig.Preferred(0))
		if err := cold.Prefault(t); err != nil {
			panic(err)
		}
		fmt.Println("on CXL after allocation:", sys.SlowTierResident())
		// Sweep a small hot set; the cold buffer ages out and kswapd
		// demotes it to the next tier down — the CXL node.
		hot := numamig.MustAlloc(t, 32*numamig.PageSize, numamig.Preferred(0))
		if err := hot.Prefault(t); err != nil {
			panic(err)
		}
		for i := 0; i < 60; i++ {
			if err := hot.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("demoted down to CXL:", sys.SlowTierResident() > 0)
	// Output:
	// on CXL after allocation: 0
	// demoted down to CXL: true
}

// Example_promoteRateLimit demonstrates
// Params.PromoteRateLimitMBps, the simulated
// numa_balancing_promote_rate_limit_MBps: cold pages are demoted to
// the CXL tier, the thread turns hot on them, and AutoNUMA promotion
// back to DRAM is throttled by the slow node's token bucket —
// Stats.PromoteRateLimited counts the dropped orders, which retry on
// later hinting faults.
func Example_promoteRateLimit() {
	run := func(mbps float64) (promoted, limited uint64) {
		p := numamig.DefaultParams()
		p.TierClasses = []numamig.TierClass{{Name: "dram"}, numamig.CXLTier()}
		p.NodeTier = []int{0, 0, 1}
		p.PromoteRateLimitMBps = mbps
		sys := numamig.New(numamig.Config{
			Nodes:      3,
			MemPerNode: 512 * numamig.PageSize,
			Demotion:   true,
			Params:     &p,
		})
		sys.EnableAutoNUMA(numamig.AutoNUMAConfig{})
		err := sys.Run(func(t *numamig.Task) {
			cold := numamig.MustAlloc(t, 640*numamig.PageSize, numamig.Preferred(0))
			if err := cold.Prefault(t); err != nil {
				panic(err)
			}
			hot := numamig.MustAlloc(t, 32*numamig.PageSize, numamig.Preferred(0))
			if err := hot.Prefault(t); err != nil {
				panic(err)
			}
			// Phase 1: the cold buffer demotes down to CXL.
			for i := 0; i < 60; i++ {
				if err := hot.Access(t, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
			// Phase 2: now it is hot — promotion pulls it back up,
			// against the token bucket.
			for i := 0; i < 30; i++ {
				if err := cold.Access(t, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			panic(err)
		}
		st := sys.Stats()
		return st.NumaPagesPromoted, st.PromoteRateLimited
	}
	freePromoted, freeLimited := run(0)
	ratePromoted, rateLimited := run(1)
	fmt.Println("unlimited run throttled:", freeLimited != 0)
	fmt.Println("limited run throttled:", rateLimited > 0)
	fmt.Println("limiter slowed promotion:", ratePromoted < freePromoted)
	// Output:
	// unlimited run throttled: false
	// limited run throttled: true
	// limiter slowed promotion: true
}

// Example_adaptiveRateLimit demonstrates the closed-loop promotion
// rate-limit controller (internal/control): instead of a fixed
// Params.PromoteRateLimitMBps, an in-sim daemon subscribes to the
// telemetry bus and widens the limit only while RateLimitDrop events
// show the token bucket is the bottleneck, decaying it back when
// demand stops. Starting from the floor, it holds only bandwidth the
// workload demonstrably asked for.
func Example_adaptiveRateLimit() {
	p := numamig.DefaultParams()
	p.TierClasses = []numamig.TierClass{{Name: "dram"}, numamig.CXLTier()}
	p.NodeTier = []int{0, 0, 1}
	sys := numamig.New(numamig.Config{
		Nodes:      3,
		MemPerNode: 512 * numamig.PageSize,
		Demotion:   true,
		Params:     &p,
	})
	sys.EnableAutoNUMA(numamig.AutoNUMAConfig{})
	ctrl := sys.EnableAdaptiveRateLimit(numamig.AdaptiveRateLimitConfig{})
	err := sys.Run(func(t *numamig.Task) {
		cold := numamig.MustAlloc(t, 640*numamig.PageSize, numamig.Preferred(0))
		if err := cold.Prefault(t); err != nil {
			panic(err)
		}
		hot := numamig.MustAlloc(t, 32*numamig.PageSize, numamig.Preferred(0))
		if err := hot.Prefault(t); err != nil {
			panic(err)
		}
		// Demote the cold buffer down to CXL, then turn hot on it so
		// promotion demand hits the controller's bucket.
		for i := 0; i < 60; i++ {
			if err := hot.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 30; i++ {
			if err := cold.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("controller ticked:", ctrl.Stats.Ticks > 0)
	fmt.Println("saw drops and widened:", ctrl.Stats.Drops > 0 && ctrl.Stats.Widens > 0)
	fmt.Println("peak above the floor:", ctrl.Stats.PeakMBps > 1)
	fmt.Println("still rate-limited:", sys.Stats().PromoteRateLimited > 0)
	// Output:
	// controller ticked: true
	// saw drops and widened: true
	// peak above the floor: true
	// still rate-limited: true
}

// Example_traceExport demonstrates the chrome-trace exporter: a
// telemetry.Recorder subscribed to the System's bus captures the full
// deterministic event stream, and WriteTrace renders it as JSON that
// chrome://tracing or Perfetto loads directly (numabench surfaces the
// same path as `-grid ... -scenario <id> -trace out.json`).
func Example_traceExport() {
	sys := numamig.New(numamig.Config{MemPerNode: 512 * numamig.PageSize})
	rec := telemetry.Record(sys.Bus())
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 64*numamig.PageSize, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if err := buf.MoveTo(t, 1, true); err != nil {
			panic(err)
		}
	})
	if err != nil {
		panic(err)
	}
	var out bytes.Buffer
	if err := rec.WriteTrace(&out); err != nil {
		panic(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &tf); err != nil {
		panic(err)
	}
	topics := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "M" { // skip process/thread metadata
			topics[ev.Name] = true
		}
	}
	fmt.Println("recorded events:", len(rec.Events) > 0)
	fmt.Println("faults in trace:", topics["PageFault"])
	fmt.Println("migration batch in trace:", topics["MigrateBatch"])
	// Output:
	// recorded events: true
	// faults in trace: true
	// migration batch in trace: true
}

// Example_multiTenantServe demonstrates the multi-tenant serving layer
// (internal/tenancy): a tenant admitted with a cgroup-style fast-tier
// cap has its over-cap faults redirected down the demotion path onto
// the CXL tier — never spilled across the DRAM tier, never a cap
// violation — and its ledger drains to zero once it unmaps and exits.
// The serve scenario family grids this machinery under an open-system
// arrival schedule with per-class SLO columns; see workload.Serve.
func Example_multiTenantServe() {
	p := numamig.DefaultParams()
	p.TierClasses = []numamig.TierClass{{Name: "dram"}, numamig.CXLTier()}
	p.NodeTier = []int{0, 0, 1} // nodes 0,1 = DRAM; node 2 = CXL
	sys := numamig.New(numamig.Config{
		Nodes:      3,
		MemPerNode: 512 * numamig.PageSize,
		Params:     &p,
	})
	ledger := sys.Kernel.Ten
	err := sys.Run(func(t *numamig.Task) {
		// Admit one latency-sensitive tenant capped at 64 fast pages,
		// then fault in a 128-page working set: the first 64 pages land
		// on DRAM, the rest are redirected down to the expander.
		ten := ledger.Admit(0, "tenant0", tenancy.ClassLatencySensitive, 64)
		pr := sys.Kernel.NewProcess("tenant0")
		pr.SetTenant(ten)
		wg := sim.NewWaitGroup(sys.Eng, 1)
		pr.Spawn("tenant0", 0, func(t *numamig.Task) {
			defer wg.Done()
			buf := numamig.MustAlloc(t, 128*numamig.PageSize, numamig.FirstTouch())
			if err := buf.Prefault(t); err != nil {
				panic(err)
			}
			fmt.Println("fast-tier resident at cap:", ten.FastResident())
			fmt.Println("redirected to CXL:", ten.Resident()-ten.FastResident())
			if err := buf.Free(t); err != nil {
				panic(err)
			}
		})
		wg.Wait(t.P)
		fmt.Println("drained at exit:", ledger.Exit(ten))
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cap violations:", ledger.CapViolations)
	// Output:
	// fast-tier resident at cap: 64
	// redirected to CXL: 64
	// drained at exit: 0
	// cap violations: 0
}

// ExampleSystem_Stats demonstrates reading the kernel and engine
// counters the experiment grid derives its columns from: pages moved,
// faults, syscalls, bytes copied between nodes.
func ExampleSystem_Stats() {
	sys := numamig.New(numamig.Config{})
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 128*numamig.PageSize, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if err := buf.MoveTo(t, 2, true); err != nil { // patched move_pages
			panic(err)
		}
	})
	if err != nil {
		panic(err)
	}
	st := sys.Stats()
	eng := sys.Migrator(numamig.Patched)
	fmt.Println(st.MovePagesCalls, st.MovePagesPages)
	fmt.Println(eng.Stats.PagesMoved, int(eng.Stats.BytesMoved)/numamig.PageSize)
	fmt.Println(sys.MigratedBytes() == eng.Stats.BytesMoved)
	// Output:
	// 1 128
	// 128 128
	// true
}

// ExampleUserNT shows the user-space implementation: one touch anywhere
// in a marked region migrates the whole region (the library knows the
// workset structure).
func ExampleUserNT() {
	sys := numamig.New(numamig.Config{})
	u := sys.NewUserNT(true) // patched move_pages
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 32*numamig.PageSize, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if err := u.Mark(t, buf.Region()); err != nil {
			panic(err)
		}
		t.MigrateTo(9) // node 2
		if err := t.Touch(buf.Base+17*numamig.PageSize, false); err != nil {
			panic(err)
		}
		hist, _ := buf.NodeHistogram(t)
		node, _ := u.Placement(buf.Base)
		fmt.Println(hist, node)
	})
	if err != nil {
		panic(err)
	}
	// Output: [0 0 32 0] 2
}

// Example_artifactCampaign runs a miniature paper-artifact campaign in
// memory: two fixed-seed repeats of the quick migration sweep on a
// 2-node machine, grouped statistics, and the patched-vs-unpatched
// speedup. Fixed-seed repeats are byte-identical replicas, so every
// cell's spread is exactly zero and the output is stable everywhere.
func Example_artifactCampaign() {
	cfg := artifact.Config{
		Schema:     artifact.ConfigSchema,
		Name:       "example",
		Families:   []string{"migration"},
		Quick:      true,
		Nodes:      []int{2},
		Repeats:    2,
		BaseSeed:   1,
		SeedPolicy: artifact.SeedFixed,
		Speedups: []artifact.SpeedupSpec{
			{Name: "pv", Metric: "mbps", Numer: "patched", Denom: "unpatched"},
		},
	}
	out, err := artifact.RunCampaign(cfg, artifact.RunOptions{Parallel: 4})
	if err != nil {
		panic(err)
	}
	an := out.Analysis
	c := an.CellByID("migration/patched/sync/p1024/n2")
	ms := c.Metric("mbps")
	fmt.Println(an.Scenarios, "cells x", cfg.Repeats, "repeats =", an.RowCount, "rows")
	fmt.Printf("%s: mean %.1f MB/s over %d repeats, std %.1f\n", c.ID, ms.Mean, ms.N, ms.Std)
	for _, sp := range an.Speedups {
		if sp.ID == c.ID {
			fmt.Printf("patched/unpatched at p1024: %.2fx\n", sp.Ratio)
		}
	}
	fmt.Println("max relative std:", an.MaxRelStd)
	// Output:
	// 10 cells x 2 repeats = 20 rows
	// migration/patched/sync/p1024/n2: mean 466.4 MB/s over 2 repeats, std 0.0
	// patched/unpatched at p1024: 1.58x
	// max relative std: 0
}
