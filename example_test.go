package numamig_test

import (
	"fmt"

	"numamig"
)

// ExampleSystem_Run demonstrates kernel next-touch: pages follow the
// thread that touches them after a migrate-on-next-touch mark.
func ExampleSystem_Run() {
	sys := numamig.New(numamig.Config{})
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 1<<20, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		nt := sys.NewKernelNT()
		if _, err := nt.Mark(t, buf.Region()); err != nil {
			panic(err)
		}
		t.MigrateTo(12) // node 3
		if err := buf.Access(t, numamig.Stream, false); err != nil {
			panic(err)
		}
		hist, _ := buf.NodeHistogram(t)
		fmt.Println(hist)
	})
	if err != nil {
		panic(err)
	}
	// Output: [0 0 0 256]
}

// ExampleManager shows the joint thread+data migration model of §3.4:
// the scheduler moves a thread and its workset follows lazily, with
// untouched pages never migrating.
func ExampleManager() {
	sys := numamig.New(numamig.Config{})
	mgr := sys.NewManager(numamig.LazyKernel, true)
	err := sys.Run(func(t *numamig.Task) {
		ws := numamig.MustAlloc(t, 64*numamig.PageSize, numamig.Bind(0))
		if err := ws.Prefault(t); err != nil {
			panic(err)
		}
		mgr.Attach(t, ws.Region())
		if err := mgr.MoveThread(t, 4); err != nil { // node 1
			panic(err)
		}
		// Touch only the first half.
		if err := t.AccessRange(ws.Base, ws.Size/2, numamig.Stream, false); err != nil {
			panic(err)
		}
		hist, _ := ws.NodeHistogram(t)
		fmt.Println(hist)
	})
	if err != nil {
		panic(err)
	}
	// Output: [32 32 0 0]
}

// ExampleUserNT shows the user-space implementation: one touch anywhere
// in a marked region migrates the whole region (the library knows the
// workset structure).
func ExampleUserNT() {
	sys := numamig.New(numamig.Config{})
	u := sys.NewUserNT(true) // patched move_pages
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, 32*numamig.PageSize, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if err := u.Mark(t, buf.Region()); err != nil {
			panic(err)
		}
		t.MigrateTo(9) // node 2
		if err := t.Touch(buf.Base+17*numamig.PageSize, false); err != nil {
			panic(err)
		}
		hist, _ := buf.NodeHistogram(t)
		node, _ := u.Placement(buf.Base)
		fmt.Println(hist, node)
	})
	if err != nil {
		panic(err)
	}
	// Output: [0 0 32 0] 2
}
