package numamig_test

import (
	"testing"

	numamig "numamig"
	"numamig/internal/exp"
	"numamig/internal/telemetry"
)

// mpScenarios expands the migration+pressure quick grid once per
// benchmark; expansion cost stays out of the measured loop.
func mpScenarios(b *testing.B) []exp.Scenario {
	b.Helper()
	scs, err := exp.Scenarios([]string{"migration", "pressure"}, exp.Options{Quick: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return scs
}

func runMP(b *testing.B, scs []exp.Scenario) {
	b.Helper()
	results := exp.Runner{Parallel: 1}.Run(scs)
	for _, r := range results {
		if r.Err != "" {
			b.Fatalf("scenario %s failed: %s", r.ID, r.Err)
		}
	}
}

// BenchmarkGridMP is the bus-off baseline: the migration+pressure
// quick grid, serial, no telemetry subscribers — every Publish takes
// the zero-subscriber early return.
func BenchmarkGridMP(b *testing.B) {
	scs := mpScenarios(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMP(b, scs)
	}
}

// BenchmarkGridMPBus is the same grid with every topic of every System
// subscribed. Comparing against BenchmarkGridMP bounds the bus's
// fully-lit overhead; the acceptance ceiling is 5%.
func BenchmarkGridMPBus(b *testing.B) {
	scs := mpScenarios(b)
	numamig.SetSystemObserver(func(sys *numamig.System) {
		events := 0
		sys.Bus().SubscribeAll(func(telemetry.Event) { events++ })
		_ = events
	})
	defer numamig.SetSystemObserver(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMP(b, scs)
	}
}
