// Package numamig is a library-level reproduction of
//
//	Goglin & Furmento, "Enabling High-Performance Memory Migration for
//	Multithreaded Applications on Linux", MTAAP/IPDPS 2009.
//
// It provides a deterministic discrete-event simulation of a cc-NUMA
// machine (by default the paper's 4-socket quad-core Opteron host) and of
// the Linux virtual-memory subsystem, on which the paper's contributions
// are implemented and measurable:
//
//   - the patched (linear) vs unpatched (quadratic) move_pages system
//     call;
//   - the user-space Next-touch policy (mprotect + SIGSEGV handler);
//   - the kernel Next-touch policy (madvise mark + fault-time migration);
//   - Lazy Migration and joint thread/data migration decisions.
//
// A minimal program:
//
//	sys := numamig.New(numamig.Config{})
//	err := sys.Run(func(t *numamig.Task) {
//	    buf, _ := numamig.Alloc(t, 1<<20, numamig.Bind(0))
//	    buf.Prefault(t)
//	    nt := sys.NewKernelNT()
//	    nt.Mark(t, buf.Region())
//	    t.MigrateTo(12)            // thread moves to node 3
//	    buf.Access(t, numamig.Stream, false) // pages follow it
//	})
//
// # Migration engine architecture
//
// All page movement runs through one batched per-node pipeline,
// internal/migrate.Engine — the single place in the repository where
// pages physically change nodes. The pipeline implements the paper's
// batching insight end to end: gather the requested pages into
// PTE-chunk batches, classify them under the chunk lock, charge
// isolation/control costs partially under the global LRU lock, rewrite
// the PTEs, bulk-copy once per (source, destination) node pair through
// the fluid-modelled migration channels, retry busy (pinned) pages with
// backoff, then flush the TLBs once. Two strategies share the pipeline
// behind one interface: Patched (the linear 2.6.29 implementation) and
// Unpatched (the quadratic pre-2.6.29 one). Every consumer is a thin
// shell over the engine:
//
//   - move_pages / migrate_pages / mbind(MPOL_MF_MOVE)  (internal/kern/syscalls.go)
//   - the kernel next-touch fault path                  (internal/kern/fault.go, access.go, rect.go)
//   - the user-space next-touch SIGSEGV handler         (internal/core/nexttouch.go)
//   - read-only page replication copies                 (internal/kern/replicate.go)
//   - 2 MiB huge-page moves (huge ops, one batch each)  (internal/kern/huge.go)
//   - AutoNUMA hinting-fault promotion                  (internal/kern/numahint.go)
//   - kswapd-style cold-page demotion                   (internal/kern/kswapd.go)
//
// # Placement layer and memory pressure
//
// internal/placement is the single placement-decision layer: every
// consumer that asks "which node gets this frame?" — first-touch fault
// allocation, the mempolicy paths (including weighted interleave),
// the migration engine's destination fallback, AutoNUMA promotion,
// and replica placement — resolves through one Placer built on
// distance-ordered zonelists and per-node min/low/high watermarks
// (stored in mem.Phys, fractions in model.Params). Allocation walks
// the target's zonelist in watermark passes like
// get_page_from_freelist: prefer nodes above their low watermark,
// retry down to min, then take any free frame — so allocation
// exhaustion (mem.ErrNoMemory) never surfaces to the application
// while the machine has room anywhere.
//
// On top sits a kswapd-style demotion subsystem
// (Config.Demotion / System.EnableDemotion): one daemon per node
// wakes periodically and, when its node has sunk to the low
// watermark, runs a clock-style cold-page scan and moves unreferenced
// pages off the node through the shared migration engine
// (PathDemotion) until it recovers above its high watermark.
// AutoNUMA coordinates with pressure: promotions into nodes at their
// low watermark are skipped (Balancer.Stats.PressureSkips), and a
// last-toucher filter requires two consecutive hinting faults from
// the same task before promoting, damping shared-page ping-pong. The
// pressure scenario family (overcommit x imbalance x policy x
// demotion) quantifies the interplay.
//
// # Memory tiering v1
//
// The demotion scan is temperature-aware and cooperates with
// promotion instead of fighting it:
//
//   - promotion hysteresis: every AutoNUMA promotion stamps the page
//     with the current kswapd scan-period generation; the scan skips
//     pages promoted within Params.PromotionHysteresisPeriods periods,
//     and a demotion within Params.FlipWindowPeriods of the promotion
//     counts a promote/demote flip (Stats.PromoteDemoteFlips);
//   - temperature tiers: pages unreferenced for one scan period (warm)
//     demote to the nearest unpressured distance group, pages
//     unreferenced for two or more (cold) to the farthest
//     (placement.DemotionTarget's two tiers, Stats.PagesDemotedCold);
//   - mempolicy nodemasks: strict-bind pages never demote outside
//     their node set (Stats.KswapdMaskSkips), like Linux reclaim;
//   - proactive trickle: between the low and high watermarks the
//     daemon demotes up to Params.KswapdProactiveBatch genuinely cold
//     pages per period, keeping headroom ahead of pressure.
//
// The tiering scenario family grids a rotating hot set against
// hysteresis on/off and shows the flip count collapsing to zero while
// locality holds.
//
// # Memory tiering v2: an explicit CXL slow-memory tier
//
// Params.NodeTier and Params.TierClasses turn the flat machine into
// explicit memory tiers: slow-tier nodes (simulated CXL expanders)
// run their memory controllers at a fraction of the DRAM rate and
// charge a latency multiplier on accesses to their resident data
// (CXLTier gives a representative class). The tier contract:
//
//   - slow memory is demotion-only for the allocator — zonelists
//     order by (tier, distance), the allocation walk never spills
//     onto a slower tier, mixed nodemasks lose their slow nodes, and
//     first-touch never resolves there; only an explicit all-slow
//     binding or kswapd demotion places pages on CXL;
//   - demotion prefers the next tier down (placement.DemotionTarget;
//     bottom-tier nodes demote only within their tier);
//   - AutoNUMA promotion out of a slow node is rate-limited by a
//     per-node token bucket (Params.PromoteRateLimitMBps, Linux's
//     numa_balancing_promote_rate_limit_MBps;
//     Stats.PromoteRateLimited counts dropped orders);
//   - allocation bursts that fall through the low-watermark pass
//     boost the target's watermarks (Params.WatermarkBoostFactor) so
//     kswapd wakes and demotes ahead of the next burst.
//
// The tiered scenario family grids DRAM:CXL capacity ratios against
// the rate limit and hysteresis; System.SlowTierResident reads the
// slow_tier_resident gauge.
//
// # Automatic NUMA balancing (AutoNUMA)
//
// internal/autonuma adds the transparent counterpart of the paper's
// explicit policies: the automatic NUMA balancing design Linux adopted
// afterwards. Enabling it on a System starts a per-process scanner
// daemon (a simulated kernel thread on the DES engine) that
// periodically arms PTE ranges with hinting marks (vm.PTENumaHint,
// protection stripped like change_prot_numa). The next touch of an
// armed page takes a hinting fault — hooked into the kernel fault
// paths — which restores access and feeds per-task x per-node fault
// statistics with exponential decay. Once a task's decayed fault count
// on a remote node passes a threshold, its pages there are promoted to
// the toucher's node; optionally the thread migrates toward its memory
// instead. All promotion runs through the shared migration engine
// (PathNumaHint, lazy channel), so pinned pages, busy retry and
// batching behave identically to the manual paths. The scan period
// adapts: remote faults shrink it, all-local windows back it off.
//
//	sys := numamig.New(numamig.Config{})
//	bal := sys.EnableAutoNUMA(autonuma.Config{})  // defaults from Params
//	err := sys.Run(func(t *numamig.Task) {
//	    buf := numamig.MustAlloc(t, 1<<22, numamig.Bind(0))
//	    buf.Prefault(t)
//	    t.MigrateTo(12)                    // no hints, no marks:
//	    for i := 0; i < 8; i++ {           // pages follow the faults
//	        buf.Access(t, numamig.Blocked, false)
//	    }
//	})
//	_ = bal.Stats.PagesPromoted
//
// # Experiment grid workflow
//
// internal/exp holds a registry of scenario families (the paper's
// patched/unpatched x sync/lazy-kernel/lazy-user x buffer-size x
// node-count grid, the replication extension, plus the autonuma family
// comparing manual against automatic placement on phase-shifting
// workloads) and a concurrent runner. Every scenario builds its own
// deterministic System, so the grid parallelizes perfectly and the
// same seeds always produce byte-identical output:
//
//	numabench -grid                         # full grid, aligned table
//	numabench -grid -quick -parallel 8      # trimmed grid, 8 workers
//	numabench -grid -format json > grid.json
//	numabench -grid -families autonuma -format csv
//	numabench -list                         # enumerate families
package numamig

import (
	"fmt"
	"sync/atomic"

	"numamig/internal/autonuma"
	"numamig/internal/control"
	"numamig/internal/core"
	"numamig/internal/kern"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/omp"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Re-exported simulation types. The aliases make the full internal
// capability surface (syscalls on Task, DES time, accounting) available
// to library users without importing internal packages.
type (
	// Task is a simulated thread; all system calls hang off it.
	Task = kern.Task
	// Process is a simulated process (address space + threads).
	Process = kern.Process
	// Kernel is the simulated operating system.
	Kernel = kern.Kernel
	// Machine is the static NUMA topology.
	Machine = topology.Machine
	// NodeID identifies a NUMA node.
	NodeID = topology.NodeID
	// CoreID identifies a core.
	CoreID = topology.CoreID
	// Addr is a simulated virtual address.
	Addr = vm.Addr
	// Policy is a NUMA allocation policy.
	Policy = vm.Policy
	// Prot is a protection mask.
	Prot = vm.Prot
	// Region is a byte range used by the next-touch APIs.
	Region = core.Region
	// UserNT is the user-space next-touch library.
	UserNT = core.UserNT
	// KernelNT is the kernel next-touch driver.
	KernelNT = core.KernelNT
	// Manager implements joint thread+data migration decisions.
	Manager = core.Manager
	// Mode selects how worksets follow threads (Sync, LazyKernel,
	// LazyUser).
	Mode = core.Mode
	// Team is an OpenMP-style thread team.
	Team = omp.Team
	// Time is virtual simulated time in nanoseconds.
	Time = sim.Time
	// Acct is a per-category cost account.
	Acct = sim.Acct
	// AccessKind describes a bulk access pattern.
	AccessKind = kern.AccessKind
	// Params carries the calibrated platform cost model.
	Params = model.Params
	// TierClass describes one memory tier's bandwidth/latency class
	// (Params.TierClasses; tier 0 is DRAM, higher tiers are slow
	// memory such as CXL expanders).
	TierClass = model.TierClass
	// SigInfo describes a delivered SIGSEGV.
	SigInfo = kern.SigInfo
	// Rect is a strided 2D region for block-granular fault/access.
	Rect = kern.Rect
	// Strategy selects the move_pages generation of the migration
	// engine (Patched or Unpatched).
	Strategy = migrate.Strategy
)

// Re-exported constants.
const (
	// Stream is a prefetch-friendly sequential access pattern.
	Stream = kern.Stream
	// Blocked is a reuse-heavy compute access pattern (full NUMA
	// penalty).
	Blocked = kern.Blocked
	// Sync migrates worksets synchronously on thread moves.
	Sync = core.Sync
	// LazyKernel marks worksets migrate-on-next-touch in the kernel.
	LazyKernel = core.LazyKernel
	// LazyUser marks worksets with the user-space next-touch library.
	LazyUser = core.LazyUser
	// PageSize is the simulated page size (4 KiB).
	PageSize = model.PageSize
	// ProtRW is read+write protection.
	ProtRW = vm.ProtRW
	// ProtRead is read-only protection.
	ProtRead = vm.ProtRead
	// ProtNone removes all access.
	ProtNone = vm.ProtNone
	// Patched is the paper's linear move_pages implementation.
	Patched = migrate.Patched
	// Unpatched is the quadratic pre-2.6.29 move_pages.
	Unpatched = migrate.Unpatched
)

// Madvise advice re-exports.
const (
	// AdvMigrateOnNextTouch marks pages migrate-on-next-touch (the
	// paper's new madvise parameter).
	AdvMigrateOnNextTouch = kern.AdvMigrateOnNextTouch
	// AdvNormal clears the mark.
	AdvNormal = kern.AdvNormal
)

// NewAcct creates an empty cost account for attaching to a task's proc.
func NewAcct() *Acct { return sim.NewAcct() }

// FromSeconds converts seconds to virtual time.
func FromSeconds(s float64) Time { return sim.FromSeconds(s) }

// StaticSchedule returns the GOMP-default static loop schedule.
func StaticSchedule() omp.Schedule { return omp.Static{} }

// StaticChunked returns a static schedule with an explicit chunk.
func StaticChunked(chunk int) omp.Schedule { return omp.Static{Chunk: chunk} }

// DynamicSchedule returns a dynamic (work-stealing style) schedule.
func DynamicSchedule(chunk int) omp.Schedule { return omp.Dynamic{Chunk: chunk} }

// CXLTier returns a representative CXL memory-expander tier class
// (~40% DRAM bandwidth, ~2.2x latency) for Params.TierClasses.
func CXLTier() TierClass { return model.CXLTier() }

// Policy constructors.
var (
	// FirstTouch allocates on the faulting thread's node.
	FirstTouch = vm.DefaultPolicy
	// Interleave round-robins pages over nodes.
	Interleave = vm.Interleave
	// Bind restricts allocation to the given nodes.
	Bind = vm.Bind
	// Preferred prefers one node with fallback.
	Preferred = vm.Preferred
	// WeightedInterleave distributes pages over nodes in proportion to
	// per-node weights (MPOL_WEIGHTED_INTERLEAVE).
	WeightedInterleave = vm.WeightedInterleave
)

// Config describes the simulated machine.
type Config struct {
	// Nodes is the NUMA node count (1..1024, built by topology.Grid);
	// 0 means the paper's host (4).
	Nodes int
	// CoresPerNode is cores per node; 0 means 4.
	CoresPerNode int
	// MemPerNode is bytes of memory per node; 0 means 8 GiB.
	MemPerNode int64
	// NodeMem overrides MemPerNode per node (index = node id; zero or
	// missing entries keep MemPerNode). Tiered machines use it to give
	// CXL expander nodes their own capacity.
	NodeMem []int64
	// L3PerNode is the per-socket shared cache; 0 means 2 MiB.
	L3PerNode int64
	// Backed allocates real bytes for every frame so data integrity can
	// be verified; keep false for large experiments.
	Backed bool
	// Seed drives all simulated randomness (default 1).
	Seed int64
	// Demotion starts the per-node kswapd-style demotion daemons: when
	// a node sinks to its low watermark, cold pages are demoted to the
	// least-pressured nearby node through the migration engine.
	Demotion bool
	// Machine, when non-nil, is a pre-built topology (e.g.
	// topology.Hierarchy) used instead of the topology.Grid the
	// Nodes/CoresPerNode/MemPerNode knobs would generate; those knobs
	// and NodeMem are ignored then.
	Machine *Machine
	// Params overrides the cost model; nil means model.Default().
	Params *Params
}

// System is a simulated machine with its kernel and one application
// process.
type System struct {
	Eng     *sim.Engine
	Machine *Machine
	Kernel  *Kernel
	Proc    *Process
}

// New builds a system from the config.
func New(cfg Config) *System {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 4
	}
	if cfg.MemPerNode == 0 {
		cfg.MemPerNode = 8 << 30
	}
	if cfg.L3PerNode == 0 {
		cfg.L3PerNode = 2 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := model.Default()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	eng := sim.NewEngine(cfg.Seed)
	m := cfg.Machine
	if m == nil {
		m = topology.Grid(cfg.Nodes, cfg.CoresPerNode, cfg.MemPerNode, cfg.L3PerNode)
		for i, b := range cfg.NodeMem {
			if i < len(m.Nodes) && b > 0 {
				m.Nodes[i].MemBytes = b
			}
		}
	}
	k := kern.New(eng, m, p, cfg.Backed)
	if cfg.Demotion {
		k.EnableDemotion()
	}
	s := &System{Eng: eng, Machine: m, Kernel: k, Proc: k.NewProcess("app")}
	if f := sysObserver.Load(); f != nil {
		(*f)(s)
	}
	return s
}

// sysObserver is the process-wide System construction hook
// (SetSystemObserver).
var sysObserver atomic.Pointer[func(*System)]

// SetSystemObserver installs f to be called with every System New
// constructs, before any simulated code runs — the attachment point for
// telemetry subscribers (trace recorders, event-log hashers, counters)
// on Systems built deep inside workloads or the experiment runner,
// without threading configuration through every layer. Pass nil to
// clear. f runs on whichever goroutine calls New, so it must be safe
// for concurrent calls when scenarios run in parallel; install or clear
// it only while no runner is active. The state each f invocation
// touches should be per-System (e.g. subscribers on sys.Bus()) — the
// bus itself must only be published from that System's simulated code.
func SetSystemObserver(f func(*System)) {
	if f == nil {
		sysObserver.Store(nil)
		return
	}
	sysObserver.Store(&f)
}

// EnableDemotion starts the per-node kswapd-style demotion daemons
// (idempotent; Config.Demotion does this at construction).
func (s *System) EnableDemotion() { s.Kernel.EnableDemotion() }

// Run spawns the application main thread on core 0 and executes the
// simulation to completion, returning the engine error (deadlock or
// panic) if any.
func (s *System) Run(main func(t *Task)) error {
	s.Proc.Spawn("main", 0, main)
	return s.Eng.Run()
}

// RunOn is Run with an explicit starting core.
func (s *System) RunOn(core CoreID, main func(t *Task)) error {
	s.Proc.Spawn("main", core, main)
	return s.Eng.Run()
}

// Now returns current virtual time.
func (s *System) Now() Time { return s.Eng.Now() }

// Bus returns the system's telemetry event bus (internal/telemetry):
// subscribe before Run to observe the typed event stream the kernel,
// migration engine and placement layer publish.
func (s *System) Bus() *telemetry.Bus { return s.Kernel.Bus() }

// AdaptiveRateLimitConfig tunes EnableAdaptiveRateLimit; the zero value
// selects the defaults documented on control.Config.
type AdaptiveRateLimitConfig = control.Config

// RateLimitController is the running adaptive-rate-limit daemon.
type RateLimitController = control.Controller

// EnableAdaptiveRateLimit starts the closed-loop promotion rate-limit
// controller (internal/control): a simulated daemon that widens
// Params.PromoteRateLimitMBps when the token bucket drops promotions
// and decays it when nothing wants promoting. Call before Run.
func (s *System) EnableAdaptiveRateLimit(cfg AdaptiveRateLimitConfig) *RateLimitController {
	return control.EnableAdaptiveRateLimit(s.Kernel, cfg)
}

// Stats returns the kernel statistics.
func (s *System) Stats() kern.Stats { return s.Kernel.Stats }

// SlowTierResident returns the pages currently resident on slow-tier
// (Params.NodeTier > 0, e.g. CXL) nodes — the slow_tier_resident gauge
// of the tiered scenario family. Zero on flat machines.
func (s *System) SlowTierResident() int64 { return s.Kernel.Phys.SlowTierResident() }

// Migrator returns the shared migration engine for a strategy; its
// Stats expose pipeline-level counters (pages moved, retries, busy
// pages, bytes copied).
func (s *System) Migrator(st Strategy) *migrate.Engine { return s.Kernel.Migrator(st) }

// MigratedBytes returns the bytes physically copied between nodes by
// both migration engines, for migrations and replications alike.
func (s *System) MigratedBytes() float64 {
	p := s.Kernel.Migrator(Patched).Stats
	u := s.Kernel.Migrator(Unpatched).Stats
	return p.BytesMoved + p.BytesReplicated + u.BytesMoved + u.BytesReplicated
}

// NewUserNT creates the user-space next-touch library for the app
// process (installing its SIGSEGV handler). patched selects the fixed
// move_pages.
func (s *System) NewUserNT(patched bool) *UserNT {
	return core.NewUserNT(s.Proc, patched)
}

// NewKernelNT creates the kernel next-touch driver.
func (s *System) NewKernelNT() *KernelNT { return core.NewKernelNT(s.Proc) }

// AutoNUMAConfig tunes EnableAutoNUMA; the zero value takes every knob
// from the system's Params (NumaScan*/NumaFault*).
type AutoNUMAConfig = autonuma.Config

// EnableAutoNUMA turns on automatic NUMA balancing for the app process:
// it registers the balancer's hinting-fault hook and starts the scanner
// daemon. No application hints are needed afterwards; pages (and, with
// cfg.FollowThreshold set, threads) follow the observed access pattern.
// The returned balancer exposes knobs and Stats.
func (s *System) EnableAutoNUMA(cfg AutoNUMAConfig) *autonuma.Balancer {
	return autonuma.Enable(s.Proc, cfg)
}

// NewManager creates a joint thread/data migration manager.
func (s *System) NewManager(mode Mode, patched bool) *Manager {
	return core.NewManager(s.Proc, mode, patched)
}

// TeamAll builds a team with one thread per core.
func (s *System) TeamAll() *Team { return omp.TeamAllCores(s.Proc) }

// TeamOn builds a team on the given cores.
func (s *System) TeamOn(cores ...CoreID) *Team { return omp.NewTeam(s.Proc, cores) }

// TeamOfNode builds a team over the cores of one node.
func (s *System) TeamOfNode(n NodeID) *Team {
	return omp.NewTeam(s.Proc, s.Machine.Nodes[n].Cores)
}

// Buffer is an allocated simulated memory range.
type Buffer struct {
	Base Addr
	Size int64
}

// Alloc maps an anonymous buffer with the given policy.
func Alloc(t *Task, size int64, pol Policy) (*Buffer, error) {
	a, err := t.Mmap(size, vm.ProtRW, pol, 0, "buffer")
	if err != nil {
		return nil, err
	}
	return &Buffer{Base: a, Size: size}, nil
}

// MustAlloc is Alloc that panics on error.
func MustAlloc(t *Task, size int64, pol Policy) *Buffer {
	b, err := Alloc(t, size, pol)
	if err != nil {
		panic(err)
	}
	return b
}

// Region returns the buffer as a next-touch region.
func (b *Buffer) Region() Region { return Region{Addr: b.Base, Len: b.Size} }

// Pages returns the page count.
func (b *Buffer) Pages() int { return vm.PagesIn(b.Base, b.Size) }

// Prefault populates every page (first-touch by the calling thread,
// honouring the buffer's policy).
func (b *Buffer) Prefault(t *Task) error {
	_, err := t.FaultIn(b.Base, b.Size, true)
	return err
}

// Access models the calling thread touching the whole buffer with the
// given pattern.
func (b *Buffer) Access(t *Task, kind AccessKind, write bool) error {
	return t.AccessRange(b.Base, b.Size, kind, write)
}

// MoveTo migrates all resident pages to a node with move_pages.
func (b *Buffer) MoveTo(t *Task, node NodeID, patched bool) error {
	_, err := t.MovePagesTo(b.Base, b.Size, node, patched)
	return err
}

// NodeHistogram counts resident pages per node (index = node id; -1
// entries, i.e. non-present pages, are reported in the second return).
// One bulk GetNodes query: a single syscall and mmap_sem round for the
// whole buffer.
func (b *Buffer) NodeHistogram(t *Task) ([]int, int) {
	hist := make([]int, t.K().M.NumNodes())
	absent := 0
	for _, n := range t.GetNodes(b.Base, b.Size) {
		if n < 0 {
			absent++
			continue
		}
		hist[n]++
	}
	return hist, absent
}

// Free unmaps the buffer.
func (b *Buffer) Free(t *Task) error { return t.Munmap(b.Base, b.Size) }

// String describes the buffer.
func (b *Buffer) String() string {
	return fmt.Sprintf("buffer[%#x +%d]", b.Base, b.Size)
}

// DefaultParams returns the calibrated cost model of the paper's host so
// callers can tweak individual constants.
func DefaultParams() Params { return model.Default() }
