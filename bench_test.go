package numamig_test

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates (a scaled version of) the corresponding
// artifact on the simulated platform and reports the paper's metric
// (MB/s for the migration microbenchmarks, simulated seconds for the
// applications) via b.ReportMetric. The full-scale sweeps live in
// cmd/numabench.

import (
	"fmt"
	"testing"

	"numamig/internal/kern"
	"numamig/internal/workload"
)

// BenchmarkFigure4 regenerates the synchronous migration / memcpy
// throughput comparison (Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	methods := []workload.MigMethod{
		workload.Memcpy,
		workload.MigratePages,
		workload.MovePagesPatched,
		workload.MovePagesUnpatched,
	}
	for _, m := range methods {
		for _, pages := range []int{256, 4096} {
			b.Run(fmt.Sprintf("%s/%dpages", m, pages), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					v, err := workload.SyncMigration(pages, m)
					if err != nil {
						b.Fatal(err)
					}
					mbps = v
				}
				b.ReportMetric(mbps, "simMB/s")
			})
		}
	}
}

// BenchmarkFigure5 regenerates the next-touch throughput comparison
// (Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	variants := []workload.NTVariant{
		workload.UserNTUnpatched, workload.UserNTPatched, workload.KernelNT,
	}
	for _, v := range variants {
		for _, pages := range []int{16, 1024} {
			b.Run(fmt.Sprintf("%s/%dpages", v, pages), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					r, _, err := workload.NextTouch(pages, v)
					if err != nil {
						b.Fatal(err)
					}
					mbps = r
				}
				b.ReportMetric(mbps, "simMB/s")
			})
		}
	}
}

// BenchmarkFigure6a regenerates the user-space next-touch cost breakdown
// (Fig. 6a), reporting the move_pages control share.
func BenchmarkFigure6a(b *testing.B) {
	for _, pages := range []int{16, 1024} {
		b.Run(fmt.Sprintf("%dpages", pages), func(b *testing.B) {
			var ctl, cp float64
			for i := 0; i < b.N; i++ {
				_, acct, err := workload.NextTouch(pages, workload.UserNTPatched)
				if err != nil {
					b.Fatal(err)
				}
				ctl = acct.Percent(kern.CatMovePagesCtl)
				cp = acct.Percent(kern.CatMovePagesCopy)
			}
			b.ReportMetric(ctl, "ctl%")
			b.ReportMetric(cp, "copy%")
		})
	}
}

// BenchmarkFigure6b regenerates the kernel next-touch cost breakdown
// (Fig. 6b).
func BenchmarkFigure6b(b *testing.B) {
	for _, pages := range []int{16, 1024} {
		b.Run(fmt.Sprintf("%dpages", pages), func(b *testing.B) {
			var ctl, cp float64
			for i := 0; i < b.N; i++ {
				_, acct, err := workload.NextTouch(pages, workload.KernelNT)
				if err != nil {
					b.Fatal(err)
				}
				ctl = acct.Percent(kern.CatNTCtl)
				cp = acct.Percent(kern.CatNTCopy)
			}
			b.ReportMetric(ctl, "ctl%")
			b.ReportMetric(cp, "copy%")
		})
	}
}

// BenchmarkFigure7 regenerates the threaded migration scaling study
// (Fig. 7).
func BenchmarkFigure7(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		name := "Sync"
		if lazy {
			name = "Lazy"
		}
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%dthreads", name, threads), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					v, err := workload.ThreadedMigration(16384, threads, lazy)
					if err != nil {
						b.Fatal(err)
					}
					mbps = v
				}
				b.ReportMetric(mbps, "simMB/s")
			})
		}
	}
}

// BenchmarkTable1 regenerates the LU factorization study (Table 1) at
// benchmark-friendly scale; full-scale rows run via `numabench -exp
// table1`.
func BenchmarkTable1(b *testing.B) {
	rows := []struct{ n, blk int }{
		{2048, 64}, {2048, 256}, {4096, 512},
	}
	for _, row := range rows {
		for _, pol := range []workload.LUPolicy{workload.LUStatic, workload.LUNextTouch} {
			b.Run(fmt.Sprintf("%dx%d/b%d/%s", row.n, row.n, row.blk, pol), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					r, err := workload.RunLU(workload.LUConfig{N: row.n, B: row.blk, Policy: pol})
					if err != nil {
						b.Fatal(err)
					}
					secs = r.Duration.Seconds()
				}
				b.ReportMetric(secs, "simSec")
			})
		}
	}
}

// BenchmarkFigure8 regenerates the 16-concurrent-BLAS3 study (Fig. 8).
func BenchmarkFigure8(b *testing.B) {
	policies := []workload.BLAS3Policy{
		workload.B3Static, workload.B3KernelNT, workload.B3UserNT,
	}
	for _, pol := range policies {
		for _, n := range []int{256, 512} {
			b.Run(fmt.Sprintf("%s/N%d", pol, n), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					d, err := workload.RunBLAS3(workload.BLAS3Config{N: n, Policy: pol})
					if err != nil {
						b.Fatal(err)
					}
					secs = d.Seconds()
				}
				b.ReportMetric(secs, "simSec")
			})
		}
	}
}

// BenchmarkBLAS1 regenerates the §4.5 BLAS1 non-result.
func BenchmarkBLAS1(b *testing.B) {
	for _, nt := range []bool{false, true} {
		name := "static"
		if nt {
			name = "next-touch"
		}
		b.Run(name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				d, err := workload.RunBLAS1(workload.BLAS1Config{N: 1 << 20, NextTouch: nt})
				if err != nil {
					b.Fatal(err)
				}
				secs = d.Seconds()
			}
			b.ReportMetric(secs, "simSec")
		})
	}
}
