package artifact

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// validConfig is the baseline every validation case perturbs.
func validConfig() Config {
	return Config{
		Schema:     ConfigSchema,
		Name:       "test-campaign",
		Families:   []string{"migration"},
		Quick:      true,
		Repeats:    2,
		BaseSeed:   1,
		SeedPolicy: SeedPerRepeat,
	}
}

func TestValidateAcceptsBaseline(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"wrong schema", func(c *Config) { c.Schema = "v0" }, "schema"},
		{"bad name", func(c *Config) { c.Name = "Bad Name!" }, "name"},
		{"no families", func(c *Config) { c.Families = nil }, "no scenario families"},
		{"unknown family", func(c *Config) { c.Families = []string{"warp-drive"} }, "unknown family"},
		{"duplicate family", func(c *Config) { c.Families = []string{"migration", "migration"} }, "duplicate family"},
		{"zero nodes", func(c *Config) { c.Nodes = []int{0} }, "node count"},
		{"negative cores", func(c *Config) { c.CoresPerNode = -1 }, "cores_per_node"},
		{"zero repeats", func(c *Config) { c.Repeats = 0 }, "repeats"},
		{"too many repeats", func(c *Config) { c.Repeats = MaxRepeats + 1 }, "repeats"},
		{"zero seed", func(c *Config) { c.BaseSeed = 0 }, "base_seed"},
		{"seed overflow", func(c *Config) { c.BaseSeed = math.MaxInt64 - SeedStride/2 }, "overflows"},
		{"unknown policy", func(c *Config) { c.SeedPolicy = "dice" }, "seed_policy"},
		{"tolerance too big", func(c *Config) { c.Tolerance = 1 }, "tolerance"},
		{"unknown metric", func(c *Config) { c.Metrics = []string{"vibes"} }, "unknown metric"},
		{"duplicate metric", func(c *Config) { c.Metrics = []string{"mbps", "mbps"} }, "duplicate metric"},
		{"non-metric column", func(c *Config) { c.Metrics = []string{"id"} }, "unknown metric"},
		{"table bad metric", func(c *Config) {
			c.Tables = []TableSpec{{Metric: "vibes", Rows: AxisPages, Cols: AxisNodes}}
		}, "unknown metric"},
		{"table metric out of scope", func(c *Config) {
			c.Metrics = []string{"faults"}
			c.Tables = []TableSpec{{Metric: "mbps", Rows: AxisPages, Cols: AxisNodes}}
		}, "not in the configured metrics"},
		{"table bad axis", func(c *Config) {
			c.Tables = []TableSpec{{Metric: "mbps", Rows: "moons", Cols: AxisNodes}}
		}, "rows axis"},
		{"table rows=cols", func(c *Config) {
			c.Tables = []TableSpec{{Metric: "mbps", Rows: AxisPages, Cols: AxisPages}}
		}, "rows and cols"},
		{"table split reuse", func(c *Config) {
			c.Tables = []TableSpec{{Metric: "mbps", Rows: AxisPages, Cols: AxisNodes, Split: AxisPages}}
		}, "split axis"},
		{"speedup bad name", func(c *Config) {
			c.Speedups = []SpeedupSpec{{Name: "Bad!", Metric: "mbps", Numer: "a", Denom: "b"}}
		}, "name"},
		{"speedup same tokens", func(c *Config) {
			c.Speedups = []SpeedupSpec{{Name: "s", Metric: "mbps", Numer: "a", Denom: "a"}}
		}, "distinct"},
		{"speedup slash token", func(c *Config) {
			c.Speedups = []SpeedupSpec{{Name: "s", Metric: "mbps", Numer: "a/b", Denom: "c"}}
		}, "single ID tokens"},
		{"duplicate speedup", func(c *Config) {
			c.Speedups = []SpeedupSpec{
				{Name: "s", Metric: "mbps", Numer: "a", Denom: "b"},
				{Name: "s", Metric: "mbps", Numer: "c", Denom: "d"},
			}
		}, "duplicate speedup"},
		{"unknown experiment", func(c *Config) { c.Experiments = []string{"fig99"} }, "unknown experiment"},
		{"unknown output", func(c *Config) { c.Outputs = []string{"pdf"} }, "unknown output"},
		{"figures without experiments", func(c *Config) { c.Outputs = []string{OutFigures} }, "requires at least one experiment"},
		{"duplicate output", func(c *Config) { c.Outputs = []string{OutCSV, OutCSV} }, "duplicate output"},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.frag)
		}
	}
}

func TestParseConfigRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := ParseConfig([]byte(`{"schema":"` + ConfigSchema + `","name":"x","families":["migration"],"repeats":1,"base_seed":1,"seed_policy":"fixed","bogus_knob":3}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseConfig([]byte(`{"schema":"` + ConfigSchema + `","name":"x","families":["migration"],"repeats":1,"base_seed":1,"seed_policy":"fixed"} {"second":true}`)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing document: err = %v", err)
	}
	if _, err := ParseConfig([]byte(`not json`)); err == nil {
		t.Error("junk accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := validConfig()
	cfg.Description = "round trip"
	cfg.Nodes = []int{2, 4}
	cfg.Tolerance = 0.05
	cfg.Metrics = []string{"mbps", "faults"}
	cfg.Tables = []TableSpec{{Title: "t", Metric: "mbps", Rows: AxisPages, Cols: AxisVariant, Split: AxisNodes}}
	cfg.Speedups = []SpeedupSpec{{Name: "pv", Metric: "mbps", Numer: "patched", Denom: "unpatched"}}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Errorf("round trip drifted:\n%s\n%s", data, again)
	}
}

func TestSeedForDerivation(t *testing.T) {
	fixed := validConfig()
	fixed.SeedPolicy, fixed.BaseSeed = SeedFixed, 7
	for r := 0; r < 3; r++ {
		if got := fixed.SeedFor(r); got != 7 {
			t.Errorf("fixed seed for repeat %d = %d, want 7", r, got)
		}
	}
	per := validConfig()
	per.BaseSeed = 5
	for r, want := range []int64{5, 5 + SeedStride, 5 + 2*SeedStride} {
		if got := per.SeedFor(r); got != want {
			t.Errorf("per-repeat seed for repeat %d = %d, want %d", r, got, want)
		}
	}
}

func TestEffectiveDefaults(t *testing.T) {
	cfg := validConfig()
	out := cfg.outputs()
	if !out[OutCSV] || !out[OutJSON] || !out[OutMD] || out[OutFigures] {
		t.Errorf("default outputs = %v", out)
	}
	cfg.Experiments = []string{"fig7"}
	if !cfg.outputs()[OutFigures] {
		t.Error("experiments configured but figures not in the default output set")
	}
	// The metric subset must come back in schema order, not config order.
	cfg.Metrics = []string{"faults", "mbps"}
	if got := cfg.metrics(); got[0] != "mbps" || got[1] != "faults" || len(got) != 2 {
		t.Errorf("metrics() = %v, want schema order [mbps faults]", got)
	}
	if tb := (&Config{}).tables(); len(tb) != 1 || tb[0].Metric != "mbps" || tb[0].Split != AxisNodes {
		t.Errorf("default tables = %+v", tb)
	}
}
