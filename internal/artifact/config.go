// Package artifact is the paper-artifact mode: a declarative
// experiment-campaign runner layered on internal/exp and
// internal/bench. A campaign is specified as data (a JSON Config):
// which scenario families to run, at which machine sizes, how many
// repeats, and how per-repeat seeds derive from the base seed. The
// runner executes the grid once per repeat, streams the per-repeat raw
// rows to CSV (schema = internal/exp.Columns(), the single grid-report
// column registry), then runs a grouped analysis pass — per-cell
// mean/std/min/max over every metric column plus declarative speedup
// ratios (e.g. patched vs unpatched) — and renders Fig. 7-style
// scaling tables as Markdown and machine-readable JSON.
//
// Everything derived is checkable: tools/artifactcheck re-parses the
// raw CSV, recomputes the analysis with this package, and byte-compares
// the rendered summary/tables against the committed artifacts, so a
// stale or hand-edited artifact fails CI. Because the simulator is
// deterministic in virtual time, rerunning a campaign with the same
// config produces byte-identical outputs at any parallelism.
package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strings"

	"numamig/internal/bench"
	"numamig/internal/exp"
	"numamig/internal/topology"
)

// ConfigSchema is the campaign-config schema identifier a Config must
// declare; bump it when the config shape changes incompatibly.
const ConfigSchema = "numamig-artifact/v1"

// SummarySchema identifies the rendered summary.json shape.
const SummarySchema = "numamig-artifact-summary/v1"

// SeedStride is the per-repeat seed spacing of the "per-repeat" seed
// policy: repeat r runs with BaseSeed + r*SeedStride. A large odd
// stride keeps repeat seeds of different campaigns from colliding when
// their base seeds are small consecutive integers.
const SeedStride = 1_000_003

// MaxRepeats bounds a campaign's repeat count; it exists so a typo in
// a config cannot queue an unbounded amount of work.
const MaxRepeats = 1024

// Seed policies.
const (
	// SeedFixed runs every repeat with the base seed: repeats are
	// byte-identical replicas, so per-cell std must be exactly 0.
	SeedFixed = "fixed"
	// SeedPerRepeat derives a distinct seed per repeat
	// (BaseSeed + r*SeedStride): repeats sample the simulator's seeded
	// randomness, so grouped means carry real spread.
	SeedPerRepeat = "per-repeat"
)

// Output artifact selectors for Config.Outputs.
const (
	OutCSV     = "csv"     // raw per-repeat rows (raw.csv)
	OutJSON    = "json"    // grouped analysis (summary.json)
	OutMD      = "md"      // Fig. 7-style scaling tables (tables.md)
	OutFigures = "figures" // classic bench figure/table text (figures.txt)
)

// Axis names a TableSpec can lay cells out by.
const (
	AxisPages   = "pages"   // the buffer-size axis (Result.Pages)
	AxisNodes   = "nodes"   // the machine-size axis (Result.Nodes)
	AxisVariant = "variant" // the scenario-ID tokens minus family/pages/nodes
	AxisFamily  = "family"  // the scenario family (first ID token)
)

// TableSpec declares one rendered scaling table: the metric shown, the
// axis enumerated down the rows, the axis spread across the columns,
// and optionally a third axis splitting the spec into one table per
// value (e.g. rows=pages, cols=variant, split=nodes reads as the
// paper's Figure 7 family of curves).
type TableSpec struct {
	Title  string `json:"title,omitempty"`
	Metric string `json:"metric"`
	Rows   string `json:"rows"`
	Cols   string `json:"cols"`
	Split  string `json:"split,omitempty"`
}

// SpeedupSpec declares one relative-speedup column: for every cell
// whose variant contains the Numer token, the ratio of its Metric mean
// to the cell with that token replaced by Denom (all other axes
// equal). Cells without a matching baseline are skipped — e.g. the
// migration family's lazy-kernel mode, which has no unpatched twin.
type SpeedupSpec struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	Numer  string `json:"numer"`
	Denom  string `json:"denom"`
}

// Config is a declarative experiment campaign. Families, machine
// sizes, repeat count and seed policy fully determine the raw row set;
// Tables and Speedups fully determine the rendered analysis, so two
// runs of one config are byte-identical.
type Config struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Families selects the internal/exp scenario families to run.
	Families []string `json:"families"`
	// Quick selects the families' trimmed sweeps (exp.Options.Quick).
	Quick bool `json:"quick,omitempty"`
	// Nodes overrides the machine-size sweep (exp.Options.NodeList).
	Nodes []int `json:"nodes,omitempty"`
	// CoresPerNode sets cores per node (0 = the Opteron host's 4).
	CoresPerNode int `json:"cores_per_node,omitempty"`

	// Repeats is how many times the whole grid runs (>= 1).
	Repeats int `json:"repeats"`
	// BaseSeed (>= 1) anchors the seed derivation.
	BaseSeed int64 `json:"base_seed"`
	// SeedPolicy is SeedFixed or SeedPerRepeat.
	SeedPolicy string `json:"seed_policy"`

	// Tolerance (0 disables) bounds the relative standard deviation
	// (std/|mean|) of every table metric across repeats; a cell beyond
	// it fails the campaign, guarding the published means against
	// seed-sensitive instability.
	Tolerance float64 `json:"tolerance,omitempty"`

	// Metrics restricts the analysis to a subset of the schema's metric
	// columns (empty = all of exp.MetricColumns()).
	Metrics []string `json:"metrics,omitempty"`
	// Tables declares the rendered scaling tables (empty = one default
	// mbps table: rows=pages, cols=variant, split=nodes).
	Tables []TableSpec `json:"tables,omitempty"`
	// Speedups declares the relative-speedup ratio columns.
	Speedups []SpeedupSpec `json:"speedups,omitempty"`

	// Experiments additionally regenerates classic internal/bench
	// figures/tables (e.g. "fig7") into figures.txt.
	Experiments []string `json:"experiments,omitempty"`

	// Outputs selects the written artifacts (empty = csv, json, md,
	// plus figures when Experiments is non-empty).
	Outputs []string `json:"outputs,omitempty"`
}

// nameRE constrains campaign and speedup names to safe file/column
// tokens.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// ParseConfig decodes and validates a campaign config. Unknown fields,
// unknown families/axes/columns, zero repeats and seed overflow all
// return errors; no input panics.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("artifact: parsing config: %w", err)
	}
	// A second document after the first is a malformed config, not
	// trailing noise to ignore.
	if dec.More() {
		return Config{}, fmt.Errorf("artifact: trailing data after config object")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks every declarative reference in the config against
// the registries it names: scenario families against internal/exp,
// metric columns against exp.Columns(), experiments against
// internal/bench, axes against the axis set.
func (c *Config) Validate() error {
	if c.Schema != ConfigSchema {
		return fmt.Errorf("artifact: config schema %q, want %q", c.Schema, ConfigSchema)
	}
	if !nameRE.MatchString(c.Name) {
		return fmt.Errorf("artifact: campaign name %q must match %s", c.Name, nameRE)
	}
	if len(c.Families) == 0 {
		return fmt.Errorf("artifact: config names no scenario families")
	}
	known := map[string]bool{}
	for _, f := range exp.Families() {
		known[f] = true
	}
	seen := map[string]bool{}
	for _, f := range c.Families {
		if !known[f] {
			return fmt.Errorf("artifact: unknown family %q (have %v)", f, exp.Families())
		}
		if seen[f] {
			return fmt.Errorf("artifact: duplicate family %q", f)
		}
		seen[f] = true
	}
	for _, n := range c.Nodes {
		if n < 1 || n > topology.MaxNodes {
			return fmt.Errorf("artifact: node count %d outside 1..%d", n, topology.MaxNodes)
		}
	}
	if c.CoresPerNode < 0 || c.CoresPerNode > 256 {
		return fmt.Errorf("artifact: cores_per_node %d outside 0..256", c.CoresPerNode)
	}
	if c.Repeats < 1 || c.Repeats > MaxRepeats {
		return fmt.Errorf("artifact: repeats %d outside 1..%d", c.Repeats, MaxRepeats)
	}
	if c.BaseSeed < 1 {
		return fmt.Errorf("artifact: base_seed %d must be >= 1", c.BaseSeed)
	}
	switch c.SeedPolicy {
	case SeedFixed:
	case SeedPerRepeat:
		// The last repeat's seed must not overflow int64. Repeats is
		// already bounded, so the span product cannot itself overflow.
		span := int64(c.Repeats-1) * SeedStride
		if c.BaseSeed > math.MaxInt64-span {
			return fmt.Errorf("artifact: base_seed %d overflows at repeat %d (policy %s)",
				c.BaseSeed, c.Repeats-1, SeedPerRepeat)
		}
	default:
		return fmt.Errorf("artifact: unknown seed_policy %q (want %s or %s)",
			c.SeedPolicy, SeedFixed, SeedPerRepeat)
	}
	if c.Tolerance < 0 || c.Tolerance >= 1 {
		return fmt.Errorf("artifact: tolerance %v outside [0, 1)", c.Tolerance)
	}

	metric := map[string]bool{}
	for _, m := range exp.MetricColumns() {
		metric[m] = true
	}
	seenM := map[string]bool{}
	for _, m := range c.Metrics {
		if !metric[m] {
			return fmt.Errorf("artifact: unknown metric column %q (have %v)", m, exp.MetricColumns())
		}
		if seenM[m] {
			return fmt.Errorf("artifact: duplicate metric %q", m)
		}
		seenM[m] = true
	}
	// A restricted metric set must still cover what tables and
	// speedups reference.
	inScope := func(m string) bool {
		if len(c.Metrics) == 0 {
			return metric[m]
		}
		return seenM[m]
	}

	axis := map[string]bool{AxisPages: true, AxisNodes: true, AxisVariant: true, AxisFamily: true}
	for i, t := range c.Tables {
		if !metric[t.Metric] {
			return fmt.Errorf("artifact: table %d: unknown metric column %q", i, t.Metric)
		}
		if !inScope(t.Metric) {
			return fmt.Errorf("artifact: table %d: metric %q not in the configured metrics set", i, t.Metric)
		}
		if !axis[t.Rows] {
			return fmt.Errorf("artifact: table %d: unknown rows axis %q", i, t.Rows)
		}
		if !axis[t.Cols] {
			return fmt.Errorf("artifact: table %d: unknown cols axis %q", i, t.Cols)
		}
		if t.Rows == t.Cols {
			return fmt.Errorf("artifact: table %d: rows and cols are both %q", i, t.Rows)
		}
		if t.Split != "" {
			if !axis[t.Split] {
				return fmt.Errorf("artifact: table %d: unknown split axis %q", i, t.Split)
			}
			if t.Split == t.Rows || t.Split == t.Cols {
				return fmt.Errorf("artifact: table %d: split axis %q reuses rows/cols", i, t.Split)
			}
		}
	}

	seenS := map[string]bool{}
	for i, s := range c.Speedups {
		if !nameRE.MatchString(s.Name) {
			return fmt.Errorf("artifact: speedup %d: name %q must match %s", i, s.Name, nameRE)
		}
		if seenS[s.Name] {
			return fmt.Errorf("artifact: duplicate speedup name %q", s.Name)
		}
		seenS[s.Name] = true
		if !metric[s.Metric] {
			return fmt.Errorf("artifact: speedup %q: unknown metric column %q", s.Name, s.Metric)
		}
		if !inScope(s.Metric) {
			return fmt.Errorf("artifact: speedup %q: metric %q not in the configured metrics set", s.Name, s.Metric)
		}
		if s.Numer == "" || s.Denom == "" || s.Numer == s.Denom {
			return fmt.Errorf("artifact: speedup %q: numer/denom must be distinct non-empty tokens", s.Name)
		}
		if strings.Contains(s.Numer, "/") || strings.Contains(s.Denom, "/") {
			return fmt.Errorf("artifact: speedup %q: numer/denom are single ID tokens, no '/'", s.Name)
		}
	}

	knownExp := map[string]bool{}
	for _, e := range bench.Experiments() {
		knownExp[e] = true
	}
	seenE := map[string]bool{}
	for _, e := range c.Experiments {
		if !knownExp[e] {
			return fmt.Errorf("artifact: unknown experiment %q (have %v)", e, bench.Experiments())
		}
		if seenE[e] {
			return fmt.Errorf("artifact: duplicate experiment %q", e)
		}
		seenE[e] = true
	}

	seenO := map[string]bool{}
	for _, o := range c.Outputs {
		switch o {
		case OutCSV, OutJSON, OutMD:
		case OutFigures:
			if len(c.Experiments) == 0 {
				return fmt.Errorf("artifact: output %q requires at least one experiment", OutFigures)
			}
		default:
			return fmt.Errorf("artifact: unknown output %q (want %s, %s, %s or %s)",
				o, OutCSV, OutJSON, OutMD, OutFigures)
		}
		if seenO[o] {
			return fmt.Errorf("artifact: duplicate output %q", o)
		}
		seenO[o] = true
	}
	return nil
}

// SeedFor returns repeat r's seed under the config's seed policy. The
// derivation is part of the artifact contract: tools/artifactcheck
// recomputes it to validate the raw CSV's seed column.
func (c *Config) SeedFor(r int) int64 {
	if c.SeedPolicy == SeedFixed {
		return c.BaseSeed
	}
	return c.BaseSeed + int64(r)*SeedStride
}

// outputs returns the effective output set (the default when none is
// configured).
func (c *Config) outputs() map[string]bool {
	out := map[string]bool{}
	if len(c.Outputs) == 0 {
		out[OutCSV], out[OutJSON], out[OutMD] = true, true, true
		if len(c.Experiments) > 0 {
			out[OutFigures] = true
		}
		return out
	}
	for _, o := range c.Outputs {
		out[o] = true
	}
	return out
}

// metrics returns the effective metric column set, in schema order.
func (c *Config) metrics() []string {
	if len(c.Metrics) == 0 {
		return exp.MetricColumns()
	}
	// Preserve schema order, not config order, so the summary layout
	// never depends on how the config happens to list them.
	want := map[string]bool{}
	for _, m := range c.Metrics {
		want[m] = true
	}
	var out []string
	for _, m := range exp.MetricColumns() {
		if want[m] {
			out = append(out, m)
		}
	}
	return out
}

// tables returns the effective table specs (the Figure 7 default when
// none is configured).
func (c *Config) tables() []TableSpec {
	if len(c.Tables) > 0 {
		return c.Tables
	}
	return []TableSpec{{
		Title:  "throughput vs pages",
		Metric: "mbps",
		Rows:   AxisPages,
		Cols:   AxisVariant,
		Split:  AxisNodes,
	}}
}
