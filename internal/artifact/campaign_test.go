package artifact

import (
	"bytes"
	"strings"
	"testing"
)

// Repeat-determinism property tests: the artifact reproducibility
// contract. The simulator measures virtual time only, so a campaign's
// rendered artifacts must be byte-identical across runs and across
// worker counts; fixed-seed repeats must collapse to zero spread.

func detConfig(policy string, repeats int) Config {
	return Config{
		Schema:     ConfigSchema,
		Name:       "det",
		Families:   []string{"migration"},
		Quick:      true,
		Repeats:    repeats,
		BaseSeed:   3,
		SeedPolicy: policy,
		Tolerance:  0.05,
		Speedups:   []SpeedupSpec{{Name: "pv", Metric: "mbps", Numer: "patched", Denom: "unpatched"}},
	}
}

func TestCampaignByteIdenticalAcrossRunsAndParallelism(t *testing.T) {
	cfg := detConfig(SeedPerRepeat, 2)
	var outs []*Outcome
	for _, par := range []int{1, 8, 1} {
		var raw bytes.Buffer
		o, err := RunCampaign(cfg, RunOptions{Parallel: par, RawOut: &raw})
		if err != nil {
			t.Fatal(err)
		}
		// The streamed raw CSV must equal the rendered one.
		if !bytes.Equal(raw.Bytes(), o.RawCSV) {
			t.Fatalf("parallel %d: streamed raw CSV differs from rendered", par)
		}
		outs = append(outs, o)
	}
	for i, o := range outs[1:] {
		if !bytes.Equal(o.RawCSV, outs[0].RawCSV) {
			t.Errorf("run %d: raw.csv differs", i+1)
		}
		if !bytes.Equal(o.Summary, outs[0].Summary) {
			t.Errorf("run %d: summary.json differs", i+1)
		}
		if !bytes.Equal(o.Tables, outs[0].Tables) {
			t.Errorf("run %d: tables.md differs", i+1)
		}
	}
}

func TestFixedSeedRepeatsAreReplicas(t *testing.T) {
	o, err := RunCampaign(detConfig(SeedFixed, 3), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every cell's every metric must have exactly zero spread.
	for _, c := range o.Analysis.Cells {
		for _, ms := range c.Metrics {
			if ms.N != 3 || ms.Std != 0 || ms.Min != ms.Max || ms.Mean != ms.Min {
				t.Fatalf("cell %s metric %s = %+v, want 3 identical replicas", c.ID, ms.Metric, ms)
			}
		}
	}
	if o.Analysis.MaxRelStd != 0 {
		t.Errorf("MaxRelStd = %v, want exactly 0", o.Analysis.MaxRelStd)
	}
	// The repeats' raw cells must be byte-identical, row for row.
	per := len(o.Rows) / 3
	for i := 0; i < per; i++ {
		for r := 1; r < 3; r++ {
			a, b := o.Rows[i], o.Rows[r*per+i]
			if strings.Join(a.Cells, ",") != strings.Join(b.Cells, ",") {
				t.Fatalf("repeat %d row %d differs from repeat 0", r, i)
			}
			if a.Seed != b.Seed {
				t.Fatalf("fixed policy derived different seeds %d vs %d", a.Seed, b.Seed)
			}
		}
	}
}

func TestPerRepeatSeedsRecordedDistinctly(t *testing.T) {
	o, err := RunCampaign(detConfig(SeedPerRepeat, 2), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int64]bool{}
	for _, r := range o.Rows {
		seeds[r.Seed] = true
	}
	if len(seeds) != 2 {
		t.Fatalf("2 per-repeat repeats recorded %d distinct seeds", len(seeds))
	}
	// The grouped means must hold inside the configured tolerance (the
	// simulator's metrics are seed-stable; the bound is the contract).
	if o.Analysis.MaxRelStd > 0.05 {
		t.Errorf("MaxRelStd = %v beyond the 0.05 tolerance", o.Analysis.MaxRelStd)
	}
	// The seed column is part of the raw record, so the raw CSV of a
	// per-repeat campaign differs from a fixed-seed one even when the
	// measured metrics agree.
	fixed, err := RunCampaign(detConfig(SeedFixed, 2), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(o.RawCSV, fixed.RawCSV) {
		t.Error("per-repeat and fixed campaigns produced identical raw CSV")
	}
}

func TestRawCSVRoundTrip(t *testing.T) {
	cfg := detConfig(SeedPerRepeat, 2)
	o, err := RunCampaign(cfg, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ReadRawCSV(bytes.NewReader(o.RawCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(o.Rows) {
		t.Fatalf("round trip: %d rows, want %d", len(rows), len(o.Rows))
	}
	an, err := Analyze(&cfg, rows)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RenderSummary(an)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sum, o.Summary) {
		t.Error("summary recomputed from written raw CSV differs from the original")
	}
	tbl, err := RenderTables(&cfg, an)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tbl, o.Tables) {
		t.Error("tables recomputed from written raw CSV differ from the original")
	}
}

func TestReadRawCSVErrors(t *testing.T) {
	drift := append([]string{}, rawHeader()...)
	drift[len(drift)-1] = "renamed_column"
	cases := []struct {
		name, data, frag string
	}{
		{"empty", "", "empty"},
		{"schema drift", strings.Join(drift, ",") + "\n", "disagree"},
		{"short record", "repeat,seed\n", "reading raw csv"},
	}
	for _, c := range cases {
		if _, err := ReadRawCSV(strings.NewReader(c.data)); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.frag)
		}
	}
	// Bad repeat/seed cells after a valid header.
	hdr := strings.Join(rawHeader(), ",")
	pad := strings.Repeat(",", len(rawHeader())-3)
	if _, err := ReadRawCSV(strings.NewReader(hdr + "\nx,1,id" + pad + "\n")); err == nil || !strings.Contains(err.Error(), "repeat") {
		t.Errorf("bad repeat cell: err = %v", err)
	}
	if _, err := ReadRawCSV(strings.NewReader(hdr + "\n0,x,id" + pad + "\n")); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("bad seed cell: err = %v", err)
	}
}

func TestRunCampaignRejectsInvalidConfig(t *testing.T) {
	cfg := detConfig(SeedFixed, 1)
	cfg.Families = []string{"warp-drive"}
	if _, err := RunCampaign(cfg, RunOptions{}); err == nil {
		t.Error("invalid config ran")
	}
}
