package artifact

import (
	"encoding/json"
	"testing"
)

// FuzzArtifactConfig drives ParseConfig with arbitrary bytes: malformed
// JSON, unknown families/axes/metrics, zero repeats and overflowing
// seeds must all come back as errors — never a panic — and any config
// that parses must survive a marshal/re-parse round trip unchanged.
func FuzzArtifactConfig(f *testing.F) {
	// Seed the interesting shapes; the committed corpus under
	// testdata/fuzz/FuzzArtifactConfig extends these with regression
	// inputs.
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"ok","families":["migration"],"quick":true,"repeats":2,"base_seed":3,"seed_policy":"per-repeat"}`))
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"bad","families":["warp-drive"],"repeats":1,"base_seed":1,"seed_policy":"fixed"}`))
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"zero","families":["migration"],"repeats":0,"base_seed":1,"seed_policy":"fixed"}`))
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"ovf","families":["migration"],"repeats":1024,"base_seed":9223372036854775807,"seed_policy":"per-repeat"}`))
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"axis","families":["migration"],"repeats":1,"base_seed":1,"seed_policy":"fixed","tables":[{"metric":"mbps","rows":"moons","cols":"pages"}]}`))
	f.Add([]byte(`{"schema":"numamig-artifact/v1","name":"met","families":["migration"],"repeats":1,"base_seed":1,"seed_policy":"fixed","metrics":["vibes"]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"schema\":\"numamig-artifact/v1\"}\x00trailing"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// Whatever parses must be internally valid...
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v", err)
		}
		// ...derive seeds without overflow for every repeat...
		prev := int64(0)
		for r := 0; r < cfg.Repeats; r++ {
			s := cfg.SeedFor(r)
			if s < 1 || (r > 0 && cfg.SeedPolicy == SeedPerRepeat && s <= prev) {
				t.Fatalf("repeat %d derived seed %d after %d", r, s, prev)
			}
			prev = s
		}
		// ...and round-trip through JSON losslessly.
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := ParseConfig(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled config: %v", err)
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(out) != string(again) {
			t.Fatalf("round trip drifted:\n%s\n%s", out, again)
		}
	})
}
