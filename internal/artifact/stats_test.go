package artifact

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"numamig/internal/exp"
)

// Statistical-analysis unit tests against hand-computed goldens: the
// grouped mean/std/min/max, the n=1 degenerate case (std exactly 0),
// speedup ratios, and the missing-baseline skip.

// synthConfig is a minimal analysis config: one metric, explicit
// tables/speedups, no tolerance. It deliberately skips Validate —
// Analyze must work from the fields alone.
func synthConfig(repeats int, speedups ...SpeedupSpec) *Config {
	return &Config{
		Schema:     ConfigSchema,
		Name:       "synth",
		Repeats:    repeats,
		BaseSeed:   1,
		SeedPolicy: SeedFixed,
		Metrics:    []string{"mbps"},
		Tables:     []TableSpec{{Metric: "mbps", Rows: AxisPages, Cols: AxisVariant}},
		Speedups:   speedups,
	}
}

// synthRow builds a raw row with the given identity and mbps cell; all
// other schema cells stay empty (only configured metrics are parsed).
func synthRow(repeat int, id string, pages, nodes int, mbps string) Row {
	idx := colIndex()
	cells := make([]string, len(exp.ColumnNames()))
	cells[idx["id"]] = id
	cells[idx["pages"]] = strconv.Itoa(pages)
	cells[idx["nodes"]] = strconv.Itoa(nodes)
	cells[idx["mbps"]] = mbps
	return Row{Repeat: repeat, Seed: 1, Cells: cells}
}

func TestSummarizeGoldens(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want MetricStats
	}{
		// mean = (10+20+30)/3 = 20; sample var = (100+0+100)/2 = 100.
		{"three", []float64{10, 20, 30}, MetricStats{Metric: "m", N: 3, Mean: 20, Std: 10, Min: 10, Max: 30}},
		// n = 1: std is defined as 0, min = max = mean.
		{"single", []float64{42.5}, MetricStats{Metric: "m", N: 1, Mean: 42.5, Std: 0, Min: 42.5, Max: 42.5}},
		// Identical repeats: zero spread.
		{"flat", []float64{7, 7, 7, 7}, MetricStats{Metric: "m", N: 4, Mean: 7, Std: 0, Min: 7, Max: 7}},
		// Two samples: std = |a-b| / sqrt(2).
		{"pair", []float64{1, 3}, MetricStats{Metric: "m", N: 2, Mean: 2, Std: math.Sqrt2, Min: 1, Max: 3}},
		{"empty", nil, MetricStats{Metric: "m", N: 0}},
	}
	for _, c := range cases {
		if got := summarize("m", c.xs); got != c.want {
			t.Errorf("%s: summarize(%v) = %+v, want %+v", c.name, c.xs, got, c.want)
		}
	}
}

func TestVariantOf(t *testing.T) {
	cases := []struct {
		id           string
		pages, nodes int
		want         string
	}{
		{"migration/patched/sync/p64/n2", 64, 2, "patched/sync"},
		{"autonuma/rotate1/off/p1024/n8", 1024, 8, "rotate1/off"},
		// Only the exact p<pages>/n<nodes> tokens are stripped.
		{"fam/p64/n2/p640", 64, 2, "p640"},
		{"solo", 0, 0, ""},
	}
	for _, c := range cases {
		if got := variantOf(c.id, c.pages, c.nodes); got != c.want {
			t.Errorf("variantOf(%q, %d, %d) = %q, want %q", c.id, c.pages, c.nodes, got, c.want)
		}
	}
}

func TestAnalyzeGroupedGoldens(t *testing.T) {
	cfg := synthConfig(3)
	rows := []Row{
		synthRow(0, "m/patched/p64/n2", 64, 2, "10"),
		synthRow(0, "m/unpatched/p64/n2", 64, 2, "5"),
		synthRow(1, "m/patched/p64/n2", 64, 2, "20"),
		synthRow(1, "m/unpatched/p64/n2", 64, 2, "5"),
		synthRow(2, "m/patched/p64/n2", 64, 2, "30"),
		synthRow(2, "m/unpatched/p64/n2", 64, 2, "5"),
	}
	an, err := Analyze(cfg, rows)
	if err != nil {
		t.Fatal(err)
	}
	if an.Scenarios != 2 || an.RowCount != 6 {
		t.Fatalf("got %d scenarios over %d rows, want 2 over 6", an.Scenarios, an.RowCount)
	}
	p := an.CellByID("m/patched/p64/n2")
	if p == nil {
		t.Fatal("patched cell missing")
	}
	want := MetricStats{Metric: "mbps", N: 3, Mean: 20, Std: 10, Min: 10, Max: 30}
	if got := *p.Metric("mbps"); got != want {
		t.Errorf("patched mbps = %+v, want %+v", got, want)
	}
	if p.Variant != "patched" || p.Family != "m" || p.Pages != 64 || p.Nodes != 2 {
		t.Errorf("patched cell coordinates = %+v", p)
	}
	u := an.CellByID("m/unpatched/p64/n2")
	if got := *u.Metric("mbps"); got != (MetricStats{Metric: "mbps", N: 3, Mean: 5, Std: 0, Min: 5, Max: 5}) {
		t.Errorf("unpatched mbps = %+v", got)
	}
	// Relative std of the patched cell: 10/20 = 0.5 — the max.
	if an.MaxRelStd != 0.5 {
		t.Errorf("MaxRelStd = %v, want 0.5", an.MaxRelStd)
	}
}

func TestAnalyzeSingleRepeatStdZero(t *testing.T) {
	cfg := synthConfig(1)
	an, err := Analyze(cfg, []Row{synthRow(0, "m/patched/p64/n2", 64, 2, "123.5")})
	if err != nil {
		t.Fatal(err)
	}
	got := *an.Cells[0].Metric("mbps")
	if got != (MetricStats{Metric: "mbps", N: 1, Mean: 123.5, Std: 0, Min: 123.5, Max: 123.5}) {
		t.Errorf("n=1 stats = %+v, want std exactly 0", got)
	}
	if an.MaxRelStd != 0 {
		t.Errorf("MaxRelStd = %v, want 0", an.MaxRelStd)
	}
}

func TestAnalyzeSpeedupsAndMissingBaseline(t *testing.T) {
	cfg := synthConfig(1, SpeedupSpec{Name: "pv", Metric: "mbps", Numer: "patched", Denom: "unpatched"})
	rows := []Row{
		synthRow(0, "m/patched/sync/p64/n2", 64, 2, "30"),
		synthRow(0, "m/unpatched/sync/p64/n2", 64, 2, "15"),
		// lazy has no unpatched twin: the missing-cell case, skipped.
		synthRow(0, "m/patched/lazy/p64/n2", 64, 2, "60"),
		// Same variants at another size join on (pages, nodes) too.
		synthRow(0, "m/patched/sync/p256/n4", 256, 4, "50"),
		synthRow(0, "m/unpatched/sync/p256/n4", 256, 4, "10"),
	}
	an, err := Analyze(cfg, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Speedups) != 2 {
		t.Fatalf("got %d speedups %+v, want 2", len(an.Speedups), an.Speedups)
	}
	s0 := an.Speedups[0]
	if s0.ID != "m/patched/sync/p64/n2" || s0.BaselineID != "m/unpatched/sync/p64/n2" || s0.Ratio != 2 {
		t.Errorf("speedup[0] = %+v, want ratio 2 of sync/p64/n2", s0)
	}
	s1 := an.Speedups[1]
	if s1.ID != "m/patched/sync/p256/n4" || s1.Ratio != 5 {
		t.Errorf("speedup[1] = %+v, want ratio 5 of sync/p256/n4", s1)
	}
	for _, s := range an.Speedups {
		if strings.Contains(s.ID, "lazy") {
			t.Errorf("lazy cell has no baseline but produced speedup %+v", s)
		}
	}
}

func TestAnalyzeZeroDenominatorSkipped(t *testing.T) {
	cfg := synthConfig(1, SpeedupSpec{Name: "pv", Metric: "mbps", Numer: "patched", Denom: "unpatched"})
	rows := []Row{
		synthRow(0, "m/patched/p64/n2", 64, 2, "30"),
		synthRow(0, "m/unpatched/p64/n2", 64, 2, "0"),
	}
	an, err := Analyze(cfg, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Speedups) != 0 {
		t.Errorf("zero-mean baseline produced speedups %+v", an.Speedups)
	}
}

func TestAnalyzeCompletenessErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		rows []Row
		frag string
	}{
		{"missing repeat", synthConfig(2),
			[]Row{synthRow(0, "m/a/p1/n1", 1, 1, "1")}, "missing repeat"},
		{"duplicate row", synthConfig(1),
			[]Row{synthRow(0, "m/a/p1/n1", 1, 1, "1"), synthRow(0, "m/a/p1/n1", 1, 1, "1")}, "twice"},
		{"repeat out of range", synthConfig(1),
			[]Row{synthRow(3, "m/a/p1/n1", 1, 1, "1")}, "outside"},
		{"no rows", synthConfig(1), nil, "no rows"},
		{"bad metric cell", synthConfig(1),
			[]Row{synthRow(0, "m/a/p1/n1", 1, 1, "not-a-number")}, "not numeric"},
	}
	for _, c := range cases {
		if _, err := Analyze(c.cfg, c.rows); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.frag)
		}
	}
	// A wrong seed for the policy must be rejected.
	cfg := synthConfig(2)
	cfg.SeedPolicy = SeedPerRepeat
	rows := []Row{synthRow(0, "m/a/p1/n1", 1, 1, "1"), synthRow(1, "m/a/p1/n1", 1, 1, "1")}
	if _, err := Analyze(cfg, rows); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Errorf("per-repeat policy with fixed seeds: err = %v", err)
	}
	// A scenario error in any row fails the analysis.
	bad := synthRow(0, "m/a/p1/n1", 1, 1, "1")
	bad.Cells[colIndex()["err"]] = "boom"
	if _, err := Analyze(synthConfig(1), []Row{bad}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err column set: err = %v", err)
	}
}

func TestAnalyzeToleranceBound(t *testing.T) {
	cfg := synthConfig(2)
	cfg.Tolerance = 0.1
	rows := []Row{
		synthRow(0, "m/a/p1/n1", 1, 1, "10"),
		synthRow(1, "m/a/p1/n1", 1, 1, "30"),
	}
	// mean 20, sample std = sqrt(200) ~ 14.14, rel ~ 0.707 > 0.1.
	if _, err := Analyze(cfg, rows); err == nil || !strings.Contains(err.Error(), "tolerance") {
		t.Fatalf("rel std 0.707 against tolerance 0.1: err = %v", err)
	}
	cfg.Tolerance = 0.8
	if _, err := Analyze(cfg, rows); err != nil {
		t.Fatalf("rel std 0.707 against tolerance 0.8: %v", err)
	}
	// The bound only covers table metrics: a wild non-table metric
	// passes. faults is a metric column but not in any table spec.
	cfg = synthConfig(2)
	cfg.Metrics = []string{"mbps", "faults"}
	cfg.Tolerance = 0.1
	idx := colIndex()
	r0 := synthRow(0, "m/a/p1/n1", 1, 1, "10")
	r0.Cells[idx["faults"]] = "1"
	r1 := synthRow(1, "m/a/p1/n1", 1, 1, "10")
	r1.Cells[idx["faults"]] = "1000"
	if _, err := Analyze(cfg, []Row{r0, r1}); err != nil {
		t.Fatalf("non-table metric spread must not trip the tolerance: %v", err)
	}
}
