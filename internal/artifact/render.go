package artifact

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"numamig/internal/report"
)

// RenderSummary renders the machine-readable analysis as indented
// JSON (report.JSON: deterministic field order, byte-stable).
func RenderSummary(an *Analysis) ([]byte, error) {
	var buf bytes.Buffer
	if err := report.JSON(&buf, an); err != nil {
		return nil, fmt.Errorf("artifact: rendering summary: %w", err)
	}
	return buf.Bytes(), nil
}

// axisValue returns a cell's coordinate on a layout axis.
func axisValue(c *Cell, axis string) string {
	switch axis {
	case AxisPages:
		return strconv.Itoa(c.Pages)
	case AxisNodes:
		return strconv.Itoa(c.Nodes)
	case AxisVariant:
		return c.Variant
	case AxisFamily:
		return c.Family
	}
	return ""
}

// axisOrder returns the distinct values of an axis over the cells, in
// presentation order: numeric axes ascending, categorical axes in
// first-appearance (generation) order.
func axisOrder(cells []*Cell, axis string) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range cells {
		v := axisValue(c, axis)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	if axis == AxisPages || axis == AxisNodes {
		sort.Slice(out, func(i, j int) bool {
			a, _ := strconv.Atoi(out[i])
			b, _ := strconv.Atoi(out[j])
			return a < b
		})
	}
	return out
}

// statCell formats one table cell: the mean, with a ± sample-std
// suffix once repeats carry real spread.
func statCell(ms *MetricStats) string {
	s := report.FormatFloat(ms.Mean)
	if ms.N > 1 && ms.Std != 0 {
		s += " ± " + report.FormatFloat(ms.Std)
	}
	return s
}

// RenderTables renders the campaign's Fig. 7-style scaling tables and
// speedup tables as one Markdown document.
func RenderTables(cfg *Config, an *Analysis) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# campaign: %s\n\n", cfg.Name)
	if cfg.Description != "" {
		fmt.Fprintf(&buf, "%s\n\n", cfg.Description)
	}
	fmt.Fprintf(&buf, "families: %s · repeats: %d · seed policy: %s (base %d) · scenarios: %d\n",
		strings.Join(cfg.Families, ", "), cfg.Repeats, cfg.SeedPolicy, cfg.BaseSeed, an.Scenarios)

	cells := make([]*Cell, len(an.Cells))
	for i := range an.Cells {
		cells[i] = &an.Cells[i]
	}

	for _, spec := range cfg.tables() {
		title := spec.Title
		if title == "" {
			title = fmt.Sprintf("%s by %s x %s", spec.Metric, spec.Rows, spec.Cols)
		}
		fmt.Fprintf(&buf, "\n## %s\n\n", title)
		fmt.Fprintf(&buf, "metric: %s (mean over %d repeats%s)\n\n",
			spec.Metric, cfg.Repeats, map[bool]string{true: ", ± sample std", false: ""}[cfg.Repeats > 1])

		splits := []string{""}
		if spec.Split != "" {
			splits = axisOrder(cells, spec.Split)
		}
		for _, sv := range splits {
			var in []*Cell
			for _, c := range cells {
				if spec.Split == "" || axisValue(c, spec.Split) == sv {
					in = append(in, c)
				}
			}
			if len(in) == 0 {
				continue
			}
			rowVals := axisOrder(in, spec.Rows)
			colVals := axisOrder(in, spec.Cols)

			// One owner per (row, col) coordinate; a clash means the
			// spec under-specifies the layout (e.g. two families share
			// a variant and neither axis separates them).
			grid := map[[2]string]*Cell{}
			for _, c := range in {
				key := [2]string{axisValue(c, spec.Rows), axisValue(c, spec.Cols)}
				if prev, dup := grid[key]; dup {
					return nil, fmt.Errorf("artifact: table %q: cells %q and %q land on the same (%s=%s, %s=%s) — add a split axis",
						title, prev.ID, c.ID, spec.Rows, key[0], spec.Cols, key[1])
				}
				grid[key] = c
			}

			tblTitle := ""
			if spec.Split != "" {
				tblTitle = fmt.Sprintf("%s = %s", spec.Split, sv)
			}
			tbl := report.NewTable(tblTitle, append([]string{spec.Rows}, colVals...)...)
			for _, rv := range rowVals {
				row := make([]interface{}, 0, len(colVals)+1)
				row = append(row, rv)
				for _, cv := range colVals {
					c := grid[[2]string{rv, cv}]
					if c == nil {
						row = append(row, "")
						continue
					}
					ms := c.Metric(spec.Metric)
					if ms == nil {
						row = append(row, "")
						continue
					}
					row = append(row, statCell(ms))
				}
				tbl.Add(row...)
			}
			tbl.Markdown(&buf)
			buf.WriteByte('\n')
		}
	}

	if len(cfg.Speedups) > 0 {
		fmt.Fprintf(&buf, "\n## speedups\n")
		for _, spec := range cfg.Speedups {
			fmt.Fprintf(&buf, "\n### %s: %s / %s (%s, ratio of means)\n\n",
				spec.Name, spec.Numer, spec.Denom, spec.Metric)
			tbl := report.NewTable("", "family", "variant", "pages", "nodes", "ratio")
			n := 0
			for i := range an.Speedups {
				sp := &an.Speedups[i]
				if sp.Name != spec.Name {
					continue
				}
				c := an.CellByID(sp.ID)
				if c == nil {
					return nil, fmt.Errorf("artifact: speedup %q references unknown cell %q", sp.Name, sp.ID)
				}
				tbl.Add(c.Family, c.Variant, c.Pages, c.Nodes, report.FormatFloat(sp.Ratio))
				n++
			}
			if n == 0 {
				fmt.Fprintf(&buf, "(no cell pairs matched %s vs %s)\n", spec.Numer, spec.Denom)
				continue
			}
			tbl.Markdown(&buf)
		}
	}
	return buf.Bytes(), nil
}
