package artifact

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"numamig/internal/bench"
	"numamig/internal/exp"
)

// Artifact file names inside a campaign's output directory.
const (
	RawCSVName  = "raw.csv"
	SummaryName = "summary.json"
	TablesName  = "tables.md"
	FiguresName = "figures.txt"
)

// RunOptions tunes campaign execution without affecting its output
// bytes.
type RunOptions struct {
	// Parallel is the grid worker count (exp.Runner.Parallel); the
	// output is byte-identical at any setting.
	Parallel int
	// RawOut, when set, receives the raw CSV incrementally: the header
	// first, then each repeat's rows as the repeat completes, so a long
	// campaign's raw data survives an interruption.
	RawOut io.Writer
	// Log, when set, receives human progress lines (wall-clock timing
	// included — never part of the artifact output).
	Log io.Writer
}

// Outcome is a completed campaign: the raw rows, the grouped analysis,
// and every rendered artifact as bytes, ready for WriteDir or for
// byte-level comparison in tests and tools/artifactcheck.
type Outcome struct {
	Config   Config
	Rows     []Row
	Analysis *Analysis

	RawCSV  []byte // present when the config's outputs include csv
	Summary []byte // json
	Tables  []byte // md
	Figures []byte // figures
}

// RunCampaign executes a validated campaign config: the configured
// families expand once per repeat (each repeat under its derived
// seed), every scenario runs through the parallel grid runner, the
// grouped analysis pass runs over the raw rows, and the configured
// artifacts render. Any scenario error, completeness violation or
// tolerance breach fails the whole campaign.
func RunCampaign(cfg Config, ro RunOptions) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logf := func(format string, args ...interface{}) {
		if ro.Log != nil {
			fmt.Fprintf(ro.Log, format, args...)
		}
	}

	var stream *csv.Writer
	if ro.RawOut != nil {
		stream = csv.NewWriter(ro.RawOut)
		if err := stream.Write(rawHeader()); err != nil {
			return nil, fmt.Errorf("artifact: streaming raw header: %w", err)
		}
	}

	out := &Outcome{Config: cfg}
	for r := 0; r < cfg.Repeats; r++ {
		seed := cfg.SeedFor(r)
		opts := exp.Options{
			Quick:        cfg.Quick,
			Seed:         seed,
			NodeList:     cfg.Nodes,
			CoresPerNode: cfg.CoresPerNode,
		}
		scs, err := exp.Scenarios(cfg.Families, opts)
		if err != nil {
			return nil, fmt.Errorf("artifact: expanding repeat %d: %w", r, err)
		}
		if len(scs) == 0 {
			return nil, fmt.Errorf("artifact: repeat %d expands to no scenarios (nodes list too narrow for the families?)", r)
		}
		start := time.Now()
		results := exp.Runner{Parallel: ro.Parallel}.Run(scs)
		for i := range results {
			if results[i].Err != "" {
				return nil, fmt.Errorf("artifact: repeat %d scenario %q failed: %s",
					r, results[i].ID, results[i].Err)
			}
			row := rowOf(r, seed, &results[i])
			out.Rows = append(out.Rows, row)
			if stream != nil {
				if err := stream.Write(row.record()); err != nil {
					return nil, fmt.Errorf("artifact: streaming raw row: %w", err)
				}
			}
		}
		if stream != nil {
			stream.Flush()
			if err := stream.Error(); err != nil {
				return nil, fmt.Errorf("artifact: streaming repeat %d: %w", r, err)
			}
		}
		logf("artifact: repeat %d/%d: %d scenarios (seed %d) in %v\n",
			r+1, cfg.Repeats, len(scs), seed, time.Since(start).Round(time.Millisecond))
	}

	an, err := Analyze(&cfg, out.Rows)
	if err != nil {
		return nil, err
	}
	out.Analysis = an

	want := cfg.outputs()
	if want[OutCSV] {
		out.RawCSV = renderRawCSV(out.Rows)
	}
	if want[OutJSON] {
		if out.Summary, err = RenderSummary(an); err != nil {
			return nil, err
		}
	}
	if want[OutMD] {
		if out.Tables, err = RenderTables(&cfg, an); err != nil {
			return nil, err
		}
	}
	if want[OutFigures] {
		var buf bytes.Buffer
		for _, id := range cfg.Experiments {
			fmt.Fprintf(&buf, "# experiment: %s\n", id)
			if err := bench.Run(id, bench.Options{Quick: cfg.Quick}, &buf); err != nil {
				return nil, fmt.Errorf("artifact: experiment %s: %w", id, err)
			}
			buf.WriteByte('\n')
		}
		out.Figures = buf.Bytes()
	}
	return out, nil
}

// WriteDir writes the rendered artifacts into dir (created as needed):
// raw.csv, summary.json, tables.md and figures.txt, as selected by the
// config's output set.
func (o *Outcome) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	files := []struct {
		name string
		data []byte
	}{
		{RawCSVName, o.RawCSV},
		{SummaryName, o.Summary},
		{TablesName, o.Tables},
		{FiguresName, o.Figures},
	}
	for _, f := range files {
		if f.data == nil {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
	}
	return nil
}

// rawHeader is the raw CSV header: the repeat/seed provenance columns
// followed by the grid schema, exactly exp.Columns() order.
func rawHeader() []string {
	return append([]string{"repeat", "seed"}, exp.ColumnNames()...)
}

// rowOf renders one result into a raw row through the schema's cell
// renderers — the same strings the grid CSV would carry.
func rowOf(repeat int, seed int64, r *exp.Result) Row {
	cols := exp.Columns()
	cells := make([]string, len(cols))
	for i, c := range cols {
		cells[i] = c.Cell(r)
	}
	return Row{Repeat: repeat, Seed: seed, Cells: cells}
}

// record is the row's CSV record.
func (r *Row) record() []string {
	return append([]string{strconv.Itoa(r.Repeat), strconv.FormatInt(r.Seed, 10)}, r.Cells...)
}

// renderRawCSV renders the full raw CSV (header + rows) as bytes.
func renderRawCSV(rows []Row) []byte {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	w.Write(rawHeader())
	for i := range rows {
		w.Write(rows[i].record())
	}
	w.Flush()
	return buf.Bytes()
}

// ReadRawCSV parses a raw artifact CSV back into rows, verifying the
// header against the current schema — the schema-agreement check of
// tools/artifactcheck.
func ReadRawCSV(rd io.Reader) ([]Row, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = len(rawHeader())
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("artifact: reading raw csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("artifact: raw csv is empty")
	}
	want := rawHeader()
	for i, h := range recs[0] {
		if h != want[i] {
			return nil, fmt.Errorf("artifact: raw csv column %d is %q, schema says %q — artifact and exp.Columns() disagree",
				i, h, want[i])
		}
	}
	var rows []Row
	for _, rec := range recs[1:] {
		rep, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("artifact: bad repeat cell %q", rec[0])
		}
		seed, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("artifact: bad seed cell %q", rec[1])
		}
		rows = append(rows, Row{Repeat: rep, Seed: seed, Cells: rec[2:]})
	}
	return rows, nil
}
