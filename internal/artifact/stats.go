package artifact

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"numamig/internal/exp"
)

// Row is one raw data point: one scenario result from one repeat,
// carried as the rendered schema cells (aligned with exp.Columns()).
// The analysis pass deliberately consumes the *rendered strings*, not
// the in-memory Result: whatever precision the CSV keeps is the
// precision the analysis sees, so recomputing the summary from a
// written raw.csv reproduces it byte for byte.
type Row struct {
	Repeat int
	Seed   int64
	Cells  []string
}

// colIndex maps schema column names to their cell position.
func colIndex() map[string]int {
	idx := map[string]int{}
	for i, n := range exp.ColumnNames() {
		idx[n] = i
	}
	return idx
}

// MetricStats is one metric column's grouped statistics over a cell's
// repeats. Std is the sample standard deviation (n-1 denominator),
// defined as 0 for n < 2.
type MetricStats struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Cell is one grid cell (one scenario ID) with its axis coordinates
// and grouped per-metric statistics.
type Cell struct {
	ID      string        `json:"id"`
	Family  string        `json:"family"`
	Variant string        `json:"variant"`
	Pages   int           `json:"pages"`
	Nodes   int           `json:"nodes"`
	Metrics []MetricStats `json:"metrics"`
}

// Metric returns the cell's stats for a metric name (nil when the
// metric is outside the campaign's metric set).
func (c *Cell) Metric(name string) *MetricStats {
	for i := range c.Metrics {
		if c.Metrics[i].Metric == name {
			return &c.Metrics[i]
		}
	}
	return nil
}

// Speedup is one computed relative-speedup ratio: the Metric mean of
// cell ID over the mean of BaselineID.
type Speedup struct {
	Name       string  `json:"name"`
	Metric     string  `json:"metric"`
	ID         string  `json:"id"`
	BaselineID string  `json:"baseline_id"`
	Ratio      float64 `json:"ratio"`
}

// Analysis is the grouped result of one campaign: the machine-readable
// summary.json payload.
type Analysis struct {
	Schema    string    `json:"schema"`
	Config    Config    `json:"config"`
	Scenarios int       `json:"scenarios"`
	RowCount  int       `json:"rows"`
	Metrics   []string  `json:"metrics"`
	MaxRelStd float64   `json:"max_rel_std"`
	Cells     []Cell    `json:"cells"`
	Speedups  []Speedup `json:"speedups,omitempty"`
}

// CellByID returns the analysis cell with the given scenario ID.
func (a *Analysis) CellByID(id string) *Cell {
	for i := range a.Cells {
		if a.Cells[i].ID == id {
			return &a.Cells[i]
		}
	}
	return nil
}

// variantOf strips the family prefix and the pages/nodes tokens from a
// scenario ID, leaving the variant axis: the tokens that distinguish
// strategy/mode/workload within one (family, pages, nodes) cell.
// E.g. "migration/patched/sync/p64/n2" -> "patched/sync".
func variantOf(id string, pages, nodes int) string {
	toks := strings.Split(id, "/")
	if len(toks) <= 1 {
		return ""
	}
	pTok := fmt.Sprintf("p%d", pages)
	nTok := fmt.Sprintf("n%d", nodes)
	var keep []string
	for _, t := range toks[1:] {
		if t == pTok || t == nTok {
			continue
		}
		keep = append(keep, t)
	}
	return strings.Join(keep, "/")
}

// Analyze groups raw rows into per-cell statistics and computes the
// configured speedup ratios. It enforces the campaign's completeness
// contract — every cell must carry exactly one row per repeat, every
// repeat 0..Repeats-1, seeds must match the seed policy, and no row
// may carry a scenario error — and the Tolerance bound on the relative
// std of every table metric.
func Analyze(cfg *Config, rows []Row) (*Analysis, error) {
	idx := colIndex()
	idCol, errCol := idx["id"], idx["err"]
	pagesCol, nodesCol := idx["pages"], idx["nodes"]
	metrics := cfg.metrics()

	type acc struct {
		cell    Cell
		seen    []bool      // per-repeat presence
		samples [][]float64 // per-metric, in metrics order
	}
	var order []string
	cells := map[string]*acc{}

	for ri := range rows {
		row := &rows[ri]
		if len(row.Cells) != len(exp.ColumnNames()) {
			return nil, fmt.Errorf("artifact: row %d has %d cells, schema has %d",
				ri, len(row.Cells), len(exp.ColumnNames()))
		}
		if row.Repeat < 0 || row.Repeat >= cfg.Repeats {
			return nil, fmt.Errorf("artifact: row %d: repeat %d outside 0..%d",
				ri, row.Repeat, cfg.Repeats-1)
		}
		if want := cfg.SeedFor(row.Repeat); row.Seed != want {
			return nil, fmt.Errorf("artifact: row %d: seed %d, policy %s derives %d for repeat %d",
				ri, row.Seed, cfg.SeedPolicy, want, row.Repeat)
		}
		if e := row.Cells[errCol]; e != "" {
			return nil, fmt.Errorf("artifact: scenario %q failed: %s", row.Cells[idCol], e)
		}
		id := row.Cells[idCol]
		a := cells[id]
		if a == nil {
			pages, err := strconv.Atoi(row.Cells[pagesCol])
			if err != nil {
				return nil, fmt.Errorf("artifact: row %d: bad pages cell %q", ri, row.Cells[pagesCol])
			}
			nodes, err := strconv.Atoi(row.Cells[nodesCol])
			if err != nil {
				return nil, fmt.Errorf("artifact: row %d: bad nodes cell %q", ri, row.Cells[nodesCol])
			}
			a = &acc{
				cell: Cell{
					ID:      id,
					Family:  strings.SplitN(id, "/", 2)[0],
					Variant: variantOf(id, pages, nodes),
					Pages:   pages,
					Nodes:   nodes,
				},
				seen:    make([]bool, cfg.Repeats),
				samples: make([][]float64, len(metrics)),
			}
			cells[id] = a
			order = append(order, id)
		}
		if a.seen[row.Repeat] {
			return nil, fmt.Errorf("artifact: scenario %q appears twice in repeat %d", id, row.Repeat)
		}
		a.seen[row.Repeat] = true
		for mi, m := range metrics {
			v, err := strconv.ParseFloat(row.Cells[idx[m]], 64)
			if err != nil {
				return nil, fmt.Errorf("artifact: scenario %q repeat %d: metric %s cell %q is not numeric",
					id, row.Repeat, m, row.Cells[idx[m]])
			}
			a.samples[mi] = append(a.samples[mi], v)
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("artifact: no rows to analyze")
	}

	an := &Analysis{
		Schema:    SummarySchema,
		Config:    *cfg,
		Scenarios: len(order),
		RowCount:  len(rows),
		Metrics:   metrics,
	}
	for _, id := range order {
		a := cells[id]
		for r, ok := range a.seen {
			if !ok {
				return nil, fmt.Errorf("artifact: scenario %q missing repeat %d of %d", id, r, cfg.Repeats)
			}
		}
		for mi, m := range metrics {
			a.cell.Metrics = append(a.cell.Metrics, summarize(m, a.samples[mi]))
		}
		an.Cells = append(an.Cells, a.cell)
	}

	// The stability bound applies to the headline metrics — the ones
	// the rendered tables publish.
	tableMetric := map[string]bool{}
	for _, t := range cfg.tables() {
		tableMetric[t.Metric] = true
	}
	for ci := range an.Cells {
		c := &an.Cells[ci]
		for _, ms := range c.Metrics {
			if !tableMetric[ms.Metric] || ms.Mean == 0 {
				continue
			}
			rel := ms.Std / math.Abs(ms.Mean)
			if rel > an.MaxRelStd {
				an.MaxRelStd = rel
			}
			if cfg.Tolerance > 0 && rel > cfg.Tolerance {
				return nil, fmt.Errorf("artifact: cell %q metric %s: relative std %.4f exceeds tolerance %.4f",
					c.ID, ms.Metric, rel, cfg.Tolerance)
			}
		}
	}

	for _, spec := range cfg.Speedups {
		an.Speedups = append(an.Speedups, speedups(spec, an)...)
	}
	return an, nil
}

// summarize computes one metric's grouped statistics.
func summarize(name string, xs []float64) MetricStats {
	ms := MetricStats{Metric: name, N: len(xs)}
	if len(xs) == 0 {
		return ms
	}
	ms.Min, ms.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < ms.Min {
			ms.Min = x
		}
		if x > ms.Max {
			ms.Max = x
		}
	}
	// Identical samples get exact stats: mean = the sample, std = 0.
	// Fixed-seed repeats are byte-identical replicas, and their zero
	// spread must not be blurred by sum/n rounding (0.000714*3/3 is not
	// 0.000714 in float64).
	if ms.Min == ms.Max {
		ms.Mean = ms.Min
		return ms
	}
	ms.Mean = sum / float64(len(xs))
	if len(xs) >= 2 {
		ss := 0.0
		for _, x := range xs {
			d := x - ms.Mean
			ss += d * d
		}
		ms.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return ms
}

// speedups computes one spec's ratios over the analysis cells, in cell
// order. Cells whose variant lacks the numerator token, whose baseline
// cell is missing (e.g. lazy-kernel has no unpatched twin), or whose
// baseline mean is 0 are skipped.
func speedups(spec SpeedupSpec, an *Analysis) []Speedup {
	var out []Speedup
	for ci := range an.Cells {
		c := &an.Cells[ci]
		toks := strings.Split(c.Variant, "/")
		hit := -1
		for i, t := range toks {
			if t == spec.Numer {
				hit = i
				break
			}
		}
		if hit < 0 {
			continue
		}
		baseToks := append(append([]string{}, toks[:hit]...), spec.Denom)
		baseToks = append(baseToks, toks[hit+1:]...)
		baseVariant := strings.Join(baseToks, "/")
		var base *Cell
		for bi := range an.Cells {
			b := &an.Cells[bi]
			if b.Family == c.Family && b.Pages == c.Pages && b.Nodes == c.Nodes && b.Variant == baseVariant {
				base = b
				break
			}
		}
		if base == nil {
			continue
		}
		num, den := c.Metric(spec.Metric), base.Metric(spec.Metric)
		if num == nil || den == nil || den.Mean == 0 {
			continue
		}
		out = append(out, Speedup{
			Name:       spec.Name,
			Metric:     spec.Metric,
			ID:         c.ID,
			BaselineID: base.ID,
			Ratio:      num.Mean / den.Mean,
		})
	}
	return out
}
