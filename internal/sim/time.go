// Package sim implements a deterministic discrete-event simulation (DES)
// engine used as the substrate for the NUMA machine model.
//
// The engine executes simulated processes (Proc) one at a time: a single
// execution token is passed between the engine goroutine and at most one
// process goroutine, so process code never races and a run with a fixed
// seed is reproducible bit for bit.
//
// On top of the core engine the package provides the synchronization
// vocabulary the kernel model needs: counting resources with FIFO queueing
// (Resource), reader/writer locks (RWLock), one-shot condition events
// (Event), wait groups (WaitGroup), a max-min fair fluid bandwidth network
// (Fluid/Link) used to model memory controllers and HyperTransport links,
// and per-category cost accounting (Acct).
package sim

import "fmt"

// Time is virtual simulated time in nanoseconds.
type Time int64

// Duration constants for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a virtual time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts seconds to virtual Time, rounding to nanoseconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Micros converts a floating-point microsecond count to Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }
