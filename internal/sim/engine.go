package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// event is a scheduled occurrence: either waking a process or running a
// callback in engine context (callbacks must not block).
type event struct {
	t   Time
	seq uint64
	p   *Proc
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is a deterministic discrete-event simulator. All processes run in
// goroutines, but a single execution token guarantees that exactly one of
// them (or the engine itself) executes at any instant, so simulated code
// needs no synchronization and runs are reproducible.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	yield    chan struct{}
	live     map[*Proc]struct{}
	nextID   int
	failure  error
	nsteps   uint64
	MaxSteps uint64 // optional runaway guard; 0 = unlimited

	// Rand is a deterministic source shared by all simulated code.
	Rand *rand.Rand
}

// NewEngine returns an engine with the given deterministic seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

func (e *Engine) schedule(t Time, p *Proc, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p, fn: fn})
}

// At schedules fn to run in engine context after delay d. fn must not
// block; it may fire events, release resources and schedule further work.
func (e *Engine) At(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn creates a new process running fn and schedules it to start at the
// current time. It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	e.nextID++
	p := &Proc{
		eng:    e,
		id:     e.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && e.failure == nil {
				e.failure = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
			}
			delete(e.live, p)
			p.done = true
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Run executes events until the queue drains. It returns an error if a
// process panicked, if the step guard tripped, or if processes remain
// blocked with no pending events (deadlock).
func (e *Engine) Run() error {
	for e.failure == nil && e.events.Len() > 0 {
		if e.MaxSteps > 0 && e.nsteps >= e.MaxSteps {
			return fmt.Errorf("sim: exceeded %d steps at t=%v", e.MaxSteps, e.now)
		}
		ev := heap.Pop(&e.events).(event)
		e.nsteps++
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
			continue
		}
		ev.p.resume <- struct{}{}
		<-e.yield
	}
	if e.failure != nil {
		return e.failure
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return fmt.Errorf("sim: deadlock at t=%v: %d blocked procs %v", e.now, len(names), names)
	}
	return nil
}

// MustRun runs the simulation and panics on error. Intended for examples
// and benchmarks where an engine error is a programming bug.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}
