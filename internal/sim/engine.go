package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// event is a scheduled occurrence: either waking a process or running a
// callback in engine context (callbacks must not block).
type event struct {
	p  *Proc
	fn func()
}

// bucket holds every event scheduled for one instant, in scheduling
// (FIFO) order. Coalescing simultaneous events into one heap node keeps
// the heap small when many daemons share a wake period, and the FIFO
// drain preserves the (time, schedule-sequence) order the previous
// binary-heap implementation guaranteed: within a bucket, append order
// is exactly sequence order, and across buckets times strictly increase.
type bucket struct {
	t  Time
	ev []event
	i  int // next event to drain
}

// Engine is a deterministic discrete-event simulator. All processes run in
// goroutines, but a single execution token guarantees that exactly one of
// them (or the engine itself) executes at any instant, so simulated code
// needs no synchronization and runs are reproducible.
//
// The event queue is a hand-rolled min-heap of time buckets: one bucket
// per distinct timestamp, events appended in scheduling order. Scheduling
// an event at an already-pending instant is an O(1) append (no heap
// sift), drained buckets are recycled through a free list, and no
// interface boxing occurs on the hot path.
type Engine struct {
	now     Time
	buckets map[Time]*bucket
	heap    []*bucket // min-heap on t; excludes cur
	cur     *bucket   // bucket currently draining (earliest time)
	npend   int       // events not yet drained
	freeb   []*bucket

	yield    chan struct{}
	live     map[*Proc]struct{}
	nextID   int
	failure  error
	nsteps   uint64
	MaxSteps uint64 // optional runaway guard; 0 = unlimited

	// Rand is a deterministic source shared by all simulated code.
	Rand *rand.Rand
}

// NewEngine returns an engine with the given deterministic seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		buckets: make(map[Time]*bucket, 64),
		heap:    make([]*bucket, 0, 64),
		yield:   make(chan struct{}),
		live:    make(map[*Proc]struct{}),
		Rand:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

func (e *Engine) schedule(t Time, p *Proc, fn func()) {
	if t < e.now {
		t = e.now
	}
	b := e.buckets[t]
	if b == nil {
		b = e.getBucket(t)
		e.buckets[t] = b
		e.pushBucket(b)
	}
	b.ev = append(b.ev, event{p: p, fn: fn})
	e.npend++
}

// getBucket takes a bucket from the free list (retaining its event
// backing array) or allocates one.
func (e *Engine) getBucket(t Time) *bucket {
	if n := len(e.freeb); n > 0 {
		b := e.freeb[n-1]
		e.freeb[n-1] = nil
		e.freeb = e.freeb[:n-1]
		b.t = t
		b.i = 0
		b.ev = b.ev[:0]
		return b
	}
	return &bucket{t: t, ev: make([]event, 0, 8)}
}

func (e *Engine) putBucket(b *bucket) {
	if len(e.freeb) < 64 {
		e.freeb = append(e.freeb, b)
	}
}

// pushBucket inserts b into the time min-heap. Bucket times are
// distinct (one bucket per instant), so no tie-break is needed.
func (e *Engine) pushBucket(b *bucket) {
	h := append(e.heap, b)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].t <= h[i].t {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	e.heap = h
}

// popBucket removes and returns the earliest bucket.
func (e *Engine) popBucket() *bucket {
	h := e.heap
	b := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].t < h[s].t {
			s = l
		}
		if r < n && h[r].t < h[s].t {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return b
}

// next returns the earliest pending event. The draining bucket stays in
// the timestamp index until empty, so an event scheduled at the current
// instant (by the event being processed) lands in the same bucket and
// fires this instant, after everything already queued — exactly the
// sequence-number order of the previous implementation.
func (e *Engine) next() (event, bool) {
	for {
		if e.cur == nil {
			if len(e.heap) == 0 {
				return event{}, false
			}
			e.cur = e.popBucket()
		}
		b := e.cur
		if b.i < len(b.ev) {
			ev := b.ev[b.i]
			b.ev[b.i] = event{}
			b.i++
			e.npend--
			return ev, true
		}
		delete(e.buckets, b.t)
		e.putBucket(b)
		e.cur = nil
	}
}

// dispatch outcomes: who got the execution token.
const (
	dispatchSelf    = iota // the yielding proc's own wake was next: it continues
	dispatchHanded         // another proc was resumed directly
	dispatchDrained        // queue empty, guard tripped, or failure set
)

// dispatch advances the simulation in the calling goroutine — whichever
// one holds the execution token. self is the yielding proc (nil when the
// Run loop dispatches). Engine callbacks run inline; the loop stops at
// the first proc wake-up. When that wake-up is self's own, the caller
// simply continues — the common consecutive-sleep case costs no channel
// operations and no goroutine switch; otherwise the token passes
// directly proc-to-proc without bouncing through the engine goroutine.
// Event order comes solely from next(), so which goroutine dispatches
// never affects the schedule.
func (e *Engine) dispatch(self *Proc) int {
	for e.failure == nil {
		if e.MaxSteps > 0 && e.nsteps >= e.MaxSteps {
			return dispatchDrained
		}
		ev, ok := e.next()
		if !ok {
			return dispatchDrained
		}
		e.nsteps++
		e.now = e.cur.t
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.p == self {
			return dispatchSelf
		}
		ev.p.resume <- struct{}{}
		return dispatchHanded
	}
	return dispatchDrained
}

// At schedules fn to run in engine context after delay d. fn must not
// block; it may fire events, release resources and schedule further work.
func (e *Engine) At(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn creates a new process running fn and schedules it to start at the
// current time. It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	e.nextID++
	p := &Proc{
		eng:    e,
		id:     e.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && e.failure == nil {
				e.failure = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
			}
			delete(e.live, p)
			p.done = true
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Run executes events until the queue drains. It returns an error if a
// process panicked, if the step guard tripped, or if processes remain
// blocked with no pending events (deadlock). The loop only sees the
// token when no proc can continue: once handed to a proc, the token
// wanders proc-to-proc through dispatch until the queue drains, a guard
// trips, or a proc finishes.
func (e *Engine) Run() error {
	for e.failure == nil && e.npend > 0 {
		if e.MaxSteps > 0 && e.nsteps >= e.MaxSteps {
			return fmt.Errorf("sim: exceeded %d steps at t=%v", e.MaxSteps, e.now)
		}
		if e.dispatch(nil) == dispatchHanded {
			<-e.yield
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return fmt.Errorf("sim: deadlock at t=%v: %d blocked procs %v", e.now, len(names), names)
	}
	return nil
}

// MustRun runs the simulation and panics on error. Intended for examples
// and benchmarks where an engine error is a programming bug.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}
