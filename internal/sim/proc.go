package sim

// Proc is a simulated process: a goroutine that advances virtual time by
// sleeping, transferring bytes through the fluid network, and blocking on
// resources and events. Exactly one Proc executes at a time.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	done   bool

	acct *Acct
	cats []string // category stack for cost accounting
}

// Eng returns the owning engine.
func (p *Proc) Eng() *Engine { return p.eng }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id.
func (p *Proc) ID() int { return p.id }

// Now returns current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// park yields the token and blocks until rescheduled. Callers must have
// arranged for a future wake-up (timer event, resource grant, event
// fire), otherwise Run reports a deadlock. The proc dispatches the next
// events itself: when its own wake is the next proc event (the common
// consecutive-sleep case) it continues with no goroutine switch at all,
// and otherwise it hands the token straight to the next runnable proc.
func (p *Proc) park() {
	switch p.eng.dispatch(p) {
	case dispatchSelf:
		return
	case dispatchDrained:
		p.eng.yield <- struct{}{} // return the token to Run
	}
	<-p.resume
}

// wake schedules p to resume at the current time (FIFO among same-time
// events).
func (p *Proc) wake() {
	p.eng.schedule(p.eng.now, p, nil)
}

// Sleep advances the process's virtual time by d, charging it to the
// current accounting category.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.charge(d)
	if d == 0 {
		return
	}
	p.eng.schedule(p.eng.now+d, p, nil)
	p.park()
}

// Yield reschedules the process behind all other work pending at the
// current instant.
func (p *Proc) Yield() {
	p.wake()
	p.park()
}

// Spawn starts a child process.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.eng.Spawn(name, fn)
}

// SetAcct attaches a cost account; subsequent Sleep/Transfer/lock waits
// are charged to the top category of the category stack.
func (p *Proc) SetAcct(a *Acct) { p.acct = a }

// Acct returns the attached cost account (may be nil).
func (p *Proc) Acct() *Acct { return p.acct }

// PushCat pushes an accounting category; the returned func pops it.
// Typical use: defer p.PushCat("copy")(). Pushing the empty string masks
// outer categories: time spent is not charged anywhere.
func (p *Proc) PushCat(cat string) func() {
	p.cats = append(p.cats, cat)
	return func() { p.cats = p.cats[:len(p.cats)-1] }
}

// InCat runs fn with cat as the active accounting category.
func (p *Proc) InCat(cat string, fn func()) {
	defer p.PushCat(cat)()
	fn()
}

// charge records d against the current accounting category, if any.
func (p *Proc) charge(d Time) {
	if p.acct == nil || len(p.cats) == 0 || d <= 0 {
		return
	}
	if cat := p.cats[len(p.cats)-1]; cat != "" {
		p.acct.Add(cat, d)
	}
}
