package sim

import "sort"

// Acct accumulates virtual time per named cost category. It backs the
// per-operation cost breakdowns of Figures 6(a) and 6(b).
type Acct struct {
	m map[string]Time
}

// NewAcct creates an empty account.
func NewAcct() *Acct { return &Acct{m: map[string]Time{}} }

// Add accumulates d against category cat.
func (a *Acct) Add(cat string, d Time) { a.m[cat] += d }

// Get returns the accumulated time for cat.
func (a *Acct) Get(cat string) Time { return a.m[cat] }

// Total returns the sum over all categories.
func (a *Acct) Total() Time {
	var t Time
	for _, v := range a.m {
		t += v
	}
	return t
}

// Categories returns the category names in sorted order.
func (a *Acct) Categories() []string {
	cats := make([]string, 0, len(a.m))
	for c := range a.m {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Percent returns cat's share of the total in percent (0 if empty).
func (a *Acct) Percent(cat string) float64 {
	tot := a.Total()
	if tot == 0 {
		return 0
	}
	return 100 * float64(a.m[cat]) / float64(tot)
}

// Reset clears all categories.
func (a *Acct) Reset() { a.m = map[string]Time{} }

// Clone returns a deep copy.
func (a *Acct) Clone() *Acct {
	c := NewAcct()
	for k, v := range a.m {
		c.m[k] = v
	}
	return c
}
