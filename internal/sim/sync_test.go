package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "mutex", 1)
	inside := 0
	max := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p)
			inside++
			if inside > max {
				max = inside
			}
			p.Sleep(10 * Microsecond)
			inside--
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", max)
	}
	if r.Contended != 4 {
		t.Fatalf("contended = %d, want 4", r.Contended)
	}
	if r.WaitTime != (1+2+3+4)*10*Microsecond {
		t.Fatalf("wait time = %v, want 100us", r.WaitTime)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "sem", 2)
	var done Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Microsecond)
			r.Release()
			done = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs of 10us with 2 slots: finishes at 20us.
	if done != 20*Microsecond {
		t.Fatalf("done = %v, want 20us", done)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "m", 1)
	var order []int
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100 * Microsecond)
		r.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i+1) * Microsecond) // enqueue in index order
			r.Acquire(p)
			order = append(order, i)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "m", 1)
	var got []bool
	e.Spawn("a", func(p *Proc) {
		got = append(got, r.TryAcquire())
		got = append(got, r.TryAcquire())
		r.Release()
		got = append(got, r.TryAcquire())
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryAcquire seq = %v, want %v", got, want)
		}
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	e := NewEngine(1)
	l := NewRWLock(e, "sem")
	var readersIn, maxReaders int
	writerIn := false
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *Proc) {
			l.RLock(p)
			if writerIn {
				t.Error("reader entered while writer held")
			}
			readersIn++
			if readersIn > maxReaders {
				maxReaders = readersIn
			}
			p.Sleep(10 * Microsecond)
			readersIn--
			l.RUnlock()
		})
	}
	e.Spawn("w", func(p *Proc) {
		p.Sleep(Microsecond)
		l.Lock(p)
		if readersIn != 0 {
			t.Error("writer entered with readers inside")
		}
		writerIn = true
		p.Sleep(10 * Microsecond)
		writerIn = false
		l.Unlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxReaders != 3 {
		t.Fatalf("max concurrent readers = %d, want 3", maxReaders)
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	e := NewEngine(1)
	l := NewRWLock(e, "sem")
	var writerAt Time
	e.Spawn("r0", func(p *Proc) {
		l.RLock(p)
		p.Sleep(10 * Microsecond)
		l.RUnlock()
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(Microsecond)
		l.Lock(p)
		writerAt = p.Now()
		l.Unlock()
	})
	// A reader arriving after the writer queues must wait behind it.
	var lateReaderAt Time
	e.Spawn("r1", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		l.RLock(p)
		lateReaderAt = p.Now()
		l.RUnlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if writerAt != 10*Microsecond {
		t.Fatalf("writer acquired at %v, want 10us", writerAt)
	}
	if lateReaderAt < writerAt {
		t.Fatalf("late reader at %v jumped the queued writer at %v", lateReaderAt, writerAt)
	}
}

func TestEventFireReleasesAllAndIsIdempotent(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	var woke []string
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, fmt.Sprintf("w%d@%v", i, p.Now()))
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		ev.Fire()
		ev.Fire()
		// Wait after fire returns immediately.
		ev.Wait(p)
		woke = append(woke, "firer@"+p.Now().String())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 4 {
		t.Fatalf("woke = %v, want 4 entries", woke)
	}
	if !strings.HasPrefix(woke[0], "firer") {
		// firer continues synchronously before waiters get the token
		t.Fatalf("woke order = %v", woke)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e, 3)
	var done Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i+1) * 10 * Microsecond)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 30*Microsecond {
		t.Fatalf("waitgroup released at %v, want 30us", done)
	}
}

func TestWaitGroupZeroImmediatelyReleased(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e, 0)
	ok := false
	e.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("waiter not released on zero count")
	}
}

func TestAcctCategories(t *testing.T) {
	a := NewAcct()
	a.Add("copy", 80*Microsecond)
	a.Add("ctl", 20*Microsecond)
	if a.Total() != 100*Microsecond {
		t.Fatalf("total = %v", a.Total())
	}
	if p := a.Percent("copy"); p != 80 {
		t.Fatalf("copy%% = %v, want 80", p)
	}
	cats := a.Categories()
	if len(cats) != 2 || cats[0] != "copy" || cats[1] != "ctl" {
		t.Fatalf("cats = %v", cats)
	}
	c := a.Clone()
	c.Add("copy", 20*Microsecond)
	if a.Get("copy") != 80*Microsecond {
		t.Fatal("clone aliases original")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestProcAcctCharging(t *testing.T) {
	e := NewEngine(1)
	a := NewAcct()
	e.Spawn("p", func(p *Proc) {
		p.SetAcct(a)
		p.InCat("work", func() {
			p.Sleep(10 * Microsecond)
			p.InCat("inner", func() {
				p.Sleep(5 * Microsecond)
			})
			p.Sleep(10 * Microsecond)
		})
		p.Sleep(99 * Microsecond) // uncategorized: not charged
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Get("work") != 20*Microsecond {
		t.Fatalf("work = %v, want 20us", a.Get("work"))
	}
	if a.Get("inner") != 5*Microsecond {
		t.Fatalf("inner = %v, want 5us", a.Get("inner"))
	}
	if a.Total() != 25*Microsecond {
		t.Fatalf("total = %v, want 25us", a.Total())
	}
}

func TestResourceWaitChargedToCategory(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "m", 1)
	a := NewAcct()
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(40 * Microsecond)
		r.Release()
	})
	e.Spawn("waiter", func(p *Proc) {
		p.SetAcct(a)
		p.Sleep(10 * Microsecond)
		p.InCat("lock", func() {
			r.Acquire(p)
			r.Release()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Get("lock") != 30*Microsecond {
		t.Fatalf("lock wait charged %v, want 30us", a.Get("lock"))
	}
}
