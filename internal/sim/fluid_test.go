package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// expectClose fails unless got is within tol (relative) of want.
func expectClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Fatalf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestFluidSingleTransferRate(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9) // 1 GB/s
	var dur Time
	e.Spawn("x", func(p *Proc) {
		start := p.Now()
		f.Transfer(p, 1e6, l) // 1 MB at 1GB/s = 1ms
		dur = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	expectClose(t, "duration", float64(dur), float64(Millisecond), 1e-6)
	if l.Bytes != 1e6 {
		t.Fatalf("link bytes = %v", l.Bytes)
	}
}

func TestFluidTwoTransfersShareLink(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	var d1, d2 Time
	e.Spawn("a", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 1e6, l)
		d1 = p.Now() - s
	})
	e.Spawn("b", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 1e6, l)
		d2 = p.Now() - s
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share the link: each takes 2ms.
	expectClose(t, "d1", float64(d1), 2*float64(Millisecond), 1e-3)
	expectClose(t, "d2", float64(d2), 2*float64(Millisecond), 1e-3)
}

func TestFluidUnequalJobsWorkConserving(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	var dShort, dLong Time
	e.Spawn("short", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 0.5e6, l)
		dShort = p.Now() - s
	})
	e.Spawn("long", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 1.5e6, l)
		dLong = p.Now() - s
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Short: shares until its 0.5MB drains at 0.5GB/s = 1ms.
	expectClose(t, "dShort", float64(dShort), float64(Millisecond), 1e-3)
	// Long: 0.5MB during the shared ms, then 1.0MB alone at 1GB/s = 1ms more.
	expectClose(t, "dLong", float64(dLong), 2*float64(Millisecond), 1e-3)
}

func TestFluidPathBottleneck(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	fast := NewLink("fast", 4e9)
	slow := NewLink("slow", 1e9)
	var d Time
	e.Spawn("x", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 1e6, fast, slow)
		d = p.Now() - s
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	expectClose(t, "duration", float64(d), float64(Millisecond), 1e-6)
}

func TestFluidMaxMinFairnessCrossTraffic(t *testing.T) {
	// Job A uses links L1+L2; job B uses L1 only; job C uses L2 only.
	// L1 cap 1, L2 cap 2 (GB/s). Max-min: A=0.5, B=0.5 on L1;
	// C gets L2 residual = 1.5.
	e := NewEngine(1)
	f := NewFluid(e)
	l1 := NewLink("l1", 1e9)
	l2 := NewLink("l2", 2e9)
	res := map[string]Time{}
	run := func(name string, bytes float64, links ...*Link) {
		e.Spawn(name, func(p *Proc) {
			s := p.Now()
			f.Transfer(p, bytes, links...)
			res[name] = p.Now() - s
		})
	}
	// Large enough that completion-order effects are negligible at start.
	run("A", 0.5e6, l1, l2)
	run("B", 0.5e6, l1)
	run("C", 1.5e6, l2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	expectClose(t, "A", float64(res["A"]), float64(Millisecond), 0.01)
	expectClose(t, "B", float64(res["B"]), float64(Millisecond), 0.01)
	expectClose(t, "C", float64(res["C"]), float64(Millisecond), 0.01)
}

func TestFluidStaggeredArrival(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	var d1 Time
	e.Spawn("first", func(p *Proc) {
		s := p.Now()
		f.Transfer(p, 1e6, l)
		d1 = p.Now() - s
	})
	e.Spawn("second", func(p *Proc) {
		p.Sleep(500 * Microsecond)
		f.Transfer(p, 1e6, l)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// First: alone for 0.5ms (0.5MB done), shared for 1ms (0.5MB at half
	// rate) = 1.5ms total.
	expectClose(t, "d1", float64(d1), 1.5*float64(Millisecond), 1e-3)
}

func TestFluidZeroBytesNoop(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	e.Spawn("x", func(p *Proc) {
		f.Transfer(p, 0, l)
		if p.Now() != 0 {
			t.Error("zero transfer advanced time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFluidManyTransfersConservation(t *testing.T) {
	// N equal jobs over one link must take exactly N * bytes / cap.
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 2e9)
	const n = 16
	var last Time
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			f.Transfer(p, 1e6, l)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	expectClose(t, "makespan", float64(last), float64(n)*1e6/2e9*float64(Second), 1e-3)
}

// TestFluidWaterfillProperties checks, over random configurations, that
// the rate assignment (a) never oversubscribes a link and (b) is
// work-conserving at each bottleneck (every job is limited by at least
// one saturated link).
func TestFluidWaterfillProperties(t *testing.T) {
	check := func(seed int64) bool {
		e := NewEngine(seed)
		f := NewFluid(e)
		rng := e.Rand
		nLinks := 2 + rng.Intn(4)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = NewLink(fmt.Sprintf("l%d", i), float64(1+rng.Intn(8))*1e9)
		}
		nJobs := 1 + rng.Intn(8)
		for i := 0; i < nJobs; i++ {
			// Random non-empty subset of links.
			var ls []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					ls = append(ls, l)
				}
			}
			if len(ls) == 0 {
				ls = append(ls, links[rng.Intn(nLinks)])
			}
			j := &fjob{links: ls, remaining: 1e6}
			f.jobs = append(f.jobs, j)
		}
		f.waterfill()
		// (a) No link oversubscribed.
		load := map[*Link]float64{}
		for _, j := range f.jobs {
			if j.rate <= 0 {
				return false
			}
			for _, l := range j.links {
				load[l] += j.rate
			}
		}
		for l, v := range load {
			if v > l.Cap*(1+1e-9) {
				return false
			}
		}
		// (b) Every job crosses at least one saturated link.
		for _, j := range f.jobs {
			sat := false
			for _, l := range j.links {
				if load[l] >= l.Cap*(1-1e-9) {
					sat = true
					break
				}
			}
			if !sat {
				return false
			}
		}
		f.jobs = nil
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFluidTransferChargesAcct(t *testing.T) {
	e := NewEngine(1)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	a := NewAcct()
	e.Spawn("x", func(p *Proc) {
		p.SetAcct(a)
		p.InCat("copy", func() {
			f.Transfer(p, 1e6, l)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	expectClose(t, "acct copy", float64(a.Get("copy")), float64(Millisecond), 1e-6)
}

// TestFluidInterleavedStartStop stresses membership churn: transfers of
// random sizes starting at random times must all complete and total
// link bytes must equal the sum of transfer sizes.
func TestFluidInterleavedStartStop(t *testing.T) {
	e := NewEngine(5)
	f := NewFluid(e)
	l := NewLink("l", 1e9)
	var total float64
	done := 0
	const n = 50
	for i := 0; i < n; i++ {
		sz := float64(1+e.Rand.Intn(1000)) * 1e3
		delay := Time(e.Rand.Intn(2000)) * Microsecond
		total += sz
		e.Spawn(fmt.Sprintf("x%d", i), func(p *Proc) {
			p.Sleep(delay)
			f.Transfer(p, sz, l)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if math.Abs(l.Bytes-total) > 1 {
		t.Fatalf("link bytes = %v, want %v", l.Bytes, total)
	}
	if f.Active() != 0 {
		t.Fatalf("active jobs left: %d", f.Active())
	}
}

// TestFluidMakespanLowerBound: the makespan can never beat the most
// loaded link's total bytes divided by its capacity.
func TestFluidMakespanLowerBound(t *testing.T) {
	e := NewEngine(9)
	f := NewFluid(e)
	a := NewLink("a", 1e9)
	b := NewLink("b", 2e9)
	var last Time
	loads := map[*Link]float64{}
	for i := 0; i < 12; i++ {
		links := []*Link{a}
		if i%3 == 0 {
			links = []*Link{a, b}
		} else if i%3 == 1 {
			links = []*Link{b}
		}
		sz := float64(100+e.Rand.Intn(900)) * 1e3
		for _, l := range links {
			loads[l] += sz
		}
		ls := links
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			f.Transfer(p, sz, ls...)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	bound := loads[a] / a.Cap
	if lb := loads[b] / b.Cap; lb > bound {
		bound = lb
	}
	if last.Seconds() < bound*(1-1e-9) {
		t.Fatalf("makespan %v beats lower bound %.6fs", last, bound)
	}
}
