package sim

import (
	"math"
	"sync/atomic"
)

// Link is a capacity-limited channel in the fluid bandwidth network: a
// memory controller, a HyperTransport link, a per-core copy engine, or the
// kernel's page-migration channel. Capacity is in bytes per second.
type Link struct {
	Name string
	Cap  float64 // bytes/second

	// Stats.
	Bytes float64 // total bytes served

	// waterfill scratch state
	residual float64
	njobs    int
	settled  bool
	wfMark   uint64 // generation stamp: dedup without a per-call map
}

// wfGen issues globally unique waterfill generation stamps. Global and
// atomic because links may be shared between Fluid instances and
// engines run concurrently in parallel scenario workers; the stamp only
// ever answers "seen in this waterfill call?" so its value never
// influences simulated behaviour.
var wfGen atomic.Uint64

// NewLink creates a link with the given capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("sim: link capacity must be positive: " + name)
	}
	return &Link{Name: name, Cap: capacity}
}

type fjob struct {
	links     []*Link
	remaining float64
	rate      float64
	p         *Proc
	settled   bool
}

// Fluid models concurrent bulk transfers over shared links with max-min
// fair bandwidth allocation (progressive water-filling). Each transfer
// occupies a path of links; its instantaneous rate is recomputed whenever
// the set of active transfers changes. This reproduces the
// processor-sharing behaviour of real memory controllers and interconnect
// links under contention.
type Fluid struct {
	eng     *Engine
	jobs    []*fjob
	lastUpd Time
	gen     uint64
	wfLinks []*Link // waterfill scratch, reused across reconfigures
}

// NewFluid creates a fluid network on the engine.
func NewFluid(e *Engine) *Fluid { return &Fluid{eng: e} }

// Active returns the number of in-flight transfers.
func (f *Fluid) Active() int { return len(f.jobs) }

// Transfer moves bytes across the path of links, blocking the calling
// process until complete. Bandwidth is shared max-min fairly with all
// concurrent transfers. The elapsed time is charged to the caller's
// current accounting category.
func (f *Fluid) Transfer(p *Proc, bytes float64, links ...*Link) {
	if bytes <= 0 {
		return
	}
	if len(links) == 0 {
		panic("sim: transfer with no links")
	}
	start := f.eng.now
	j := &fjob{links: links, remaining: bytes, p: p}
	f.advance()
	f.jobs = append(f.jobs, j)
	for _, l := range links {
		l.Bytes += bytes
	}
	f.reconfigure()
	p.park()
	p.charge(f.eng.now - start)
}

// advance drains progress for all jobs up to the current instant.
func (f *Fluid) advance() {
	dt := f.eng.now - f.lastUpd
	f.lastUpd = f.eng.now
	if dt <= 0 {
		return
	}
	sec := dt.Seconds()
	for _, j := range f.jobs {
		j.remaining -= j.rate * sec
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
}

// reconfigure recomputes max-min fair rates and schedules the next
// completion instant.
func (f *Fluid) reconfigure() {
	f.gen++
	if len(f.jobs) == 0 {
		return
	}
	f.waterfill()
	// Next completion.
	minDt := math.Inf(1)
	for _, j := range f.jobs {
		if j.rate <= 0 {
			continue
		}
		if dt := j.remaining / j.rate; dt < minDt {
			minDt = dt
		}
	}
	if math.IsInf(minDt, 1) {
		// All rates zero: cannot happen with positive link capacities.
		panic("sim: fluid jobs with zero rate")
	}
	dtNs := Time(math.Ceil(minDt * float64(Second)))
	if dtNs < 1 {
		dtNs = 1
	}
	gen := f.gen
	f.eng.At(dtNs, func() {
		if f.gen != gen {
			return // superseded by a later membership change
		}
		f.advance()
		f.complete()
	})
}

// complete finishes all drained jobs, waking their processes, then
// reconfigures the remainder.
func (f *Fluid) complete() {
	const eps = 1e-3 // bytes; completion times are rounded up to 1ns
	kept := f.jobs[:0]
	for _, j := range f.jobs {
		if j.remaining <= eps {
			j.p.wake()
		} else {
			kept = append(kept, j)
		}
	}
	f.jobs = kept
	f.reconfigure()
}

// waterfill assigns max-min fair rates: repeatedly find the most
// constrained link (smallest residual capacity per unsettled job), fix
// that share for its jobs, subtract, and continue. Deterministic: links
// and jobs are visited in stable slice order.
func (f *Fluid) waterfill() {
	gen := wfGen.Add(1)
	links := f.wfLinks[:0]
	for _, j := range f.jobs {
		j.rate = 0
		j.settled = false
		for _, l := range j.links {
			if l.wfMark != gen {
				l.wfMark = gen
				l.residual = l.Cap
				l.njobs = 0
				l.settled = false
				links = append(links, l)
			}
		}
	}
	f.wfLinks = links
	for _, j := range f.jobs {
		for _, l := range j.links {
			l.njobs++
		}
	}
	unsettledJobs := len(f.jobs)
	for unsettledJobs > 0 {
		// Find bottleneck link.
		var bn *Link
		best := math.Inf(1)
		for _, l := range links {
			if l.settled || l.njobs == 0 {
				continue
			}
			share := l.residual / float64(l.njobs)
			if share < best {
				best = share
				bn = l
			}
		}
		if bn == nil {
			panic("sim: waterfill found no bottleneck with unsettled jobs")
		}
		bn.settled = true
		for _, j := range f.jobs {
			if j.settled {
				continue
			}
			onBn := false
			for _, l := range j.links {
				if l == bn {
					onBn = true
					break
				}
			}
			if !onBn {
				continue
			}
			j.rate = best
			j.settled = true
			unsettledJobs--
			for _, l := range j.links {
				if l == bn {
					continue
				}
				l.residual -= best
				if l.residual < 0 {
					l.residual = 0
				}
				l.njobs--
			}
		}
		bn.njobs = 0
	}
}
