package sim

// Resource is a counting resource (capacity >= 1) with FIFO queueing.
// Capacity 1 gives a mutex. Waiting time is charged to the waiter's
// current accounting category and recorded in the contention stats.
type Resource struct {
	eng   *Engine
	name  string
	cap   int
	inUse int
	queue []resWaiter
	// Stats.
	Acquires  uint64
	Contended uint64
	WaitTime  Time
}

type resWaiter struct {
	p   *Proc
	enq Time
	pri int
}

// NewResource creates a resource with the given capacity.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire obtains one unit, blocking in FIFO order if none is free.
func (r *Resource) Acquire(p *Proc) { r.AcquirePri(p, 0) }

// AcquirePri obtains one unit like Acquire, but a contended waiter
// enqueues ahead of every waiter with a strictly lower priority (FIFO
// among equals). Priority 0 is exactly Acquire, so existing callers
// keep their queue order bit for bit; higher values let
// latency-sensitive requests overtake batch work already queued on the
// resource. The holder is never preempted — priority only reorders the
// wait queue.
func (r *Resource) AcquirePri(p *Proc, pri int) {
	r.Acquires++
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.Contended++
	w := resWaiter{p: p, enq: r.eng.now, pri: pri}
	at := len(r.queue)
	for at > 0 && r.queue[at-1].pri < pri {
		at--
	}
	r.queue = append(r.queue, resWaiter{})
	copy(r.queue[at+1:], r.queue[at:])
	r.queue[at] = w
	p.park()
	// When resumed, the releaser has transferred the unit to us.
}

// TryAcquire obtains a unit without blocking; reports whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.Acquires++
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit; the longest waiter (if any) receives it.
// May be called from proc or engine-callback context.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		wait := r.eng.now - w.enq
		r.WaitTime += wait
		w.p.charge(wait)
		w.p.wake() // unit stays accounted in inUse, ownership transfers
		return
	}
	r.inUse--
}

// With runs fn while holding the resource.
func (r *Resource) With(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// RWLock is a writer-preferring reader/writer lock with FIFO fairness
// between waiter classes, modelled after the kernel's mmap_sem.
type RWLock struct {
	eng     *Engine
	name    string
	readers int
	writer  bool
	queue   []rwWaiter
	// Stats.
	Acquires  uint64
	Contended uint64
	WaitTime  Time
}

type rwWaiter struct {
	p     *Proc
	write bool
	enq   Time
}

// NewRWLock creates a reader/writer lock.
func NewRWLock(e *Engine, name string) *RWLock {
	return &RWLock{eng: e, name: name}
}

// RLock acquires the lock shared.
func (l *RWLock) RLock(p *Proc) {
	l.Acquires++
	if !l.writer && len(l.queue) == 0 {
		l.readers++
		return
	}
	l.Contended++
	l.queue = append(l.queue, rwWaiter{p: p, write: false, enq: l.eng.now})
	p.park()
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	if l.readers <= 0 {
		panic("sim: runlock of rwlock " + l.name + " with no readers")
	}
	l.readers--
	l.dispatch()
}

// Lock acquires the lock exclusive.
func (l *RWLock) Lock(p *Proc) {
	l.Acquires++
	if !l.writer && l.readers == 0 && len(l.queue) == 0 {
		l.writer = true
		return
	}
	l.Contended++
	l.queue = append(l.queue, rwWaiter{p: p, write: true, enq: l.eng.now})
	p.park()
}

// Unlock releases an exclusive hold.
func (l *RWLock) Unlock() {
	if !l.writer {
		panic("sim: unlock of rwlock " + l.name + " not held exclusive")
	}
	l.writer = false
	l.dispatch()
}

func (l *RWLock) dispatch() {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if w.write {
			if l.writer || l.readers > 0 {
				return
			}
			l.writer = true
			l.queue = l.queue[1:]
			l.grant(w)
			return
		}
		if l.writer {
			return
		}
		l.readers++
		l.queue = l.queue[1:]
		l.grant(w)
	}
}

func (l *RWLock) grant(w rwWaiter) {
	wait := l.eng.now - w.enq
	l.WaitTime += wait
	w.p.charge(wait)
	w.p.wake()
}

// Event is a one-shot condition: processes Wait until someone Fires it.
// Waiting after the fire returns immediately.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Wait blocks until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.park()
}

// Fire releases all current and future waiters. Idempotent. Callable from
// proc or engine-callback context.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		p.wake()
	}
	ev.waiters = nil
}

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	eng *Engine
	n   int
	ev  *Event
}

// NewWaitGroup creates a wait group with an initial count.
func NewWaitGroup(e *Engine, n int) *WaitGroup {
	wg := &WaitGroup{eng: e, n: n, ev: NewEvent(e)}
	if n == 0 {
		wg.ev.Fire()
	}
	return wg
}

// Add increments the count by k (k may be negative via Done).
func (wg *WaitGroup) Add(k int) {
	wg.n += k
	if wg.n < 0 {
		panic("sim: negative waitgroup count")
	}
	if wg.n == 0 {
		wg.ev.Fire()
	}
}

// Done decrements the count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait(p *Proc) { wg.ev.Wait(p) }
