package sim

import (
	"math/rand"
	"testing"
)

// Property: the bucket queue drains in strict (time, schedule-sequence)
// order — absolute times nondecreasing, and FIFO among events scheduled
// for the same instant — including events scheduled mid-drain for the
// instant currently draining (they append to the draining bucket and
// run this instant, after everything already pending there) and across
// free-list bucket recycling. The drain loop below is exactly what
// Engine.dispatch does, minus the token handoff.
func TestBucketQueueOrderProperty(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		rng := rand.New(rand.NewSource(200 + trial))
		e := NewEngine(1)

		type stamp struct {
			at  Time // absolute target time
			seq int  // global scheduling sequence
		}
		var drained []stamp
		seq := 0
		var add func(at Time)
		add = func(at Time) {
			s := stamp{at: at, seq: seq}
			seq++
			e.schedule(at, nil, func() {
				drained = append(drained, s)
				// Mid-drain scheduling: sometimes add an event for the
				// very instant being drained and one for a later time.
				if s.seq < 3000 && rng.Intn(4) == 0 {
					add(e.now)
					add(e.now + Time(1+rng.Intn(30)))
				}
			})
		}

		// Several waves so the queue fully drains and refills, cycling
		// buckets through the free list.
		total := 0
		for wave := 0; wave < 5; wave++ {
			for i := 0; i < 200; i++ {
				add(e.now + Time(rng.Intn(25)))
			}
			for {
				ev, ok := e.next()
				if !ok {
					break
				}
				e.nsteps++
				e.now = e.cur.t
				ev.fn()
			}
			total = len(drained)
		}
		if total != seq {
			t.Fatalf("trial %d: drained %d events, scheduled %d", trial, total, seq)
		}
		for i := 1; i < len(drained); i++ {
			prev, cur := drained[i-1], drained[i]
			if cur.at < prev.at {
				// Every event is scheduled at e.now+delta with e.now
				// monotonic, so absolute targets must drain in
				// nondecreasing order even across waves.
				t.Fatalf("trial %d: drain %d went back in time: %d after %d (seq %d after %d)",
					trial, i, cur.at, prev.at, cur.seq, prev.seq)
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				t.Fatalf("trial %d: drain %d broke FIFO at t=%d: seq %d after %d",
					trial, i, cur.at, cur.seq, prev.seq)
			}
		}
	}
}
