package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(10 * Microsecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15*Microsecond {
		t.Fatalf("end = %v, want 15us", end)
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTimerOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(3*Microsecond, func() { order = append(order, "c") })
	e.At(1*Microsecond, func() { order = append(order, "a") })
	e.At(2*Microsecond, func() { order = append(order, "b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine(1)
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		p.Spawn("child", func(c *Proc) {
			c.Sleep(2 * Microsecond)
			childTime = c.Now()
		})
		p.Sleep(100 * Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 9*Microsecond {
		t.Fatalf("child end = %v, want 9us", childTime)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	e.Spawn("stuck", func(p *Proc) {
		ev.Wait(p) // never fired
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error should name the proc: %v", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	e := NewEngine(1)
	e.MaxSteps = 100
	e.Spawn("spin", func(p *Proc) {
		for {
			p.Sleep(Nanosecond)
		}
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("err = %v, want step guard", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() string {
		e := NewEngine(42)
		var sb strings.Builder
		r := NewResource(e, "r", 2)
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Sleep(Time(e.Rand.Intn(100)) * Nanosecond)
				r.Acquire(p)
				fmt.Fprintf(&sb, "%d@%d;", i, p.Now())
				p.Sleep(50 * Nanosecond)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("nondeterministic runs:\n%s\n%s", a, b)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a1,b1,a2" {
		t.Fatalf("order = %q, want a1,b1,a2", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{15 * Microsecond, "15.00us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.00ms" /* placeholder replaced below */},
	}
	cases[3].want = "2000.00ms"
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if Micros(2.5) != 2500*Nanosecond {
		t.Errorf("Micros(2.5) = %v", Micros(2.5))
	}
}
