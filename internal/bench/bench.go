// Package bench regenerates every table and figure of the paper's
// evaluation section (§4) on the simulated platform. Each experiment
// returns the same rows/series the paper reports; cmd/numabench and the
// root-level Go benchmarks drive it.
package bench

import (
	"fmt"
	"io"
	"sort"

	"numamig/internal/kern"
	"numamig/internal/report"
	"numamig/internal/sim"
	"numamig/internal/workload"
)

// Options controls experiment scale.
type Options struct {
	// Quick trims sweeps to sizes that run in seconds; full mode uses
	// the paper's exact parameter ranges.
	Quick bool
}

// pagesFig4 returns the Figure 4 x axis (number of 4 KiB pages).
func (o Options) pagesFig4() []int {
	if o.Quick {
		return []int{1, 16, 256, 1024, 4096}
	}
	return []int{1, 4, 16, 64, 256, 1024, 4096, 16384}
}

// pagesFig5 returns the Figure 5/6 x axis.
func (o Options) pagesFig5() []int {
	if o.Quick {
		return []int{4, 64, 1024}
	}
	return []int{4, 16, 64, 256, 1024, 4096}
}

// pagesFig7 returns the Figure 7 x axis.
func (o Options) pagesFig7() []int {
	if o.Quick {
		return []int{64, 1024, 16384}
	}
	return []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
}

// Figure4 regenerates "Migration and memory copy throughput comparison
// between NUMA nodes #0 and #1" (MB/s vs pages).
func Figure4(o Options) (*report.Figure, error) {
	fig := report.NewFigure("Figure 4: migration and memory copy throughput (node 0 -> node 1)",
		"pages", "MB/s")
	methods := []workload.MigMethod{
		workload.Memcpy, workload.MigratePages,
		workload.MovePagesPatched, workload.MovePagesUnpatched,
	}
	for _, m := range methods {
		s := fig.NewSeries(m.String())
		for _, p := range o.pagesFig4() {
			v, err := workload.SyncMigration(p, m)
			if err != nil {
				return nil, fmt.Errorf("fig4 %v/%d: %w", m, p, err)
			}
			s.Add(float64(p), v)
		}
	}
	return fig, nil
}

// Figure5 regenerates "Next-touch performance comparison" (MB/s vs
// pages).
func Figure5(o Options) (*report.Figure, error) {
	fig := report.NewFigure("Figure 5: Next-touch migration throughput (node 0 -> node 1)",
		"pages", "MB/s")
	variants := []workload.NTVariant{
		workload.UserNTUnpatched, workload.UserNTPatched, workload.KernelNT,
	}
	for _, v := range variants {
		s := fig.NewSeries(v.String())
		for _, p := range o.pagesFig5() {
			mbps, _, err := workload.NextTouch(p, v)
			if err != nil {
				return nil, fmt.Errorf("fig5 %v/%d: %w", v, p, err)
			}
			s.Add(float64(p), mbps)
		}
	}
	return fig, nil
}

// breakdown turns an account into ordered (category, percent) rows.
func breakdown(a *sim.Acct, cats []string) []float64 {
	out := make([]float64, len(cats))
	// Percentages over the listed categories only, so rounding noise in
	// unlisted buckets cannot distort the figure.
	var tot sim.Time
	for _, c := range cats {
		tot += a.Get(c)
	}
	if tot == 0 {
		return out
	}
	for i, c := range cats {
		out[i] = 100 * float64(a.Get(c)) / float64(tot)
	}
	return out
}

// Figure6a regenerates the user-space next-touch cost breakdown
// (percent per category vs pages).
func Figure6a(o Options) (*report.Table, error) {
	cats := []string{
		kern.CatMovePagesCopy, kern.CatMovePagesCtl,
		kern.CatMprotectRest, kern.CatFaultSignal, kern.CatMprotectMark,
	}
	tbl := report.NewTable("Figure 6a: user-space Next-touch cost breakdown (%)",
		append([]string{"pages"}, cats...)...)
	for _, p := range o.pagesFig5() {
		_, acct, err := workload.NextTouch(p, workload.UserNTPatched)
		if err != nil {
			return nil, err
		}
		pct := breakdown(acct, cats)
		row := []interface{}{p}
		for _, v := range pct {
			row = append(row, v)
		}
		tbl.Add(row...)
	}
	return tbl, nil
}

// Figure6b regenerates the kernel next-touch cost breakdown.
func Figure6b(o Options) (*report.Table, error) {
	cats := []string{kern.CatNTCopy, kern.CatNTCtl, kern.CatMadvise}
	tbl := report.NewTable("Figure 6b: kernel Next-touch cost breakdown (%)",
		append([]string{"pages"}, cats...)...)
	for _, p := range o.pagesFig5() {
		_, acct, err := workload.NextTouch(p, workload.KernelNT)
		if err != nil {
			return nil, err
		}
		pct := breakdown(acct, cats)
		row := []interface{}{p}
		for _, v := range pct {
			row = append(row, v)
		}
		tbl.Add(row...)
	}
	return tbl, nil
}

// Figure7 regenerates "Throughput of a parallel Lazy migration (kernel
// Next-touch) and a synchronous migration (move_pages) using up to 4
// threads on the same NUMA node".
func Figure7(o Options) (*report.Figure, error) {
	fig := report.NewFigure("Figure 7: threaded migration aggregate throughput (node 0 -> node 1)",
		"pages", "MB/s")
	for _, lazy := range []bool{false, true} {
		name := "Sync"
		if lazy {
			name = "Lazy"
		}
		for threads := 1; threads <= 4; threads++ {
			s := fig.NewSeries(fmt.Sprintf("%s - %d Thread(s)", name, threads))
			for _, p := range o.pagesFig7() {
				v, err := workload.ThreadedMigration(p, threads, lazy)
				if err != nil {
					return nil, err
				}
				s.Add(float64(p), v)
			}
		}
	}
	return fig, nil
}

// Table1Row is one LU configuration of Table 1.
type Table1Row struct {
	N, B int
}

// table1Rows returns the Table 1 configurations.
func (o Options) table1Rows() []Table1Row {
	if o.Quick {
		return []Table1Row{
			{2048, 64}, {2048, 128}, {2048, 256},
			{4096, 128}, {4096, 256}, {4096, 512},
			{8192, 512},
		}
	}
	return []Table1Row{
		{4096, 64}, {4096, 128}, {4096, 256},
		{8192, 128}, {8192, 256}, {8192, 512},
		{16384, 256}, {16384, 512}, {16384, 1024},
		{32768, 256}, {32768, 512},
	}
}

// Table1 regenerates "Execution time of the LU matrix factorization with
// 16 OpenMP threads" (static vs next-touch, improvement).
func Table1(o Options) (*report.Table, error) {
	tbl := report.NewTable("Table 1: LU factorization, 16 OpenMP threads",
		"Matrix", "Block", "Static", "Next-touch", "Improvement")
	for _, row := range o.table1Rows() {
		static, err := workload.RunLU(workload.LUConfig{N: row.N, B: row.B, Policy: workload.LUStatic})
		if err != nil {
			return nil, err
		}
		nt, err := workload.RunLU(workload.LUConfig{N: row.N, B: row.B, Policy: workload.LUNextTouch})
		if err != nil {
			return nil, err
		}
		imp := 100 * (static.Duration.Seconds()/nt.Duration.Seconds() - 1)
		tbl.Add(
			fmt.Sprintf("%dk x %dk", row.N/1024, row.N/1024),
			fmt.Sprintf("%d x %d", row.B, row.B),
			fmt.Sprintf("%.2f s", static.Duration.Seconds()),
			fmt.Sprintf("%.2f s", nt.Duration.Seconds()),
			fmt.Sprintf("%+.1f %%", imp),
		)
	}
	return tbl, nil
}

// fig8Sizes returns the Figure 8 matrix sizes.
func (o Options) fig8Sizes() []int {
	if o.Quick {
		return []int{128, 256, 512, 1024}
	}
	return []int{128, 256, 512, 1024, 2048}
}

// Figure8 regenerates "Execution time of 16 concurrent BLAS3 matrix
// multiplications within 16 independent threads".
func Figure8(o Options) (*report.Figure, error) {
	fig := report.NewFigure("Figure 8: 16 concurrent BLAS3 multiplications",
		"N", "seconds")
	policies := []workload.BLAS3Policy{
		workload.B3Static, workload.B3KernelNT, workload.B3UserNT,
	}
	for _, pol := range policies {
		s := fig.NewSeries(pol.String())
		for _, n := range o.fig8Sizes() {
			d, err := workload.RunBLAS3(workload.BLAS3Config{N: n, Policy: pol})
			if err != nil {
				return nil, err
			}
			s.Add(float64(n), d.Seconds())
		}
	}
	return fig, nil
}

// BLAS1 regenerates the §4.5 observation that BLAS1 (vector) operations
// never benefit from migration.
func BLAS1(o Options) (*report.Table, error) {
	sizes := []int{1 << 18, 1 << 20, 1 << 22}
	if o.Quick {
		sizes = []int{1 << 18, 1 << 20}
	}
	tbl := report.NewTable("Section 4.5: BLAS1 (DAXPY) with and without Next-touch",
		"Vector floats", "Static (interleaved)", "Next-touch", "Improvement")
	for _, n := range sizes {
		st, err := workload.RunBLAS1(workload.BLAS1Config{N: n})
		if err != nil {
			return nil, err
		}
		nt, err := workload.RunBLAS1(workload.BLAS1Config{N: n, NextTouch: true})
		if err != nil {
			return nil, err
		}
		imp := 100 * (st.Seconds()/nt.Seconds() - 1)
		tbl.Add(n,
			fmt.Sprintf("%.2f ms", st.Millis()),
			fmt.Sprintf("%.2f ms", nt.Millis()),
			fmt.Sprintf("%+.1f %%", imp),
		)
	}
	return tbl, nil
}

// ExtHuge runs the huge-page migration ablation (paper §6 future work).
func ExtHuge(o Options) (*report.Table, error) {
	sizes := []int{8, 32, 128}
	if o.Quick {
		sizes = []int{8, 32}
	}
	tbl := report.NewTable("Extension: 4 KiB vs 2 MiB huge-page migration (node 0 -> 1)",
		"MB", "move_pages (4k)", "huge (2M)", "Speedup")
	for _, mb := range sizes {
		small, huge, err := workload.HugePageMigration(mb)
		if err != nil {
			return nil, err
		}
		tbl.Add(mb,
			fmt.Sprintf("%.0f MB/s", small),
			fmt.Sprintf("%.0f MB/s", huge),
			fmt.Sprintf("%.2fx", huge/small),
		)
	}
	return tbl, nil
}

// ExtReplica runs the read-only replication ablation (paper §6 future
// work): 16 threads sweeping one hot buffer on node 0.
func ExtReplica(o Options) (*report.Table, error) {
	sweeps := 8
	if o.Quick {
		sweeps = 4
	}
	tbl := report.NewTable("Extension: read-only replication of a hot shared buffer",
		"MB", "Sweeps", "Static (node 0)", "Replicated", "Speedup")
	for _, mb := range []int{4, 16} {
		st, rp, err := workload.ReplicationStudy(mb, sweeps)
		if err != nil {
			return nil, err
		}
		tbl.Add(mb, sweeps,
			fmt.Sprintf("%.2f ms", st.Millis()),
			fmt.Sprintf("%.2f ms", rp.Millis()),
			fmt.Sprintf("%.2fx", st.Seconds()/rp.Seconds()),
		)
	}
	return tbl, nil
}

// Policies runs the placement-policy study: a 16-thread STREAM triad
// under four placements, swept repeatedly so one-time migration costs
// amortize.
func Policies(o Options) (*report.Table, error) {
	mb, sweeps := 8, 8
	if o.Quick {
		mb, sweeps = 4, 6
	}
	tbl := report.NewTable(
		fmt.Sprintf("Placement policies: 16-thread STREAM triad, %d MB/thread/vector, %d sweeps", mb, sweeps),
		"Placement", "Time", "vs first-touch")
	base, err := workload.PolicyStudy(mb, sweeps, workload.PolFirstTouchLocal)
	if err != nil {
		return nil, err
	}
	for _, pol := range []workload.PolicyKind{
		workload.PolFirstTouchLocal, workload.PolInterleaved,
		workload.PolNode0, workload.PolNextTouchFix,
	} {
		d, err := workload.PolicyStudy(mb, sweeps, pol)
		if err != nil {
			return nil, err
		}
		tbl.Add(pol.String(),
			fmt.Sprintf("%.2f ms", d.Millis()),
			fmt.Sprintf("%.2fx", d.Seconds()/base.Seconds()),
		)
	}
	return tbl, nil
}

// Experiments lists the runnable experiment ids.
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type runner func(Options, io.Writer) error

var registry = map[string]runner{
	"fig4": func(o Options, w io.Writer) error {
		f, err := Figure4(o)
		if err != nil {
			return err
		}
		f.Write(w)
		return nil
	},
	"fig5": func(o Options, w io.Writer) error {
		f, err := Figure5(o)
		if err != nil {
			return err
		}
		f.Write(w)
		return nil
	},
	"fig6a": func(o Options, w io.Writer) error {
		t, err := Figure6a(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"fig6b": func(o Options, w io.Writer) error {
		t, err := Figure6b(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"fig7": func(o Options, w io.Writer) error {
		f, err := Figure7(o)
		if err != nil {
			return err
		}
		f.Write(w)
		return nil
	},
	"table1": func(o Options, w io.Writer) error {
		t, err := Table1(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"fig8": func(o Options, w io.Writer) error {
		f, err := Figure8(o)
		if err != nil {
			return err
		}
		f.Write(w)
		return nil
	},
	"blas1": func(o Options, w io.Writer) error {
		t, err := BLAS1(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"exthuge": func(o Options, w io.Writer) error {
		t, err := ExtHuge(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"extreplica": func(o Options, w io.Writer) error {
		t, err := ExtReplica(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
	"policies": func(o Options, w io.Writer) error {
		t, err := Policies(o)
		if err != nil {
			return err
		}
		t.Write(w)
		return nil
	},
}

// Run executes one experiment by id, writing its table/figure to w.
func Run(name string, o Options, w io.Writer) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return r(o, w)
}
