package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny options keep the smoke tests fast while exercising every
// experiment end to end.
func tiny() Options { return Options{Quick: true} }

func TestExperimentsRegistryComplete(t *testing.T) {
	want := []string{"blas1", "exthuge", "extreplica", "fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8", "policies", "table1"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", tiny(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFigure4Smoke(t *testing.T) {
	fig, err := Figure4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	out := fig.String()
	for _, name := range []string{"memcpy", "migrate_pages", "move_pages", "no patch"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %q:\n%s", name, out)
		}
	}
}

func TestFigure5And6Smoke(t *testing.T) {
	fig, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	t6a, err := Figure6a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(t6a.Rows) == 0 {
		t.Fatal("empty 6a")
	}
	t6b, err := Figure6b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(t6b.Rows) == 0 {
		t.Fatal("empty 6b")
	}
}

func TestFigure7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	fig, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 8 { // sync/lazy x 1..4 threads
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	tbl, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(tiny().table1Rows()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.String()
	if !strings.Contains(out, "Improvement") || !strings.Contains(out, "%") {
		t.Fatalf("table shape wrong:\n%s", out)
	}
}

func TestFigure8AndBLAS1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	fig, err := Figure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	tbl, err := BLAS1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestExtensionExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	th, err := ExtHuge(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Rows) != 2 {
		t.Fatalf("exthuge rows = %d", len(th.Rows))
	}
	tr, err := ExtReplica(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 2 {
		t.Fatalf("extreplica rows = %d", len(tr.Rows))
	}
	tp, err := Policies(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Rows) != 4 {
		t.Fatalf("policies rows = %d", len(tp.Rows))
	}
}

func TestRunAllIDsViaRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	for _, id := range []string{"fig4", "fig5", "fig6a", "fig6b"} {
		var buf bytes.Buffer
		if err := Run(id, tiny(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}
