// Perf harness: a fixed grid of simulator-core workloads measured in
// wall time, so every PR commits a comparable BENCH_core.json /
// BENCH_exp.json pair and the repository records a performance
// trajectory instead of anecdotes. cmd/numabench -perf drives it; see
// ARCHITECTURE.md ("Performance trajectory") for the schema and the
// workflow, and tools/benchcmp for comparing two reports.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	numamig "numamig"
	"numamig/internal/exp"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/workload"
)

// PerfSchema identifies the report layout; bump on incompatible change.
const PerfSchema = "numamig-bench/v1"

// PerfOptions controls the perf run.
type PerfOptions struct {
	// Quick shrinks every point to CI-smoke size (trimmed grids, a
	// smaller task smoke). Committed reports should use full size.
	Quick bool
	// Parallel is the grid runner's worker count (0 = GOMAXPROCS).
	Parallel int
	// Repeats is how many times each point runs; the fastest repeat is
	// reported (0 = 3). Simulated results are deterministic, so repeats
	// only reduce host-scheduling noise.
	Repeats int
	// Seed is the deterministic scenario seed (0 = 1).
	Seed int64
}

func (o PerfOptions) repeats() int {
	if o.Repeats <= 0 {
		return 3
	}
	return o.Repeats
}

func (o PerfOptions) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// PerfPoint is one measured workload of a report.
type PerfPoint struct {
	Name string `json:"name"`
	// Scenarios is the number of simulated scenarios (or tasks, for
	// the smoke point) one run of the point executes.
	Scenarios int `json:"scenarios"`
	// WallNs is the fastest repeat's wall time for the whole point;
	// NsPerScenario and ScenariosPerSec derive from it.
	WallNs          int64   `json:"wall_ns"`
	NsPerScenario   int64   `json:"ns_per_scenario"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	// PagesMigrated counts simulated page migrations per run
	// (deterministic); PagesMigratedPerSec relates simulated work to
	// host wall time.
	PagesMigrated       uint64  `json:"pages_migrated"`
	PagesMigratedPerSec float64 `json:"pages_migrated_per_sec"`
	// AllocsPerOp / BytesPerOp are heap allocations and bytes per
	// scenario, from runtime.MemStats deltas of the fastest repeat.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// PeakRSSDeltaBytes is how much this point raised the process
	// high-water RSS (Linux VmHWM) across all its repeats. Per-point
	// (unlike the report-level PeakRSSBytes), so a memory regression is
	// attributable; 0 when the point stayed under an earlier point's
	// peak, since the high-water mark is monotonic.
	PeakRSSDeltaBytes int64 `json:"peak_rss_delta_bytes,omitempty"`
}

// PerfReport is one BENCH_*.json document.
type PerfReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Parallel   int    `json:"parallel"`
	Repeats    int    `json:"repeats"`
	Seed       int64  `json:"seed"`
	Quick      bool   `json:"quick,omitempty"`
	// PeakRSSBytes is the process high-water resident set after the
	// whole run (Linux VmHWM; 0 where unavailable). Process-wide and
	// monotonic, so it belongs to the report, not a point.
	PeakRSSBytes int64       `json:"peak_rss_bytes,omitempty"`
	Points       []PerfPoint `json:"points"`
}

// measure runs fn repeats times and fills a point from the fastest
// repeat. fn returns the scenario count and simulated pages migrated of
// one run (deterministic across repeats).
func measure(name string, repeats int, fn func() (int, uint64)) PerfPoint {
	pt := PerfPoint{Name: name}
	rss0 := peakRSS()
	var m0, m1 runtime.MemStats
	for r := 0; r < repeats; r++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		n, pages := fn()
		wall := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&m1)
		if r == 0 || wall < pt.WallNs {
			pt.WallNs = wall
			pt.Scenarios = n
			pt.PagesMigrated = pages
			if n > 0 {
				pt.AllocsPerOp = (m1.Mallocs - m0.Mallocs) / uint64(n)
				pt.BytesPerOp = (m1.TotalAlloc - m0.TotalAlloc) / uint64(n)
			}
		}
	}
	if pt.WallNs > 0 {
		pt.NsPerScenario = pt.WallNs / int64(max(pt.Scenarios, 1))
		secs := float64(pt.WallNs) / 1e9
		pt.ScenariosPerSec = float64(pt.Scenarios) / secs
		pt.PagesMigratedPerSec = float64(pt.PagesMigrated) / secs
	}
	pt.PeakRSSDeltaBytes = peakRSS() - rss0
	return pt
}

// gridPoint measures one family set through the concurrent runner.
func gridPoint(name string, o PerfOptions, families []string, quick bool) (PerfPoint, error) {
	scs, err := exp.Scenarios(families, exp.Options{Quick: quick, Seed: o.seed()})
	if err != nil {
		return PerfPoint{}, err
	}
	pt := measure(name, o.repeats(), func() (int, uint64) {
		results := exp.Runner{Parallel: o.Parallel}.Run(scs)
		var pages uint64
		for _, r := range results {
			pages += r.PagesMoved
			if r.Err != "" {
				panic(fmt.Sprintf("bench: scenario %s failed: %s", r.ID, r.Err))
			}
		}
		return len(results), pages
	})
	return pt, nil
}

// churnRun is one task-churn run: an n-node grid machine running tasks
// short-lived tasks, each first-touching a small buffer and pushing it
// one node over with move_pages. Tasks are pinned round-robin over the
// machine's cores and launched one wave per core count — a core runs
// one thread at a time on real hardware, and an unbounded spawn would
// put thousands of concurrent flows on the fluid network, which costs
// O(flows) per rate reconfiguration. The run exercises the sharded
// frame allocator, the extent page-table storage and the pooled event
// queue at machine sizes the paper's host never had. demotion
// additionally starts all n kswapd daemons on the batched hub.
func churnRun(o PerfOptions, nodes, coresPerNode, tasks int, demotion bool) (int, uint64) {
	const pagesPerTask = 8
	sys := numamig.New(numamig.Config{
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		MemPerNode:   1 << 30,
		Seed:         o.seed(),
		Demotion:     demotion,
	})
	ncores := sys.Machine.NumCores()
	err := sys.Run(func(main *numamig.Task) {
		for done := 0; done < tasks; {
			wave := ncores
			if left := tasks - done; left < wave {
				wave = left
			}
			wg := sim.NewWaitGroup(sys.Eng, wave)
			for i := 0; i < wave; i++ {
				core := numamig.CoreID((done + i) % ncores)
				main.Proc.Spawn("churn", core, func(t *numamig.Task) {
					defer wg.Done()
					b := numamig.MustAlloc(t, pagesPerTask*numamig.PageSize, numamig.Policy{})
					if err := b.Access(t, numamig.Stream, true); err != nil {
						panic(err)
					}
					dst := (t.Node() + 1) % numamig.NodeID(nodes)
					if err := b.MoveTo(t, dst, true); err != nil {
						panic(err)
					}
					if err := b.Access(t, numamig.Stream, false); err != nil {
						panic(err)
					}
					if err := b.Free(t); err != nil {
						panic(err)
					}
				})
			}
			done += wave
			wg.Wait(main.P)
		}
	})
	if err != nil {
		panic(err)
	}
	return tasks, sys.Migrator(numamig.Patched).Stats.PagesMoved
}

// smokePoint is the original 64-node task smoke, kept under its
// historical name so the recorded trajectory stays comparable.
func smokePoint(o PerfOptions) PerfPoint {
	tasks := 10000
	if o.Quick {
		tasks = 1000
	}
	return measure(fmt.Sprintf("smoke/64node-%dtask", tasks), o.repeats(), func() (int, uint64) {
		return churnRun(o, 64, 2, tasks, false)
	})
}

// scalePoint is the ROADMAP's datacenter target: a 256-node machine
// pushing 100k short-lived tasks through the churn loop with every
// node's demotion daemon live on the batched hub. The acceptance bound
// is single-digit seconds per run on CI hardware.
func scalePoint(o PerfOptions) PerfPoint {
	nodes, tasks := 256, 100000
	if o.Quick {
		nodes, tasks = 64, 5000
	}
	return measure(fmt.Sprintf("scale/%dnode-%dtask", nodes, tasks), o.repeats(), func() (int, uint64) {
		return churnRun(o, nodes, 2, tasks, true)
	})
}

// scaleConstructPoint measures cold construction of 1024-node machines
// — a generated grid plus kernel, and a 16-socket hierarchical machine
// with CXL expanders — the path that used to pay dense O(n²) distance
// and O(n³) route precomputes and an O(n²) zonelist build.
func scaleConstructPoint(o PerfOptions) PerfPoint {
	builds := 4
	if o.Quick {
		builds = 1
	}
	return measure("scale/1024node-construct", o.repeats(), func() (int, uint64) {
		for i := 0; i < builds; i++ {
			sys := numamig.New(numamig.Config{
				Nodes:        1024,
				CoresPerNode: 1,
				MemPerNode:   1 << 30,
				Seed:         o.seed(),
			})
			_ = sys.Machine.NumCores()
			m := topology.Hierarchy(topology.HierarchyConfig{
				Sockets: 16, DiesPerSocket: 4, NodesPerDie: 15, CXLPerSocket: 4,
				CoresPerNode: 1, MemPerNode: 1 << 30, L3PerNode: 2 << 20,
				CXLMemPerNode: 4 << 30,
			})
			if m.NumNodes() != 1024 {
				panic("scale: hierarchy is not 1024 nodes")
			}
		}
		return builds, 0
	})
}

// scaleIdlePoint measures a 1024-node machine where every kswapd daemon
// is registered and idle: one application task sleeps through many
// kswapd periods while 1024 unpressured daemons tick. With per-daemon
// parked procs this was ~1024 queue entries per period; the hub
// coalesces each period into one group event, so the point's cost is
// the determinism tax of keeping the daemons armed, not their count.
func scaleIdlePoint(o PerfOptions) PerfPoint {
	periods := 200
	if o.Quick {
		periods = 50
	}
	return measure(fmt.Sprintf("scale/1024node-idle-%dperiods", periods), o.repeats(), func() (int, uint64) {
		sys := numamig.New(numamig.Config{
			Nodes:        1024,
			CoresPerNode: 1,
			MemPerNode:   1 << 30,
			Seed:         o.seed(),
			Demotion:     true,
		})
		span := sys.Kernel.P.KswapdPeriod * sim.Time(periods)
		err := sys.Run(func(main *numamig.Task) {
			main.P.Sleep(span)
		})
		if err != nil {
			panic(err)
		}
		return periods, 0
	})
}

// RunPerf executes the perf grid and writes BENCH_core.json and
// BENCH_exp.json into dir, logging a summary line per point to log.
//
// BENCH_core contains the simulator-core points: the migration+pressure
// acceptance grid at the configured parallelism and serially, plus the
// 64-node task smoke. BENCH_exp contains one point per registered
// scenario family (quick size), so a perf regression can be attributed
// to a family.
func RunPerf(o PerfOptions, dir string, log io.Writer) error {
	report := func() PerfReport {
		return PerfReport{
			Schema:     PerfSchema,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Parallel:   o.Parallel,
			Repeats:    o.repeats(),
			Seed:       o.seed(),
			Quick:      o.Quick,
		}
	}
	emit := func(core PerfReport, pt PerfPoint) PerfReport {
		core.Points = append(core.Points, pt)
		fmt.Fprintf(log, "%-40s %4d ops  %12d ns  %10.1f ops/s  %9.0f pages/s  %7d allocs/op\n",
			pt.Name, pt.Scenarios, pt.WallNs, pt.ScenariosPerSec, pt.PagesMigratedPerSec, pt.AllocsPerOp)
		return core
	}

	core := report()
	suffix := "full"
	if o.Quick {
		suffix = "quick"
	}
	pname := func(parallel int) string {
		p := parallel
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		return "p" + strconv.Itoa(p)
	}
	mp := []string{"migration", "pressure"}
	pt, err := gridPoint("grid/migration+pressure/"+suffix+"/"+pname(o.Parallel), o, mp, o.Quick)
	if err != nil {
		return err
	}
	core = emit(core, pt)
	serial := o
	serial.Parallel = 1
	pt, err = gridPoint("grid/migration+pressure/"+suffix+"/p1", serial, mp, o.Quick)
	if err != nil {
		return err
	}
	core = emit(core, pt)
	// The same serial grid with a subscriber on every telemetry topic of
	// every System: p1-bus vs p1 is the recorded cost of a fully lit
	// event bus (the acceptance bound is <= 5%).
	numamig.SetSystemObserver(func(sys *numamig.System) {
		events := 0
		sys.Bus().SubscribeAll(func(telemetry.Event) { events++ })
		_ = events
	})
	pt, err = gridPoint("grid/migration+pressure/"+suffix+"/p1-bus", serial, mp, o.Quick)
	numamig.SetSystemObserver(nil)
	if err != nil {
		return err
	}
	core = emit(core, pt)
	core = emit(core, smokePoint(o))
	core = emit(core, scalePoint(o))
	core.PeakRSSBytes = peakRSS()
	if err := writeReport(dir, "BENCH_core.json", core); err != nil {
		return err
	}

	expRep := report()
	for _, fam := range exp.Families() {
		pt, err := gridPoint("family/"+fam+"/quick/"+pname(o.Parallel), o, []string{fam}, true)
		if err != nil {
			return err
		}
		expRep = emit(expRep, pt)
	}
	expRep.PeakRSSBytes = peakRSS()
	return writeReport(dir, "BENCH_exp.json", expRep)
}

// servePoint is one saturated multi-tenant serve machine measured
// directly through workload.Serve: the largest topology the serve
// family supports (7 DRAM nodes + 1 CXL expander, one tenant per fast
// core) with doubled probe rounds, so the point is dominated by the
// tenancy fast paths — cap-redirected faults, ledger charges on every
// residency change, priority queueing through the migration engine and
// the kswapd cap-reclaim. The run's own SLO invariants stay enforced:
// a cap violation fails the bench.
func servePoint(o PerfOptions) PerfPoint {
	fast, tenants, rounds := 7, 28, 16
	if o.Quick {
		fast, tenants, rounds = 3, 12, 8
	}
	return measure(fmt.Sprintf("serve/%dfast-%dtenant-%dround", fast, tenants, rounds), o.repeats(), func() (int, uint64) {
		// SlowRatio 4: the cap-reclaim daemons may demote a batch
		// tenant's whole working set, so the lone expander must absorb
		// every batch tenant's full buffer at once.
		r, err := workload.Serve(workload.ServeConfig{
			FastNodes: fast,
			SlowNodes: 1,
			SlowRatio: 4,
			Tenants:   tenants,
			Rounds:    rounds,
			Seed:      o.seed(),
		})
		if err != nil {
			panic(err)
		}
		if r.CapViolations != 0 || r.LeakedPages != 0 {
			panic(fmt.Sprintf("serve bench: %d cap violations, %d leaked pages", r.CapViolations, r.LeakedPages))
		}
		st := r.Stats
		pages := st.MovePagesPages + st.NTMigrations + st.MigratePages + st.NumaPagesPromoted + st.PagesDemoted
		return tenants, pages
	})
}

// RunServePerf executes the multi-tenant serving points — the serve
// scenario grid at the configured parallelism and serially, plus the
// saturated direct-driver point — and writes BENCH_serve.json into
// dir. cmd/numabench -perf -serve drives it; the CI bench-serve job
// runs the quick sizes and gates them with tools/benchcmp like the
// core and scale trajectories.
func RunServePerf(o PerfOptions, dir string, log io.Writer) error {
	rep := PerfReport{
		Schema:     PerfSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   o.Parallel,
		Repeats:    o.repeats(),
		Seed:       o.seed(),
		Quick:      o.Quick,
	}
	emit := func(pt PerfPoint) {
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(log, "%-40s %4d ops  %12d ns  %10.1f ops/s  %9.0f pages/s  %7d allocs/op\n",
			pt.Name, pt.Scenarios, pt.WallNs, pt.ScenariosPerSec, pt.PagesMigratedPerSec, pt.AllocsPerOp)
	}
	suffix := "full"
	if o.Quick {
		suffix = "quick"
	}
	pname := func(parallel int) string {
		if parallel <= 0 {
			parallel = runtime.GOMAXPROCS(0)
		}
		return "p" + strconv.Itoa(parallel)
	}
	pt, err := gridPoint("grid/serve/"+suffix+"/"+pname(o.Parallel), o, []string{"serve"}, o.Quick)
	if err != nil {
		return err
	}
	emit(pt)
	serial := o
	serial.Parallel = 1
	pt, err = gridPoint("grid/serve/"+suffix+"/p1", serial, []string{"serve"}, o.Quick)
	if err != nil {
		return err
	}
	emit(pt)
	emit(servePoint(o))
	rep.PeakRSSBytes = peakRSS()
	return writeReport(dir, "BENCH_serve.json", rep)
}

// RunScalePerf executes only the datacenter-scale points — the
// 256-node × 100k-task churn, 1024-node construction, and the
// 1024-node idle-daemon smoke — and writes BENCH_scale.json into dir.
// cmd/numabench -perf -scale drives it; the CI bench-scale job runs
// the quick sizes and gates them with tools/benchcmp like the core
// trajectory.
func RunScalePerf(o PerfOptions, dir string, log io.Writer) error {
	rep := PerfReport{
		Schema:     PerfSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   o.Parallel,
		Repeats:    o.repeats(),
		Seed:       o.seed(),
		Quick:      o.Quick,
	}
	for _, pt := range []PerfPoint{scalePoint(o), scaleConstructPoint(o), scaleIdlePoint(o)} {
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(log, "%-40s %4d ops  %12d ns  %10.1f ops/s  %9.0f pages/s  %7d allocs/op\n",
			pt.Name, pt.Scenarios, pt.WallNs, pt.ScenariosPerSec, pt.PagesMigratedPerSec, pt.AllocsPerOp)
	}
	rep.PeakRSSBytes = peakRSS()
	return writeReport(dir, "BENCH_scale.json", rep)
}

func writeReport(dir, name string, r PerfReport) error {
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name, []byte(buf.String()), 0o644)
}

// peakRSS reads the process high-water RSS from /proc/self/status
// (VmHWM, in kB). Best-effort: 0 on any platform or parse trouble.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
