// Package placement is the single placement-decision layer of the
// simulated kernel: every consumer that needs to answer "which node
// gets this frame?" goes through it.
//
// Before this package existed the answer was re-derived independently
// in five places — first-touch fault allocation, the mempolicy paths,
// the migration engine's destination fallback, AutoNUMA promotion, and
// replica placement — each with its own policy switch or ad-hoc
// distance loop. The Placer centralizes all of them on two structures:
//
//   - Zonelists: for every node, the machine's nodes ordered by
//     (memory tier, SLIT distance) from it — the node itself first,
//     then faster-or-equal tiers before slower ones, by distance
//     within a tier, ties broken by id — like the kernel's
//     node_zonelists on a tiered machine. Every fallback walk — full
//     target node, pressured target node, demotion target, replica
//     placement — is a walk of one zonelist, so allocations under
//     pressure spill toward near tiers before far ones.
//
//   - Watermarks: per-node min/low/high thresholds (stored in
//     mem.Phys, installed here from model.Params fractions).
//     Allocation proceeds in passes, mirroring get_page_from_freelist:
//     the first pass only takes nodes comfortably above their low
//     watermark; if none qualifies the walk retries down to the min
//     watermark, then takes any node with a free frame. A walk that
//     falls through the first pass boosts the target node's watermarks
//     (Params.WatermarkBoostFactor, Linux's watermark_boost_factor)
//     so the burst is visible to kswapd before the node truly sinks.
//     The kswapd daemons (internal/kern) poll mem.Phys.UnderPressure
//     on their wake period to notice nodes this walk has pushed to the
//     (boosted) low watermark.
//
// Memory tiers (model.Params.NodeTier/TierClasses) are first-class:
// slow-tier nodes (tier > 0, e.g. simulated CXL expanders) are
// demotion-only allocation targets. The policy switch drops slow nodes
// from any nodemask that also names a fast node, first-touch never
// resolves to a slow node, and the allocation walk never spills onto a
// tier slower than the one the caller asked for — only an explicit
// all-slow binding, or the demotion daemons, place pages there.
//
// Policy resolution also lives here: vm.Policy is pure data, and
// Placer.Target is the only switch over policy kinds, including
// PolWeightedInterleave (MPOL_WEIGHTED_INTERLEAVE). Pressure gates for
// the other movers round out the surface: AllowPromotion (AutoNUMA
// skips promotion into pressured nodes), DemotionTarget (kswapd's
// tier choice: the next tier down when one exists, else within-tier —
// warm pages to the nearest unpressured distance group, genuinely cold
// pages to the farthest), and ReplicaNodes (replication skips
// pressured and slow-tier nodes).
//
// The package sits below internal/kern: it sees the machine, the
// physical allocator and the policies, never processes or page tables.
package placement

import (
	"sort"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Placer owns every node-selection decision for one machine.
type Placer struct {
	M    *topology.Machine
	Phys *mem.Phys

	p          *model.Params
	boostAlive bool // burst boosting armed (EnableBurstBoost)
	anySlow    bool // any node on a slow tier (tier > 0)
	// zonelists rows are built lazily on first use (zonelist): a
	// 1024-node machine only pays the O(n log n) sort for nodes that
	// actually allocate, keeping New O(n). Tiers are static after New
	// (SetTier has no other caller), so a built row never goes stale.
	zonelists [][]topology.NodeID
	// demoGroups caches DemotionTarget's per-source candidate structure
	// — the next-tier-down node set, split into distance groups in
	// zonelist order — which is likewise static after New. Only the
	// pressure/free-frame scan inside the chosen group runs per call.
	demoGroups [][][]topology.NodeID
	bus        *telemetry.Bus // optional: WatermarkBoost events
}

// SetBus attaches the machine's telemetry bus; the placer publishes
// WatermarkBoost events on it. Optional — a nil bus (the placement
// unit tests construct Placers bare) just disables the events.
func (pl *Placer) SetBus(b *telemetry.Bus) { pl.bus = b }

// EnableBurstBoost arms watermark boosting under allocation bursts
// (Params.WatermarkBoostFactor). The kernel calls it when it starts
// the kswapd daemons — they are what decays a boost again, so arming
// it without them would leave a boosted node reading as pressured
// forever after one burst.
func (pl *Placer) EnableBurstBoost() { pl.boostAlive = true }

// New builds the placer for a machine: it installs each node's memory
// tier (from p.NodeTier) and watermarks (from the Watermark*Frac
// fractions of p) on phys, and computes the per-node (tier, distance)
// zonelists.
func New(m *topology.Machine, phys *mem.Phys, p *model.Params) *Placer {
	pl := &Placer{M: m, Phys: phys, p: p}
	n := m.NumNodes()
	for i := 0; i < n; i++ {
		phys.SetTier(topology.NodeID(i), p.TierOf(i))
		if p.TierOf(i) > 0 {
			pl.anySlow = true
		}
	}
	pl.zonelists = make([][]topology.NodeID, n)
	pl.demoGroups = make([][][]topology.NodeID, n)
	for i := 0; i < n; i++ {
		total := phys.Stats(topology.NodeID(i)).Total
		phys.SetWatermarks(topology.NodeID(i), mem.Watermarks{
			Min:  int64(float64(total) * p.WatermarkMinFrac),
			Low:  int64(float64(total) * p.WatermarkLowFrac),
			High: int64(float64(total) * p.WatermarkHighFrac),
		})
	}
	return pl
}

// TierOf returns a node's memory tier id (0 = DRAM, > 0 = slow).
func (pl *Placer) TierOf(n topology.NodeID) int { return pl.Phys.TierOf(n) }

// slow reports whether a node belongs to a slow-memory tier.
func (pl *Placer) slow(n topology.NodeID) bool { return pl.Phys.TierOf(n) > 0 }

// less orders candidate nodes from src: src itself first, then by
// tier, then distance, then id. On a flat (single-tier) machine this
// is the pure distance order the pre-tiering zonelists used.
func (pl *Placer) less(src, a, b topology.NodeID) bool {
	if a == src || b == src {
		return a == src && b != src
	}
	ta, tb := pl.Phys.TierOf(a), pl.Phys.TierOf(b)
	if ta != tb {
		return ta < tb
	}
	da, db := pl.M.Distance(src, a), pl.M.Distance(src, b)
	if da != db {
		return da < db
	}
	return a < b
}

// zonelist returns n's fallback order, building the row on first use.
// The node itself first (even on a slow tier: an explicit target is
// always the preferred landing spot), then (tier, distance from n,
// id): the fallback order every walk uses.
func (pl *Placer) zonelist(n topology.NodeID) []topology.NodeID {
	if zl := pl.zonelists[n]; zl != nil {
		return zl
	}
	num := pl.M.NumNodes()
	zl := make([]topology.NodeID, num)
	for j := range zl {
		zl[j] = topology.NodeID(j)
	}
	sort.Slice(zl, func(a, b int) bool { return pl.less(n, zl[a], zl[b]) })
	pl.zonelists[n] = zl
	return zl
}

// Zonelist returns the allocation fallback order for a node: the node
// itself, then every other node by (tier, distance), ties by id. The
// returned slice is shared; callers must not mutate it.
func (pl *Placer) Zonelist(n topology.NodeID) []topology.NodeID { return pl.zonelist(n) }

// Resolve returns the effective policy of a page: the VMA policy
// unless it is PolDefault, then the process policy.
func (pl *Placer) Resolve(vmaPol, procPol vm.Policy) vm.Policy {
	if vmaPol.Kind == vm.PolDefault {
		return procPol
	}
	return vmaPol
}

// allocPolicy returns the policy with slow-tier nodes dropped from its
// nodemask when the mask also names a fast-tier node: slow memory is a
// demotion-only allocation target, and only a mask consisting entirely
// of slow nodes (an explicit CXL binding) may place pages there. The
// weights stay parallel to the surviving nodes.
func (pl *Placer) allocPolicy(pol vm.Policy) vm.Policy {
	if !pl.anySlow { // flat machine: no node can be slow
		return pol
	}
	hasFast, hasSlow := false, false
	for _, n := range pol.Nodes {
		if pl.slow(n) {
			hasSlow = true
		} else {
			hasFast = true
		}
	}
	if !hasSlow || !hasFast {
		return pol
	}
	out := vm.Policy{Kind: pol.Kind, Nodes: make([]topology.NodeID, 0, len(pol.Nodes))}
	if pol.Weights != nil {
		out.Weights = make([]int, 0, len(pol.Nodes))
	}
	for i, n := range pol.Nodes {
		if pl.slow(n) {
			continue
		}
		out.Nodes = append(out.Nodes, n)
		if out.Weights != nil {
			out.Weights = append(out.Weights, pol.Weight(i))
		}
	}
	return out
}

// fastLocal returns local unless it sits on a slow tier (a thread
// scheduled onto a CXL node's cores), then the nearest fast-tier node:
// first-touch never places pages on slow memory.
func (pl *Placer) fastLocal(local topology.NodeID) topology.NodeID {
	if !pl.anySlow || !pl.slow(local) {
		return local
	}
	for _, n := range pl.zonelist(local) {
		if !pl.slow(n) {
			return n
		}
	}
	return local // all-slow machine: nothing faster exists
}

// Target resolves a mempolicy to the preferred node for page v faulted
// from local — the one policy switch in the repository. Interleaving
// is keyed on the VPN so it is stable across faults, like Linux's
// offset-based interleave; weighted interleave distributes VPNs over
// the node set in proportion to the policy weights. Slow-tier nodes
// are demotion-only: they are dropped from mixed nodemasks and
// first-touch never resolves to them (see allocPolicy/fastLocal).
func (pl *Placer) Target(pol vm.Policy, v vm.VPN, local topology.NodeID) topology.NodeID {
	pol = pl.allocPolicy(pol)
	if len(pol.Nodes) == 0 {
		return pl.fastLocal(local)
	}
	switch pol.Kind {
	case vm.PolBind, vm.PolInterleave:
		return pol.Nodes[uint64(v)%uint64(len(pol.Nodes))]
	case vm.PolWeightedInterleave:
		slot := uint64(v) % uint64(pol.TotalWeight())
		for i := range pol.Nodes {
			w := uint64(pol.Weight(i))
			if slot < w {
				return pol.Nodes[i]
			}
			slot -= w
		}
		return pol.Nodes[len(pol.Nodes)-1]
	case vm.PolPreferred:
		return pol.Nodes[0]
	default:
		return pl.fastLocal(local)
	}
}

// Place is the first-touch entry point: resolve the page's effective
// policy (VMA policy, then process default) to the preferred node.
func (pl *Placer) Place(vmaPol, procPol vm.Policy, v vm.VPN, local topology.NodeID) topology.NodeID {
	return pl.Target(pl.Resolve(vmaPol, procPol), v, local)
}

// pick walks the target's zonelist in watermark passes — (boosted)
// low, then min, then bare availability — and returns the first node
// that can take need frames while staying at or above the pass's
// floor, plus the pass that succeeded. need is 1 for a base page, 512
// for a huge unit.
//
// The walk never lands on a tier slower than the target's: slow-tier
// nodes are demotion-only, so a DRAM allocation under pressure spills
// across the DRAM tier (near nodes first) and then fails toward the
// min pass rather than silently leaking onto CXL.
func (pl *Placer) pick(target topology.NodeID, need int64) (topology.NodeID, int, bool) {
	// Fast path: the target itself clears its low watermark. The full
	// walk's first probe is exactly this check (a zonelist starts with
	// its own node, whose tier never exceeds itself), so bailing here is
	// behavior-identical and skips the walk setup on the common path.
	if pl.Phys.FreeFrames(target)-need >= pl.Phys.EffectiveLow(target) {
		return target, 0, true
	}
	zl := pl.zonelist(target)
	maxTier := pl.Phys.TierOf(target)
	for pass := 0; pass < 3; pass++ {
		for _, n := range zl {
			if pl.Phys.TierOf(n) > maxTier {
				continue
			}
			free := pl.Phys.FreeFrames(n)
			var floor int64
			switch pass {
			case 0:
				floor = pl.Phys.EffectiveLow(n)
			case 1:
				floor = pl.Phys.WatermarksOf(n).Min
			}
			if free-need >= floor {
				return n, pass, true
			}
		}
	}
	return 0, 0, false
}

// boostAfterBurst raises the target node's watermarks after an
// allocation walk fell through its first (low-watermark) pass — the
// signal that a burst is outrunning background demotion. The boost
// makes the node read as pressured while it still holds free frames,
// waking its kswapd early; the daemon decays the boost every period.
// No-op until EnableBurstBoost: without the daemons there is nothing
// to decay the boost, so arming it would pin the node as pressured.
func (pl *Placer) boostAfterBurst(target topology.NodeID) {
	if !pl.boostAlive || pl.p.WatermarkBoostFactor <= 0 {
		return
	}
	wm := pl.Phys.WatermarksOf(target)
	boost := int64(float64(wm.High-wm.Low) * pl.p.WatermarkBoostFactor)
	pl.Phys.BoostWatermark(target, boost)
	if pl.bus != nil {
		pl.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicWatermarkBoost,
			Node:  target, Dst: telemetry.NoNode,
			Value: float64(boost),
		})
	}
}

// AllocPage allocates one frame as near target as the watermarks and
// the tier map allow: target first, then its zonelist, skipping
// pressured nodes until no unpressured node remains, never spilling
// onto a slower tier than the target's. Returns nil only when no
// allowed node has a free frame.
func (pl *Placer) AllocPage(target topology.NodeID) *mem.Frame {
	n, pass, ok := pl.pick(target, 1)
	if !ok {
		return nil
	}
	if pass > 0 {
		pl.boostAfterBurst(target)
	}
	f, err := pl.Phys.Alloc(n)
	if err != nil {
		return nil
	}
	return f
}

// AllocHugePage reserves a 2 MiB unit (one representative frame plus
// its 511-frame footprint) as near target as the watermarks and the
// tier map allow. Returns nil when no allowed node can host a whole
// unit — the caller falls back to base pages, like a failed THP
// allocation.
func (pl *Placer) AllocHugePage(target topology.NodeID) *mem.Frame {
	n, pass, ok := pl.pick(target, model.PTEChunkPages)
	if !ok {
		return nil
	}
	if pass > 0 {
		pl.boostAfterBurst(target)
	}
	if err := pl.Phys.AllocFootprint(n, model.PTEChunkPages-1); err != nil {
		return nil
	}
	f, err := pl.Phys.Alloc(n)
	if err != nil {
		pl.Phys.ReleaseFootprint(n, model.PTEChunkPages-1)
		return nil
	}
	return f
}

// AllowPromotion reports whether dst can take promoted pages: AutoNUMA
// skips promotion into nodes at or below their low watermark (pulling
// hot pages into a pressured node only forces kswapd to demote
// something else right back out).
func (pl *Placer) AllowPromotion(dst topology.NodeID) bool {
	return !pl.Phys.UnderPressure(dst)
}

// DemotionTarget returns the node kswapd should demote pages from
// `from` to. The tier map decides the candidate set first: when a
// slower tier exists below from's, demotion targets the *next tier
// down* (DRAM kswapd demotes to CXL, and on a 3-tier machine a CXL
// node demotes onward to the tier below it, like the kernel's
// node_demotion[] chain); a node on the *bottom* tier demotes only
// within its own tier — moving pages back up would promote them
// without evidence, so when no within-tier sibling can take them the
// daemon simply leaves the pages to age in place. Within the candidate set, page temperature picks
// the distance group: warm pages (cold=false, unreferenced for one
// scan period — likely to be touched again) go to the *nearest* group
// with an unpressured node, cold pages (cold=true, unreferenced for
// two or more periods) to the *farthest* — on a flat machine the two
// choices are what creates tiers in the first place. Within the chosen
// group the node with the most free frames wins (ties by id). Returns
// false when every candidate is pressured too — demoting then would
// only shift the pressure around.
func (pl *Placer) DemotionTarget(from topology.NodeID, cold bool) (topology.NodeID, bool) {
	groups := pl.demotionGroups(from)
	// Cold pages walk the groups farthest-first; warm pages nearest-
	// first. The cached group order is nearest-first, so cold simply
	// iterates backwards instead of reversing (and mutating) the cache.
	for gi := 0; gi < len(groups); gi++ {
		g := groups[gi]
		if cold {
			g = groups[len(groups)-1-gi]
		}
		best, bestFree, found := topology.NodeID(0), int64(-1), false
		for _, n := range g {
			if pl.Phys.UnderPressure(n) {
				continue
			}
			if free := pl.Phys.FreeFrames(n); free > bestFree {
				best, bestFree, found = n, free, true
			}
		}
		if found {
			return best, true
		}
	}
	return 0, false
}

// demotionGroups returns from's demotion candidates — the next tier
// down when one exists, else from's own tier — split into distance
// groups in zonelist order, nearest group first. Built on first use
// and cached: the tier map and the distances are static after New, so
// every kswapd tick on a big machine reuses the structure instead of
// re-deriving it O(nodes) per demoted page.
func (pl *Placer) demotionGroups(from topology.NodeID) [][]topology.NodeID {
	if g := pl.demoGroups[from]; g != nil {
		return g
	}
	fromTier := pl.Phys.TierOf(from)
	// Next tier down: the smallest tier id above from's with any node.
	nextTier := -1
	for n := 0; n < pl.M.NumNodes(); n++ {
		if t := pl.Phys.TierOf(topology.NodeID(n)); t > fromTier && (nextTier < 0 || t < nextTier) {
			nextTier = t
		}
	}
	wantTier := fromTier // within-tier (flat machines, slow-tier sources)
	if nextTier >= 0 {
		wantTier = nextTier
	}
	// Distance-group boundaries of the candidate tier's nodes, in
	// zonelist (distance) order past the node itself.
	var cands []topology.NodeID
	for _, n := range pl.zonelist(from) {
		if n != from && pl.Phys.TierOf(n) == wantTier {
			cands = append(cands, n)
		}
	}
	groups := [][]topology.NodeID{}
	for i := 0; i < len(cands); {
		j := i + 1
		for j < len(cands) && pl.M.Distance(from, cands[j]) == pl.M.Distance(from, cands[i]) {
			j++
		}
		groups = append(groups, cands[i:j])
		i = j
	}
	pl.demoGroups[from] = groups
	return groups
}

// ReplicaNodes returns the nodes that should receive a read-only
// replica of a page homed on home: every other fast-tier node above
// its low watermark, in id order (replicating into a pressured node
// would evict something more useful than the copy, and a replica on
// slow memory would serve reads slower than the remote primary).
func (pl *Placer) ReplicaNodes(home topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, pl.M.NumNodes()-1)
	for n := 0; n < pl.M.NumNodes(); n++ {
		id := topology.NodeID(n)
		if id == home || pl.Phys.UnderPressure(id) || pl.slow(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}
