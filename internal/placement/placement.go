// Package placement is the single placement-decision layer of the
// simulated kernel: every consumer that needs to answer "which node
// gets this frame?" goes through it.
//
// Before this package existed the answer was re-derived independently
// in five places — first-touch fault allocation, the mempolicy paths,
// the migration engine's destination fallback, AutoNUMA promotion, and
// replica placement — each with its own policy switch or ad-hoc
// distance loop. The Placer centralizes all of them on two structures:
//
//   - Zonelists: for every node, the machine's nodes ordered by SLIT
//     distance from it (the node itself first, ties broken by id),
//     like the kernel's node_zonelists. Every fallback walk — full
//     target node, pressured target node, demotion target, replica
//     placement — is a walk of one zonelist.
//
//   - Watermarks: per-node min/low/high thresholds (stored in
//     mem.Phys, installed here from model.Params fractions).
//     Allocation proceeds in passes, mirroring get_page_from_freelist:
//     the first pass only takes nodes comfortably above their low
//     watermark; if none qualifies the walk retries down to the min
//     watermark, then takes any node with a free frame. The kswapd
//     daemons (internal/kern) poll mem.Phys.UnderPressure on their
//     wake period to notice nodes this walk has pushed to the low
//     watermark.
//
// Policy resolution also lives here: vm.Policy is pure data, and
// Placer.Target is the only switch over policy kinds, including
// PolWeightedInterleave (MPOL_WEIGHTED_INTERLEAVE). Pressure gates for
// the other movers round out the surface: AllowPromotion (AutoNUMA
// skips promotion into pressured nodes), DemotionTarget (kswapd's
// temperature-aware tier choice: warm pages to the nearest unpressured
// distance group, genuinely cold pages to the farthest), and
// ReplicaNodes (replication skips pressured nodes).
//
// The package sits below internal/kern: it sees the machine, the
// physical allocator and the policies, never processes or page tables.
package placement

import (
	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Placer owns every node-selection decision for one machine.
type Placer struct {
	M    *topology.Machine
	Phys *mem.Phys

	zonelists [][]topology.NodeID
}

// New builds the placer for a machine: it computes the per-node
// zonelists and installs each node's watermarks on phys from the
// Watermark*Frac fractions of p.
func New(m *topology.Machine, phys *mem.Phys, p *model.Params) *Placer {
	pl := &Placer{M: m, Phys: phys}
	n := m.NumNodes()
	pl.zonelists = make([][]topology.NodeID, n)
	for i := 0; i < n; i++ {
		zl := make([]topology.NodeID, 0, n)
		for j := 0; j < n; j++ {
			zl = append(zl, topology.NodeID(j))
		}
		// Distance from i, then id: the fallback order every walk uses.
		src := topology.NodeID(i)
		for a := 1; a < len(zl); a++ {
			for b := a; b > 0 && less(m, src, zl[b], zl[b-1]); b-- {
				zl[b], zl[b-1] = zl[b-1], zl[b]
			}
		}
		pl.zonelists[i] = zl
	}
	for i := 0; i < n; i++ {
		total := phys.Stats(topology.NodeID(i)).Total
		phys.SetWatermarks(topology.NodeID(i), mem.Watermarks{
			Min:  int64(float64(total) * p.WatermarkMinFrac),
			Low:  int64(float64(total) * p.WatermarkLowFrac),
			High: int64(float64(total) * p.WatermarkHighFrac),
		})
	}
	return pl
}

// less orders candidate nodes by distance from src, then by id. src
// itself always sorts first (distance to self is the local distance).
func less(m *topology.Machine, src, a, b topology.NodeID) bool {
	da, db := m.Dist[src][a], m.Dist[src][b]
	if da != db {
		return da < db
	}
	return a < b
}

// Zonelist returns the allocation fallback order for a node: the node
// itself, then every other node by distance (ties by id). The returned
// slice is shared; callers must not mutate it.
func (pl *Placer) Zonelist(n topology.NodeID) []topology.NodeID { return pl.zonelists[n] }

// Resolve returns the effective policy of a page: the VMA policy
// unless it is PolDefault, then the process policy.
func (pl *Placer) Resolve(vmaPol, procPol vm.Policy) vm.Policy {
	if vmaPol.Kind == vm.PolDefault {
		return procPol
	}
	return vmaPol
}

// Target resolves a mempolicy to the preferred node for page v faulted
// from local — the one policy switch in the repository. Interleaving
// is keyed on the VPN so it is stable across faults, like Linux's
// offset-based interleave; weighted interleave distributes VPNs over
// the node set in proportion to the policy weights.
func (pl *Placer) Target(pol vm.Policy, v vm.VPN, local topology.NodeID) topology.NodeID {
	if len(pol.Nodes) == 0 {
		return local
	}
	switch pol.Kind {
	case vm.PolBind, vm.PolInterleave:
		return pol.Nodes[uint64(v)%uint64(len(pol.Nodes))]
	case vm.PolWeightedInterleave:
		slot := uint64(v) % uint64(pol.TotalWeight())
		for i := range pol.Nodes {
			w := uint64(pol.Weight(i))
			if slot < w {
				return pol.Nodes[i]
			}
			slot -= w
		}
		return pol.Nodes[len(pol.Nodes)-1]
	case vm.PolPreferred:
		return pol.Nodes[0]
	default:
		return local
	}
}

// Place is the first-touch entry point: resolve the page's effective
// policy (VMA policy, then process default) to the preferred node.
func (pl *Placer) Place(vmaPol, procPol vm.Policy, v vm.VPN, local topology.NodeID) topology.NodeID {
	return pl.Target(pl.Resolve(vmaPol, procPol), v, local)
}

// pick walks the target's zonelist in watermark passes — low, then
// min, then bare availability — and returns the first node that can
// take need frames while staying at or above the pass's floor. need is
// 1 for a base page, 512 for a huge unit.
func (pl *Placer) pick(target topology.NodeID, need int64) (topology.NodeID, bool) {
	zl := pl.zonelists[target]
	for pass := 0; pass < 3; pass++ {
		for _, n := range zl {
			free := pl.Phys.FreeFrames(n)
			var floor int64
			switch pass {
			case 0:
				floor = pl.Phys.WatermarksOf(n).Low
			case 1:
				floor = pl.Phys.WatermarksOf(n).Min
			}
			if free-need >= floor {
				return n, true
			}
		}
	}
	return 0, false
}

// AllocPage allocates one frame as near target as the watermarks
// allow: target first, then its zonelist, skipping pressured nodes
// until no unpressured node remains. Returns nil only when the whole
// machine is out of frames.
func (pl *Placer) AllocPage(target topology.NodeID) *mem.Frame {
	n, ok := pl.pick(target, 1)
	if !ok {
		return nil
	}
	f, err := pl.Phys.Alloc(n)
	if err != nil {
		return nil
	}
	return f
}

// AllocHugePage reserves a 2 MiB unit (one representative frame plus
// its 511-frame footprint) as near target as the watermarks allow.
// Returns nil when no node can host a whole unit — the caller falls
// back to base pages, like a failed THP allocation.
func (pl *Placer) AllocHugePage(target topology.NodeID) *mem.Frame {
	n, ok := pl.pick(target, model.PTEChunkPages)
	if !ok {
		return nil
	}
	if err := pl.Phys.AllocFootprint(n, model.PTEChunkPages-1); err != nil {
		return nil
	}
	f, err := pl.Phys.Alloc(n)
	if err != nil {
		pl.Phys.ReleaseFootprint(n, model.PTEChunkPages-1)
		return nil
	}
	return f
}

// AllowPromotion reports whether dst can take promoted pages: AutoNUMA
// skips promotion into nodes at or below their low watermark (pulling
// hot pages into a pressured node only forces kswapd to demote
// something else right back out).
func (pl *Placer) AllowPromotion(dst topology.NodeID) bool {
	return !pl.Phys.UnderPressure(dst)
}

// DemotionTarget returns the node kswapd should demote pages from
// `from` to, by page temperature: warm pages (cold=false, unreferenced
// for one scan period — likely to be touched again) go to the *nearest*
// distance group with an unpressured node, cold pages (cold=true,
// unreferenced for two or more periods) to the *farthest* — the two
// choices are what turns a flat machine into memory tiers. Within the
// chosen distance group the node with the most free frames wins (ties
// by id). Returns false when every other node is pressured too —
// demoting then would only shift the pressure around.
func (pl *Placer) DemotionTarget(from topology.NodeID, cold bool) (topology.NodeID, bool) {
	zl := pl.zonelists[from]
	// Distance-group boundaries of the zonelist past the node itself.
	var groups [][]topology.NodeID
	for i := 1; i < len(zl); {
		j := i + 1
		for j < len(zl) && pl.M.Dist[from][zl[j]] == pl.M.Dist[from][zl[i]] {
			j++
		}
		groups = append(groups, zl[i:j])
		i = j
	}
	if cold {
		for a, b := 0, len(groups)-1; a < b; a, b = a+1, b-1 {
			groups[a], groups[b] = groups[b], groups[a]
		}
	}
	for _, g := range groups {
		best, bestFree, found := topology.NodeID(0), int64(-1), false
		for _, n := range g {
			if pl.Phys.UnderPressure(n) {
				continue
			}
			if free := pl.Phys.FreeFrames(n); free > bestFree {
				best, bestFree, found = n, free, true
			}
		}
		if found {
			return best, true
		}
	}
	return 0, false
}

// ReplicaNodes returns the nodes that should receive a read-only
// replica of a page homed on home: every other node above its low
// watermark, in id order (replicating into a pressured node would
// evict something more useful than the copy).
func (pl *Placer) ReplicaNodes(home topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, pl.M.NumNodes()-1)
	for n := 0; n < pl.M.NumNodes(); n++ {
		id := topology.NodeID(n)
		if id == home || pl.Phys.UnderPressure(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}
