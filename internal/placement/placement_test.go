package placement

import (
	"testing"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// newPlacer builds a placer over a small machine: framesPerNode frames
// per node, watermarks from the default fractions (1024 frames: min 20,
// low 51, high 81).
func newPlacer(nodes, framesPerNode int) (*Placer, *mem.Phys) {
	m := topology.Grid(nodes, 1, int64(framesPerNode)*model.PageSize, 1<<20)
	phys := mem.NewPhys(m, false)
	p := model.Default()
	return New(m, phys, &p), phys
}

func TestZonelistOrder(t *testing.T) {
	pl, _ := newPlacer(4, 64)
	// Square topology: 0-1, 0-2, 1-3, 2-3; node 3 is two hops from 0.
	got := pl.Zonelist(0)
	want := []topology.NodeID{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zonelist(0) = %v, want %v", got, want)
		}
	}
	got = pl.Zonelist(3)
	want = []topology.NodeID{3, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zonelist(3) = %v, want %v", got, want)
		}
	}
}

func TestWatermarksInstalled(t *testing.T) {
	_, phys := newPlacer(2, 1024)
	w := phys.WatermarksOf(0)
	if w.Min != 20 || w.Low != 51 || w.High != 81 {
		t.Fatalf("watermarks = %+v, want min 20 low 51 high 81", w)
	}
}

func TestPolicyTargets(t *testing.T) {
	pl, _ := newPlacer(4, 64)
	if pl.Target(vm.DefaultPolicy(), 7, 2) != 2 {
		t.Fatal("default should be local")
	}
	il := vm.Interleave(0, 1, 2, 3)
	counts := map[topology.NodeID]int{}
	for v := vm.VPN(0); v < 100; v++ {
		counts[pl.Target(il, v, 0)]++
	}
	for n := topology.NodeID(0); n < 4; n++ {
		if counts[n] != 25 {
			t.Fatalf("interleave counts = %v", counts)
		}
	}
	if pl.Target(vm.Bind(3), 0, 1) != 3 {
		t.Fatal("bind ignored")
	}
	if pl.Target(vm.Preferred(2), 9, 0) != 2 {
		t.Fatal("preferred ignored")
	}
	if pl.Target(vm.Bind(), 5, 1) != 1 {
		t.Fatal("empty bind should fall back to local")
	}
	// Resolve: VMA policy wins unless default.
	if got := pl.Resolve(vm.DefaultPolicy(), vm.Bind(3)); got.Kind != vm.PolBind {
		t.Fatalf("default VMA policy should resolve to the process policy, got %v", got.Kind)
	}
	if got := pl.Resolve(vm.Preferred(1), vm.Bind(3)); got.Kind != vm.PolPreferred {
		t.Fatalf("explicit VMA policy should win, got %v", got.Kind)
	}
	if pl.Place(vm.DefaultPolicy(), vm.Bind(2), 0, 1) != 2 {
		t.Fatal("Place should honor the process default policy")
	}
}

func TestWeightedInterleaveDistribution(t *testing.T) {
	pl, _ := newPlacer(4, 64)
	wi := vm.WeightedInterleave([]topology.NodeID{0, 1, 2}, []int{3, 2, 1})
	counts := map[topology.NodeID]int{}
	for v := vm.VPN(0); v < 600; v++ {
		counts[pl.Target(wi, v, 3)]++
	}
	// 600 pages over total weight 6: 300/200/100.
	if counts[0] != 300 || counts[1] != 200 || counts[2] != 100 || counts[3] != 0 {
		t.Fatalf("weighted interleave counts = %v, want 300/200/100/0", counts)
	}
	// Stability: the same VPN always maps to the same node.
	for v := vm.VPN(0); v < 32; v++ {
		if pl.Target(wi, v, 3) != pl.Target(wi, v, 0) {
			t.Fatalf("weighted target of VPN %d depends on local node", v)
		}
	}
}

// TestAllocSkipsPressuredNode: once the preferred node sinks to its low
// watermark, allocations spill to the nearest node above its low
// watermark instead of draining the preferred node to zero.
func TestAllocSkipsPressuredNode(t *testing.T) {
	pl, phys := newPlacer(4, 1024)
	low := phys.WatermarksOf(0).Low
	n0 := 0
	for i := 0; i < 2000; i++ {
		f := pl.AllocPage(0)
		if f == nil {
			t.Fatal("machine prematurely out of memory")
		}
		if f.Node == 0 {
			n0++
		}
	}
	if got := phys.FreeFrames(0); got != low {
		t.Fatalf("node 0 free = %d, want drained exactly to its low watermark %d", got, low)
	}
	if n0 != int(1024-low) {
		t.Fatalf("node 0 received %d pages, want %d", n0, 1024-low)
	}
	// The spill went to node 1 (nearest in node 0's zonelist).
	if phys.FreeFrames(1) >= phys.FreeFrames(2) {
		t.Fatalf("spill should prefer node 1: free1=%d free2=%d",
			phys.FreeFrames(1), phys.FreeFrames(2))
	}
}

// TestAllocLastResort: when every node is below its low watermark the
// walk retries down to min and then to bare availability — the machine
// never reports out-of-memory while any frame is free.
func TestAllocLastResort(t *testing.T) {
	pl, phys := newPlacer(2, 64)
	total := 2 * 64
	for i := 0; i < total; i++ {
		if pl.AllocPage(0) == nil {
			t.Fatalf("alloc %d failed with %d+%d frames free", i,
				phys.FreeFrames(0), phys.FreeFrames(1))
		}
	}
	if pl.AllocPage(0) != nil {
		t.Fatal("allocation succeeded on a fully drained machine")
	}
}

// TestPressureObservableAfterDrain: once allocations pin a node at its
// low watermark, the pressure query the kswapd daemons poll reports it.
func TestPressureObservableAfterDrain(t *testing.T) {
	pl, phys := newPlacer(2, 64)
	low := phys.WatermarksOf(0).Low
	for i := int64(0); i < 64-low; i++ {
		pl.AllocPage(0)
	}
	if !phys.UnderPressure(0) {
		t.Fatalf("node 0 drained to %d free (low %d) but reports no pressure",
			phys.FreeFrames(0), low)
	}
	if phys.UnderPressure(1) {
		t.Fatal("untouched node reports pressure")
	}
}

func TestAllowPromotionAndDemotionTarget(t *testing.T) {
	pl, phys := newPlacer(4, 1024)
	if !pl.AllowPromotion(0) {
		t.Fatal("empty node refused promotion")
	}
	// Drain node 0 to its low watermark.
	low := phys.WatermarksOf(0).Low
	for phys.FreeFrames(0) > low {
		if _, err := phys.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	if pl.AllowPromotion(0) {
		t.Fatal("pressured node accepted promotion")
	}
	// Warm demotion target from node 0: nearest group is {1, 2}; 2 has
	// more free after we load 1.
	for i := 0; i < 100; i++ {
		if _, err := phys.Alloc(1); err != nil {
			t.Fatal(err)
		}
	}
	dst, ok := pl.DemotionTarget(0, false)
	if !ok || dst != 2 {
		t.Fatalf("warm demotion target = %v/%v, want node 2", dst, ok)
	}
	// Cold demotion target: the farthest distance group first — node 3
	// (two hops in the square topology), even though 1 and 2 have room.
	dst, ok = pl.DemotionTarget(0, true)
	if !ok || dst != 3 {
		t.Fatalf("cold demotion target = %v/%v, want node 3", dst, ok)
	}
	// With the far tier pressured, cold demotion falls back toward the
	// nearer group rather than giving up.
	for phys.FreeFrames(3) > phys.WatermarksOf(3).Low {
		if _, err := phys.Alloc(3); err != nil {
			t.Fatal(err)
		}
	}
	dst, ok = pl.DemotionTarget(0, true)
	if !ok || dst != 2 {
		t.Fatalf("cold demotion target with far tier pressured = %v/%v, want node 2", dst, ok)
	}
	// All other nodes pressured: no demotion target either way.
	for _, n := range []topology.NodeID{1, 2} {
		for phys.FreeFrames(n) > phys.WatermarksOf(n).Low {
			if _, err := phys.Alloc(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := pl.DemotionTarget(0, false); ok {
		t.Fatal("warm demotion target found with every node pressured")
	}
	if _, ok := pl.DemotionTarget(0, true); ok {
		t.Fatal("cold demotion target found with every node pressured")
	}
}

func TestReplicaNodesSkipPressured(t *testing.T) {
	pl, phys := newPlacer(4, 1024)
	got := pl.ReplicaNodes(1)
	want := []topology.NodeID{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("replica nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica nodes = %v, want %v", got, want)
		}
	}
	// Pressure node 2: it drops out.
	for phys.FreeFrames(2) > phys.WatermarksOf(2).Low {
		if _, err := phys.Alloc(2); err != nil {
			t.Fatal(err)
		}
	}
	got = pl.ReplicaNodes(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("replica nodes with node 2 pressured = %v, want [0 3]", got)
	}
}

// TestAllocHugePage: huge units respect watermarks with their full
// 512-frame footprint and return nil when no node can host a unit.
func TestAllocHugePage(t *testing.T) {
	pl, phys := newPlacer(2, 1024)
	f := pl.AllocHugePage(0)
	if f == nil || f.Node != 0 {
		t.Fatalf("huge alloc = %v", f)
	}
	if got := phys.FreeFrames(0); got != 1024-model.PTEChunkPages {
		t.Fatalf("free after huge alloc = %d", got)
	}
	// A second unit would leave node 0 below its low watermark (free
	// 512-512=0); it must land on node 1.
	f2 := pl.AllocHugePage(0)
	if f2 == nil || f2.Node != 1 {
		t.Fatalf("second huge unit on node %v, want spill to 1", f2)
	}
	// The last-resort pass still hosts a unit in node 0's exact 512
	// remaining frames (bare availability ignores watermarks).
	f3 := pl.AllocHugePage(0)
	if f3 == nil || f3.Node != 0 {
		t.Fatalf("last-resort huge unit = %v, want node 0", f3)
	}
	// Now no node has 512 contiguous frames: the allocation fails and
	// the caller falls back to base pages.
	for phys.FreeFrames(1) > 100 {
		if _, err := phys.Alloc(1); err != nil {
			t.Fatal(err)
		}
	}
	if f4 := pl.AllocHugePage(0); f4 != nil {
		t.Fatalf("huge unit allocated with max free 0/100, got node %d", f4.Node)
	}
}
