package placement

import (
	"testing"
	"testing/quick"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Tier tests: slow-memory (CXL) nodes are demotion-only allocation
// targets, zonelists order by (tier, distance), DemotionTarget prefers
// the next tier down, and allocation bursts boost the target's
// watermarks.

// newTieredPlacer builds a placer over fast DRAM nodes plus slow CXL
// nodes (appended ids), framesPerNode frames each.
func newTieredPlacer(fast, slow, framesPerNode int) (*Placer, *mem.Phys) {
	nodes := fast + slow
	m := topology.Grid(nodes, 1, int64(framesPerNode)*model.PageSize, 1<<20)
	phys := mem.NewPhys(m, false)
	p := model.Default()
	p.TierClasses = []model.TierClass{{Name: "dram"}, model.CXLTier()}
	p.NodeTier = make([]int, nodes)
	for n := fast; n < nodes; n++ {
		p.NodeTier[n] = 1
	}
	return New(m, phys, &p), phys
}

func TestTieredZonelistOrder(t *testing.T) {
	// Square topology 0-1, 0-2, 1-3, 2-3; nodes 2 and 3 are CXL.
	pl, _ := newTieredPlacer(2, 2, 64)
	// From a DRAM node: self, the DRAM tier, then CXL by distance.
	got := pl.Zonelist(0)
	want := []topology.NodeID{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zonelist(0) = %v, want %v", got, want)
		}
	}
	// From CXL node 2: itself first (an explicit target lands there),
	// then the *far* DRAM node 1 (distance 14) still before the
	// directly-linked CXL sibling 3 (distance 12) — tier beats
	// distance, which is the whole point of the (tier, distance) key.
	got = pl.Zonelist(2)
	want = []topology.NodeID{2, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zonelist(2) = %v, want %v", got, want)
		}
	}
}

// TestSlowTierAllocationProperty is the acceptance property: no
// first-touch or mempolicy allocation ever resolves to (or lands on) a
// slow-tier node unless the policy's nodemask contains only slow
// nodes — whatever the policy kind, node subset, page index, faulting
// node, and DRAM fill level.
func TestSlowTierAllocationProperty(t *testing.T) {
	const fast, slow = 2, 2 // nodes 2,3 are CXL
	check := func(kindSel, maskBits, vpnSel, localSel uint8, drain bool) bool {
		pl, phys := newTieredPlacer(fast, slow, 64)
		if drain {
			// Empty the DRAM tier below its watermarks so the walk is
			// pushed through every pass.
			for n := 0; n < fast; n++ {
				for i := 0; i < 62; i++ {
					if _, err := phys.Alloc(topology.NodeID(n)); err != nil {
						return false
					}
				}
			}
		}
		var nodes []topology.NodeID
		for b := 0; b < fast+slow; b++ {
			if maskBits&(1<<b) != 0 {
				nodes = append(nodes, topology.NodeID(b))
			}
		}
		kinds := []vm.PolicyKind{vm.PolDefault, vm.PolBind, vm.PolInterleave,
			vm.PolPreferred, vm.PolWeightedInterleave}
		pol := vm.Policy{Kind: kinds[int(kindSel)%len(kinds)], Nodes: nodes}
		allSlow := len(nodes) > 0
		for _, n := range nodes {
			if int(n) < fast {
				allSlow = false
			}
		}
		if pol.Kind == vm.PolDefault {
			pol.Nodes = nil
			allSlow = false
		}
		local := topology.NodeID(int(localSel) % fast)
		target := pl.Target(pol, vm.VPN(vpnSel), local)
		if !allSlow && pl.TierOf(target) > 0 {
			return false
		}
		f := pl.AllocPage(target)
		if f == nil {
			// Acceptable only when every allowed node is full.
			return drain && !allSlow
		}
		return allSlow || pl.TierOf(f.Node) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocPolicyDropsSlowFromMixedMask(t *testing.T) {
	pl, _ := newTieredPlacer(2, 2, 64)
	// Interleave over a mixed mask: the slow nodes vanish, the spread
	// covers only the DRAM part.
	il := vm.Interleave(0, 1, 2, 3)
	counts := map[topology.NodeID]int{}
	for v := vm.VPN(0); v < 100; v++ {
		counts[pl.Target(il, v, 0)]++
	}
	if counts[0] != 50 || counts[1] != 50 || counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("mixed-mask interleave spread = %v, want all on DRAM", counts)
	}
	// All-slow mask: the explicit CXL binding stands.
	bind := vm.Bind(2, 3)
	if n := pl.Target(bind, 1, 0); pl.TierOf(n) == 0 {
		t.Fatalf("all-slow bind resolved to DRAM node %d", n)
	}
	// Weighted interleave keeps weights parallel after the drop.
	wil := vm.WeightedInterleave([]topology.NodeID{0, 2, 1}, []int{1, 7, 3})
	counts = map[topology.NodeID]int{}
	for v := vm.VPN(0); v < 400; v++ {
		counts[pl.Target(wil, v, 0)]++
	}
	if counts[2] != 0 || counts[0] != 100 || counts[1] != 300 {
		t.Fatalf("weighted spread after slow drop = %v, want 0:100 1:300", counts)
	}
}

func TestDemotionTargetNextTierDown(t *testing.T) {
	pl, phys := newTieredPlacer(2, 2, 64) // DRAM 0,1; CXL 2,3
	// From DRAM: both temperatures land on the CXL tier even though
	// the sibling DRAM node is free.
	for _, cold := range []bool{false, true} {
		n, ok := pl.DemotionTarget(0, cold)
		if !ok || pl.TierOf(n) != 1 {
			t.Fatalf("DemotionTarget(0, cold=%v) = %d,%v; want a CXL node", cold, n, ok)
		}
	}
	// From CXL: within-tier only — the sibling expander, never back up
	// to DRAM.
	n, ok := pl.DemotionTarget(2, true)
	if !ok || n != 3 {
		t.Fatalf("DemotionTarget(2) = %d,%v; want the sibling CXL node 3", n, ok)
	}
	// Sibling pressured: a slow node with nowhere within-tier reports
	// no target rather than promoting by demotion.
	for phys.FreeFrames(3) > phys.WatermarksOf(3).Low {
		if _, err := phys.Alloc(3); err != nil {
			t.Fatal(err)
		}
	}
	if n, ok := pl.DemotionTarget(2, true); ok {
		t.Fatalf("DemotionTarget(2) = %d with the whole slow tier pressured; want none", n)
	}
}

func TestWatermarkBoostOnBurstFallthrough(t *testing.T) {
	m := topology.Grid(2, 1, 256*model.PageSize, 1<<20)
	phys := mem.NewPhys(m, false)
	p := model.Default()
	p.WatermarkBoostFactor = 2
	pl := New(m, phys, &p) // min 5, low 12, high 20
	pl.EnableBurstBoost()  // normally armed by kern.EnableDemotion
	// Fill both nodes to their low watermark so the first pass runs
	// dry machine-wide.
	for n := topology.NodeID(0); n < 2; n++ {
		for phys.FreeFrames(n) > phys.WatermarksOf(n).Low {
			if _, err := phys.Alloc(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f := pl.AllocPage(0); f == nil {
		t.Fatal("min pass should still serve the burst")
	}
	boost := phys.BoostOf(0)
	if want := (phys.WatermarksOf(0).High - phys.WatermarksOf(0).Low) * 2; boost != want {
		t.Fatalf("boost = %d, want (high-low)*factor = %d", boost, want)
	}
	if phys.BoostOf(1) != 0 {
		t.Fatal("boost leaked onto a non-target node")
	}
	// The boosted node reads as pressured even after freeing well past
	// the plain low watermark (12) — up to free = 25, inside the
	// boosted threshold of 28 — until the boost decays away.
	free := 25 - int(phys.FreeFrames(0))
	for i := 0; i < free; i++ {
		phys.Free(&mem.Frame{Node: 0}) // frames are interchangeable here
	}
	if !phys.UnderPressure(0) {
		t.Fatalf("boosted node not pressured: free=%d effLow=%d", phys.FreeFrames(0), phys.EffectiveLow(0))
	}
	for i := 0; i < 10; i++ {
		phys.DecayBoost(0)
	}
	if phys.BoostOf(0) != 0 {
		t.Fatalf("boost did not decay: %d", phys.BoostOf(0))
	}
	if phys.UnderPressure(0) {
		t.Fatal("node still pressured after the boost decayed")
	}
}

// TestBoostNeedsDaemons: without EnableBurstBoost (armed by
// kern.EnableDemotion) a fall-through burst must not boost — nothing
// would ever decay it, pinning the node as pressured forever.
func TestBoostNeedsDaemons(t *testing.T) {
	m := topology.Grid(2, 1, 256*model.PageSize, 1<<20)
	phys := mem.NewPhys(m, false)
	p := model.Default()
	p.WatermarkBoostFactor = 2
	pl := New(m, phys, &p)
	for n := topology.NodeID(0); n < 2; n++ {
		for phys.FreeFrames(n) > phys.WatermarksOf(n).Low {
			if _, err := phys.Alloc(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f := pl.AllocPage(0); f == nil {
		t.Fatal("min pass should still serve the burst")
	}
	if phys.BoostOf(0) != 0 {
		t.Fatalf("boost armed without the demotion daemons: %d", phys.BoostOf(0))
	}
}

func TestSlowTierResidentGauge(t *testing.T) {
	_, phys := newTieredPlacer(2, 1, 64) // node 2 = CXL
	if phys.TierOf(0) != 0 || phys.TierOf(2) != 1 {
		t.Fatalf("tier map not installed: %d %d", phys.TierOf(0), phys.TierOf(2))
	}
	if phys.SlowTierResident() != 0 {
		t.Fatal("empty machine reports slow-tier residency")
	}
	for i := 0; i < 5; i++ {
		if _, err := phys.Alloc(2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := phys.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if got := phys.SlowTierResident(); got != 5 {
		t.Fatalf("SlowTierResident = %d, want 5", got)
	}
}
