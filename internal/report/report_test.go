package report

import (
	"strings"
	"testing"
)

func TestTableAlignmentAndTypes(t *testing.T) {
	tbl := NewTable("Demo", "name", "value", "note")
	tbl.Add("a", 12.5, "x")
	tbl.Add("bcd", 3.14159, "y")
	tbl.Add("e", 1000000.0, "z")
	out := tbl.String()
	if !strings.Contains(out, "## Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "12.5") || !strings.Contains(out, "3.14") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "1000000") {
		t.Fatalf("integral float should print as integer:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		1234.5:  "1234", // %.0f rounds half to even
		12.34:   "12.3",
		0.5:     "0.50",
		0.01234: "0.0123",
		-3:      "-3",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.Add("x,y", `say "hi"`)
	var sb strings.Builder
	tbl.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("csv escaping wrong: %s", out)
	}
}

func TestFigureSeriesAlignment(t *testing.T) {
	fig := NewFigure("F", "x", "y")
	a := fig.NewSeries("a")
	b := fig.NewSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 100)
	b.Add(2, 200)
	out := fig.String()
	if !strings.Contains(out, "## F") {
		t.Fatal("missing title")
	}
	for _, frag := range []string{"x", "a", "b", "10", "200"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in:\n%s", frag, out)
		}
	}
	// Series with a missing x leaves the cell empty rather than
	// fabricating data.
	c := fig.NewSeries("c")
	c.Add(1, 7)
	out = fig.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1] // x=2 row
	if strings.Count(last, "7") != 0 && !strings.HasPrefix(last, "2") {
		t.Fatalf("unexpected row: %q", last)
	}
}

func TestJSONDeterministicAndIndented(t *testing.T) {
	type row struct {
		Name string  `json:"name"`
		V    float64 `json:"v"`
	}
	in := []row{{"a", 1.5}, {"b", 2}}
	s1, err := JSONString(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := JSONString(in)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("JSONString not deterministic")
	}
	if !strings.Contains(s1, "\n  {") || !strings.HasSuffix(s1, "\n") {
		t.Fatalf("unexpected JSON shape:\n%s", s1)
	}
	var sb strings.Builder
	if err := JSON(&sb, map[string]int{"z": 1, "a": 2}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "{\n  \"a\": 2,\n  \"z\": 1\n}\n" {
		t.Fatalf("map keys not sorted: %q", sb.String())
	}
}
