// Package report renders experiment results as aligned ASCII tables,
// gnuplot-style data series, CSV, and JSON, for the bench and exp
// harnesses and cmd/numabench.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Grow pre-sizes the row list for n more Add calls.
func (t *Table) Grow(n int) {
	if need := len(t.Rows) + n; need > cap(t.Rows) {
		rows := make([][]string, len(t.Rows), need)
		copy(rows, t.Rows)
		t.Rows = rows
	}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float with adaptive precision.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case v == float64(int64(v)) && av < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	// One line buffer reused for every row: cells are written padded
	// with two-space separators, trailing pad spaces stripped — the
	// same bytes the per-row join used to produce.
	buf := make([]byte, 0, 128)
	line := func(cells []string) {
		buf = buf[:0]
		for i, c := range cells {
			if i > 0 {
				buf = append(buf, ' ', ' ')
			}
			buf = append(buf, c...)
			for n := widths[i] - len(c); n > 0; n-- {
				buf = append(buf, ' ')
			}
		}
		for len(buf) > 0 && buf[len(buf)-1] == ' ' {
			buf = buf[:len(buf)-1]
		}
		buf = append(buf, '\n')
		w.Write(buf)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table
// (pipe-delimited, header separator row), preceded by a "### title"
// heading when the table has one. Cell pipes are escaped so arbitrary
// cell strings cannot break the row structure.
func (t *Table) Markdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	mdRow := func(cells []string) {
		var sb strings.Builder
		sb.WriteByte('|')
		for _, c := range cells {
			sb.WriteByte(' ')
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
		io.WriteString(w, sb.String())
	}
	mdRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	mdRow(sep)
	for _, r := range t.Rows {
		mdRow(r)
	}
}

// CSV renders the table as CSV.
func (t *Table) CSV(w io.Writer) {
	buf := make([]byte, 0, 128)
	buf = appendCSVRow(buf, t.Headers)
	w.Write(buf)
	for _, r := range t.Rows {
		buf = appendCSVRow(buf[:0], r)
		w.Write(buf)
	}
}

// JSON writes v as indented JSON followed by a newline. Struct fields
// marshal in declaration order and maps in sorted-key order, so equal
// values always produce byte-identical output — the property the
// parallel experiment runner's determinism guarantee rests on.
func JSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// JSONString renders v as indented JSON, for tests and diffing.
func JSONString(v interface{}) (string, error) {
	var sb strings.Builder
	if err := JSON(&sb, v); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// appendCSVRow appends one CSV line to buf (quoting like the previous
// string-join implementation, byte for byte) and returns it.
func appendCSVRow(buf []byte, cells []string) []byte {
	for i, c := range cells {
		if i > 0 {
			buf = append(buf, ',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			buf = append(buf, '"')
			for j := 0; j < len(c); j++ {
				if c[j] == '"' {
					buf = append(buf, '"')
				}
				buf = append(buf, c[j])
			}
			buf = append(buf, '"')
		} else {
			buf = append(buf, c...)
		}
	}
	return append(buf, '\n')
}

// Series is one named curve of (x, y) points, matching a figure line.
type Series struct {
	Name   string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes, matching one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds a named curve.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name, XLabel: f.XLabel, YLabel: f.YLabel}
	f.Series = append(f.Series, s)
	return s
}

// Write renders the figure as an aligned data block: one x column and
// one column per series (gnuplot-ready).
func (f *Figure) Write(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", f.Title)
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	tbl := NewTable("", headers...)
	// Union of x values in first-series order (series normally share x).
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	tbl.Grow(len(xs))
	row := make([]interface{}, 0, len(f.Series)+1)
	for _, x := range xs {
		row = append(row[:0], x)
		for _, s := range f.Series {
			v := ""
			for i, sx := range s.X {
				if sx == x {
					v = FormatFloat(s.Y[i])
					break
				}
			}
			row = append(row, v)
		}
		tbl.Add(row...)
	}
	tbl.Write(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	f.Write(&sb)
	return sb.String()
}
