package tenancy

import (
	"sort"

	"numamig/internal/sim"
	"numamig/internal/telemetry"
)

// SLOStats is the per-class latency and steady-bandwidth summary a
// Monitor produces after a serve run: the SLO grid columns.
type SLOStats struct {
	// Samples counts the latency probes observed per class.
	Samples [NumClasses]int
	// P50 / P99 are the per-class access-probe latency percentiles
	// (nearest-rank over all of a class's ClassLatency durations).
	P50 [NumClasses]sim.Time
	P99 [NumClasses]sim.Time
	// SteadyMigrateBWMBps is the steady-state migration bandwidth: the
	// median per-window MigrateBatch rate over the windows that saw any
	// migration traffic, in MB/s of virtual time.
	SteadyMigrateBWMBps float64
	// CapViolations counts CapViolation pages seen on the bus.
	CapViolations int
}

// Monitor subscribes to the SLO topics of one System's bus and folds
// them into per-class latency percentiles and the steady migration
// bandwidth. Like every bus subscriber it runs synchronously under the
// engine token and must not advance time.
type Monitor struct {
	width sim.Time

	samples [NumClasses][]sim.Time
	capViol int

	started  bool
	winIdx   int64
	winBytes float64
	bws      []float64
}

// NewMonitor attaches an SLO monitor to b with the given bandwidth
// window width.
func NewMonitor(b *telemetry.Bus, width sim.Time) *Monitor {
	if width <= 0 {
		width = sim.FromSeconds(0.001)
	}
	m := &Monitor{width: width}
	b.Subscribe(telemetry.TopicClassLatency, m.onLatency)
	b.Subscribe(telemetry.TopicMigrateBatch, m.onMigrate)
	b.Subscribe(telemetry.TopicCapViolation, m.onViolation)
	return m
}

// advance closes every bandwidth window before ev's time.
func (m *Monitor) advance(tm sim.Time) {
	idx := int64(tm / m.width)
	if !m.started {
		m.started = true
		m.winIdx = idx
		return
	}
	for m.winIdx < idx {
		m.bws = append(m.bws, m.winBytes/m.width.Seconds()/1e6)
		m.winBytes = 0
		m.winIdx++
	}
}

func (m *Monitor) onLatency(ev telemetry.Event) {
	m.advance(ev.Time)
	c := Class(int(ev.Value))
	if c >= NumClasses {
		return
	}
	m.samples[c] = append(m.samples[c], ev.Dur)
}

func (m *Monitor) onMigrate(ev telemetry.Event) {
	m.advance(ev.Time)
	m.winBytes += ev.Bytes
}

func (m *Monitor) onViolation(ev telemetry.Event) {
	m.capViol += ev.Pages
}

// percentile returns the nearest-rank p-th percentile of s (sorted in
// place).
func percentile(s []sim.Time, p int) sim.Time {
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*p)/100]
}

// Finalize closes the in-progress window and returns the run's SLO
// stats. Call once, after the simulation has drained.
func (m *Monitor) Finalize() SLOStats {
	var st SLOStats
	if m.started {
		m.bws = append(m.bws, m.winBytes/m.width.Seconds()/1e6)
		m.winBytes = 0
		m.started = false
	}
	for c := Class(0); c < NumClasses; c++ {
		st.Samples[c] = len(m.samples[c])
		st.P50[c] = percentile(m.samples[c], 50)
		st.P99[c] = percentile(m.samples[c], 99)
	}
	var busy []float64
	for _, bw := range m.bws {
		if bw > 0 {
			busy = append(busy, bw)
		}
	}
	if len(busy) > 0 {
		sort.Float64s(busy)
		st.SteadyMigrateBWMBps = busy[len(busy)/2]
	}
	st.CapViolations = m.capViol
	return st
}
