// Package tenancy is the multi-tenant accounting layer under the
// kernel: per-tenant residency ledgers with cgroup-style fast-tier
// caps, priority classes, and the SLO instrumentation the serve
// scenario family grids.
//
// A Ledger tracks, per tenant, how many resident pages sit on each
// node and how many of those are on the fast (DRAM, tier-0) tier. The
// kernel charges the ledger at the same instants it touches mem.Phys —
// after a demand allocation lands, after a frame is freed on unmap,
// and after a migration op has both allocated its destination and
// freed its source — so a TenantResident event stream replayed from
// the telemetry bus reconstructs exactly the mem.Phys allocation
// gauges (the differential-test contract; see TopicTenantResident).
//
// The cap contract is cgroup-like: an allocation that would push a
// tenant's fast-tier residency past its cap is redirected down the
// demotion path (placement.DemotionTarget) instead of spilling across
// the DRAM tier, and the per-node kswapd daemons additionally demote
// an at-cap tenant's cold fast pages in the background. A page that
// still lands on the fast tier beyond the cap — possible only when no
// slow-tier node can absorb the redirect — is counted in
// CapViolations and published as a CapViolation event; the serve
// family requires zero per cell.
//
// Determinism: a Ledger belongs to one simulated System and is only
// driven from simulated code under the engine token, so it needs no
// locking and its event stream is byte-identical at any experiment
// parallelism. Tenants are kept in admission order; nothing iterates
// a map.
package tenancy

import (
	"numamig/internal/telemetry"
	"numamig/internal/topology"
)

// Class is a tenant's priority class.
type Class uint8

const (
	// ClassBatch tenants run throughput work: their migration batches
	// queue at normal priority and their probes tolerate slow-tier
	// residency.
	ClassBatch Class = iota
	// ClassLatencySensitive tenants' faults and migration requests are
	// never queued behind a batch tenant's batches: their requests
	// carry priority 1 through the migration engine's lock queues.
	ClassLatencySensitive

	// NumClasses bounds the class space.
	NumClasses
)

// String returns the class's grid label.
func (c Class) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassLatencySensitive:
		return "ls"
	}
	return "unknown"
}

// Priority is the migration-request priority the class maps to
// (sim.Resource.AcquirePri): batch work at 0, latency-sensitive at 1.
func (c Class) Priority() int {
	if c == ClassLatencySensitive {
		return 1
	}
	return 0
}

// Tenant is one admitted tenant's ledger entry.
type Tenant struct {
	// ID is the tenant's stable id (the Task field of its telemetry
	// events); Name labels diagnostics.
	ID   int
	Name string
	// Class is the tenant's priority class.
	Class Class
	// CapPages is the fast-tier residency cap in pages; <= 0 means
	// uncapped.
	CapPages int

	resident map[topology.NodeID]int
	total    int
	fast     int
	live     bool
}

// Resident returns the tenant's total resident pages across all nodes.
func (t *Tenant) Resident() int { return t.total }

// FastResident returns the tenant's resident pages on the fast (tier-0)
// tier — the quantity CapPages bounds.
func (t *Tenant) FastResident() int { return t.fast }

// ResidentOn returns the tenant's resident pages on one node.
func (t *Tenant) ResidentOn(n topology.NodeID) int { return t.resident[n] }

// Live reports whether the tenant has been admitted and not yet exited.
func (t *Tenant) Live() bool { return t.live }

// Ledger is one System's tenant accounting: residency per tenant per
// node, fast-tier cap enforcement state, and the tenant lifecycle
// telemetry.
type Ledger struct {
	bus    *telemetry.Bus
	tierOf func(topology.NodeID) int

	tenants []*Tenant // admission order; exited tenants stay for accounting
	byID    map[int]*Tenant

	// Admitted / Exited count tenant lifecycle transitions.
	Admitted int
	Exited   int
	// CapViolations counts pages charged onto the fast tier beyond
	// their tenant's cap (must stay 0 in every serve cell).
	CapViolations int
}

// NewLedger creates a ledger publishing on bus (nil: no telemetry,
// accounting only — the fuzz harness mode). tierOf maps a node to its
// memory tier (nil: everything is tier 0).
func NewLedger(bus *telemetry.Bus, tierOf func(topology.NodeID) int) *Ledger {
	if tierOf == nil {
		tierOf = func(topology.NodeID) int { return 0 }
	}
	return &Ledger{bus: bus, tierOf: tierOf, byID: make(map[int]*Tenant)}
}

func (l *Ledger) publish(ev telemetry.Event) {
	if l.bus != nil {
		l.bus.Publish(ev)
	}
}

// Lookup returns the tenant with the given id, or nil.
func (l *Ledger) Lookup(id int) *Tenant { return l.byID[id] }

// Admit registers a tenant and publishes TenantAdmit. Admitting an id
// twice panics — ids are the stable key of the event stream.
func (l *Ledger) Admit(id int, name string, class Class, capPages int) *Tenant {
	if l.byID[id] != nil {
		panic("tenancy: tenant id admitted twice")
	}
	t := &Tenant{
		ID: id, Name: name, Class: class, CapPages: capPages,
		resident: make(map[topology.NodeID]int),
		live:     true,
	}
	l.tenants = append(l.tenants, t)
	l.byID[id] = t
	l.Admitted++
	l.publish(telemetry.Event{
		Topic: telemetry.TopicTenantAdmit,
		Node:  telemetry.NoNode, Dst: telemetry.NoNode,
		Task: id, Pages: capPages, Value: float64(class),
	})
	return t
}

// WouldBreach reports whether charging pages more fast-tier pages
// would push the tenant past its cap.
func (t *Tenant) WouldBreach(pages int) bool {
	return t.CapPages > 0 && t.fast+pages > t.CapPages
}

// chargeFast folds pages fast-tier pages into the tenant and returns
// how many of them landed beyond the cap.
func (l *Ledger) chargeFast(t *Tenant, pages int) int {
	t.fast += pages
	if t.CapPages <= 0 || t.fast <= t.CapPages {
		return 0
	}
	over := t.fast - t.CapPages
	if over > pages {
		over = pages
	}
	return over
}

// Charge records pages newly resident pages of t on node (a demand
// allocation landing) and publishes one TenantResident event. Pages
// landing on the fast tier beyond the cap are counted and published as
// a CapViolation.
func (l *Ledger) Charge(t *Tenant, node topology.NodeID, pages int) {
	if pages == 0 {
		return
	}
	if pages < 0 {
		panic("tenancy: negative charge")
	}
	t.resident[node] += pages
	t.total += pages
	if l.tierOf(node) == 0 {
		if over := l.chargeFast(t, pages); over > 0 {
			l.CapViolations += over
			l.publish(telemetry.Event{
				Topic: telemetry.TopicCapViolation,
				Node:  node, Dst: telemetry.NoNode,
				Task: t.ID, Pages: over,
			})
		}
	}
	l.publish(telemetry.Event{
		Topic: telemetry.TopicTenantResident,
		Node:  node, Dst: telemetry.NoNode,
		Task: t.ID, Pages: pages, Value: float64(t.total),
	})
}

// Release records pages of t leaving node (frames freed on unmap) and
// publishes one TenantResident event with a negative delta. Releasing
// more than is resident panics — the ledger can never go negative.
func (l *Ledger) Release(t *Tenant, node topology.NodeID, pages int) {
	if pages == 0 {
		return
	}
	if pages < 0 {
		panic("tenancy: negative release")
	}
	if t.resident[node] < pages {
		panic("tenancy: release exceeds node residency")
	}
	t.resident[node] -= pages
	t.total -= pages
	if l.tierOf(node) == 0 {
		t.fast -= pages
	}
	l.publish(telemetry.Event{
		Topic: telemetry.TopicTenantResident,
		Node:  node, Dst: telemetry.NoNode,
		Task: t.ID, Pages: -pages, Value: float64(t.total),
	})
}

// Move records pages of t migrating src -> dst (the engine has already
// allocated the destination frames and freed the sources) and
// publishes one atomic TenantResident event with Dst set, so replayers
// never observe a mid-move state. A move onto the fast tier past the
// cap counts cap violations like Charge.
func (l *Ledger) Move(t *Tenant, src, dst topology.NodeID, pages int) {
	if pages == 0 || src == dst {
		return
	}
	if pages < 0 {
		panic("tenancy: negative move")
	}
	if t.resident[src] < pages {
		panic("tenancy: move exceeds source residency")
	}
	t.resident[src] -= pages
	t.resident[dst] += pages
	srcFast, dstFast := l.tierOf(src) == 0, l.tierOf(dst) == 0
	if srcFast && !dstFast {
		t.fast -= pages
	}
	if dstFast && !srcFast {
		if over := l.chargeFast(t, pages); over > 0 {
			l.CapViolations += over
			l.publish(telemetry.Event{
				Topic: telemetry.TopicCapViolation,
				Node:  dst, Dst: telemetry.NoNode,
				Task: t.ID, Pages: over,
			})
		}
	}
	l.publish(telemetry.Event{
		Topic: telemetry.TopicTenantResident,
		Node:  src, Dst: dst,
		Task: t.ID, Pages: pages, Value: float64(t.total),
	})
}

// Exit retires the tenant, drains any residual residency, publishes
// TenantExit and returns the pages drained. A tenant that unmapped
// everything before exiting (the serve contract) drains 0; the fuzz
// harness checks the drain equals exactly what was charged minus what
// was released.
func (l *Ledger) Exit(t *Tenant) int {
	if !t.live {
		panic("tenancy: exit of non-live tenant")
	}
	t.live = false
	residual := t.total
	t.resident = make(map[topology.NodeID]int)
	t.total, t.fast = 0, 0
	l.Exited++
	l.publish(telemetry.Event{
		Topic: telemetry.TopicTenantExit,
		Node:  telemetry.NoNode, Dst: telemetry.NoNode,
		Task: t.ID, Pages: residual,
	})
	return residual
}

// OverCapOn returns the first-admitted live tenant sitting at or past
// its fast-tier cap with pages resident on node, or nil. The per-node
// kswapd daemons use it to pick the tenant whose cold pages the
// background cap-reclaim pass demotes.
func (l *Ledger) OverCapOn(node topology.NodeID) *Tenant {
	for _, t := range l.tenants {
		if t.live && t.CapPages > 0 && t.fast >= t.CapPages && t.resident[node] > 0 {
			return t
		}
	}
	return nil
}
