package tenancy

import (
	"testing"

	"numamig/internal/topology"
)

// The fuzz harness drives a bus-less Ledger (accounting-only mode)
// through an arbitrary op stream decoded from the fuzz input and
// checks it against a naive reference counter after every op: per-node
// residency, totals, the fast-tier aggregate, cap-violation counts,
// and the Exit drain all have independent shadow implementations here.
// Inputs are clamped to the ledger's documented domain (non-negative
// deltas, releases bounded by residency) — the panics on violations of
// that domain are asserted separately in TestLedgerPanics.

const (
	fuzzNodes     = 4
	fuzzFastNodes = 2
	fuzzMaxPages  = 64
)

func fuzzTierOf(n topology.NodeID) int {
	if int(n) < fuzzFastNodes {
		return 0
	}
	return 1
}

// refTenant is the naive shadow of one tenant: a plain per-node
// counter with no aggregate caching.
type refTenant struct {
	resident [fuzzNodes]int
	capPages int
	live     bool
}

func (r *refTenant) total() int {
	n := 0
	for _, v := range r.resident {
		n += v
	}
	return n
}

func (r *refTenant) fast() int {
	n := 0
	for i := 0; i < fuzzFastNodes; i++ {
		n += r.resident[i]
	}
	return n
}

// refOver recomputes how many of pages newly-fast pages land past the
// cap, from the shadow counters alone (fastAfter includes pages).
func (r *refTenant) refOver(fastAfter, pages int) int {
	if r.capPages <= 0 || fastAfter <= r.capPages {
		return 0
	}
	over := fastAfter - r.capPages
	if over > pages {
		over = pages
	}
	return over
}

// checkTenant compares one live ledger tenant against its shadow.
func checkTenant(t *testing.T, op int, ten *Tenant, ref *refTenant) {
	t.Helper()
	if ten.Resident() != ref.total() {
		t.Fatalf("op %d: tenant %d total %d, reference %d", op, ten.ID, ten.Resident(), ref.total())
	}
	if ten.FastResident() != ref.fast() {
		t.Fatalf("op %d: tenant %d fast %d, reference %d", op, ten.ID, ten.FastResident(), ref.fast())
	}
	for n := topology.NodeID(0); n < fuzzNodes; n++ {
		got, want := ten.ResidentOn(n), ref.resident[n]
		if got != want {
			t.Fatalf("op %d: tenant %d node %d residency %d, reference %d", op, ten.ID, n, got, want)
		}
		if got < 0 {
			t.Fatalf("op %d: tenant %d node %d residency went negative: %d", op, ten.ID, n, got)
		}
	}
	if ten.FastResident() < 0 || ten.Resident() < 0 {
		t.Fatalf("op %d: tenant %d aggregate went negative (total %d fast %d)", op, ten.ID, ten.Resident(), ten.FastResident())
	}
}

func FuzzLedger(f *testing.F) {
	// Seed the interesting shapes: a full lifecycle, a cap breach with a
	// rescuing move off the fast tier, interleaved multi-tenant churn,
	// and an exit with residency left to drain.
	f.Add([]byte("\x00\x00\x01\x40\x01\x00\x00\x20\x02\x00\x00\x10\x04\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x10\x01\x00\x00\x30\x03\x00\x02\x30\x04\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x20\x00\x00\x01\x00\x01\x00\x03\x18\x01\x01\x01\x3f" +
		"\x03\x01\x01\x02\x04\x00\x00\x00\x02\x00\x01\x08\x04\x00\x00\x00"))
	f.Add([]byte("\x00\x00\x00\x08\x01\x00\x01\x28\x04\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l := NewLedger(nil, fuzzTierOf)
		refs := make(map[int]*refTenant)
		var live []int // admission order, like the ledger's own scan
		refViolations := 0
		nextID := 0

		for op := 0; len(data) >= 4; op++ {
			kind, a, b, c := data[0]%5, data[1], data[2], data[3]
			data = data[4:]

			pickLive := func() (int, *Tenant, *refTenant) {
				if len(live) == 0 {
					return -1, nil, nil
				}
				id := live[int(a)%len(live)]
				return id, l.Lookup(id), refs[id]
			}

			switch kind {
			case 0: // admit
				id := nextID
				nextID++
				class := Class(b % 2)
				capPages := int(c) % 128
				l.Admit(id, "fuzz", class, capPages)
				refs[id] = &refTenant{capPages: capPages, live: true}
				live = append(live, id)

			case 1: // charge
				id, ten, ref := pickLive()
				if ten == nil {
					continue
				}
				node := topology.NodeID(b) % fuzzNodes
				pages := int(c) % fuzzMaxPages
				if fuzzTierOf(node) == 0 {
					refViolations += ref.refOver(ref.fast()+pages, pages)
				}
				ref.resident[node] += pages
				l.Charge(ten, node, pages)
				checkTenant(t, op, ten, ref)
				_ = id

			case 2: // release, clamped to what is resident
				_, ten, ref := pickLive()
				if ten == nil {
					continue
				}
				node := topology.NodeID(b) % fuzzNodes
				pages := int(c) % fuzzMaxPages
				if pages > ref.resident[node] {
					pages = ref.resident[node]
				}
				ref.resident[node] -= pages
				l.Release(ten, node, pages)
				checkTenant(t, op, ten, ref)

			case 3: // move, clamped to the source residency
				_, ten, ref := pickLive()
				if ten == nil {
					continue
				}
				src := topology.NodeID(b) % fuzzNodes
				dst := topology.NodeID(c) % fuzzNodes
				pages := int(a) % fuzzMaxPages
				if pages > ref.resident[src] {
					pages = ref.resident[src]
				}
				if src != dst && pages > 0 && fuzzTierOf(dst) == 0 && fuzzTierOf(src) != 0 {
					refViolations += ref.refOver(ref.fast()+pages, pages)
				}
				if src != dst {
					ref.resident[src] -= pages
					ref.resident[dst] += pages
				}
				before := ten.Resident()
				l.Move(ten, src, dst, pages)
				if ten.Resident() != before {
					t.Fatalf("op %d: move changed tenant %d total: %d -> %d", op, ten.ID, before, ten.Resident())
				}
				checkTenant(t, op, ten, ref)

			case 4: // exit: the drain must equal charged minus released
				id, ten, ref := pickLive()
				if ten == nil {
					continue
				}
				want := ref.total()
				got := l.Exit(ten)
				if got != want {
					t.Fatalf("op %d: tenant %d exit drained %d, reference charged-minus-released is %d", op, id, got, want)
				}
				if ten.Resident() != 0 || ten.FastResident() != 0 || ten.Live() {
					t.Fatalf("op %d: tenant %d not drained after exit (total %d fast %d live %v)",
						op, id, ten.Resident(), ten.FastResident(), ten.Live())
				}
				ref.live = false
				for i, v := range live {
					if v == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}

			if l.CapViolations != refViolations {
				t.Fatalf("op %d: ledger counts %d cap violations, reference %d", op, l.CapViolations, refViolations)
			}
		}

		// Drain every still-live tenant: exits must return exactly what
		// remains charged, and the ledger's lifecycle counters must agree
		// with the shadow's.
		for _, id := range live {
			ten, ref := l.Lookup(id), refs[id]
			if got, want := l.Exit(ten), ref.total(); got != want {
				t.Fatalf("final exit of tenant %d drained %d, reference %d", id, got, want)
			}
		}
		if l.Admitted != nextID || l.Exited != nextID {
			t.Fatalf("lifecycle counters: admitted %d exited %d, want %d each", l.Admitted, l.Exited, nextID)
		}
	})
}

// TestLedgerPanics pins the domain contract the fuzz harness clamps
// around: negative deltas, over-releases, over-moves, double admission
// and double exit all panic rather than corrupt the books.
func TestLedgerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	l := NewLedger(nil, fuzzTierOf)
	ten := l.Admit(0, "t", ClassBatch, 8)
	l.Charge(ten, 0, 4)

	mustPanic("negative charge", func() { l.Charge(ten, 0, -1) })
	mustPanic("negative release", func() { l.Release(ten, 0, -1) })
	mustPanic("negative move", func() { l.Move(ten, 0, 1, -1) })
	mustPanic("over-release", func() { l.Release(ten, 0, 5) })
	mustPanic("over-move", func() { l.Move(ten, 0, 1, 5) })
	mustPanic("release on empty node", func() { l.Release(ten, 1, 1) })
	mustPanic("double admit", func() { l.Admit(0, "dup", ClassBatch, 0) })

	if got := l.Exit(ten); got != 4 {
		t.Fatalf("exit drained %d, want 4", got)
	}
	mustPanic("double exit", func() { l.Exit(ten) })
}
