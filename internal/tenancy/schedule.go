package tenancy

import (
	"math/rand"

	"numamig/internal/sim"
)

// Schedule is the deterministic Poisson-like arrival clock of the
// open-system serve family: exponential inter-arrival gaps drawn from
// a seeded generator and quantized to virtual time, so the same seed
// produces the same arrival instants at any experiment parallelism.
type Schedule struct {
	rng  *rand.Rand
	mean sim.Time
}

// NewSchedule creates a schedule with the given seed and mean
// inter-arrival gap.
func NewSchedule(seed int64, mean sim.Time) *Schedule {
	if mean <= 0 {
		mean = 1
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), mean: mean}
}

// Gap draws the next inter-arrival gap: exponentially distributed with
// the schedule's mean, quantized to sim.Time, clamped to [1, 20*mean]
// so one long tail draw cannot stall a cell.
func (s *Schedule) Gap() sim.Time {
	g := sim.Time(float64(s.mean) * s.rng.ExpFloat64())
	if g < 1 {
		g = 1
	}
	if max := 20 * s.mean; g > max {
		g = max
	}
	return g
}

// Intn draws a uniform int in [0, n) from the schedule's generator —
// the tenant-mix choices ride the same seeded stream as the gaps.
func (s *Schedule) Intn(n int) int { return s.rng.Intn(n) }
