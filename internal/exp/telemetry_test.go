package exp

import (
	"hash/fnv"
	"sort"
	"sync"
	"testing"

	numamig "numamig"
	"numamig/internal/telemetry"
)

// logHasher folds one System's full event stream into an FNV-64a hash
// and checks the (Time, Seq) total order as it goes. Handlers run under
// the owning system's engine token, so no locking is needed inside.
type logHasher struct {
	h         interface{ Sum64() uint64 }
	write     func([]byte)
	last      telemetry.Event
	any       bool
	misorder  bool
	numEvents int
	// capViolPages tallies TopicCapViolation pages on the side; the
	// serve property test requires the whole grid to count zero.
	capViolPages int
}

func newLogHasher() *logHasher {
	h := fnv.New64a()
	return &logHasher{h: h, write: func(b []byte) { h.Write(b) }}
}

func (l *logHasher) observe(ev telemetry.Event) {
	if l.any {
		if ev.Time < l.last.Time || (ev.Time == l.last.Time && ev.Seq <= l.last.Seq) {
			l.misorder = true
		}
	}
	l.last, l.any = ev, true
	l.numEvents++
	if ev.Topic == telemetry.TopicCapViolation {
		l.capViolPages += ev.Pages
	}
	var buf [8 * 8]byte
	fields := [...]uint64{
		uint64(ev.Time), uint64(ev.Seq), uint64(ev.Topic),
		uint64(int64(ev.Node)), uint64(int64(ev.Dst)),
		uint64(ev.Task), uint64(ev.Pages), uint64(ev.Dur),
	}
	for i, f := range fields {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(f >> (8 * b))
		}
	}
	l.write(buf[:])
}

// hashGrid runs every registered family's quick grid at the given
// parallelism with a log hasher attached to each System, returning the
// sorted multiset of per-system (hash, count) pairs.
func hashGrid(t *testing.T, parallelism int) []uint64 {
	t.Helper()
	sums, _ := hashGridFamilies(t, parallelism, nil)
	return sums
}

// hashGridFamilies is hashGrid restricted to the named families (nil:
// all registered). It additionally returns the total CapViolation pages
// seen across every system in the grid.
func hashGridFamilies(t *testing.T, parallelism int, names []string) ([]uint64, int) {
	t.Helper()
	var mu sync.Mutex
	var hashers []*logHasher
	numamig.SetSystemObserver(func(sys *numamig.System) {
		l := newLogHasher()
		mu.Lock()
		hashers = append(hashers, l)
		mu.Unlock()
		sys.Bus().SubscribeAll(l.observe)
	})
	defer numamig.SetSystemObserver(nil)

	scs, err := Scenarios(names, Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := Runner{Parallel: parallelism}.Run(scs)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("scenario %s failed: %s", r.ID, r.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hashers) == 0 {
		t.Fatal("no systems observed")
	}
	sums := make([]uint64, 0, len(hashers))
	events, capViol := 0, 0
	for _, l := range hashers {
		if l.misorder {
			t.Fatal("a system's event log violated the (Time, Seq) total order")
		}
		sums = append(sums, l.h.Sum64())
		events += l.numEvents
		capViol += l.capViolPages
	}
	if events == 0 {
		t.Fatal("the grid published no events — the property test exercised nothing")
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i] < sums[j] })
	return sums, capViol
}

// TestEventLogParallelismInvariant pins the tentpole determinism
// property: the full telemetry stream of every System in the quick
// grid — all registered families — is byte-identical (here:
// FNV-64a-identical, field by field) whether the runner uses one
// worker or eight. Event stamps come only from virtual time and the
// per-instant sequence, so the executing goroutine must not matter.
func TestEventLogParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick grid twice")
	}
	seq := hashGrid(t, 1)
	par := hashGrid(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("system counts differ: %d sequential vs %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("event-log hash multiset differs at %d: %#x vs %#x", i, seq[i], par[i])
		}
	}
}
