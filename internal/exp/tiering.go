package exp

import (
	"fmt"

	"numamig/internal/workload"
)

// The tiering family grids the promotion/demotion interplay on the
// rotating-hot-set workload (workload.Tiering): AutoNUMA promotes the
// sliding hot window into a node held at its watermarks by cold
// ballast, and the kswapd daemons demote what the window leaves
// behind — warm pages to the nearest tier, genuinely cold ones to the
// farthest. The axis that matters is promotion hysteresis: with it
// off, the pages at the window's trailing edge are demoted moments
// after their promotion (the promote_demote_flips column counts this
// ping-pong); with it on, the flip count collapses while locality and
// demotion throughput stay intact. Every cell also carries a
// strict-bind ballast whose pages must never be observed outside
// their nodemask — the runner fails the scenario otherwise.

func init() {
	Register(Family{
		Name: "tiering",
		Desc: "rotating hot set x hysteresis on/off: promotion and demotion chase each other; flips measure ping-pong",
		Generate: func(o Options) []Scenario {
			var out []Scenario
			for _, nodes := range o.nodes() {
				if nodes < 2 {
					continue
				}
				for _, hyst := range []bool{true, false} {
					suffix := "nohyst"
					if hyst {
						suffix = "hyst"
					}
					out = append(out, Scenario{
						ID:         fmt.Sprintf("tiering/%s/n%d", suffix, nodes),
						Family:     "tiering",
						Patched:    true,
						Mode:       "autonuma",
						Pages:      1024, // per-node capacity in frames
						Nodes:      nodes,
						Seed:       o.seed(),
						Cores:      o.CoresPerNode,
						Demotion:   true,
						Hysteresis: hyst,
					})
				}
			}
			return out
		},
		Run: runTiering,
	})
}

// runTiering executes one scenario through the rotating-hot-set
// driver. Scenario.Pages is the per-node capacity in frames; the
// workload derives its buffer sizes from it.
func runTiering(s Scenario) Result {
	res := Result{Scenario: s}
	r, err := workload.Tiering(workload.TieringConfig{
		Nodes:      s.Nodes,
		Cores:      s.Cores,
		NodePages:  s.Pages,
		Seed:       s.Seed,
		Hysteresis: s.Hysteresis,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if r.Absent != 0 {
		res.Err = fmt.Sprintf("tiering run left %d pages absent", r.Absent)
		return res
	}
	if r.BindOffMask != 0 {
		// The acceptance invariant: the demotion scan's nodemask gate
		// must keep strict-bind pages inside their node set.
		res.Err = fmt.Sprintf("%d strict-bind pages observed outside their nodemask (hist %v)",
			r.BindOffMask, r.BindHist)
		return res
	}
	fillStats(&res, r.Stats, r.MigratedMB, r.Bytes, r.Dur)
	res.HotLocal = r.HotLocal
	return res
}
