package exp

import (
	"fmt"

	"numamig/internal/workload"
)

// The autonuma family quantifies the paper's central trade-off the way
// history resolved it: explicit next-touch (application-driven marks)
// against automatic NUMA balancing (transparent hinting-fault
// sampling), against doing nothing at all, on workloads whose access
// locus moves between nodes.
//
// Two workload shapes share the grid:
//
//   - rotate1: the paper's single-rotation scenario — one thread move
//     to the farthest node, then repeated whole-buffer sweeps. Manual
//     next-touch is near-optimal here (one mark, one migration pass);
//     autonuma must first discover the shift, so its gap on rotate1 is
//     the pure price of transparency.
//   - phases: a full rotation visiting every non-home node. Each phase
//     shift needs a fresh hint under the manual policies but is
//     re-discovered for free by the scanner, while static placement
//     decays to all-remote.

func init() {
	Register(Family{
		Name: "autonuma",
		Desc: "manual sync/lazy next-touch vs automatic NUMA balancing vs static, on single-rotation and phase-shifting sweeps",
		Generate: func(o Options) []Scenario {
			var out []Scenario
			for _, nodes := range o.nodes() {
				if nodes < 2 {
					continue // the rotation workload needs a remote node
				}
				for _, pages := range o.pages() {
					for _, wl := range []string{"rotate1", "phases"} {
						for _, pol := range workload.PhasePolicies() {
							out = append(out, Scenario{
								ID:       fmt.Sprintf("autonuma/%s/%s/p%d/n%d", wl, pol, pages, nodes),
								Family:   "autonuma",
								Patched:  true,
								Mode:     pol.String(),
								Pages:    pages,
								Nodes:    nodes,
								Seed:     o.seed(),
								Cores:    o.CoresPerNode,
								Workload: wl,
							})
						}
					}
				}
			}
			return out
		},
		Run: runAutoNUMA,
	})
}

// runAutoNUMA executes one scenario through the phase-shifting
// workload driver.
func runAutoNUMA(s Scenario) Result {
	res := Result{Scenario: s}
	pol, err := workload.PhasePolicyOf(s.Mode)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	hops := 0 // full rotation
	if s.Workload == "rotate1" {
		hops = 1
	} else if s.Workload != "phases" {
		res.Err = fmt.Sprintf("exp: unknown autonuma workload %q", s.Workload)
		return res
	}
	r, err := workload.PhaseShift(workload.PhaseShiftConfig{
		Nodes:  s.Nodes,
		Cores:  s.Cores,
		Pages:  s.Pages,
		Hops:   hops,
		Seed:   s.Seed,
		Policy: pol,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if r.Absent != 0 {
		res.Err = fmt.Sprintf("phase-shift left %d pages absent", r.Absent)
		return res
	}
	fillStats(&res, r.Stats, r.MigratedMB, r.Bytes, r.Dur)
	return res
}
