package exp

import (
	"testing"
)

// TestServeEventLogParallelismInvariant pins the serve family's own
// determinism property: every serve cell's full bus event log — tenant
// admissions, cap redirects, class-latency probes, residency deltas,
// the lot — hashes identically whether the runner uses one worker or
// eight, and the grid counts zero CapViolation pages either way. The
// open-system arrival schedule and the priority queueing through the
// migration engine are exactly the machinery most likely to leak host
// scheduling into virtual time, so the family gets its own log-hash
// test on top of the all-families one.
func TestServeEventLogParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve quick grid twice")
	}
	seq, seqViol := hashGridFamilies(t, 1, []string{"serve"})
	par, parViol := hashGridFamilies(t, 8, []string{"serve"})
	if seqViol != 0 || parViol != 0 {
		t.Fatalf("cap violations in the serve grid: %d sequential, %d parallel, want 0", seqViol, parViol)
	}
	if len(seq) != len(par) {
		t.Fatalf("system counts differ: %d sequential vs %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("serve event-log hash multiset differs at %d: %#x vs %#x", i, seq[i], par[i])
		}
	}
}
