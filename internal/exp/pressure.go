package exp

import (
	"fmt"

	"numamig/internal/workload"
)

// The pressure family exercises the memory-pressure subsystem on
// overcommitted, imbalanced machines: per-node watermarks, the
// kswapd-style demotion daemons, and the placement layer's
// watermark-aware fallback, crossed with the hot-set migration
// policies. The grid separates three regimes:
//
//   - no policy (off): the hot set stays remote whether or not
//     demotion frees room — demotion alone does not localize;
//   - policy without demotion: sync and lazy-kernel churn (migration
//     into a node at its watermarks falls back to a remote node),
//     while AutoNUMA's pressure gate skips the promotions outright
//     and avoids the wasted copies;
//   - policy with demotion: cold pages are demoted off node 0, the
//     hot set lands in the freed room, and locality converges.
//
// Throughout, ErrNoMemory never reaches the workload: the placement
// layer always finds a frame somewhere on the machine.

func init() {
	Register(Family{
		Name: "pressure",
		Desc: "overcommit x imbalance x {off,sync,lazy-kernel,autonuma} x demotion on/off: hot-set locality on an overcommitted node",
		Generate: func(o Options) []Scenario {
			overcommits := []float64{1.25, 1.5}
			imbalances := []float64{0.6, 1.0}
			if o.Quick {
				overcommits = []float64{1.5}
				imbalances = []float64{1.0}
			}
			policies := []workload.PhasePolicy{
				workload.PhaseStatic, workload.PhaseSync,
				workload.PhaseLazyKernel, workload.PhaseAutoNUMA,
			}
			var out []Scenario
			for _, nodes := range o.nodes() {
				if nodes < 2 {
					continue
				}
				for _, oc := range overcommits {
					for _, imb := range imbalances {
						for _, pol := range policies {
							for _, dem := range []bool{false, true} {
								suffix := "nodemote"
								if dem {
									suffix = "demote"
								}
								out = append(out, Scenario{
									ID: fmt.Sprintf("pressure/%s/oc%.0f/im%.0f/n%d/%s",
										pol, oc*100, imb*100, nodes, suffix),
									Family:     "pressure",
									Patched:    true,
									Mode:       pol.String(),
									Pages:      1024, // per-node capacity in frames
									Nodes:      nodes,
									Seed:       o.seed(),
									Cores:      o.CoresPerNode,
									Overcommit: oc,
									Imbalance:  imb,
									Demotion:   dem,
								})
							}
						}
					}
				}
			}
			return out
		},
		Run: runPressure,
	})
}

// runPressure executes one scenario through the pressure workload
// driver. Scenario.Pages is the per-node capacity; the hot set is a
// quarter of it.
func runPressure(s Scenario) Result {
	res := Result{Scenario: s}
	pol, err := workload.PhasePolicyOf(s.Mode)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	r, err := workload.Pressure(workload.PressureConfig{
		Nodes:      s.Nodes,
		Cores:      s.Cores,
		NodePages:  s.Pages,
		Overcommit: s.Overcommit,
		Imbalance:  s.Imbalance,
		Seed:       s.Seed,
		Policy:     pol,
		Demotion:   s.Demotion,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if r.Absent != 0 {
		// The acceptance invariant: allocation exhaustion must never
		// surface to the workload as missing pages.
		res.Err = fmt.Sprintf("pressure run left %d hot pages absent", r.Absent)
		return res
	}
	fillStats(&res, r.Stats, r.MigratedMB, r.Bytes, r.Dur)
	res.HotLocal = r.HotLocal
	return res
}
