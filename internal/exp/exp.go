// Package exp is the scenario registry and concurrent runner for the
// paper's experiment grid.
//
// A Scenario is one fully-specified simulation configuration (strategy
// x migration mode x buffer size x machine size, plus the seed). A
// Family is a named generator that expands options into a scenario
// list plus a function that runs one scenario; families register
// themselves in a global registry so cmd/numabench can enumerate them
// (`numabench -grid -families migration,replication`).
//
// Every scenario builds its own deterministic System, so the Runner can
// execute scenarios across parallel goroutines with no shared state:
// the same seeds produce byte-identical JSON/CSV output whatever the
// parallelism (see Runner).
package exp

import (
	"fmt"
	"sort"

	"numamig/internal/core"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"

	numamig "numamig"
)

// Scenario is one point of the experiment grid.
type Scenario struct {
	ID      string `json:"id"`
	Family  string `json:"family"`
	Patched bool   `json:"patched"`
	Mode    string `json:"mode"`  // sync | lazy-kernel | lazy-user | static | replicated | autonuma | off
	Pages   int    `json:"pages"` // buffer size in 4 KiB pages
	Nodes   int    `json:"nodes"` // machine size in NUMA nodes
	Seed    int64  `json:"seed"`
	// Cores is cores per node (0: the Opteron host's 4). Set by the
	// -cores-per-node sweep flag.
	Cores int `json:"cores,omitempty"`
	// Workload selects the driver for families with more than one
	// (autonuma: "rotate1" single rotation, "phases" full rotation).
	Workload string `json:"workload,omitempty"`
	// Pressure-family dimensions: total allocation as a multiple of one
	// node's capacity, the fraction of the cold set aimed at node 0,
	// and whether the kswapd-style demotion daemons run.
	Overcommit float64 `json:"overcommit,omitempty"`
	Imbalance  float64 `json:"imbalance,omitempty"`
	Demotion   bool    `json:"demotion,omitempty"`
	// Hysteresis (tiering/tiered families) enables promotion
	// hysteresis: freshly promoted pages are protected from demotion
	// for Params.PromotionHysteresisPeriods scan periods.
	Hysteresis bool `json:"hysteresis,omitempty"`
	// Tiered-family dimensions: how many of the machine's nodes are
	// CXL slow-memory expanders (appended after the DRAM nodes), each
	// slow node's capacity as a multiple of a DRAM node's, and the
	// promotion rate limit out of the slow tier (0 = unlimited).
	SlowNodes     int     `json:"slow_nodes,omitempty"`
	SlowRatio     float64 `json:"slow_ratio,omitempty"`
	RateLimitMBps float64 `json:"rate_limit_mbps,omitempty"`
	// Adaptive replaces the static promotion rate limit with the
	// closed-loop controller (internal/control); RateLimitMBps is
	// ignored then.
	Adaptive bool `json:"adaptive,omitempty"`
	// Tasks is the short-lived task count of the scale family's churn
	// workloads.
	Tasks int `json:"tasks,omitempty"`
}

// Result is the outcome of one scenario: the virtual-time metrics and
// kernel counters the paper reports.
type Result struct {
	Scenario
	SimSeconds    float64 `json:"sim_seconds"`                    // virtual duration of the measured phase
	MBps          float64 `json:"mbps"`                           // buffer bytes over the measured phase
	PagesMoved    uint64  `json:"pages_moved"`                    // pages physically migrated
	MigratedMB    float64 `json:"migrated_mb"`                    // bytes moved by the engine
	Faults        uint64  `json:"faults"`                         // page faults taken
	Syscalls      uint64  `json:"syscalls"`                       // syscalls issued
	TLBShootdowns uint64  `json:"tlb_shootdowns"`                 // process-wide TLB flushes
	RemoteMB      float64 `json:"remote_mb"`                      // application bytes served remotely
	LocalMB       float64 `json:"local_mb"`                       // application bytes served locally
	NumaHints     uint64  `json:"numa_hints,omitempty"`           // AutoNUMA hinting faults taken
	Demoted       uint64  `json:"pages_demoted,omitempty"`        // pages demoted by the kswapd daemons
	HotLocal      float64 `json:"hot_local,omitempty"`            // pressure/tiering: final hot-set locality fraction
	Flips         uint64  `json:"promote_demote_flips,omitempty"` // pages demoted within the flip window of their promotion
	SlowResident  int64   `json:"slow_tier_resident,omitempty"`   // tiered: pages resident on slow-tier (CXL) nodes at run end
	RateLimited   uint64  `json:"promote_rate_limited,omitempty"` // promotions dropped by the slow-tier token bucket
	// Windowed telemetry columns (telemetry.Windows subscribers on the
	// event bus; tiered family).
	FaultRateHz     float64 `json:"fault_rate_hz,omitempty"`             // peak per-window page-fault rate
	MigrateBWPeak   float64 `json:"migrate_bw_mbps_peak,omitempty"`      // peak per-window migration bandwidth
	P99SlowResident float64 `json:"p99_slow_residency_window,omitempty"` // p99 of the windowed slow-tier residency gauge
	// Serve-family SLO columns (tenancy.Monitor): per-class access-probe
	// latency percentiles in microseconds of virtual time, the median
	// per-window migration bandwidth, and the ledger's cap-violation
	// count (must be 0 in every cell).
	P50AccessLatLS    float64 `json:"p50_access_lat_ls,omitempty"`
	P99AccessLatLS    float64 `json:"p99_access_lat_ls,omitempty"`
	P50AccessLatBatch float64 `json:"p50_access_lat_batch,omitempty"`
	P99AccessLatBatch float64 `json:"p99_access_lat_batch,omitempty"`
	SteadyMigrateBW   float64 `json:"steady_migrate_bw_mbps,omitempty"`
	CapViolations     int     `json:"cap_violations,omitempty"`
	Err               string  `json:"err,omitempty"`
}

// Options scales scenario generation.
type Options struct {
	// Quick trims the grid to sizes that run in well under a second.
	Quick bool
	// Seed is the base deterministic seed (default 1).
	Seed int64
	// NodeList overrides the machine-size sweep with explicit
	// topology.Grid node counts (subset of 1, 2, 4, 8); empty keeps the
	// per-family defaults.
	NodeList []int
	// CoresPerNode sets cores per node for every generated scenario
	// (0: the Opteron host's 4).
	CoresPerNode int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) pages() []int {
	if o.Quick {
		return []int{64, 1024}
	}
	return []int{64, 256, 1024, 4096}
}

func (o Options) nodes() []int {
	if len(o.NodeList) > 0 {
		return o.NodeList
	}
	if o.Quick {
		return []int{2, 4}
	}
	return []int{2, 4, 8}
}

// Family is a named scenario generator plus its per-scenario runner.
type Family struct {
	Name     string
	Desc     string
	Generate func(o Options) []Scenario
	Run      func(s Scenario) Result
}

var families = map[string]Family{}

// Register adds a family to the registry; duplicate names panic (the
// registry is populated from init functions only).
func Register(f Family) {
	if _, dup := families[f.Name]; dup {
		panic("exp: duplicate family " + f.Name)
	}
	families[f.Name] = f
}

// Families lists the registered family names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns a family's one-line description.
func Describe(name string) string { return families[name].Desc }

// Scenarios expands the named families (all when names is empty) into
// their scenario lists, in family order then generation order.
func Scenarios(names []string, o Options) ([]Scenario, error) {
	if len(names) == 0 {
		names = Families()
	}
	var out []Scenario
	for _, n := range names {
		f, ok := families[n]
		if !ok {
			return nil, fmt.Errorf("exp: unknown family %q (have %v)", n, Families())
		}
		out = append(out, f.Generate(o)...)
	}
	return out, nil
}

// RunScenario executes one scenario through its family runner.
func RunScenario(s Scenario) Result {
	f, ok := families[s.Family]
	if !ok {
		return Result{Scenario: s, Err: fmt.Sprintf("exp: unknown family %q", s.Family)}
	}
	return f.Run(s)
}

// ---- migration family: the paper's core grid ----

func init() {
	Register(Family{
		Name: "migration",
		Desc: "patched/unpatched x sync/lazy-kernel/lazy-user x pages x nodes: workset follows a migrating thread",
		Generate: func(o Options) []Scenario {
			var out []Scenario
			for _, nodes := range o.nodes() {
				for _, pages := range o.pages() {
					for _, mode := range []core.Mode{core.Sync, core.LazyKernel, core.LazyUser} {
						strategies := []bool{true, false}
						if mode == core.LazyKernel {
							// Kernel next-touch never calls move_pages,
							// so the patch flag cannot matter; one run.
							strategies = []bool{true}
						}
						for _, patched := range strategies {
							strat := "patched"
							if !patched {
								strat = "unpatched"
							}
							out = append(out, Scenario{
								ID:      fmt.Sprintf("migration/%s/%s/p%d/n%d", strat, mode, pages, nodes),
								Family:  "migration",
								Patched: patched,
								Mode:    mode.String(),
								Pages:   pages,
								Nodes:   nodes,
								Seed:    o.seed(),
								Cores:   o.CoresPerNode,
							})
						}
					}
				}
			}
			return out
		},
		Run: runMigration,
	})
}

func modeOf(s string) (core.Mode, error) {
	for _, m := range []core.Mode{core.Sync, core.LazyKernel, core.LazyUser} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("exp: unknown mode %q", s)
}

// runMigration reproduces the paper's central scenario: a thread owns a
// workset on node 0, the scheduler moves it to the farthest node, and
// the workset follows per the configured mode, synchronously or lazily,
// with the selected move_pages generation. Measured phase: thread move
// through the first full sweep of the buffer.
func runMigration(s Scenario) Result {
	res := Result{Scenario: s}
	mode, err := modeOf(s.Mode)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	sys := numamig.New(numamig.Config{Nodes: s.Nodes, CoresPerNode: s.Cores, Seed: s.Seed})
	mgr := sys.NewManager(mode, s.Patched)
	size := int64(s.Pages) * model.PageSize
	target := topology.NodeID(s.Nodes - 1)
	var dur sim.Time

	err = sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		mgr.Attach(t, buf.Region())
		start := t.P.Now()
		if err := mgr.MoveThread(t, sys.Machine.Nodes[target].Cores[0]); err != nil {
			panic(err)
		}
		if err := buf.Access(t, numamig.Stream, false); err != nil {
			panic(err)
		}
		dur = t.P.Now() - start
		// Invariant: the whole workset followed the thread.
		hist, absent := buf.NodeHistogram(t)
		if absent != 0 || hist[target] != s.Pages {
			res.Err = fmt.Sprintf("workset did not follow thread: hist=%v absent=%d", hist, absent)
		}
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	fill(&res, sys, size, dur)
	return res
}

// ---- replication family: the §6 read-only replication extension ----

func init() {
	Register(Family{
		Name: "replication",
		Desc: "static vs replicated reads of one hot shared buffer, one reader thread per node",
		Generate: func(o Options) []Scenario {
			var out []Scenario
			for _, nodes := range o.nodes() {
				for _, pages := range o.pages() {
					for _, mode := range []string{"static", "replicated"} {
						out = append(out, Scenario{
							ID:      fmt.Sprintf("replication/%s/p%d/n%d", mode, pages, nodes),
							Family:  "replication",
							Patched: true,
							Mode:    mode,
							Pages:   pages,
							Nodes:   nodes,
							Seed:    o.seed(),
							Cores:   o.CoresPerNode,
						})
					}
				}
			}
			return out
		},
		Run: runReplication,
	})
}

// runReplication sweeps one node-0 buffer from a reader thread per node,
// with or without read-only replication. Measured phase: all readers'
// first-to-last sweep makespan.
func runReplication(s Scenario) Result {
	const sweeps = 4
	res := Result{Scenario: s}
	sys := numamig.New(numamig.Config{Nodes: s.Nodes, CoresPerNode: s.Cores, Seed: s.Seed})
	size := int64(s.Pages) * model.PageSize
	ready := sim.NewEvent(sys.Eng)
	var buf *numamig.Buffer
	var start, last sim.Time

	sys.Proc.Spawn("setup", 0, func(t *numamig.Task) {
		buf = numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if s.Mode == "replicated" {
			if _, err := t.ReplicateRange(buf.Base, size); err != nil {
				panic(err)
			}
		}
		start = t.P.Now()
		ready.Fire()
	})
	for n := 0; n < s.Nodes; n++ {
		core := sys.Machine.Nodes[n].Cores[0]
		sys.Proc.Spawn(fmt.Sprintf("reader%d", n), core, func(t *numamig.Task) {
			ready.Wait(t.P)
			for sweep := 0; sweep < sweeps; sweep++ {
				var err error
				if s.Mode == "replicated" {
					err = t.ReadReplicated(buf.Base, size, numamig.Blocked)
				} else {
					err = t.AccessRange(buf.Base, size, numamig.Blocked, false)
				}
				if err != nil {
					panic(err)
				}
			}
			if end := t.P.Now(); end > last {
				last = end
			}
		})
	}
	if err := sys.Eng.Run(); err != nil {
		res.Err = err.Error()
		return res
	}
	fill(&res, sys, int64(s.Nodes)*size*sweeps, last-start)
	return res
}

// fill populates the shared metrics from the system's kernel counters.
func fill(res *Result, sys *numamig.System, bytes int64, dur sim.Time) {
	fillStats(res, sys.Stats(), sys.MigratedBytes()/1e6, bytes, dur)
}

// fillStats populates the shared metrics from a kernel-stats snapshot;
// the single place the Result columns are derived, shared by every
// family runner.
func fillStats(res *Result, st kern.Stats, migratedMB float64, bytes int64, dur sim.Time) {
	res.SimSeconds = dur.Seconds()
	if dur > 0 {
		res.MBps = float64(bytes) / dur.Seconds() / 1e6
	}
	res.PagesMoved = st.MovePagesPages + st.NTMigrations + st.MigratePages + st.NumaPagesPromoted + st.PagesDemoted
	res.MigratedMB = migratedMB
	res.Faults = st.Faults
	res.Syscalls = st.Syscalls
	res.TLBShootdowns = st.TLBShootdowns
	res.RemoteMB = st.RemoteBytes / 1e6
	res.LocalMB = st.LocalBytes / 1e6
	res.NumaHints = st.NumaHintFaults
	res.Demoted = st.PagesDemoted
	res.Flips = st.PromoteDemoteFlips
	res.RateLimited = st.PromoteRateLimited
}
