package exp

import (
	"fmt"

	"numamig/internal/workload"
)

// The tiered family grids the explicit CXL slow-memory tier
// (workload.Tiered): DRAM nodes plus appended CXL expander nodes with
// their own bandwidth/latency classes, crossed over the DRAM:CXL
// capacity ratio, the slow-tier promotion rate limit
// (Params.PromoteRateLimitMBps, Linux's
// numa_balancing_promote_rate_limit_MBps) on/off, and promotion
// hysteresis on/off. Every cell must satisfy the tier invariants — the
// runner fails the scenario when a frame was *allocated* (rather than
// demoted) onto the slow tier outside the one explicitly bound buffer,
// when the strict-bind ballast leaks its nodemask, or when the hot
// window's slow-tier residency fails to fall across the promote phase.
// With the limiter on, promote_rate_limited counts the throttled
// orders and slow_tier_resident drains visibly slower.

func init() {
	Register(Family{
		Name: "tiered",
		Desc: "DRAM+CXL capacity ratios x promote-rate-limit on/off x hysteresis: demotion-only slow tier, token-bucket promotion",
		Generate: func(o Options) []Scenario {
			// 1: the CXL node matches a DRAM node; 0.125: a small
			// expander whose watermarks cap how much can demote down.
			ratios := []float64{0.125, 1}
			if o.Quick {
				ratios = []float64{1}
			}
			// The rate-limit axis: limiter off, the static limit, and
			// the closed-loop adaptive controller — so static vs
			// adaptive promotion throttling is one grid comparison.
			limits := []struct {
				rate     float64
				adaptive bool
				label    string
			}{
				{0, false, "nolimit"},
				{1, false, "rl1"},
				{0, true, "rladapt"},
			}
			var out []Scenario
			for _, fast := range o.nodes() {
				if fast < 2 || fast+1 > 8 {
					continue
				}
				for _, ratio := range ratios {
					for _, lim := range limits {
						for _, hyst := range []bool{true, false} {
							suffix := "nohyst"
							if hyst {
								suffix = "hyst"
							}
							out = append(out, Scenario{
								ID:            fmt.Sprintf("tiered/%s/%s/r%g/f%d", lim.label, suffix, ratio, fast),
								Family:        "tiered",
								Patched:       true,
								Mode:          "autonuma",
								Pages:         512, // per-DRAM-node capacity in frames
								Nodes:         fast + 1,
								Seed:          o.seed(),
								Cores:         o.CoresPerNode,
								Demotion:      true,
								Hysteresis:    hyst,
								SlowNodes:     1,
								SlowRatio:     ratio,
								RateLimitMBps: lim.rate,
								Adaptive:      lim.adaptive,
							})
						}
					}
				}
			}
			return out
		},
		Run: runTiered,
	})
}

// runTiered executes one scenario through the explicit-slow-tier
// driver and enforces the tier invariants. Scenario.Pages is the
// per-DRAM-node capacity in frames; Scenario.Nodes counts every node
// including the SlowNodes CXL expanders.
func runTiered(s Scenario) Result {
	res := Result{Scenario: s}
	r, err := workload.Tiered(workload.TieredConfig{
		FastNodes:     s.Nodes - s.SlowNodes,
		SlowNodes:     s.SlowNodes,
		Cores:         s.Cores,
		NodePages:     s.Pages,
		SlowRatio:     s.SlowRatio,
		RateLimitMBps: s.RateLimitMBps,
		Adaptive:      s.Adaptive,
		Hysteresis:    s.Hysteresis,
		Seed:          s.Seed,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	switch {
	case r.Absent != 0:
		res.Err = fmt.Sprintf("tiered run left %d pages absent", r.Absent)
	case r.DirectSlowAllocs != int64(r.SlowBoundPages):
		// The demotion-only invariant: no first-touch or mempolicy
		// allocation may land on the slow tier beyond the explicitly
		// bound buffer.
		res.Err = fmt.Sprintf("%d frames allocated on the slow tier, want exactly the %d bound pages",
			r.DirectSlowAllocs, r.SlowBoundPages)
	case r.BindOffMask != 0:
		res.Err = fmt.Sprintf("%d strict-bind pages observed outside their nodemask (hist %v)",
			r.BindOffMask, r.BindHist)
	case r.WindowSlowBefore == 0:
		res.Err = "demote phase left no window pages on the slow tier"
	case r.WindowSlowAfter >= r.WindowSlowBefore:
		res.Err = fmt.Sprintf("slow-tier residency of the hot window did not fall: %d -> %d",
			r.WindowSlowBefore, r.WindowSlowAfter)
	case !s.Adaptive && s.RateLimitMBps > 0 && r.RateLimited == 0:
		res.Err = "rate limiter on but no promotion was ever rate-limited"
	case !s.Adaptive && s.RateLimitMBps <= 0 && r.RateLimited != 0:
		res.Err = fmt.Sprintf("rate limiter off but %d promotions rate-limited", r.RateLimited)
	case s.Adaptive && r.RateLimited == 0:
		// The controller starts at its floor, so the promote burst must
		// hit the bucket at least once before the loop widens it.
		res.Err = "adaptive controller ran but no promotion was ever rate-limited"
	case s.Adaptive && r.Control.Widens == 0:
		res.Err = "adaptive controller observed drops but never widened the limit"
	}
	if res.Err != "" {
		return res
	}
	fillStats(&res, r.Stats, r.MigratedMB, r.Bytes, r.Dur)
	res.SlowResident = r.SlowResident
	res.FaultRateHz = r.FaultRateHz
	res.MigrateBWPeak = r.MigrateBWPeakMBps
	res.P99SlowResident = r.P99SlowResident
	return res
}
