package exp

import (
	"fmt"

	numamig "numamig"
	"numamig/internal/sim"
	"numamig/internal/topology"
)

// The scale family smokes the datacenter-scale core: generated machines
// far past the paper's host (64..256-node grids, hierarchical
// socket/die/CXL machines), short-lived task churn across every core,
// and the demotion daemons registered on the kernel's batched hub. The
// cells are sized to stay grid-runnable; the heavyweight points
// (256 nodes x 100k tasks, 1024-node construction) live in the perf
// harness (internal/bench, BENCH_scale.json). What the family guards is
// determinism: the CI smoke runs it at -parallel 1 and 8 and compares
// bytes, so the extent page-table storage, the lazy topology caches and
// the daemon hub all have to stay schedule-independent.

func init() {
	Register(Family{
		Name: "scale",
		Desc: "64..256-node grids and hierarchical socket/die/CXL machines under short-lived task churn with demotion daemons",
		Generate: func(o Options) []Scenario {
			type cell struct {
				nodes int // grid node count, or hierarchy total (hierFor)
				tasks int
				hier  bool
			}
			cells := []cell{
				{nodes: 64, tasks: 2000},
				{nodes: 128, tasks: 2000},
				{nodes: 72, tasks: 1000, hier: true},
			}
			if o.Quick {
				cells = []cell{
					{nodes: 64, tasks: 400},
					{nodes: 18, tasks: 200, hier: true},
				}
			}
			var out []Scenario
			for _, c := range cells {
				shape, workload := "churn", "churn"
				if c.hier {
					shape, workload = "hier", "hier"
				}
				out = append(out, Scenario{
					ID:       fmt.Sprintf("scale/%s/n%d/t%d", shape, c.nodes, c.tasks),
					Family:   "scale",
					Patched:  true,
					Mode:     "sync",
					Workload: workload,
					Nodes:    c.nodes,
					Tasks:    c.tasks,
					Seed:     o.seed(),
					Cores:    o.CoresPerNode,
					Demotion: true,
				})
			}
			return out
		},
		Run: runScale,
	})
}

// hierFor maps the scale family's hierarchy cell sizes to generator
// configs. The total node count (compute + CXL expanders) is the map
// key so scenario IDs stay honest about machine size.
func hierFor(nodes, coresPerNode int) (topology.HierarchyConfig, error) {
	cfg := topology.HierarchyConfig{
		CoresPerNode:  coresPerNode,
		MemPerNode:    1 << 30,
		L3PerNode:     2 << 20,
		CXLMemPerNode: 4 << 30,
	}
	switch nodes {
	case 18: // 2 sockets x 2 dies x 4 nodes + 1 expander per socket
		cfg.Sockets, cfg.DiesPerSocket, cfg.NodesPerDie, cfg.CXLPerSocket = 2, 2, 4, 1
	case 72: // 4 sockets x 2 dies x 8 nodes + 2 expanders per socket
		cfg.Sockets, cfg.DiesPerSocket, cfg.NodesPerDie, cfg.CXLPerSocket = 4, 2, 8, 2
	default:
		return cfg, fmt.Errorf("exp: no hierarchy shape with %d nodes", nodes)
	}
	return cfg, nil
}

// runScale drives one machine through a wave of short-lived tasks, each
// first-touching a small buffer, pushing it one node over with
// move_pages and reading it back — the same churn the bench smoke
// points use, at grid-runnable size. Tasks are pinned round-robin over
// the machine's cores and launched one wave per core count, so at most
// one simulated thread runs per core. Measured phase: first spawn to
// last task exit.
func runScale(s Scenario) Result {
	const pagesPerTask = 8
	res := Result{Scenario: s}
	cores := s.Cores
	if cores == 0 {
		cores = 2 // narrow sockets: 256-node cells stay grid-runnable
	}
	cfg := numamig.Config{
		Nodes:        s.Nodes,
		CoresPerNode: cores,
		MemPerNode:   1 << 30,
		Seed:         s.Seed,
		Demotion:     s.Demotion,
	}
	if s.Workload == "hier" {
		hc, err := hierFor(s.Nodes, cores)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		cfg.Machine = topology.Hierarchy(hc)
	}
	sys := numamig.New(cfg)
	nodes := sys.Machine.NumNodes()
	ncores := sys.Machine.NumCores()
	var dur sim.Time
	err := sys.Run(func(main *numamig.Task) {
		start := main.P.Now()
		for done := 0; done < s.Tasks; {
			wave := ncores
			if left := s.Tasks - done; left < wave {
				wave = left
			}
			wg := sim.NewWaitGroup(sys.Eng, wave)
			for i := 0; i < wave; i++ {
				core := numamig.CoreID((done + i) % ncores)
				main.Proc.Spawn("churn", core, func(t *numamig.Task) {
					defer wg.Done()
					b := numamig.MustAlloc(t, pagesPerTask*numamig.PageSize, numamig.Policy{})
					if err := b.Access(t, numamig.Stream, true); err != nil {
						panic(err)
					}
					dst := (t.Node() + 1) % numamig.NodeID(nodes)
					if err := b.MoveTo(t, dst, true); err != nil {
						panic(err)
					}
					if err := b.Access(t, numamig.Stream, false); err != nil {
						panic(err)
					}
					if err := b.Free(t); err != nil {
						panic(err)
					}
				})
			}
			done += wave
			wg.Wait(main.P)
		}
		dur = main.P.Now() - start
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	fill(&res, sys, int64(s.Tasks)*pagesPerTask*numamig.PageSize*2, dur)
	return res
}
