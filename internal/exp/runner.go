package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"numamig/internal/report"
)

// Runner executes scenarios across parallel goroutines. Each scenario
// builds its own System, so runs share nothing; results land in a slice
// indexed by scenario position, making the output independent of
// Parallel: same scenarios and seeds, byte-identical JSON/CSV.
type Runner struct {
	// Parallel is the worker-goroutine count; <= 0 means GOMAXPROCS.
	Parallel int
}

// Run executes every scenario and returns the results in input order.
func (r Runner) Run(scs []Scenario) []Result {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scs) {
		workers = len(scs)
	}
	out := make([]Result, len(scs))
	if workers <= 1 {
		for i, s := range scs {
			out[i] = RunScenario(s)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunScenario(scs[i])
			}
		}()
	}
	for i := range scs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Table renders results as an aligned report table (also the CSV shape).
func Table(results []Result) *report.Table {
	tbl := report.NewTable("Experiment grid",
		"id", "patched", "mode", "workload", "pages", "nodes", "seed",
		"sim_seconds", "mbps", "pages_moved", "migrated_mb",
		"faults", "syscalls", "tlb_shootdowns", "remote_mb", "local_mb",
		"numa_hints", "pages_demoted", "hot_local", "promote_demote_flips",
		"slow_tier_resident", "promote_rate_limited", "err")
	tbl.Grow(len(results))
	for _, r := range results {
		tbl.Add(r.ID, r.Patched, r.Mode, r.Workload, r.Pages, r.Nodes, r.Seed,
			fmt.Sprintf("%.6f", r.SimSeconds), r.MBps, r.PagesMoved, r.MigratedMB,
			r.Faults, r.Syscalls, r.TLBShootdowns, r.RemoteMB, r.LocalMB,
			r.NumaHints, r.Demoted, fmt.Sprintf("%.3f", r.HotLocal), r.Flips,
			r.SlowResident, r.RateLimited, r.Err)
	}
	return tbl
}

// WriteJSON renders results as indented JSON through internal/report.
func WriteJSON(w io.Writer, results []Result) error {
	return report.JSON(w, results)
}

// WriteCSV renders results as CSV through internal/report.
func WriteCSV(w io.Writer, results []Result) {
	Table(results).CSV(w)
}
