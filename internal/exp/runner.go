package exp

import (
	"io"
	"runtime"
	"sync"

	"numamig/internal/report"
)

// Runner executes scenarios across parallel goroutines. Each scenario
// builds its own System, so runs share nothing; results land in a slice
// indexed by scenario position, making the output independent of
// Parallel: same scenarios and seeds, byte-identical JSON/CSV.
type Runner struct {
	// Parallel is the worker-goroutine count; <= 0 means GOMAXPROCS.
	Parallel int
}

// Run executes every scenario and returns the results in input order.
func (r Runner) Run(scs []Scenario) []Result {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scs) {
		workers = len(scs)
	}
	out := make([]Result, len(scs))
	if workers <= 1 {
		for i, s := range scs {
			out[i] = RunScenario(s)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunScenario(scs[i])
			}
		}()
	}
	for i := range scs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Table renders results as an aligned report table (also the CSV
// shape), with the column set and order defined once by Columns().
func Table(results []Result) *report.Table {
	cols := Columns()
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = c.Name
	}
	tbl := report.NewTable("Experiment grid", headers...)
	tbl.Grow(len(results))
	cells := make([]interface{}, len(cols))
	for i := range results {
		for j, c := range cols {
			cells[j] = c.Cell(&results[i])
		}
		tbl.Add(cells...)
	}
	return tbl
}

// WriteJSON renders results as indented JSON through internal/report.
func WriteJSON(w io.Writer, results []Result) error {
	return report.JSON(w, results)
}

// WriteCSV renders results as CSV through internal/report.
func WriteCSV(w io.Writer, results []Result) {
	Table(results).CSV(w)
}
