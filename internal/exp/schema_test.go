package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestSchemaIsTheOnlyColumnSource pins the report schema: the CSV
// header (and therefore the table) comes from Columns() and nowhere
// else, the order is stable with "id" first and "err" last, and every
// cell renders on a zero Result. Positional consumers (spreadsheet
// imports, diff tools) depend on this exact order — extend Columns()
// before "err", never reorder.
func TestSchemaIsTheOnlyColumnSource(t *testing.T) {
	cols := Columns()
	if len(cols) < 2 || cols[0].Name != "id" || cols[len(cols)-1].Name != "err" {
		t.Fatalf("schema must start with id and end with err, got %q ... %q",
			cols[0].Name, cols[len(cols)-1].Name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" || c.Cell == nil {
			t.Fatalf("column %q incompletely registered", c.Name)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}

	var zero Result
	for _, c := range cols {
		_ = c.Cell(&zero) // must not panic
	}

	var buf bytes.Buffer
	WriteCSV(&buf, []Result{{Scenario: Scenario{ID: "x/y"}}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV of one result has %d lines, want header + row", len(lines))
	}
	var names []string
	for _, c := range cols {
		names = append(names, c.Name)
	}
	if got, want := lines[0], strings.Join(names, ","); got != want {
		t.Fatalf("CSV header diverged from Columns():\n got %s\nwant %s", got, want)
	}
	if n := len(strings.Split(lines[1], ",")); n != len(cols) {
		t.Fatalf("CSV row has %d cells, schema has %d columns", n, len(cols))
	}
}

// TestSchemaCoversResultMeasurements keeps the positional report and
// the JSON report aligned for measurements: every field declared
// directly on Result (not the embedded Scenario, whose config axes are
// JSON-only — they are encoded in the scenario ID) must be a
// registered column, so a measurement added to Result cannot silently
// skip the table/CSV surface.
func TestSchemaCoversResultMeasurements(t *testing.T) {
	known := map[string]bool{}
	for _, c := range Columns() {
		known[c.Name] = true
	}
	rt := reflect.TypeOf(Result{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.Anonymous { // the embedded Scenario
			continue
		}
		tag := f.Tag.Get("json")
		name := strings.Split(tag, ",")[0]
		if name == "" || name == "-" {
			t.Errorf("Result.%s has no json name", f.Name)
			continue
		}
		if !known[name] {
			t.Errorf("Result.%s (json %q) has no registered column — add it to Columns() before \"err\"",
				f.Name, name)
		}
	}
}
