package exp

import (
	"fmt"

	"numamig/internal/report"
)

// Column is one table/CSV column of the grid report: its header name
// and the cell renderer. The table and CSV encodings are positional, so
// every consumer that joins on columns (tools/benchcmp-style diffs,
// spreadsheet imports) depends on one stable registration order — this
// schema is that single point of registration. Add new columns here,
// before the trailing "err" column, and nowhere else.
//
// Metric marks a numeric measurement column: its rendered cell always
// parses as a float64, and downstream statistical consumers (the
// internal/artifact campaign runner) aggregate exactly the columns so
// marked. Axis columns (id, patched, mode, workload, pages, nodes,
// seed) and the trailing err column are not metrics.
type Column struct {
	Name   string
	Cell   func(r *Result) string
	Metric bool
}

func str(v interface{}) string { return fmt.Sprintf("%v", v) }

func flt(v float64) string { return report.FormatFloat(v) }

// Columns returns the grid report schema, in output order.
func Columns() []Column {
	return []Column{
		{"id", func(r *Result) string { return r.ID }, false},
		{"patched", func(r *Result) string { return str(r.Patched) }, false},
		{"mode", func(r *Result) string { return r.Mode }, false},
		{"workload", func(r *Result) string { return r.Workload }, false},
		{"pages", func(r *Result) string { return str(r.Pages) }, false},
		{"nodes", func(r *Result) string { return str(r.Nodes) }, false},
		{"seed", func(r *Result) string { return str(r.Seed) }, false},
		{"sim_seconds", func(r *Result) string { return fmt.Sprintf("%.6f", r.SimSeconds) }, true},
		{"mbps", func(r *Result) string { return flt(r.MBps) }, true},
		{"pages_moved", func(r *Result) string { return str(r.PagesMoved) }, true},
		{"migrated_mb", func(r *Result) string { return flt(r.MigratedMB) }, true},
		{"faults", func(r *Result) string { return str(r.Faults) }, true},
		{"syscalls", func(r *Result) string { return str(r.Syscalls) }, true},
		{"tlb_shootdowns", func(r *Result) string { return str(r.TLBShootdowns) }, true},
		{"remote_mb", func(r *Result) string { return flt(r.RemoteMB) }, true},
		{"local_mb", func(r *Result) string { return flt(r.LocalMB) }, true},
		{"numa_hints", func(r *Result) string { return str(r.NumaHints) }, true},
		{"pages_demoted", func(r *Result) string { return str(r.Demoted) }, true},
		{"hot_local", func(r *Result) string { return fmt.Sprintf("%.3f", r.HotLocal) }, true},
		{"promote_demote_flips", func(r *Result) string { return str(r.Flips) }, true},
		{"slow_tier_resident", func(r *Result) string { return str(r.SlowResident) }, true},
		{"promote_rate_limited", func(r *Result) string { return str(r.RateLimited) }, true},
		{"fault_rate_hz", func(r *Result) string { return flt(r.FaultRateHz) }, true},
		{"migrate_bw_mbps_peak", func(r *Result) string { return flt(r.MigrateBWPeak) }, true},
		{"p99_slow_residency_window", func(r *Result) string { return flt(r.P99SlowResident) }, true},
		{"p50_access_lat_ls", func(r *Result) string { return flt(r.P50AccessLatLS) }, true},
		{"p99_access_lat_ls", func(r *Result) string { return flt(r.P99AccessLatLS) }, true},
		{"p50_access_lat_batch", func(r *Result) string { return flt(r.P50AccessLatBatch) }, true},
		{"p99_access_lat_batch", func(r *Result) string { return flt(r.P99AccessLatBatch) }, true},
		{"steady_migrate_bw_mbps", func(r *Result) string { return flt(r.SteadyMigrateBW) }, true},
		{"cap_violations", func(r *Result) string { return str(r.CapViolations) }, true},
		{"err", func(r *Result) string { return r.Err }, false},
	}
}

// ColumnNames returns the schema's header names in output order.
func ColumnNames() []string {
	cols := Columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

// MetricColumns returns the names of the numeric measurement columns,
// in schema order.
func MetricColumns() []string {
	var names []string
	for _, c := range Columns() {
		if c.Metric {
			names = append(names, c.Name)
		}
	}
	return names
}
