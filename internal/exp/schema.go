package exp

import (
	"fmt"

	"numamig/internal/report"
)

// Column is one table/CSV column of the grid report: its header name
// and the cell renderer. The table and CSV encodings are positional, so
// every consumer that joins on columns (tools/benchcmp-style diffs,
// spreadsheet imports) depends on one stable registration order — this
// schema is that single point of registration. Add new columns here,
// before the trailing "err" column, and nowhere else.
type Column struct {
	Name string
	Cell func(r *Result) string
}

func str(v interface{}) string { return fmt.Sprintf("%v", v) }

func flt(v float64) string { return report.FormatFloat(v) }

// Columns returns the grid report schema, in output order.
func Columns() []Column {
	return []Column{
		{"id", func(r *Result) string { return r.ID }},
		{"patched", func(r *Result) string { return str(r.Patched) }},
		{"mode", func(r *Result) string { return r.Mode }},
		{"workload", func(r *Result) string { return r.Workload }},
		{"pages", func(r *Result) string { return str(r.Pages) }},
		{"nodes", func(r *Result) string { return str(r.Nodes) }},
		{"seed", func(r *Result) string { return str(r.Seed) }},
		{"sim_seconds", func(r *Result) string { return fmt.Sprintf("%.6f", r.SimSeconds) }},
		{"mbps", func(r *Result) string { return flt(r.MBps) }},
		{"pages_moved", func(r *Result) string { return str(r.PagesMoved) }},
		{"migrated_mb", func(r *Result) string { return flt(r.MigratedMB) }},
		{"faults", func(r *Result) string { return str(r.Faults) }},
		{"syscalls", func(r *Result) string { return str(r.Syscalls) }},
		{"tlb_shootdowns", func(r *Result) string { return str(r.TLBShootdowns) }},
		{"remote_mb", func(r *Result) string { return flt(r.RemoteMB) }},
		{"local_mb", func(r *Result) string { return flt(r.LocalMB) }},
		{"numa_hints", func(r *Result) string { return str(r.NumaHints) }},
		{"pages_demoted", func(r *Result) string { return str(r.Demoted) }},
		{"hot_local", func(r *Result) string { return fmt.Sprintf("%.3f", r.HotLocal) }},
		{"promote_demote_flips", func(r *Result) string { return str(r.Flips) }},
		{"slow_tier_resident", func(r *Result) string { return str(r.SlowResident) }},
		{"promote_rate_limited", func(r *Result) string { return str(r.RateLimited) }},
		{"fault_rate_hz", func(r *Result) string { return flt(r.FaultRateHz) }},
		{"migrate_bw_mbps_peak", func(r *Result) string { return flt(r.MigrateBWPeak) }},
		{"p99_slow_residency_window", func(r *Result) string { return flt(r.P99SlowResident) }},
		{"p50_access_lat_ls", func(r *Result) string { return flt(r.P50AccessLatLS) }},
		{"p99_access_lat_ls", func(r *Result) string { return flt(r.P99AccessLatLS) }},
		{"p50_access_lat_batch", func(r *Result) string { return flt(r.P50AccessLatBatch) }},
		{"p99_access_lat_batch", func(r *Result) string { return flt(r.P99AccessLatBatch) }},
		{"steady_migrate_bw_mbps", func(r *Result) string { return flt(r.SteadyMigrateBW) }},
		{"cap_violations", func(r *Result) string { return str(r.CapViolations) }},
		{"err", func(r *Result) string { return r.Err }},
	}
}
