package exp

import (
	"fmt"

	"numamig/internal/tenancy"
	"numamig/internal/workload"
)

// The serve family grids the multi-tenant open system
// (workload.Serve): a seeded Poisson-like arrival schedule admits
// tenant processes — alternating batch and latency-sensitive classes —
// onto the DRAM+CXL machine, each under a cgroup-style fast-tier
// residency cap enforced by the fault path's cap redirect and the
// kswapd cap-reclaim. Axes: machine size x tenant count. Every cell
// must satisfy the SLO invariants — zero cap violations, every tenant
// admitted and exited with a drained ledger, and in every contended
// cell the latency-sensitive p99 probe latency strictly below the
// batch p99 (class priority through the migration engine's lock
// queues is what buys the ordering).

func init() {
	Register(Family{
		Name: "serve",
		Desc: "multi-tenant open system: Poisson arrivals x tenant count x machine size, per-tenant fast-tier caps and per-class SLOs",
		Generate: func(o Options) []Scenario {
			var out []Scenario
			for _, fast := range o.nodes() {
				if fast < 2 || fast+1 > 8 {
					continue
				}
				// One tenant per fast-tier core saturates the machine
				// without risking DRAM exhaustion (per node: two
				// latency-sensitive working sets plus two batch caps fit
				// under the watermarks); the lighter mix halves it.
				counts := []int{4 * fast}
				if !o.Quick {
					counts = []int{2 * fast, 4 * fast}
				}
				for _, tenants := range counts {
					out = append(out, Scenario{
						ID:        fmt.Sprintf("serve/t%d/f%d", tenants, fast),
						Family:    "serve",
						Patched:   true,
						Mode:      "serve",
						Pages:     512, // per-DRAM-node capacity in frames
						Nodes:     fast + 1,
						Seed:      o.seed(),
						Cores:     o.CoresPerNode,
						Demotion:  true,
						SlowNodes: 1,
						SlowRatio: 2,
						Tasks:     tenants,
					})
				}
			}
			return out
		},
		Run: runServe,
	})
}

// runServe executes one scenario through the multi-tenant driver and
// enforces the SLO invariants. Scenario.Pages is the per-DRAM-node
// capacity in frames, Scenario.Nodes counts every node including the
// CXL expander, Scenario.Tasks is the tenant count.
func runServe(s Scenario) Result {
	res := Result{Scenario: s}
	r, err := workload.Serve(workload.ServeConfig{
		FastNodes: s.Nodes - s.SlowNodes,
		SlowNodes: s.SlowNodes,
		Cores:     s.Cores,
		NodePages: s.Pages,
		SlowRatio: s.SlowRatio,
		Tenants:   s.Tasks,
		Seed:      s.Seed,
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	ls, batch := tenancy.ClassLatencySensitive, tenancy.ClassBatch
	switch {
	case r.CapViolations != 0 || r.SLO.CapViolations != 0:
		res.Err = fmt.Sprintf("%d cap violations (bus saw %d), want 0", r.CapViolations, r.SLO.CapViolations)
	case r.Admitted != s.Tasks || r.Exited != s.Tasks:
		res.Err = fmt.Sprintf("tenant churn incomplete: admitted %d exited %d, want %d each", r.Admitted, r.Exited, s.Tasks)
	case r.ResidualPages != 0:
		res.Err = fmt.Sprintf("tenant exits drained %d residual pages, want 0", r.ResidualPages)
	case r.LeakedPages != 0:
		res.Err = fmt.Sprintf("%d pages still charged to tenants after the run, want 0", r.LeakedPages)
	case r.SLO.Samples[ls] == 0 || r.SLO.Samples[batch] == 0:
		res.Err = fmt.Sprintf("missing probe samples: ls %d batch %d", r.SLO.Samples[ls], r.SLO.Samples[batch])
	case r.Contended && r.SLO.P99[ls] >= r.SLO.P99[batch]:
		// The class-priority invariant: under contention the
		// latency-sensitive percentile must sit strictly below batch.
		res.Err = fmt.Sprintf("class latency inverted under contention: ls p99 %v >= batch p99 %v", r.SLO.P99[ls], r.SLO.P99[batch])
	}
	fillStats(&res, r.Stats, r.MigratedMB, r.Bytes, r.Dur)
	res.P50AccessLatLS = r.SLO.P50[ls].Seconds() * 1e6
	res.P99AccessLatLS = r.SLO.P99[ls].Seconds() * 1e6
	res.P50AccessLatBatch = r.SLO.P50[batch].Seconds() * 1e6
	res.P99AccessLatBatch = r.SLO.P99[batch].Seconds() * 1e6
	res.SteadyMigrateBW = r.SLO.SteadyMigrateBWMBps
	res.CapViolations = r.CapViolations
	return res
}
