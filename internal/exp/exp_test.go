package exp

import (
	"strings"
	"testing"

	"numamig/internal/report"
)

func TestFamiliesRegistered(t *testing.T) {
	fams := Families()
	want := []string{"autonuma", "migration", "pressure", "replication", "scale", "serve", "tiered", "tiering"}
	if len(fams) != len(want) {
		t.Fatalf("families = %v, want %v", fams, want)
	}
	for i, n := range want {
		if fams[i] != n {
			t.Fatalf("families = %v, want %v", fams, want)
		}
		if Describe(n) == "" {
			t.Fatalf("family %q has no description", n)
		}
	}
}

func TestScenariosUnknownFamily(t *testing.T) {
	if _, err := Scenarios([]string{"nope"}, Options{}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestGridCoversAllDimensions(t *testing.T) {
	scs, err := Scenarios([]string{"migration"}, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// quick: 2 node counts x 2 sizes x (sync + lazy-user with both
	// strategies, lazy-kernel once — the patch cannot affect it).
	if len(scs) != 20 {
		t.Fatalf("quick migration grid has %d scenarios, want 20", len(scs))
	}
	ids := map[string]bool{}
	modes := map[string]bool{}
	patched := map[bool]bool{}
	for _, s := range scs {
		if ids[s.ID] {
			t.Fatalf("duplicate scenario id %q", s.ID)
		}
		ids[s.ID] = true
		modes[s.Mode] = true
		patched[s.Patched] = true
	}
	if len(modes) != 3 || len(patched) != 2 {
		t.Fatalf("grid misses dimensions: modes=%v patched=%v", modes, patched)
	}
}

func TestRunScenarioUnknownFamilyAndMode(t *testing.T) {
	if r := RunScenario(Scenario{Family: "nope"}); r.Err == "" {
		t.Fatal("unknown family ran")
	}
	if r := RunScenario(Scenario{Family: "migration", Mode: "bogus", Pages: 1, Nodes: 2, Seed: 1}); r.Err == "" {
		t.Fatal("unknown mode ran")
	}
}

// TestDeterministicAcrossParallelism is the harness's core guarantee:
// the same scenarios and seeds produce byte-identical JSON whatever the
// worker count, because every scenario runs its own simulated system.
func TestDeterministicAcrossParallelism(t *testing.T) {
	scs, err := Scenarios(nil, Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	serial := Runner{Parallel: 1}.Run(scs)
	parallel := Runner{Parallel: 8}.Run(scs)

	j1, err := report.JSONString(serial)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := report.JSONString(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j8 {
		t.Fatalf("parallel 1 vs 8 outputs differ:\n%s\nvs\n%s", j1, j8)
	}

	var c1, c8 strings.Builder
	WriteCSV(&c1, serial)
	WriteCSV(&c8, parallel)
	if c1.String() != c8.String() {
		t.Fatal("parallel 1 vs 8 CSV outputs differ")
	}

	// And the run actually did something everywhere.
	for _, r := range serial {
		if r.Err != "" {
			t.Fatalf("scenario %s failed: %s", r.ID, r.Err)
		}
		if r.SimSeconds <= 0 || r.MBps <= 0 {
			t.Fatalf("scenario %s has empty metrics: %+v", r.ID, r)
		}
	}
}

func TestMigrationScenarioPhysics(t *testing.T) {
	base := Scenario{Family: "migration", Pages: 1024, Nodes: 2, Seed: 1}

	syncP := base
	syncP.Mode = "sync"
	syncP.Patched = true
	syncU := syncP
	syncU.Patched = false
	lazyK := base
	lazyK.Mode = "lazy-kernel"
	lazyK.Patched = true

	rp := RunScenario(syncP)
	ru := RunScenario(syncU)
	rk := RunScenario(lazyK)
	for _, r := range []Result{rp, ru, rk} {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.ID, r.Err)
		}
		if r.PagesMoved != uint64(base.Pages) {
			t.Fatalf("%s moved %d pages, want %d", r.ID, r.PagesMoved, base.Pages)
		}
	}
	// The paper's headline: the unpatched syscall is measurably slower,
	// and the kernel next-touch path does not care about the patch.
	if ru.SimSeconds <= rp.SimSeconds {
		t.Fatalf("unpatched sync (%v s) should be slower than patched (%v s)", ru.SimSeconds, rp.SimSeconds)
	}
	lazyKU := lazyK
	lazyKU.Patched = false
	rku := RunScenario(lazyKU)
	if rku.SimSeconds != rk.SimSeconds {
		t.Fatalf("lazy-kernel should ignore the patch flag: %v vs %v", rku.SimSeconds, rk.SimSeconds)
	}
}

// TestAutoNUMAScenarioTradeoffs checks the acceptance envelope of the
// autonuma family: transparent balancing must clearly beat static
// placement on the phase-shifting workload, and stay within ~10% of
// the best manual next-touch policy on the paper's single-rotation
// scenario (the pure price of transparency).
func TestAutoNUMAScenarioTradeoffs(t *testing.T) {
	run := func(mode, wl string) Result {
		r := RunScenario(Scenario{
			ID: mode + "/" + wl, Family: "autonuma", Patched: true,
			Mode: mode, Pages: 1024, Nodes: 4, Seed: 1, Workload: wl,
		})
		if r.Err != "" {
			t.Fatalf("%s on %s: %s", mode, wl, r.Err)
		}
		return r
	}

	// Phase-shifting: autonuma beats static placement decisively.
	auto := run("autonuma", "phases")
	static := run("off", "phases")
	if auto.SimSeconds >= static.SimSeconds {
		t.Fatalf("autonuma (%v s) should beat static (%v s) on the phase-shifting workload",
			auto.SimSeconds, static.SimSeconds)
	}
	if auto.NumaHints == 0 || auto.PagesMoved == 0 {
		t.Fatalf("autonuma did not balance: hints=%d moved=%d", auto.NumaHints, auto.PagesMoved)
	}
	if static.NumaHints != 0 || static.PagesMoved != 0 {
		t.Fatalf("static run shows balancing activity: hints=%d moved=%d",
			static.NumaHints, static.PagesMoved)
	}

	// Single rotation: within ~25% of the best manual policy. The
	// last-toucher filter costs one extra scan round per page here (a
	// page's first fault only records history; the second consecutive
	// fault promotes), which is the price of damping shared-page
	// ping-pong on workloads that alternate touchers.
	autoRot := run("autonuma", "rotate1")
	best := run("sync", "rotate1").SimSeconds
	for _, mode := range []string{"lazy-kernel", "lazy-user"} {
		if s := run(mode, "rotate1").SimSeconds; s < best {
			best = s
		}
	}
	if autoRot.SimSeconds > best*1.25 {
		t.Fatalf("autonuma rotate1 (%v s) is %.1f%% over best manual (%v s), want <= 25%%",
			autoRot.SimSeconds, (autoRot.SimSeconds/best-1)*100, best)
	}
}

// TestPressureScenarioPhysics pins the pressure family's acceptance
// envelope: with demotion the hot set localizes on the overcommitted
// node; without it the hot set stays remote; allocation exhaustion
// never surfaces as an error in either cell.
func TestPressureScenarioPhysics(t *testing.T) {
	run := func(mode string, demotion bool) Result {
		r := RunScenario(Scenario{
			ID: "p", Family: "pressure", Patched: true, Mode: mode,
			Pages: 1024, Nodes: 4, Seed: 1,
			Overcommit: 1.5, Imbalance: 1.0, Demotion: demotion,
		})
		if r.Err != "" {
			t.Fatalf("%s demotion=%v: %s", mode, demotion, r.Err)
		}
		return r
	}
	with := run("sync", true)
	without := run("sync", false)
	if with.HotLocal < 0.9 || without.HotLocal > 0.2 {
		t.Fatalf("demotion should gate hot locality: with=%.2f without=%.2f",
			with.HotLocal, without.HotLocal)
	}
	if with.Demoted == 0 || without.Demoted != 0 {
		t.Fatalf("demotion counters wrong: with=%d without=%d", with.Demoted, without.Demoted)
	}
	if with.SimSeconds >= without.SimSeconds {
		t.Fatalf("demotion should beat churn: %v vs %v s", with.SimSeconds, without.SimSeconds)
	}
	off := run("off", true)
	if off.HotLocal > 0.2 {
		t.Fatalf("demotion alone localized the hot set: %.2f", off.HotLocal)
	}
}

// TestTieringScenarioPhysics pins the tiering family's acceptance
// envelope: the rotating hot set ping-pongs (promote_demote_flips > 0)
// without promotion hysteresis and stops with it, strictly — while
// locality, demotion throughput and the strict-bind nodemask invariant
// hold in both cells (the runner reports a mask escape as Err).
func TestTieringScenarioPhysics(t *testing.T) {
	run := func(hyst bool) Result {
		suffix := "nohyst"
		if hyst {
			suffix = "hyst"
		}
		r := RunScenario(Scenario{
			ID: "tiering/" + suffix, Family: "tiering", Patched: true,
			Mode: "autonuma", Pages: 1024, Nodes: 4, Seed: 1,
			Demotion: true, Hysteresis: hyst,
		})
		if r.Err != "" {
			t.Fatalf("hysteresis=%v: %s", hyst, r.Err)
		}
		if r.Demoted == 0 || r.NumaHints == 0 {
			t.Fatalf("hysteresis=%v: interplay never ran: demoted=%d hints=%d",
				hyst, r.Demoted, r.NumaHints)
		}
		if r.HotLocal < 0.7 {
			t.Fatalf("hysteresis=%v: final hot window only %.2f local", hyst, r.HotLocal)
		}
		return r
	}
	with := run(true)
	without := run(false)
	if without.Flips == 0 {
		t.Fatal("no flips without hysteresis: the workload exhibits no ping-pong to damp")
	}
	if with.Flips >= without.Flips {
		t.Fatalf("hysteresis must strictly reduce flips: %d with vs %d without",
			with.Flips, without.Flips)
	}
}

func TestReplicationScenarioHelps(t *testing.T) {
	st := RunScenario(Scenario{ID: "s", Family: "replication", Mode: "static", Pages: 256, Nodes: 4, Seed: 1, Patched: true})
	rp := RunScenario(Scenario{ID: "r", Family: "replication", Mode: "replicated", Pages: 256, Nodes: 4, Seed: 1, Patched: true})
	if st.Err != "" || rp.Err != "" {
		t.Fatalf("errs: %q %q", st.Err, rp.Err)
	}
	if rp.SimSeconds >= st.SimSeconds {
		t.Fatalf("replicated sweeps (%v s) should beat static (%v s) with 4 reader nodes", rp.SimSeconds, st.SimSeconds)
	}
	if rp.RemoteMB >= st.RemoteMB {
		t.Fatalf("replication should cut remote traffic: %v MB vs %v MB", rp.RemoteMB, st.RemoteMB)
	}
}
