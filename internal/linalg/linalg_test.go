package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	A := NewMatrix(2, 3)
	B := NewMatrix(3, 2)
	// A = [1 2 3; 4 5 6], B = [7 8; 9 10; 11 12]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		A.Data[i] = v
	}
	for i, v := range []float64{7, 8, 9, 10, 11, 12} {
		B.Data[i] = v
	}
	C, err := MatMul(A, B)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if C.Data[i] != want[i] {
			t.Fatalf("C = %v, want %v", C.Data, want)
		}
	}
	if _, err := MatMul(A, A); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestDaxpyDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Daxpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("daxpy = %v", y)
	}
	if d := Dot(x, []float64{1, 1, 1}); d != 6 {
		t.Fatalf("dot = %v", d)
	}
}

func TestLUReconstructs(t *testing.T) {
	A := NewMatrix(16, 16)
	A.FillDiagonallyDominant(42)
	orig := A.Clone()
	if err := LU(A); err != nil {
		t.Fatal(err)
	}
	L, U := ExtractLU(A)
	P, err := MatMul(L, U)
	if err != nil {
		t.Fatal(err)
	}
	if d := P.MaxAbsDiff(orig); d > 1e-9 {
		t.Fatalf("L*U differs from A by %g", d)
	}
}

func TestBlockedLUMatchesUnblocked(t *testing.T) {
	for _, b := range []int{1, 3, 4, 8, 16, 32} {
		A := NewMatrix(32, 32)
		A.FillDiagonallyDominant(7)
		ref := A.Clone()
		if err := LU(ref); err != nil {
			t.Fatal(err)
		}
		if err := BlockedLU(A, b); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if d := A.MaxAbsDiff(ref); d > 1e-8 {
			t.Fatalf("b=%d: blocked LU differs from unblocked by %g", b, d)
		}
	}
}

func TestBlockedLUBadArgs(t *testing.T) {
	A := NewMatrix(4, 4)
	A.FillDiagonallyDominant(1)
	if err := BlockedLU(A, 0); err == nil {
		t.Fatal("block 0 accepted")
	}
	if err := BlockedLU(A, 5); err == nil {
		t.Fatal("oversize block accepted")
	}
	if err := BlockedLU(NewMatrix(3, 4), 1); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestZeroPivotDetected(t *testing.T) {
	A := NewMatrix(2, 2) // all zeros
	if err := LU(A); err == nil {
		t.Fatal("zero pivot accepted")
	}
	B := NewMatrix(2, 2)
	if err := BlockedLU(B, 2); err == nil {
		t.Fatal("zero pivot accepted (blocked)")
	}
}

// Property: for random diagonally dominant matrices and block sizes,
// blocked LU reconstructs the input.
func TestBlockedLUReconstructionProperty(t *testing.T) {
	check := func(seed int64, bsel uint8) bool {
		n := 24
		b := []int{1, 2, 3, 4, 6, 8, 12, 24}[int(bsel)%8]
		A := NewMatrix(n, n)
		A.FillDiagonallyDominant(seed)
		orig := A.Clone()
		if err := BlockedLU(A, b); err != nil {
			return false
		}
		L, U := ExtractLU(A)
		P, err := MatMul(L, U)
		if err != nil {
			return false
		}
		return P.MaxAbsDiff(orig) < 1e-8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	a.FillRandom(5)
	b.FillRandom(5)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("FillRandom not deterministic")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("value out of range: %v", v)
		}
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if d := NewMatrix(2, 2).MaxAbsDiff(NewMatrix(2, 3)); !math.IsInf(d, 1) {
		t.Fatal("shape mismatch should be +Inf")
	}
}
