// Package linalg implements the real (non-simulated) numerical kernels
// the paper's applications use: dense matrices, DGEMM, DAXPY and a
// right-looking blocked LU factorization. These validate that the
// access-pattern drivers in package workload walk the same block
// structure a real LU walks, and provide the compute payload for the
// runnable examples.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// FillRandom fills with deterministic pseudo-random values in [-1, 1).
func (m *Matrix) FillRandom(seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
}

// FillDiagonallyDominant makes the matrix safely factorizable without
// pivoting: random off-diagonal, dominant diagonal.
func (m *Matrix) FillDiagonallyDominant(seed int64) {
	m.FillRandom(seed)
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(m.Cols)+1)
	}
}

// MaxAbsDiff returns the max absolute elementwise difference.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - o.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// Gemm computes C += A * B on sub-blocks: C[ci:ci+n, cj:cj+p] +=
// A[ai:ai+n, aj:aj+m] * B[bi:bi+m, bj:bj+p]. This is the naive triple
// loop (reference-BLAS era, as the paper's GCC-compiled setup).
func Gemm(C, A, B *Matrix, ci, cj, ai, aj, bi, bj, n, mm, p int) {
	for i := 0; i < n; i++ {
		for k := 0; k < mm; k++ {
			a := A.At(ai+i, aj+k)
			if a == 0 {
				continue
			}
			crow := (ci + i) * C.Cols
			brow := (bi + k) * B.Cols
			for j := 0; j < p; j++ {
				C.Data[crow+cj+j] += a * B.Data[brow+bj+j]
			}
		}
	}
}

// MatMul returns A*B for full matrices.
func MatMul(A, B *Matrix) (*Matrix, error) {
	if A.Cols != B.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", A.Rows, A.Cols, B.Rows, B.Cols)
	}
	C := NewMatrix(A.Rows, B.Cols)
	Gemm(C, A, B, 0, 0, 0, 0, 0, 0, A.Rows, A.Cols, B.Cols)
	return C, nil
}

// Daxpy computes y += alpha * x (BLAS1).
func Daxpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Dot returns the dot product (BLAS1).
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// LU factorizes A in place without pivoting (A must be diagonally
// dominant): A = L*U with unit-diagonal L stored below the diagonal and
// U on/above it. Unblocked reference implementation.
func LU(A *Matrix) error {
	if A.Rows != A.Cols {
		return fmt.Errorf("linalg: LU of non-square %dx%d", A.Rows, A.Cols)
	}
	n := A.Rows
	for k := 0; k < n; k++ {
		piv := A.At(k, k)
		if piv == 0 {
			return fmt.Errorf("linalg: zero pivot at %d", k)
		}
		for i := k + 1; i < n; i++ {
			l := A.At(i, k) / piv
			A.Set(i, k, l)
			irow := i * A.Cols
			krow := k * A.Cols
			for j := k + 1; j < n; j++ {
				A.Data[irow+j] -= l * A.Data[krow+j]
			}
		}
	}
	return nil
}

// BlockedLU factorizes A in place with a right-looking blocked algorithm
// using block size b — the exact task structure the paper's threaded LU
// uses (§4.5): factor the pivot block, update the block row and block
// column, then GEMM-update the trailing submatrix.
func BlockedLU(A *Matrix, b int) error {
	if A.Rows != A.Cols {
		return fmt.Errorf("linalg: LU of non-square %dx%d", A.Rows, A.Cols)
	}
	n := A.Rows
	if b <= 0 || b > n {
		return fmt.Errorf("linalg: bad block size %d for n=%d", b, n)
	}
	for k := 0; k < n; k += b {
		kb := min(b, n-k)
		// Factor the pivot panel A[k:n, k:k+kb] (unblocked, like the
		// panel factorization a BLAS library would do).
		for kk := k; kk < k+kb; kk++ {
			piv := A.At(kk, kk)
			if piv == 0 {
				return fmt.Errorf("linalg: zero pivot at %d", kk)
			}
			for i := kk + 1; i < n; i++ {
				A.Set(i, kk, A.At(i, kk)/piv)
			}
			for i := kk + 1; i < n; i++ {
				l := A.At(i, kk)
				if l == 0 {
					continue
				}
				irow := i * A.Cols
				krow := kk * A.Cols
				for j := kk + 1; j < k+kb; j++ {
					A.Data[irow+j] -= l * A.Data[krow+j]
				}
			}
		}
		if k+kb >= n {
			break
		}
		// Update block row: U[k:k+kb, k+kb:n] via triangular solve with
		// unit L of the pivot block.
		for kk := k; kk < k+kb; kk++ {
			for i := kk + 1; i < k+kb; i++ {
				l := A.At(i, kk)
				if l == 0 {
					continue
				}
				irow := i * A.Cols
				krow := kk * A.Cols
				for j := k + kb; j < n; j++ {
					A.Data[irow+j] -= l * A.Data[krow+j]
				}
			}
		}
		// Trailing update: A[i, j] -= L[i, k-panel] * U[k-panel, j],
		// block by block (the parallel-for loops of §4.5).
		for i := k + kb; i < n; i += b {
			ib := min(b, n-i)
			for j := k + kb; j < n; j += b {
				jb := min(b, n-j)
				for kk := 0; kk < kb; kk++ {
					for ii := 0; ii < ib; ii++ {
						l := A.At(i+ii, k+kk)
						if l == 0 {
							continue
						}
						irow := (i + ii) * A.Cols
						krow := (k + kk) * A.Cols
						for jj := 0; jj < jb; jj++ {
							A.Data[irow+j+jj] -= l * A.Data[krow+j+jj]
						}
					}
				}
			}
		}
	}
	return nil
}

// ExtractLU splits a factorized in-place LU into explicit L and U.
func ExtractLU(A *Matrix) (L, U *Matrix) {
	n := A.Rows
	L = NewMatrix(n, n)
	U = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		L.Set(i, i, 1)
		for j := 0; j < n; j++ {
			if j < i {
				L.Set(i, j, A.At(i, j))
			} else {
				U.Set(i, j, A.At(i, j))
			}
		}
	}
	return L, U
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
