package omp

import (
	"testing"

	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
)

func setup() (*sim.Engine, *kern.Process) {
	eng := sim.NewEngine(3)
	k := kern.New(eng, topology.Opteron4x4(), model.Default(), false)
	return eng, k.NewProcess("omp-test")
}

func TestParallelRunsEveryThreadOnItsCore(t *testing.T) {
	eng, proc := setup()
	tm := TeamAllCores(proc)
	seen := map[int]topology.CoreID{}
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.Parallel(master, func(tk *kern.Task, tid int) {
			seen[tid] = tk.Core
			tk.P.Sleep(10 * sim.Microsecond)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 16 {
		t.Fatalf("threads ran = %d, want 16", len(seen))
	}
	for tid, core := range seen {
		if int(core) != tid {
			t.Fatalf("tid %d on core %d", tid, core)
		}
	}
}

func TestParallelForStaticCoversAllOnce(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 4, 8, 12})
	counts := make([]int, 100)
	owners := make([]int, 100)
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 0, 100, Static{}, func(tk *kern.Task, i int) {
			counts[i]++
			owners[i] = int(tk.Core) / 4
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	// Static{}: one contiguous block of 25 per thread.
	if owners[0] != 0 || owners[25] != 1 || owners[99] != 3 {
		t.Fatalf("static ownership wrong: %v %v %v", owners[0], owners[25], owners[99])
	}
}

func TestParallelForStaticChunked(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 1})
	owners := make([]int, 8)
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 0, 8, Static{Chunk: 2}, func(tk *kern.Task, i int) {
			owners[i] = int(tk.Core)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("owners = %v, want %v", owners, want)
		}
	}
}

func TestParallelForDynamicCoversAll(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 4, 8})
	counts := make([]int, 50)
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 0, 50, Dynamic{Chunk: 3}, func(tk *kern.Task, i int) {
			counts[i]++
			tk.P.Sleep(sim.Microsecond)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestParallelForBarrierSemantics(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 4})
	var loopDone, masterResumed sim.Time
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 0, 2, Static{}, func(tk *kern.Task, i int) {
			tk.P.Sleep(sim.Time(i+1) * 100 * sim.Microsecond)
			if tk.P.Now() > loopDone {
				loopDone = tk.P.Now()
			}
		})
		masterResumed = master.P.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if masterResumed < loopDone {
		t.Fatalf("master resumed at %v before loop finished at %v", masterResumed, loopDone)
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 4, 8, 12})
	inside, max := 0, 0
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.Parallel(master, func(tk *kern.Task, tid int) {
			tm.Critical(tk, func() {
				inside++
				if inside > max {
					max = inside
				}
				tk.P.Sleep(10 * sim.Microsecond)
				inside--
			})
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("critical section concurrency = %d", max)
	}
}

func TestStaticOwnerMatchesExecution(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0, 4, 8})
	owners := make([]int, 31)
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 0, 31, Static{}, func(tk *kern.Task, i int) {
			owners[i] = int(tk.Core) / 4
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range owners {
		if got := tm.StaticOwner(0, 31, i); got != owners[i] {
			t.Fatalf("StaticOwner(%d) = %d, executed by %d", i, got, owners[i])
		}
	}
}

func TestParallelForEmptyRange(t *testing.T) {
	eng, proc := setup()
	tm := NewTeam(proc, []topology.CoreID{0})
	ran := false
	proc.Spawn("master", 0, func(master *kern.Task) {
		tm.ParallelFor(master, 5, 5, Static{}, func(tk *kern.Task, i int) { ran = true })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("body ran for empty range")
	}
}
