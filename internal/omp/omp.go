// Package omp provides a minimal OpenMP-style runtime on top of the
// simulated kernel: thread teams pinned to cores, parallel-for loops with
// static and dynamic schedules, barriers and critical sections. It mimics
// the GCC (GOMP) behaviour the paper relies on: static chunking gives no
// guarantee about which thread computes which data across different
// parallel regions, which is exactly why next-touch redistribution pays
// off (§4.5).
package omp

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/sim"
	"numamig/internal/topology"
)

// Schedule selects a loop schedule.
type Schedule interface {
	isSchedule()
}

// Static divides the iteration space into fixed chunks assigned
// round-robin; Chunk 0 means one contiguous block per thread (GOMP
// default).
type Static struct{ Chunk int }

// Dynamic hands out chunks of the given size on demand.
type Dynamic struct{ Chunk int }

func (Static) isSchedule()  {}
func (Dynamic) isSchedule() {}

// Team is a set of worker threads pinned to cores of one process.
type Team struct {
	Proc  *kern.Process
	Cores []topology.CoreID
	// ForkCost is charged on the master per parallel region.
	ForkCost sim.Time

	regionSeq int
	critical  *sim.Resource
}

// NewTeam builds a team over the given cores.
func NewTeam(proc *kern.Process, cores []topology.CoreID) *Team {
	return &Team{
		Proc:     proc,
		Cores:    cores,
		ForkCost: 2 * sim.Microsecond,
		critical: sim.NewResource(proc.K.Eng, "omp.critical", 1),
	}
}

// TeamAllCores builds a team with one thread per machine core.
func TeamAllCores(proc *kern.Process) *Team {
	cores := make([]topology.CoreID, proc.K.M.NumCores())
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	return NewTeam(proc, cores)
}

// Size returns the team width.
func (tm *Team) Size() int { return len(tm.Cores) }

// Critical runs fn under the team-wide critical-section lock.
func (tm *Team) Critical(t *kern.Task, fn func()) {
	tm.critical.With(t.P, fn)
}

// Parallel runs body once per team thread (an OpenMP parallel region)
// and blocks the master until all threads finish. body receives the
// worker task and its thread id.
func (tm *Team) Parallel(master *kern.Task, body func(t *kern.Task, tid int)) {
	tm.regionSeq++
	master.P.Sleep(tm.ForkCost)
	eng := tm.Proc.K.Eng
	wg := sim.NewWaitGroup(eng, len(tm.Cores))
	for tid, core := range tm.Cores {
		tid := tid
		tm.Proc.Spawn(fmt.Sprintf("omp%d.%d", tm.regionSeq, tid), core, func(t *kern.Task) {
			defer wg.Done()
			body(t, tid)
		})
	}
	wg.Wait(master.P)
}

// ParallelFor runs body(i) for i in [low, high) across the team with the
// given schedule, blocking the master until the implicit barrier at the
// end of the loop.
func (tm *Team) ParallelFor(master *kern.Task, low, high int, sched Schedule, body func(t *kern.Task, i int)) {
	if high <= low {
		return
	}
	n := high - low
	switch s := sched.(type) {
	case Static:
		chunk := s.Chunk
		if chunk <= 0 {
			chunk = (n + len(tm.Cores) - 1) / len(tm.Cores)
		}
		tm.Parallel(master, func(t *kern.Task, tid int) {
			for base := low + tid*chunk; base < high; base += chunk * len(tm.Cores) {
				end := base + chunk
				if end > high {
					end = high
				}
				for i := base; i < end; i++ {
					body(t, i)
				}
			}
		})
	case Dynamic:
		chunk := s.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		next := low
		tm.Parallel(master, func(t *kern.Task, tid int) {
			for {
				// Single-token DES execution makes this race-free.
				if next >= high {
					return
				}
				base := next
				next += chunk
				end := base + chunk
				if end > high {
					end = high
				}
				for i := base; i < end; i++ {
					body(t, i)
				}
				t.P.Yield() // allow interleaving between chunk grabs
			}
		})
	default:
		panic("omp: unknown schedule")
	}
}

// StaticOwner returns the thread id that a Static{Chunk:0} schedule over
// [low, high) assigns iteration i to; used by drivers to reason about
// ownership churn without running the loop.
func (tm *Team) StaticOwner(low, high, i int) int {
	n := high - low
	chunk := (n + len(tm.Cores) - 1) / len(tm.Cores)
	if chunk == 0 {
		return 0
	}
	return ((i - low) / chunk) % len(tm.Cores)
}
