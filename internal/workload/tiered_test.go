package workload

import "testing"

func tieredQuick(rate float64, hyst bool) TieredConfig {
	return TieredConfig{
		NodePages:     512,
		RateLimitMBps: rate,
		Hysteresis:    hyst,
	}
}

// TestTieredSlowTierPopulatesAndDrains is the end-to-end slow-tier
// story: the demote phase populates CXL with the cold working set, and
// the promote phase drains the hot window back up to DRAM.
func TestTieredSlowTierPopulatesAndDrains(t *testing.T) {
	r, err := Tiered(tieredQuick(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if r.Absent != 0 {
		t.Fatalf("%d working pages absent", r.Absent)
	}
	if r.SlowPeak <= int64(r.SlowBoundPages) {
		t.Fatalf("demote phase never populated the slow tier: peak %d (bound %d)",
			r.SlowPeak, r.SlowBoundPages)
	}
	if r.WindowSlowBefore == 0 {
		t.Fatalf("no window pages demoted to the slow tier (peak %d)", r.SlowPeak)
	}
	if r.WindowSlowAfter >= r.WindowSlowBefore {
		t.Fatalf("promote phase did not drain the window: %d -> %d",
			r.WindowSlowBefore, r.WindowSlowAfter)
	}
	if r.TierDown == 0 || r.TierUp == 0 {
		t.Fatalf("engine tier stats missed the traffic: down=%d up=%d", r.TierDown, r.TierUp)
	}
	if r.RateLimited != 0 {
		t.Fatalf("limiter off but %d promotions rate-limited", r.RateLimited)
	}
}

// TestTieredDemotionOnlyAllocation is the allocation invariant: the
// only frames allocated (not migrated) on slow-tier nodes belong to
// the buffer explicitly bound to them, and the strict-bind node-0
// ballast never leaves its mask.
func TestTieredDemotionOnlyAllocation(t *testing.T) {
	for _, rate := range []float64{0, 1} {
		r, err := Tiered(tieredQuick(rate, true))
		if err != nil {
			t.Fatal(err)
		}
		if r.DirectSlowAllocs != int64(r.SlowBoundPages) {
			t.Fatalf("rate %v: %d frames allocated on the slow tier, want exactly the %d bound pages",
				rate, r.DirectSlowAllocs, r.SlowBoundPages)
		}
		if r.BindOffMask != 0 {
			t.Fatalf("rate %v: %d strict-bind pages outside node 0 (hist %v)",
				rate, r.BindOffMask, r.BindHist)
		}
	}
}

// TestTieredRateLimiterThrottles: with the token bucket on, promotions
// out of CXL are dropped (PromoteRateLimited > 0) and the window
// drains more slowly than with the limiter off.
func TestTieredRateLimiterThrottles(t *testing.T) {
	free, err := Tiered(tieredQuick(0, true))
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Tiered(tieredQuick(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if limited.RateLimited == 0 {
		t.Fatalf("limiter on but PromoteRateLimited == 0 (windowBefore %d after %d)",
			limited.WindowSlowBefore, limited.WindowSlowAfter)
	}
	if limited.WindowSlowAfter < free.WindowSlowAfter {
		t.Fatalf("limited run drained further than unlimited: %d < %d",
			limited.WindowSlowAfter, free.WindowSlowAfter)
	}
	if limited.WindowSlowAfter >= limited.WindowSlowBefore {
		t.Fatalf("limited run did not drain at all: %d -> %d",
			limited.WindowSlowBefore, limited.WindowSlowAfter)
	}
}

// TestTieredAdaptiveMeetsOrBeatsStatic is the closed-loop acceptance
// property: the adaptive controller starts at the static floor (1
// MB/s) and widens only on observed drops, so its end-of-run slow-tier
// residency must meet or beat every static positive limit — here the
// grid's static cell — while still rate-limiting (it is not simply the
// limiter turned off).
func TestTieredAdaptiveMeetsOrBeatsStatic(t *testing.T) {
	static, err := Tiered(tieredQuick(1, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tieredQuick(0, true)
	cfg.Adaptive = true
	adaptive, err := Tiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.SlowResident > static.SlowResident {
		t.Fatalf("adaptive left more on the slow tier than the static limit: %d > %d",
			adaptive.SlowResident, static.SlowResident)
	}
	if adaptive.RateLimited == 0 {
		t.Fatal("adaptive run never rate-limited — the controller was signal-blind")
	}
	if adaptive.Control.Widens == 0 {
		t.Fatalf("controller saw %d drops but never widened", adaptive.Control.Drops)
	}
	if adaptive.Control.PeakMBps <= 1 {
		t.Fatalf("controller never rose above the floor: peak %g", adaptive.Control.PeakMBps)
	}
}

// TestTieredDeterminism: same seed, same counters — including the
// token bucket's drop count.
func TestTieredDeterminism(t *testing.T) {
	a, err := Tiered(tieredQuick(1, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tiered(tieredQuick(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if a.RateLimited != b.RateLimited || a.SlowResident != b.SlowResident ||
		a.WindowSlowAfter != b.WindowSlowAfter || a.Dur != b.Dur ||
		a.Stats != b.Stats {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestTieredConfigValidation rejects impossible machines.
func TestTieredConfigValidation(t *testing.T) {
	if _, err := Tiered(TieredConfig{FastNodes: 1}); err == nil {
		t.Fatal("1 DRAM node accepted")
	}
	if _, err := Tiered(TieredConfig{FastNodes: 8, SlowNodes: 1}); err == nil {
		t.Fatal("9-node machine accepted")
	}
}
