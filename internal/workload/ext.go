package workload

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"

	numamig "numamig"
)

// Extension studies: the future-work items of the paper's §6, plus a
// placement-policy study used by the documentation. These are ablations
// beyond the paper's evaluation; EXPERIMENTS.md discusses them
// separately from the reproduced figures.

// HugePageMigration compares migrating `mb` megabytes node0 -> node1 as
// 4 KiB pages (patched move_pages) versus as 2 MiB huge pages. Returns
// (smallMBps, hugeMBps).
func HugePageMigration(mb int) (float64, float64, error) {
	bytes := int64(mb) << 20
	small := func() (sim.Time, error) {
		sys := numamig.New(numamig.Config{})
		var d sim.Time
		err := sys.RunOn(4, func(t *numamig.Task) {
			buf := numamig.MustAlloc(t, bytes, numamig.Bind(0))
			if err := buf.Prefault(t); err != nil {
				panic(err)
			}
			start := t.P.Now()
			if err := buf.MoveTo(t, 1, true); err != nil {
				panic(err)
			}
			d = t.P.Now() - start
		})
		return d, err
	}
	huge := func() (sim.Time, error) {
		sys := numamig.New(numamig.Config{})
		var d sim.Time
		err := sys.RunOn(4, func(t *numamig.Task) {
			a, err := t.MmapHuge(bytes, vm.Bind(0), "huge")
			if err != nil {
				panic(err)
			}
			if _, err := t.TouchHuge(a, bytes); err != nil {
				panic(err)
			}
			start := t.P.Now()
			if _, err := t.MoveHugeRange(a, bytes, 1); err != nil {
				panic(err)
			}
			d = t.P.Now() - start
		})
		return d, err
	}
	ds, err := small()
	if err != nil {
		return 0, 0, err
	}
	dh, err := huge()
	if err != nil {
		return 0, 0, err
	}
	return MBps(bytes, ds), MBps(bytes, dh), nil
}

// ReplicationStudy measures 16 threads repeatedly reading one hot
// read-mostly buffer that lives on node 0, with and without read-only
// replication. Returns (staticTime, replicatedTime) including the
// replication setup cost.
func ReplicationStudy(mb, sweeps int) (sim.Time, sim.Time, error) {
	bytes := int64(mb) << 20
	run := func(replicate bool) (sim.Time, error) {
		sys := numamig.New(numamig.Config{})
		ready := sim.NewEvent(sys.Eng)
		var a vm.Addr
		var start, last sim.Time
		sys.Proc.Spawn("setup", 0, func(t *kern.Task) {
			start = t.P.Now()
			var err error
			a, err = t.Mmap(bytes, vm.ProtRW, vm.Bind(0), 0, "hot")
			if err != nil {
				panic(err)
			}
			if _, err := t.FaultIn(a, bytes, true); err != nil {
				panic(err)
			}
			if replicate {
				if _, err := t.ReplicateRange(a, bytes); err != nil {
					panic(err)
				}
			}
			ready.Fire()
		})
		for c := 0; c < sys.Machine.NumCores(); c++ {
			sys.Proc.Spawn(fmt.Sprintf("r%d", c), topology.CoreID(c), func(t *kern.Task) {
				ready.Wait(t.P)
				for s := 0; s < sweeps; s++ {
					if err := t.ReadReplicated(a, bytes, kern.Blocked); err != nil {
						panic(err)
					}
				}
				if t.P.Now() > last {
					last = t.P.Now()
				}
			})
		}
		if err := sys.Eng.Run(); err != nil {
			return 0, err
		}
		return last - start, nil
	}
	st, err := run(false)
	if err != nil {
		return 0, 0, err
	}
	rp, err := run(true)
	if err != nil {
		return 0, 0, err
	}
	return st, rp, nil
}

// PolicyKind selects a placement for the policy study.
type PolicyKind int

// Policy study placements.
const (
	PolFirstTouchLocal PolicyKind = iota // each thread first-touches its slice
	PolNode0                             // everything on node 0
	PolInterleaved                       // round-robin over nodes
	PolNextTouchFix                      // node 0, then next-touch repair
)

func (p PolicyKind) String() string {
	switch p {
	case PolFirstTouchLocal:
		return "first-touch (local)"
	case PolNode0:
		return "all on node 0"
	case PolInterleaved:
		return "interleaved"
	case PolNextTouchFix:
		return "node 0 + next-touch"
	}
	return "invalid"
}

// PolicyStudy runs `sweeps` STREAM-triad-like passes (a[i] = b[i] +
// s*c[i]) with 16 threads over per-thread slices placed by the given
// policy, and returns the total execution time. It quantifies how much
// placement matters for a bandwidth-bound kernel and how next-touch
// recovers first-touch quality from a bad initial placement once the
// one-time migration has amortized.
func PolicyStudy(mbPerThread, sweeps int, pol PolicyKind) (sim.Time, error) {
	if sweeps <= 0 {
		sweeps = 1
	}
	sys := numamig.New(numamig.Config{})
	threads := sys.Machine.NumCores()
	sliceBytes := int64(mbPerThread) << 20
	var dur sim.Time
	err := sys.Run(func(master *kern.Task) {
		var alloc vm.Policy
		switch pol {
		case PolInterleaved:
			alloc = vm.Interleave(0, 1, 2, 3)
		case PolNode0, PolNextTouchFix:
			alloc = vm.Bind(0)
		default:
			alloc = vm.DefaultPolicy()
		}
		team := sys.TeamAll()
		bufs := make([][3]*numamig.Buffer, threads)
		if pol == PolFirstTouchLocal {
			// Each thread first-touches its own vectors.
			team.Parallel(master, func(t *kern.Task, tid int) {
				for v := 0; v < 3; v++ {
					b := numamig.MustAlloc(t, sliceBytes, alloc)
					if err := b.Prefault(t); err != nil {
						panic(err)
					}
					bufs[tid][v] = b
				}
			})
		} else {
			for tid := 0; tid < threads; tid++ {
				for v := 0; v < 3; v++ {
					b := numamig.MustAlloc(master, sliceBytes, alloc)
					if err := b.Prefault(master); err != nil {
						panic(err)
					}
					bufs[tid][v] = b
				}
			}
			if pol == PolNextTouchFix {
				nt := sys.NewKernelNT()
				for tid := 0; tid < threads; tid++ {
					for v := 0; v < 3; v++ {
						if _, err := nt.Mark(master, bufs[tid][v].Region()); err != nil {
							panic(err)
						}
					}
				}
			}
		}
		start := master.P.Now()
		team.Parallel(master, func(t *kern.Task, tid int) {
			for s := 0; s < sweeps; s++ {
				// Triad: read b, c; write a.
				for v := 2; v >= 0; v-- {
					if err := t.AccessRange(bufs[tid][v].Base, sliceBytes, kern.Stream, v == 0); err != nil {
						panic(err)
					}
				}
				flops := 2 * float64(sliceBytes) / 4
				t.P.Sleep(sim.FromSeconds(flops / sys.Kernel.P.ComputeRate))
			}
		})
		dur = master.P.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return dur, nil
}
