// Package workload implements the paper's measured workloads on the
// simulated machine: the synchronous-migration and next-touch
// microbenchmarks (Figures 4-6), threaded migration scaling (Figure 7),
// the threaded LU factorization (Table 1), the 16 concurrent BLAS3
// multiplications (Figure 8), and the BLAS1 non-result (§4.5).
package workload

import (
	"fmt"

	"numamig/internal/core"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"

	numamig "numamig"
)

// MigMethod selects the Figure 4 curve.
type MigMethod int

// Figure 4 methods.
const (
	Memcpy MigMethod = iota
	MigratePages
	MovePagesPatched
	MovePagesUnpatched
)

func (m MigMethod) String() string {
	switch m {
	case Memcpy:
		return "memcpy"
	case MigratePages:
		return "migrate_pages"
	case MovePagesPatched:
		return "move_pages"
	case MovePagesUnpatched:
		return "move_pages (no patch)"
	}
	return "invalid"
}

// NTVariant selects the Figure 5 curve.
type NTVariant int

// Next-touch variants.
const (
	UserNTPatched NTVariant = iota
	UserNTUnpatched
	KernelNT
)

func (v NTVariant) String() string {
	switch v {
	case UserNTPatched:
		return "User Next-touch"
	case UserNTUnpatched:
		return "User Next-touch (no move_pages patch)"
	case KernelNT:
		return "Kernel Next-touch"
	}
	return "invalid"
}

// MBps converts bytes moved in a virtual duration to MB/s.
func MBps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// SyncMigration measures the Figure 4 throughput of migrating (or
// copying) `pages` 4 KiB pages from node 0 to node 1, performed by a
// thread on node 1. Returns MB/s.
func SyncMigration(pages int, method MigMethod) (float64, error) {
	sys := numamig.New(numamig.Config{})
	size := int64(pages) * model.PageSize
	var dur sim.Time
	err := sys.RunOn(4, func(t *numamig.Task) { // core 4 = node 1
		src := numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := src.Prefault(t); err != nil {
			panic(err)
		}
		var dst *numamig.Buffer
		if method == Memcpy {
			dst = numamig.MustAlloc(t, size, numamig.Bind(1))
			if err := dst.Prefault(t); err != nil {
				panic(err)
			}
		}
		start := t.P.Now()
		switch method {
		case Memcpy:
			if err := t.Memcpy(dst.Base, src.Base, size); err != nil {
				panic(err)
			}
		case MigratePages:
			if _, err := t.MigratePages([]topology.NodeID{0}, []topology.NodeID{1}); err != nil {
				panic(err)
			}
		case MovePagesPatched, MovePagesUnpatched:
			if _, err := t.MovePagesTo(src.Base, size, 1, method == MovePagesPatched); err != nil {
				panic(err)
			}
		}
		dur = t.P.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return MBps(size, dur), nil
}

// NextTouch measures the Figure 5 next-touch migration throughput for
// `pages` pages moving node 0 -> node 1, and returns the throughput plus
// the per-category cost account behind Figures 6(a)/6(b).
func NextTouch(pages int, variant NTVariant) (float64, *sim.Acct, error) {
	sys := numamig.New(numamig.Config{})
	size := int64(pages) * model.PageSize
	acct := sim.NewAcct()
	var dur sim.Time

	var userNT *core.UserNT
	var kernelNT *core.KernelNT
	switch variant {
	case UserNTPatched:
		userNT = sys.NewUserNT(true)
	case UserNTUnpatched:
		userNT = sys.NewUserNT(false)
	case KernelNT:
		kernelNT = sys.NewKernelNT()
	}

	err := sys.RunOn(4, func(t *numamig.Task) { // node 1
		buf := numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		t.P.SetAcct(acct)
		start := t.P.Now()
		// Mark.
		if userNT != nil {
			if err := userNT.Mark(t, buf.Region()); err != nil {
				panic(err)
			}
		} else {
			if _, err := kernelNT.Mark(t, buf.Region()); err != nil {
				panic(err)
			}
		}
		// Touch: pure fault-driven migration (no application traffic).
		if _, err := t.FaultIn(buf.Base, size, false); err != nil {
			panic(err)
		}
		dur = t.P.Now() - start
		t.P.SetAcct(nil)

		// Verify all pages moved.
		hist, absent := buf.NodeHistogram(t)
		if absent != 0 || hist[1] != pages {
			panic(fmt.Sprintf("next-touch left pages behind: %v absent=%d", hist, absent))
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return MBps(size, dur), acct, nil
}

// ThreadedMigration measures the Figure 7 aggregate throughput: threads
// bound to node 1 migrate a `pages`-page buffer from node 0, either
// synchronously (each thread move_pages on its share) or lazily (kernel
// next-touch faults on its share). Returns aggregate MB/s.
func ThreadedMigration(pages, threads int, lazy bool) (float64, error) {
	if threads < 1 || threads > 4 {
		return 0, fmt.Errorf("workload: threads must be 1..4 (one node), got %d", threads)
	}
	sys := numamig.New(numamig.Config{})
	size := int64(pages) * model.PageSize
	ready := sim.NewEvent(sys.Eng)
	var buf *numamig.Buffer
	var start, last sim.Time

	sys.Proc.Spawn("setup", 0, func(t *kern.Task) {
		buf = numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if lazy {
			if _, err := t.Madvise(buf.Base, size, kern.AdvMigrateOnNextTouch); err != nil {
				panic(err)
			}
		}
		start = t.P.Now()
		ready.Fire()
	})
	chunkPages := pages / threads
	for i := 0; i < threads; i++ {
		i := i
		sys.Proc.Spawn(fmt.Sprintf("mig%d", i), topology.CoreID(4+i), func(t *kern.Task) {
			ready.Wait(t.P)
			base := buf.Base + vm.Addr(i*chunkPages)*model.PageSize
			n := chunkPages
			if i == threads-1 {
				n = pages - i*chunkPages
			}
			if lazy {
				if _, err := t.FaultIn(base, int64(n)*model.PageSize, false); err != nil {
					panic(err)
				}
			} else {
				if _, err := t.MovePagesTo(base, int64(n)*model.PageSize, 1, true); err != nil {
					panic(err)
				}
			}
			if end := t.P.Now(); end > last {
				last = end
			}
		})
	}
	if err := sys.Eng.Run(); err != nil {
		return 0, err
	}
	return MBps(size, last-start), nil
}
