package workload

import (
	"testing"
)

func TestPhasePolicyStrings(t *testing.T) {
	for _, p := range PhasePolicies() {
		if p.String() == "" || p.String() == "invalid" {
			t.Fatalf("policy %d has bad string", p)
		}
		got, err := PhasePolicyOf(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip of %q: %v %v", p.String(), got, err)
		}
	}
	if PhasePolicy(99).String() != "invalid" {
		t.Fatal("invalid policy string")
	}
	if _, err := PhasePolicyOf("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

func TestPhaseShiftPolicies(t *testing.T) {
	run := func(pol PhasePolicy) PhaseShiftResult {
		r, err := PhaseShift(PhaseShiftConfig{Nodes: 4, Pages: 256, Policy: pol, Sweeps: 8})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if r.Absent != 0 {
			t.Fatalf("%s: %d absent pages", pol, r.Absent)
		}
		return r
	}
	static := run(PhaseStatic)
	if static.OnFinal != 0 {
		t.Fatalf("static run moved pages: hist=%v", static.Hist)
	}
	for _, pol := range []PhasePolicy{PhaseSync, PhaseLazyKernel, PhaseLazyUser, PhaseAutoNUMA} {
		r := run(pol)
		if r.OnFinal < 0.9 {
			t.Fatalf("%s converged only %.0f%% onto the final node (hist=%v)", pol, r.OnFinal*100, r.Hist)
		}
		if r.Dur >= static.Dur {
			t.Fatalf("%s (%v) should beat static (%v) on the rotation", pol, r.Dur, static.Dur)
		}
	}
	auto := run(PhaseAutoNUMA)
	if auto.Auto.ScanTicks == 0 || auto.Stats.NumaHintFaults == 0 {
		t.Fatalf("autonuma run shows no balancing: %+v", auto.Auto)
	}
	if sync := run(PhaseSync); sync.Stats.NumaHintFaults != 0 {
		t.Fatal("manual run took hinting faults")
	}
}

func TestPhaseShiftSingleRotationMatchesPaperShape(t *testing.T) {
	// Hops=1 is the paper's central scenario: one move to the farthest
	// node. The workset must fully follow under every active policy.
	r, err := PhaseShift(PhaseShiftConfig{Nodes: 4, Pages: 128, Hops: 1, Policy: PhaseLazyKernel})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hist[3] != 128 {
		t.Fatalf("workset did not follow to node 3: %v", r.Hist)
	}
}
