package workload

import (
	"fmt"

	"numamig/internal/autonuma"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"

	numamig "numamig"
)

// The tiering workload: the rotating-hot-set regime where AutoNUMA
// promotion and kswapd demotion chase each other. One compute thread
// on node 0 owns a large working buffer that starts remote
// (interleaved over the other nodes) while cold ballast keeps node 0
// hovering at its watermarks. Each epoch the thread sweeps a hot
// window of the buffer, then the window slides: AutoNUMA promotes the
// window into node 0, the demotion daemons evict what the window left
// behind to make room, and the pages at the trailing edge — promoted
// moments ago, suddenly unreferenced — are exactly the ones naive
// demotion ships right back out (a promote/demote flip). Promotion
// hysteresis protects them for a few scan periods, which is enough
// for the flip count to collapse; the run also carries a strict-bind
// node-0 ballast that is cold the whole time, verifying the demotion
// scan's nodemask gate (those pages must never leave node 0, however
// hard the node is pressed).

// TieringConfig parameterizes one rotating-hot-set run.
type TieringConfig struct {
	// Nodes is the machine size (0: 4); must be >= 2.
	Nodes int
	// Cores is cores per node (0: 4).
	Cores int
	// NodePages is per-node memory in 4 KiB frames (0: 1024 = 4 MiB).
	NodePages int
	// WorkPages sizes the rotating working buffer, interleaved over the
	// non-zero nodes at first touch (0: NodePages/2).
	WorkPages int
	// HotPages is the rotating hot-window size (0: NodePages/8).
	HotPages int
	// StepPages is how far the window slides per epoch (0: HotPages/2).
	StepPages int
	// ColdPages is node-0 ballast, preferred onto node 0 and touched
	// once, that keeps the node at its watermarks (0: NodePages*3/4).
	ColdPages int
	// BindPages is strict-bind(0) ballast exercising the nodemask gate
	// (0: NodePages/16).
	BindPages int
	// Epochs is the number of sweep-then-slide rounds (0: 24).
	Epochs int
	// Sweeps is whole-window sweeps per epoch (0: 6).
	Sweeps int
	// Seed drives the simulation (0: 1).
	Seed int64
	// Hysteresis enables promotion hysteresis (the model default);
	// false zeroes Params.PromotionHysteresisPeriods so freshly
	// promoted pages are demotable immediately. The flip-counting
	// window (Params.FlipWindowPeriods) stays at its default either
	// way, so the two configurations measure the same telemetry.
	Hysteresis bool
	// Auto overrides balancer knobs (zero: defaults from model.Params).
	Auto autonuma.Config
}

func (c TieringConfig) withDefaults() TieringConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.NodePages == 0 {
		c.NodePages = 1024
	}
	if c.WorkPages == 0 {
		c.WorkPages = c.NodePages / 2
	}
	if c.HotPages == 0 {
		c.HotPages = c.NodePages / 8
	}
	if c.StepPages == 0 {
		c.StepPages = c.HotPages / 2
	}
	if c.ColdPages == 0 {
		c.ColdPages = c.NodePages * 3 / 4
	}
	if c.BindPages == 0 {
		c.BindPages = c.NodePages / 16
	}
	if c.Epochs == 0 {
		c.Epochs = 24
	}
	if c.Sweeps == 0 {
		c.Sweeps = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TieringResult is one run's outcome.
type TieringResult struct {
	// Dur is the virtual time of the measured epochs (after setup).
	Dur sim.Time
	// Bytes is the hot bytes swept over the measured epochs.
	Bytes int64
	// Flips is the promote/demote ping-pong count: pages demoted within
	// Params.FlipWindowPeriods of their promotion.
	Flips uint64
	// HotLocal is the fraction of the final hot window resident on the
	// compute thread's node when the run ended.
	HotLocal float64
	// Absent counts non-present working-buffer pages (must be 0).
	Absent int
	// BindHist is the strict-bind ballast's final node histogram;
	// BindOffMask counts its pages found outside the bind nodemask
	// (must be 0: the demotion scan's nodemask gate).
	BindHist    []int
	BindOffMask int
	// Demoted/DemotedCold snapshot the daemon's tier traffic.
	Demoted     uint64
	DemotedCold uint64
	// Stats snapshots the kernel counters; Auto the balancer's.
	Stats      kern.Stats
	Auto       autonuma.Stats
	MigratedMB float64
}

// Tiering builds a fresh deterministic System and runs the
// rotating-hot-set workload with AutoNUMA and the demotion daemons on.
func Tiering(cfg TieringConfig) (TieringResult, error) {
	cfg = cfg.withDefaults()
	var res TieringResult
	if cfg.Nodes < 2 {
		return res, fmt.Errorf("workload: tiering needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.HotPages > cfg.WorkPages {
		return res, fmt.Errorf("workload: hot window (%d pages) exceeds the working buffer (%d pages)",
			cfg.HotPages, cfg.WorkPages)
	}
	total := cfg.WorkPages + cfg.ColdPages + cfg.BindPages
	if total > cfg.Nodes*cfg.NodePages {
		return res, fmt.Errorf("workload: allocation does not fit the machine (%d > %d pages)",
			total, cfg.Nodes*cfg.NodePages)
	}
	p := model.Default()
	if !cfg.Hysteresis {
		p.PromotionHysteresisPeriods = 0
	}
	sys := numamig.New(numamig.Config{
		Nodes:        cfg.Nodes,
		CoresPerNode: cfg.Cores,
		MemPerNode:   int64(cfg.NodePages) * model.PageSize,
		Seed:         cfg.Seed,
		Demotion:     true,
		Params:       &p,
	})
	bal := sys.EnableAutoNUMA(cfg.Auto)

	others := make([]topology.NodeID, 0, cfg.Nodes-1)
	for n := 1; n < cfg.Nodes; n++ {
		others = append(others, topology.NodeID(n))
	}
	err := sys.Run(func(t *numamig.Task) {
		// Strict-bind ballast: cold for the whole run; the nodemask gate
		// must keep it on node 0 no matter how pressured the node gets.
		bind := numamig.MustAlloc(t, int64(cfg.BindPages)*model.PageSize, numamig.Bind(0))
		if err := bind.Prefault(t); err != nil {
			panic(err)
		}
		// Cold ballast: drives node 0 to its watermarks (the placement
		// layer spills the overflow), touched once.
		cold := numamig.MustAlloc(t, int64(cfg.ColdPages)*model.PageSize, numamig.Preferred(0))
		if err := cold.Prefault(t); err != nil {
			panic(err)
		}
		// Working buffer: starts remote, interleaved over the other
		// nodes; the rotating hot window is promoted in by AutoNUMA.
		work := numamig.MustAlloc(t, int64(cfg.WorkPages)*model.PageSize, numamig.Interleave(others...))
		if err := work.Prefault(t); err != nil {
			panic(err)
		}

		span := cfg.WorkPages - cfg.HotPages + 1
		winSize := int64(cfg.HotPages) * model.PageSize
		var winBase numamig.Addr
		start := t.P.Now()
		for e := 0; e < cfg.Epochs; e++ {
			off := 0
			if span > 1 && cfg.StepPages > 0 {
				off = (e * cfg.StepPages) % span
			}
			winBase = work.Base + numamig.Addr(off)*model.PageSize
			for s := 0; s < cfg.Sweeps; s++ {
				if err := t.AccessRange(winBase, winSize, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		}
		res.Dur = t.P.Now() - start

		home := t.Node()
		onHome := 0
		for _, n := range t.GetNodes(winBase, winSize) {
			if n >= 0 && topology.NodeID(n) == home {
				onHome++
			}
		}
		if cfg.HotPages > 0 {
			res.HotLocal = float64(onHome) / float64(cfg.HotPages)
		}
		for _, n := range t.GetNodes(work.Base, work.Size) {
			if n < 0 {
				res.Absent++
			}
		}
		res.BindHist, _ = bind.NodeHistogram(t)
		for n, c := range res.BindHist {
			if n != 0 {
				res.BindOffMask += c
			}
		}
	})
	if err != nil {
		return res, err
	}
	res.Bytes = int64(cfg.Epochs) * int64(cfg.Sweeps) * int64(cfg.HotPages) * model.PageSize
	res.Stats = sys.Stats()
	res.Flips = res.Stats.PromoteDemoteFlips
	res.Demoted = res.Stats.PagesDemoted
	res.DemotedCold = res.Stats.PagesDemotedCold
	res.MigratedMB = sys.MigratedBytes() / 1e6
	res.Auto = bal.Stats
	return res, nil
}
