package workload

import (
	"testing"

	numamig "numamig"
	"numamig/internal/telemetry"
)

// busCounters accumulates the bus stream into the same shape as the
// kernel and migration-engine counters, entirely independently of the
// Stats fields the code under test increments.
type busCounters struct {
	faults      uint64 // PageFault pages
	hintFaults  uint64 // NumaHintFault pages
	promoted    uint64 // Promote pages
	demoted     uint64 // Demote pages
	rateLimited uint64 // RateLimitDrop pages
	tierDown    uint64 // TierTraffic ops, demotion direction
	tierUp      uint64 // TierTraffic ops, promotion direction
}

func (c *busCounters) observe(ev telemetry.Event) {
	switch ev.Topic {
	case telemetry.TopicPageFault:
		c.faults += uint64(ev.Pages)
	case telemetry.TopicNumaHintFault:
		c.hintFaults += uint64(ev.Pages)
	case telemetry.TopicPromote:
		c.promoted += uint64(ev.Pages)
	case telemetry.TopicDemote:
		c.demoted += uint64(ev.Pages)
	case telemetry.TopicRateLimitDrop:
		c.rateLimited += uint64(ev.Pages)
	case telemetry.TopicTierTraffic:
		if ev.Value > 0 {
			c.tierDown += uint64(ev.Pages)
		} else {
			c.tierUp += uint64(ev.Pages)
		}
	}
}

// observeRuns installs a system observer that attaches fresh counters
// to every System a workload builds, returning the collected pairs.
// Restore clears the observer; tests must call it before returning.
func observeRuns(t *testing.T) (get func() []*observedRun, restore func()) {
	t.Helper()
	var runs []*observedRun
	numamig.SetSystemObserver(func(sys *numamig.System) {
		r := &observedRun{sys: sys, bus: &busCounters{}}
		sys.Bus().SubscribeAll(r.bus.observe)
		runs = append(runs, r)
	})
	return func() []*observedRun { return runs },
		func() { numamig.SetSystemObserver(nil) }
}

type observedRun struct {
	sys *numamig.System
	bus *busCounters
}

// check compares every bus-derived counter against the authoritative
// kernel / migration-engine counters, exactly.
func (r *observedRun) check(t *testing.T, label string) {
	t.Helper()
	st := r.sys.Stats()
	mig := r.sys.Migrator(numamig.Patched)
	cmp := []struct {
		name      string
		bus, auth uint64
	}{
		{"Faults", r.bus.faults, st.Faults},
		{"NumaHintFaults", r.bus.hintFaults, st.NumaHintFaults},
		{"NumaPagesPromoted", r.bus.promoted, st.NumaPagesPromoted},
		{"PagesDemoted", r.bus.demoted, st.PagesDemoted},
		{"PromoteRateLimited", r.bus.rateLimited, st.PromoteRateLimited},
		{"PagesTierDown", r.bus.tierDown, mig.Stats.PagesTierDown},
		{"PagesTierUp", r.bus.tierUp, mig.Stats.PagesTierUp},
	}
	for _, c := range cmp {
		if c.bus != c.auth {
			t.Errorf("%s: bus-derived %s = %d, counter says %d", label, c.name, c.bus, c.auth)
		}
	}
	if st.Faults == 0 {
		t.Errorf("%s: run took no faults — differential test exercised nothing", label)
	}
}

// TestTelemetryMatchesCountersTiering derives the kernel counters a
// second way — from the telemetry stream — and requires exact equality
// on the tiering workload. A missed or double-published event at any
// emitter breaks this.
func TestTelemetryMatchesCountersTiering(t *testing.T) {
	get, restore := observeRuns(t)
	defer restore()
	_, err := Tiering(TieringConfig{
		NodePages: 512, Epochs: 6, Sweeps: 2, Hysteresis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := get()
	if len(runs) != 1 {
		t.Fatalf("observed %d systems, want 1", len(runs))
	}
	runs[0].check(t, "tiering")
	if runs[0].bus.demoted == 0 {
		t.Error("tiering run demoted nothing — the Demote topic went unexercised")
	}
}

// TestTelemetryMatchesCountersTiered does the same over the explicit
// slow-tier workload, with the rate limiter on so RateLimitDrop and
// both TierTraffic directions carry traffic.
func TestTelemetryMatchesCountersTiered(t *testing.T) {
	get, restore := observeRuns(t)
	defer restore()
	r, err := Tiered(TieredConfig{
		FastNodes: 2, SlowNodes: 1, NodePages: 512, SlowRatio: 1,
		RateLimitMBps: 1, Hysteresis: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := get()
	if len(runs) != 1 {
		t.Fatalf("observed %d systems, want 1", len(runs))
	}
	runs[0].check(t, "tiered")
	b := runs[0].bus
	if b.rateLimited == 0 || b.tierUp == 0 || b.tierDown == 0 {
		t.Errorf("tiered run left a tier topic unexercised: drops %d up %d down %d",
			b.rateLimited, b.tierUp, b.tierDown)
	}
	if r.RateLimited != b.rateLimited {
		t.Errorf("workload-reported RateLimited %d != bus %d", r.RateLimited, b.rateLimited)
	}
}
