package workload

import "testing"

// TestTieringHysteresisKillsPingPong is the tiering subsystem's
// acceptance invariant: on the rotating-hot-set workload, promotion
// hysteresis must strictly reduce the promote/demote flip count —
// and the naive configuration must actually exhibit ping-pong,
// otherwise the comparison is vacuous. The strict-bind ballast must
// never leave its nodemask in either configuration.
func TestTieringHysteresisKillsPingPong(t *testing.T) {
	run := func(hyst bool) TieringResult {
		t.Helper()
		r, err := Tiering(TieringConfig{Hysteresis: hyst})
		if err != nil {
			t.Fatalf("hysteresis=%v: %v", hyst, err)
		}
		if r.Absent != 0 {
			t.Fatalf("hysteresis=%v: %d pages absent (allocation failure escaped)", hyst, r.Absent)
		}
		if r.BindOffMask != 0 {
			t.Fatalf("hysteresis=%v: %d strict-bind pages escaped their nodemask: hist=%v",
				hyst, r.BindOffMask, r.BindHist)
		}
		if r.Demoted == 0 {
			t.Fatalf("hysteresis=%v: demotion never ran — the workload exerts no pressure", hyst)
		}
		if r.Auto.PagesPromoted == 0 {
			t.Fatalf("hysteresis=%v: autonuma never promoted — the hot window never localizes", hyst)
		}
		return r
	}
	with := run(true)
	without := run(false)
	if without.Flips == 0 {
		t.Fatal("no promote/demote flips without hysteresis: the rotating hot set is not chasing")
	}
	if with.Flips >= without.Flips {
		t.Fatalf("hysteresis did not reduce ping-pong: %d flips with vs %d without",
			with.Flips, without.Flips)
	}
	if with.Stats.KswapdHysteresisSkips == 0 {
		t.Fatal("hysteresis enabled but the demotion scan never skipped a protected page")
	}
	// The nodemask gate engaged: the bind ballast was cold on a
	// pressured node, so the scan must have considered and refused it.
	if with.Stats.KswapdMaskSkips == 0 || without.Stats.KswapdMaskSkips == 0 {
		t.Fatalf("nodemask gate never engaged: skips with=%d without=%d",
			with.Stats.KswapdMaskSkips, without.Stats.KswapdMaskSkips)
	}
}

// TestTieringDeterminism: identical configs produce identical results —
// the tier targets, hysteresis stamps and flip counters are all
// deterministic DES citizens.
func TestTieringDeterminism(t *testing.T) {
	run := func() TieringResult {
		r, err := Tiering(TieringConfig{Seed: 5, Hysteresis: true})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Dur != b.Dur || a.Flips != b.Flips || a.HotLocal != b.HotLocal || a.Stats != b.Stats {
		t.Fatalf("runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestTieringConfigValidation: impossible configurations are rejected
// up front instead of deadlocking the simulation.
func TestTieringConfigValidation(t *testing.T) {
	if _, err := Tiering(TieringConfig{Nodes: 1}); err == nil {
		t.Error("single-node tiering accepted")
	}
	if _, err := Tiering(TieringConfig{HotPages: 4096, WorkPages: 64}); err == nil {
		t.Error("hot window larger than the working buffer accepted")
	}
	if _, err := Tiering(TieringConfig{ColdPages: 1 << 20}); err == nil {
		t.Error("allocation beyond the whole machine accepted")
	}
}
