package workload

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/tenancy"
	"numamig/internal/topology"

	numamig "numamig"
)

// The serve workload: a multi-tenant open system on the tiered
// machine. A deterministic Poisson-like arrival schedule
// (tenancy.Schedule, seeded) admits Tenants tenant processes over
// time; each is one simulated process with a fast-tier residency cap
// (tenancy.Ledger) and a priority class. Latency-sensitive tenants fit
// entirely under their cap, so their working set stays on DRAM; batch
// tenants' caps cover only half their working set, so the cap redirect
// lands the overflow on the CXL tier and the kswapd cap-reclaim keeps
// them at their cap.
//
// Every tenant runs the same measured probe each round — a window
// access plus a move_pages call on that window — and publishes its
// duration as a ClassLatency event. Latency-sensitive probes touch the
// buffer head (all DRAM) and their move_pages requests carry class
// priority 1 through the migration engine's lock queues; batch probes
// touch the buffer tail (resident on CXL, paying the tier's latency
// multiplier) and additionally generate contention: an unmeasured
// full-buffer sweep and a bulk DRAM-to-DRAM move_pages batch per
// round, queued at priority 0. The structural outcome the serve
// scenario family asserts: zero cap violations, and the
// latency-sensitive p99 strictly below the batch p99 in every
// contended cell.
//
// Departure is churn: each tenant frees its buffer before exiting, so
// the ledger drains to zero and later arrivals re-fault the freed
// frames.

// ServeConfig parameterizes one multi-tenant serve run.
type ServeConfig struct {
	// FastNodes is the DRAM node count (0: 2); SlowNodes the CXL node
	// count (0: 1), appended after them.
	FastNodes int
	SlowNodes int
	// Cores is cores per node (0: 4).
	Cores int
	// NodePages is per-DRAM-node memory in 4 KiB frames (0: 512).
	NodePages int
	// SlowRatio sizes each CXL node as a multiple of NodePages (0: 2).
	SlowRatio float64
	// Tenants is how many tenants the arrival schedule admits (0: 8).
	// Even indices are batch class, odd latency-sensitive.
	Tenants int
	// Rounds is measured probe rounds per tenant (0: 8).
	Rounds int
	// WorkPages is each tenant's working buffer in pages (0: 128).
	WorkPages int
	// ProbePages is the measured probe window in pages (0: 32).
	ProbePages int
	// LSCapPages / BatchCapPages are the per-class fast-tier caps
	// (0: 256 / 64). The defaults put latency-sensitive tenants fully
	// under cap and batch tenants at half their working set.
	LSCapPages    int
	BatchCapPages int
	// MeanGap is the mean inter-arrival gap (0: 2 x KswapdPeriod).
	MeanGap sim.Time
	// Seed drives the simulation and the arrival schedule (0: 1).
	Seed int64
}

func (c ServeConfig) withDefaults(p *model.Params) ServeConfig {
	if c.FastNodes == 0 {
		c.FastNodes = 2
	}
	if c.SlowNodes == 0 {
		c.SlowNodes = 1
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.NodePages == 0 {
		c.NodePages = 512
	}
	if c.SlowRatio == 0 {
		c.SlowRatio = 2
	}
	if c.Tenants == 0 {
		c.Tenants = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.WorkPages == 0 {
		c.WorkPages = 128
	}
	if c.ProbePages == 0 {
		c.ProbePages = 32
	}
	if c.LSCapPages == 0 {
		c.LSCapPages = 256
	}
	if c.BatchCapPages == 0 {
		c.BatchCapPages = 64
	}
	if c.MeanGap == 0 {
		c.MeanGap = 2 * p.KswapdPeriod
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeResult is one serve run's outcome.
type ServeResult struct {
	// SLO holds the per-class latency percentiles, steady migration
	// bandwidth and bus-observed cap violations (tenancy.Monitor).
	SLO tenancy.SLOStats
	// Admitted / Exited count tenant lifecycle transitions; both must
	// equal the configured tenant count.
	Admitted int
	Exited   int
	// CapViolations is the ledger's authoritative count (must be 0).
	CapViolations int
	// ResidualPages sums what Exit drained (a tenant that freed its
	// buffer before exiting drains 0); LeakedPages is residency still
	// charged to any tenant after the run. Both must be 0.
	ResidualPages int
	LeakedPages   int
	// Contended reports whether the migration-setup lock ever queued —
	// the cells where the class-priority ordering is actually exercised.
	Contended bool
	// Stats snapshots the kernel counters.
	Stats      kern.Stats
	MigratedMB float64
	// Dur is the full run's virtual time; Bytes the measured probe
	// traffic.
	Dur   sim.Time
	Bytes int64
}

// Serve builds a deterministic DRAM+CXL System and runs the
// multi-tenant open-system workload with the demotion daemons on.
func Serve(cfg ServeConfig) (ServeResult, error) {
	p := model.Default()
	cfg = cfg.withDefaults(&p)
	var res ServeResult
	if cfg.FastNodes < 2 {
		return res, fmt.Errorf("workload: serve needs >= 2 DRAM nodes, got %d", cfg.FastNodes)
	}
	if cfg.SlowNodes < 1 {
		return res, fmt.Errorf("workload: serve needs >= 1 slow node, got %d", cfg.SlowNodes)
	}
	nodes := cfg.FastNodes + cfg.SlowNodes
	if nodes > 8 {
		return res, fmt.Errorf("workload: serve machine has %d nodes, topology supports <= 8", nodes)
	}
	if cfg.ProbePages > cfg.WorkPages {
		return res, fmt.Errorf("workload: probe window (%d pages) exceeds the working buffer (%d)", cfg.ProbePages, cfg.WorkPages)
	}

	p.TierClasses = []model.TierClass{{Name: "dram"}, model.CXLTier()}
	p.NodeTier = make([]int, nodes)
	nodeMem := make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		nodeMem[n] = int64(cfg.NodePages) * model.PageSize
		if n >= cfg.FastNodes {
			p.NodeTier[n] = 1
			nodeMem[n] = int64(float64(cfg.NodePages)*cfg.SlowRatio) * model.PageSize
		}
	}

	sys := numamig.New(numamig.Config{
		Nodes:        nodes,
		CoresPerNode: cfg.Cores,
		MemPerNode:   int64(cfg.NodePages) * model.PageSize,
		NodeMem:      nodeMem,
		Seed:         cfg.Seed,
		Demotion:     true,
		Params:       &p,
	})
	bus := sys.Bus()
	mon := tenancy.NewMonitor(bus, 5*p.KswapdPeriod)
	ledger := sys.Kernel.Ten
	slowNode := topology.NodeID(cfg.FastNodes)

	sched := tenancy.NewSchedule(cfg.Seed, cfg.MeanGap)
	fastCores := cfg.FastNodes * cfg.Cores

	err := sys.Run(func(t *numamig.Task) {
		// The admission controller: the app main thread plays the open
		// system's front door, admitting tenants on the schedule's
		// seeded exponential gaps. It allocates nothing itself, so the
		// per-node Phys gauges are exactly the sum of tenant residency
		// (the differential-test contract).
		wg := sim.NewWaitGroup(t.P.Eng(), cfg.Tenants)
		for i := 0; i < cfg.Tenants; i++ {
			if i > 0 {
				t.P.Sleep(sched.Gap())
			}
			class := tenancy.Class(i % 2)
			capPages := cfg.BatchCapPages
			if class == tenancy.ClassLatencySensitive {
				capPages = cfg.LSCapPages
			}
			name := fmt.Sprintf("tenant%d", i)
			ten := ledger.Admit(i, name, class, capPages)
			pr := sys.Kernel.NewProcess(name)
			pr.SetTenant(ten)
			core := numamig.CoreID(i % fastCores)
			pr.Spawn(name, core, func(t *numamig.Task) {
				defer wg.Done()
				res.ResidualPages += serveTenant(t, &cfg, bus, ten, slowNode)
				res.ResidualPages += ledger.Exit(ten)
			})
		}
		wg.Wait(t.P)
	})
	if err != nil {
		return res, err
	}

	res.SLO = mon.Finalize()
	res.Admitted = ledger.Admitted
	res.Exited = ledger.Exited
	res.CapViolations = ledger.CapViolations
	for i := 0; i < cfg.Tenants; i++ {
		if ten := ledger.Lookup(i); ten != nil {
			res.LeakedPages += ten.Resident()
		}
	}
	res.Contended = sys.Kernel.MigLock().Contended > 0
	res.Stats = sys.Stats()
	res.MigratedMB = sys.MigratedBytes() / 1e6
	res.Dur = sys.Now()
	res.Bytes = int64(cfg.Tenants) * int64(cfg.Rounds) * int64(cfg.ProbePages) * model.PageSize
	return res, nil
}

// serveTenant is one tenant's life: fault the working buffer in under
// the cap contract, run the per-round probes, free everything, leave.
// It returns pages still mapped at the end (always 0: the buffer is
// freed before return).
func serveTenant(t *numamig.Task, cfg *ServeConfig, bus *telemetry.Bus, ten *tenancy.Tenant, slowNode topology.NodeID) int {
	buf := numamig.MustAlloc(t, int64(cfg.WorkPages)*model.PageSize, numamig.FirstTouch())
	if err := buf.Prefault(t); err != nil {
		panic(err)
	}

	probeBytes := int64(cfg.ProbePages) * model.PageSize
	headBase := buf.Base
	tailBase := buf.Base + numamig.Addr(int64(cfg.WorkPages-cfg.ProbePages)*model.PageSize)
	myNode := t.Node()

	for r := 0; r < cfg.Rounds; r++ {
		if ten.Class == tenancy.ClassBatch {
			// Unmeasured batch work: a full sweep keeps the working set
			// warm, then every DRAM-resident page shuttles to the other
			// DRAM node — a bulk priority-0 batch holding the migration
			// engine's locks, which is exactly what the latency-sensitive
			// probes must overtake. DRAM-to-DRAM only: promoting CXL
			// pages would breach the cap.
			if err := buf.Access(t, numamig.Blocked, false); err != nil {
				panic(err)
			}
			batchShuttle(t, cfg, buf)
		}
		// The measured probe, identical in shape for both classes: touch
		// the probe window, then move_pages it. The latency-sensitive
		// window is the buffer head (DRAM-resident, under cap); the
		// batch window is the tail (on CXL past the cap, paying the
		// tier's latency multiplier) and its move targets the CXL node
		// so it never promotes past the cap.
		probeBase, probeDst := headBase, myNode
		if ten.Class == tenancy.ClassBatch {
			probeBase, probeDst = tailBase, slowNode
		}
		start := t.P.Now()
		if err := t.AccessRange(probeBase, probeBytes, numamig.Blocked, false); err != nil {
			panic(err)
		}
		if _, err := t.MovePagesTo(probeBase, probeBytes, probeDst, true); err != nil {
			panic(err)
		}
		bus.Publish(telemetry.Event{
			Topic: telemetry.TopicClassLatency,
			Node:  myNode, Dst: telemetry.NoNode,
			Task: ten.ID, Pages: cfg.ProbePages,
			Dur: t.P.Now() - start, Value: float64(ten.Class),
		})
	}

	if err := buf.Free(t); err != nil {
		panic(err)
	}
	return 0
}

// batchShuttle moves every DRAM-resident page of the buffer to the
// other DRAM node: real copies, long lock holds, priority 0.
func batchShuttle(t *numamig.Task, cfg *ServeConfig, buf *numamig.Buffer) {
	nodes := t.GetNodes(buf.Base, buf.Size)
	var addrs []numamig.Addr
	var dsts []topology.NodeID
	for i, n := range nodes {
		if n < 0 || n >= cfg.FastNodes {
			continue
		}
		addrs = append(addrs, buf.Base+numamig.Addr(int64(i)*model.PageSize))
		dsts = append(dsts, topology.NodeID((n+1)%cfg.FastNodes))
	}
	if len(addrs) == 0 {
		return
	}
	if _, err := t.MovePages(addrs, dsts, true); err != nil {
		panic(err)
	}
}
