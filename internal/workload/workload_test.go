package workload

import (
	"testing"

	"numamig/internal/kern"
)

// The workload tests assert the paper's qualitative results (who wins,
// by roughly what factor, where crossovers fall), not absolute numbers.

func TestFigure4Ordering(t *testing.T) {
	const pages = 4096
	get := func(m MigMethod) float64 {
		v, err := SyncMigration(pages, m)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	memcpy := get(Memcpy)
	migrate := get(MigratePages)
	movePatched := get(MovePagesPatched)
	moveUnpatched := get(MovePagesUnpatched)
	if !(memcpy > migrate && migrate > movePatched && movePatched > moveUnpatched) {
		t.Fatalf("ordering wrong: memcpy=%.0f migrate=%.0f move=%.0f unpatched=%.0f",
			memcpy, migrate, movePatched, moveUnpatched)
	}
	// Paper §4.2: ~600 MB/s patched, ~780 MB/s migrate_pages, ~2 GB/s
	// memcpy, unpatched collapses.
	if movePatched < 520 || movePatched > 700 {
		t.Fatalf("move_pages = %.0f MB/s, want ~600", movePatched)
	}
	if migrate < 650 || migrate > 850 {
		t.Fatalf("migrate_pages = %.0f MB/s, want ~780", migrate)
	}
	if memcpy < 1700 || memcpy > 2400 {
		t.Fatalf("memcpy = %.0f MB/s, want ~2100", memcpy)
	}
	if moveUnpatched > movePatched/3 {
		t.Fatalf("unpatched (%.0f) should collapse vs patched (%.0f) at %d pages",
			moveUnpatched, movePatched, pages)
	}
}

func TestFigure4UnpatchedThroughputDropsWithSize(t *testing.T) {
	small, err := SyncMigration(256, MovePagesUnpatched)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SyncMigration(8192, MovePagesUnpatched)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small/2 {
		t.Fatalf("unpatched throughput should drop: 256p=%.0f 8192p=%.0f", small, large)
	}
	// Patched stays flat (buffer-size independent).
	ps, _ := SyncMigration(256, MovePagesPatched)
	pl, _ := SyncMigration(8192, MovePagesPatched)
	if pl < ps*0.85 {
		t.Fatalf("patched throughput not flat: 256p=%.0f 8192p=%.0f", ps, pl)
	}
}

func TestFigure5KernelNTFastAndFlat(t *testing.T) {
	small, _, err := NextTouch(16, KernelNT)
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := NextTouch(4096, KernelNT)
	if err != nil {
		t.Fatal(err)
	}
	// ~800 MB/s even for small buffers (paper Fig. 5).
	for _, v := range []float64{small, large} {
		if v < 650 || v > 950 {
			t.Fatalf("kernel NT = %.0f/%.0f MB/s, want ~800 at both sizes", small, large)
		}
	}
	// User NT approaches move_pages speed only for large buffers.
	uSmall, _, err := NextTouch(16, UserNTPatched)
	if err != nil {
		t.Fatal(err)
	}
	uLarge, _, err := NextTouch(4096, UserNTPatched)
	if err != nil {
		t.Fatal(err)
	}
	if uSmall > small/2 {
		t.Fatalf("user NT at 16 pages (%.0f) should be far below kernel NT (%.0f)", uSmall, small)
	}
	if uLarge < 450 || uLarge > 700 {
		t.Fatalf("user NT at 4096 pages = %.0f, want ~600", uLarge)
	}
	// Kernel NT is ~30%% faster than the user-space model (paper §4.3).
	if ratio := large / uLarge; ratio < 1.15 || ratio > 1.6 {
		t.Fatalf("kernel/user NT ratio = %.2f, want ~1.3", ratio)
	}
}

func TestFigure5UnpatchedUserNTCollapses(t *testing.T) {
	patched, _, err := NextTouch(4096, UserNTPatched)
	if err != nil {
		t.Fatal(err)
	}
	unpatched, _, err := NextTouch(4096, UserNTUnpatched)
	if err != nil {
		t.Fatal(err)
	}
	if unpatched > patched/2 {
		t.Fatalf("user NT unpatched (%.0f) should collapse vs patched (%.0f)", unpatched, patched)
	}
}

func TestFigure6aBreakdown(t *testing.T) {
	_, acct, err := NextTouch(4096, UserNTPatched)
	if err != nil {
		t.Fatal(err)
	}
	tot := acct.Total()
	if tot == 0 {
		t.Fatal("empty account")
	}
	ctl := acct.Percent(kern.CatMovePagesCtl)
	cp := acct.Percent(kern.CatMovePagesCopy)
	// Paper Fig. 6a: control ~38% of move_pages cost at large sizes;
	// signal/mprotect overhead negligible.
	if ctl < 30 || ctl > 48 {
		t.Fatalf("move_pages control share = %.1f%%, want ~38%%", ctl)
	}
	if cp < 50 || cp > 70 {
		t.Fatalf("move_pages copy share = %.1f%%, want ~60%%", cp)
	}
	for _, cat := range []string{kern.CatMprotectMark, kern.CatMprotectRest, kern.CatFaultSignal} {
		if p := acct.Percent(cat); p > 3 {
			t.Fatalf("%s share = %.1f%%, want negligible", cat, p)
		}
	}
}

func TestFigure6bBreakdown(t *testing.T) {
	_, acct, err := NextTouch(4096, KernelNT)
	if err != nil {
		t.Fatal(err)
	}
	ctl := acct.Percent(kern.CatNTCtl)
	cp := acct.Percent(kern.CatNTCopy)
	// Paper Fig. 6b: page-fault + migration control ~20%.
	if ctl < 14 || ctl > 27 {
		t.Fatalf("kernel NT control share = %.1f%%, want ~20%%", ctl)
	}
	if cp < 70 || cp > 86 {
		t.Fatalf("kernel NT copy share = %.1f%%, want ~80%%", cp)
	}
	// madvise is visible only for small buffers.
	_, acctSmall, err := NextTouch(4, KernelNT)
	if err != nil {
		t.Fatal(err)
	}
	if small, large := acctSmall.Percent(kern.CatMadvise), acct.Percent(kern.CatMadvise); small <= large {
		t.Fatalf("madvise share should shrink with size: %0.1f%% -> %0.1f%%", small, large)
	}
}

func TestFigure7ScalingShape(t *testing.T) {
	const large = 16384
	s1, err := ThreadedMigration(large, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := ThreadedMigration(large, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ThreadedMigration(large, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := ThreadedMigration(large, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.4: +50-60% with 4 threads for both strategies.
	if sp := s4 / s1; sp < 1.35 || sp > 1.85 {
		t.Fatalf("sync 4-thread speedup = %.2f, want ~1.55", sp)
	}
	// Lazy reaches ~1.3 GB/s and beats sync.
	if l4 < 1150 || l4 > 1600 {
		t.Fatalf("lazy 4-thread = %.0f MB/s, want ~1300-1450", l4)
	}
	if l4 <= s4 {
		t.Fatalf("lazy aggregate (%.0f) should exceed sync (%.0f)", l4, s4)
	}
	if l1 < 650 || l1 > 950 {
		t.Fatalf("lazy single = %.0f MB/s, want ~800", l1)
	}
	// No parallel benefit for small buffers (<1 MB).
	small1, _ := ThreadedMigration(64, 1, false)
	small4, _ := ThreadedMigration(64, 4, false)
	if small4 > small1*1.3 {
		t.Fatalf("sync small-buffer speedup = %.2f, want none", small4/small1)
	}
	lSmall1, _ := ThreadedMigration(64, 1, true)
	lSmall4, _ := ThreadedMigration(64, 4, true)
	if lSmall4 > lSmall1*1.3 {
		t.Fatalf("lazy small-buffer speedup = %.2f, want none", lSmall4/lSmall1)
	}
	_ = s1
}

func TestThreadedMigrationRejectsBadThreadCount(t *testing.T) {
	if _, err := ThreadedMigration(64, 0, false); err == nil {
		t.Fatal("0 threads accepted")
	}
	if _, err := ThreadedMigration(64, 5, true); err == nil {
		t.Fatal("5 threads accepted (only 4 cores per node)")
	}
}

func TestLUValidatesConfig(t *testing.T) {
	if _, err := RunLU(LUConfig{N: 100, B: 33}); err == nil {
		t.Fatal("indivisible block accepted")
	}
	if _, err := RunLU(LUConfig{N: 0, B: 8}); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestLUNextTouchLosesOnSmallBlocks(t *testing.T) {
	// Paper Table 1: with small blocks, pages are shared between
	// blocks/threads and next-touch ping-pongs; static wins.
	static, err := RunLU(LUConfig{N: 2048, B: 64, Policy: LUStatic})
	if err != nil {
		t.Fatal(err)
	}
	nt, err := RunLU(LUConfig{N: 2048, B: 64, Policy: LUNextTouch})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Duration <= static.Duration {
		t.Fatalf("NT (%v) should lose to static (%v) at B=64", nt.Duration, static.Duration)
	}
	if nt.NTMigrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestLUNextTouchWinsOnLargeBlocks(t *testing.T) {
	// Paper Table 1: at 512-blocks in large matrices, next-touch wins
	// clearly (+26% at 8k, +86% at 16k).
	static, err := RunLU(LUConfig{N: 4096, B: 512, Policy: LUStatic})
	if err != nil {
		t.Fatal(err)
	}
	nt, err := RunLU(LUConfig{N: 4096, B: 512, Policy: LUNextTouch})
	if err != nil {
		t.Fatal(err)
	}
	imp := static.Duration.Seconds()/nt.Duration.Seconds() - 1
	if imp < 0.10 {
		t.Fatalf("NT improvement at 4k/512 = %.1f%%, want >10%%", imp*100)
	}
	// Locality must visibly improve.
	if nt.RemoteFrac >= static.RemoteFrac {
		t.Fatalf("remote fraction did not improve: static=%.2f nt=%.2f",
			static.RemoteFrac, nt.RemoteFrac)
	}
}

func TestLUImprovementMonotonicInBlockSize(t *testing.T) {
	imp := func(b int) float64 {
		static, err := RunLU(LUConfig{N: 2048, B: b, Policy: LUStatic})
		if err != nil {
			t.Fatal(err)
		}
		nt, err := RunLU(LUConfig{N: 2048, B: b, Policy: LUNextTouch})
		if err != nil {
			t.Fatal(err)
		}
		return static.Duration.Seconds()/nt.Duration.Seconds() - 1
	}
	i64, i256, i512 := imp(64), imp(256), imp(512)
	if !(i64 < i256 && i256 < i512) {
		t.Fatalf("improvement not monotonic in block size: %.3f %.3f %.3f", i64, i256, i512)
	}
}

func TestBLAS3CrossoverAt512(t *testing.T) {
	run := func(n int, pol BLAS3Policy) float64 {
		d, err := RunBLAS3(BLAS3Config{N: n, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return d.Seconds()
	}
	// Below the crossover (operands L3-resident): static competitive,
	// NT pays its overhead.
	s128, k128 := run(128, B3Static), run(128, B3KernelNT)
	if k128 < s128*0.8 {
		t.Fatalf("at N=128 NT (%.4f) should not beat static (%.4f) meaningfully", k128, s128)
	}
	// At and beyond 512: migration pays off clearly (paper Fig. 8).
	s512, k512, u512 := run(512, B3Static), run(512, B3KernelNT), run(512, B3UserNT)
	if s512 < 2*k512 {
		t.Fatalf("at N=512 static (%.3f) should be >=2x kernel NT (%.3f)", s512, k512)
	}
	// User NT close to kernel NT at this granularity (whole matrices).
	if u512 > k512*1.25 {
		t.Fatalf("user NT (%.3f) should be close to kernel NT (%.3f) at N=512", u512, k512)
	}
}

func TestBLAS1MigrationNeverHelps(t *testing.T) {
	st, err := RunBLAS1(BLAS1Config{N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	nt, err := RunBLAS1(BLAS1Config{N: 1 << 20, NextTouch: true})
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.5: BLAS1 never improves with migration. Allow a small
	// tolerance band around parity.
	if ratio := st.Seconds() / nt.Seconds(); ratio > 1.12 {
		t.Fatalf("BLAS1 NT improvement %.2fx; paper says none", ratio)
	}
}

func TestMBpsHelper(t *testing.T) {
	if MBps(1e6, 0) != 0 {
		t.Fatal("zero duration should give 0")
	}
	if got := MBps(2e6, 1e9); got != 2 {
		t.Fatalf("MBps = %v", got)
	}
}

func TestMethodStrings(t *testing.T) {
	if Memcpy.String() == "" || MigratePages.String() == "" ||
		MovePagesPatched.String() == "" || MovePagesUnpatched.String() == "" {
		t.Fatal("empty method string")
	}
	if MigMethod(99).String() != "invalid" {
		t.Fatal("invalid method string")
	}
	if UserNTPatched.String() == "" || KernelNT.String() == "" || NTVariant(99).String() != "invalid" {
		t.Fatal("variant strings")
	}
	if LUStatic.String() != "static" || LUNextTouch.String() != "next-touch" {
		t.Fatal("LU policy strings")
	}
	if B3Static.String() == "" || B3KernelNT.String() == "" || B3UserNT.String() == "" ||
		BLAS3Policy(9).String() != "invalid" {
		t.Fatal("BLAS3 policy strings")
	}
}
