package workload

import (
	"testing"
)

// TestPressureDemotionLocalizesHotSet is the acceptance matrix of the
// pressure subsystem: on an overcommitted node, demotion plus any
// migration policy localizes the hot set, while either mechanism
// alone leaves it remote — and ErrNoMemory never reaches the workload
// in any cell.
func TestPressureDemotionLocalizesHotSet(t *testing.T) {
	run := func(pol PhasePolicy, demotion bool) PressureResult {
		t.Helper()
		r, err := Pressure(PressureConfig{Policy: pol, Demotion: demotion})
		if err != nil {
			t.Fatalf("%v demotion=%v: %v", pol, demotion, err)
		}
		if r.Absent != 0 {
			t.Fatalf("%v demotion=%v: %d hot pages absent (allocation failure escaped)",
				pol, demotion, r.Absent)
		}
		return r
	}

	for _, pol := range []PhasePolicy{PhaseSync, PhaseLazyKernel, PhaseAutoNUMA} {
		with := run(pol, true)
		without := run(pol, false)
		// The explicit policies re-issue their whole order every epoch,
		// so they converge fully once demotion frees room. AutoNUMA
		// promotes each page once per arming: orders issued while kswapd
		// is still draining land on the fallback node, and the
		// backed-off scanner may not re-arm them within the run — so its
		// bound is looser (the promotion-vs-demotion interplay in
		// ROADMAP's open items).
		floor := 0.9
		if pol == PhaseAutoNUMA {
			floor = 0.7
		}
		if with.HotLocal < floor {
			t.Errorf("%v with demotion: hot locality %.2f, want >= %.1f", pol, with.HotLocal, floor)
		}
		if without.HotLocal > 0.2 {
			t.Errorf("%v without demotion: hot locality %.2f, want near zero (no room on node 0)",
				pol, without.HotLocal)
		}
		if with.Demoted == 0 {
			t.Errorf("%v with demotion: no pages demoted", pol)
		}
		if with.Dur >= without.Dur {
			t.Errorf("%v: demotion should pay off: %v vs %v", pol, with.Dur, without.Dur)
		}
	}

	// Demotion alone does not localize: without a migration policy the
	// hot set stays on its remote bind node.
	off := run(PhaseStatic, true)
	if off.HotLocal > 0.2 {
		t.Errorf("off with demotion: hot locality %.2f, want near zero (nothing migrates hot pages)",
			off.HotLocal)
	}

	// AutoNUMA's pressure gate avoids the churn sync pays: without
	// demotion it skips the doomed promotions instead of copying pages
	// into the fallback node every epoch.
	autoNo := run(PhaseAutoNUMA, false)
	syncNo := run(PhaseSync, false)
	if autoNo.Auto.PressureSkips == 0 {
		t.Error("autonuma without demotion never engaged the pressure gate")
	}
	if autoNo.Dur >= syncNo.Dur {
		t.Errorf("autonuma's pressure gate should beat sync churn: %v vs %v", autoNo.Dur, syncNo.Dur)
	}
}

// TestPressureDeterminism: identical configs produce identical
// results — the kswapd daemons, watermark walks and demotion batches
// are all deterministic DES citizens.
func TestPressureDeterminism(t *testing.T) {
	run := func() PressureResult {
		r, err := Pressure(PressureConfig{Policy: PhaseAutoNUMA, Demotion: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Dur != b.Dur || a.HotLocal != b.HotLocal || a.Demoted != b.Demoted || a.Stats != b.Stats {
		t.Fatalf("runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPressureConfigValidation: impossible configurations are rejected
// up front instead of deadlocking the simulation.
func TestPressureConfigValidation(t *testing.T) {
	if _, err := Pressure(PressureConfig{Nodes: 1}); err == nil {
		t.Error("single-node pressure accepted")
	}
	if _, err := Pressure(PressureConfig{Policy: PhaseLazyUser}); err == nil {
		t.Error("lazy-user pressure accepted")
	}
	if _, err := Pressure(PressureConfig{Overcommit: 8}); err == nil {
		t.Error("overcommit beyond the whole machine accepted")
	}
	if _, err := Pressure(PressureConfig{HotPages: 4096, Overcommit: 1.2}); err == nil {
		t.Error("hot set larger than the total allocation accepted")
	}
}
