package workload

import (
	"fmt"

	"numamig/internal/cachesim"
	"numamig/internal/core"
	"numamig/internal/kern"
	"numamig/internal/sim"

	numamig "numamig"
)

// BLAS3Policy selects the Figure 8 curve.
type BLAS3Policy int

// Figure 8 policies.
const (
	// B3Static allocates and initializes all matrices on the main
	// thread (first-touch on node 0), the plain-malloc baseline.
	B3Static BLAS3Policy = iota
	// B3KernelNT marks every matrix migrate-on-next-touch before the
	// compute threads start.
	B3KernelNT
	// B3UserNT marks every matrix with the user-space next-touch
	// library.
	B3UserNT
)

func (p BLAS3Policy) String() string {
	switch p {
	case B3Static:
		return "Static Allocation"
	case B3KernelNT:
		return "Next-Touch kernel"
	case B3UserNT:
		return "Next-Touch user-space"
	}
	return "invalid"
}

// BLAS3Config parameterizes a Figure 8 point: `Threads` independent
// C = A*B multiplications of N x N float matrices, one per core.
type BLAS3Config struct {
	N       int
	Threads int // 0 = one per core (16)
	Policy  BLAS3Policy
	Seed    int64
}

// blas3Phases splits each multiplication into phases so concurrent
// threads share bandwidth realistically over time.
const blas3Phases = 8

// RunBLAS3 executes one Figure 8 point and returns the execution time of
// the slowest thread (the paper reports the time of the concurrent run).
func RunBLAS3(cfg BLAS3Config) (sim.Time, error) {
	if cfg.N <= 0 {
		return 0, fmt.Errorf("workload: bad BLAS3 N=%d", cfg.N)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sys := numamig.New(numamig.Config{Seed: cfg.Seed})
	if cfg.Threads == 0 {
		cfg.Threads = sys.Machine.NumCores()
	}
	cache := cachesim.NewGroup(sys.Machine.NumNodes(), sys.Machine.Nodes[0].L3Bytes)

	matBytes := int64(cfg.N) * int64(cfg.N) * luElem
	var userNT *core.UserNT
	var kernelNT *core.KernelNT
	switch cfg.Policy {
	case B3UserNT:
		userNT = sys.NewUserNT(true)
	case B3KernelNT:
		kernelNT = sys.NewKernelNT()
	}

	var dur sim.Time
	err := sys.Run(func(master *kern.Task) {
		// Main thread allocates and initializes all matrices:
		// first-touch places everything on node 0.
		bufs := make([][3]*numamig.Buffer, cfg.Threads)
		for i := range bufs {
			for m := 0; m < 3; m++ {
				b := numamig.MustAlloc(master, matBytes, numamig.FirstTouch())
				if err := b.Prefault(master); err != nil {
					panic(err)
				}
				bufs[i][m] = b
			}
		}
		// Mark per policy.
		for i := range bufs {
			for m := 0; m < 3; m++ {
				switch cfg.Policy {
				case B3KernelNT:
					if _, err := kernelNT.Mark(master, bufs[i][m].Region()); err != nil {
						panic(err)
					}
				case B3UserNT:
					if err := userNT.Mark(master, bufs[i][m].Region()); err != nil {
						panic(err)
					}
				}
			}
		}
		start := master.P.Now()
		team := sys.TeamOn(func() []numamig.CoreID {
			cs := make([]numamig.CoreID, cfg.Threads)
			for i := range cs {
				cs[i] = numamig.CoreID(i % sys.Machine.NumCores())
			}
			return cs
		}()...)
		team.Parallel(master, func(t *kern.Task, tid int) {
			blas3Thread(t, sys, cache, bufs[tid], cfg.N)
		})
		dur = master.P.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return dur, nil
}

// blas3Thread models one reference C = A*B multiplication: per phase,
// fault the operands in (running next-touch migrations on first touch),
// then charge compute plus traffic. The traffic volume depends on
// whether the three operands fit the socket's shared L3: resident
// operands cost their footprint once; a thrashing B operand is re-read
// column-strided, costing ~N^3 * 4 bytes (naive row-major DGEMM).
func blas3Thread(t *kern.Task, sys *numamig.System, cache *cachesim.Group, m [3]*numamig.Buffer, n int) {
	nf := float64(n)
	matBytes := int64(n) * int64(n) * luElem
	rects := [3]kern.Rect{}
	for i, b := range m {
		rects[i] = kern.Rect{Base: b.Base, RowBytes: matBytes, Stride: matBytes, Rows: 1}
	}
	// Fault everything in up front (this is where lazy migration runs;
	// the user-space flavour migrates each whole matrix on its first
	// touch).
	for i := range rects {
		if _, err := t.FaultInRect(rects[i], i == 2); err != nil {
			panic(err)
		}
	}
	// Traffic volume: the socket's threads compete for the shared L3.
	// When their collective operand demand fits, only compulsory misses
	// remain; as demand overflows, the column-strided B operand degrades
	// sharply toward one cache-line fill per inner-loop step (~N^3 * 4
	// bytes). The cubic ramp between the regimes is calibrated against
	// the paper's 512 crossover (Fig. 8).
	sock := int(t.Node())
	threadsOnSocket := 0
	for _, c := range sys.Machine.Nodes[sock].Cores {
		_ = c
		threadsOnSocket++
	}
	demand := float64(threadsOnSocket) * 3 * float64(matBytes)
	l3 := float64(sys.Machine.Nodes[sock].L3Bytes)
	compulsory := 3 * float64(matBytes)
	var volume float64
	if demand <= l3 {
		volume = compulsory
	} else {
		ratio := demand / l3
		volume = compulsory * ratio * ratio * ratio
		if max := nf * nf * nf * luElem; volume > max {
			volume = max
		}
	}
	_ = cache
	computePerPhase := sim.FromSeconds(2 * nf * nf * nf / sys.Kernel.P.ComputeRate / blas3Phases)
	for phase := 0; phase < blas3Phases; phase++ {
		t.P.Sleep(computePerPhase)
		for i := range rects {
			share := volume / blas3Phases / 3
			t.TrafficRectVolume(rects[i], share, kern.Blocked, i == 2)
		}
	}
}

// BLAS1Config parameterizes the §4.5 BLAS1 check: `Threads` independent
// DAXPY streams of n-float vectors.
type BLAS1Config struct {
	N       int // vector length in floats
	Threads int
	// NextTouch migrates vectors to their threads before streaming;
	// false keeps the interleaved static placement.
	NextTouch bool
	Seed      int64
	Repeats   int // sweeps over the vectors (default 4)
}

// RunBLAS1 returns the execution time of the concurrent DAXPY sweeps.
// The paper observes migration never helps here: streaming hides remote
// latency, so the balanced interleaved placement is already as good as
// local placement, and migration only adds cost.
func RunBLAS1(cfg BLAS1Config) (sim.Time, error) {
	if cfg.N <= 0 {
		return 0, fmt.Errorf("workload: bad BLAS1 N=%d", cfg.N)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 4
	}
	sys := numamig.New(numamig.Config{Seed: cfg.Seed})
	if cfg.Threads == 0 {
		cfg.Threads = sys.Machine.NumCores()
	}
	vecBytes := int64(cfg.N) * luElem
	var kernelNT *core.KernelNT
	if cfg.NextTouch {
		kernelNT = sys.NewKernelNT()
	}
	var dur sim.Time
	err := sys.Run(func(master *kern.Task) {
		nodes := make([]numamig.NodeID, sys.Machine.NumNodes())
		for i := range nodes {
			nodes[i] = numamig.NodeID(i)
		}
		bufs := make([][2]*numamig.Buffer, cfg.Threads)
		for i := range bufs {
			for v := 0; v < 2; v++ {
				b := numamig.MustAlloc(master, vecBytes, numamig.Interleave(nodes...))
				if err := b.Prefault(master); err != nil {
					panic(err)
				}
				bufs[i][v] = b
				if cfg.NextTouch {
					if _, err := kernelNT.Mark(master, b.Region()); err != nil {
						panic(err)
					}
				}
			}
		}
		start := master.P.Now()
		team := sys.TeamOn(func() []numamig.CoreID {
			cs := make([]numamig.CoreID, cfg.Threads)
			for i := range cs {
				cs[i] = numamig.CoreID(i % sys.Machine.NumCores())
			}
			return cs
		}()...)
		team.Parallel(master, func(t *kern.Task, tid int) {
			x, y := bufs[tid][0], bufs[tid][1]
			flops := 2 * float64(cfg.N)
			for rep := 0; rep < cfg.Repeats; rep++ {
				if err := t.AccessRange(x.Base, x.Size, kern.Stream, false); err != nil {
					panic(err)
				}
				if err := t.AccessRange(y.Base, y.Size, kern.Stream, true); err != nil {
					panic(err)
				}
				t.P.Sleep(sim.FromSeconds(flops / sys.Kernel.P.ComputeRate))
			}
		})
		dur = master.P.Now() - start
	})
	if err != nil {
		return 0, err
	}
	return dur, nil
}
