package workload

import (
	"testing"

	"numamig/internal/telemetry"
	"numamig/internal/topology"

	numamig "numamig"
)

// TestServeResidencyDifferential replays the TenantResident event
// stream against an independent model and the physical allocator's own
// gauges. The ledger promises (see tenancy.TopicTenantResident) that it
// publishes only at instants where mem.Phys is consistent: a Charge
// lands after the frame is allocated, a Release after it is freed, a
// Move after the destination is allocated and the source freed — and
// the serve driver's admission thread allocates nothing itself. So at
// every single event, the replayed per-node tenant residency must equal
// Phys.Stats(node).Allocated exactly, on every node, and the event's
// Value field must equal the replayed per-tenant total. Any migration
// path that moves a tenant page without telling the ledger, or any
// ledger path that fires mid-operation, breaks this equality.
func TestServeResidencyDifferential(t *testing.T) {
	cfg := ServeConfig{FastNodes: 2, SlowNodes: 1, Seed: 1}
	nodes := topology.NodeID(cfg.FastNodes + cfg.SlowNodes)

	perNode := make(map[topology.NodeID]int)
	perTenant := make(map[int]int)
	compares, fails := 0, 0
	numamig.SetSystemObserver(func(sys *numamig.System) {
		sys.Bus().Subscribe(telemetry.TopicTenantResident, func(ev telemetry.Event) {
			if ev.Dst != telemetry.NoNode {
				// An atomic move: src -> dst, per-tenant total unchanged.
				perNode[ev.Node] -= ev.Pages
				perNode[ev.Dst] += ev.Pages
			} else {
				// A signed charge/release delta on one node.
				perNode[ev.Node] += ev.Pages
				perTenant[ev.Task] += ev.Pages
			}
			if want := perTenant[ev.Task]; int(ev.Value) != want {
				fails++
				if fails <= 5 {
					t.Errorf("tenant %d total drifted at t=%d: event says %d, replay says %d",
						ev.Task, ev.Time, int(ev.Value), want)
				}
			}
			compares++
			for n := topology.NodeID(0); n < nodes; n++ {
				if got, want := sys.Kernel.Phys.Stats(n).Allocated, int64(perNode[n]); got != want {
					fails++
					if fails <= 5 {
						t.Errorf("node %d gauge diverged at t=%d: Phys.Allocated %d, replayed tenant residency %d",
							n, ev.Time, got, want)
					}
				}
			}
		})
	})
	defer numamig.SetSystemObserver(nil)

	r, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails > 5 {
		t.Errorf("%d further divergences suppressed", fails-5)
	}
	if compares == 0 {
		t.Fatal("no TenantResident events observed — the differential compared nothing")
	}
	t.Logf("replayed %d residency events", compares)
	for n := topology.NodeID(0); n < nodes; n++ {
		if perNode[n] != 0 {
			t.Errorf("node %d ends with %d replayed resident pages, want 0 (all tenants exited)", n, perNode[n])
		}
	}
	for id, total := range perTenant {
		if total != 0 {
			t.Errorf("tenant %d ends with %d replayed resident pages, want 0", id, total)
		}
	}
	if r.CapViolations != 0 || r.ResidualPages != 0 || r.LeakedPages != 0 {
		t.Errorf("run invariants broken: capViolations=%d residual=%d leaked=%d, want 0",
			r.CapViolations, r.ResidualPages, r.LeakedPages)
	}
}
