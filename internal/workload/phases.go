package workload

import (
	"fmt"

	"numamig/internal/autonuma"
	"numamig/internal/core"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"

	numamig "numamig"
)

// The phase-shifting workload: one compute thread owns a buffer whose
// access locus rotates across nodes mid-run — the scheduler moves the
// thread from node to node and it re-sweeps the whole workset from
// each. It is the workload class that separates the paper's explicit
// next-touch policies (which need a runtime hint at every phase
// boundary) from automatic NUMA balancing (which discovers each shift
// from hinting faults alone) and from static placement (which pays the
// full remote penalty for every phase after the first).

// PhasePolicy selects the placement machinery driving the workload.
type PhasePolicy int

// Phase policies.
const (
	// PhaseStatic leaves pages where first-touch put them: every phase
	// after the first runs fully remote.
	PhaseStatic PhasePolicy = iota
	// PhaseSync migrates the whole workset with move_pages at every
	// thread move (core.Manager Sync mode).
	PhaseSync
	// PhaseLazyKernel marks the workset migrate-on-next-touch (madvise)
	// at every thread move.
	PhaseLazyKernel
	// PhaseLazyUser marks the workset with the user-space next-touch
	// library at every thread move.
	PhaseLazyUser
	// PhaseAutoNUMA uses no hints at all: the autonuma scanner and
	// hinting faults discover each phase shift.
	PhaseAutoNUMA
)

func (p PhasePolicy) String() string {
	switch p {
	case PhaseStatic:
		return "off"
	case PhaseSync:
		return "sync"
	case PhaseLazyKernel:
		return "lazy-kernel"
	case PhaseLazyUser:
		return "lazy-user"
	case PhaseAutoNUMA:
		return "autonuma"
	}
	return "invalid"
}

// PhasePolicies lists every policy, in grid order.
func PhasePolicies() []PhasePolicy {
	return []PhasePolicy{PhaseStatic, PhaseSync, PhaseLazyKernel, PhaseLazyUser, PhaseAutoNUMA}
}

// PhasePolicyOf parses a policy name.
func PhasePolicyOf(s string) (PhasePolicy, error) {
	for _, p := range PhasePolicies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown phase policy %q", s)
}

// PhaseShiftConfig parameterizes one run.
type PhaseShiftConfig struct {
	// Nodes is the machine size (0: the paper's 4).
	Nodes int
	// Cores is cores per node (0: 4).
	Cores int
	// Pages is the buffer size in 4 KiB pages (0: 1024).
	Pages int
	// Hops is the number of phase shifts (thread moves). 1 reproduces
	// the paper's single-rotation scenario (one move to the farthest
	// node); 0 means a full rotation visiting every non-home node.
	Hops int
	// Sweeps is the number of whole-buffer sweeps per phase (0: 16).
	Sweeps int
	// Seed drives the simulation (0: 1).
	Seed int64
	// Policy selects the placement machinery.
	Policy PhasePolicy
	// Auto overrides balancer knobs for PhaseAutoNUMA (zero: defaults
	// from model.Params).
	Auto autonuma.Config
}

func (c PhaseShiftConfig) withDefaults() PhaseShiftConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Pages == 0 {
		c.Pages = 1024
	}
	if c.Hops == 0 {
		c.Hops = c.Nodes - 1
	}
	if c.Sweeps == 0 {
		c.Sweeps = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// targets returns the node visited at each hop: the farthest node for
// a single rotation, else a rotation cycling over the non-home nodes.
func (c PhaseShiftConfig) targets() []topology.NodeID {
	if c.Nodes < 2 {
		return nil
	}
	if c.Hops == 1 {
		return []topology.NodeID{topology.NodeID(c.Nodes - 1)}
	}
	out := make([]topology.NodeID, c.Hops)
	for h := range out {
		out[h] = topology.NodeID(h%(c.Nodes-1) + 1)
	}
	return out
}

// PhaseShiftResult is one run's outcome.
type PhaseShiftResult struct {
	// Dur is the virtual time from the first thread move to the end of
	// the last sweep.
	Dur sim.Time
	// Bytes is the application bytes swept over the measured phase.
	Bytes int64
	// Hist is the final buffer node histogram; Absent counts
	// non-present pages.
	Hist   []int
	Absent int
	// OnFinal is the fraction of pages resident on the final phase's
	// node when the run ended.
	OnFinal float64
	// Stats snapshots the kernel counters; Auto the balancer's (zero
	// unless Policy == PhaseAutoNUMA).
	Stats      kern.Stats
	Auto       autonuma.Stats
	MigratedMB float64
}

// PhaseShift builds a fresh deterministic System and runs the workload.
func PhaseShift(cfg PhaseShiftConfig) (PhaseShiftResult, error) {
	cfg = cfg.withDefaults()
	var res PhaseShiftResult
	sys := numamig.New(numamig.Config{Nodes: cfg.Nodes, CoresPerNode: cfg.Cores, Seed: cfg.Seed})
	size := int64(cfg.Pages) * model.PageSize

	var mgr *core.Manager
	var bal *autonuma.Balancer
	switch cfg.Policy {
	case PhaseSync:
		mgr = sys.NewManager(core.Sync, true)
	case PhaseLazyKernel:
		mgr = sys.NewManager(core.LazyKernel, true)
	case PhaseLazyUser:
		mgr = sys.NewManager(core.LazyUser, true)
	case PhaseAutoNUMA:
		bal = sys.EnableAutoNUMA(cfg.Auto)
	}

	targets := cfg.targets()
	err := sys.Run(func(t *numamig.Task) {
		buf := numamig.MustAlloc(t, size, numamig.Bind(0))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		if mgr != nil {
			mgr.Attach(t, buf.Region())
		}
		start := t.P.Now()
		for _, node := range targets {
			core0 := sys.Machine.Nodes[node].Cores[0]
			if mgr != nil {
				if err := mgr.MoveThread(t, core0); err != nil {
					panic(err)
				}
			} else {
				t.MigrateTo(core0)
			}
			for s := 0; s < cfg.Sweeps; s++ {
				if err := buf.Access(t, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		}
		res.Dur = t.P.Now() - start
		res.Hist, res.Absent = buf.NodeHistogram(t)
		if len(targets) > 0 && cfg.Pages > 0 {
			res.OnFinal = float64(res.Hist[targets[len(targets)-1]]) / float64(cfg.Pages)
		}
	})
	if err != nil {
		return res, err
	}
	res.Bytes = int64(cfg.Hops) * int64(cfg.Sweeps) * size
	res.Stats = sys.Stats()
	res.MigratedMB = sys.MigratedBytes() / 1e6
	if bal != nil {
		res.Auto = bal.Stats
	}
	return res, nil
}
