package workload

import (
	"fmt"

	"numamig/internal/cachesim"
	"numamig/internal/kern"
	"numamig/internal/omp"
	"numamig/internal/sim"
	"numamig/internal/vm"

	numamig "numamig"
)

// LUPolicy selects the Table 1 data-placement strategy.
type LUPolicy int

// LU placement policies.
const (
	// LUStatic keeps the initial interleaved allocation for the whole
	// factorization (the best static policy per §4.5).
	LUStatic LUPolicy = iota
	// LUNextTouch re-marks the trailing submatrix Migrate-on-next-touch
	// at the beginning of every iteration (the paper's madvise hook).
	LUNextTouch
)

func (p LUPolicy) String() string {
	if p == LUStatic {
		return "static"
	}
	return "next-touch"
}

// LUConfig parameterizes one Table 1 cell.
type LUConfig struct {
	N       int // matrix dimension (N x N floats)
	B       int // block dimension
	Threads int // OpenMP threads (paper: 16); 0 = all cores
	Policy  LUPolicy
	Seed    int64
}

// LUResult reports one run.
type LUResult struct {
	Config       LUConfig
	Duration     sim.Time
	NTMigrations uint64
	RemoteFrac   float64 // fraction of application bytes served remotely
}

const luElem = 4 // float32 elements, "NxN floats" per the paper

// luDriver walks the block-task structure of a right-looking blocked LU
// (the same panel / block-row / trailing-update decomposition as
// linalg.BlockedLU, which verifies the numerics of that structure) over
// the simulated memory system, with per-socket L3 caches gating traffic.
type luDriver struct {
	sys   *numamig.System
	cfg   LUConfig
	base  vm.Addr
	nb    int
	cache *cachesim.Group
	team  *omp.Team
}

// blockRect returns the strided rectangle of block (bi, bj).
func (d *luDriver) blockRect(bi, bj int) kern.Rect {
	off := int64(bi*d.cfg.B)*int64(d.cfg.N)*luElem + int64(bj*d.cfg.B)*luElem
	return kern.Rect{
		Base:     d.base + vm.Addr(off),
		RowBytes: int64(d.cfg.B) * luElem,
		Stride:   int64(d.cfg.N) * luElem,
		Rows:     d.cfg.B,
	}
}

// blockRef names one operand of a kernel task.
type blockRef struct {
	bi, bj int
	write  bool
}

// accessBlocks is the memory model of one BLAS task over the given
// operand blocks: fault every block in (running next-touch migrations),
// then charge traffic. Blocks resident in the socket's shared L3 cost
// nothing beyond their faults; missing blocks cost at least their
// footprint. When the socket's collective operand demand overflows the
// L3, the column-strided operand reloads inflate the volume cubically up
// to ~2*B^3*4 bytes (reference-BLAS thrashing, same model as the Fig. 8
// driver) — this is what makes the paper's large-block factorizations
// memory-bound and migration-sensitive.
func (d *luDriver) accessBlocks(t *kern.Task, blocks ...blockRef) {
	blockBytes := int64(d.cfg.B) * int64(d.cfg.B) * luElem
	sock := int(t.Node())
	cache := d.cache.Node(sock)
	var missBytes float64
	for _, b := range blocks {
		r := d.blockRect(b.bi, b.bj)
		if _, err := t.FaultInRect(r, b.write); err != nil {
			panic(err)
		}
		id := uint64(b.bi*d.nb + b.bj)
		if !cache.Access(id, blockBytes) {
			missBytes += float64(blockBytes)
		}
		if b.write {
			for n := 0; n < d.sys.Machine.NumNodes(); n++ {
				if n != sock {
					d.cache.Node(n).Invalidate(uint64(b.bi*d.nb + b.bj))
				}
			}
		}
	}
	if missBytes == 0 {
		return
	}
	// Collective cache pressure on this socket: every core runs a task
	// over three blocks of its own.
	threadsOnSocket := (d.cfg.Threads + d.sys.Machine.NumNodes() - 1) / d.sys.Machine.NumNodes()
	demand := float64(threadsOnSocket) * 3 * float64(blockBytes)
	l3 := float64(d.sys.Machine.Nodes[sock].L3Bytes)
	volume := missBytes
	if demand > l3 {
		ratio := demand / l3
		volume = missBytes * ratio * ratio * ratio
		bf := float64(d.cfg.B)
		if max := 2 * bf * bf * bf * luElem; volume > max {
			volume = max
		}
	}
	// Distribute the volume over the operands' page placements.
	share := volume / float64(len(blocks))
	for _, b := range blocks {
		t.TrafficRectVolume(d.blockRect(b.bi, b.bj), share, kern.Blocked, b.write)
	}
}

// compute charges flops of useful work at the per-core rate.
func (d *luDriver) compute(t *kern.Task, flops float64) {
	t.P.Sleep(sim.FromSeconds(flops / d.sys.Kernel.P.ComputeRate))
}

// RunLU executes one Table 1 configuration and returns its simulated
// wall time.
func RunLU(cfg LUConfig) (LUResult, error) {
	if cfg.N <= 0 || cfg.B <= 0 || cfg.N%cfg.B != 0 {
		return LUResult{}, fmt.Errorf("workload: bad LU config N=%d B=%d", cfg.N, cfg.B)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sys := numamig.New(numamig.Config{Seed: cfg.Seed})
	if cfg.Threads == 0 {
		cfg.Threads = sys.Machine.NumCores()
	}
	d := &luDriver{
		sys:   sys,
		cfg:   cfg,
		nb:    cfg.N / cfg.B,
		cache: cachesim.NewGroup(sys.Machine.NumNodes(), sys.Machine.Nodes[0].L3Bytes),
	}
	teamCores := make([]numamig.CoreID, cfg.Threads)
	for i := range teamCores {
		teamCores[i] = numamig.CoreID(i % sys.Machine.NumCores())
	}
	d.team = sys.TeamOn(teamCores...)

	matBytes := int64(cfg.N) * int64(cfg.N) * luElem
	var start, end sim.Time
	err := sys.Run(func(t *numamig.Task) {
		// Initial allocation: interleaved across all nodes (the best
		// static policy for this bandwidth-bound problem, §4.5).
		nodes := make([]numamig.NodeID, sys.Machine.NumNodes())
		for i := range nodes {
			nodes[i] = numamig.NodeID(i)
		}
		buf := numamig.MustAlloc(t, matBytes, numamig.Interleave(nodes...))
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		d.base = buf.Base

		start = t.P.Now()
		d.factorize(t)
		end = t.P.Now()
	})
	if err != nil {
		return LUResult{}, err
	}
	st := sys.Stats()
	res := LUResult{
		Config:       cfg,
		Duration:     end - start,
		NTMigrations: st.NTMigrations,
	}
	if tot := st.LocalBytes + st.RemoteBytes; tot > 0 {
		res.RemoteFrac = st.RemoteBytes / tot
	}
	return res, nil
}

// factorize runs the blocked right-looking LU task graph: per iteration
// k, (optionally) re-mark the trailing submatrix next-touch, factor the
// panel, then update the block row/column and GEMM-update the trailing
// blocks in OpenMP parallel-for loops (§4.5).
func (d *luDriver) factorize(master *kern.Task) {
	cfg := d.cfg
	nb := d.nb
	b := float64(cfg.B)
	for k := 0; k < nb; k++ {
		if cfg.Policy == LUNextTouch {
			// The madvise hook at the beginning of each iteration: mark
			// everything from the current pivot row down (covers the
			// whole trailing submatrix).
			off := int64(k*cfg.B) * int64(cfg.N) * luElem
			length := int64(cfg.N-k*cfg.B) * int64(cfg.N) * luElem
			if _, err := master.Madvise(d.base+vm.Addr(off), length, kern.AdvMigrateOnNextTouch); err != nil {
				panic(err)
			}
		}
		// Panel factorization: pivot block plus the blocks below it,
		// done by the master (the serial fraction of the algorithm).
		d.accessBlocks(master, blockRef{k, k, true})
		d.compute(master, (2.0/3.0)*b*b*b)
		for i := k + 1; i < nb; i++ {
			d.accessBlocks(master, blockRef{i, k, true}, blockRef{k, k, false})
			d.compute(master, b*b*b/2)
		}
		if k+1 >= nb {
			break
		}
		// Block-row update (TRSM): U(k,j) for j > k, in parallel.
		d.team.ParallelFor(master, k+1, nb, omp.Static{}, func(t *kern.Task, j int) {
			d.accessBlocks(t, blockRef{k, k, false}, blockRef{k, j, true})
			d.compute(t, b*b*b)
		})
		// Trailing update (GEMM): C(i,j) -= L(i,k)*U(k,j), parallel over
		// block columns (the paper's "for loops" with a parallel-for
		// pragma). Row-major storage means a 4 KiB page holds
		// PageSize/(B*4) horizontally-consecutive blocks: below B=1024
		// neighbouring j-columns share pages, and below ~512 they land
		// in different threads' chunks — touching one block then
		// migrates lines of its neighbours too, the ping-pong behind the
		// paper's 512 block-size threshold. GOMP static chunking over
		// the shrinking j range also drifts ownership between
		// iterations, which the next-touch hook repairs.
		d.team.ParallelFor(master, k+1, nb, omp.Static{}, func(t *kern.Task, j int) {
			d.accessBlocks(t, blockRef{k, j, false})
			for i := k + 1; i < nb; i++ {
				d.accessBlocks(t, blockRef{i, k, false}, blockRef{i, j, true})
				d.compute(t, 2*b*b*b)
			}
		})
	}
}
