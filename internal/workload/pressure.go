package workload

import (
	"fmt"

	"numamig/internal/autonuma"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"

	numamig "numamig"
)

// The pressure workload: an overcommitted, imbalanced machine — the
// regime where migration policy choices matter most. One compute
// thread on node 0 first touches a cold set sized past the node's
// capacity (an Imbalance fraction of it preferred onto node 0, the
// rest interleaved over the other nodes), then allocates a hot working
// set bound to the farthest node and sweeps it repeatedly from node 0.
// Localizing the hot set needs both halves of the pressure subsystem:
// the kswapd-style demotion daemons must evict cold pages off node 0
// to make room, and a migration policy (sync move_pages, kernel
// next-touch marks, or AutoNUMA) must pull the hot pages in. Either
// mechanism alone is not enough: demotion without a policy frees room
// nobody uses; a policy without demotion migrates into a node at its
// watermarks, so the placement fallback lands the "migrated" pages
// right back on a remote node (churn), and AutoNUMA's pressure gate
// skips the promotions outright.

// PressureConfig parameterizes one overcommitted run. The policy set
// reuses PhasePolicy minus PhaseLazyUser (the user-space library's
// SIGSEGV protocol is orthogonal to pressure).
type PressureConfig struct {
	// Nodes is the machine size (0: 4); must be >= 2.
	Nodes int
	// Cores is cores per node (0: 4).
	Cores int
	// NodePages is per-node memory in 4 KiB frames (0: 1024 = 4 MiB).
	NodePages int
	// Overcommit sizes the total allocation as a multiple of one
	// node's capacity (0: 1.5).
	Overcommit float64
	// Imbalance is the fraction of the cold set preferred onto node 0
	// (0: 1.0); the rest interleaves over the other nodes.
	Imbalance float64
	// HotPages is the hot working-set size (0: NodePages/4).
	HotPages int
	// Epochs is the number of measure epochs; each applies the policy
	// once and sweeps the hot set twice (0: 12).
	Epochs int
	// Seed drives the simulation (0: 1).
	Seed int64
	// Policy selects the hot-set migration machinery.
	Policy PhasePolicy
	// Demotion starts the kswapd-style demotion daemons.
	Demotion bool
	// Auto overrides balancer knobs for PhaseAutoNUMA.
	Auto autonuma.Config
}

func (c PressureConfig) withDefaults() PressureConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.NodePages == 0 {
		c.NodePages = 1024
	}
	if c.Overcommit == 0 {
		c.Overcommit = 1.5
	}
	if c.Imbalance == 0 {
		c.Imbalance = 1.0
	}
	if c.HotPages == 0 {
		c.HotPages = c.NodePages / 4
	}
	if c.Epochs == 0 {
		c.Epochs = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// PressureResult is one run's outcome.
type PressureResult struct {
	// Dur is the virtual time of the measured epochs (after setup).
	Dur sim.Time
	// Bytes is the hot bytes swept over the measured epochs.
	Bytes int64
	// HotHist is the final hot-set node histogram; Absent counts
	// non-present hot pages (must be 0: ErrNoMemory never reaches the
	// workload).
	HotHist []int
	Absent  int
	// HotLocal is the fraction of hot pages resident on the compute
	// thread's node when the run ended.
	HotLocal float64
	// Demoted is the number of pages the kswapd daemons demoted.
	Demoted uint64
	// Stats snapshots the kernel counters; Auto the balancer's.
	Stats      kern.Stats
	Auto       autonuma.Stats
	MigratedMB float64
}

// Pressure builds a fresh deterministic overcommitted System and runs
// the workload.
func Pressure(cfg PressureConfig) (PressureResult, error) {
	cfg = cfg.withDefaults()
	var res PressureResult
	if cfg.Nodes < 2 {
		return res, fmt.Errorf("workload: pressure needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Policy == PhaseLazyUser {
		return res, fmt.Errorf("workload: pressure does not support the lazy-user policy")
	}
	total := int(cfg.Overcommit * float64(cfg.NodePages))
	cold := total - cfg.HotPages
	if cold < 0 {
		return res, fmt.Errorf("workload: hot set (%d pages) exceeds total allocation (%d pages)",
			cfg.HotPages, total)
	}
	if total > cfg.Nodes*cfg.NodePages {
		return res, fmt.Errorf("workload: overcommit %.2f does not fit the machine (%d > %d pages)",
			cfg.Overcommit, total, cfg.Nodes*cfg.NodePages)
	}
	sys := numamig.New(numamig.Config{
		Nodes:        cfg.Nodes,
		CoresPerNode: cfg.Cores,
		MemPerNode:   int64(cfg.NodePages) * model.PageSize,
		Seed:         cfg.Seed,
		Demotion:     cfg.Demotion,
	})

	var nt *numamig.KernelNT
	var bal *autonuma.Balancer
	switch cfg.Policy {
	case PhaseLazyKernel:
		nt = sys.NewKernelNT()
	case PhaseAutoNUMA:
		bal = sys.EnableAutoNUMA(cfg.Auto)
	}

	others := make([]topology.NodeID, 0, cfg.Nodes-1)
	for n := 1; n < cfg.Nodes; n++ {
		others = append(others, topology.NodeID(n))
	}
	err := sys.Run(func(t *numamig.Task) {
		// Cold set: fills node 0 past its watermarks (the placement
		// layer spills the overflow to the other nodes), touched once.
		coldLocal := int(cfg.Imbalance * float64(cold))
		var coldBufs []*numamig.Buffer
		if coldLocal > 0 {
			coldBufs = append(coldBufs,
				numamig.MustAlloc(t, int64(coldLocal)*model.PageSize, numamig.Preferred(0)))
		}
		if rest := cold - coldLocal; rest > 0 {
			coldBufs = append(coldBufs,
				numamig.MustAlloc(t, int64(rest)*model.PageSize, numamig.Interleave(others...)))
		}
		for _, b := range coldBufs {
			if err := b.Prefault(t); err != nil {
				panic(err)
			}
		}
		// Hot set: bound to the farthest node, so localizing it requires
		// pulling pages into whatever room demotion frees on node 0.
		far := topology.NodeID(cfg.Nodes - 1)
		hot := numamig.MustAlloc(t, int64(cfg.HotPages)*model.PageSize, numamig.Bind(far))
		if err := hot.Prefault(t); err != nil {
			panic(err)
		}

		start := t.P.Now()
		for e := 0; e < cfg.Epochs; e++ {
			switch cfg.Policy {
			case PhaseSync:
				if err := hot.MoveTo(t, 0, true); err != nil {
					panic(err)
				}
			case PhaseLazyKernel:
				if _, err := nt.Mark(t, hot.Region()); err != nil {
					panic(err)
				}
			}
			for s := 0; s < 2; s++ {
				if err := hot.Access(t, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		}
		res.Dur = t.P.Now() - start
		res.HotHist, res.Absent = hot.NodeHistogram(t)
		if cfg.HotPages > 0 {
			res.HotLocal = float64(res.HotHist[t.Node()]) / float64(cfg.HotPages)
		}
	})
	if err != nil {
		return res, err
	}
	res.Bytes = int64(cfg.Epochs) * 2 * int64(cfg.HotPages) * model.PageSize
	res.Stats = sys.Stats()
	res.Demoted = res.Stats.PagesDemoted
	res.MigratedMB = sys.MigratedBytes() / 1e6
	if bal != nil {
		res.Auto = bal.Stats
	}
	return res, nil
}
