package workload

import (
	"fmt"

	"numamig/internal/autonuma"
	"numamig/internal/control"
	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"

	numamig "numamig"
)

// The tiered workload: the explicit CXL slow-memory tier end to end.
// The machine is FastNodes DRAM nodes plus SlowNodes CXL expander
// nodes (model.Params.NodeTier + CXLTier bandwidth/latency classes on
// the fluid network). One compute thread on node 0 owns a working
// buffer that overcommits its node; the placement layer spills the
// overflow across the DRAM tier — never onto CXL, which is
// demotion-only — and the kswapd daemons demote what goes cold to the
// next tier down, populating the slow tier. The thread then turns hot
// on a window of the demoted region: AutoNUMA hinting faults promote
// the window back up to DRAM, throttled by the per-node promotion
// token bucket (Params.PromoteRateLimitMBps), so the window's
// slow-tier residency falls at the configured rate while
// kern.Stats.PromoteRateLimited counts the throttled orders.
//
// Two invariants ride along and are checked by the exp runner:
//
//   - demotion-only allocation: across the whole run, the only frames
//     *allocated* (rather than migrated) on slow-tier nodes belong to
//     the one buffer explicitly bound to the CXL nodes
//     (DirectSlowAllocs == SlowBoundPages); everything else arrives by
//     demotion;
//   - the strict-bind nodemask gate: a Bind(0) ballast must never be
//     observed outside node 0, however hard the node is pressed.

// TieredConfig parameterizes one explicit-slow-tier run.
type TieredConfig struct {
	// FastNodes is the DRAM node count (0: 2); slow nodes are appended
	// after them, so node ids [0, FastNodes) are DRAM.
	FastNodes int
	// SlowNodes is the CXL node count (0: 1). FastNodes+SlowNodes must
	// be a topology.Grid-supported machine size (<= 8).
	SlowNodes int
	// Cores is cores per node (0: 4).
	Cores int
	// NodePages is per-DRAM-node memory in 4 KiB frames (0: 1024).
	NodePages int
	// SlowRatio sizes each CXL node as a multiple of NodePages
	// (0: 1.0) — the DRAM:CXL capacity ratio axis.
	SlowRatio float64
	// RateLimitMBps is Params.PromoteRateLimitMBps (0: unlimited).
	RateLimitMBps float64
	// Adaptive replaces the static rate limit with the closed-loop
	// controller (internal/control): the limit starts at the
	// controller's floor and widens only on observed rate-limit drops.
	// RateLimitMBps is ignored when set.
	Adaptive bool
	// Hysteresis enables promotion hysteresis (the model default);
	// false zeroes Params.PromotionHysteresisPeriods.
	Hysteresis bool
	// DemoteEpochs is the cold phase: sweeps of a small hot keepalive
	// while the untouched working buffer ages onto the slow tier
	// (0: 12).
	DemoteEpochs int
	// PromoteEpochs is the hot phase: sweeps of the window over the
	// demoted region, promoting it back up (0: 12).
	PromoteEpochs int
	// Sweeps is whole-buffer sweeps per epoch (0: 4).
	Sweeps int
	// Seed drives the simulation (0: 1).
	Seed int64
	// Auto overrides balancer knobs (zero: defaults from model.Params).
	Auto autonuma.Config
}

func (c TieredConfig) withDefaults() TieredConfig {
	if c.FastNodes == 0 {
		c.FastNodes = 2
	}
	if c.SlowNodes == 0 {
		c.SlowNodes = 1
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.NodePages == 0 {
		c.NodePages = 1024
	}
	if c.SlowRatio == 0 {
		c.SlowRatio = 1.0
	}
	if c.DemoteEpochs == 0 {
		c.DemoteEpochs = 12
	}
	if c.PromoteEpochs == 0 {
		c.PromoteEpochs = 12
	}
	if c.Sweeps == 0 {
		c.Sweeps = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TieredResult is one run's outcome.
type TieredResult struct {
	// Dur is the virtual time of the promote phase; Bytes the bytes
	// swept during it.
	Dur   sim.Time
	Bytes int64
	// SlowPeak is the slow-tier resident page count after the demote
	// phase; SlowResident the same gauge when the run ended.
	SlowPeak     int64
	SlowResident int64
	// WindowSlowBefore/After count the promote window's pages resident
	// on the slow tier before and after the promote phase: the
	// "slow_tier_resident falling" signal (After < Before), dampened
	// by the rate limiter.
	WindowSlowBefore int
	WindowSlowAfter  int
	// RateLimited counts promotions dropped by the token bucket.
	RateLimited uint64
	// DirectSlowAllocs counts frames allocated — not migrated — on
	// slow-tier nodes over the whole run; must equal SlowBoundPages
	// (the demotion-only invariant).
	DirectSlowAllocs int64
	SlowBoundPages   int
	// TierDown/TierUp snapshot the engine's cross-tier traffic.
	TierDown uint64
	TierUp   uint64
	// Absent counts non-present working-buffer pages (must be 0).
	Absent int
	// BindHist is the strict-bind node-0 ballast's final histogram;
	// BindOffMask counts its pages outside the mask (must be 0).
	BindHist    []int
	BindOffMask int
	// Stats snapshots the kernel counters; Auto the balancer's.
	Stats      kern.Stats
	Auto       autonuma.Stats
	MigratedMB float64
	// Windowed telemetry columns (telemetry.Windows over the event
	// bus, window width 5 x KswapdPeriod): peak per-window fault rate,
	// peak per-window migration bandwidth, and the p99 of the
	// slow-tier residency gauge sampled at window closes.
	FaultRateHz       float64
	MigrateBWPeakMBps float64
	P99SlowResident   float64
	// Control snapshots the adaptive controller's run (zero unless
	// Config.Adaptive).
	Control control.Stats
}

// Tiered builds a deterministic DRAM+CXL System and runs the
// demote-then-promote workload with AutoNUMA and the demotion daemons
// on.
func Tiered(cfg TieredConfig) (TieredResult, error) {
	cfg = cfg.withDefaults()
	var res TieredResult
	if cfg.FastNodes < 2 {
		return res, fmt.Errorf("workload: tiered needs >= 2 DRAM nodes, got %d", cfg.FastNodes)
	}
	if cfg.SlowNodes < 1 {
		return res, fmt.Errorf("workload: tiered needs >= 1 slow node, got %d", cfg.SlowNodes)
	}
	nodes := cfg.FastNodes + cfg.SlowNodes
	if nodes > 8 {
		return res, fmt.Errorf("workload: tiered machine has %d nodes, topology supports <= 8", nodes)
	}

	p := model.Default()
	if !cfg.Hysteresis {
		p.PromotionHysteresisPeriods = 0
	}
	p.TierClasses = []model.TierClass{{Name: "dram"}, model.CXLTier()}
	p.NodeTier = make([]int, nodes)
	nodeMem := make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		nodeMem[n] = int64(cfg.NodePages) * model.PageSize
		if n >= cfg.FastNodes {
			p.NodeTier[n] = 1
			nodeMem[n] = int64(float64(cfg.NodePages)*cfg.SlowRatio) * model.PageSize
		}
	}
	p.PromoteRateLimitMBps = cfg.RateLimitMBps

	sys := numamig.New(numamig.Config{
		Nodes:        nodes,
		CoresPerNode: cfg.Cores,
		MemPerNode:   int64(cfg.NodePages) * model.PageSize,
		NodeMem:      nodeMem,
		Seed:         cfg.Seed,
		Demotion:     true,
		Params:       &p,
	})
	bal := sys.EnableAutoNUMA(cfg.Auto)
	var ctrl *control.Controller
	if cfg.Adaptive {
		ctrl = sys.EnableAdaptiveRateLimit(control.Config{})
	}
	win := telemetry.NewWindows(sys.Bus(), 5*p.KswapdPeriod, sys.SlowTierResident)

	slowIDs := make([]topology.NodeID, 0, cfg.SlowNodes)
	for n := cfg.FastNodes; n < nodes; n++ {
		slowIDs = append(slowIDs, topology.NodeID(n))
	}
	onSlow := func(n int) bool { return n >= cfg.FastNodes }

	hotPages := cfg.NodePages / 16
	bindPages := cfg.NodePages / 16
	workPages := cfg.NodePages
	windowPages := cfg.NodePages / 4
	res.SlowBoundPages = cfg.NodePages / 16

	err := sys.Run(func(t *numamig.Task) {
		// Strict-bind node-0 ballast: cold throughout; the nodemask gate
		// must hold it on node 0 (its only demotion tier is CXL, outside
		// the mask, so every candidate is a KswapdMaskSkips).
		bind := numamig.MustAlloc(t, int64(bindPages)*model.PageSize, numamig.Bind(0))
		if err := bind.Prefault(t); err != nil {
			panic(err)
		}
		// Hot keepalive: swept continuously so the thread keeps making
		// progress (and virtual time advances) through both phases.
		// Pinned (an mlocked hot set): on a small CXL node the scarce
		// demotion headroom must go to the cold working set, not to
		// keepalive pages the clock scan happens to catch between
		// sweeps.
		hot := numamig.MustAlloc(t, int64(hotPages)*model.PageSize, numamig.Preferred(0))
		if err := hot.Prefault(t); err != nil {
			panic(err)
		}
		if _, err := t.PinRange(hot.Base, hot.Size); err != nil {
			panic(err)
		}
		// Working buffer: overcommits node 0; the spill lands on the
		// DRAM tier (never CXL) and the cold remainder demotes down.
		work := numamig.MustAlloc(t, int64(workPages)*model.PageSize, numamig.Preferred(0))
		if err := work.Prefault(t); err != nil {
			panic(err)
		}
		// The one explicit slow binding: the only pages allowed to be
		// *allocated* on the CXL nodes.
		slowBound := numamig.MustAlloc(t, int64(res.SlowBoundPages)*model.PageSize, numamig.Bind(slowIDs...))
		if err := slowBound.Prefault(t); err != nil {
			panic(err)
		}

		// Demote phase: the working buffer is cold; kswapd ages it and
		// demotes it to the next tier down.
		for e := 0; e < cfg.DemoteEpochs; e++ {
			for s := 0; s < cfg.Sweeps; s++ {
				if err := hot.Access(t, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		}
		res.SlowPeak = sys.SlowTierResident()

		winBase := work.Base
		winSize := int64(windowPages) * model.PageSize
		for _, n := range t.GetNodes(winBase, winSize) {
			if n >= 0 && onSlow(n) {
				res.WindowSlowBefore++
			}
		}

		// Promote phase: the window over the demoted region turns hot;
		// AutoNUMA pulls it back up through the rate-limited bucket.
		start := t.P.Now()
		for e := 0; e < cfg.PromoteEpochs; e++ {
			for s := 0; s < cfg.Sweeps; s++ {
				if err := t.AccessRange(winBase, winSize, numamig.Blocked, false); err != nil {
					panic(err)
				}
			}
		}
		res.Dur = t.P.Now() - start

		for _, n := range t.GetNodes(winBase, winSize) {
			if n >= 0 && onSlow(n) {
				res.WindowSlowAfter++
			}
		}
		for _, n := range t.GetNodes(work.Base, work.Size) {
			if n < 0 {
				res.Absent++
			}
		}
		res.BindHist, _ = bind.NodeHistogram(t)
		for n, c := range res.BindHist {
			if n != 0 {
				res.BindOffMask += c
			}
		}
	})
	if err != nil {
		return res, err
	}
	res.Bytes = int64(cfg.PromoteEpochs) * int64(cfg.Sweeps) * int64(windowPages) * model.PageSize
	res.SlowResident = sys.SlowTierResident()
	res.Stats = sys.Stats()
	res.RateLimited = res.Stats.PromoteRateLimited
	for _, id := range slowIDs {
		st := sys.Kernel.Phys.Stats(id)
		res.DirectSlowAllocs += st.Cumulative - st.MigratedIn
	}
	eng := sys.Migrator(numamig.Patched)
	res.TierDown = eng.Stats.PagesTierDown
	res.TierUp = eng.Stats.PagesTierUp
	res.MigratedMB = sys.MigratedBytes() / 1e6
	res.Auto = bal.Stats
	ws := win.Finalize()
	res.FaultRateHz = ws.FaultRateHz
	res.MigrateBWPeakMBps = ws.MigrateBWPeakMBps
	res.P99SlowResident = ws.P99SlowResident
	if ctrl != nil {
		res.Control = ctrl.Stats
	}
	return res, nil
}
