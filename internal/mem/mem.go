// Package mem models the physical memory of the simulated machine:
// per-node frame pools with allocation statistics and optional real byte
// backing. Backed frames carry a 4 KiB data slice so that correctness
// tests can verify data integrity across migrations; large experiments
// run unbacked to keep real memory use low.
//
// The allocator is sharded per node: each node owns an independent lock
// domain (its own mutex, free list, frame slab and PFN range) plus
// lock-free O(1) gauges (free-frame count, watermark boost) that the
// placement layer's zonelist walks read without taking any lock. Frames
// are carved from per-node slabs in blocks rather than allocated
// individually, so a grid run's millions of frame allocations become a
// few thousand slab allocations.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"numamig/internal/model"
	"numamig/internal/topology"
)

// Frame is one physical page frame.
type Frame struct {
	Node topology.NodeID
	PFN  uint64 // unique physical frame number
	Data []byte // nil unless the Phys is backed
}

// NodeStats carries per-node allocator statistics.
type NodeStats struct {
	Total      int64 // frames the node can hold
	Allocated  int64 // currently allocated frames
	Cumulative int64 // total allocations ever
	Freed      int64
	MigratedIn int64 // frames that received migrated data
}

// Free returns the number of available frames.
func (s NodeStats) Free() int64 { return s.Total - s.Allocated }

// Watermarks are one node's pressure thresholds, in frames, mirroring
// the kernel's per-zone min/low/high watermarks:
//
//   - free <= Low  : the node is under pressure; the kswapd-style
//     demotion daemon should run, and allocators prefer other nodes;
//   - free <= Min  : only last-resort allocations land here;
//   - free >  High : reclaim/demotion stops.
//
// The zero value disables watermark behaviour (every threshold at 0).
// Interpretation lives in internal/placement; mem only stores the
// thresholds and answers threshold queries against live accounting.
type Watermarks struct {
	Min, Low, High int64
}

// slabFrames is how many frames one slab block carves at a time.
const slabFrames = 256

// shard is one node's lock domain: everything a single node's
// allocations touch, so per-node daemons and allocators on different
// nodes never contend on a global structure.
type shard struct {
	mu    sync.Mutex
	stats NodeStats
	wm    Watermarks
	tier  int
	free  []*Frame // recycled frames
	slab  []Frame  // current carve block
	used  int      // frames carved from slab
	pfn   uint64   // next local PFN (shard-local, offset by pfnBase)

	// Lock-free gauges read by the placement walks. allocated mirrors
	// stats.Allocated; boost is the temporary watermark boost in frames
	// (burst response).
	allocated atomic.Int64
	boost     atomic.Int64
}

// Phys is the machine's physical memory.
type Phys struct {
	M      *topology.Machine
	Backed bool
	shards []shard

	// slowAlloc is the machine-wide count of frames allocated on
	// slow-tier (tier > 0) nodes, maintained at every alloc/free so
	// SlowTierResident is an O(1) gauge instead of an O(nodes) scan —
	// the tiered telemetry columns sample it every window, which on a
	// 1024-node machine would otherwise rescan all shards per sample.
	slowAlloc atomic.Int64
}

// pfnBase returns the base of a node's PFN range; per-node ranges keep
// PFN assignment independent across shards while staying globally
// unique.
func pfnBase(node topology.NodeID) uint64 { return (uint64(node) + 1) << 40 }

// NewPhys creates physical memory for the machine. If backed, every
// allocated frame carries a real zeroed 4 KiB buffer.
func NewPhys(m *topology.Machine, backed bool) *Phys {
	p := &Phys{M: m, Backed: backed}
	p.shards = make([]shard, m.NumNodes())
	for i, n := range m.Nodes {
		p.shards[i].stats.Total = n.MemBytes / model.PageSize
	}
	return p
}

// SetTier installs a node's memory tier id (0 = DRAM/fast, higher =
// slower). Installed by the placement layer from model.Params.NodeTier.
func (p *Phys) SetTier(node topology.NodeID, tier int) {
	if tier < 0 {
		tier = 0
	}
	s := &p.shards[node]
	// Keep the slow-tier gauge consistent if the node changes sides
	// while holding allocations (in practice tiers are installed before
	// any allocation, but the gauge must not silently drift).
	wasSlow, isSlow := s.tier > 0, tier > 0
	if wasSlow != isSlow {
		if n := s.allocated.Load(); n != 0 {
			if isSlow {
				p.slowAlloc.Add(n)
			} else {
				p.slowAlloc.Add(-n)
			}
		}
	}
	s.tier = tier
}

// TierOf returns a node's memory tier id.
func (p *Phys) TierOf(node topology.NodeID) int { return p.shards[node].tier }

// SlowTierResident returns the frames currently allocated on slow-tier
// (tier > 0) nodes — the slow_tier_resident gauge of the tiered
// scenario family. O(1): maintained at every alloc/free.
func (p *Phys) SlowTierResident() int64 { return p.slowAlloc.Load() }

// SetWatermarks installs a node's pressure thresholds. Thresholds must
// be ordered 0 <= min <= low <= high <= total.
func (p *Phys) SetWatermarks(node topology.NodeID, w Watermarks) {
	s := &p.shards[node]
	if w.Min < 0 || w.Min > w.Low || w.Low > w.High || w.High > s.stats.Total {
		panic(fmt.Sprintf("mem: invalid watermarks %+v for node %d (total %d)",
			w, node, s.stats.Total))
	}
	s.wm = w
}

// WatermarksOf returns a node's thresholds.
func (p *Phys) WatermarksOf(node topology.NodeID) Watermarks { return p.shards[node].wm }

// FreeFrames returns the node's available frame count: an O(1) lock-free
// gauge, so placement's multi-pass zonelist walks never rescan or lock a
// shard they end up not allocating from.
func (p *Phys) FreeFrames(node topology.NodeID) int64 {
	s := &p.shards[node]
	return s.stats.Total - s.allocated.Load()
}

// BoostWatermark temporarily raises a node's watermarks by amount
// frames (kept at the maximum of outstanding boosts, like the kernel's
// clamped watermark_boost), capped so the boosted high watermark stays
// below the node's total. The node then reads as pressured while still
// holding free frames — its kswapd wakes and demotes ahead of the next
// allocation burst — until DecayBoost drains the boost.
func (p *Phys) BoostWatermark(node topology.NodeID, amount int64) {
	if amount <= 0 {
		return
	}
	s := &p.shards[node]
	if max := s.stats.Total - s.wm.High - 1; amount > max {
		amount = max
	}
	if amount > s.boost.Load() {
		s.boost.Store(amount)
	}
}

// DecayBoost halves a node's watermark boost (called once per kswapd
// period by the node's daemon), dropping the remainder at 1 frame.
func (p *Phys) DecayBoost(node topology.NodeID) {
	s := &p.shards[node]
	s.boost.Store(s.boost.Load() / 2)
}

// BoostOf returns a node's current watermark boost in frames.
func (p *Phys) BoostOf(node topology.NodeID) int64 { return p.shards[node].boost.Load() }

// EffectiveLow returns the node's boosted low watermark: the pressure
// threshold allocation fallback and the kswapd wake check compare
// against.
func (p *Phys) EffectiveLow(node topology.NodeID) int64 {
	s := &p.shards[node]
	return s.wm.Low + s.boost.Load()
}

// UnderPressure reports whether the node's free frames have sunk to or
// below its (boosted) low watermark (the kswapd wake condition).
func (p *Phys) UnderPressure(node topology.NodeID) bool {
	return p.FreeFrames(node) <= p.EffectiveLow(node)
}

// Reclaimed reports whether the node's free frames have recovered above
// its (boosted) high watermark (the kswapd stop condition).
func (p *Phys) Reclaimed(node topology.NodeID) bool {
	s := &p.shards[node]
	return p.FreeFrames(node) > s.wm.High+s.boost.Load()
}

// Headroom returns how many frames the node can accept while staying
// strictly above its (boosted) low watermark — the budget the demotion
// daemons use to size a batch toward a tier without pushing it into
// pressure itself. Non-positive when the node is at or below the
// watermark.
func (p *Phys) Headroom(node topology.NodeID) int64 {
	return p.FreeFrames(node) - p.EffectiveLow(node) - 1
}

// ErrNoMemory is returned when a node's frame pool is exhausted.
type ErrNoMemory struct {
	Node topology.NodeID
}

func (e ErrNoMemory) Error() string {
	return fmt.Sprintf("mem: node %d out of memory", e.Node)
}

// Alloc allocates one frame on the given node.
func (p *Phys) Alloc(node topology.NodeID) (*Frame, error) {
	s := &p.shards[node]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Allocated >= s.stats.Total {
		return nil, ErrNoMemory{Node: node}
	}
	s.stats.Allocated++
	s.stats.Cumulative++
	s.allocated.Add(1)
	if s.tier > 0 {
		p.slowAlloc.Add(1)
	}
	if fl := s.free; len(fl) > 0 {
		f := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		s.free = fl[:len(fl)-1]
		if f.Data != nil {
			for i := range f.Data {
				f.Data[i] = 0
			}
		}
		return f, nil
	}
	if s.used == len(s.slab) {
		s.slab = make([]Frame, slabFrames)
		s.used = 0
	}
	f := &s.slab[s.used]
	s.used++
	s.pfn++
	f.Node = node
	f.PFN = pfnBase(node) | s.pfn
	if p.Backed {
		f.Data = make([]byte, model.PageSize)
	}
	return f, nil
}

// Free returns a frame to its node's pool.
func (p *Phys) Free(f *Frame) {
	if f == nil {
		panic("mem: free of nil frame")
	}
	s := &p.shards[f.Node]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Allocated <= 0 {
		panic("mem: free underflow")
	}
	s.stats.Allocated--
	s.stats.Freed++
	s.allocated.Add(-1)
	if s.tier > 0 {
		p.slowAlloc.Add(-1)
	}
	s.free = append(s.free, f)
}

// AllocFootprint reserves n frames' worth of memory on the node without
// materializing frame objects; used for huge-page footprints where one
// representative Frame stands for 512 small frames.
func (p *Phys) AllocFootprint(node topology.NodeID, n int) error {
	s := &p.shards[node]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Allocated+int64(n) > s.stats.Total {
		return ErrNoMemory{Node: node}
	}
	s.stats.Allocated += int64(n)
	s.stats.Cumulative += int64(n)
	s.allocated.Add(int64(n))
	if s.tier > 0 {
		p.slowAlloc.Add(int64(n))
	}
	return nil
}

// ReleaseFootprint returns n frames' worth of accounting reserved with
// AllocFootprint.
func (p *Phys) ReleaseFootprint(node topology.NodeID, n int) {
	s := &p.shards[node]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Allocated < int64(n) {
		panic("mem: footprint release underflow")
	}
	s.stats.Allocated -= int64(n)
	s.stats.Freed += int64(n)
	s.allocated.Add(-int64(n))
	if s.tier > 0 {
		p.slowAlloc.Add(-int64(n))
	}
}

// NoteMigration records that data was migrated into a frame on dst.
func (p *Phys) NoteMigration(dst topology.NodeID) {
	s := &p.shards[dst]
	s.mu.Lock()
	s.stats.MigratedIn++
	s.mu.Unlock()
}

// Stats returns a copy of the node's statistics.
func (p *Phys) Stats(node topology.NodeID) NodeStats {
	s := &p.shards[node]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TotalAllocated returns the machine-wide allocated frame count.
func (p *Phys) TotalAllocated() int64 {
	var n int64
	for i := range p.shards {
		n += p.shards[i].allocated.Load()
	}
	return n
}
