// Package mem models the physical memory of the simulated machine:
// per-node frame pools with allocation statistics and optional real byte
// backing. Backed frames carry a 4 KiB data slice so that correctness
// tests can verify data integrity across migrations; large experiments
// run unbacked to keep real memory use low.
package mem

import (
	"fmt"

	"numamig/internal/model"
	"numamig/internal/topology"
)

// Frame is one physical page frame.
type Frame struct {
	Node topology.NodeID
	PFN  uint64 // unique physical frame number
	Data []byte // nil unless the Phys is backed
}

// NodeStats carries per-node allocator statistics.
type NodeStats struct {
	Total      int64 // frames the node can hold
	Allocated  int64 // currently allocated frames
	Cumulative int64 // total allocations ever
	Freed      int64
	MigratedIn int64 // frames that received migrated data
}

// Free returns the number of available frames.
func (s NodeStats) Free() int64 { return s.Total - s.Allocated }

// Watermarks are one node's pressure thresholds, in frames, mirroring
// the kernel's per-zone min/low/high watermarks:
//
//   - free <= Low  : the node is under pressure; the kswapd-style
//     demotion daemon should run, and allocators prefer other nodes;
//   - free <= Min  : only last-resort allocations land here;
//   - free >  High : reclaim/demotion stops.
//
// The zero value disables watermark behaviour (every threshold at 0).
// Interpretation lives in internal/placement; mem only stores the
// thresholds and answers threshold queries against live accounting.
type Watermarks struct {
	Min, Low, High int64
}

// Phys is the machine's physical memory.
type Phys struct {
	M       *topology.Machine
	Backed  bool
	stats   []NodeStats
	wm      []Watermarks
	boost   []int64 // temporary watermark boost, in frames (burst response)
	tiers   []int   // per-node memory tier id (0 = DRAM, >0 = slow memory)
	nextPFN uint64
	free    [][]*Frame // recycled frames per node
}

// NewPhys creates physical memory for the machine. If backed, every
// allocated frame carries a real zeroed 4 KiB buffer.
func NewPhys(m *topology.Machine, backed bool) *Phys {
	p := &Phys{M: m, Backed: backed}
	p.stats = make([]NodeStats, m.NumNodes())
	p.wm = make([]Watermarks, m.NumNodes())
	p.boost = make([]int64, m.NumNodes())
	p.tiers = make([]int, m.NumNodes())
	p.free = make([][]*Frame, m.NumNodes())
	for i, n := range m.Nodes {
		p.stats[i].Total = n.MemBytes / model.PageSize
	}
	return p
}

// SetTier installs a node's memory tier id (0 = DRAM/fast, higher =
// slower). Installed by the placement layer from model.Params.NodeTier.
func (p *Phys) SetTier(node topology.NodeID, tier int) {
	if tier < 0 {
		tier = 0
	}
	p.tiers[node] = tier
}

// TierOf returns a node's memory tier id.
func (p *Phys) TierOf(node topology.NodeID) int { return p.tiers[node] }

// SlowTierResident returns the frames currently allocated on slow-tier
// (tier > 0) nodes — the slow_tier_resident gauge of the tiered
// scenario family.
func (p *Phys) SlowTierResident() int64 {
	var n int64
	for i := range p.stats {
		if p.tiers[i] > 0 {
			n += p.stats[i].Allocated
		}
	}
	return n
}

// SetWatermarks installs a node's pressure thresholds. Thresholds must
// be ordered 0 <= min <= low <= high <= total.
func (p *Phys) SetWatermarks(node topology.NodeID, w Watermarks) {
	if w.Min < 0 || w.Min > w.Low || w.Low > w.High || w.High > p.stats[node].Total {
		panic(fmt.Sprintf("mem: invalid watermarks %+v for node %d (total %d)",
			w, node, p.stats[node].Total))
	}
	p.wm[node] = w
}

// WatermarksOf returns a node's thresholds.
func (p *Phys) WatermarksOf(node topology.NodeID) Watermarks { return p.wm[node] }

// FreeFrames returns the node's available frame count.
func (p *Phys) FreeFrames(node topology.NodeID) int64 { return p.stats[node].Free() }

// BoostWatermark temporarily raises a node's watermarks by amount
// frames (kept at the maximum of outstanding boosts, like the kernel's
// clamped watermark_boost), capped so the boosted high watermark stays
// below the node's total. The node then reads as pressured while still
// holding free frames — its kswapd wakes and demotes ahead of the next
// allocation burst — until DecayBoost drains the boost.
func (p *Phys) BoostWatermark(node topology.NodeID, amount int64) {
	if amount <= 0 {
		return
	}
	if max := p.stats[node].Total - p.wm[node].High - 1; amount > max {
		amount = max
	}
	if amount > p.boost[node] {
		p.boost[node] = amount
	}
}

// DecayBoost halves a node's watermark boost (called once per kswapd
// period by the node's daemon), dropping the remainder at 1 frame.
func (p *Phys) DecayBoost(node topology.NodeID) {
	p.boost[node] /= 2
}

// BoostOf returns a node's current watermark boost in frames.
func (p *Phys) BoostOf(node topology.NodeID) int64 { return p.boost[node] }

// EffectiveLow returns the node's boosted low watermark: the pressure
// threshold allocation fallback and the kswapd wake check compare
// against.
func (p *Phys) EffectiveLow(node topology.NodeID) int64 {
	return p.wm[node].Low + p.boost[node]
}

// UnderPressure reports whether the node's free frames have sunk to or
// below its (boosted) low watermark (the kswapd wake condition).
func (p *Phys) UnderPressure(node topology.NodeID) bool {
	return p.stats[node].Free() <= p.EffectiveLow(node)
}

// Reclaimed reports whether the node's free frames have recovered above
// its (boosted) high watermark (the kswapd stop condition).
func (p *Phys) Reclaimed(node topology.NodeID) bool {
	return p.stats[node].Free() > p.wm[node].High+p.boost[node]
}

// Headroom returns how many frames the node can accept while staying
// strictly above its (boosted) low watermark — the budget the demotion
// daemons use to size a batch toward a tier without pushing it into
// pressure itself. Non-positive when the node is at or below the
// watermark.
func (p *Phys) Headroom(node topology.NodeID) int64 {
	return p.stats[node].Free() - p.EffectiveLow(node) - 1
}

// ErrNoMemory is returned when a node's frame pool is exhausted.
type ErrNoMemory struct {
	Node topology.NodeID
}

func (e ErrNoMemory) Error() string {
	return fmt.Sprintf("mem: node %d out of memory", e.Node)
}

// Alloc allocates one frame on the given node.
func (p *Phys) Alloc(node topology.NodeID) (*Frame, error) {
	st := &p.stats[node]
	if st.Allocated >= st.Total {
		return nil, ErrNoMemory{Node: node}
	}
	st.Allocated++
	st.Cumulative++
	if fl := p.free[node]; len(fl) > 0 {
		f := fl[len(fl)-1]
		p.free[node] = fl[:len(fl)-1]
		if f.Data != nil {
			for i := range f.Data {
				f.Data[i] = 0
			}
		}
		return f, nil
	}
	p.nextPFN++
	f := &Frame{Node: node, PFN: p.nextPFN}
	if p.Backed {
		f.Data = make([]byte, model.PageSize)
	}
	return f, nil
}

// Free returns a frame to its node's pool.
func (p *Phys) Free(f *Frame) {
	if f == nil {
		panic("mem: free of nil frame")
	}
	st := &p.stats[f.Node]
	if st.Allocated <= 0 {
		panic("mem: free underflow")
	}
	st.Allocated--
	st.Freed++
	p.free[f.Node] = append(p.free[f.Node], f)
}

// AllocFootprint reserves n frames' worth of memory on the node without
// materializing frame objects; used for huge-page footprints where one
// representative Frame stands for 512 small frames.
func (p *Phys) AllocFootprint(node topology.NodeID, n int) error {
	st := &p.stats[node]
	if st.Allocated+int64(n) > st.Total {
		return ErrNoMemory{Node: node}
	}
	st.Allocated += int64(n)
	st.Cumulative += int64(n)
	return nil
}

// ReleaseFootprint returns n frames' worth of accounting reserved with
// AllocFootprint.
func (p *Phys) ReleaseFootprint(node topology.NodeID, n int) {
	st := &p.stats[node]
	if st.Allocated < int64(n) {
		panic("mem: footprint release underflow")
	}
	st.Allocated -= int64(n)
	st.Freed += int64(n)
}

// NoteMigration records that data was migrated into a frame on dst.
func (p *Phys) NoteMigration(dst topology.NodeID) {
	p.stats[dst].MigratedIn++
}

// Stats returns a copy of the node's statistics.
func (p *Phys) Stats(node topology.NodeID) NodeStats { return p.stats[node] }

// TotalAllocated returns the machine-wide allocated frame count.
func (p *Phys) TotalAllocated() int64 {
	var n int64
	for i := range p.stats {
		n += p.stats[i].Allocated
	}
	return n
}
