package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"numamig/internal/topology"
)

func TestAllocFree(t *testing.T) {
	p := NewPhys(topology.Opteron4x4(), false)
	f, err := p.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Node != 1 {
		t.Fatalf("frame node = %d, want 1", f.Node)
	}
	if f.Data != nil {
		t.Fatal("unbacked frame has data")
	}
	if got := p.Stats(1).Allocated; got != 1 {
		t.Fatalf("allocated = %d", got)
	}
	p.Free(f)
	if got := p.Stats(1).Allocated; got != 0 {
		t.Fatalf("allocated after free = %d", got)
	}
	if got := p.Stats(1).Freed; got != 1 {
		t.Fatalf("freed = %d", got)
	}
}

func TestBackedFramesZeroedOnReuse(t *testing.T) {
	p := NewPhys(topology.Opteron4x4(), true)
	f, err := p.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != 4096 {
		t.Fatalf("data len = %d", len(f.Data))
	}
	f.Data[123] = 0xAB
	p.Free(f)
	g, err := p.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("frame not recycled from free list")
	}
	if g.Data[123] != 0 {
		t.Fatal("recycled frame not zeroed")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := topology.Grid(2, 1, 3*4096, 1<<20) // 3 frames per node
	p := NewPhys(m, false)
	for i := 0; i < 3; i++ {
		if _, err := p.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	_, err := p.Alloc(0)
	var oom ErrNoMemory
	if !errors.As(err, &oom) || oom.Node != 0 {
		t.Fatalf("err = %v, want ErrNoMemory{0}", err)
	}
	// Other node unaffected.
	if _, err := p.Alloc(1); err != nil {
		t.Fatal(err)
	}
}

func TestUniquePFNs(t *testing.T) {
	p := NewPhys(topology.Opteron4x4(), false)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f, err := p.Alloc(topology.NodeID(i % 4))
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.PFN] {
			t.Fatalf("duplicate PFN %d", f.PFN)
		}
		seen[f.PFN] = true
	}
}

func TestMigrationCounter(t *testing.T) {
	p := NewPhys(topology.Opteron4x4(), false)
	p.NoteMigration(2)
	p.NoteMigration(2)
	if got := p.Stats(2).MigratedIn; got != 2 {
		t.Fatalf("migratedIn = %d", got)
	}
}

// Property: any interleaving of allocs and frees keeps per-node
// accounting consistent, TotalAllocated equal to live frame count, and
// every watermark query consistent with the free-frame count.
func TestAllocFreeAccountingProperty(t *testing.T) {
	wm := Watermarks{Min: 4, Low: 12, High: 20}
	check := func(ops []uint8) bool {
		m := topology.Grid(4, 1, 64*4096, 1<<20)
		p := NewPhys(m, false)
		for n := topology.NodeID(0); n < 4; n++ {
			p.SetWatermarks(n, wm)
		}
		var live []*Frame
		for _, op := range ops {
			node := topology.NodeID(op % 4)
			if op&0x80 != 0 && len(live) > 0 {
				f := live[len(live)-1]
				live = live[:len(live)-1]
				p.Free(f)
			} else if f, err := p.Alloc(node); err == nil {
				live = append(live, f)
			}
			// Watermark queries must agree with live accounting at every
			// step of the interleaving, not just at the end.
			free := p.FreeFrames(node)
			if free != p.Stats(node).Free() {
				return false
			}
			if p.UnderPressure(node) != (free <= wm.Low) {
				return false
			}
			if p.Reclaimed(node) != (free > wm.High) {
				return false
			}
			if p.UnderPressure(node) && p.Reclaimed(node) {
				return false // Low < High: the states are exclusive
			}
		}
		if p.TotalAllocated() != int64(len(live)) {
			return false
		}
		perNode := map[topology.NodeID]int64{}
		for _, f := range live {
			perNode[f.Node]++
		}
		for n := topology.NodeID(0); n < 4; n++ {
			if p.Stats(n).Allocated != perNode[n] {
				return false
			}
			if p.Stats(n).Free() != 64-perNode[n] {
				return false
			}
			if p.WatermarksOf(n) != wm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetWatermarksValidation(t *testing.T) {
	m := topology.Grid(2, 1, 64*4096, 1<<20)
	p := NewPhys(m, false)
	for _, bad := range []Watermarks{
		{Min: -1, Low: 1, High: 2},
		{Min: 5, Low: 4, High: 6},
		{Min: 1, Low: 8, High: 7},
		{Min: 1, Low: 2, High: 65}, // above total
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetWatermarks accepted %+v", bad)
				}
			}()
			p.SetWatermarks(0, bad)
		}()
	}
	p.SetWatermarks(0, Watermarks{Min: 1, Low: 2, High: 3})
	if got := p.WatermarksOf(0); got.High != 3 {
		t.Fatalf("watermarks = %+v", got)
	}
}

// TestHeadroom: the demotion-batch budget tracks free frames against
// the low watermark and goes non-positive exactly when filling one
// more frame would put the node at or below it.
func TestHeadroom(t *testing.T) {
	m := topology.Grid(2, 1, 64*4096, 1<<20)
	p := NewPhys(m, false)
	p.SetWatermarks(0, Watermarks{Min: 2, Low: 10, High: 20})
	if got := p.Headroom(0); got != 64-10-1 {
		t.Fatalf("empty-node headroom = %d, want %d", got, 64-10-1)
	}
	for i := 0; i < 53; i++ {
		if _, err := p.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	// 11 free: taking one more frame leaves exactly the low watermark.
	if got := p.Headroom(0); got != 0 {
		t.Fatalf("headroom at free=low+1 = %d, want 0", got)
	}
	if _, err := p.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if got := p.Headroom(0); got >= 0 {
		t.Fatalf("headroom at the low watermark = %d, want negative", got)
	}
	if !p.UnderPressure(0) {
		t.Fatal("node at its low watermark should report pressure")
	}
}
