package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/migrate"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// ErrSegv is the simulated equivalent of an unhandled segmentation fault.
type ErrSegv struct {
	Addr  vm.Addr
	Write bool
}

func (e ErrSegv) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("kern: segmentation fault: %s at %#x", op, e.Addr)
}

// Touch performs one application access to addr, taking page faults as
// needed (demand allocation, kernel next-touch migration, SIGSEGV
// delivery). It is the single-address path; bulk accesses should use
// AccessRange/FaultIn.
func (t *Task) Touch(addr vm.Addr, write bool) error {
	for attempt := 0; attempt < 16; attempt++ {
		// Hardware fast path: sets accessed/dirty without materializing
		// the chunk (a compact run only splits when it gains a new bit).
		if t.Proc.Space.PT.Touch(vm.PageOf(addr), write) {
			return nil
		}
		if err := t.fault(addr, write); err != nil {
			return err
		}
	}
	return fmt.Errorf("kern: touch of %#x did not settle after 16 faults", addr)
}

// fault runs the page-fault handler once for addr. On return either the
// PTE has been fixed, or a user SIGSEGV handler ran (the access must be
// retried), or an error is returned.
func (t *Task) fault(addr vm.Addr, write bool) error {
	k := t.Proc.K
	k.Stats.Faults++
	if k.bus.Active(telemetry.TopicPageFault) {
		k.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicPageFault,
			Node:  t.Node(), Dst: telemetry.NoNode,
			Task: t.P.ID(), Pages: 1,
		})
	}
	t.P.Sleep(k.P.FaultBase)

	sp := t.Proc.Space
	t.Proc.MmapSem.RLock(t.P)
	v := sp.Find(addr)
	if v == nil {
		t.Proc.MmapSem.RUnlock()
		return t.raiseSegv(addr, write)
	}
	if !v.Prot.Allows(write) {
		t.Proc.MmapSem.RUnlock()
		return t.raiseSegv(addr, write)
	}

	vpn := vm.PageOf(addr)
	cl := t.Proc.chunkLock(vm.ChunkIndex(vpn))
	cl.Acquire(t.P)
	pte := sp.PT.Get(vpn)
	nextTouch := false
	numaHint := false
	switch {
	case vm.FlagsAllow(pte.Flags, write):
		// Raced with another thread that already fixed it.
	case pte.Flags&vm.PTEPresent == 0:
		t.demandAlloc(v, vpn)
	case pte.Flags&vm.PTENextTouch != 0:
		// Serviced below, after the chunk lock is dropped: the engine
		// takes the chunk lock itself.
		nextTouch = true
	case pte.Flags&vm.PTENumaHint != 0:
		// AutoNUMA hinting fault: serviced below (the service path
		// takes the chunk lock itself).
		numaHint = true
	default:
		// Present but stale permissions (e.g. after mprotect restore):
		// minor fault, install VMA protection.
		k.Stats.MinorFaults++
		sp.PT.SetProtRange(vpn, vpn+1, v.Prot)
	}
	cl.Release()
	if nextTouch {
		t.ntMigratePages([]vm.VPN{vpn})
	}
	if numaHint {
		t.numaHintFaults([]vm.VPN{vpn})
	}
	t.Proc.MmapSem.RUnlock()
	return nil
}

// demandAlloc services a not-present fault: allocate per policy near the
// toucher (first-touch), zero, map. The entry is installed through the
// extent layer, so a stream of sequential demand faults grows one run.
func (t *Task) demandAlloc(v *vm.VMA, vpn vm.VPN) {
	k := t.Proc.K
	k.Stats.DemandAllocs++
	f := t.allocFrame(t.capTarget(t.placeTarget(v, vpn)))
	t.P.Sleep(k.P.DemandZero)
	e := vm.PTE{Frame: f, Flags: vm.PTEPresent | vm.PTEAccessed}
	e.SetProt(v.Prot)
	t.Proc.Space.PT.Install(vpn, e)
	t.chargeTenant(f)
	// Pages populated after a next-touch mark need no mark themselves:
	// first-touch already places them locally.
}

// capTarget applies the tenancy fast-tier cap to an allocation target:
// a tenant at its cap faulting toward a fast node takes the demotion
// path (the next tier down) instead of spilling across the DRAM tier,
// mirroring cgroup memory limits. If no slow node can absorb the page
// the original target stands — the ledger then counts the landing as a
// cap violation.
func (t *Task) capTarget(target topology.NodeID) topology.NodeID {
	ten := t.Proc.Tenant
	if ten == nil {
		return target
	}
	k := t.Proc.K
	if k.Phys.TierOf(target) != 0 || !ten.WouldBreach(1) {
		return target
	}
	if dst, ok := k.Placer.DemotionTarget(target, true); ok {
		return dst
	}
	return target
}

// chargeTenant charges one freshly allocated frame to the process's
// tenant, at the node the page actually landed on.
func (t *Task) chargeTenant(f *mem.Frame) {
	if ten := t.Proc.Tenant; ten != nil {
		t.Proc.K.Ten.Charge(ten, f.Node, 1)
	}
}

// placeTarget resolves a page's effective mempolicy (VMA policy, then
// the process default) to its preferred node through the placement
// layer: the one policy-resolution entry point for every fault path.
func (t *Task) placeTarget(v *vm.VMA, p vm.VPN) topology.NodeID {
	return t.Proc.K.Placer.Place(v.Pol, t.Proc.Space.DefaultPol, p, t.Node())
}

// allocFrame allocates a frame on target through the placement layer,
// which falls back along the zonelist when the target cannot take it.
func (t *Task) allocFrame(target topology.NodeID) *mem.Frame {
	return t.Proc.K.AllocFrame(target)
}

// ntServiceFaults charges the page faults that delivered a batch of
// next-touch pages (the bulk fault paths classify without faulting per
// page), then migrates them through the shared engine.
func (t *Task) ntServiceFaults(pages []vm.VPN) {
	k := t.Proc.K
	k.Stats.Faults += uint64(len(pages))
	k.bus.Publish(telemetry.Event{
		Topic: telemetry.TopicPageFault,
		Node:  t.Node(), Dst: telemetry.NoNode,
		Task: t.P.ID(), Pages: len(pages),
	})
	t.P.InCat(CatNTCtl, func() {
		t.P.Sleep(sim.Time(len(pages)) * k.P.FaultBase)
	})
	t.ntMigratePages(pages)
}

// ntMigratePages services Migrate-on-next-touch faults for a set of
// pages (all within one PTE chunk when called from the bulk fault path):
// the paper's kernel next-touch implementation (Fig. 2), routed through
// the shared migration engine on the lazy channel. The engine migrates
// remote pages to the toucher's node, clears the mark, and restores
// access; already-local pages only pay the restore cost. Caller holds
// mmap_sem shared and no chunk locks.
func (t *Task) ntMigratePages(pages []vm.VPN) {
	k := t.Proc.K
	dst := t.Node()
	defer t.P.PushCat(CatNTCtl)()
	ops := make([]migrate.Op, len(pages))
	for i, p := range pages {
		ops[i] = migrate.Op{VPN: p, Dst: dst}
	}
	res := k.Migrator(migrate.Patched).Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc, Ops: ops,
		Path: migrate.PathNextTouch, ClearNextTouch: true,
		CopyCat: CatNTCopy, Priority: t.Proc.MigPrio,
	})
	k.Stats.NTMigrations += uint64(res.Moved)
	k.Stats.NTLocalSkips += uint64(res.Local)
}

// raiseSegv delivers SIGSEGV to the process handler, or returns ErrSegv
// if none is installed.
func (t *Task) raiseSegv(addr vm.Addr, write bool) error {
	k := t.Proc.K
	k.Stats.Sigsegvs++
	if t.Proc.sigHandler == nil {
		return ErrSegv{Addr: addr, Write: write}
	}
	defer t.P.PushCat(CatFaultSignal)()
	t.P.Sleep(k.P.SignalDeliver)
	h := t.Proc.sigHandler
	// The handler runs with default accounting categories of its own.
	func() {
		end := t.P.PushCat("")
		defer end()
		h(t, SigInfo{Addr: addr, Write: write})
	}()
	t.P.Sleep(k.P.SignalReturn)
	return nil
}
