package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// ErrSegv is the simulated equivalent of an unhandled segmentation fault.
type ErrSegv struct {
	Addr  vm.Addr
	Write bool
}

func (e ErrSegv) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("kern: segmentation fault: %s at %#x", op, e.Addr)
}

// Touch performs one application access to addr, taking page faults as
// needed (demand allocation, kernel next-touch migration, SIGSEGV
// delivery). It is the single-address path; bulk accesses should use
// AccessRange/FaultIn.
func (t *Task) Touch(addr vm.Addr, write bool) error {
	for attempt := 0; attempt < 16; attempt++ {
		pte := t.Proc.Space.PT.Lookup(vm.PageOf(addr))
		if pte.Allows(write) {
			pte.Flags |= vm.PTEAccessed
			if write {
				pte.Flags |= vm.PTEDirty
			}
			return nil
		}
		if err := t.fault(addr, write); err != nil {
			return err
		}
	}
	return fmt.Errorf("kern: touch of %#x did not settle after 16 faults", addr)
}

// fault runs the page-fault handler once for addr. On return either the
// PTE has been fixed, or a user SIGSEGV handler ran (the access must be
// retried), or an error is returned.
func (t *Task) fault(addr vm.Addr, write bool) error {
	k := t.Proc.K
	k.Stats.Faults++
	t.P.Sleep(k.P.FaultBase)

	sp := t.Proc.Space
	t.Proc.MmapSem.RLock(t.P)
	v := sp.Find(addr)
	if v == nil {
		t.Proc.MmapSem.RUnlock()
		return t.raiseSegv(addr, write)
	}
	if !v.Prot.Allows(write) {
		t.Proc.MmapSem.RUnlock()
		return t.raiseSegv(addr, write)
	}

	vpn := vm.PageOf(addr)
	cl := t.Proc.chunkLock(vm.ChunkIndex(vpn))
	cl.Acquire(t.P)
	pte := sp.PT.Entry(vpn)
	switch {
	case pte.Allows(write):
		// Raced with another thread that already fixed it.
	case !pte.Present():
		t.demandAlloc(v, vpn, pte)
	case pte.Flags&vm.PTENextTouch != 0:
		t.ntMigrate(vpn, pte)
	default:
		// Present but stale permissions (e.g. after mprotect restore):
		// minor fault, install VMA protection.
		k.Stats.MinorFaults++
		pte.SetProt(v.Prot)
	}
	cl.Release()
	t.Proc.MmapSem.RUnlock()
	return nil
}

// demandAlloc services a not-present fault: allocate per policy near the
// toucher (first-touch), zero, map.
func (t *Task) demandAlloc(v *vm.VMA, vpn vm.VPN, pte *vm.PTE) {
	k := t.Proc.K
	k.Stats.DemandAllocs++
	pol := v.Pol
	if pol.Kind == vm.PolDefault {
		pol = t.Proc.Space.DefaultPol
	}
	target := pol.Target(vpn, t.Node())
	f := t.allocFrame(target)
	t.P.Sleep(k.P.DemandZero)
	pte.Frame = f
	pte.Flags = vm.PTEPresent | vm.PTEAccessed
	pte.SetProt(v.Prot)
	// Pages populated after a next-touch mark need no mark themselves:
	// first-touch already places them locally.
}

// allocFrame allocates a frame on target, falling back to other nodes in
// distance order when the target is full.
func (t *Task) allocFrame(target topology.NodeID) *mem.Frame {
	k := t.Proc.K
	f, err := k.Phys.Alloc(target)
	if err == nil {
		return f
	}
	// Fallback: nodes by distance from target.
	type cand struct {
		n topology.NodeID
		d int
	}
	var cands []cand
	for n := 0; n < k.M.NumNodes(); n++ {
		if topology.NodeID(n) == target {
			continue
		}
		cands = append(cands, cand{topology.NodeID(n), k.M.Dist[target][n]})
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].d < cands[i].d || (cands[j].d == cands[i].d && cands[j].n < cands[i].n) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	for _, c := range cands {
		if f, err := k.Phys.Alloc(c.n); err == nil {
			return f
		}
	}
	panic("kern: machine out of memory")
}

// ntMigrate services a Migrate-on-next-touch fault for one page: the
// paper's kernel next-touch implementation (Fig. 2). Inspired by
// copy-on-write: allocate on the toucher's node, copy, free the old
// frame, clear the mark. Caller holds the chunk lock.
func (t *Task) ntMigrate(vpn vm.VPN, pte *vm.PTE) {
	k := t.Proc.K
	src := pte.Frame.Node
	dst := t.Node()
	defer t.P.PushCat(CatNTCtl)()
	if src == dst {
		// Already local: just restore access.
		k.Stats.NTLocalSkips++
		pte.Flags &^= vm.PTENextTouch
		t.P.Sleep(k.P.NTFaultCtl / 2)
		return
	}
	k.lruLock.Acquire(t.P)
	t.P.Sleep(k.P.NTFaultCtlLocked)
	k.lruLock.Release()
	t.P.Sleep(k.P.NTFaultCtl - k.P.NTFaultCtlLocked)
	newF := t.allocFrame(dst)
	t.P.InCat(CatNTCopy, func() {
		k.Net.Transfer(t.P, model.PageSize, k.migPath(t.Core, src, newF.Node, false)...)
	})
	if pte.Frame.Data != nil {
		copy(newF.Data, pte.Frame.Data)
	}
	k.Phys.Free(pte.Frame)
	k.Phys.NoteMigration(newF.Node)
	k.Stats.NTMigrations++
	pte.Frame = newF
	pte.Flags &^= vm.PTENextTouch
}

// raiseSegv delivers SIGSEGV to the process handler, or returns ErrSegv
// if none is installed.
func (t *Task) raiseSegv(addr vm.Addr, write bool) error {
	k := t.Proc.K
	k.Stats.Sigsegvs++
	if t.Proc.sigHandler == nil {
		return ErrSegv{Addr: addr, Write: write}
	}
	defer t.P.PushCat(CatFaultSignal)()
	t.P.Sleep(k.P.SignalDeliver)
	h := t.Proc.sigHandler
	// The handler runs with default accounting categories of its own.
	func() {
		end := t.P.PushCat("")
		defer end()
		h(t, SigInfo{Addr: addr, Write: write})
	}()
	t.P.Sleep(k.P.SignalReturn)
	return nil
}
