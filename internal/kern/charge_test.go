package kern

import (
	"testing"

	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Differential tests for the extent-based bulk access paths: AccessRange,
// TrafficRectVolume, ReadReplicated and NodesOfRect accumulate per-node
// traffic extent-run-at-a-time, and every path must charge byte totals
// identical to a per-page Lookup walk — on a tiered machine, with pages
// deliberately interleaved across DRAM and CXL nodes. Page byte counts
// are whole numbers, so the totals must match exactly, not approximately.

// newTieredChargeHarness builds a 4-node machine whose upper two nodes
// are a CXL tier, with an interleaved region of pages pages faulted in.
func newTieredChargeHarness(t *testing.T, pages int64, run func(h *harness, tk *Task, addr vm.Addr)) {
	t.Helper()
	p := model.Default()
	p.NodeTier = []int{0, 0, 1, 1}
	p.TierClasses = []model.TierClass{{Name: "dram"}, model.CXLTier()}
	h := newParamHarness(4, 4096, p)
	h.run(t, 0, func(tk *Task) {
		addr, err := tk.Mmap(pages*pg, vm.ProtRW, vm.Interleave(0, 1, 2, 3), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(addr, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		run(h, tk, addr)
	})
}

// refBytesByNode is the per-page reference: walk [addr, addr+length)
// page by page through PT.Lookup and clip each page's overlap, exactly
// what AccessRange did before the extent walk.
func refBytesByNode(tk *Task, addr vm.Addr, length int64) map[topology.NodeID]float64 {
	sp := tk.Proc.Space
	end := addr + vm.Addr(length)
	out := map[topology.NodeID]float64{}
	for p := vm.PageOf(addr); p < vm.PageOf(end-1)+1; p++ {
		pte := sp.PT.Lookup(p)
		if !pte.Present() {
			continue
		}
		lo, hi := p.Base(), p.Base()+model.PageSize
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		out[pte.Frame.Node] += float64(hi - lo)
	}
	return out
}

// splitLocal sums a per-node byte map into (local, remote) totals.
func splitLocal(m map[topology.NodeID]float64, local topology.NodeID) (loc, rem float64) {
	for n, b := range m {
		if n == local {
			loc += b
		} else {
			rem += b
		}
	}
	return loc, rem
}

func TestAccessRangeMatchesPerPageReference(t *testing.T) {
	newTieredChargeHarness(t, 37, func(h *harness, tk *Task, addr vm.Addr) {
		// Unaligned sub-range: partial first and last pages.
		sub, subLen := addr+100, int64(35*pg-250)
		ref := refBytesByNode(tk, sub, subLen)
		wantLoc, wantRem := splitLocal(ref, tk.Node())
		loc0, rem0 := h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes
		if err := tk.AccessRange(sub, subLen, Blocked, false); err != nil {
			t.Fatal(err)
		}
		if got := h.k.Stats.LocalBytes - loc0; got != wantLoc {
			t.Errorf("LocalBytes += %v, per-page reference says %v", got, wantLoc)
		}
		if got := h.k.Stats.RemoteBytes - rem0; got != wantRem {
			t.Errorf("RemoteBytes += %v, per-page reference says %v", got, wantRem)
		}
	})
}

func TestTrafficRectMatchesPerPageReference(t *testing.T) {
	newTieredChargeHarness(t, 64, func(h *harness, tk *Task, addr vm.Addr) {
		// Overlapping rows (stride < row bytes) exercise the page-list
		// dedup; the unaligned base exercises partial-page rows.
		r := Rect{Base: addr + 100, RowBytes: 3*pg + 700, Stride: 2 * pg, Rows: 7}
		// Per-page reference: dedup the rect's pages, count residents
		// per node, then split the volume proportionally.
		sp := tk.Proc.Space
		counts := map[topology.NodeID]int{}
		resident := 0
		for _, p := range r.pages() {
			pte := sp.PT.Lookup(p)
			if !pte.Present() {
				continue
			}
			counts[pte.Frame.Node]++
			resident++
		}
		if resident == 0 {
			t.Fatal("rect has no resident pages")
		}
		volume := float64(r.Bytes())
		ref := map[topology.NodeID]float64{}
		for n, c := range counts {
			ref[n] = volume / float64(resident) * float64(c)
		}
		wantLoc, wantRem := splitLocal(ref, tk.Node())
		loc0, rem0 := h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes
		tk.TrafficRect(r, Blocked, false)
		if got := h.k.Stats.LocalBytes - loc0; got != wantLoc {
			t.Errorf("LocalBytes += %v, per-page reference says %v", got, wantLoc)
		}
		if got := h.k.Stats.RemoteBytes - rem0; got != wantRem {
			t.Errorf("RemoteBytes += %v, per-page reference says %v", got, wantRem)
		}

		// NodesOfRect must agree with the same per-page census.
		gotCounts, absent := tk.NodesOfRect(r)
		if absent != len(r.pages())-resident {
			t.Errorf("NodesOfRect absent = %d, reference says %d", absent, len(r.pages())-resident)
		}
		if len(gotCounts) != len(counts) {
			t.Errorf("NodesOfRect nodes = %v, reference says %v", gotCounts, counts)
		}
		for n, c := range counts {
			if gotCounts[n] != c {
				t.Errorf("NodesOfRect[%d] = %d, reference says %d", n, gotCounts[n], c)
			}
		}
	})
}

func TestReadReplicatedMatchesPerPageReference(t *testing.T) {
	newTieredChargeHarness(t, 32, func(h *harness, tk *Task, addr vm.Addr) {
		// Without replicas the fast path runs: plain home-node charges.
		ref := refBytesByNode(tk, addr, 32*pg)
		wantLoc, wantRem := splitLocal(ref, tk.Node())
		loc0, rem0 := h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes
		if err := tk.ReadReplicated(addr, 32*pg, Blocked); err != nil {
			t.Fatal(err)
		}
		if got := h.k.Stats.LocalBytes - loc0; got != wantLoc {
			t.Errorf("no replicas: LocalBytes += %v, reference says %v", got, wantLoc)
		}
		if got := h.k.Stats.RemoteBytes - rem0; got != wantRem {
			t.Errorf("no replicas: RemoteBytes += %v, reference says %v", got, wantRem)
		}

		// With every page replicated, all reads serve locally.
		if _, err := tk.ReplicateRange(addr, 32*pg); err != nil {
			t.Fatal(err)
		}
		loc0, rem0 = h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes
		if err := tk.ReadReplicated(addr, 32*pg, Blocked); err != nil {
			t.Fatal(err)
		}
		if got := h.k.Stats.LocalBytes - loc0; got != float64(32*pg) {
			t.Errorf("replicated: LocalBytes += %v, want %v", got, float64(32*pg))
		}
		if got := h.k.Stats.RemoteBytes - rem0; got != 0 {
			t.Errorf("replicated: RemoteBytes += %v, want 0", got)
		}
	})
}

// TestTierLatencyChargedConsistently pins the satellite's behavioural
// fix: the rect and replicated read paths now charge the tier-class
// latency multiplier exactly like AccessRange, so reading the same
// CXL-resident bytes through any of the three paths costs the same
// virtual time.
func TestTierLatencyChargedConsistently(t *testing.T) {
	p := model.Default()
	p.NodeTier = []int{0, 1}
	p.TierClasses = []model.TierClass{{Name: "dram"}, model.CXLTier()}
	h := newParamHarness(2, 4096, p)
	h.run(t, 0, func(tk *Task) {
		// All pages bound to the CXL node; the reader runs on node 0.
		addr, err := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(1), 0, "cxl")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(addr, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		elapsed := func(fn func()) float64 {
			t0 := h.eng.Now()
			fn()
			return float64(h.eng.Now() - t0)
		}
		dRange := elapsed(func() {
			if err := tk.AccessRange(addr, 16*pg, Blocked, false); err != nil {
				t.Fatal(err)
			}
		})
		dRect := elapsed(func() {
			tk.TrafficRect(Rect{Base: addr, RowBytes: 16 * pg, Stride: 16 * pg, Rows: 1}, Blocked, false)
		})
		dRepl := elapsed(func() {
			if err := tk.ReadReplicated(addr, 16*pg, Blocked); err != nil {
				t.Fatal(err)
			}
		})
		if dRange <= 0 {
			t.Fatal("AccessRange took no virtual time")
		}
		if dRect != dRange {
			t.Errorf("TrafficRect of CXL bytes took %v, AccessRange took %v — tier latency not charged alike", dRect, dRange)
		}
		if dRepl != dRange {
			t.Errorf("ReadReplicated of CXL bytes took %v, AccessRange took %v — tier latency not charged alike", dRepl, dRange)
		}
	})
}
