package kern

import (
	"testing"

	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Tests for the paper's future-work extensions (§6): huge pages,
// read-only replication, shared-mapping next-touch.

func TestHugeMapTouchAndNode(t *testing.T) {
	h := newHarness(false)
	h.run(t, 5, func(tk *Task) { // node 1
		a, err := tk.MmapHuge(8<<20, vm.DefaultPolicy(), "huge")
		if err != nil {
			t.Fatal(err)
		}
		n, err := tk.TouchHuge(a, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("faulted %d huge pages, want 4", n)
		}
		if got := tk.HugeNode(a); got != 1 {
			t.Fatalf("huge page on node %d, want 1 (first touch)", got)
		}
		// Footprint accounted: 4 x 512 frames.
		if got := h.k.Phys.Stats(1).Allocated; got != 4*512 {
			t.Fatalf("allocated frames = %d, want 2048", got)
		}
		// Second touch is a no-op.
		n, err = tk.TouchHuge(a, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("re-touch faulted %d", n)
		}
	})
}

func TestHugeMigration(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, err := tk.MmapHuge(4<<20, vm.Bind(0), "huge")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.TouchHuge(a, 4<<20); err != nil {
			t.Fatal(err)
		}
		moved, err := tk.MoveHugeRange(a, 4<<20, 3)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 2 {
			t.Fatalf("moved %d huge pages, want 2", moved)
		}
		if got := tk.HugeNode(a); got != 3 {
			t.Fatalf("node after move = %d", got)
		}
		// Memory accounting moved with it.
		if got := h.k.Phys.Stats(0).Allocated; got != 0 {
			t.Fatalf("source node still holds %d frames", got)
		}
		if got := h.k.Phys.Stats(3).Allocated; got != 2*512 {
			t.Fatalf("target node holds %d frames, want 1024", got)
		}
		// Idempotent when already there.
		moved, err = tk.MoveHugeRange(a, 4<<20, 3)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 0 {
			t.Fatalf("re-move moved %d", moved)
		}
	})
}

func TestHugeMigrationFasterThanSmallPages(t *testing.T) {
	// The win the paper anticipates from huge-page migration: per-page
	// control amortized 512x.
	const bytes = 32 << 20
	small := func() sim.Time {
		h := newHarness(false)
		var d sim.Time
		h.run(t, 4, func(tk *Task) {
			a, _ := tk.Mmap(bytes, vm.ProtRW, vm.Bind(0), 0, "small")
			if _, err := tk.FaultIn(a, bytes, true); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if _, err := tk.MovePagesTo(a, bytes, 1, true); err != nil {
				t.Fatal(err)
			}
			d = tk.P.Now() - start
		})
		return d
	}()
	huge := func() sim.Time {
		h := newHarness(false)
		var d sim.Time
		h.run(t, 4, func(tk *Task) {
			a, err := tk.MmapHuge(bytes, vm.Bind(0), "huge")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tk.TouchHuge(a, bytes); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if _, err := tk.MoveHugeRange(a, bytes, 1); err != nil {
				t.Fatal(err)
			}
			d = tk.P.Now() - start
		})
		return d
	}()
	if ratio := float64(small) / float64(huge); ratio < 1.3 {
		t.Fatalf("huge migration speedup = %.2fx (small %v vs huge %v), want >1.3x", ratio, small, huge)
	}
}

func TestHugeRangeValidation(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "small")
		if _, err := tk.TouchHuge(a, 4*pg); err == nil {
			t.Fatal("TouchHuge on small mapping accepted")
		}
		ha, _ := tk.MmapHuge(2<<20, vm.DefaultPolicy(), "h")
		if _, err := tk.TouchHuge(ha+4096, 2<<20); err == nil {
			t.Fatal("unaligned huge touch accepted")
		}
		if _, err := tk.MoveHugeRange(a, 4*pg, 1); err == nil {
			t.Fatal("MoveHugeRange on small mapping accepted")
		}
	})
}

func TestReplicationServesLocalReads(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "ro")
		if err := tk.WriteData(a, []byte("replicated payload")); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		created, err := tk.ReplicateRange(a, 16*pg)
		if err != nil {
			t.Fatal(err)
		}
		if created != 16*3 {
			t.Fatalf("created %d replicas, want 48", created)
		}
		// Reads from node 3 are local now.
		tk.MigrateTo(13)
		before := h.k.Stats.RemoteBytes
		if err := tk.ReadReplicated(a, 16*pg, Stream); err != nil {
			t.Fatal(err)
		}
		if h.k.Stats.RemoteBytes != before {
			t.Fatal("replicated read still went remote")
		}
		if h.proc.Replicas().LocalReads != 16 {
			t.Fatalf("local reads = %d", h.proc.Replicas().LocalReads)
		}
	})
}

func TestReplicationCollapseOnWrite(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(0), 0, "ro")
		if err := tk.WriteData(a, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(a, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.ReplicateRange(a, 4*pg); err != nil {
			t.Fatal(err)
		}
		allocatedBefore := h.k.Phys.TotalAllocated()
		// Write from node 2 collapses page 0's replicas, keeping the
		// local copy.
		tk.MigrateTo(9)
		if err := tk.WriteReplicated(a); err != nil {
			t.Fatal(err)
		}
		if got := tk.GetNode(a); got != 2 {
			t.Fatalf("page after collapse on node %d, want writer's node 2", got)
		}
		if h.k.Phys.TotalAllocated() != allocatedBefore-3 {
			t.Fatalf("replica frames not freed: %d -> %d", allocatedBefore, h.k.Phys.TotalAllocated())
		}
		if h.proc.Replicas().Collapses != 1 {
			t.Fatalf("collapses = %d", h.proc.Replicas().Collapses)
		}
		// Data still intact.
		got, err := tk.ReadData(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v1" {
			t.Fatalf("data after collapse = %q", got)
		}
		// Other pages keep their replicas.
		if tk.Proc.replicas[vm.PageOf(a+pg)] == nil {
			t.Fatal("unwritten page lost its replicas")
		}
	})
}

func TestReplicatedReadContentionAdvantage(t *testing.T) {
	// 16 threads reading one hot buffer: replication removes the node-0
	// bottleneck.
	const bytes = 8 << 20
	run := func(replicate bool) sim.Time {
		h := newHarness(false)
		ready := sim.NewEvent(h.eng)
		var a vm.Addr
		var start sim.Time
		h.proc.Spawn("setup", 0, func(tk *Task) {
			a, _ = tk.Mmap(bytes, vm.ProtRW, vm.Bind(0), 0, "hot")
			if _, err := tk.FaultIn(a, bytes, true); err != nil {
				t.Error(err)
			}
			if replicate {
				if _, err := tk.ReplicateRange(a, bytes); err != nil {
					t.Error(err)
				}
			}
			start = tk.P.Now()
			ready.Fire()
		})
		var last sim.Time
		for c := 0; c < 16; c++ {
			h.proc.Spawn("reader", topology.CoreID(c), func(tk *Task) {
				ready.Wait(tk.P)
				if err := tk.ReadReplicated(a, bytes, Blocked); err != nil {
					t.Error(err)
				}
				if tk.P.Now() > last {
					last = tk.P.Now()
				}
			})
		}
		if err := h.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last - start
	}
	static, repl := run(false), run(true)
	if float64(static) < 1.5*float64(repl) {
		t.Fatalf("replication should clearly win on a hot shared buffer: static %v vs replicated %v", static, repl)
	}
}

func TestSharedMappingNextTouch(t *testing.T) {
	// The paper's kernel implementation supports only private anonymous
	// pages; supporting shared mappings is listed as future work. Our
	// implementation handles them: same madvise, same fault-time
	// migration.
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(8*pg, vm.ProtRW, vm.Bind(0), vm.VMAShared, "shm")
		if _, err := tk.FaultIn(a, 8*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, 8*pg, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(12) // node 3
		if _, err := tk.FaultIn(a, 8*pg, false); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if n := tk.GetNode(a + vm.Addr(i)*pg); n != 3 {
				t.Fatalf("shared page %d on node %d", i, n)
			}
		}
	})
}
