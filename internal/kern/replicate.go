package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Read-only page replication is the second future-work item of §6
// ("replicating read-only pages among NUMA nodes so as to achieve local
// access performance from anywhere"). Replicated pages keep their home
// frame plus one copy per other node; reads are served from the reader's
// local copy. A write collapses the replica set back to a single frame
// (the writer's node), like a COW break.

// ReplicaStats counts replication activity.
type ReplicaStats struct {
	PagesReplicated uint64 // page-copies created
	Collapses       uint64 // replica sets torn down by writes
	LocalReads      uint64 // page-reads served by a replica
}

// replicaSet tracks the per-node copies of one page.
type replicaSet struct {
	frames []*mem.Frame // index = node id; nil where absent
}

// Replicas returns the process's replica statistics.
func (pr *Process) Replicas() ReplicaStats { return pr.replicaStats }

// replicaFor returns the frame to read page v from, preferring a copy
// local to node.
func (pr *Process) replicaFor(v vm.VPN, node topology.NodeID) *mem.Frame {
	rs, ok := pr.replicas[v]
	if !ok {
		return nil
	}
	if f := rs.frames[node]; f != nil {
		return f
	}
	return nil
}

// ReplicateRange creates read-only replicas of every resident page of
// [addr, addr+length) on every node. The pages are write-protected; the
// next write collapses the replicas. Returns the number of page-copies
// created.
func (t *Task) ReplicateRange(addr vm.Addr, length int64) (int, error) {
	k := t.Proc.K
	pr := t.Proc
	sp := pr.Space
	if sp.Find(addr) == nil {
		return 0, fmt.Errorf("kern: replicate of unmapped address %#x", addr)
	}
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MadviseBase)
	pr.MmapSem.RLock(t.P)
	defer pr.MmapSem.RUnlock()
	if pr.replicas == nil {
		pr.replicas = map[vm.VPN]*replicaSet{}
	}

	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	var copies []vm.VPN
	sp.PT.ForEach(first, last, func(p vm.VPN, pte *vm.PTE) {
		if _, done := pr.replicas[p]; done {
			return
		}
		copies = append(copies, p)
	})

	// Physical copies run through the shared migration engine: one op
	// per (page, replica node), batched per chunk with one bulk transfer
	// per node pair on the lazy channel. The replica node set comes from
	// the placement layer: every node except the page's home, minus
	// nodes under memory pressure (a copy there would evict something
	// more useful). Replica registration and write protection happen in
	// the OnCopied hook, under the same chunk-lock hold as the copy
	// itself, so a page is never copied-but-writable across a simulated
	// yield; the TLB flush comes last (COW-break ordering).
	nodes := k.M.NumNodes()
	ops := make([]migrate.Op, 0, len(copies)*(nodes-1))
	expect := map[vm.VPN]int{}
	for _, p := range copies {
		home := sp.PT.Lookup(p).Frame.Node
		for _, n := range k.Placer.ReplicaNodes(home) {
			ops = append(ops, migrate.Op{VPN: p, Dst: n})
			expect[p]++
		}
	}
	type repState struct {
		rs   *replicaSet
		done int
	}
	states := map[vm.VPN]*repState{}
	created := 0
	k.Migrator(migrate.Patched).Replicate(&migrate.Request{
		P: t.P, Core: t.Core, Space: pr, Ops: ops,
		OnCopied: func(x int, f *mem.Frame) {
			p := ops[x].VPN
			st := states[p]
			if st == nil {
				st = &repState{rs: &replicaSet{frames: make([]*mem.Frame, nodes)}}
				states[p] = st
			}
			if f != nil {
				// Index by the intended node: under memory pressure the
				// frame may physically live elsewhere (AllocFrame
				// fallback), but the slot keying must stay collision-free.
				st.rs.frames[ops[x].Dst] = f
				pr.replicaStats.PagesReplicated++
				created++
			}
			st.done++
			if st.done < expect[p] {
				return
			}
			// Last copy of this page: register the set and write-protect
			// while still holding the chunk lock.
			if pte := sp.PT.Lookup(p); pte.Present() {
				st.rs.frames[pte.Frame.Node] = pte.Frame
				pr.replicas[p] = st.rs
				pte.Flags &^= vm.PTEWrite
			}
		},
	})
	t.P.Sleep(sim.Time(len(copies)) * k.P.NTFaultCtl)
	t.tlbShootdown()
	return created, nil
}

// CollapseReplicas tears down the replica set of the page containing
// addr, keeping the copy on keep (typically the writer's node) and
// restoring write permission. Called from the write-fault path.
func (pr *Process) collapseReplicas(t *Task, p vm.VPN, keep topology.NodeID) {
	rs, ok := pr.replicas[p]
	if !ok {
		return
	}
	k := pr.K
	kept := rs.frames[keep]
	if kept == nil {
		// No local copy: keep the home frame.
		for _, f := range rs.frames {
			if f != nil {
				kept = f
				break
			}
		}
	}
	for _, f := range rs.frames {
		if f != nil && f != kept {
			k.Phys.Free(f)
		}
	}
	delete(pr.replicas, p)
	pte := pr.Space.PT.Lookup(p)
	pte.Frame = kept
	v := pr.Space.Find(p.Base())
	if v != nil {
		pte.SetProt(v.Prot)
	}
	pr.replicaStats.Collapses++
}

// ReadReplicated performs a read of [addr, addr+length) that serves
// replicated pages from the local copy (no remote traffic for them).
// Non-replicated pages fall back to their home node as in AccessRange.
func (t *Task) ReadReplicated(addr vm.Addr, length int64, kind AccessKind) error {
	if length <= 0 {
		return nil
	}
	k := t.Proc.K
	pr := t.Proc
	sp := pr.Space
	if _, err := t.FaultIn(addr, length, false); err != nil {
		return err
	}
	local := t.Node()
	nn := k.M.NumNodes()
	bytesByNode := t.scratch.nodeBytes
	if cap(bytesByNode) < nn {
		bytesByNode = make([]float64, nn)
	}
	bytesByNode = bytesByNode[:nn]
	for i := range bytesByNode {
		bytesByNode[i] = 0
	}
	order := t.scratch.nodeOrder[:0]
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	end := addr + vm.Addr(length)
	add := func(node topology.NodeID, lo, hi vm.Addr) {
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if bytesByNode[node] == 0 {
			order = append(order, node)
		}
		bytesByNode[node] += float64(hi - lo)
	}
	if len(pr.replicas) == 0 {
		// No replica sets anywhere in the process: the read is a plain
		// home-node access, accumulated extent-run-at-a-time like
		// AccessRange (no chunk materialization, no per-page map probe).
		sp.PT.Extents(first, last, false, func(e vm.Ext) bool {
			add(e.Node, e.Start.Base(), (e.Start + vm.VPN(e.N)).Base())
			return true
		})
	} else {
		sp.PT.ForEach(first, last, func(p vm.VPN, pte *vm.PTE) {
			node := pte.Frame.Node
			if f := pr.replicaFor(p, local); f != nil {
				node = local
				pr.replicaStats.LocalReads++
			}
			add(node, p.Base(), p.Base()+model.PageSize)
		})
	}
	t.scratch.nodeBytes, t.scratch.nodeOrder = bytesByNode, order
	for _, node := range order {
		t.chargeNodeTraffic(node, bytesByNode[node], kind)
	}
	return nil
}

// WriteReplicated performs a write to one page, collapsing its replica
// set first (the COW-style break).
func (t *Task) WriteReplicated(addr vm.Addr) error {
	pr := t.Proc
	p := vm.PageOf(addr)
	if _, ok := pr.replicas[p]; ok {
		k := pr.K
		k.Stats.Faults++
		if k.bus.Active(telemetry.TopicPageFault) {
			k.bus.Publish(telemetry.Event{
				Topic: telemetry.TopicPageFault,
				Node:  t.Node(), Dst: telemetry.NoNode,
				Task: t.P.ID(), Pages: 1,
			})
		}
		t.P.Sleep(k.P.FaultBase + k.P.NTFaultCtl)
		cl := pr.chunkLock(vm.ChunkIndex(p))
		cl.Acquire(t.P)
		pr.collapseReplicas(t, p, t.Node())
		cl.Release()
		t.tlbShootdown()
	}
	return t.Touch(addr, true)
}
