package kern

import (
	"testing"

	"numamig/internal/vm"
)

func TestRectPagesDedup(t *testing.T) {
	// 2KB rows with 8KB stride starting mid-page: rows share no pages.
	r := Rect{Base: 0x10000, RowBytes: 2048, Stride: 8192, Rows: 4}
	pages := r.pages()
	if len(pages) != 4 {
		t.Fatalf("pages = %v", pages)
	}
	// 2KB rows, 2KB stride: fully contiguous, rows share pages.
	r2 := Rect{Base: 0x10000, RowBytes: 2048, Stride: 2048, Rows: 4}
	if got := len(r2.pages()); got != 2 {
		t.Fatalf("contiguous rect pages = %d, want 2", got)
	}
	// Empty rect.
	if len((Rect{}).pages()) != 0 {
		t.Fatal("empty rect has pages")
	}
	if (Rect{RowBytes: 100, Rows: 3}).Bytes() != 300 {
		t.Fatal("Bytes wrong")
	}
}

func TestFaultInRectDemandAndNT(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		// 16 rows of 2KB with 16KB stride (like a 512-col block in a
		// 4096-col float matrix).
		a, _ := tk.Mmap(16*16384, vm.ProtRW, vm.Bind(0), 0, "m")
		r := Rect{Base: a, RowBytes: 2048, Stride: 16384, Rows: 16}
		n, err := tk.FaultInRect(r, true)
		if err != nil {
			t.Fatal(err)
		}
		if n != 16 {
			t.Fatalf("serviced = %d, want 16", n)
		}
		// All pages of the rect on node 0.
		counts, absent := tk.NodesOfRect(r)
		if absent != 0 || counts[0] != 16 {
			t.Fatalf("counts = %v absent = %d", counts, absent)
		}
		// Mark NT, touch from another node: only rect pages migrate.
		if _, err := tk.Madvise(a, 16*16384, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(13) // node 3
		if _, err := tk.FaultInRect(r, false); err != nil {
			t.Fatal(err)
		}
		counts, _ = tk.NodesOfRect(r)
		if counts[3] != 16 {
			t.Fatalf("after NT: %v", counts)
		}
	})
	if h.k.Stats.NTMigrations != 16 {
		t.Fatalf("nt migrations = %d", h.k.Stats.NTMigrations)
	}
}

func TestAccessRectTrafficSplitsByNode(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(64*pg, vm.ProtRW, vm.Interleave(0, 1), 0, "m")
		r := Rect{Base: a, RowBytes: 64 * pg, Stride: 64 * pg, Rows: 1}
		if err := tk.AccessRect(r, Stream, false); err != nil {
			t.Fatal(err)
		}
	})
	if h.k.Stats.LocalBytes != 32*pg || h.k.Stats.RemoteBytes != 32*pg {
		t.Fatalf("local=%v remote=%v", h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes)
	}
}

func TestAccessRectUserNTSegvPath(t *testing.T) {
	h := newHarness(false)
	repaired := false
	h.proc.OnSegv(func(tk *Task, info SigInfo) {
		repaired = true
		if err := tk.Mprotect(vm.PageFloor(info.Addr), 64*pg, vm.ProtRW); err != nil {
			t.Error(err)
		}
	})
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(64*pg, vm.ProtRW, vm.Bind(0), 0, "m")
		if _, err := tk.FaultIn(a, 64*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.Mprotect(a, 64*pg, vm.ProtNone); err != nil {
			t.Fatal(err)
		}
		r := Rect{Base: a, RowBytes: 4096, Stride: 4096, Rows: 64}
		if _, err := tk.FaultInRect(r, false); err != nil {
			t.Fatal(err)
		}
	})
	if !repaired {
		t.Fatal("segv handler never ran through rect path")
	}
}
