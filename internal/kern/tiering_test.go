package kern

import (
	"testing"

	"numamig/internal/sim"
	"numamig/internal/vm"
)

// Memory-tiering tests: the demotion scan's nodemask gate, promotion
// hysteresis window, temperature-aware tier targets and the proactive
// trickle. They drive the kswapd daemons directly through small
// harness machines, crafting PTE state (ages, promotion stamps)
// in-test where the invariant needs exact control.

// TestKswapdHonorsBindNodemask is the regression test for the seed
// behaviour where kswapd demoted strict-bind pages out of their
// mbind/set_mempolicy nodemask: a cold bind(0) buffer on a pressured
// node must stay on node 0 — the scan skips it (KswapdMaskSkips) and
// reclaims the unbound ballast instead.
func TestKswapdHonorsBindNodemask(t *testing.T) {
	h := newSmallHarness(2, 1024) // low 51, high 81
	h.k.EnableDemotion()
	const bindPages = 64
	var bindHist map[int]int
	h.run(t, 0, func(tk *Task) {
		bind, err := tk.Mmap(bindPages*pg, vm.ProtRW, vm.Bind(0), 0, "bind")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(bind, bindPages*pg, true); err != nil {
			t.Fatal(err)
		}
		// Unbound ballast overcommits node 0 past its low watermark.
		cold, err := tk.Mmap(1100*pg, vm.ProtRW, vm.Preferred(0), 0, "cold")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(cold, 1100*pg, true); err != nil {
			t.Fatal(err)
		}
		// Everything is cold from here on: the daemons are free to
		// demote whatever the nodemask gate allows.
		tk.P.Sleep(40 * h.k.P.KswapdPeriod)
		bindHist = map[int]int{}
		for _, n := range tk.GetNodes(bind, bindPages*pg) {
			bindHist[n]++
		}
	})
	if h.k.Stats.PagesDemoted == 0 {
		t.Fatal("demotion never ran: the regression is not exercised")
	}
	if bindHist[0] != bindPages {
		t.Fatalf("strict-bind pages escaped their nodemask: hist=%v", bindHist)
	}
	if h.k.Stats.KswapdMaskSkips == 0 {
		t.Fatal("the scan never reported a nodemask skip for the cold bind pages")
	}
}

// TestPromotionHysteresisWindow pins the hysteresis invariant: a page
// stamped as promoted at scan-period generation N is not demotable
// before generation N+PromotionHysteresisPeriods, and becomes
// demotable afterwards.
func TestPromotionHysteresisWindow(t *testing.T) {
	h := newSmallHarness(2, 1024) // low 51, high 81
	h.k.EnableDemotion()
	hyst := h.k.P.PromotionHysteresisPeriods
	if hyst < 2 {
		t.Fatalf("default PromotionHysteresisPeriods = %d, too small to observe the window", hyst)
	}
	period := h.k.P.KswapdPeriod
	h.run(t, 0, func(tk *Task) {
		buf, err := tk.Mmap(1100*pg, vm.ProtRW, vm.Preferred(0), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(buf, 1100*pg, true); err != nil {
			t.Fatal(err)
		}
		// Stamp every node-0 page as freshly promoted at generation g0:
		// the whole pressured node consists of protected pages.
		g0 := h.k.PromoGeneration()
		pt := h.proc.Space.PT
		pt.ForEach(vm.PageOf(buf), vm.PageOf(buf+1100*pg-1)+1, func(_ vm.VPN, pte *vm.PTE) {
			if pte.Frame.Node == 0 {
				pte.PromoGen = g0
			}
		})
		// Protection holds while curGen - g0 < hyst, i.e. strictly
		// before virtual time (g0+hyst-1)*period. Sleep to just inside
		// that boundary: kswapd has woken repeatedly, found pressure,
		// and must have demoted nothing.
		protectedEnd := sim.Time(int64(g0)+int64(hyst)-1) * period
		tk.P.Sleep(protectedEnd - tk.P.Now() - period/4)
		if got := h.k.Stats.PagesDemoted; got != 0 {
			t.Fatalf("demoted %d pages before generation N+%d", got, hyst)
		}
		if h.k.Stats.KswapdWakeups == 0 {
			t.Fatal("kswapd never woke during the protected window: the invariant is vacuous")
		}
		if h.k.Stats.KswapdHysteresisSkips == 0 {
			t.Fatal("the scan never skipped a protected page")
		}
		// Past the window the same pages age out and demote (one period
		// to age, one to collect, plus slack).
		tk.P.Sleep(6 * period)
		if h.k.Stats.PagesDemoted == 0 {
			t.Fatal("pages never became demotable after the hysteresis window expired")
		}
	})
}

// TestDemotionTemperatureTiers pins the tier choice deterministically:
// on a 4-node square machine pressured on node 0, pages crafted cold
// (two aged periods) land on the farthest node (3) and pages crafted
// warm (one aged period) land on the nearest fallback (1).
func TestDemotionTemperatureTiers(t *testing.T) {
	h := newSmallHarness(4, 1024) // low 51, high 81
	h.k.EnableDemotion()
	const tierPages = 32
	var coldHist, warmHist map[int]int
	h.run(t, 0, func(tk *Task) {
		coldBuf, err := tk.Mmap(tierPages*pg, vm.ProtRW, vm.Preferred(0), 0, "cold")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(coldBuf, tierPages*pg, true); err != nil {
			t.Fatal(err)
		}
		warmBuf, err := tk.Mmap(tierPages*pg, vm.ProtRW, vm.Preferred(0), 0, "warm")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(warmBuf, tierPages*pg, true); err != nil {
			t.Fatal(err)
		}
		// Pinned filler pressures node 0 without offering the scan any
		// other demotable pages: only the two tier buffers can move.
		filler, err := tk.Mmap(920*pg, vm.ProtRW, vm.Preferred(0), 0, "filler")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(filler, 920*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.PinRange(filler, 920*pg); err != nil {
			t.Fatal(err)
		}
		// Craft the temperatures: cold pages have gone unreferenced for
		// two aged periods (Age 2), warm ones for none yet (Age 0, bit
		// clear — the next encounter classifies them warm).
		pt := h.proc.Space.PT
		pt.ForEach(vm.PageOf(coldBuf), vm.PageOf(coldBuf+tierPages*pg-1)+1, func(_ vm.VPN, pte *vm.PTE) {
			pte.Flags &^= vm.PTEAccessed
			pte.Age = 2
		})
		pt.ForEach(vm.PageOf(warmBuf), vm.PageOf(warmBuf+tierPages*pg-1)+1, func(_ vm.VPN, pte *vm.PTE) {
			pte.Flags &^= vm.PTEAccessed
			pte.Age = 0
		})
		tk.P.Sleep(4 * h.k.P.KswapdPeriod)
		coldHist, warmHist = map[int]int{}, map[int]int{}
		for _, n := range tk.GetNodes(coldBuf, tierPages*pg) {
			coldHist[n]++
		}
		for _, n := range tk.GetNodes(warmBuf, tierPages*pg) {
			warmHist[n]++
		}
	})
	// Square topology from node 0: the far tier is the farthest distance
	// group {3}; the near tier is the best of the nearest group {1, 2} —
	// node 2, because the filler's allocation spill landed on node 1 and
	// the tier choice prefers the most free frames.
	if coldHist[3] != tierPages {
		t.Fatalf("cold pages should land on the far tier (node 3): hist=%v", coldHist)
	}
	if warmHist[2] != tierPages {
		t.Fatalf("warm pages should land on the near tier (node 2): hist=%v", warmHist)
	}
	if got := h.k.Stats.PagesDemotedCold; got != tierPages {
		t.Fatalf("cold-tier counter = %d, want %d", got, tierPages)
	}
}

// TestKswapdProactiveTrickle: a node between its low and high
// watermarks is never "under pressure" (no reclaim wake-ups), yet the
// proactive trickle demotes genuinely cold pages until headroom is
// restored above the high watermark.
func TestKswapdProactiveTrickle(t *testing.T) {
	h := newSmallHarness(2, 1024) // low 51, high 81
	h.k.EnableDemotion()
	h.run(t, 0, func(tk *Task) {
		// 960 pages leaves 64 free: above low (51), below high (81).
		buf, err := tk.Mmap(960*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(buf, 960*pg, true); err != nil {
			t.Fatal(err)
		}
		// Wait: untouched pages age to cold and trickle out. (The bind
		// policy here is Bind(0) — mmap-time placement — but the VMA
		// policy being strict also exercises the mask gate; switch to an
		// unbound policy so the trickle may move them.)
		tk.P.Sleep(2 * h.k.P.KswapdPeriod)
		if err := tk.Mbind(buf, 960*pg, vm.DefaultPolicy(), 0); err != nil {
			t.Fatal(err)
		}
		tk.P.Sleep(12 * h.k.P.KswapdPeriod)
	})
	if h.k.Stats.KswapdWakeups != 0 {
		t.Fatalf("node between low and high watermark woke full reclaim %d times",
			h.k.Stats.KswapdWakeups)
	}
	if h.k.Stats.KswapdProactiveRuns == 0 || h.k.Stats.PagesDemoted == 0 {
		t.Fatalf("proactive trickle never ran: runs=%d demoted=%d",
			h.k.Stats.KswapdProactiveRuns, h.k.Stats.PagesDemoted)
	}
	if h.k.Stats.PagesDemoted != h.k.Stats.PagesDemotedCold {
		t.Fatalf("trickle demoted warm pages: total=%d cold=%d",
			h.k.Stats.PagesDemoted, h.k.Stats.PagesDemotedCold)
	}
	if !h.k.Phys.Reclaimed(0) {
		t.Fatalf("trickle never restored headroom: %d free", h.k.Phys.FreeFrames(0))
	}
}
