// Package kern simulates the Linux kernel subsystems the paper studies:
// demand paging, the page-fault handler (including Migrate-on-next-touch),
// SIGSEGV delivery to user handlers, TLB shootdowns, the migration system
// calls move_pages (both the quadratic pre-2.6.29 implementation and the
// paper's linear fix) and migrate_pages, plus madvise/mprotect/mbind/
// set_mempolicy. Locking (mmap_sem, per-2MB PTE-page locks, a global LRU
// lock, per-node zone locks) is modelled with DES resources so contention
// emerges from execution rather than from formulas.
package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Accounting categories used in cost breakdowns (Figures 6a/6b).
const (
	CatMovePagesCopy = "move_pages copy"
	CatMovePagesCtl  = "move_pages control"
	CatNTCopy        = "nt copy page"
	CatNTCtl         = "nt fault+migration control"
	CatMadvise       = "madvise"
	CatMprotectMark  = "mprotect mark"
	CatMprotectRest  = "mprotect restore"
	CatFaultSignal   = "page-fault+signal"
	CatNumaScan      = "numa scan"
	CatNumaHint      = "numa hint fault"
	CatNumaCopy      = "numa copy page"
)

// Stats aggregates kernel-wide event counters.
type Stats struct {
	Faults         uint64 // page faults taken
	MinorFaults    uint64 // permission fixups
	DemandAllocs   uint64 // first-touch allocations
	NTMigrations   uint64 // pages migrated by kernel next-touch
	NTLocalSkips   uint64 // next-touch faults already local (no copy)
	MovePagesCalls uint64
	MovePagesPages uint64 // pages actually migrated by move_pages
	MigratePages   uint64 // pages migrated by migrate_pages
	Sigsegvs       uint64
	TLBShootdowns  uint64
	Syscalls       uint64
	LocalBytes     float64 // application bytes served from local node
	RemoteBytes    float64 // application bytes served from remote nodes

	// Automatic NUMA balancing (internal/autonuma).
	NumaPtesScanned   uint64 // PTEs examined by the scanner daemon
	NumaPtesArmed     uint64 // PTEs armed with the hinting mark
	NumaHintFaults    uint64 // hinting faults taken
	NumaPagesPromoted uint64 // pages migrated by the balancer
}

// Kernel is the simulated operating system instance for one machine.
type Kernel struct {
	Eng  *sim.Engine
	M    *topology.Machine
	Phys *mem.Phys
	P    model.Params
	Net  *sim.Fluid

	// Fluid links modelling the memory system.
	KernEng  []*sim.Link // per-core kernel copy engine
	UserEng  []*sim.Link // per-core user-side memory pipe
	NodeCtrl []*sim.Link // per-node memory controller
	HT       []*sim.Link // per topology link
	migChan  map[[3]int32]*sim.Link

	// Global kernel locks.
	migLock *sim.Resource // serialized migration setup (pagevec drain etc.)
	lruLock *sim.Resource // global LRU lock

	// The shared migration engines (internal/migrate): the only place
	// pages physically move. One per move_pages generation; both run on
	// the same locks and channels so contention is shared.
	migPatched   *migrate.Engine
	migUnpatched *migrate.Engine

	Stats Stats
}

// New builds a kernel for the machine with the given parameters. backed
// selects real byte backing for frames.
func New(eng *sim.Engine, m *topology.Machine, p model.Params, backed bool) *Kernel {
	k := &Kernel{
		Eng:     eng,
		M:       m,
		Phys:    mem.NewPhys(m, backed),
		P:       p,
		Net:     sim.NewFluid(eng),
		migChan: map[[3]int32]*sim.Link{},
		migLock: sim.NewResource(eng, "mig_setup", 1),
		lruLock: sim.NewResource(eng, "lru_lock", 1),
	}
	for c := 0; c < m.NumCores(); c++ {
		k.KernEng = append(k.KernEng, sim.NewLink(fmt.Sprintf("kcopy%d", c), p.KernCopyRate))
		k.UserEng = append(k.UserEng, sim.NewLink(fmt.Sprintf("ucopy%d", c), p.UserCopyRate))
	}
	for n := 0; n < m.NumNodes(); n++ {
		k.NodeCtrl = append(k.NodeCtrl, sim.NewLink(fmt.Sprintf("ctrl%d", n), p.NodeCtrlBW))
	}
	for _, l := range m.Links {
		k.HT = append(k.HT, sim.NewLink(fmt.Sprintf("ht%d-%d", l.A, l.B), p.HTLinkBW))
	}
	k.migPatched = migrate.New(k, migrate.Patched)
	k.migUnpatched = migrate.New(k, migrate.Unpatched)
	return k
}

// Migrator returns the shared migration engine for a strategy.
func (k *Kernel) Migrator(s migrate.Strategy) *migrate.Engine {
	if s == migrate.Unpatched {
		return k.migUnpatched
	}
	return k.migPatched
}

// ---- migrate.Env implementation ----
//
// The kernel is the engine's environment: it supplies the cost model,
// the physical allocator, the global migration/LRU locks, and the
// fluid-network migration channels.

// Params returns the calibrated cost model.
func (k *Kernel) Params() *model.Params { return &k.P }

// AllocFrame allocates a frame on target, falling back to other nodes
// in distance order when the target is full.
func (k *Kernel) AllocFrame(target topology.NodeID) *mem.Frame {
	f, err := k.Phys.Alloc(target)
	if err == nil {
		return f
	}
	// Fallback: nodes by distance from target.
	type cand struct {
		n topology.NodeID
		d int
	}
	var cands []cand
	for n := 0; n < k.M.NumNodes(); n++ {
		if topology.NodeID(n) == target {
			continue
		}
		cands = append(cands, cand{topology.NodeID(n), k.M.Dist[target][n]})
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].d < cands[i].d || (cands[j].d == cands[i].d && cands[j].n < cands[i].n) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	for _, c := range cands {
		if f, err := k.Phys.Alloc(c.n); err == nil {
			return f
		}
	}
	panic("kern: machine out of memory")
}

// FreeFrame returns a frame to the physical allocator.
func (k *Kernel) FreeFrame(f *mem.Frame) { k.Phys.Free(f) }

// AllocHugeFrame reserves a 2 MiB unit on the node: 511 footprint
// frames plus one representative frame for the unit.
func (k *Kernel) AllocHugeFrame(target topology.NodeID) *mem.Frame {
	if err := k.Phys.AllocFootprint(target, model.PTEChunkPages-1); err != nil {
		panic("kern: node out of memory for huge page")
	}
	f, err := k.Phys.Alloc(target)
	if err != nil {
		panic("kern: node out of memory for huge page")
	}
	return f
}

// FreeHugeFrame releases a huge unit's representative frame and its
// 511-frame footprint.
func (k *Kernel) FreeHugeFrame(f *mem.Frame) {
	k.Phys.Free(f)
	k.Phys.ReleaseFootprint(f.Node, model.PTEChunkPages-1)
}

// NoteMigration records one migrated-in page on dst.
func (k *Kernel) NoteMigration(dst topology.NodeID) { k.Phys.NoteMigration(dst) }

// MigLock returns the global serialized migration-setup lock.
func (k *Kernel) MigLock() *sim.Resource { return k.migLock }

// LRULock returns the global LRU lock.
func (k *Kernel) LRULock() *sim.Resource { return k.lruLock }

// Copy transfers bytes through the kernel page-migration channel.
func (k *Kernel) Copy(p *sim.Proc, bytes float64, core topology.CoreID, src, dst topology.NodeID, syncChan bool) {
	k.Net.Transfer(p, bytes, k.migPath(core, src, dst, syncChan)...)
}

// MigChan returns the page-migration channel between a pair of nodes
// (order-insensitive), creating it lazily. The sync (move_pages /
// migrate_pages) and lazy (next-touch fault) paths see different
// effective capacities on the same physical channel (§4.4, Fig. 7).
func (k *Kernel) MigChan(a, b topology.NodeID, syncPath bool) *sim.Link {
	if a > b {
		a, b = b, a
	}
	cls := int32(0)
	bw := k.P.MigChanBW
	name := "migchan"
	if syncPath {
		cls = 1
		bw = k.P.MigChanSyncBW
		name = "migchan-sync"
	}
	key := [3]int32{int32(a), int32(b), cls}
	l := k.migChan[key]
	if l == nil {
		l = sim.NewLink(fmt.Sprintf("%s%d-%d", name, a, b), bw)
		k.migChan[key] = l
	}
	return l
}

// routeLinks returns the fluid links of the HT route between two nodes.
func (k *Kernel) routeLinks(from, to topology.NodeID) []*sim.Link {
	ids := k.M.Route(from, to)
	out := make([]*sim.Link, 0, len(ids))
	for _, id := range ids {
		out = append(out, k.HT[id])
	}
	return out
}

// migPath returns the fluid path for a kernel page migration executed on
// core, moving data src -> dst. syncPath selects the batched
// move_pages/migrate_pages channel capacity.
func (k *Kernel) migPath(core topology.CoreID, src, dst topology.NodeID, syncPath bool) []*sim.Link {
	links := []*sim.Link{k.KernEng[core], k.MigChan(src, dst, syncPath), k.NodeCtrl[src]}
	if src != dst {
		links = append(links, k.NodeCtrl[dst])
	}
	return links
}

// userPath returns the fluid path for a user-level copy or stream on
// core touching data on srcNode (and optionally writing dstNode; pass
// src==dst for pure streams).
func (k *Kernel) userPath(core topology.CoreID, src, dst topology.NodeID) []*sim.Link {
	coreNode := k.M.NodeOf(core)
	links := []*sim.Link{k.UserEng[core], k.NodeCtrl[src]}
	if dst != src {
		links = append(links, k.NodeCtrl[dst])
	}
	links = append(links, k.routeLinks(coreNode, src)...)
	if dst != src && dst != coreNode {
		links = append(links, k.routeLinks(coreNode, dst)...)
	}
	return dedupLinks(links)
}

func dedupLinks(ls []*sim.Link) []*sim.Link {
	out := ls[:0]
	for _, l := range ls {
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

// NewProcess creates a process with an empty address space.
func (k *Kernel) NewProcess(name string) *Process {
	return &Process{
		K:          k,
		Name:       name,
		Space:      vm.NewSpace(k.Phys),
		MmapSem:    sim.NewRWLock(k.Eng, name+".mmap_sem"),
		chunkLocks: map[uint64]*sim.Resource{},
	}
}
