// Package kern simulates the Linux kernel subsystems the paper studies:
// demand paging, the page-fault handler (including Migrate-on-next-touch),
// SIGSEGV delivery to user handlers, TLB shootdowns, the migration system
// calls move_pages (both the quadratic pre-2.6.29 implementation and the
// paper's linear fix) and migrate_pages, plus madvise/mprotect/mbind/
// set_mempolicy. Locking (mmap_sem, per-2MB PTE-page locks, a global LRU
// lock, per-node zone locks) is modelled with DES resources so contention
// emerges from execution rather than from formulas.
package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/placement"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/tenancy"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Accounting categories used in cost breakdowns (Figures 6a/6b).
const (
	CatMovePagesCopy = "move_pages copy"
	CatMovePagesCtl  = "move_pages control"
	CatNTCopy        = "nt copy page"
	CatNTCtl         = "nt fault+migration control"
	CatMadvise       = "madvise"
	CatMprotectMark  = "mprotect mark"
	CatMprotectRest  = "mprotect restore"
	CatFaultSignal   = "page-fault+signal"
	CatNumaScan      = "numa scan"
	CatNumaHint      = "numa hint fault"
	CatNumaCopy      = "numa copy page"
	CatKswapd        = "kswapd scan"
	CatDemotionCopy  = "demotion copy page"
)

// Stats aggregates kernel-wide event counters.
type Stats struct {
	Faults         uint64 // page faults taken
	MinorFaults    uint64 // permission fixups
	DemandAllocs   uint64 // first-touch allocations
	NTMigrations   uint64 // pages migrated by kernel next-touch
	NTLocalSkips   uint64 // next-touch faults already local (no copy)
	MovePagesCalls uint64
	MovePagesPages uint64 // pages actually migrated by move_pages
	MigratePages   uint64 // pages migrated by migrate_pages
	Sigsegvs       uint64
	TLBShootdowns  uint64
	Syscalls       uint64
	LocalBytes     float64 // application bytes served from local node
	RemoteBytes    float64 // application bytes served from remote nodes

	// Automatic NUMA balancing (internal/autonuma).
	NumaPtesScanned   uint64 // PTEs examined by the scanner daemon
	NumaPtesArmed     uint64 // PTEs armed with the hinting mark
	NumaHintFaults    uint64 // hinting faults taken
	NumaPagesPromoted uint64 // pages migrated by the balancer

	// Memory pressure (watermarks + demotion daemon).
	KswapdWakeups     uint64 // daemon wake-ups that found pressure
	KswapdPtesScanned uint64 // PTEs examined by the cold-page scan
	PagesAged         uint64 // accessed bits cleared by the scan
	PagesDemoted      uint64 // pages demoted off pressured nodes
	HugeFallbacks     uint64 // huge faults served with base pages (exhaustion)

	// Memory tiering (promotion/demotion interplay; kswapd.go).
	PagesDemotedCold      uint64 // the subset of PagesDemoted classified cold (far tier)
	KswapdProactiveRuns   uint64 // trickle passes between the low and high watermarks
	KswapdHysteresisSkips uint64 // pages skipped: promoted within the hysteresis window
	KswapdMaskSkips       uint64 // pages skipped: every demotion target outside the strict-bind nodemask
	PromoteDemoteFlips    uint64 // pages demoted within FlipWindowPeriods of their promotion

	// Explicit slow-memory tier (CXL; numahint.go + the tier map in
	// model.Params).
	PromoteRateLimited uint64 // slow-tier promotions dropped by the token bucket
}

// Kernel is the simulated operating system instance for one machine.
type Kernel struct {
	Eng  *sim.Engine
	M    *topology.Machine
	Phys *mem.Phys
	P    model.Params
	Net  *sim.Fluid

	// Placer owns every node-selection decision: policy resolution,
	// watermark-aware allocation fallback, demotion/replica targets.
	Placer *placement.Placer

	// Fluid links modelling the memory system.
	KernEng  []*sim.Link // per-core kernel copy engine
	UserEng  []*sim.Link // per-core user-side memory pipe
	NodeCtrl []*sim.Link // per-node memory controller
	HT       []*sim.Link // per topology link
	migChan  map[[3]int32]*sim.Link

	// Global kernel locks.
	migLock *sim.Resource // serialized migration setup (pagevec drain etc.)
	lruLock *sim.Resource // global LRU lock

	// The shared migration engines (internal/migrate): the only place
	// pages physically move. One per move_pages generation; both run on
	// the same locks and channels so contention is shared.
	migPatched   *migrate.Engine
	migUnpatched *migrate.Engine

	// Memory-pressure daemons (kswapd.go).
	procs    []*Process // every process, for the demotion daemons' walks
	kswapds  []*kswapd
	demotion bool
	// hub batches the periodic daemons' ticks into per-deadline group
	// events (daemonhub.go); kswapd and the AutoNUMA scanners register
	// here instead of each holding a parked proc.
	hub *DaemonHub

	// Per-node promotion token buckets (Params.PromoteRateLimitMBps):
	// only slow-tier source nodes ever consume from them.
	promoBuckets []promoBucket

	// tierLat caches each node's tier-class latency multiplier
	// (TierClassOf(TierOf(n)).Latency()), indexed by node id. Tiers are
	// fixed at construction, and the access hot paths charge this
	// multiplier on every node-group of every extent walk — two map
	// lookups per charge otherwise.
	tierLat []float64

	// bus is the machine's telemetry event bus (internal/telemetry):
	// every Stats increment with a time dimension also publishes a
	// typed event here. Unexported so the Bus accessor can satisfy
	// migrate.Env.
	bus *telemetry.Bus

	// Ten is the multi-tenant residency ledger (internal/tenancy). It is
	// always present; processes without a Tenant never touch it, so
	// single-tenant scenarios pay nothing.
	Ten *tenancy.Ledger

	Stats Stats
}

// New builds a kernel for the machine with the given parameters. backed
// selects real byte backing for frames.
func New(eng *sim.Engine, m *topology.Machine, p model.Params, backed bool) *Kernel {
	k := &Kernel{
		Eng:     eng,
		M:       m,
		Phys:    mem.NewPhys(m, backed),
		P:       p,
		Net:     sim.NewFluid(eng),
		migChan: map[[3]int32]*sim.Link{},
		migLock: sim.NewResource(eng, "mig_setup", 1),
		lruLock: sim.NewResource(eng, "lru_lock", 1),
	}
	for c := 0; c < m.NumCores(); c++ {
		k.KernEng = append(k.KernEng, sim.NewLink(fmt.Sprintf("kcopy%d", c), p.KernCopyRate))
		k.UserEng = append(k.UserEng, sim.NewLink(fmt.Sprintf("ucopy%d", c), p.UserCopyRate))
	}
	for n := 0; n < m.NumNodes(); n++ {
		// A slow-tier node's memory controller runs at its tier class's
		// fraction of the DRAM rate (a CXL expander behind its link), so
		// every fluid path touching the node — application accesses,
		// demotion copies in, promotion copies out — shares the reduced
		// capacity.
		bw := p.NodeCtrlBW * p.TierClassOf(p.TierOf(n)).Bandwidth()
		k.NodeCtrl = append(k.NodeCtrl, sim.NewLink(fmt.Sprintf("ctrl%d", n), bw))
	}
	for _, l := range m.Links {
		k.HT = append(k.HT, sim.NewLink(fmt.Sprintf("ht%d-%d", l.A, l.B), p.HTLinkBW))
	}
	k.bus = telemetry.NewBus(eng.Now)
	k.Ten = tenancy.NewLedger(k.bus, k.Phys.TierOf)
	k.hub = NewDaemonHub(eng)
	k.Placer = placement.New(m, k.Phys, &k.P)
	k.Placer.SetBus(k.bus)
	// placement.New installed the tier ids; freeze the per-node latency
	// multipliers now (flat machines resolve to 1.0 everywhere).
	k.tierLat = make([]float64, m.NumNodes())
	for n := range k.tierLat {
		k.tierLat[n] = p.TierClassOf(k.Phys.TierOf(topology.NodeID(n))).Latency()
	}
	k.migPatched = migrate.New(k, migrate.Patched)
	k.migUnpatched = migrate.New(k, migrate.Unpatched)
	return k
}

// Bus returns the kernel's telemetry event bus (also the migrate.Env
// hook the shared migration engines publish through).
func (k *Kernel) Bus() *telemetry.Bus { return k.bus }

// Hub returns the kernel's daemon hub, where periodic kernel threads
// (kswapd, AutoNUMA scanners) register their batched ticks.
func (k *Kernel) Hub() *DaemonHub { return k.hub }

// PromoGeneration returns the current kswapd scan-period generation:
// virtual time quantized by KswapdPeriod, offset so a valid generation
// is never 0 (0 in PTE.PromoGen means "never promoted"). The promotion
// paths stamp it into the pages they move; the demotion scan compares
// it against the hysteresis and flip windows.
func (k *Kernel) PromoGeneration() uint32 {
	if k.P.KswapdPeriod <= 0 {
		return 1
	}
	return uint32(k.Eng.Now()/k.P.KswapdPeriod) + 1
}

// Migrator returns the shared migration engine for a strategy.
func (k *Kernel) Migrator(s migrate.Strategy) *migrate.Engine {
	if s == migrate.Unpatched {
		return k.migUnpatched
	}
	return k.migPatched
}

// ---- migrate.Env implementation ----
//
// The kernel is the engine's environment: it supplies the cost model,
// the physical allocator, the global migration/LRU locks, and the
// fluid-network migration channels.

// Params returns the calibrated cost model.
func (k *Kernel) Params() *model.Params { return &k.P }

// AllocFrame allocates a frame on target through the placement layer,
// which falls back along the target's zonelist (skipping pressured
// nodes first) when the target cannot take the page.
func (k *Kernel) AllocFrame(target topology.NodeID) *mem.Frame {
	f := k.Placer.AllocPage(target)
	if f == nil {
		panic("kern: machine out of memory")
	}
	return f
}

// FreeFrame returns a frame to the physical allocator.
func (k *Kernel) FreeFrame(f *mem.Frame) { k.Phys.Free(f) }

// AllocHugeFrame reserves a 2 MiB unit (511 footprint frames plus one
// representative frame) as near target as the placement layer allows.
func (k *Kernel) AllocHugeFrame(target topology.NodeID) *mem.Frame {
	f := k.Placer.AllocHugePage(target)
	if f == nil {
		panic("kern: no node can host a huge page")
	}
	return f
}

// FreeHugeFrame releases a huge unit's representative frame and its
// 511-frame footprint.
func (k *Kernel) FreeHugeFrame(f *mem.Frame) {
	k.Phys.Free(f)
	k.Phys.ReleaseFootprint(f.Node, model.PTEChunkPages-1)
}

// NoteMigration records one migrated-in page on dst.
func (k *Kernel) NoteMigration(dst topology.NodeID) { k.Phys.NoteMigration(dst) }

// TierOf returns a node's memory tier id (0 = DRAM, > 0 = slow).
func (k *Kernel) TierOf(n topology.NodeID) int { return k.Phys.TierOf(n) }

// promoBucket is one node's promotion-rate-limit state: bytes of
// promotion budget available and the virtual time of the last refill.
type promoBucket struct {
	tokens float64
	last   sim.Time
}

// AllowSlowPromotion consumes one page of promotion budget from src's
// token bucket, mirroring Linux's numa_balancing_promote_rate_limit_MBps:
// the bucket refills at Params.PromoteRateLimitMBps of virtual time and
// caps at one KswapdPeriod's burst (at least one page). It returns true
// — without consuming anything — when the limiter is off or src is a
// fast-tier node; a false return means the caller must drop the
// promotion (counted in Stats.PromoteRateLimited) and leave the page
// for a later hinting fault to retry.
func (k *Kernel) AllowSlowPromotion(src topology.NodeID) bool {
	if k.P.PromoteRateLimitMBps <= 0 || k.Phys.TierOf(src) == 0 {
		return true
	}
	rate := k.P.PromoteRateLimitMBps * 1e6 // bytes per virtual second
	burst := rate * k.P.KswapdPeriod.Seconds()
	if burst < model.PageSize {
		burst = model.PageSize
	}
	if int(src) >= len(k.promoBuckets) {
		buckets := make([]promoBucket, k.M.NumNodes())
		for i := range buckets {
			buckets[i] = promoBucket{tokens: burst}
		}
		copy(buckets, k.promoBuckets)
		k.promoBuckets = buckets
	}
	b := &k.promoBuckets[src]
	now := k.Eng.Now()
	b.tokens += rate * (now - b.last).Seconds()
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < model.PageSize {
		k.Stats.PromoteRateLimited++
		k.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicRateLimitDrop,
			Node:  src, Dst: telemetry.NoNode, Pages: 1,
		})
		return false
	}
	b.tokens -= model.PageSize
	return true
}

// MigLock returns the global serialized migration-setup lock.
func (k *Kernel) MigLock() *sim.Resource { return k.migLock }

// LRULock returns the global LRU lock.
func (k *Kernel) LRULock() *sim.Resource { return k.lruLock }

// Copy transfers bytes through the kernel page-migration channel.
func (k *Kernel) Copy(p *sim.Proc, bytes float64, core topology.CoreID, src, dst topology.NodeID, syncChan bool) {
	k.Net.Transfer(p, bytes, k.migPath(core, src, dst, syncChan)...)
}

// MigChan returns the page-migration channel between a pair of nodes
// (order-insensitive), creating it lazily. The sync (move_pages /
// migrate_pages) and lazy (next-touch fault) paths see different
// effective capacities on the same physical channel (§4.4, Fig. 7).
func (k *Kernel) MigChan(a, b topology.NodeID, syncPath bool) *sim.Link {
	if a > b {
		a, b = b, a
	}
	cls := int32(0)
	bw := k.P.MigChanBW
	name := "migchan"
	if syncPath {
		cls = 1
		bw = k.P.MigChanSyncBW
		name = "migchan-sync"
	}
	key := [3]int32{int32(a), int32(b), cls}
	l := k.migChan[key]
	if l == nil {
		l = sim.NewLink(fmt.Sprintf("%s%d-%d", name, a, b), bw)
		k.migChan[key] = l
	}
	return l
}

// routeLinks returns the fluid links of the HT route between two nodes.
func (k *Kernel) routeLinks(from, to topology.NodeID) []*sim.Link {
	ids := k.M.Route(from, to)
	out := make([]*sim.Link, 0, len(ids))
	for _, id := range ids {
		out = append(out, k.HT[id])
	}
	return out
}

// migPath returns the fluid path for a kernel page migration executed on
// core, moving data src -> dst. syncPath selects the batched
// move_pages/migrate_pages channel capacity.
func (k *Kernel) migPath(core topology.CoreID, src, dst topology.NodeID, syncPath bool) []*sim.Link {
	links := []*sim.Link{k.KernEng[core], k.MigChan(src, dst, syncPath), k.NodeCtrl[src]}
	if src != dst {
		links = append(links, k.NodeCtrl[dst])
	}
	return links
}

// userPath returns the fluid path for a user-level copy or stream on
// core touching data on srcNode (and optionally writing dstNode; pass
// src==dst for pure streams).
func (k *Kernel) userPath(core topology.CoreID, src, dst topology.NodeID) []*sim.Link {
	coreNode := k.M.NodeOf(core)
	links := []*sim.Link{k.UserEng[core], k.NodeCtrl[src]}
	if dst != src {
		links = append(links, k.NodeCtrl[dst])
	}
	links = append(links, k.routeLinks(coreNode, src)...)
	if dst != src && dst != coreNode {
		links = append(links, k.routeLinks(coreNode, dst)...)
	}
	return dedupLinks(links)
}

func dedupLinks(ls []*sim.Link) []*sim.Link {
	out := ls[:0]
	for _, l := range ls {
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

// NewProcess creates a process with an empty address space and
// registers it for the demotion daemons' cold-page walks.
func (k *Kernel) NewProcess(name string) *Process {
	pr := &Process{
		K:          k,
		Name:       name,
		Space:      vm.NewSpace(k.Phys),
		MmapSem:    sim.NewRWLock(k.Eng, name+".mmap_sem"),
		chunkLocks: map[uint64]*sim.Resource{},
	}
	k.procs = append(k.procs, pr)
	return pr
}

// LiveThreads returns the number of live tasks across every process.
// The kernel daemons — and any control daemon built on the telemetry
// bus — retire once it reaches zero, so the engine drains normally.
func (k *Kernel) LiveThreads() int { return k.liveThreads() }

// liveThreads returns the number of live tasks across every process;
// the kernel daemons retire once it reaches zero.
func (k *Kernel) liveThreads() int {
	n := 0
	for _, pr := range k.procs {
		n += pr.NumThreads()
	}
	return n
}
