package kern

import (
	"fmt"

	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Kswapd-style background demotion: the memory-pressure half of the
// placement layer, extended to memory tiering v1. One daemon per node
// (a simulated kernel thread on the DES engine, like the AutoNUMA
// scanner) periodically checks its node's watermarks; when free frames
// sink to or below the low watermark it runs a clock-style cold-page
// scan and demotes unreferenced pages through the shared migration
// engine on PathDemotion until the node recovers above its high
// watermark. Between the low and high watermarks a proactive trickle
// demotes a small batch of genuinely cold pages per period, keeping
// headroom before pressure hits.
//
// The scan is temperature-aware: a page's accessed bit is cleared on
// the first encounter (aging, PTE.Age reset), and every later encounter
// with the bit still clear increments PTE.Age. Age 1 classifies the
// page warm — likely to be touched again, demoted to the *nearest*
// unpressured distance group — and Age >= 2 cold, demoted to the
// *farthest* (placement.DemotionTarget's two tiers). Three gates
// protect pages from wrong-way moves:
//
//   - promotion hysteresis: pages AutoNUMA promoted within the last
//     Params.PromotionHysteresisPeriods scan periods are skipped
//     outright (PTE.PromoGen vs Kernel.PromoGeneration), so promotion
//     and demotion stop ping-ponging the working set's edge;
//   - mempolicy nodemasks: a strict-bind page is never demoted outside
//     its mbind/set_mempolicy node set — if no demotion tier lies in
//     the mask the page is skipped and Stats.KswapdMaskSkips counts it,
//     like Linux reclaim honoring policy nodemasks;
//   - pinned, next-touch-marked and replicated pages never demote (the
//     next-touch contract promises migration toward the toucher;
//     NUMA-hint-armed pages stay demotable, the mark rides along).
//
// Demoting a page within Params.FlipWindowPeriods of its promotion
// counts one promote/demote flip (Stats.PromoteDemoteFlips) — the
// ping-pong telemetry the tiering scenario family grids as
// promote_demote_flips.

// kswapd is one node's demotion daemon.
type kswapd struct {
	k    *Kernel
	node topology.NodeID
	core topology.CoreID // the node's first core: where engine work is charged

	// cursors resumes the clock hand per process across wake-ups.
	cursors map[*Process]vm.VPN

	// Scan scratch, reused across shrink passes (one pass runs at a
	// time per daemon; the engine serializes all simulated code).
	cands  []candidate
	ops    []migrate.Op
	status []int
}

// EnableDemotion starts one kswapd-style demotion daemon per node,
// registered on the kernel's daemon hub: idle nodes coalesce into one
// group poll per period instead of one parked proc each, which is what
// keeps a 1024-node machine's event queue quiet. Each daemon retires
// itself on the first poll after the last thread of every process has
// exited, so the engine drains normally. Idempotent; typically called
// before Run (numamig.Config.Demotion).
func (k *Kernel) EnableDemotion() {
	if k.demotion {
		return
	}
	k.demotion = true
	// The daemons are what decays a burst watermark boost, so boosting
	// only arms together with them.
	k.Placer.EnableBurstBoost()
	for n := range k.M.Nodes {
		// Memory-only nodes (CXL expanders) have no cores; their daemon's
		// engine work is charged to the machine's first core, like a
		// kernel thread for a CPU-less node running on a fallback CPU.
		core := topology.CoreID(0)
		if len(k.M.Nodes[n].Cores) > 0 {
			core = k.M.Nodes[n].Cores[0]
		}
		d := &kswapd{
			k:       k,
			node:    topology.NodeID(n),
			core:    core,
			cursors: map[*Process]vm.VPN{},
		}
		k.kswapds = append(k.kswapds, d)
		k.hub.Register(d)
	}
}

// DemotionEnabled reports whether the demotion daemons are running.
func (k *Kernel) DemotionEnabled() bool { return k.demotion }

// Name labels the proc spawned for a busy tick.
func (d *kswapd) Name() string { return fmt.Sprintf("kswapd%d", d.node) }

// Period is the fixed kswapd wake interval.
func (d *kswapd) Period() sim.Time { return d.k.P.KswapdPeriod }

// Poll is the hub-driven tick decision: retire after the last
// application thread, skip the period when the node needs neither boost
// decay nor reclaim nor a proactive trickle (exactly the iterations the
// old per-node loop spent waking up to do nothing), run otherwise.
func (d *kswapd) Poll() TickVerdict {
	if d.k.liveThreads() == 0 {
		return TickRetire
	}
	// Idle iff the whole tick body would be a no-op: no boost to decay
	// (DecayBoost at boost 0 does nothing), not under pressure, no
	// trickle due (either fully reclaimed or trickling disabled), and no
	// tenant sitting at its fast-tier cap with pages here.
	if d.k.Phys.BoostOf(d.node) == 0 &&
		!d.k.Phys.UnderPressure(d.node) &&
		(d.k.Phys.Reclaimed(d.node) || d.k.P.KswapdProactiveBatch <= 0) &&
		!d.capPressure() {
		return TickIdle
	}
	return TickRun
}

// capPressure reports whether a tenant sits at or past its fast-tier
// cap with pages resident on this (fast-tier) node — the tenancy
// analogue of watermark pressure.
func (d *kswapd) capPressure() bool {
	return d.k.Phys.TierOf(d.node) == 0 && d.k.Ten.OverCapOn(d.node) != nil
}

// Run is one busy kswapd tick: decay the node's burst watermark boost,
// reclaim when the node is under its (boosted) low watermark, trickle
// proactively while it merely lacks headroom. On a machine with an
// explicit slow tier, placement.DemotionTarget points each daemon at
// the next tier down (DRAM -> CXL) and a bottom-tier daemon only at
// its within-tier siblings.
func (d *kswapd) Run(p *sim.Proc) {
	// The reclaim/trickle decision below still sees part of this
	// period's boost: the burst that armed it stays visible for
	// log2(boost) periods.
	d.k.Phys.DecayBoost(d.node)
	switch {
	case d.k.Phys.UnderPressure(d.node):
		d.k.Stats.KswapdWakeups++
		t0 := p.Now()
		d.reclaim(p)
		d.k.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicKswapdWake,
			Node:  d.node, Dst: telemetry.NoNode,
			Task: p.ID(), Dur: p.Now() - t0,
		})
	case !d.k.Phys.Reclaimed(d.node) && d.k.P.KswapdProactiveBatch > 0:
		// Between low and high: demote a small batch of genuinely
		// cold pages so the next allocation burst finds headroom
		// without waking the full reclaim path.
		d.trickle(p)
	}
	// Tenancy cap reclaim runs independently of node watermarks: a
	// tenant at its fast-tier cap has its cold fast pages trickled down
	// a tier in the background, so the foreground fault path's cap
	// redirect is the backstop rather than the only mechanism —
	// mirroring cgroup memory.high background reclaim.
	if d.capPressure() {
		d.capReclaim(p)
	}
}

// capReclaim runs one bounded shrink pass over the process of the
// first-admitted at-cap tenant with pages on this node, demoting its
// unreferenced fast pages to the tier below.
func (d *kswapd) capReclaim(p *sim.Proc) {
	k := d.k
	ten := k.Ten.OverCapOn(d.node)
	if ten == nil {
		return
	}
	var pr *Process
	for _, q := range k.procs {
		if q.Tenant == ten {
			pr = q
			break
		}
	}
	if pr == nil {
		return
	}
	near, far, ok := d.targets()
	if !ok {
		return
	}
	defer p.PushCat(CatKswapd)()
	batch := k.P.KswapdBatch
	if batch <= 0 {
		batch = 64
	}
	d.shrink(p, pr, near, far, batch, false)
}

// targets resolves the two demotion tiers: the nearest unpressured
// distance group for warm pages and the farthest for cold ones. When
// only one tier exists (2-node machines, or all but one group
// pressured) both temperatures share it. ok is false when every other
// node is pressured — demoting then would only shift the pressure.
func (d *kswapd) targets() (near, far topology.NodeID, ok bool) {
	near, okN := d.k.Placer.DemotionTarget(d.node, false)
	far, okF := d.k.Placer.DemotionTarget(d.node, true)
	switch {
	case okN && okF:
		return near, far, true
	case okN:
		return near, near, true
	case okF:
		return far, far, true
	}
	return 0, 0, false
}

// reclaim demotes unreferenced pages off the daemon's node until free
// frames recover above the high watermark, every other node is
// pressured too, or two full scan passes find nothing demotable
// (everything hot, pinned, replicated, hysteresis-protected or
// mask-locked). The second no-progress pass distinguishes "all pages
// freshly aged" from "truly nothing to demote": aging clears accessed
// bits, so the next pass can still collect.
func (d *kswapd) reclaim(p *sim.Proc) {
	k := d.k
	defer p.PushCat(CatKswapd)()
	noProgress := 0
	for !k.Phys.Reclaimed(d.node) && noProgress < 2 {
		near, far, ok := d.targets()
		if !ok {
			return
		}
		batch := k.P.KswapdBatch
		if batch <= 0 {
			batch = 64
		}
		demoted := 0
		for _, pr := range k.procs {
			demoted += d.shrink(p, pr, near, far, batch, false)
		}
		if demoted == 0 {
			noProgress++
		} else {
			noProgress = 0
		}
	}
}

// trickle is the proactive path: one bounded cold-only shrink pass per
// wake-up while the node sits between its low and high watermarks.
func (d *kswapd) trickle(p *sim.Proc) {
	k := d.k
	defer p.PushCat(CatKswapd)()
	near, far, ok := d.targets()
	if !ok {
		return
	}
	k.Stats.KswapdProactiveRuns++
	budget := k.P.KswapdProactiveBatch
	for _, pr := range k.procs {
		if budget <= 0 {
			return
		}
		budget -= d.shrink(p, pr, near, far, budget, true)
	}
}

// candidate is one page the clock scan selected for demotion.
type candidate struct {
	vpn  vm.VPN
	dst  topology.NodeID
	cold bool // temperature classification (Age >= 2)
	flip bool // promoted within the flip window: demoting it is ping-pong
}

// maskHas reports whether a strict-bind node set contains n.
func maskHas(mask []topology.NodeID, n topology.NodeID) bool {
	for _, m := range mask {
		if m == n {
			return true
		}
	}
	return false
}

// shrink runs one clock pass over a process: scan resident pages on
// the daemon's node from the saved cursor, aging accessed pages and
// collecting up to batch unreferenced ones — warm pages toward near,
// cold pages toward far — then demote the batch through the shared
// engine. coldOnly restricts collection to cold pages (the proactive
// trickle). Returns the number of pages that actually left the node.
func (d *kswapd) shrink(p *sim.Proc, pr *Process, near, far topology.NodeID, batch int, coldOnly bool) int {
	k := d.k
	// Per-tier headroom: cap collection so each destination stays
	// strictly above its low watermark afterwards — a larger batch would
	// push the tier into pressure itself, cascading the cold pages
	// onward next period, and the engine's allocation fallback would
	// land the overflow right back on this node, a wasted copy rather
	// than a demotion. near and far may be the same node; the shared
	// budget entry makes them share the budget then (at most two
	// destinations, so a fixed pair replaces the old per-call map).
	var hrNodes [2]topology.NodeID
	var hrRoom [2]int64
	hrN := 1
	hrNodes[0], hrRoom[0] = near, k.Phys.Headroom(near)
	if far != near {
		hrNodes[1], hrRoom[1] = far, k.Phys.Headroom(far)
		hrN = 2
	}
	capacity := int64(0)
	for i := 0; i < hrN; i++ {
		if hrRoom[i] > 0 {
			capacity += hrRoom[i]
		}
	}
	if capacity <= 0 {
		return 0
	}
	pr.MmapSem.RLock(p)
	defer pr.MmapSem.RUnlock()

	vmas := pr.Space.VMAs()
	if len(vmas) == 0 {
		return 0
	}
	cursor := d.cursors[pr]
	start := len(vmas)
	for i, v := range vmas {
		if vm.PageOf(v.End-1)+1 > cursor {
			start = i
			break
		}
	}
	if start == len(vmas) { // cursor past the last mapping: wrap
		start, cursor = 0, 0
	}

	curGen := k.PromoGeneration()
	hyst := uint32(0)
	if k.P.PromotionHysteresisPeriods > 0 {
		hyst = uint32(k.P.PromotionHysteresisPeriods)
	}
	flipWin := uint32(0)
	if k.P.FlipWindowPeriods > 0 {
		flipWin = uint32(k.P.FlipWindowPeriods)
	}

	// takeOne reserves one frame of headroom on node n if the mask (when
	// present) allows it.
	takeOne := func(n topology.NodeID, mask []topology.NodeID) bool {
		if mask != nil && !maskHas(mask, n) {
			return false
		}
		for i := 0; i < hrN; i++ {
			if hrNodes[i] == n && hrRoom[i] > 0 {
				hrRoom[i]--
				return true
			}
		}
		return false
	}
	// take reserves one frame of headroom on the page's preferred tier,
	// falling back to the other tier when the preferred one is out of
	// room and the page's nodemask (if any) allows it.
	take := func(pref, other topology.NodeID, mask []topology.NodeID) (topology.NodeID, bool) {
		if takeOne(pref, mask) {
			return pref, true
		}
		if takeOne(other, mask) {
			return other, true
		}
		return 0, false
	}

	cands := d.cands[:0]
	full := func() bool {
		if len(cands) >= batch {
			return true
		}
		for i := 0; i < hrN; i++ {
			if hrRoom[i] > 0 {
				return false
			}
		}
		return true
	}

	next := cursor
	for step := 0; step < len(vmas) && !full(); step++ {
		v := vmas[(start+step)%len(vmas)]
		if step > 0 || vm.PageOf(v.Start) > cursor {
			cursor = vm.PageOf(v.Start)
		}
		// Strict-bind pages demote only within their policy nodemask
		// (mbind/set_mempolicy), like Linux reclaim: demoting a bound
		// page to a node outside the mask would undo the binding the
		// application asked for.
		var mask []topology.NodeID
		if pol := k.Placer.Resolve(v.Pol, pr.Space.DefaultPol); pol.Kind == vm.PolBind && len(pol.Nodes) > 0 {
			mask = pol.Nodes
		}
		last := vm.PageOf(v.End-1) + 1
		for cstart := cursor; cstart < last && !full(); {
			ci := vm.ChunkIndex(cstart)
			cend := vm.VPN((ci + 1) * model.PTEChunkPages)
			if cend > last {
				cend = last
			}
			cl := pr.chunkLock(ci)
			cl.Acquire(p)
			n := 0
			// Extent-run scan: runs off this node are rejected without
			// touching their pages, and the run's shared flags hoist the
			// pinned/next-touch and accessed tests out of the page loop.
			pr.Space.PT.ForEachRun(cstart, cend, func(r vm.Run) {
				if r.Node != d.node {
					return
				}
				// NUMA-hint-armed pages stay demotable (the mark rides
				// along with the frame swap, like PROT_NONE pages staying
				// on the LRU); pinned and next-touch-marked pages do not —
				// the next-touch contract promises migration toward the
				// toucher, not away. They still count as scanned.
				pinnedNT := r.Flags&(vm.PTEPinned|vm.PTENextTouch) != 0
				accessed := r.Flags&vm.PTEAccessed != 0
				for i := range r.PTEs {
					if full() {
						return // batch full mid-chunk: stop examining
					}
					n++
					if pinnedNT {
						continue
					}
					pte := &r.PTEs[i]
					if pr.replicas != nil {
						if _, replicated := pr.replicas[r.Start+vm.VPN(i)]; replicated {
							continue
						}
					}
					// Promotion hysteresis: a page AutoNUMA promoted within
					// the last PromotionHysteresisPeriods scan periods is
					// off-limits entirely (not even aged) — the promotion
					// just declared it hot; demoting it now would only
					// ping-pong it back out.
					if hyst > 0 && pte.PromoGen != 0 && curGen-pte.PromoGen < hyst {
						k.Stats.KswapdHysteresisSkips++
						continue
					}
					if accessed {
						// First clock hand: age the page; a page still
						// unreferenced at the next encounter is demotable.
						pte.Flags &^= vm.PTEAccessed
						pte.Age = 0
						k.Stats.PagesAged++
						continue
					}
					if pte.Age < ^uint8(0) {
						pte.Age++
					}
					// Temperature: one unreferenced period is warm (likely
					// to be touched again; nearest tier), two or more is
					// genuinely cold (farthest tier).
					cold := pte.Age >= 2
					if coldOnly && !cold {
						continue
					}
					pref, other := near, far
					if cold {
						pref, other = far, near
					}
					if mask != nil && !maskHas(mask, near) && !maskHas(mask, far) {
						k.Stats.KswapdMaskSkips++
						continue
					}
					dst, ok := take(pref, other, mask)
					if !ok {
						continue
					}
					cands = append(cands, candidate{
						vpn:  r.Start + vm.VPN(i),
						dst:  dst,
						cold: cold,
						flip: flipWin > 0 && pte.PromoGen != 0 && curGen-pte.PromoGen < flipWin,
					})
				}
			})
			cl.Release()
			k.Stats.KswapdPtesScanned += uint64(n)
			p.Sleep(sim.Time(n) * k.P.KswapdScanPage)
			cstart = cend
			next = cend
		}
	}
	if next >= vm.PageOf(vmas[len(vmas)-1].End-1)+1 {
		next = 0 // full pass complete: wrap
	}
	d.cursors[pr] = next

	d.cands = cands
	if len(cands) == 0 {
		return 0
	}
	ops := d.ops[:0]
	status := d.status[:0]
	for _, c := range cands {
		ops = append(ops, migrate.Op{VPN: c.vpn, Dst: c.dst})
		status = append(status, 0)
	}
	d.ops, d.status = ops, status
	k.Migrator(migrate.Patched).Migrate(&migrate.Request{
		P: p, Core: d.core, Space: pr, Ops: ops, Status: status,
		Path: migrate.PathDemotion, Flush: true,
		CopyCat: CatDemotionCopy,
	})
	// Count (and report as progress) only the pages that actually left
	// this node: a racing allocation can still exhaust dst mid-batch
	// and bounce the engine's fallback right back here.
	demoted, coldOut := 0, 0
	for i, s := range status {
		if s < 0 || topology.NodeID(s) == d.node {
			continue
		}
		demoted++
		if cands[i].cold {
			k.Stats.PagesDemotedCold++
			coldOut++
		}
		if cands[i].flip {
			k.Stats.PromoteDemoteFlips++
		}
	}
	k.Stats.PagesDemoted += uint64(demoted)
	if demoted > 0 {
		k.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicDemote,
			Node:  d.node, Dst: telemetry.NoNode,
			Task: p.ID(), Pages: demoted, Value: float64(coldOut),
		})
	}
	return demoted
}
