package kern

import (
	"fmt"

	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Kswapd-style background demotion: the memory-pressure half of the
// placement layer. One daemon per node (a simulated kernel thread on
// the DES engine, like the AutoNUMA scanner) periodically checks its
// node's watermarks; when free frames sink to or below the low
// watermark it runs a clock-style cold-page scan — resident pages on
// the node get their accessed bit cleared on the first encounter
// (aging) and are demoted on the second if still unreferenced — and
// moves the cold pages to the least-pressured nearby node (chosen by
// placement.DemotionTarget) through the shared migration engine on
// PathDemotion, until the node recovers above its high watermark.
// Routing through the engine gives demotion the same batching,
// pinned-page retry/EBUSY and TLB-flush semantics as every other
// mover; hot pages survive because the workload re-sets their
// accessed bits between daemon wake-ups.

// kswapd is one node's demotion daemon.
type kswapd struct {
	k    *Kernel
	node topology.NodeID
	core topology.CoreID // the node's first core: where engine work is charged

	// cursors resumes the clock hand per process across wake-ups.
	cursors map[*Process]vm.VPN
}

// EnableDemotion starts one kswapd-style demotion daemon per node.
// Each daemon retires itself on the first wake-up after the last
// thread of every process has exited, so the engine drains normally.
// Idempotent; typically called before Run (numamig.Config.Demotion).
func (k *Kernel) EnableDemotion() {
	if k.demotion {
		return
	}
	k.demotion = true
	for n := range k.M.Nodes {
		d := &kswapd{
			k:       k,
			node:    topology.NodeID(n),
			core:    k.M.Nodes[n].Cores[0],
			cursors: map[*Process]vm.VPN{},
		}
		k.kswapds = append(k.kswapds, d)
		k.Eng.Spawn(fmt.Sprintf("kswapd%d", n), d.daemon)
	}
}

// DemotionEnabled reports whether the demotion daemons are running.
func (k *Kernel) DemotionEnabled() bool { return k.demotion }

// daemon is the per-node kswapd loop: sleep, retire after the last
// application thread, reclaim when the node is under pressure.
func (d *kswapd) daemon(p *sim.Proc) {
	for {
		p.Sleep(d.k.P.KswapdPeriod)
		if d.k.liveThreads() == 0 {
			return
		}
		if !d.k.Phys.UnderPressure(d.node) {
			continue
		}
		d.k.Stats.KswapdWakeups++
		d.reclaim(p)
	}
}

// reclaim demotes cold pages off the daemon's node until free frames
// recover above the high watermark, every other node is pressured too,
// or a full scan pass finds nothing demotable (everything hot, pinned
// or replicated). The second no-progress pass distinguishes "all pages
// freshly aged" from "truly nothing to demote": aging clears accessed
// bits, so the next pass can still collect.
func (d *kswapd) reclaim(p *sim.Proc) {
	k := d.k
	defer p.PushCat(CatKswapd)()
	noProgress := 0
	for !k.Phys.Reclaimed(d.node) && noProgress < 2 {
		dst, ok := k.Placer.DemotionTarget(d.node)
		if !ok {
			return
		}
		demoted := 0
		for _, pr := range k.procs {
			demoted += d.shrink(p, pr, dst)
		}
		if demoted == 0 {
			noProgress++
		} else {
			noProgress = 0
		}
	}
}

// shrink runs one clock pass over a process: scan resident pages on
// the daemon's node from the saved cursor, aging accessed pages and
// collecting up to KswapdBatch cold ones, then demote the batch to dst
// through the shared engine. Returns the number of pages demoted.
func (d *kswapd) shrink(p *sim.Proc, pr *Process, dst topology.NodeID) int {
	k := d.k
	batch := k.P.KswapdBatch
	if batch <= 0 {
		batch = 64
	}
	// Cap the batch so the destination stays strictly above its low
	// watermark afterwards: a larger batch would push dst into pressure
	// itself — cascading the cold pages onward next period — and the
	// engine's allocation fallback would land the overflow right back
	// on this (pressured) node, a wasted copy rather than a demotion.
	if headroom := int(k.Phys.FreeFrames(dst)-k.Phys.WatermarksOf(dst).Low) - 1; headroom < batch {
		batch = headroom
	}
	if batch <= 0 {
		return 0
	}
	pr.MmapSem.RLock(p)
	defer pr.MmapSem.RUnlock()

	vmas := pr.Space.VMAs()
	if len(vmas) == 0 {
		return 0
	}
	cursor := d.cursors[pr]
	start := len(vmas)
	for i, v := range vmas {
		if vm.PageOf(v.End-1)+1 > cursor {
			start = i
			break
		}
	}
	if start == len(vmas) { // cursor past the last mapping: wrap
		start, cursor = 0, 0
	}

	var cold []vm.VPN
	next := cursor
	for step := 0; step < len(vmas) && len(cold) < batch; step++ {
		v := vmas[(start+step)%len(vmas)]
		if step > 0 || vm.PageOf(v.Start) > cursor {
			cursor = vm.PageOf(v.Start)
		}
		last := vm.PageOf(v.End-1) + 1
		for cstart := cursor; cstart < last && len(cold) < batch; {
			ci := vm.ChunkIndex(cstart)
			cend := vm.VPN((ci + 1) * model.PTEChunkPages)
			if cend > last {
				cend = last
			}
			cl := pr.chunkLock(ci)
			cl.Acquire(p)
			n := 0
			pr.Space.PT.ForEach(cstart, cend, func(pv vm.VPN, pte *vm.PTE) {
				if pte.Frame.Node != d.node {
					return
				}
				if len(cold) >= batch {
					return // batch full mid-chunk: stop examining
				}
				n++
				// NUMA-hint-armed pages stay demotable (the mark rides
				// along with the frame swap, like PROT_NONE pages staying
				// on the LRU); pinned and next-touch-marked pages do not —
				// the next-touch contract promises migration toward the
				// toucher, not away.
				if pte.Flags&(vm.PTEPinned|vm.PTENextTouch) != 0 {
					return
				}
				if _, replicated := pr.replicas[pv]; replicated {
					return
				}
				if pte.Flags&vm.PTEAccessed != 0 {
					// First clock hand: age the page; a page still
					// unreferenced at the next encounter is cold.
					pte.Flags &^= vm.PTEAccessed
					k.Stats.PagesAged++
					return
				}
				cold = append(cold, pv)
			})
			cl.Release()
			k.Stats.KswapdPtesScanned += uint64(n)
			p.Sleep(sim.Time(n) * k.P.KswapdScanPage)
			cstart = cend
			next = cend
		}
	}
	if next >= vm.PageOf(vmas[len(vmas)-1].End-1)+1 {
		next = 0 // full pass complete: wrap
	}
	d.cursors[pr] = next

	if len(cold) == 0 {
		return 0
	}
	ops := make([]migrate.Op, len(cold))
	for i, pv := range cold {
		ops[i] = migrate.Op{VPN: pv, Dst: dst}
	}
	status := make([]int, len(ops))
	k.Migrator(migrate.Patched).Migrate(&migrate.Request{
		P: p, Core: d.core, Space: pr, Ops: ops, Status: status,
		Path: migrate.PathDemotion, Flush: true,
		CopyCat: CatDemotionCopy,
	})
	// Count (and report as progress) only the pages that actually left
	// this node: a racing allocation can still exhaust dst mid-batch
	// and bounce the engine's fallback right back here.
	demoted := 0
	for _, s := range status {
		if s >= 0 && topology.NodeID(s) != d.node {
			demoted++
		}
	}
	k.Stats.PagesDemoted += uint64(demoted)
	return demoted
}
