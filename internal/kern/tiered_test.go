package kern

import (
	"testing"

	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Explicit slow-tier and burst-boost tests: the promotion token bucket
// (Params.PromoteRateLimitMBps) and watermark boosting under
// allocation bursts (Params.WatermarkBoostFactor).

// newParamHarness is newSmallHarness with caller-supplied Params.
func newParamHarness(nodes, framesPerNode int, p model.Params) *harness {
	eng := sim.NewEngine(7)
	m := topology.Grid(nodes, 1, int64(framesPerNode)*pg, 1<<20)
	k := New(eng, m, p, false)
	return &harness{eng: eng, k: k, proc: k.NewProcess("test")}
}

// runBurst drives the watermark-boost scenario: both nodes filled to
// just above their low watermark, then a burst that falls through the
// allocation walk's first pass, then the burst freed again and virtual
// time granted to the daemons. Returns the kswapd pressure wake-ups.
func runBurst(t *testing.T, boost float64) (wakeups, demoted uint64, boostLeft int64) {
	t.Helper()
	p := model.Default()
	p.WatermarkBoostFactor = boost
	p.KswapdProactiveBatch = 0      // isolate the boost: no proactive trickle
	h := newParamHarness(2, 256, p) // min 5, low 12, high 20
	h.k.EnableDemotion()
	h.run(t, 0, func(tk *Task) {
		// Fill both nodes to 16 free frames: above low (12), so no
		// pressure yet. Preferred, not Bind: the filler must stay
		// demotable once the boosted daemon wakes.
		for n := 0; n < 2; n++ {
			fill, err := tk.Mmap(240*pg, vm.ProtRW, vm.Preferred(topology.NodeID(n)), 0, "fill")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tk.FaultIn(fill, 240*pg, true); err != nil {
				t.Fatal(err)
			}
		}
		// Burst: 12 more pages aimed at node 0. The first pass of the
		// walk runs dry machine-wide, so the allocations fall through
		// to the min pass and (with the factor armed) boost node 0.
		burst, err := tk.Mmap(12*pg, vm.ProtRW, vm.Bind(0), 0, "burst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(burst, 12*pg, true); err != nil {
			t.Fatal(err)
		}
		if boost > 0 && h.k.Phys.BoostOf(0) == 0 {
			t.Error("burst fell through the low pass but no boost was armed")
		}
		// The burst drains; free frames recover above the plain low
		// watermark on both nodes. Only a boosted node still reads as
		// pressured now.
		if err := tk.Munmap(burst, 12*pg); err != nil {
			t.Fatal(err)
		}
		tk.P.Sleep(40 * h.k.P.KswapdPeriod)
	})
	return h.k.Stats.KswapdWakeups, h.k.Stats.PagesDemoted, h.k.Phys.BoostOf(0)
}

// TestWatermarkBoostWakesKswapdEarly is the burst-boost satellite's
// unit test: after a burst that fell through to the min pass, the
// boosted node's kswapd wakes (and demotes) while free frames still
// sit above the unboosted low watermark; without the factor the same
// burst leaves the daemons asleep. The boost must also have decayed
// away by the end of the run.
func TestWatermarkBoostWakesKswapdEarly(t *testing.T) {
	offWake, offDemoted, _ := runBurst(t, 0)
	onWake, onDemoted, left := runBurst(t, 2)
	if onWake <= offWake {
		t.Fatalf("boost did not wake kswapd earlier: wakeups %d (boost) vs %d (off)", onWake, offWake)
	}
	if onDemoted <= offDemoted {
		t.Fatalf("boost did not demote ahead of the next burst: %d (boost) vs %d (off)", onDemoted, offDemoted)
	}
	if left != 0 {
		t.Fatalf("boost never decayed: %d frames left after 40 periods", left)
	}
}

// TestPromoteRateLimitTokenBucket pins the bucket arithmetic: a
// slow-tier source starts with one KswapdPeriod's burst (at least one
// page), runs dry, counts the drop, and refills with virtual time.
// Fast-tier sources are never limited.
func TestPromoteRateLimitTokenBucket(t *testing.T) {
	p := model.Default()
	p.NodeTier = []int{0, 1}
	p.TierClasses = []model.TierClass{{}, model.CXLTier()}
	p.PromoteRateLimitMBps = 1 // 1 MB/s: one 4 KiB page per 4 ms
	h := newParamHarness(2, 256, p)
	h.run(t, 0, func(tk *Task) {
		k := h.k
		if !k.AllowSlowPromotion(1) {
			t.Error("initial burst (>= one page) should allow the first promotion")
		}
		if k.AllowSlowPromotion(1) {
			t.Error("bucket should be dry after one page at 1 MBps")
		}
		if k.Stats.PromoteRateLimited != 1 {
			t.Errorf("PromoteRateLimited = %d, want 1", k.Stats.PromoteRateLimited)
		}
		// Fast-tier source: unlimited, and never consumes tokens.
		for i := 0; i < 8; i++ {
			if !k.AllowSlowPromotion(0) {
				t.Error("fast-tier promotion was rate-limited")
			}
		}
		// 8 ms at 1 MB/s refills two pages' worth (capped at the
		// one-period burst, which is one page here).
		tk.P.Sleep(sim.Micros(8000))
		if !k.AllowSlowPromotion(1) {
			t.Error("bucket did not refill with virtual time")
		}
		if k.AllowSlowPromotion(1) {
			t.Error("refill exceeded the one-period burst cap")
		}
	})
	if h.k.Stats.PromoteRateLimited != 2 {
		t.Fatalf("PromoteRateLimited = %d, want 2", h.k.Stats.PromoteRateLimited)
	}
}

// TestFirstTouchNeverLandsOnSlowTier: faulting threads on a DRAM+CXL
// machine fill the whole DRAM tier and the walk still refuses the CXL
// node — the spill crosses DRAM nodes and then fails over the
// watermark passes, never onto the slow tier.
func TestFirstTouchNeverLandsOnSlowTier(t *testing.T) {
	p := model.Default()
	p.NodeTier = []int{0, 0, 1}
	p.TierClasses = []model.TierClass{{}, model.CXLTier()}
	h := newParamHarness(3, 256, p)
	h.run(t, 0, func(tk *Task) {
		// 400 pages under a default (first-touch) policy: node 0 fills
		// to its watermarks, the rest spills to node 1 — node 2 (CXL)
		// must stay empty.
		buf, err := tk.Mmap(400*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(buf, 400*pg, true); err != nil {
			t.Fatal(err)
		}
		hist := map[int]int{}
		for _, n := range tk.GetNodes(buf, 400*pg) {
			hist[n]++
		}
		if hist[2] != 0 {
			t.Fatalf("first-touch landed %d pages on the CXL node: hist=%v", hist[2], hist)
		}
		if hist[1] == 0 {
			t.Fatalf("expected spill onto the second DRAM node: hist=%v", hist)
		}
	})
	if got := h.k.Phys.SlowTierResident(); got != 0 {
		t.Fatalf("SlowTierResident = %d, want 0", got)
	}
}
