package kern

import (
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Automatic NUMA balancing substrate: the kernel half of
// internal/autonuma. The scanner daemon calls ArmNumaHints to strip
// access from mapped pages (the simulated change_prot_numa); the fault
// paths in fault.go/access.go funnel the resulting hinting faults into
// numaHintFaults, which restores access, consults the registered
// NumaBalancer for placement decisions, and routes the resulting
// promotions through the shared migration engine on the lazy channel.

// NumaBalancer is the placement-policy hook consulted on NUMA hinting
// faults. Implemented by internal/autonuma.Balancer; registered per
// process with SetNumaBalancer.
type NumaBalancer interface {
	// HintFaults records one batch of hinting faults taken by t — the
	// faulted pages and the nodes their frames reside on — and returns
	// the migration orders to apply. The kernel routes the orders
	// through the shared migration engine (PathNumaHint); orders for
	// pinned pages fail -EBUSY there like any other migration. Called
	// with mmap_sem held shared and no chunk locks.
	HintFaults(t *Task, pages []vm.VPN, src []topology.NodeID) []migrate.Op
}

// SetNumaBalancer registers the automatic-NUMA-balancing policy for the
// process (nil disables). Hinting faults on marked PTEs are serviced
// regardless; without a balancer they only restore access.
func (pr *Process) SetNumaBalancer(b NumaBalancer) { pr.numaBalancer = b }

// NumaBalancer returns the registered balancer, or nil.
func (pr *Process) NumaBalancer() NumaBalancer { return pr.numaBalancer }

// ArmNumaHints is the scanner daemon's work function: walk the address
// space from the cursor VPN, arming up to max present 4 KiB pages with
// the PTENumaHint mark (protection stripped, so the next touch faults).
// The bound is soft — rounded up to the enclosing PTE chunk, like the
// kernel's scan-size handling. Next-touch-marked, already-armed, pinned
// and replicated pages are skipped (a replica set owns its primary
// frame; promoting it from under the set would free a frame the set
// still references), as are huge and PROT_NONE mappings. Returns
// the number of pages armed and the cursor for the next tick (wrapping
// to the start of the address space after the last mapping).
//
// p is the scanner's sim proc, not an application task: the walk charges
// its costs to the daemon, holding mmap_sem shared and each chunk's PTE
// lock in turn, so scanning contends with faults and migrations exactly
// like task_numa_work does.
func (pr *Process) ArmNumaHints(p *sim.Proc, cursor vm.VPN, max int) (int, vm.VPN) {
	k := pr.K
	defer p.PushCat(CatNumaScan)()
	p.Sleep(k.P.NumaScanBase)
	pr.MmapSem.RLock(p)
	defer pr.MmapSem.RUnlock()

	vmas := pr.Space.VMAs()
	if len(vmas) == 0 {
		return 0, cursor
	}
	// Start at the first VMA ending past the cursor, wrapping once.
	start := len(vmas)
	for i, v := range vmas {
		if vm.PageOf(v.End-1)+1 > cursor {
			start = i
			break
		}
	}
	if start == len(vmas) { // cursor past the last mapping: wrap
		start, cursor = 0, 0
	}

	// Replica lookups only matter once the process has ever replicated
	// (the map is created lazily); passing nil skip otherwise lets
	// ArmRange arm whole runs without a per-page callback.
	var skip func(vm.VPN) bool
	if pr.replicas != nil {
		skip = func(pv vm.VPN) bool {
			_, replicated := pr.replicas[pv]
			return replicated
		}
	}

	armed, examined := 0, 0
	next := cursor
	for step := 0; step < len(vmas) && examined < max; step++ {
		v := vmas[(start+step)%len(vmas)]
		if step > 0 || vm.PageOf(v.Start) > cursor {
			cursor = vm.PageOf(v.Start)
		}
		if v.Flags&vm.VMAHuge != 0 || v.Prot == vm.ProtNone {
			next = vm.PageOf(v.End-1) + 1
			continue
		}
		last := vm.PageOf(v.End-1) + 1
		for cstart := cursor; cstart < last && examined < max; {
			ci := vm.ChunkIndex(cstart)
			cend := vm.VPN((ci + 1) * model.PTEChunkPages)
			if cend > last {
				cend = last
			}
			cl := pr.chunkLock(ci)
			cl.Acquire(p)
			a, n := pr.Space.PT.ArmRange(cstart, cend, skip)
			armed += a
			cl.Release()
			examined += n
			k.Stats.NumaPtesScanned += uint64(n)
			p.Sleep(sim.Time(n) * k.P.NumaScanPage)
			cstart = cend
			next = cend
		}
	}
	k.Stats.NumaPtesArmed += uint64(armed)
	if armed > 0 {
		// One shootdown per tick, like change_prot_numa's deferred flush.
		pr.TLBFlush(p)
	}
	if next >= vm.PageOf(vmas[len(vmas)-1].End-1)+1 {
		next = 0 // full pass complete: wrap
	}
	return armed, next
}

// numaServiceFaults charges the page faults that delivered a batch of
// hint-marked pages (the bulk fault path classifies without faulting
// per page), then services them.
func (t *Task) numaServiceFaults(pages []vm.VPN) {
	k := t.Proc.K
	k.Stats.Faults += uint64(len(pages))
	k.bus.Publish(telemetry.Event{
		Topic: telemetry.TopicPageFault,
		Node:  t.Node(), Dst: telemetry.NoNode,
		Task: t.P.ID(), Pages: len(pages),
	})
	t.P.InCat(CatNumaHint, func() {
		t.P.Sleep(sim.Time(len(pages)) * k.P.FaultBase)
	})
	t.numaHintFaults(pages)
}

// numaHintFaults services NUMA hinting faults for a set of pages (all
// within one PTE chunk when called from the bulk fault path): clear the
// hint mark and restore access under the chunk lock — the kernel fixes
// the PTE before trying to migrate, so the toucher never blocks on the
// copy — then hand the observed (page, node) pairs to the balancer and
// run its promotion orders through the shared engine on the lazy
// channel. Caller holds mmap_sem shared and no chunk locks.
func (t *Task) numaHintFaults(pages []vm.VPN) {
	k := t.Proc.K
	sp := t.Proc.Space
	defer t.P.PushCat(CatNumaHint)()

	faulted := make([]vm.VPN, 0, len(pages))
	src := make([]topology.NodeID, 0, len(pages))
	for i := 0; i < len(pages); {
		ci := vm.ChunkIndex(pages[i])
		j := i + 1
		for j < len(pages) && vm.ChunkIndex(pages[j]) == ci {
			j++
		}
		cl := t.Proc.chunkLock(ci)
		cl.Acquire(t.P)
		for _, pg := range pages[i:j] {
			pte := sp.PT.Lookup(pg)
			if !pte.Present() || pte.Flags&vm.PTENumaHint == 0 {
				continue // raced: another thread already serviced it
			}
			pte.Flags &^= vm.PTENumaHint
			pte.SetProt(sp.Find(pg.Base()).Prot)
			if _, replicated := t.Proc.replicas[pg]; replicated {
				// A page armed before it was replicated: restore access
				// but keep the replica set's write protection, and never
				// report it — promoting the primary would free a frame
				// the set still references.
				pte.Flags &^= vm.PTEWrite
				continue
			}
			faulted = append(faulted, pg)
			src = append(src, pte.Frame.Node)
		}
		cl.Release()
		i = j
	}
	if len(faulted) == 0 {
		return
	}
	k.Stats.NumaHintFaults += uint64(len(faulted))
	k.bus.Publish(telemetry.Event{
		Topic: telemetry.TopicNumaHintFault,
		Node:  t.Node(), Dst: telemetry.NoNode,
		Task: t.P.ID(), Pages: len(faulted),
	})
	t.P.Sleep(sim.Time(len(faulted)) * k.P.NumaHintFault)

	b := t.Proc.numaBalancer
	if b == nil {
		return
	}
	ops := b.HintFaults(t, faulted, src)
	if len(ops) == 0 {
		return
	}
	// Promotion rate limiting (Params.PromoteRateLimitMBps): orders
	// pulling pages off a slow-tier node consume that node's token
	// bucket; orders the bucket cannot cover are dropped — the page
	// stays on the slow tier until a later hinting fault retries it,
	// like Linux's numa_balancing_promote_rate_limit_MBps capping
	// pgpromote traffic.
	if k.P.PromoteRateLimitMBps > 0 {
		srcOf := make(map[vm.VPN]topology.NodeID, len(faulted))
		for i, pg := range faulted {
			srcOf[pg] = src[i]
		}
		kept := ops[:0]
		for _, op := range ops {
			if s, ok := srcOf[op.VPN]; ok && !k.AllowSlowPromotion(s) {
				continue
			}
			kept = append(kept, op)
		}
		ops = kept
		if len(ops) == 0 {
			return
		}
	}
	res := k.Migrator(migrate.Patched).Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc, Ops: ops,
		Path:     migrate.PathNumaHint,
		CopyCat:  CatNumaCopy,
		Priority: t.Proc.MigPrio,
		// Stamp the promoted pages with the current scan-period
		// generation: the demotion scan's hysteresis protects them for
		// Params.PromotionHysteresisPeriods periods, and demoting one
		// within Params.FlipWindowPeriods counts a promote/demote flip.
		StampPromoGen: k.PromoGeneration(),
	})
	k.Stats.NumaPagesPromoted += uint64(res.Moved)
	if res.Moved > 0 {
		k.bus.Publish(telemetry.Event{
			Topic: telemetry.TopicPromote,
			Node:  telemetry.NoNode, Dst: t.Node(),
			Task: t.P.ID(), Pages: res.Moved,
		})
	}
}
