package kern

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// harness bundles a kernel and process for tests.
type harness struct {
	eng  *sim.Engine
	k    *Kernel
	proc *Process
}

func newHarness(backed bool) *harness {
	eng := sim.NewEngine(7)
	k := New(eng, topology.Opteron4x4(), model.Default(), backed)
	return &harness{eng: eng, k: k, proc: k.NewProcess("test")}
}

// run spawns a single task on core and executes fn; it fails the test on
// engine error.
func (h *harness) run(t *testing.T, core topology.CoreID, fn func(tk *Task)) {
	t.Helper()
	h.proc.Spawn("t0", core, fn)
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

const pg = model.PageSize

func TestFirstTouchAllocatesLocally(t *testing.T) {
	h := newHarness(false)
	h.run(t, 5, func(tk *Task) { // core 5 is on node 1
		a, err := tk.Mmap(8*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Touch(a, true); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 1 {
			t.Fatalf("first touch placed page on node %d, want 1", n)
		}
		// Untouched page not present.
		if n := tk.GetNode(a + pg); n != -1 {
			t.Fatalf("untouched page present on node %d", n)
		}
	})
	if h.k.Stats.DemandAllocs != 1 {
		t.Fatalf("demand allocs = %d", h.k.Stats.DemandAllocs)
	}
}

func TestInterleavePolicy(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(64*pg, vm.ProtRW, vm.Interleave(0, 1, 2, 3), 0, "il")
		if _, err := tk.FaultIn(a, 64*pg, true); err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for i := 0; i < 64; i++ {
			counts[tk.GetNode(a+vm.Addr(i)*pg)]++
		}
		for n := 0; n < 4; n++ {
			if counts[n] != 16 {
				t.Fatalf("interleave counts = %v", counts)
			}
		}
	})
}

func TestSegvWithoutHandler(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if _, err := tk.FaultIn(a, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.Mprotect(a, 4*pg, vm.ProtNone); err != nil {
			t.Fatal(err)
		}
		err := tk.Touch(a, false)
		var segv ErrSegv
		if !errors.As(err, &segv) {
			t.Fatalf("err = %v, want ErrSegv", err)
		}
		if segv.Addr != a || segv.Write {
			t.Fatalf("segv info = %+v", segv)
		}
		// Unmapped address also faults.
		err = tk.Touch(0xdead0000, false)
		if !errors.As(err, &segv) {
			t.Fatalf("unmapped touch err = %v", err)
		}
	})
	if h.k.Stats.Sigsegvs != 2 {
		t.Fatalf("sigsegvs = %d", h.k.Stats.Sigsegvs)
	}
}

func TestSegvHandlerRepairsAndRetries(t *testing.T) {
	h := newHarness(false)
	calls := 0
	h.proc.OnSegv(func(tk *Task, info SigInfo) {
		calls++
		if err := tk.Mprotect(vm.PageFloor(info.Addr), pg, vm.ProtRW); err != nil {
			t.Error(err)
		}
	})
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err := tk.Touch(a, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.Mprotect(a, pg, vm.ProtNone); err != nil {
			t.Fatal(err)
		}
		if err := tk.Touch(a, true); err != nil {
			t.Fatalf("touch after handler repair: %v", err)
		}
	})
	if calls != 1 {
		t.Fatalf("handler calls = %d", calls)
	}
}

func TestKernelNextTouchMigratesToToucher(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		payload := []byte("next-touch payload survives migration")
		if err := tk.WriteData(a+100, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, 4*pg, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		// Move the thread to node 2 and touch.
		tk.MigrateTo(8) // core 8 -> node 2
		if err := tk.Touch(a+100, false); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 2 {
			t.Fatalf("page on node %d after next-touch, want 2", n)
		}
		// Only the touched page migrated; others keep the mark until
		// touched.
		if n := tk.GetNode(a + pg); n != 0 {
			t.Fatalf("untouched page moved to node %d", n)
		}
		got, err := tk.ReadData(a+100, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("data corrupted across migration: %q", got)
		}
	})
	if h.k.Stats.NTMigrations != 1 {
		t.Fatalf("nt migrations = %d", h.k.Stats.NTMigrations)
	}
}

func TestNextTouchLocalTouchSkipsCopy(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err := tk.Touch(a, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, pg, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		if err := tk.Touch(a, false); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 0 {
			t.Fatalf("page moved to %d", n)
		}
	})
	if h.k.Stats.NTMigrations != 0 || h.k.Stats.NTLocalSkips != 1 {
		t.Fatalf("migrations=%d skips=%d", h.k.Stats.NTMigrations, h.k.Stats.NTLocalSkips)
	}
}

func TestMadviseNormalClearsMark(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(pg, vm.ProtRW, vm.Bind(3), 0, "buf")
		if err := tk.Touch(a, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, pg, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, pg, AdvNormal); err != nil {
			t.Fatal(err)
		}
		if err := tk.Touch(a, false); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 3 {
			t.Fatalf("cleared mark still migrated page to %d", n)
		}
	})
}

func TestMovePagesStatusAndPlacement(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 3*pg, true); err != nil { // leave page 3 absent
			t.Fatal(err)
		}
		if err := tk.WriteData(a, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		addrs := []vm.Addr{a, a + pg, a + 2*pg, a + 3*pg}
		nodes := []topology.NodeID{2, 2, 0, 2}
		st, err := tk.MovePages(addrs, nodes, true)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{2, 2, 0, StatusNoEnt}
		for i := range want {
			if st[i] != want[i] {
				t.Fatalf("status = %v, want %v", st, want)
			}
		}
		if tk.GetNode(a) != 2 || tk.GetNode(a+2*pg) != 0 {
			t.Fatal("pages not where requested")
		}
		got, err := tk.ReadData(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			t.Fatalf("data lost in move_pages: %v", got)
		}
	})
	// Two pages migrated 0->2; the already-correct page is not copied.
	if h.k.Stats.MovePagesPages != 2 {
		t.Fatalf("moved pages = %d, want 2", h.k.Stats.MovePagesPages)
	}
}

func TestMovePagesMismatchedArrays(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		_, err := tk.MovePages(make([]vm.Addr, 2), make([]topology.NodeID, 3), true)
		if err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestMovePagesToConvenience(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.MovePagesTo(a, 16*pg, 3, true); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if n := tk.GetNode(a + vm.Addr(i)*pg); n != 3 {
				t.Fatalf("page %d on node %d", i, n)
			}
		}
	})
}

func TestUnpatchedMovePagesQuadraticSlowdown(t *testing.T) {
	const pages = 2048
	run := func(patched bool) sim.Time {
		h := newHarness(false)
		var dur sim.Time
		h.run(t, 4, func(tk *Task) {
			a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
			if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if _, err := tk.MovePagesTo(a, pages*pg, 1, patched); err != nil {
				t.Fatal(err)
			}
			dur = tk.P.Now() - start
		})
		return dur
	}
	fast, slow := run(true), run(false)
	if slow < 2*fast {
		t.Fatalf("unpatched (%v) should be >2x slower than patched (%v) at %d pages", slow, fast, pages)
	}
}

func TestMovePagesThroughputCalibration(t *testing.T) {
	// Patched move_pages should sustain roughly 600 MB/s on large
	// buffers (paper §4.2).
	const pages = 8192
	h := newHarness(false)
	var dur sim.Time
	h.run(t, 4, func(tk *Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		start := tk.P.Now()
		if _, err := tk.MovePagesTo(a, pages*pg, 1, true); err != nil {
			t.Fatal(err)
		}
		dur = tk.P.Now() - start
	})
	mbps := float64(pages*pg) / dur.Seconds() / 1e6
	if mbps < 500 || mbps > 750 {
		t.Fatalf("move_pages throughput = %.0f MB/s, want ~600", mbps)
	}
}

func TestKernelNextTouchThroughputCalibration(t *testing.T) {
	// Kernel next-touch should sustain roughly 800 MB/s even for small
	// buffers (paper Fig. 5).
	for _, pages := range []int{16, 4096} {
		h := newHarness(false)
		var dur sim.Time
		h.run(t, 4, func(tk *Task) {
			a, _ := tk.Mmap(int64(pages)*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
			if _, err := tk.FaultIn(a, int64(pages)*pg, true); err != nil {
				t.Fatal(err)
			}
			if _, err := tk.Madvise(a, int64(pages)*pg, AdvMigrateOnNextTouch); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if _, err := tk.FaultIn(a, int64(pages)*pg, false); err != nil {
				t.Fatal(err)
			}
			dur = tk.P.Now() - start
		})
		mbps := float64(pages) * pg / dur.Seconds() / 1e6
		if mbps < 650 || mbps > 950 {
			t.Fatalf("kernel NT throughput at %d pages = %.0f MB/s, want ~800", pages, mbps)
		}
	}
}

func TestMigratePagesMovesWholeProcess(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(32*pg, vm.ProtRW, vm.Bind(0), 0, "a")
		b, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(1), 0, "b")
		if _, err := tk.FaultIn(a, 32*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(b, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		moved, err := tk.MigratePages([]topology.NodeID{0}, []topology.NodeID{2})
		if err != nil {
			t.Fatal(err)
		}
		if moved != 32 {
			t.Fatalf("moved = %d, want 32", moved)
		}
		if tk.GetNode(a) != 2 || tk.GetNode(b) != 1 {
			t.Fatalf("nodes after migrate_pages: a=%d b=%d", tk.GetNode(a), tk.GetNode(b))
		}
	})
}

func TestAccessRangeRemoteSlowerAndBlockedWorseThanStream(t *testing.T) {
	measure := func(bind topology.NodeID, kind AccessKind) sim.Time {
		h := newHarness(false)
		var dur sim.Time
		h.run(t, 0, func(tk *Task) { // node 0
			a, _ := tk.Mmap(256*pg, vm.ProtRW, vm.Bind(bind), 0, "buf")
			if _, err := tk.FaultIn(a, 256*pg, true); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if err := tk.AccessRange(a, 256*pg, kind, false); err != nil {
				t.Fatal(err)
			}
			dur = tk.P.Now() - start
		})
		return dur
	}
	local := measure(0, Blocked)
	remote1hop := measure(1, Blocked)
	remote2hop := measure(3, Blocked)
	remoteStream := measure(3, Stream)
	if !(local < remote1hop && remote1hop < remote2hop) {
		t.Fatalf("blocked access times: local=%v 1hop=%v 2hop=%v", local, remote1hop, remote2hop)
	}
	if remoteStream >= remote2hop {
		t.Fatalf("stream remote (%v) should beat blocked remote (%v)", remoteStream, remote2hop)
	}
	// Blocked remote pays NUMAFactor x BlockedBoost (1.4 x 1.55 at two
	// hops): latency-bound kernels degrade beyond the raw distance
	// ratio.
	want := 1.4 * model.Default().BlockedBoost
	ratio := float64(remote2hop) / float64(local)
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("2-hop blocked penalty ratio = %.2f, want ~%.2f", ratio, want)
	}
}

func TestAccessRangeTriggersNextTouch(t *testing.T) {
	h := newHarness(false)
	h.run(t, 12, func(tk *Task) { // node 3
		a, _ := tk.Mmap(64*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 64*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, 64*pg, AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		if err := tk.AccessRange(a, 64*pg, Stream, false); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if n := tk.GetNode(a + vm.Addr(i)*pg); n != 3 {
				t.Fatalf("page %d on node %d after NT access", i, n)
			}
		}
	})
	if h.k.Stats.NTMigrations != 64 {
		t.Fatalf("nt migrations = %d", h.k.Stats.NTMigrations)
	}
}

func TestMemcpyBackedCopiesBytes(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		src, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(0), 0, "src")
		dst, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(1), 0, "dst")
		payload := bytes.Repeat([]byte("abcdefgh"), 512) // one page
		if err := tk.WriteData(src+pg, payload); err != nil {
			t.Fatal(err)
		}
		if err := tk.Memcpy(dst, src, 4*pg); err != nil {
			t.Fatal(err)
		}
		got, err := tk.ReadData(dst+pg, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("memcpy did not copy bytes")
		}
	})
}

func TestMemcpyThroughputCalibration(t *testing.T) {
	const pages = 4096
	h := newHarness(false)
	var dur sim.Time
	h.run(t, 4, func(tk *Task) { // node 1 copies node0 -> node1
		src, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "src")
		dst, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(1), 0, "dst")
		if _, err := tk.FaultIn(src, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(dst, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		start := tk.P.Now()
		if err := tk.Memcpy(dst, src, pages*pg); err != nil {
			t.Fatal(err)
		}
		dur = tk.P.Now() - start
	})
	gbps := float64(pages*pg) / dur.Seconds() / 1e9
	if gbps < 1.7 || gbps > 2.3 {
		t.Fatalf("memcpy = %.2f GB/s, want ~2.1", gbps)
	}
}

func TestWriteReadDataRoundTripAcrossMovePages(t *testing.T) {
	h := newHarness(true)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(8*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		data := make([]byte, 8*pg)
		for i := range data {
			data[i] = byte(i * 31)
		}
		if err := tk.WriteData(a, data); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.MovePagesTo(a, 8*pg, 3, true); err != nil {
			t.Fatal(err)
		}
		got, err := tk.ReadData(a, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data corrupted across move_pages")
		}
	})
}

func TestThreadedLazyMigrationScales(t *testing.T) {
	// 4 threads on node 1 faulting disjoint quarters of a large
	// NT-marked buffer should beat 1 thread, but sub-linearly
	// (lock + channel contention), cf. Fig. 7.
	const pages = 16384
	run := func(threads int) sim.Time {
		h := newHarness(false)
		setup := sim.NewEvent(h.eng)
		var a vm.Addr
		h.proc.Spawn("setup", 0, func(tk *Task) {
			a, _ = tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
			if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
				t.Error(err)
			}
			if _, err := tk.Madvise(a, pages*pg, AdvMigrateOnNextTouch); err != nil {
				t.Error(err)
			}
			setup.Fire()
		})
		var last sim.Time
		chunk := pages / threads
		for i := 0; i < threads; i++ {
			i := i
			h.proc.Spawn(fmt.Sprintf("mig%d", i), topology.CoreID(4+i), func(tk *Task) {
				setup.Wait(tk.P)
				start := tk.P.Now()
				if _, err := tk.FaultIn(a+vm.Addr(i*chunk)*pg, int64(chunk)*pg, false); err != nil {
					t.Error(err)
				}
				if end := tk.P.Now(); end > last {
					last = end
				}
				_ = start
			})
		}
		if err := h.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	t1, t4 := run(1), run(4)
	speedup := float64(t1) / float64(t4)
	if speedup < 1.3 || speedup > 2.5 {
		t.Fatalf("4-thread lazy migration speedup = %.2f, want ~1.6 (paper: +50-60%%)", speedup)
	}
}

func TestStatsLocalRemoteBytes(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(0), 0, "l")
		b, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(2), 0, "r")
		if _, err := tk.FaultIn(a, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(b, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.AccessRange(a, 4*pg, Stream, false); err != nil {
			t.Fatal(err)
		}
		if err := tk.AccessRange(b, 4*pg, Stream, false); err != nil {
			t.Fatal(err)
		}
	})
	if h.k.Stats.LocalBytes != 4*pg || h.k.Stats.RemoteBytes != 4*pg {
		t.Fatalf("local=%v remote=%v", h.k.Stats.LocalBytes, h.k.Stats.RemoteBytes)
	}
}

func TestMbindChangesPolicy(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(8*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err := tk.Mbind(a, 8*pg, vm.Bind(3)); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(a, 8*pg, true); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 3 {
			t.Fatalf("mbind ignored: node %d", n)
		}
	})
}

func TestSetMempolicyDefault(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		tk.SetMempolicy(vm.Interleave(1, 2))
		a, _ := tk.Mmap(8*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if _, err := tk.FaultIn(a, 8*pg, true); err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for i := 0; i < 8; i++ {
			counts[tk.GetNode(a+vm.Addr(i)*pg)]++
		}
		if counts[1]+counts[2] != 8 || counts[1] == 0 || counts[2] == 0 {
			t.Fatalf("process policy not applied: %v", counts)
		}
	})
}

func TestMunmapFreesFrames(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		if got := h.k.Phys.Stats(0).Allocated; got != 16 {
			t.Fatalf("allocated = %d", got)
		}
		if err := tk.Munmap(a, 16*pg); err != nil {
			t.Fatal(err)
		}
		if got := h.k.Phys.Stats(0).Allocated; got != 0 {
			t.Fatalf("allocated after munmap = %d", got)
		}
	})
}

func TestQueryPagesMode(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(2), 0, "buf")
		if _, err := tk.FaultIn(a, 2*pg, true); err != nil {
			t.Fatal(err)
		}
		st := tk.QueryPages([]vm.Addr{a, a + pg, a + 3*pg})
		want := []int{2, 2, StatusNoEnt}
		for i := range want {
			if st[i] != want[i] {
				t.Fatalf("query status = %v, want %v", st, want)
			}
		}
	})
	// Query mode never migrates.
	if h.k.Stats.MovePagesPages != 0 {
		t.Fatal("query mode migrated pages")
	}
}

func TestMbindMoveMigratesExistingPages(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, _ := tk.Mmap(8*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 8*pg, true); err != nil {
			t.Fatal(err)
		}
		// Plain mbind only changes future allocations.
		if err := tk.Mbind(a, 8*pg, vm.Bind(3)); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 0 {
			t.Fatalf("plain mbind moved pages to %d", n)
		}
		// MPOL_MF_MOVE migrates resident pages too.
		if err := tk.Mbind(a, 8*pg, vm.Bind(3), MbindMove); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if n := tk.GetNode(a + vm.Addr(i)*pg); n != 3 {
				t.Fatalf("page %d on node %d after MF_MOVE", i, n)
			}
		}
	})
}

func TestGetMempolicyRoundTrip(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		tk.SetMempolicy(vm.Interleave(0, 3))
		got := tk.GetMempolicy()
		if !got.Equal(vm.Interleave(0, 3)) {
			t.Fatalf("policy round trip: %+v", got)
		}
		a, _ := tk.Mmap(pg, vm.ProtRW, vm.Preferred(2), 0, "buf")
		vp, err := tk.GetVMAPolicy(a)
		if err != nil {
			t.Fatal(err)
		}
		if !vp.Equal(vm.Preferred(2)) {
			t.Fatalf("vma policy = %+v", vp)
		}
		if _, err := tk.GetVMAPolicy(0xbad000); err == nil {
			t.Fatal("unmapped get_mempolicy accepted")
		}
	})
}
