package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Huge-page support is one of the paper's future-work items (§6: "Huge
// pages are another feature that will have to be studied since they are
// known to help performance by reducing the TLB pressure, but LINUX does
// not currently support their migration"). This file implements 2 MiB
// huge-page mappings and their migration so the repository can quantify
// the win the paper anticipates: one lock round and one bulk copy per
// 2 MiB instead of 512 per-page control operations.
//
// Huge mappings are managed at page-table-chunk granularity and are
// intentionally separate from the 4 KiB fault paths; use TouchHuge /
// MoveHugeRange on them.

// MmapHuge creates an anonymous mapping backed by 2 MiB huge pages.
func (t *Task) MmapHuge(length int64, pol vm.Policy, label string) (vm.Addr, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	return t.Proc.Space.Map(length, vm.ProtRW, pol, vm.VMAHuge, label)
}

// hugeChunks returns the chunk indices covering a huge range.
func hugeChunks(addr vm.Addr, length int64) (first, last uint64, err error) {
	if addr%model.HugePageSize != 0 {
		return 0, 0, fmt.Errorf("kern: huge range must be 2MB aligned, got %#x", addr)
	}
	if length <= 0 {
		return 0, 0, fmt.Errorf("kern: empty huge range")
	}
	first = vm.ChunkIndex(vm.PageOf(addr))
	last = vm.ChunkIndex(vm.PageOf(addr + vm.Addr(length) - 1))
	return first, last, nil
}

// TouchHuge faults in every huge page of [addr, addr+length). Each fault
// allocates one 2 MiB frame on the policy target (first-touch local by
// default). Returns the number of huge pages faulted.
func (t *Task) TouchHuge(addr vm.Addr, length int64) (int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, fmt.Errorf("kern: TouchHuge outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, err
	}
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	n := 0
	for ci := first; ci <= last; ci++ {
		c := sp.PT.ChunkOrCreate(vm.VPN(ci * model.PTEChunkPages))
		if c.Huge && c.HugeFrame != nil {
			continue
		}
		cl := t.Proc.chunkLock(ci)
		cl.Acquire(t.P)
		if !(c.Huge && c.HugeFrame != nil) {
			k.Stats.Faults++
			t.P.Sleep(k.P.FaultBase)
			pol := v.Pol
			if pol.Kind == vm.PolDefault {
				pol = sp.DefaultPol
			}
			target := pol.Target(vm.VPN(ci*model.PTEChunkPages), t.Node())
			c.Huge = true
			c.HugeFrame = t.allocHugeFrame(target)
			c.HugeFlags = vm.PTEPresent | vm.PTEAccessed
			// Zeroing 2 MiB.
			t.P.Sleep(sim.Time(model.PTEChunkPages) * k.P.DemandZero / 4)
			n++
		}
		cl.Release()
	}
	return n, nil
}

// allocHugeFrame reserves 512 contiguous frames' worth of memory on the
// node and returns a frame representing the 2 MiB unit.
func (t *Task) allocHugeFrame(target topology.NodeID) *mem.Frame {
	return t.Proc.K.AllocHugeFrame(target)
}

// MoveHugeRange migrates the huge pages of [addr, addr+length) to node.
// One lock round and one bulk copy per 2 MiB page: the per-page control
// cost that dominates 4 KiB migration (Fig. 6) is paid once per 512
// pages. The request runs through the shared migration engine as huge
// ops, so pinned units are retried with backoff and reported -EBUSY
// (left in place) exactly like pinned 4 KiB pages. Returns the number
// of huge pages migrated and, when any unit stayed pinned, the per-unit
// status slice.
func (t *Task) MoveHugeRange(addr vm.Addr, length int64, node topology.NodeID) (int, error) {
	moved, _, err := t.MoveHugeRangeStatus(addr, length, node)
	return moved, err
}

// MoveHugeRangeStatus is MoveHugeRange returning the per-unit status
// (resulting node, StatusNoEnt, or StatusBusy for units that stayed
// pinned through every retry pass), parallel to the 2 MiB units of the
// range.
func (t *Task) MoveHugeRangeStatus(addr vm.Addr, length int64, node topology.NodeID) (int, []int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, nil, fmt.Errorf("kern: MoveHugeRange outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, nil, err
	}
	k.Stats.Syscalls++
	defer t.P.PushCat(CatMovePagesCtl)()
	t.P.Sleep(k.P.SyscallBase)
	eng := k.Migrator(migrate.Patched)
	eng.Setup(t.P, migrate.PathMovePages)

	ops := make([]migrate.Op, 0, last-first+1)
	for ci := first; ci <= last; ci++ {
		ops = append(ops, migrate.Op{VPN: vm.VPN(ci * model.PTEChunkPages), Dst: node, Huge: true})
	}
	status := make([]int, len(ops))
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	res := eng.Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc,
		Ops: ops, Status: status,
		Path: migrate.PathMovePages, Flush: true,
		CopyCat: CatMovePagesCopy,
	})
	k.Stats.MovePagesPages += uint64(res.Moved) * model.PTEChunkPages
	return res.Moved, status, nil
}

// HugeNode returns the node holding the huge page at addr, or -1.
func (t *Task) HugeNode(addr vm.Addr) int {
	c := t.Proc.Space.PT.Chunk(vm.PageOf(addr))
	if c == nil || !c.Huge || c.HugeFrame == nil {
		return -1
	}
	return int(c.HugeFrame.Node)
}
