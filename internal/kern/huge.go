package kern

import (
	"fmt"

	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Huge-page support is one of the paper's future-work items (§6: "Huge
// pages are another feature that will have to be studied since they are
// known to help performance by reducing the TLB pressure, but LINUX does
// not currently support their migration"). This file implements 2 MiB
// huge-page mappings and their migration so the repository can quantify
// the win the paper anticipates: one lock round and one bulk copy per
// 2 MiB instead of 512 per-page control operations.
//
// Huge mappings are managed at page-table-chunk granularity and are
// intentionally separate from the 4 KiB fault paths; use TouchHuge /
// MoveHugeRange on them.

// MmapHuge creates an anonymous mapping backed by 2 MiB huge pages.
func (t *Task) MmapHuge(length int64, pol vm.Policy, label string) (vm.Addr, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	return t.Proc.Space.Map(length, vm.ProtRW, pol, vm.VMAHuge, label)
}

// hugeChunks returns the chunk indices covering a huge range.
func hugeChunks(addr vm.Addr, length int64) (first, last uint64, err error) {
	if addr%model.HugePageSize != 0 {
		return 0, 0, fmt.Errorf("kern: huge range must be 2MB aligned, got %#x", addr)
	}
	if length <= 0 {
		return 0, 0, fmt.Errorf("kern: empty huge range")
	}
	first = vm.ChunkIndex(vm.PageOf(addr))
	last = vm.ChunkIndex(vm.PageOf(addr + vm.Addr(length) - 1))
	return first, last, nil
}

// TouchHuge faults in every huge page of [addr, addr+length). Each fault
// allocates one 2 MiB frame on the policy target (first-touch local by
// default), falling back along the zonelist under pressure. When no node
// can host a whole contiguous unit, the fault is served with 512 base
// pages instead — like a failed THP allocation — and the chunk stays a
// normal 4 KiB chunk (MoveHugeRange reports such chunks -ENOENT).
// Returns the number of huge pages faulted (base-page fallbacks count).
func (t *Task) TouchHuge(addr vm.Addr, length int64) (int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, fmt.Errorf("kern: TouchHuge outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, err
	}
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	// populated reports whether the chunk is already served, as a huge
	// unit or by a completed exhaustion fallback. Checked once
	// lock-free for the common skip, re-checked under the chunk lock
	// before faulting (a concurrent toucher may have populated it
	// between the check and the lock).
	populated := func(c *vm.Chunk) bool {
		return (c.Huge && c.HugeFrame != nil) || c.HugeFallback
	}
	n := 0
	for ci := first; ci <= last; ci++ {
		base := vm.VPN(ci * model.PTEChunkPages)
		c := sp.PT.ChunkOrCreate(base)
		if populated(c) {
			continue
		}
		cl := t.Proc.chunkLock(ci)
		cl.Acquire(t.P)
		if !populated(c) {
			k.Stats.Faults++
			if k.bus.Active(telemetry.TopicPageFault) {
				k.bus.Publish(telemetry.Event{
					Topic: telemetry.TopicPageFault,
					Node:  t.Node(), Dst: telemetry.NoNode,
					Task: t.P.ID(), Pages: 1,
				})
			}
			t.P.Sleep(k.P.FaultBase)
			// Key policy interleaving on the huge-unit index, not the
			// base VPN: chunk bases are multiples of 512, so a VPN key
			// would collapse every interleave onto the node set's first
			// entry.
			target := t.placeTarget(v, vm.VPN(ci))
			if hf := k.Placer.AllocHugePage(target); hf != nil {
				c.Huge = true
				c.HugeFrame = hf
				c.HugeFlags = vm.PTEPresent | vm.PTEAccessed
				// Zeroing 2 MiB.
				t.P.Sleep(sim.Time(model.PTEChunkPages) * k.P.DemandZero / 4)
			} else {
				t.hugeFallback(v, base)
			}
			n++
		}
		cl.Release()
	}
	return n, nil
}

// hugeFallback serves one huge fault with 512 base pages when no node
// can host a contiguous 2 MiB unit: each page allocates through the
// normal placement path (so the pages may spread over several nodes),
// at per-page demand-zero cost and without the huge unit's TLB win.
// Caller holds the chunk lock.
func (t *Task) hugeFallback(v *vm.VMA, base vm.VPN) {
	k := t.Proc.K
	k.Stats.HugeFallbacks++
	k.Stats.DemandAllocs += model.PTEChunkPages
	sp := t.Proc.Space
	for p := base; p < base+model.PTEChunkPages; p++ {
		pte := sp.PT.Entry(p)
		pte.Frame = t.allocFrame(t.placeTarget(v, p))
		pte.Flags = vm.PTEPresent | vm.PTEAccessed
		pte.SetProt(v.Prot)
	}
	sp.PT.Chunk(base).HugeFallback = true
	t.P.Sleep(sim.Time(model.PTEChunkPages) * k.P.DemandZero)
}

// MoveHugeRange migrates the huge pages of [addr, addr+length) to node.
// One lock round and one bulk copy per 2 MiB page: the per-page control
// cost that dominates 4 KiB migration (Fig. 6) is paid once per 512
// pages. The request runs through the shared migration engine as huge
// ops, so pinned units are retried with backoff and reported -EBUSY
// (left in place) exactly like pinned 4 KiB pages. Returns the number
// of huge pages migrated and, when any unit stayed pinned, the per-unit
// status slice.
func (t *Task) MoveHugeRange(addr vm.Addr, length int64, node topology.NodeID) (int, error) {
	moved, _, err := t.MoveHugeRangeStatus(addr, length, node)
	return moved, err
}

// MoveHugeRangeStatus is MoveHugeRange returning the per-unit status
// (resulting node, StatusNoEnt, or StatusBusy for units that stayed
// pinned through every retry pass), parallel to the 2 MiB units of the
// range.
func (t *Task) MoveHugeRangeStatus(addr vm.Addr, length int64, node topology.NodeID) (int, []int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, nil, fmt.Errorf("kern: MoveHugeRange outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, nil, err
	}
	k.Stats.Syscalls++
	defer t.P.PushCat(CatMovePagesCtl)()
	t.P.Sleep(k.P.SyscallBase)
	eng := k.Migrator(migrate.Patched)
	eng.SetupPri(t.P, migrate.PathMovePages, t.Proc.MigPrio)

	ops := make([]migrate.Op, 0, last-first+1)
	for ci := first; ci <= last; ci++ {
		ops = append(ops, migrate.Op{VPN: vm.VPN(ci * model.PTEChunkPages), Dst: node, Huge: true})
	}
	status := make([]int, len(ops))
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	res := eng.Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc,
		Ops: ops, Status: status,
		Path: migrate.PathMovePages, Flush: true,
		CopyCat: CatMovePagesCopy, Priority: t.Proc.MigPrio,
	})
	k.Stats.MovePagesPages += uint64(res.Moved) * model.PTEChunkPages
	return res.Moved, status, nil
}

// HugeNode returns the node holding the huge page at addr, or -1.
func (t *Task) HugeNode(addr vm.Addr) int {
	c := t.Proc.Space.PT.Chunk(vm.PageOf(addr))
	if c == nil || !c.Huge || c.HugeFrame == nil {
		return -1
	}
	return int(c.HugeFrame.Node)
}
