package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Huge-page support is one of the paper's future-work items (§6: "Huge
// pages are another feature that will have to be studied since they are
// known to help performance by reducing the TLB pressure, but LINUX does
// not currently support their migration"). This file implements 2 MiB
// huge-page mappings and their migration so the repository can quantify
// the win the paper anticipates: one lock round and one bulk copy per
// 2 MiB instead of 512 per-page control operations.
//
// Huge mappings are managed at page-table-chunk granularity and are
// intentionally separate from the 4 KiB fault paths; use TouchHuge /
// MoveHugeRange on them.

// MmapHuge creates an anonymous mapping backed by 2 MiB huge pages.
func (t *Task) MmapHuge(length int64, pol vm.Policy, label string) (vm.Addr, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	return t.Proc.Space.Map(length, vm.ProtRW, pol, vm.VMAHuge, label)
}

// hugeChunks returns the chunk indices covering a huge range.
func hugeChunks(addr vm.Addr, length int64) (first, last uint64, err error) {
	if addr%model.HugePageSize != 0 {
		return 0, 0, fmt.Errorf("kern: huge range must be 2MB aligned, got %#x", addr)
	}
	if length <= 0 {
		return 0, 0, fmt.Errorf("kern: empty huge range")
	}
	first = vm.ChunkIndex(vm.PageOf(addr))
	last = vm.ChunkIndex(vm.PageOf(addr + vm.Addr(length) - 1))
	return first, last, nil
}

// TouchHuge faults in every huge page of [addr, addr+length). Each fault
// allocates one 2 MiB frame on the policy target (first-touch local by
// default). Returns the number of huge pages faulted.
func (t *Task) TouchHuge(addr vm.Addr, length int64) (int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, fmt.Errorf("kern: TouchHuge outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, err
	}
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	n := 0
	for ci := first; ci <= last; ci++ {
		c := sp.PT.ChunkOrCreate(vm.VPN(ci * model.PTEChunkPages))
		if c.Huge && c.HugeFrame != nil {
			continue
		}
		cl := t.Proc.chunkLock(ci)
		cl.Acquire(t.P)
		if !(c.Huge && c.HugeFrame != nil) {
			k.Stats.Faults++
			t.P.Sleep(k.P.FaultBase)
			pol := v.Pol
			if pol.Kind == vm.PolDefault {
				pol = sp.DefaultPol
			}
			target := pol.Target(vm.VPN(ci*model.PTEChunkPages), t.Node())
			c.Huge = true
			c.HugeFrame = t.allocHugeFrame(target)
			c.HugeFlags = vm.PTEPresent | vm.PTEAccessed
			// Zeroing 2 MiB.
			t.P.Sleep(sim.Time(model.PTEChunkPages) * k.P.DemandZero / 4)
			n++
		}
		cl.Release()
	}
	return n, nil
}

// allocHugeFrame reserves 512 contiguous frames' worth of memory on the
// node and returns a frame representing the 2 MiB unit.
func (t *Task) allocHugeFrame(target topology.NodeID) *mem.Frame {
	k := t.Proc.K
	if err := k.Phys.AllocFootprint(target, model.PTEChunkPages-1); err != nil {
		panic("kern: node out of memory for huge page")
	}
	f, err := k.Phys.Alloc(target)
	if err != nil {
		panic("kern: node out of memory for huge page")
	}
	return f
}

// MoveHugeRange migrates the huge pages of [addr, addr+length) to node.
// One lock round and one bulk copy per 2 MiB page: the per-page control
// cost that dominates 4 KiB migration (Fig. 6) is paid once per 512
// pages. Returns the number of huge pages migrated.
func (t *Task) MoveHugeRange(addr vm.Addr, length int64, node topology.NodeID) (int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	v := sp.Find(addr)
	if v == nil || v.Flags&vm.VMAHuge == 0 {
		return 0, fmt.Errorf("kern: MoveHugeRange outside a huge mapping at %#x", addr)
	}
	first, last, err := hugeChunks(addr, length)
	if err != nil {
		return 0, err
	}
	k.Stats.Syscalls++
	defer t.P.PushCat(CatMovePagesCtl)()
	t.P.Sleep(k.P.SyscallBase)
	k.migLock.Acquire(t.P)
	t.P.Sleep(k.P.MovePagesBaseLocked)
	k.migLock.Release()
	t.P.Sleep(k.P.MovePagesBase - k.P.MovePagesBaseLocked)

	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	moved := 0
	for ci := first; ci <= last; ci++ {
		c := sp.PT.Chunk(vm.VPN(ci * model.PTEChunkPages))
		if c == nil || !c.Huge || c.HugeFrame == nil || c.HugeFrame.Node == node {
			continue
		}
		cl := t.Proc.chunkLock(ci)
		cl.Acquire(t.P)
		src := c.HugeFrame.Node
		// One control round for the whole 2 MiB unit.
		k.lruLock.Acquire(t.P)
		t.P.Sleep(k.P.MovePagesCtlLocked)
		k.lruLock.Release()
		t.P.Sleep(k.P.MovePagesCtl - k.P.MovePagesCtlLocked)
		// Release and re-allocate the footprint on the target node.
		t.freeHugeFootprint(c.HugeFrame)
		c.HugeFrame = t.allocHugeFrame(node)
		cl.Release()
		t.P.InCat(CatMovePagesCopy, func() {
			k.Net.Transfer(t.P, model.HugePageSize, k.migPath(t.Core, src, node, true)...)
		})
		k.Phys.NoteMigration(node)
		k.Stats.MovePagesPages += model.PTEChunkPages
		moved++
	}
	t.tlbShootdown()
	return moved, nil
}

// freeHugeFootprint returns a huge unit's 512-frame footprint. The
// representative frame is freed first; the remaining accounting frames
// are synthesized because mem.Phys tracks counts, not identity, for the
// footprint.
func (t *Task) freeHugeFootprint(f *mem.Frame) {
	k := t.Proc.K
	k.Phys.Free(f)
	k.Phys.ReleaseFootprint(f.Node, model.PTEChunkPages-1)
}

// HugeNode returns the node holding the huge page at addr, or -1.
func (t *Task) HugeNode(addr vm.Addr) int {
	c := t.Proc.Space.PT.Chunk(vm.PageOf(addr))
	if c == nil || !c.Huge || c.HugeFrame == nil {
		return -1
	}
	return int(c.HugeFrame.Node)
}
