package kern

import (
	"sort"

	"numamig/internal/model"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Rect describes a strided 2D region of the address space, e.g. one
// matrix block inside a row-major matrix: Rows row segments of RowBytes
// bytes, consecutive segments Stride bytes apart. The blocked-application
// drivers use Rect to fault and access whole blocks with aggregate DES
// costs (equivalent per-page charges, far fewer events).
type Rect struct {
	Base     vm.Addr
	RowBytes int64
	Stride   int64
	Rows     int
}

// Bytes returns the total payload bytes of the rectangle.
func (r Rect) Bytes() int64 { return r.RowBytes * int64(r.Rows) }

// pages returns the ascending, deduplicated page list covered by the
// rectangle.
func (r Rect) pages() []vm.VPN {
	if r.RowBytes <= 0 || r.Rows <= 0 {
		return nil
	}
	out := make([]vm.VPN, 0, r.Rows*2)
	var last vm.VPN
	haveLast := false
	for row := 0; row < r.Rows; row++ {
		start := r.Base + vm.Addr(int64(row)*r.Stride)
		first, lastP := vm.PageOf(start), vm.PageOf(start+vm.Addr(r.RowBytes)-1)
		for p := first; p <= lastP; p++ {
			if haveLast && p <= last {
				continue
			}
			out = append(out, p)
			last = p
			haveLast = true
		}
	}
	// Strides are normally positive and rows ascending, but guard
	// against exotic rects.
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// FaultInRect resolves all faulting pages of the rectangle (demand
// allocation, kernel next-touch migration, stale-PTE fixups) with the
// same batched cost model as FaultIn. Protection violations fall back to
// the single-address fault path so user next-touch handlers run.
// Returns the number of serviced pages.
func (t *Task) FaultInRect(r Rect, write bool) (int, error) {
	sp := t.Proc.Space
	pages := r.pages()
	if len(pages) == 0 {
		return 0, nil
	}
	serviced := 0
	for round := 0; round < 16; round++ {
		var segvAt vm.Addr
		haveSegv := false
		t.Proc.MmapSem.RLock(t.P)
		i := 0
		for i < len(pages) && !haveSegv {
			ci := vm.ChunkIndex(pages[i])
			j := i
			var nt, numa, absent, stale []vm.VPN
			for ; j < len(pages) && vm.ChunkIndex(pages[j]) == ci; j++ {
				p := pages[j]
				v := sp.Find(p.Base())
				if v == nil || !v.Prot.Allows(write) {
					segvAt = p.Base()
					haveSegv = true
					break
				}
				pte := sp.PT.Lookup(p)
				switch {
				case pte.Allows(write):
				case !pte.Present():
					absent = append(absent, p)
				case pte.Flags&vm.PTENextTouch != 0:
					nt = append(nt, p)
				case pte.Flags&vm.PTENumaHint != 0:
					numa = append(numa, p)
				default:
					stale = append(stale, p)
				}
			}
			if haveSegv {
				break
			}
			if len(absent)+len(stale) > 0 {
				serviced += len(absent) + len(stale)
				t.serviceChunk(ci, absent, stale)
			}
			if len(nt) > 0 {
				serviced += len(nt)
				t.ntServiceFaults(nt)
			}
			if len(numa) > 0 {
				serviced += len(numa)
				t.numaServiceFaults(numa)
			}
			i = j
		}
		t.Proc.MmapSem.RUnlock()
		if !haveSegv {
			return serviced, nil
		}
		// Protection violation: run the full single-address fault path
		// (SIGSEGV delivery) and rescan.
		if err := t.Touch(segvAt, write); err != nil {
			return serviced, err
		}
		serviced++
	}
	return serviced, nil
}

// TrafficRect charges the memory traffic of reading/writing the
// rectangle once, based on where its pages currently live. Pages must be
// resident (call FaultInRect first). Partial pages are accounted
// proportionally.
func (t *Task) TrafficRect(r Rect, kind AccessKind, write bool) {
	t.TrafficRectVolume(r, float64(r.Bytes()), kind, write)
}

// TrafficRectVolume charges `volume` bytes of traffic distributed over
// the rectangle's current page placement. Drivers use it to model
// cache-thrashing kernels whose memory volume exceeds the data footprint
// (e.g. column-strided DGEMM re-reading its B operand).
func (t *Task) TrafficRectVolume(r Rect, volume float64, kind AccessKind, write bool) {
	k := t.Proc.K
	sp := t.Proc.Space
	pages := r.pages()
	if len(pages) == 0 {
		return
	}
	// Count resident pages per home node extent-run-at-a-time: the page
	// list is ascending and deduplicated, so maximal contiguous runs of
	// it walk through Extents without materializing chunks, and the
	// first-appearance node order matches the per-page walk's.
	nn := k.M.NumNodes()
	counts := t.scratch.nodeCount
	if cap(counts) < nn {
		counts = make([]int, nn)
	}
	counts = counts[:nn]
	for i := range counts {
		counts[i] = 0
	}
	order := t.scratch.nodeOrder[:0]
	resident := 0
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		sp.PT.Extents(pages[i], pages[j-1]+1, false, func(e vm.Ext) bool {
			if counts[e.Node] == 0 {
				order = append(order, e.Node)
			}
			counts[e.Node] += e.N
			resident += e.N
			return true
		})
		i = j
	}
	t.scratch.nodeCount, t.scratch.nodeOrder = counts, order
	if resident == 0 || volume <= 0 {
		return
	}
	perPage := volume / float64(resident)
	for _, node := range order {
		t.chargeNodeTraffic(node, perPage*float64(counts[node]), kind)
	}
}

// AccessRect faults the rectangle in and charges its traffic.
func (t *Task) AccessRect(r Rect, kind AccessKind, write bool) error {
	if _, err := t.FaultInRect(r, write); err != nil {
		return err
	}
	t.TrafficRect(r, kind, write)
	return nil
}

// NodesOfRect returns the per-node resident page counts of a rectangle
// plus the number of absent pages; drivers use it to cache block
// placement summaries.
func (t *Task) NodesOfRect(r Rect) (map[topology.NodeID]int, int) {
	sp := t.Proc.Space
	counts := map[topology.NodeID]int{}
	absent := 0
	pages := r.pages()
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		// Gaps (withGaps) arrive with Node == -1 and cover both unmapped
		// spans and installed-but-absent PTEs — the per-page walk's
		// !Present() bucket.
		sp.PT.Extents(pages[i], pages[j-1]+1, true, func(e vm.Ext) bool {
			if e.Flags&vm.PTEPresent == 0 {
				absent += e.N
			} else {
				counts[e.Node] += e.N
			}
			return true
		})
		i = j
	}
	return counts, absent
}

// PageSizeBytes re-exports the page size for drivers.
const PageSizeBytes = model.PageSize
