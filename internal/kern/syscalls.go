package kern

import (
	"fmt"

	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Advice values for Madvise.
type Advice int

// Supported madvise advice.
const (
	// AdvMigrateOnNextTouch is the paper's new madvise parameter: mark
	// the range Migrate-on-next-touch. The kernel strips access bits
	// from present PTEs so the next touch faults and migrates the page
	// to the toucher's node (§3.3).
	AdvMigrateOnNextTouch Advice = iota
	// AdvNormal clears the next-touch mark.
	AdvNormal
)

// Page-status codes returned by MovePages, mirroring Linux. Defined by
// the shared migration engine.
const (
	StatusNoEnt = migrate.StatusNoEnt // page not present (-ENOENT)
	StatusBusy  = migrate.StatusBusy  // page pinned through every retry (-EBUSY)
)

// Mmap creates an anonymous mapping.
func (t *Task) Mmap(length int64, prot vm.Prot, pol vm.Policy, flags vm.VMAFlags, label string) (vm.Addr, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	return t.Proc.Space.Map(length, prot, pol, flags, label)
}

// Munmap removes a mapping.
func (t *Task) Munmap(addr vm.Addr, length int64) error {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	if err := t.Proc.Space.Unmap(addr, length); err != nil {
		return err
	}
	t.tlbShootdown()
	return nil
}

// Mprotect changes protection of [addr, addr+length): updates the VMAs
// and strips now-forbidden hardware bits from present PTEs, then flushes
// TLBs. Used by the user-space next-touch implementation (§3.2).
func (t *Task) Mprotect(addr vm.Addr, length int64, prot vm.Prot) error {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MprotectBase)
	t.Proc.MmapSem.Lock(t.P)
	defer t.Proc.MmapSem.Unlock()
	end := vm.PageCeil(addr + vm.Addr(length))
	if err := t.Proc.Space.Apply(vm.PageFloor(addr), end, func(v *vm.VMA) {
		v.Prot = prot
	}); err != nil {
		return err
	}
	first, last := vm.PageOf(addr), vm.PageOf(end-1)+1
	n := 0
	t.Proc.Space.PT.ForEach(first, last, func(_ vm.VPN, pte *vm.PTE) {
		pte.SetProt(prot)
		n++
	})
	t.P.Sleep(sim.Time(n) * k.P.MprotectPage)
	t.tlbShootdown()
	return nil
}

// Madvise applies advice to [addr, addr+length). For
// AdvMigrateOnNextTouch it sets the next-touch PTE bit on present pages
// and removes their access bits (they will fault on next touch); the TLB
// is flushed once (§3.3).
func (t *Task) Madvise(addr vm.Addr, length int64, adv Advice) (int, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	defer t.P.PushCat(CatMadvise)()
	t.P.Sleep(k.P.SyscallBase + k.P.MadviseBase)
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	if t.Proc.Space.Find(addr) == nil {
		return 0, fmt.Errorf("kern: madvise on unmapped address %#x", addr)
	}
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	n := 0
	t.Proc.Space.PT.ForEach(first, last, func(_ vm.VPN, pte *vm.PTE) {
		switch adv {
		case AdvMigrateOnNextTouch:
			pte.Flags |= vm.PTENextTouch
		case AdvNormal:
			pte.Flags &^= vm.PTENextTouch
		}
		n++
	})
	t.P.Sleep(sim.Time(n) * k.P.MadvisePage)
	t.tlbShootdown()
	return n, nil
}

// SetMempolicy sets the process default policy.
func (t *Task) SetMempolicy(pol vm.Policy) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase)
	t.Proc.Space.DefaultPol = pol
}

// GetMempolicy returns the process default policy.
func (t *Task) GetMempolicy() vm.Policy {
	t.Proc.K.Stats.Syscalls++
	t.P.Sleep(t.Proc.K.P.SyscallBase)
	return t.Proc.Space.DefaultPol
}

// GetVMAPolicy returns the policy of the mapping containing addr.
func (t *Task) GetVMAPolicy(addr vm.Addr) (vm.Policy, error) {
	t.Proc.K.Stats.Syscalls++
	t.P.Sleep(t.Proc.K.P.SyscallBase)
	v := t.Proc.Space.Find(addr)
	if v == nil {
		return vm.Policy{}, fmt.Errorf("kern: get_mempolicy on unmapped address %#x", addr)
	}
	return v.Pol, nil
}

// MbindFlags modify Mbind behaviour, mirroring MPOL_MF_* flags.
type MbindFlags uint8

// Mbind flags.
const (
	// MbindMove migrates already-allocated pages that violate the new
	// policy (MPOL_MF_MOVE).
	MbindMove MbindFlags = 1 << iota
)

// Mbind sets the policy of an address range. With MbindMove, pages that
// no longer satisfy the policy are migrated immediately (through the
// same batched path as move_pages).
func (t *Task) Mbind(addr vm.Addr, length int64, pol vm.Policy, flags ...MbindFlags) error {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase + k.P.MmapBase)
	var fl MbindFlags
	for _, f := range flags {
		fl |= f
	}
	t.Proc.MmapSem.Lock(t.P)
	err := t.Proc.Space.Apply(vm.PageFloor(addr), vm.PageCeil(addr+vm.Addr(length)), func(v *vm.VMA) {
		v.Pol = pol
	})
	t.Proc.MmapSem.Unlock()
	if err != nil || fl&MbindMove == 0 {
		return err
	}
	// MPOL_MF_MOVE: collect misplaced pages, then migrate them.
	var addrs []vm.Addr
	var nodes []topology.NodeID
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	t.Proc.Space.PT.ForEach(first, last, func(p vm.VPN, pte *vm.PTE) {
		want := k.Placer.Target(pol, p, t.Node())
		if pte.Frame.Node != want {
			addrs = append(addrs, p.Base())
			nodes = append(nodes, want)
		}
	})
	if len(addrs) == 0 {
		return nil
	}
	_, err = t.MovePages(addrs, nodes, true)
	return err
}

// QueryPages is move_pages' query mode (nodes == NULL in Linux): it
// returns the node of each page without migrating, or StatusNoEnt for
// absent pages.
func (t *Task) QueryPages(addrs []vm.Addr) []int {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase)
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	status := make([]int, len(addrs))
	var n int
	for i, a := range addrs {
		pte := t.Proc.Space.PT.Lookup(vm.PageOf(a))
		if !pte.Present() {
			status[i] = StatusNoEnt
			continue
		}
		status[i] = int(pte.Frame.Node)
		n++
	}
	// Page-table walk cost, no locking beyond mmap_sem.
	t.P.Sleep(sim.Time(len(addrs)) * k.P.MadvisePage)
	return status
}

// GetNode returns the NUMA node of the page backing addr, or -1 if not
// present (the move_pages query mode, nodes == nil).
func (t *Task) GetNode(addr vm.Addr) int {
	pte := t.Proc.Space.PT.Lookup(vm.PageOf(addr))
	if !pte.Present() {
		return -1
	}
	return int(pte.Frame.Node)
}

// GetNodes returns the backing node of every page of [addr, addr+length)
// (-1 for non-present pages) in one bulk query: a single syscall charge
// and one mmap_sem round for the whole range, where a GetNode loop pays
// per page. Huge pages report their unit's node for each covered page.
func (t *Task) GetNodes(addr vm.Addr, length int64) []int {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase)
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	n := vm.PagesIn(addr, length)
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	base := vm.PageOf(addr)
	t.Proc.Space.PT.ForEach(base, base+vm.VPN(n), func(p vm.VPN, pte *vm.PTE) {
		out[p-base] = int(pte.Frame.Node)
	})
	for ci := vm.ChunkIndex(base); ci <= vm.ChunkIndex(base+vm.VPN(n)-1); ci++ {
		c := t.Proc.Space.PT.Chunk(vm.VPN(ci * model.PTEChunkPages))
		if c == nil || !c.Huge || c.HugeFrame == nil {
			continue
		}
		for p := vm.VPN(ci * model.PTEChunkPages); p < vm.VPN((ci+1)*model.PTEChunkPages); p++ {
			if p >= base && p < base+vm.VPN(n) {
				out[p-base] = int(c.HugeFrame.Node)
			}
		}
	}
	// One page-table walk, no locking beyond mmap_sem.
	t.P.Sleep(sim.Time(n) * k.P.MadvisePage)
	return out
}

// MovePages is the move_pages(2) system call: migrate the pages holding
// addrs[i] to nodes[i]. patched selects the paper's linear
// implementation; !patched reproduces the pre-2.6.29 quadratic behaviour
// (a linear scan of the whole destination-node array for every page).
// The returned status slice holds, per page, the resulting node or a
// negative errno-style code.
func (t *Task) MovePages(addrs []vm.Addr, nodes []topology.NodeID, patched bool) ([]int, error) {
	return t.MovePagesStrategy(addrs, nodes, migrate.StrategyFor(patched))
}

// MovePagesStrategy is MovePages with an explicit engine strategy. The
// syscall is a thin shell: argument checking, syscall entry cost, and
// mmap_sem; the batched per-node pipeline lives in internal/migrate.
func (t *Task) MovePagesStrategy(addrs []vm.Addr, nodes []topology.NodeID, s migrate.Strategy) ([]int, error) {
	k := t.Proc.K
	if len(addrs) != len(nodes) {
		return nil, fmt.Errorf("kern: move_pages: %d addrs vs %d nodes", len(addrs), len(nodes))
	}
	k.Stats.Syscalls++
	k.Stats.MovePagesCalls++
	ops := make([]migrate.Op, len(addrs))
	for i := range addrs {
		ops[i] = migrate.Op{VPN: vm.PageOf(addrs[i]), Dst: nodes[i]}
	}
	status := make([]int, len(addrs))

	defer t.P.PushCat(CatMovePagesCtl)()
	t.P.Sleep(k.P.SyscallBase)
	eng := k.Migrator(s)
	eng.SetupPri(t.P, migrate.PathMovePages, t.Proc.MigPrio)
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	res := eng.Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc,
		Ops: ops, Status: status,
		Path: migrate.PathMovePages, Flush: true,
		CopyCat: CatMovePagesCopy, Priority: t.Proc.MigPrio,
	})
	k.Stats.MovePagesPages += uint64(res.Moved)
	return status, nil
}

// MovePagesTo migrates every page of [addr, addr+length) to one node:
// the common pattern of the user-space next-touch handler.
func (t *Task) MovePagesTo(addr vm.Addr, length int64, node topology.NodeID, patched bool) ([]int, error) {
	return t.MovePagesRegion(addr, length, node, migrate.StrategyFor(patched))
}

// MovePagesRegion is MovePagesTo with an explicit engine strategy.
func (t *Task) MovePagesRegion(addr vm.Addr, length int64, node topology.NodeID, s migrate.Strategy) ([]int, error) {
	n := vm.PagesIn(addr, length)
	addrs := make([]vm.Addr, n)
	nodes := make([]topology.NodeID, n)
	base := vm.PageOf(addr)
	for i := 0; i < n; i++ {
		addrs[i] = (base + vm.VPN(i)).Base()
		nodes[i] = node
	}
	return t.MovePagesStrategy(addrs, nodes, s)
}

// MigratePages is the migrate_pages(2) system call: move every page of
// the whole process that resides on a node in from to the corresponding
// node in to. The address space is traversed in order, which locks less
// per page than move_pages' arbitrary page sets (§4.2); the gathered
// orders run through the shared migration engine in one request.
func (t *Task) MigratePages(from, to []topology.NodeID) (int, error) {
	k := t.Proc.K
	if len(from) != len(to) {
		return 0, fmt.Errorf("kern: migrate_pages: mask sizes differ")
	}
	k.Stats.Syscalls++
	dst := map[topology.NodeID]topology.NodeID{}
	for i := range from {
		dst[from[i]] = to[i]
	}

	defer t.P.PushCat(CatMovePagesCtl)()
	t.P.Sleep(k.P.SyscallBase)
	eng := k.Migrator(migrate.Patched)
	eng.SetupPri(t.P, migrate.PathMigratePages, t.Proc.MigPrio)
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()

	// Gather: in-order walk of the address space for misplaced pages.
	var ops []migrate.Op
	for _, v := range t.Proc.Space.VMAs() {
		first, last := vm.PageOf(v.Start), vm.PageOf(v.End-1)+1
		t.Proc.Space.PT.ForEach(first, last, func(p vm.VPN, pte *vm.PTE) {
			d, ok := dst[pte.Frame.Node]
			if !ok || d == pte.Frame.Node {
				return
			}
			ops = append(ops, migrate.Op{VPN: p, Dst: d})
		})
	}
	res := eng.Migrate(&migrate.Request{
		P: t.P, Core: t.Core, Space: t.Proc, Ops: ops,
		Path: migrate.PathMigratePages, Flush: true,
		CopyCat: CatMovePagesCopy, Priority: t.Proc.MigPrio,
		// The gather walk above ran under mmap_sem only; re-check the
		// source mask under the chunk lock in case a page moved since.
		Revalidate: func(op migrate.Op, src topology.NodeID) bool {
			d, ok := dst[src]
			return ok && d == op.Dst
		},
	})
	k.Stats.MigratePages += uint64(res.Moved)
	return res.Moved, nil
}
