package kern

import (
	"strings"
	"testing"

	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// newSmallHarness builds a kernel over a machine with framesPerNode
// 4 KiB frames per node (1 core per node), so exhaustion and watermark
// behaviour are reachable with small buffers.
func newSmallHarness(nodes, framesPerNode int) *harness {
	eng := sim.NewEngine(7)
	m := topology.Grid(nodes, 1, int64(framesPerNode)*pg, 1<<20)
	k := New(eng, m, model.Default(), false)
	return &harness{eng: eng, k: k, proc: k.NewProcess("test")}
}

// TestMovePagesToFullNodeFallsBack: move_pages toward a node at its
// watermarks must not fail — the placement layer lands the overflow on
// the fallback node and the status array reports where each page
// actually went. ErrNoMemory never surfaces through the syscall.
func TestMovePagesToFullNodeFallsBack(t *testing.T) {
	h := newSmallHarness(2, 256) // low watermark: 12 frames
	h.run(t, 0, func(tk *Task) {
		// Fill node 1 to 26 free frames.
		filler, err := tk.Mmap(230*pg, vm.ProtRW, vm.Bind(1), 0, "filler")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(filler, 230*pg, true); err != nil {
			t.Fatal(err)
		}
		buf, err := tk.Mmap(64*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(buf, 64*pg, true); err != nil {
			t.Fatal(err)
		}
		status, err := tk.MovePagesTo(buf, 64*pg, 1, true)
		if err != nil {
			t.Fatalf("move_pages to a nearly-full node failed: %v", err)
		}
		on1, on0 := 0, 0
		for i, s := range status {
			switch s {
			case 1:
				on1++
			case 0:
				on0++
			default:
				t.Fatalf("status[%d] = %d, want a node id", i, s)
			}
		}
		// Node 1 can take frames down to its low watermark (26 free,
		// low 12): exactly 14 land there, the rest fall back to node 0.
		if on1 != 14 || on0 != 50 {
			t.Fatalf("placement split = %d on node 1, %d on node 0; want 14/50", on1, on0)
		}
		// Every page still present and accessible.
		for _, n := range tk.GetNodes(buf, 64*pg) {
			if n < 0 {
				t.Fatal("move_pages to a full node lost a page")
			}
		}
	})
}

// TestMbindMoveToFullNode: mbind(MPOL_MF_MOVE) toward a pressured node
// succeeds best-effort for the same reason.
func TestMbindMoveToFullNode(t *testing.T) {
	h := newSmallHarness(2, 256)
	h.run(t, 0, func(tk *Task) {
		filler, err := tk.Mmap(240*pg, vm.ProtRW, vm.Bind(1), 0, "filler")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(filler, 240*pg, true); err != nil {
			t.Fatal(err)
		}
		buf, err := tk.Mmap(32*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(buf, 32*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.Mbind(buf, 32*pg, vm.Bind(1), MbindMove); err != nil {
			t.Fatalf("mbind(MOVE) to a nearly-full node failed: %v", err)
		}
		present := 0
		for _, n := range tk.GetNodes(buf, 32*pg) {
			if n >= 0 {
				present++
			}
		}
		if present != 32 {
			t.Fatalf("mbind lost pages: %d of 32 present", present)
		}
	})
}

// TestMachineExhaustion: when the whole machine is out of frames the
// kernel panics in the allocator and the engine surfaces it as a run
// error (not a hang and not silent corruption).
func TestMachineExhaustion(t *testing.T) {
	h := newSmallHarness(2, 64)
	a, err2 := h.proc.Space.Map(200*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "too-big")
	if err2 != nil {
		t.Fatal(err2)
	}
	h.proc.Spawn("t0", 0, func(tk *Task) {
		_, _ = tk.FaultIn(a, 200*pg, true)
	})
	err := h.eng.Run()
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("exhausting the machine returned %v, want an out-of-memory panic", err)
	}
}

// TestHugeExhaustionFallsBackToBasePages: a huge fault that cannot
// find 512 contiguous frames on any node is served with base pages
// (the chunk stays a 4 KiB chunk), and huge-page migration reports the
// fallback chunk -ENOENT.
func TestHugeExhaustionFallsBackToBasePages(t *testing.T) {
	h := newSmallHarness(2, 768)
	h.run(t, 0, func(tk *Task) {
		a, err := tk.MmapHuge(3*model.HugePageSize, vm.DefaultPolicy(), "huge")
		if err != nil {
			t.Fatal(err)
		}
		n, err := tk.TouchHuge(a, 3*model.HugePageSize)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("TouchHuge faulted %d units, want 3", n)
		}
		// Units 1 and 2 are real huge pages on separate nodes; unit 3
		// found no contiguous room anywhere (256 free per node).
		if tk.HugeNode(a) < 0 || tk.HugeNode(a+model.HugePageSize) < 0 {
			t.Fatal("first two units should be huge-mapped")
		}
		third := a + 2*model.HugePageSize
		if got := tk.HugeNode(third); got != -1 {
			t.Fatalf("third unit huge-mapped on node %d, want 4 KiB fallback", got)
		}
		if got := h.k.Stats.HugeFallbacks; got != 1 {
			t.Fatalf("huge fallbacks = %d, want 1", got)
		}
		// All 512 base pages of the fallback chunk are present, spread
		// over both nodes' remaining frames.
		hist := map[int]int{}
		for _, nd := range tk.GetNodes(third, model.HugePageSize) {
			hist[nd]++
		}
		if hist[-1] != 0 || hist[0]+hist[1] != 512 {
			t.Fatalf("fallback chunk histogram = %v, want 512 present pages", hist)
		}
		if hist[0] == 0 || hist[1] == 0 {
			t.Fatalf("fallback pages should spread over both nodes: %v", hist)
		}
		// Touching the fallback range again allocates nothing new.
		allocs := h.k.Stats.DemandAllocs
		if _, err := tk.TouchHuge(third, model.HugePageSize); err != nil {
			t.Fatal(err)
		}
		if h.k.Stats.DemandAllocs != allocs {
			t.Fatal("re-touch of the fallback chunk re-allocated pages")
		}
		// Huge migration of the fallback chunk: -ENOENT, pages stay put.
		moved, status, err := tk.MoveHugeRangeStatus(third, model.HugePageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 0 || status[0] != StatusNoEnt {
			t.Fatalf("fallback chunk migrated as huge: moved=%d status=%v", moved, status)
		}
	})
}

// TestHugeInterleaveSpreadsUnits: huge faults key policy interleaving
// on the huge-unit index — a base-VPN key (a multiple of 512) would
// silently collapse every interleave onto the node set's first entry.
func TestHugeInterleaveSpreadsUnits(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, err := tk.MmapHuge(8*model.HugePageSize, vm.Interleave(0, 1, 2, 3), "huge")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.TouchHuge(a, 8*model.HugePageSize); err != nil {
			t.Fatal(err)
		}
		hist := map[int]int{}
		for u := 0; u < 8; u++ {
			hist[tk.HugeNode(a+vm.Addr(u)*model.HugePageSize)]++
		}
		for n := 0; n < 4; n++ {
			if hist[n] != 2 {
				t.Fatalf("huge interleave histogram = %v, want 2 units per node", hist)
			}
		}
	})
}

// TestKswapdDemotesColdKeepsHot is the demotion daemon's core
// guarantee: under pressure it evicts pages the workload is not
// touching and spares the hot set, until the node recovers above its
// high watermark.
func TestKswapdDemotesColdKeepsHot(t *testing.T) {
	h := newSmallHarness(2, 1024) // low 51, high 81
	h.k.EnableDemotion()
	const hotPages = 64
	var hotHist map[int]int
	h.run(t, 0, func(tk *Task) {
		hot, err := tk.Mmap(hotPages*pg, vm.ProtRW, vm.Bind(0), 0, "hot")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(hot, hotPages*pg, true); err != nil {
			t.Fatal(err)
		}
		// Cold set overcommits node 0: the placement layer pins node 0
		// at its low watermark and spills the rest to node 1.
		cold, err := tk.Mmap(1100*pg, vm.ProtRW, vm.Preferred(0), 0, "cold")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.FaultIn(cold, 1100*pg, true); err != nil {
			t.Fatal(err)
		}
		// Sweep the hot set across many kswapd periods: hot pages keep
		// their accessed bits fresh, cold pages age out and demote.
		deadline := tk.P.Now() + 40*h.k.P.KswapdPeriod
		for tk.P.Now() < deadline {
			if err := tk.AccessRange(hot, hotPages*pg, Blocked, false); err != nil {
				t.Fatal(err)
			}
		}
		hotHist = map[int]int{}
		for _, n := range tk.GetNodes(hot, hotPages*pg) {
			hotHist[n]++
		}
	})
	if h.k.Stats.KswapdWakeups == 0 || h.k.Stats.PagesDemoted == 0 {
		t.Fatalf("kswapd never demoted: wakeups=%d demoted=%d",
			h.k.Stats.KswapdWakeups, h.k.Stats.PagesDemoted)
	}
	if h.k.Stats.PagesAged == 0 {
		t.Fatal("clock aging never ran")
	}
	// The hot set survived: the sweeps kept its accessed bits set.
	if hotHist[0] < hotPages*8/10 {
		t.Fatalf("hot set demoted from node 0: hist=%v", hotHist)
	}
	// The node recovered above its high watermark.
	if !h.k.Phys.Reclaimed(0) {
		t.Fatalf("node 0 still pressured after demotion: %d free", h.k.Phys.FreeFrames(0))
	}
}

// TestKswapdRetires: the demotion daemons exit after the last thread
// and the engine drains even when no pressure ever occurred.
func TestKswapdRetires(t *testing.T) {
	h := newHarness(false)
	h.k.EnableDemotion()
	h.run(t, 0, func(tk *Task) {
		a, err := tk.Mmap(8*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Touch(a, true); err != nil {
			t.Fatal(err)
		}
	})
	if h.k.Stats.KswapdWakeups != 0 {
		t.Fatalf("unpressured run woke kswapd %d times", h.k.Stats.KswapdWakeups)
	}
}
