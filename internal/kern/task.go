package kern

import (
	"fmt"

	"numamig/internal/mem"
	"numamig/internal/sim"
	"numamig/internal/tenancy"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// SigInfo describes a delivered SIGSEGV.
type SigInfo struct {
	Addr  vm.Addr
	Write bool
}

// SigHandler is a user-registered segmentation-fault handler. It runs in
// the faulting task's context; on return the faulting access is retried.
type SigHandler func(t *Task, info SigInfo)

// Process is a simulated user process: one address space shared by its
// tasks (threads).
type Process struct {
	K       *Kernel
	Name    string
	Space   *vm.Space
	MmapSem *sim.RWLock

	// Tenant, when non-nil, is the tenancy-ledger entry this process is
	// charged against (SetTenant). MigPrio is the migration-request
	// priority derived from the tenant's class; 0 for untenanted
	// processes.
	Tenant  *tenancy.Tenant
	MigPrio int

	chunkLocks   map[uint64]*sim.Resource
	sigHandler   SigHandler
	numaBalancer NumaBalancer
	tasks        []*Task
	nextTID      int

	// Read-only replication state (the §6 extension; see replicate.go).
	replicas     map[vm.VPN]*replicaSet
	replicaStats ReplicaStats
}

// OnSegv installs the process SIGSEGV handler (nil uninstalls).
func (pr *Process) OnSegv(h SigHandler) { pr.sigHandler = h }

// SetTenant binds the process to a tenancy-ledger entry: every frame
// its demand faults allocate is charged to ten, every frame its unmaps
// free is released, and every page the migration engine moves for it
// is re-homed in the ledger. The process's migration requests carry
// the tenant class's priority through the engine's lock queues.
func (pr *Process) SetTenant(ten *tenancy.Tenant) {
	pr.Tenant = ten
	pr.MigPrio = ten.Class.Priority()
	pr.Space.OnFree = func(f *mem.Frame) {
		pr.K.Ten.Release(ten, f.Node, 1)
	}
}

// NotePageMove implements migrate.PageMover: the engine calls it after
// each 4 KiB op has allocated its destination and freed its source, so
// the tenancy ledger tracks mem.Phys exactly.
func (pr *Process) NotePageMove(src, dst topology.NodeID) {
	if pr.Tenant != nil {
		pr.K.Ten.Move(pr.Tenant, src, dst, 1)
	}
}

// NumThreads returns the number of live tasks.
func (pr *Process) NumThreads() int { return len(pr.tasks) }

// chunkLock returns the PTE lock covering the 2 MiB page-table chunk.
func (pr *Process) chunkLock(ci uint64) *sim.Resource {
	l := pr.chunkLocks[ci]
	if l == nil {
		l = sim.NewResource(pr.K.Eng, fmt.Sprintf("%s.ptl%d", pr.Name, ci), 1)
		pr.chunkLocks[ci] = l
	}
	return l
}

// ---- migrate.Space implementation ----
//
// The process is the address-space surface the migration engine
// mutates: its page table, PTE locks, and TLB-shootdown accounting.

// PageTable returns the process page table.
func (pr *Process) PageTable() *vm.PageTable { return pr.Space.PT }

// ChunkLock returns the PTE lock covering one 2 MiB chunk.
func (pr *Process) ChunkLock(ci uint64) *sim.Resource { return pr.chunkLock(ci) }

// TLBFlush charges a TLB shootdown across all cores running this
// process's threads, executed by p.
func (pr *Process) TLBFlush(p *sim.Proc) {
	k := pr.K
	k.Stats.TLBShootdowns++
	others := len(pr.tasks) - 1
	if others < 0 {
		others = 0
	}
	p.Sleep(k.P.TLBShootBase + sim.Time(others)*k.P.TLBShootCore)
}

// Task is one thread of a process, bound to a core.
type Task struct {
	P    *sim.Proc
	Proc *Process
	TID  int
	Core topology.CoreID

	// Fault/access scratch buffers, reused across calls. Safe without
	// locking: a task services one fault at a time and the engine's
	// execution token serializes all simulated code.
	scratch taskScratch
}

// taskScratch holds the per-task reusable buffers of the bulk fault and
// access paths, so a grid run's millions of fault rounds stop allocating
// classification slices and per-node accumulators.
type taskScratch struct {
	absent, stale, nt, numa []vm.VPN
	nodeBytes               []float64
	nodeOrder               []topology.NodeID
	nodeCount               []int
}

// Spawn starts a new thread on the given core running fn. The thread is
// registered for TLB-shootdown accounting until fn returns.
func (pr *Process) Spawn(name string, core topology.CoreID, fn func(t *Task)) *Task {
	pr.nextTID++
	t := &Task{Proc: pr, TID: pr.nextTID, Core: core}
	pr.tasks = append(pr.tasks, t)
	pr.K.Eng.Spawn(name, func(p *sim.Proc) {
		t.P = p
		defer pr.removeTask(t)
		fn(t)
	})
	return t
}

// Adopt binds an existing sim proc as a thread of the process; used when
// the caller manages proc lifetime itself. Release with removeTask via
// the returned func.
func (pr *Process) Adopt(p *sim.Proc, core topology.CoreID) (*Task, func()) {
	pr.nextTID++
	t := &Task{P: p, Proc: pr, TID: pr.nextTID, Core: core}
	pr.tasks = append(pr.tasks, t)
	return t, func() { pr.removeTask(t) }
}

func (pr *Process) removeTask(t *Task) {
	for i, x := range pr.tasks {
		if x == t {
			pr.tasks = append(pr.tasks[:i], pr.tasks[i+1:]...)
			return
		}
	}
}

// Node returns the NUMA node of the task's current core.
func (t *Task) Node() topology.NodeID { return t.Proc.K.M.NodeOf(t.Core) }

// K returns the kernel.
func (t *Task) K() *Kernel { return t.Proc.K }

// MigrateTo moves the thread to another core (scheduler decision),
// charging a context-switch cost.
func (t *Task) MigrateTo(core topology.CoreID) {
	if core == t.Core {
		return
	}
	t.P.Sleep(t.Proc.K.P.CtxSwitch)
	t.Core = core
}

// tlbShootdown charges a TLB flush across all cores running this
// process's threads.
func (t *Task) tlbShootdown() { t.Proc.TLBFlush(t.P) }
