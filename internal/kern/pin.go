package kern

import (
	"fmt"

	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/vm"
)

// Page pinning models elevated page references (get_user_pages, DMA
// registrations): the migration engine cannot isolate a pinned page, so
// move_pages retries it with backoff and eventually reports -EBUSY,
// like the kernel's EAGAIN loop. Tests and workloads use PinRange to
// provoke the busy path deterministically.

// PinRange pins every resident page of [addr, addr+length), making them
// non-migratable until unpinned. A 2 MiB huge page whose chunk overlaps
// the range is pinned as a unit and counts model.PTEChunkPages pages.
// Returns the number of pages pinned.
func (t *Task) PinRange(addr vm.Addr, length int64) (int, error) {
	return t.setPinned(addr, length, true)
}

// UnpinRange releases the pin on every resident page of the range.
// Returns the number of pages unpinned.
func (t *Task) UnpinRange(addr vm.Addr, length int64) (int, error) {
	return t.setPinned(addr, length, false)
}

func (t *Task) setPinned(addr vm.Addr, length int64, pinned bool) (int, error) {
	k := t.Proc.K
	k.Stats.Syscalls++
	t.P.Sleep(k.P.SyscallBase)
	if length <= 0 {
		return 0, nil
	}
	t.Proc.MmapSem.RLock(t.P)
	defer t.Proc.MmapSem.RUnlock()
	if t.Proc.Space.Find(addr) == nil {
		return 0, fmt.Errorf("kern: pin of unmapped address %#x", addr)
	}
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	n := 0
	t.Proc.Space.PT.ForEach(first, last, func(_ vm.VPN, pte *vm.PTE) {
		if pinned {
			pte.Flags |= vm.PTEPinned
		} else {
			pte.Flags &^= vm.PTEPinned
		}
		n++
	})
	// Huge units overlapping the range pin as a whole (ForEach skips
	// huge chunks).
	for ci := vm.ChunkIndex(first); ci <= vm.ChunkIndex(last-1); ci++ {
		c := t.Proc.Space.PT.Chunk(vm.VPN(ci * model.PTEChunkPages))
		if c == nil || !c.Huge || c.HugeFrame == nil {
			continue
		}
		if pinned {
			c.HugeFlags |= vm.PTEPinned
		} else {
			c.HugeFlags &^= vm.PTEPinned
		}
		n += model.PTEChunkPages
	}
	// Page-table walk plus per-page reference bump.
	t.P.Sleep(sim.Time(n) * k.P.MadvisePage)
	return n, nil
}
