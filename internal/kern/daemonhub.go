package kern

import (
	"sort"

	"numamig/internal/sim"
)

// The daemon hub batches periodic kernel-thread ticks. Without it,
// every kswapd and AutoNUMA scanner is a parked proc with its own wake
// event — on a 1024-node machine that is a thousand queue entries per
// period even when every node is idle, and the bucket queue spends the
// scenario shuffling them. The hub keeps one timer event per distinct
// deadline instead: daemons register on a deadline bucket, a single
// engine callback drains every bucket due at that instant, and only
// daemons with actual work get their (persistent, parked) runner proc
// woken for the tick. Idle polls
// are side-effect-free engine-context calls — no proc, no park/wake,
// no queue traffic. Buckets, not a heap: the common tick re-arms all
// of a bucket's daemons to the same next deadline, which is an O(1)
// append per daemon here but an O(log n) sift each in a heap (a heap
// version spent ~40% of the 256-node churn point sifting).
//
// Determinism: buckets are kept sorted by deadline and drained FIFO,
// so daemons tick in (deadline, registration) order — both
// simulation-deterministic — and waking a runner (sim.Event.Fire)
// enqueues FIFO at the current instant. Telemetry (time, seq) stamps
// are therefore identical at any -parallel level, like the per-daemon
// procs they replace.

// TickVerdict is a daemon's answer to a hub poll.
type TickVerdict int

// Tick verdicts.
const (
	// TickRetire unregisters the daemon; it is never polled again.
	TickRetire TickVerdict = iota
	// TickIdle skips this period without spawning a proc; the daemon is
	// re-polled one period later.
	TickIdle
	// TickRun wakes the daemon's runner proc for Run; the next poll is
	// scheduled one period after Run completes (daemons stagger after
	// doing work, like a kernel thread that re-sleeps from where it
	// finished).
	TickRun
)

// HubDaemon is a periodic kernel thread driven by the hub.
type HubDaemon interface {
	// Name labels the proc spawned for busy ticks.
	Name() string
	// Period returns the current tick interval. It is re-read after
	// every tick, so adaptive daemons (the AutoNUMA scanner) work.
	Period() sim.Time
	// Poll decides the tick. It runs in engine context: it must decide
	// from readily-available state and must not block or advance time.
	Poll() TickVerdict
	// Run performs one busy tick in proc context (may sleep, take
	// simulated locks, issue migrations).
	Run(p *sim.Proc)
}

// hubBucket is every daemon due at one deadline, in push (FIFO) order.
type hubBucket struct {
	when sim.Time
	ds   []HubDaemon
}

// hubRunner is the persistent proc behind a daemon's busy ticks. Spawning
// a fresh proc per tick would cost a goroutine create plus two channel
// handoffs every period; always-busy daemons (the AutoNUMA scanner) made
// that visible in the family benchmarks. Instead the first TickRun spawns
// one long-lived proc that parks on gate between ticks — waking it is a
// direct token handoff, the same price the pre-hub per-daemon procs paid.
type hubRunner struct {
	d    HubDaemon
	gate *sim.Event // fired by the hub when a busy tick is due
	quit bool       // set (then gate fired) when the daemon retires
}

// DaemonHub coalesces periodic daemon ticks into per-deadline group
// events on the DES engine.
type DaemonHub struct {
	eng *sim.Engine
	// buckets is sorted ascending by when. Distinct deadlines stay few
	// (one per distinct period plus the post-work stagger of busy
	// daemons), so the ordered insert is cheap.
	buckets []*hubBucket
	n       int // registered (non-retired) daemons
	// runners holds the persistent proc of every daemon that has had at
	// least one busy tick; entries leave only on TickRetire.
	runners map[HubDaemon]*hubRunner
	// timerAt is the deadline of the earliest pending engine callback
	// (valid when timerSet). Callbacks for deadlines that were
	// superseded fire spuriously and find nothing due — harmless.
	timerAt  sim.Time
	timerSet bool
}

// NewDaemonHub creates an empty hub on eng.
func NewDaemonHub(eng *sim.Engine) *DaemonHub {
	return &DaemonHub{eng: eng, runners: map[HubDaemon]*hubRunner{}}
}

// Register schedules d's first poll one period from now. Safe from both
// engine and proc context.
func (h *DaemonHub) Register(d HubDaemon) {
	h.push(h.eng.Now()+d.Period(), d)
	h.ensureTimer()
}

// Len returns the number of registered (non-retired) daemons.
func (h *DaemonHub) Len() int { return h.n }

func (h *DaemonHub) push(when sim.Time, d HubDaemon) {
	h.n++
	i := sort.Search(len(h.buckets), func(i int) bool { return h.buckets[i].when >= when })
	if i < len(h.buckets) && h.buckets[i].when == when {
		h.buckets[i].ds = append(h.buckets[i].ds, d)
		return
	}
	h.buckets = append(h.buckets, nil)
	copy(h.buckets[i+1:], h.buckets[i:])
	h.buckets[i] = &hubBucket{when: when, ds: []HubDaemon{d}}
}

// ensureTimer guarantees an engine callback at (or before) the earliest
// deadline of any bucket.
func (h *DaemonHub) ensureTimer() {
	if len(h.buckets) == 0 {
		return
	}
	top := h.buckets[0].when
	if h.timerSet && h.timerAt <= top {
		return
	}
	h.timerAt = top
	h.timerSet = true
	h.eng.At(top-h.eng.Now(), h.fire)
}

// fire is the group tick: drain every bucket due at this instant in
// deterministic (deadline, push) order, re-arm the idle daemons, spawn
// procs for the busy ones, drop the retired ones.
func (h *DaemonHub) fire() {
	h.timerSet = false
	now := h.eng.Now()
	for len(h.buckets) > 0 && h.buckets[0].when <= now {
		b := h.buckets[0]
		h.buckets = h.buckets[1:]
		for _, d := range b.ds {
			h.n--
			switch d.Poll() {
			case TickRetire:
				if r := h.runners[d]; r != nil {
					r.quit = true
					r.gate.Fire() // unpark the runner so it can exit
					delete(h.runners, d)
				}
			case TickIdle:
				h.push(now+d.Period(), d)
			case TickRun:
				h.signal(d)
			}
		}
	}
	h.ensureTimer()
}

// signal wakes d's persistent runner for one busy tick, spawning it on
// the first. Fire enqueues the wake at the current instant FIFO — the
// same position a per-tick Spawn would take — so the tick schedule is
// unchanged.
func (h *DaemonHub) signal(d HubDaemon) {
	r := h.runners[d]
	if r == nil {
		r = &hubRunner{d: d, gate: sim.NewEvent(h.eng)}
		h.runners[d] = r
		h.eng.Spawn(d.Name(), func(p *sim.Proc) { h.runLoop(p, r) })
	}
	r.gate.Fire()
}

// runLoop is a runner proc's body: park on the gate, run one tick,
// re-arm the daemon one period after the work finished, park again.
// The daemon re-enters the buckets only after Run returns, so the hub
// cannot signal r while Run is executing — replacing the one-shot gate
// before Run is therefore race-free.
func (h *DaemonHub) runLoop(p *sim.Proc, r *hubRunner) {
	for {
		r.gate.Wait(p)
		if r.quit {
			return
		}
		r.gate = sim.NewEvent(h.eng)
		r.d.Run(p)
		h.push(p.Now()+r.d.Period(), r.d)
		h.ensureTimer()
	}
}
