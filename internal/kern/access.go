package kern

import (
	"fmt"
	"sort"

	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// AccessKind describes the memory access pattern of a bulk access, which
// determines how strongly remote placement hurts.
type AccessKind int

// Access kinds.
const (
	// Stream is a sequential, prefetch-friendly access; hardware
	// prefetching hides most of the remote latency, so only a small
	// penalty applies (the reason BLAS1 never benefits from migration,
	// §4.5).
	Stream AccessKind = iota
	// Blocked is a compute-kernel access with reuse and strides; the
	// effective remote cost scales with the NUMA factor (1.2-1.4).
	Blocked
)

// FaultIn resolves every faulting page in [addr, addr+length): demand
// allocation for absent pages, batched kernel next-touch migration for
// marked pages, minor fixups for stale protections, and SIGSEGV delivery
// for protection violations (which re-runs the scan afterwards, since
// the user handler typically repairs whole regions). It returns the
// number of pages that required service.
func (t *Task) FaultIn(addr vm.Addr, length int64, write bool) (int, error) {
	k := t.Proc.K
	sp := t.Proc.Space
	serviced := 0
	for round := 0; round < 16; round++ {
		var segvAt vm.Addr
		haveSegv := false

		t.Proc.MmapSem.RLock(t.P)
		first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
		// Walk the VMA list once per round instead of binary-searching it
		// for every 4 KiB page: vmas is address-sorted, and pages are
		// visited in ascending order, so a single cursor (vi) suffices.
		// The cursor starts at the first covering VMA by binary search —
		// an address space with thousands of live mappings must not pay
		// a linear scan per fault.
		vmas := sp.VMAs()
		vi := sort.Search(len(vmas), func(i int) bool { return vmas[i].End > first.Base() })
		for cstart := first; cstart < last && !haveSegv; {
			ci := vm.ChunkIndex(cstart)
			cend := vm.VPN((ci + 1) * model.PTEChunkPages)
			if cend > last {
				cend = last
			}
			// Classify pages of this chunk.
			ntPages := t.scratch.nt[:0]
			numaPages := t.scratch.numa[:0]
			absent := t.scratch.absent[:0]
			stale := t.scratch.stale[:0]
			for p := cstart; p < cend; {
				for vi < len(vmas) && vmas[vi].End <= p.Base() {
					vi++
				}
				if vi >= len(vmas) || vmas[vi].Start > p.Base() {
					segvAt = p.Base()
					haveSegv = true
					break
				}
				v := vmas[vi]
				if !v.Prot.Allows(write) {
					segvAt = p.Base()
					haveSegv = true
					break
				}
				// Classify this VMA's span of the chunk extent-at-a-time:
				// unmapped spans (including whole missing chunks and huge
				// chunks, whose 4 KiB lookups resolve to nil) arrive as
				// gaps, everything else as maximal same-flag runs — no
				// per-page work and no materialization.
				vEnd := vm.PageOf(v.End-1) + 1
				if vEnd > cend {
					vEnd = cend
				}
				sp.PT.Extents(p, vEnd, true, func(e vm.Ext) bool {
					pEnd := e.Start + vm.VPN(e.N)
					switch {
					case vm.FlagsAllow(e.Flags, write):
					case e.Flags&vm.PTEPresent == 0:
						for q := e.Start; q < pEnd; q++ {
							absent = append(absent, q)
						}
					case e.Flags&vm.PTENextTouch != 0:
						for q := e.Start; q < pEnd; q++ {
							ntPages = append(ntPages, q)
						}
					case e.Flags&vm.PTENumaHint != 0:
						for q := e.Start; q < pEnd; q++ {
							numaPages = append(numaPages, q)
						}
					default:
						for q := e.Start; q < pEnd; q++ {
							stale = append(stale, q)
						}
					}
					return true
				})
				p = vEnd
			}
			t.scratch.nt, t.scratch.numa = ntPages, numaPages
			t.scratch.absent, t.scratch.stale = absent, stale
			if haveSegv {
				break
			}
			if len(absent)+len(stale) > 0 {
				serviced += len(absent) + len(stale)
				t.serviceChunk(ci, absent, stale)
			}
			if len(ntPages) > 0 {
				serviced += len(ntPages)
				t.ntServiceFaults(ntPages)
			}
			if len(numaPages) > 0 {
				serviced += len(numaPages)
				t.numaServiceFaults(numaPages)
			}
			cstart = cend
		}
		t.Proc.MmapSem.RUnlock()

		if !haveSegv {
			return serviced, nil
		}
		k.Stats.Faults++
		if k.bus.Active(telemetry.TopicPageFault) {
			k.bus.Publish(telemetry.Event{
				Topic: telemetry.TopicPageFault,
				Node:  t.Node(), Dst: telemetry.NoNode,
				Task: t.P.ID(), Pages: 1,
			})
		}
		t.P.Sleep(k.P.FaultBase)
		if err := t.raiseSegv(segvAt, write); err != nil {
			return serviced, err
		}
		serviced++
	}
	return serviced, fmt.Errorf("kern: FaultIn at %#x did not settle", addr)
}

// serviceChunk handles the classified stale and absent pages of one PTE
// chunk with aggregate costs equivalent to per-page fault handling.
// Next-touch pages go through ntMigratePages (the shared migration
// engine) instead. Caller holds mmap_sem shared.
func (t *Task) serviceChunk(ci uint64, absent, stale []vm.VPN) {
	k := t.Proc.K
	sp := t.Proc.Space
	cl := t.Proc.chunkLock(ci)
	cl.Acquire(t.P)
	defer cl.Release()

	// Pages arrive in ascending order, so consecutive ones usually share
	// a VMA: cache the last hit instead of binary-searching per page.
	var cached *vm.VMA
	vmaOf := func(p vm.VPN) *vm.VMA {
		if cached == nil || !cached.Contains(p.Base()) {
			cached = sp.Find(p.Base())
		}
		return cached
	}
	// Minor fixups: consecutive stale pages of one VMA restore their
	// protection as a single range operation on the extent store.
	if len(stale) > 0 {
		k.Stats.MinorFaults += uint64(len(stale))
		t.P.Sleep(sim.Time(len(stale)) * k.P.FaultBase)
		for i := 0; i < len(stale); {
			v := vmaOf(stale[i])
			j := i + 1
			for j < len(stale) && stale[j] == stale[j-1]+1 && v.Contains(stale[j].Base()) {
				j++
			}
			sp.PT.SetProtRange(stale[i], stale[j-1]+1, v.Prot)
			i = j
		}
	}
	// Demand allocations.
	if len(absent) > 0 {
		k.Stats.Faults += uint64(len(absent))
		if k.bus.Active(telemetry.TopicPageFault) {
			k.bus.Publish(telemetry.Event{
				Topic: telemetry.TopicPageFault,
				Node:  t.Node(), Dst: telemetry.NoNode,
				Task: t.P.ID(), Pages: len(absent),
			})
		}
		k.Stats.DemandAllocs += uint64(len(absent))
		t.P.Sleep(sim.Time(len(absent)) * (k.P.FaultBase + k.P.DemandZero))
		for _, p := range absent {
			v := vmaOf(p)
			f := t.allocFrame(t.capTarget(t.placeTarget(v, p)))
			e := vm.PTE{Frame: f, Flags: vm.PTEPresent | vm.PTEAccessed}
			e.SetProt(v.Prot)
			sp.PT.Install(p, e)
			t.chargeTenant(f)
		}
	}
}

// AccessRange models the application touching every byte of
// [addr, addr+length) with the given pattern: faults are serviced first
// (demand paging, next-touch migration, signal handling), then the
// resident pages generate memory traffic from their home nodes through
// the interconnect, sharing bandwidth with all concurrent activity.
func (t *Task) AccessRange(addr vm.Addr, length int64, kind AccessKind, write bool) error {
	if length <= 0 {
		return nil
	}
	if _, err := t.FaultIn(addr, length, write); err != nil {
		return err
	}
	k := t.Proc.K
	sp := t.Proc.Space

	nn := k.M.NumNodes()
	bytesByNode := t.scratch.nodeBytes
	if cap(bytesByNode) < nn {
		bytesByNode = make([]float64, nn)
	}
	bytesByNode = bytesByNode[:nn]
	for i := range bytesByNode {
		bytesByNode[i] = 0
	}
	order := t.scratch.nodeOrder[:0]
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	end := addr + vm.Addr(length)
	mark := uint8(vm.PTEAccessed)
	if write {
		mark |= vm.PTEDirty
	}
	// Mark run-at-a-time, then sum the traffic per home node from the
	// extent walk. Per-page byte overlaps are whole numbers, so summing
	// them per extent yields the identical float64 total, and the
	// first-appearance node order of an ascending walk is unchanged.
	sp.PT.OrFlagsRange(first, last, mark)
	sp.PT.Extents(first, last, false, func(e vm.Ext) bool {
		lo, hi := e.Start.Base(), (e.Start + vm.VPN(e.N)).Base()
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if bytesByNode[e.Node] == 0 {
			order = append(order, e.Node)
		}
		bytesByNode[e.Node] += float64(hi - lo)
		return true
	})
	t.scratch.nodeBytes, t.scratch.nodeOrder = bytesByNode, order
	for _, node := range order {
		t.chargeNodeTraffic(node, bytesByNode[node], kind)
	}
	return nil
}

// chargeNodeTraffic charges bytes of application traffic served from
// node: the access-kind remote penalty, the Remote/LocalBytes
// accounting, the tier-class latency multiplier, and the fluid
// transfer along the user path. Every bulk access path (AccessRange,
// TrafficRectVolume, ReadReplicated) charges one call per node-group
// of its extent walk, so the cost model cannot drift between them.
//
// Data resident on a slow tier (CXL) pays its tier class's latency
// multiplier on top of the NUMA penalty, wherever the accessing core
// sits — the device latency does not care which socket asked.
func (t *Task) chargeNodeTraffic(node topology.NodeID, bytes float64, kind AccessKind) {
	k := t.Proc.K
	local := t.Node()
	penalty := 1.0
	if node != local {
		switch kind {
		case Stream:
			penalty = k.P.StreamPenalty
		case Blocked:
			penalty = k.M.NUMAFactor(local, node) * k.P.BlockedBoost
		}
		k.Stats.RemoteBytes += bytes
	} else {
		k.Stats.LocalBytes += bytes
	}
	penalty *= k.tierLat[node]
	k.Net.Transfer(t.P, bytes*penalty, k.userPath(t.Core, node, node)...)
}

// Memcpy models a user-space optimized copy of length bytes from src to
// dst (both resident after fault-in), the baseline curve of Figure 4.
func (t *Task) Memcpy(dst, src vm.Addr, length int64) error {
	if _, err := t.FaultIn(src, length, false); err != nil {
		return err
	}
	if _, err := t.FaultIn(dst, length, true); err != nil {
		return err
	}
	k := t.Proc.K
	srcNode := t.dominantNode(src, length)
	dstNode := t.dominantNode(dst, length)
	t.P.Sleep(k.P.SyscallBase) // call overhead / loop warm-up
	k.Net.Transfer(t.P, float64(length), k.userPath(t.Core, srcNode, dstNode)...)
	if k.Phys.Backed {
		t.copyBytes(dst, src, length)
	}
	return nil
}

// dominantNode returns the node holding the most bytes of the range.
func (t *Task) dominantNode(addr vm.Addr, length int64) topology.NodeID {
	nn := t.Proc.K.M.NumNodes()
	counts := t.scratch.nodeCount
	if cap(counts) < nn {
		counts = make([]int, nn)
	}
	counts = counts[:nn]
	for i := range counts {
		counts[i] = 0
	}
	sp := t.Proc.Space
	first, last := vm.PageOf(addr), vm.PageOf(addr+vm.Addr(length)-1)+1
	sp.PT.Extents(first, last, false, func(e vm.Ext) bool {
		counts[e.Node] += e.N
		return true
	})
	t.scratch.nodeCount = counts
	best, bestN := t.Node(), -1
	for n := 0; n < nn; n++ {
		if c := counts[n]; c > bestN {
			best, bestN = topology.NodeID(n), c
		}
	}
	return best
}

// copyBytes copies real backing bytes between two resident ranges.
func (t *Task) copyBytes(dst, src vm.Addr, length int64) {
	for off := int64(0); off < length; {
		sPte := t.Proc.Space.PT.Lookup(vm.PageOf(src + vm.Addr(off)))
		dPte := t.Proc.Space.PT.Lookup(vm.PageOf(dst + vm.Addr(off)))
		sOff := int64((src + vm.Addr(off)) % model.PageSize)
		dOff := int64((dst + vm.Addr(off)) % model.PageSize)
		n := model.PageSize - sOff
		if m := model.PageSize - dOff; m < n {
			n = m
		}
		if rem := length - off; rem < n {
			n = rem
		}
		copy(dPte.Frame.Data[dOff:dOff+n], sPte.Frame.Data[sOff:sOff+n])
		off += n
	}
}

// WriteData stores bytes at addr in the (backed) simulated memory,
// faulting pages in as needed. Intended for correctness tests.
func (t *Task) WriteData(addr vm.Addr, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if _, err := t.FaultIn(addr, int64(len(data)), true); err != nil {
		return err
	}
	sp := t.Proc.Space
	for off := 0; off < len(data); {
		pte := sp.PT.Lookup(vm.PageOf(addr + vm.Addr(off)))
		pgOff := int((addr + vm.Addr(off)) % model.PageSize)
		n := model.PageSize - pgOff
		if rem := len(data) - off; rem < n {
			n = rem
		}
		if pte.Frame.Data == nil {
			return fmt.Errorf("kern: WriteData on unbacked memory")
		}
		copy(pte.Frame.Data[pgOff:pgOff+n], data[off:off+n])
		pte.Flags |= vm.PTEDirty
		off += n
	}
	return nil
}

// ReadData loads length bytes from addr in the (backed) simulated memory.
func (t *Task) ReadData(addr vm.Addr, length int) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if _, err := t.FaultIn(addr, int64(length), false); err != nil {
		return nil, err
	}
	sp := t.Proc.Space
	out := make([]byte, length)
	for off := 0; off < length; {
		pte := sp.PT.Lookup(vm.PageOf(addr + vm.Addr(off)))
		pgOff := int((addr + vm.Addr(off)) % model.PageSize)
		n := model.PageSize - pgOff
		if rem := length - off; rem < n {
			n = rem
		}
		if pte.Frame.Data == nil {
			return nil, fmt.Errorf("kern: ReadData on unbacked memory")
		}
		copy(out[off:off+n], pte.Frame.Data[pgOff:pgOff+n])
		off += n
	}
	return out, nil
}
