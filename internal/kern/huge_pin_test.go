package kern

import (
	"testing"

	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/vm"
)

// Tests for huge pages x pinning: MoveHugeRange runs through the
// shared migration engine, so a pinned 2 MiB unit is retried with
// backoff and reported -EBUSY while the rest of the range moves —
// identical semantics to pinned 4 KiB pages under move_pages.

func TestPinRangeCoversHugePages(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, err := tk.MmapHuge(4<<20, vm.Bind(0), "huge")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.TouchHuge(a, 4<<20); err != nil {
			t.Fatal(err)
		}
		n, err := tk.PinRange(a, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2*model.PTEChunkPages {
			t.Fatalf("pinned %d pages, want %d (two huge units)", n, 2*model.PTEChunkPages)
		}
		n, err = tk.UnpinRange(a, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		if n != model.PTEChunkPages {
			t.Fatalf("unpinned %d pages, want %d", n, model.PTEChunkPages)
		}
	})
}

func TestMoveHugeRangePinnedEBUSY(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		const bytes = 6 << 20 // three huge units
		a, err := tk.MmapHuge(bytes, vm.Bind(0), "huge")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.TouchHuge(a, bytes); err != nil {
			t.Fatal(err)
		}
		// Pin the middle unit only.
		if _, err := tk.PinRange(a+vm.Addr(model.HugePageSize), model.HugePageSize); err != nil {
			t.Fatal(err)
		}
		eng := h.k.Migrator(migrate.Patched)
		before := eng.Stats
		moved, status, err := tk.MoveHugeRangeStatus(a, bytes, 3)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 2 {
			t.Fatalf("moved %d huge units, want 2 (middle one pinned)", moved)
		}
		want := []int{3, StatusBusy, 3}
		for i, s := range status {
			if s != want[i] {
				t.Fatalf("status = %v, want %v", status, want)
			}
		}
		// Nodes reflect the partial move.
		if n := tk.HugeNode(a); n != 3 {
			t.Fatalf("first unit on node %d, want 3", n)
		}
		if n := tk.HugeNode(a + vm.Addr(model.HugePageSize)); n != 0 {
			t.Fatalf("pinned unit on node %d, want 0 (EBUSY)", n)
		}
		if n := tk.HugeNode(a + 2*vm.Addr(model.HugePageSize)); n != 3 {
			t.Fatalf("last unit on node %d, want 3", n)
		}
		// The engine's retry loop ran: backoff passes before giving up.
		d := eng.Stats
		if d.RetryPasses-before.RetryPasses != uint64(h.k.P.MigrateRetries) {
			t.Fatalf("retry passes = %d, want %d", d.RetryPasses-before.RetryPasses, h.k.P.MigrateRetries)
		}
		if d.PagesBusy-before.PagesBusy != 1 {
			t.Fatalf("busy ops = %d, want 1", d.PagesBusy-before.PagesBusy)
		}
		if d.HugePagesMoved-before.HugePagesMoved != 2 {
			t.Fatalf("huge moves = %d, want 2", d.HugePagesMoved-before.HugePagesMoved)
		}
		if got := d.BytesMoved - before.BytesMoved; got != 2*model.HugePageSize {
			t.Fatalf("bytes moved = %v, want %v", got, 2*model.HugePageSize)
		}

		// Unpin and retry: the blocked unit moves too.
		if _, err := tk.UnpinRange(a, bytes); err != nil {
			t.Fatal(err)
		}
		moved, err = tk.MoveHugeRange(a, bytes, 3)
		if err != nil {
			t.Fatal(err)
		}
		if moved != 1 {
			t.Fatalf("post-unpin move moved %d, want 1", moved)
		}
		if n := tk.HugeNode(a + vm.Addr(model.HugePageSize)); n != 3 {
			t.Fatalf("unpinned unit on node %d, want 3", n)
		}
		// Footprint accounting followed: everything on node 3.
		if got := h.k.Phys.Stats(0).Allocated; got != 0 {
			t.Fatalf("source node still holds %d frames", got)
		}
		if got := h.k.Phys.Stats(3).Allocated; got != 3*model.PTEChunkPages {
			t.Fatalf("target node holds %d frames, want %d", got, 3*model.PTEChunkPages)
		}
	})
}

// TestMoveHugeRangePinnedRetrySucceeds: a unit unpinned while the
// engine is backing off migrates on a retry pass instead of EBUSY,
// mirroring the kernel's EAGAIN loop.
func TestMoveHugeRangePinnedRetrySucceeds(t *testing.T) {
	h := newHarness(false)
	done := make(chan struct{}, 1)
	h.proc.Spawn("mover", 0, func(tk *Task) {
		a, err := tk.MmapHuge(2<<20, vm.Bind(0), "huge")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.TouchHuge(a, 2<<20); err != nil {
			t.Error(err)
			return
		}
		if _, err := tk.PinRange(a, 2<<20); err != nil {
			t.Error(err)
			return
		}
		// Unpinner releases the pin mid-backoff.
		h.proc.Spawn("unpinner", 1, func(tk2 *Task) {
			tk2.P.Sleep(h.k.P.MigrateRetryDelay / 2)
			if _, err := tk2.UnpinRange(a, 2<<20); err != nil {
				t.Error(err)
			}
		})
		moved, err := tk.MoveHugeRange(a, 2<<20, 2)
		if err != nil {
			t.Error(err)
			return
		}
		if moved != 1 {
			t.Errorf("moved %d, want 1 after mid-retry unpin", moved)
		}
		if n := tk.HugeNode(a); n != 2 {
			t.Errorf("unit on node %d, want 2", n)
		}
		done <- struct{}{}
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("mover did not finish")
	}
}

func TestGetNodesBulk(t *testing.T) {
	h := newHarness(false)
	h.run(t, 0, func(tk *Task) {
		a, err := tk.Mmap(8*pg, vm.ProtRW, vm.Bind(1), 0, "buf")
		if err != nil {
			t.Fatal(err)
		}
		// Fault only the even pages.
		for i := 0; i < 8; i += 2 {
			if err := tk.Touch(a+vm.Addr(i)*pg, true); err != nil {
				t.Fatal(err)
			}
		}
		syscallsBefore := h.k.Stats.Syscalls
		nodes := tk.GetNodes(a, 8*pg)
		if h.k.Stats.Syscalls != syscallsBefore+1 {
			t.Fatalf("GetNodes charged %d syscalls, want 1", h.k.Stats.Syscalls-syscallsBefore)
		}
		if len(nodes) != 8 {
			t.Fatalf("got %d entries, want 8", len(nodes))
		}
		for i, n := range nodes {
			want := -1
			if i%2 == 0 {
				want = 1
			}
			if n != want {
				t.Fatalf("nodes[%d] = %d, want %d (%v)", i, n, want, nodes)
			}
		}
		// Agrees with the per-page query mode.
		for i := 0; i < 8; i++ {
			if got := tk.GetNode(a + vm.Addr(i)*pg); got != nodes[i] {
				t.Fatalf("GetNode(%d)=%d disagrees with GetNodes=%d", i, got, nodes[i])
			}
		}
	})
}

// TestGetNodesHuge: bulk queries report the unit's node for every page
// of a huge mapping.
func TestGetNodesHuge(t *testing.T) {
	h := newHarness(false)
	h.run(t, 4, func(tk *Task) { // node 1
		a, err := tk.MmapHuge(2<<20, vm.DefaultPolicy(), "huge")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.TouchHuge(a, 2<<20); err != nil {
			t.Fatal(err)
		}
		nodes := tk.GetNodes(a, 2<<20)
		if len(nodes) != model.PTEChunkPages {
			t.Fatalf("got %d entries, want %d", len(nodes), model.PTEChunkPages)
		}
		for i, n := range nodes {
			if n != 1 {
				t.Fatalf("nodes[%d] = %d, want 1", i, n)
			}
		}
	})
}
