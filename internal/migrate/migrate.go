// Package migrate is the single batched page-migration engine of the
// simulated kernel: the one place in the repository where pages
// physically move between NUMA nodes.
//
// The paper's core observation (Goglin & Furmento, §3.1) is that
// move_pages becomes practical once the syscall is restructured as one
// batched pass — gather the requested pages, group them by target node,
// perform one bulk copy per node pair, rewrite the PTEs, and flush the
// TLBs — instead of a quadratic per-page walk of the destination array.
// The seed codebase implemented that pipeline three separate times (the
// move_pages syscall, the kernel next-touch fault path, and the
// user-space next-touch handler); this package hosts the one shared
// implementation behind the Engine type — also serving huge-page moves
// (Op.Huge: one control round and one 2 MiB copy per unit) and AutoNUMA
// hinting-fault promotion (PathNumaHint) — with two strategies:
//
//   - Patched: the paper's linear implementation (2.6.29), one pass per
//     target node;
//   - Unpatched: the pre-2.6.29 behaviour, which scans the entire
//     destination-node array once per page (quadratic cost).
//
// The pipeline stages of Engine.Migrate, in order:
//
//  1. gather      — split the request into batches bounded by the
//     PTE-chunk (lock) granularity and the pagevec size;
//  2. classify    — under the chunk lock, sort each batch's pages into
//     movable / already-local / absent / busy (pinned);
//  3. control     — charge per-page isolation and PTE-update costs,
//     partially under the global LRU lock (the serialized fraction
//     that limits threaded scaling, §4.4);
//  4. rewrite     — allocate destination frames, copy backing bytes,
//     free the old frames, and swap the PTEs while the chunk is
//     locked, accumulating bytes per (source, destination) node pair;
//  5. bulk copy   — one fluid-network transfer per node pair, outside
//     the PTE locks, through the sync or lazy migration channel;
//  6. retry       — busy (pinned) pages are re-attempted with backoff,
//     like the kernel's EAGAIN loop, before reporting EBUSY;
//  7. flush       — one TLB shootdown for the whole request;
//  8. account     — per-engine Stats and per-request Result counters.
//
// The package sits below internal/kern in the import graph: the kernel
// provides its machinery (frame allocator, global locks, migration
// channels, per-process page table and PTE locks) through the Env and
// Space interfaces.
package migrate

import (
	"sync"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Strategy selects the move_pages implementation generation.
type Strategy int

// Strategies.
const (
	// Patched is the paper's linear implementation: one batched pass,
	// grouped by target node (merged in Linux 2.6.29).
	Patched Strategy = iota
	// Unpatched reproduces the pre-2.6.29 quadratic behaviour: a linear
	// scan of the whole destination-node array for every page.
	Unpatched
)

func (s Strategy) String() string {
	if s == Unpatched {
		return "unpatched"
	}
	return "patched"
}

// StrategyFor maps the legacy "patched" flag of the syscall surface.
func StrategyFor(patched bool) Strategy {
	if patched {
		return Patched
	}
	return Unpatched
}

// Path identifies which kernel path invokes the engine; it selects the
// calibrated cost constants and the migration-channel class.
type Path int

// Paths.
const (
	// PathMovePages is the move_pages(2) syscall: arbitrary page sets,
	// status array write-back, batched sync channel.
	PathMovePages Path = iota
	// PathMigratePages is migrate_pages(2): in-order address-space
	// traversal, which locks less per page (§4.2).
	PathMigratePages
	// PathNextTouch is fault-time lazy migration (kernel next-touch,
	// §3.3): no syscall setup, per-fault control costs, lazy channel.
	PathNextTouch
	// PathNumaHint is AutoNUMA promotion after a hinting fault
	// (internal/autonuma): fault-path control costs on the lazy channel,
	// no syscall setup, copy outside the PTE lock (the kernel restores
	// access before migrate_misplaced_page runs).
	PathNumaHint
	// PathDemotion is kswapd-style background demotion of cold pages
	// off a pressured node (internal/kern's demotion daemon): no
	// syscall setup, daemon-side control costs, lazy channel — so
	// demotion gets the same batching, pinned-page retry/EBUSY and
	// TLB semantics as every other mover.
	PathDemotion
)

// Page-status codes, mirroring Linux errno conventions.
const (
	// StatusNoEnt marks a page that was not present (-ENOENT).
	StatusNoEnt = -2
	// StatusBusy marks a page that stayed pinned through every retry
	// pass (-EBUSY).
	StatusBusy = -16
)

// Env provides the kernel machinery the engine runs on. Implemented by
// *kern.Kernel; the indirection keeps this package below kern in the
// import graph.
type Env interface {
	// Params returns the calibrated cost model.
	Params() *model.Params
	// AllocFrame allocates a frame on target, falling back to other
	// nodes in distance order when the target is full.
	AllocFrame(target topology.NodeID) *mem.Frame
	// FreeFrame returns a frame to the physical allocator.
	FreeFrame(f *mem.Frame)
	// AllocHugeFrame reserves a 2 MiB unit (one representative frame
	// plus its 511-frame footprint) on target.
	AllocHugeFrame(target topology.NodeID) *mem.Frame
	// FreeHugeFrame releases a 2 MiB unit and its footprint.
	FreeHugeFrame(f *mem.Frame)
	// NoteMigration records one migrated-in page on dst.
	NoteMigration(dst topology.NodeID)
	// TierOf returns a node's memory tier id (0 = DRAM/fast, higher =
	// slower); the engine uses it to break its traffic down by tier
	// direction (Stats.PagesTierDown / PagesTierUp).
	TierOf(n topology.NodeID) int
	// Bus returns the machine's telemetry event bus; the engine
	// publishes MigrateBatch and TierTraffic events on it.
	Bus() *telemetry.Bus
	// MigLock is the global serialized migration-setup lock (task
	// lookup, per-CPU pagevec drains).
	MigLock() *sim.Resource
	// LRULock is the global LRU lock held for part of the per-page
	// control work.
	LRULock() *sim.Resource
	// Copy transfers bytes through the kernel migration channel between
	// src and dst, executed on core. syncChan selects the batched
	// move_pages/migrate_pages channel capacity over the lazy one.
	Copy(p *sim.Proc, bytes float64, core topology.CoreID, src, dst topology.NodeID, syncChan bool)
}

// PageMover is optionally implemented by a Space whose owner needs a
// notification for every 4 KiB op the engine physically moves. The
// engine calls it inside the rewrite stage, after the destination
// frame is allocated and the source frame freed — the instant the
// physical allocator's gauges are consistent again — so the tenancy
// ledger can account migrations at exactly the granularity mem.Phys
// sees them. Huge ops do not notify (their footprint accounting runs
// through AllocHugeFrame/FreeHugeFrame, outside per-frame ledgers).
type PageMover interface {
	NotePageMove(src, dst topology.NodeID)
}

// Space is the per-process address-space surface the engine mutates.
// Implemented by *kern.Process.
type Space interface {
	// PageTable returns the process page table.
	PageTable() *vm.PageTable
	// ChunkLock returns the PTE lock covering one 2 MiB chunk.
	ChunkLock(ci uint64) *sim.Resource
	// TLBFlush charges a TLB shootdown across the process's cores.
	TLBFlush(p *sim.Proc)
}

// Op orders the page at VPN onto node Dst. Huge marks a 2 MiB huge-page
// op: VPN is the chunk base and the whole chunk-backed unit moves as one
// (one control round, one 2 MiB bulk copy).
type Op struct {
	VPN  vm.VPN
	Dst  topology.NodeID
	Huge bool
}

// Request is one migration order: a set of page moves executed by the
// simulated thread P on Core. The caller holds mmap_sem (shared) and
// must not hold any chunk lock.
type Request struct {
	P     *sim.Proc
	Core  topology.CoreID
	Space Space
	Ops   []Op
	// Status, when non-nil, receives the per-page outcome (resulting
	// node or a negative errno-style code) parallel to Ops.
	Status []int
	// Path selects the calibrated cost constants.
	Path Path
	// Priority orders the request in the global migration lock queues
	// (sim.Resource.AcquirePri): a contended request enqueues ahead of
	// every queued request with a strictly lower priority. 0 is the
	// batch default; latency-sensitive tenants' requests carry their
	// class priority so their faults and promotions are never queued
	// behind a batch tenant's migration batches.
	Priority int
	// Flush performs one TLB shootdown after the last pass.
	Flush bool
	// ClearNextTouch removes the migrate-on-next-touch PTE mark from
	// every page the engine visits (moved or already local).
	ClearNextTouch bool
	// CopyCat, when non-empty, is the accounting category charged for
	// the bulk-copy stage (e.g. kern's "move_pages copy").
	CopyCat string
	// StampPromoGen, when non-zero, is written to PTE.PromoGen for
	// every 4 KiB page the engine physically moves. The promotion paths
	// (AutoNUMA hinting faults) pass the current kswapd scan-period
	// generation here so the demotion scan can recognize freshly
	// promoted pages (hysteresis) and count promote/demote flips.
	StampPromoGen uint32
	// OnCopied, when non-nil, is invoked by Replicate for every op,
	// under the covering chunk lock, right after the op's frame is
	// filled (nil frame for skipped ops). Callers use it to register
	// replica bookkeeping atomically with the copy.
	OnCopied func(op int, f *mem.Frame)
	// Revalidate, when non-nil, is consulted under the chunk lock for
	// each otherwise-movable page with its current source node;
	// returning false skips the page (counted as raced). migrate_pages
	// uses it to re-check its source-node mask, which it resolved
	// during an unlocked gather walk.
	Revalidate func(op Op, src topology.NodeID) bool
}

func (r *Request) setStatus(i, v int) {
	if r.Status != nil {
		r.Status[i] = v
	}
}

// Result summarises one request. Ops are the unit: a huge op counts one
// toward Moved/Local/Busy like a 4 KiB op (Bytes tells them apart).
type Result struct {
	Moved     int     // ops physically migrated
	HugeMoved int     // the subset of Moved that were 2 MiB units
	Local     int     // ops already on their target node
	Absent    int     // ops without a present PTE
	Busy      int     // ops still pinned after every retry pass
	Raced     int     // next-touch pages another thread serviced first
	Retries   int     // retry passes taken for pinned pages
	Bytes     float64 // bytes copied between nodes
}

// Stats aggregates engine activity across requests.
type Stats struct {
	Requests        uint64
	PagesMoved      uint64 // ops moved (huge ops count once; see HugePagesMoved)
	HugePagesMoved  uint64
	PagesLocal      uint64
	PagesAbsent     uint64
	PagesBusy       uint64
	PagesRaced      uint64
	RetryPasses     uint64
	PagesReplicated uint64
	BytesMoved      float64
	BytesReplicated float64
	// Demotion-tier path breakdown: the slice of the pipeline's traffic
	// that ran on PathDemotion (kswapd's near- and far-tier moves), so
	// background reclaim pressure is visible next to foreground
	// migration without consulting the kernel counters.
	DemotionRequests uint64
	PagesDemoted     uint64
	BytesDemoted     float64
	// Cross-tier traffic (Env.TierOf): ops whose destination sits on a
	// slower tier than their source (TierDown: the demotion direction,
	// e.g. DRAM -> CXL) or a faster one (TierUp: the promotion
	// direction, e.g. CXL -> DRAM), whatever path issued them. Same-
	// tier moves count in neither; on a flat machine both stay zero.
	PagesTierDown uint64
	PagesTierUp   uint64
	BytesTierDown float64
	BytesTierUp   float64
}

// Engine is the batched per-node migration pipeline for one strategy.
// A kernel owns one engine per strategy; they share the kernel's locks
// and channels, so contention between patched and unpatched callers
// still emerges from execution.
type Engine struct {
	env      Env
	strategy Strategy
	Stats    Stats
}

// New creates an engine over the kernel machinery.
func New(env Env, s Strategy) *Engine {
	return &Engine{env: env, strategy: s}
}

// Strategy returns the engine's move_pages generation.
func (e *Engine) Strategy() Strategy { return e.strategy }

// noteTier accounts one physically moved op against the cross-tier
// counters when source and destination sit on different memory tiers.
func (e *Engine) noteTier(src, dst topology.NodeID, bytes float64) {
	st, dt := e.env.TierOf(src), e.env.TierOf(dst)
	dir := 0.0
	switch {
	case dt > st:
		e.Stats.PagesTierDown++
		e.Stats.BytesTierDown += bytes
		dir = 1
	case dt < st:
		e.Stats.PagesTierUp++
		e.Stats.BytesTierUp += bytes
		dir = -1
	default:
		return
	}
	if bus := e.env.Bus(); bus.Active(telemetry.TopicTierTraffic) {
		bus.Publish(telemetry.Event{
			Topic: telemetry.TopicTierTraffic,
			Node:  src, Dst: dst,
			Pages: 1, Bytes: bytes, Value: dir,
		})
	}
}

// pathCosts carries the per-path calibrated constants.
type pathCosts struct {
	base, baseLocked sim.Time // serialized setup (charged by Engine.Setup)
	ctl, ctlLocked   sim.Time // per-page control; ctlLocked under LRU lock
	localCost        sim.Time // per already-local page
	perExamined      bool     // charge ctl per examined page, not per moved
	syncChan         bool     // batched sync channel vs lazy channel
	copyLocked       bool     // copy while holding the chunk lock (fault path)
}

func (e *Engine) costs(path Path) pathCosts {
	p := e.env.Params()
	switch path {
	case PathMigratePages:
		return pathCosts{
			base: p.MigratePagesBase, baseLocked: p.MigratePagesBase,
			ctl: p.MigratePagesCtl, ctlLocked: p.MigratePagesCtlLocked,
			perExamined: true, syncChan: true,
		}
	case PathNextTouch:
		// Fault-time migration copies the page inside the fault handler,
		// which holds the PTE lock: this is what keeps parallel lazy
		// migration of sub-chunk buffers from scaling (Fig. 7).
		return pathCosts{
			ctl: p.NTFaultCtl, ctlLocked: p.NTFaultCtlLocked,
			localCost:  p.NTFaultCtl / 2,
			syncChan:   false,
			copyLocked: true,
		}
	case PathNumaHint:
		// AutoNUMA restores the PTE before migrating, so the copy runs
		// outside the PTE lock, but it shares the lazy channel and
		// per-fault control costs with the next-touch path.
		return pathCosts{
			ctl: p.NumaHintCtl, ctlLocked: p.NumaHintCtlLocked,
			syncChan: false,
		}
	case PathDemotion:
		// Background demotion runs in daemon context: no syscall setup,
		// isolation/writeback-style control per page, lazy channel so it
		// yields the sync channel to foreground migrations.
		return pathCosts{
			ctl: p.DemotionCtl, ctlLocked: p.DemotionCtlLocked,
			syncChan: false,
		}
	default: // PathMovePages
		return pathCosts{
			base: p.MovePagesBase, baseLocked: p.MovePagesBaseLocked,
			ctl: p.MovePagesCtl, ctlLocked: p.MovePagesCtlLocked,
			perExamined: true, syncChan: true,
		}
	}
}

// Setup charges the serialized syscall setup cost for a path (task
// lookup, per-CPU pagevec drains) under the global migration lock:
// the dominant fixed cost of move_pages (~160us) that does not
// parallelize (§4.2, §4.4). Callers invoke it before taking mmap_sem,
// matching the kernel's ordering.
func (e *Engine) Setup(p *sim.Proc, path Path) { e.SetupPri(p, path, 0) }

// SetupPri is Setup with a queue priority: a contended setup enqueues
// on the global migration lock ahead of every waiter with a strictly
// lower priority (see Request.Priority).
func (e *Engine) SetupPri(p *sim.Proc, path Path, pri int) {
	c := e.costs(path)
	e.env.MigLock().AcquirePri(p, pri)
	p.Sleep(c.baseLocked)
	e.env.MigLock().Release()
	p.Sleep(c.base - c.baseLocked)
}

// Migrate executes one request through the full pipeline and returns
// its outcome. Busy (pinned) pages are retried with backoff up to
// Params.MigrateRetries times before being reported as StatusBusy.
func (e *Engine) Migrate(req *Request) Result {
	p := e.env.Params()
	c := e.costs(req.Path)
	var res Result
	e.Stats.Requests++
	t0 := req.P.Now()

	s := getScratch()
	defer putScratch(s)
	pending := s.pending
	for i := range req.Ops {
		pending = append(pending, i)
	}
	s.pending = pending
	for attempt := 0; ; attempt++ {
		busy := e.pass(req, c, s, pending, &res)
		if len(busy) == 0 {
			break
		}
		if attempt >= p.MigrateRetries {
			// Give up: EBUSY, like the kernel after its retry loop.
			pt := req.Space.PageTable()
			for _, x := range busy {
				req.setStatus(x, StatusBusy)
				if req.ClearNextTouch {
					// A failed lazy migration restores access and
					// leaves the page in place, like the kernel fault
					// handler: otherwise the touch could never settle.
					if pte := pt.Lookup(req.Ops[x].VPN); pte.Present() {
						cl := req.Space.ChunkLock(vm.ChunkIndex(req.Ops[x].VPN))
						cl.Acquire(req.P)
						pte.Flags &^= vm.PTENextTouch
						cl.Release()
					}
				}
			}
			res.Busy = len(busy)
			break
		}
		res.Retries++
		req.P.Sleep(p.MigrateRetryDelay)
		pending = busy
	}

	if req.Flush {
		req.Space.TLBFlush(req.P)
	}
	if req.Path == PathDemotion {
		e.Stats.DemotionRequests++
		e.Stats.PagesDemoted += uint64(res.Moved)
		e.Stats.BytesDemoted += res.Bytes
	}
	e.Stats.PagesMoved += uint64(res.Moved)
	e.Stats.HugePagesMoved += uint64(res.HugeMoved)
	e.Stats.PagesLocal += uint64(res.Local)
	e.Stats.PagesAbsent += uint64(res.Absent)
	e.Stats.PagesBusy += uint64(res.Busy)
	e.Stats.PagesRaced += uint64(res.Raced)
	e.Stats.RetryPasses += uint64(res.Retries)
	e.Stats.BytesMoved += res.Bytes
	if res.Moved > 0 {
		if bus := e.env.Bus(); bus.Active(telemetry.TopicMigrateBatch) {
			bus.Publish(telemetry.Event{
				Topic: telemetry.TopicMigrateBatch,
				Node:  telemetry.NoNode, Dst: telemetry.NoNode,
				Task: req.P.ID(), Pages: res.Moved,
				Dur: req.P.Now() - t0, Bytes: res.Bytes,
				Value: float64(req.Path),
			})
		}
	}
	return res
}

// batchSpan returns the end of the batch starting at idx[i] —
// consecutive entries within one PTE chunk, bounded by the pagevec
// size — plus that chunk's index. A huge op is always its own batch (it
// owns its whole chunk).
func (e *Engine) batchSpan(ops []Op, idx []int, i int) (int, uint64) {
	ci := vm.ChunkIndex(ops[idx[i]].VPN)
	if ops[idx[i]].Huge {
		return i + 1, ci
	}
	batchPages := e.env.Params().BatchPages
	j := i + 1
	for j < len(idx) && j-i < batchPages && vm.ChunkIndex(ops[idx[j]].VPN) == ci && !ops[idx[j]].Huge {
		j++
	}
	return j, ci
}

// copyGroups accumulates bulk-copy bytes per (src, dst) node pair in
// first-appearance order. Batches touch at most a handful of node
// pairs, so a linear scan over a small slice beats a per-batch map.
type copyGroups struct {
	keys  [][2]topology.NodeID
	bytes []float64
}

func (g *copyGroups) add(src, dst topology.NodeID, bytes float64) {
	key := [2]topology.NodeID{src, dst}
	for i, k := range g.keys {
		if k == key {
			g.bytes[i] += bytes
			return
		}
	}
	g.keys = append(g.keys, key)
	g.bytes = append(g.bytes, bytes)
}

func (g *copyGroups) reset() {
	g.keys = g.keys[:0]
	g.bytes = g.bytes[:0]
}

// flushCopies issues one migration-channel transfer per accumulated
// node pair, under the request's copy accounting category.
func (e *Engine) flushCopies(req *Request, g *copyGroups, syncChan bool) {
	copyAll := func() {
		for i, key := range g.keys {
			e.env.Copy(req.P, g.bytes[i], req.Core, key[0], key[1], syncChan)
		}
	}
	if req.CopyCat != "" {
		req.P.InCat(req.CopyCat, copyAll)
	} else {
		copyAll()
	}
}

// mov is one classified movable page (or huge unit) of a batch.
type mov struct {
	pte  *vm.PTE
	huge *vm.Chunk
	dst  topology.NodeID
	slot int
}

// reqScratch holds one in-flight request's reusable buffers. Requests
// interleave in simulated time (Migrate sleeps while other procs run),
// so the buffers pool per request rather than living on the Engine.
type reqScratch struct {
	pending []int
	movs    []mov
	groups  copyGroups
}

var scratchPool = sync.Pool{New: func() interface{} { return new(reqScratch) }}

func getScratch() *reqScratch { return scratchPool.Get().(*reqScratch) }

func putScratch(s *reqScratch) {
	// Drop PTE/chunk references so a pooled scratch never retains a
	// dead process's page table.
	for i := range s.movs {
		s.movs[i] = mov{}
	}
	s.movs = s.movs[:0]
	s.pending = s.pending[:0]
	s.groups.reset()
	scratchPool.Put(s)
}

// pass runs one gather pass over the pending op indices, batching by
// PTE chunk and pagevec size, and returns the indices left busy.
func (e *Engine) pass(req *Request, c pathCosts, s *reqScratch, pending []int, res *Result) []int {
	var busy []int
	i := 0
	for i < len(pending) {
		j, ci := e.batchSpan(req.Ops, pending, i)
		busy = append(busy, e.batch(req, c, s, pending[i:j], ci, res)...)
		i = j
	}
	return busy
}

// batch migrates one batch of pages sharing a PTE chunk: classify and
// rewrite under the chunk lock, then bulk-copy per node pair outside it.
func (e *Engine) batch(req *Request, c pathCosts, s *reqScratch, idx []int, ci uint64, res *Result) []int {
	p := e.env.Params()
	pt := req.Space.PageTable()

	if e.strategy == Unpatched {
		// The quadratic bug: for every page of the batch, scan the
		// entire destination-node array of the request.
		req.P.Sleep(sim.Time(len(idx)) * sim.Time(len(req.Ops)) * p.UnpatchedScanEntry)
	}

	cl := req.Space.ChunkLock(ci)
	cl.Acquire(req.P)

	// Classify: movable / local / absent / busy.
	movs := s.movs[:0]
	var busy []int
	for _, x := range idx {
		op := req.Ops[x]
		if op.Huge {
			hc := pt.Chunk(op.VPN)
			switch {
			case hc == nil || !hc.Huge || hc.HugeFrame == nil:
				req.setStatus(x, StatusNoEnt)
				res.Absent++
			case hc.HugeFrame.Node == op.Dst:
				res.Local++
				if c.localCost > 0 {
					req.P.Sleep(c.localCost)
				}
				req.setStatus(x, int(op.Dst))
			case hc.HugeFlags&vm.PTEPinned != 0:
				// The unit has elevated references: retry, then EBUSY,
				// exactly like a pinned 4 KiB page.
				busy = append(busy, x)
			default:
				movs = append(movs, mov{huge: hc, dst: op.Dst, slot: x})
			}
			continue
		}
		pte := pt.Lookup(op.VPN)
		if !pte.Present() {
			req.setStatus(x, StatusNoEnt)
			res.Absent++
			continue
		}
		if req.ClearNextTouch && pte.Flags&vm.PTENextTouch == 0 {
			// A lazy request whose mark is already gone: another
			// toucher serviced this page between fault classification
			// and now. Leave it where the first toucher put it.
			req.setStatus(x, int(pte.Frame.Node))
			res.Raced++
			continue
		}
		if pte.Frame.Node == op.Dst {
			// Already on the target node: no isolation needed, so
			// pinning is irrelevant (the kernel resolves the status
			// before attempting isolation).
			res.Local++
			if req.ClearNextTouch {
				pte.Flags &^= vm.PTENextTouch
			}
			if c.localCost > 0 {
				req.P.Sleep(c.localCost)
			}
			req.setStatus(x, int(op.Dst))
			continue
		}
		if pte.Flags&vm.PTEPinned != 0 {
			// Isolation failed (DMA-pinned, like get_user_pages
			// references): retry after the pass.
			busy = append(busy, x)
			continue
		}
		if req.Revalidate != nil && !req.Revalidate(op, pte.Frame.Node) {
			// The page changed nodes since the caller gathered it and
			// no longer qualifies under the caller's mask.
			req.setStatus(x, int(pte.Frame.Node))
			res.Raced++
			continue
		}
		movs = append(movs, mov{pte: pte, dst: op.Dst, slot: x})
	}

	// Control: page isolation, PTE updates. Partially under the global
	// LRU lock — the serialized fraction that limits threaded scaling.
	n := len(movs)
	if c.perExamined {
		n = len(idx)
	}
	if n > 0 {
		e.env.LRULock().AcquirePri(req.P, req.Priority)
		req.P.Sleep(sim.Time(n) * c.ctlLocked)
		e.env.LRULock().Release()
		req.P.Sleep(sim.Time(n) * (c.ctl - c.ctlLocked))
	}

	// Rewrite: allocate destinations, copy bytes, swap PTEs while the
	// chunk is locked, accumulating bytes per (src, dst) node pair.
	s.movs = movs
	groups := &s.groups
	groups.reset()
	mover, _ := req.Space.(PageMover)
	for _, m := range movs {
		if m.huge != nil {
			// Whole 2 MiB unit: release the source footprint first so a
			// nearly-full node can swap units in place.
			src := m.huge.HugeFrame.Node
			e.env.FreeHugeFrame(m.huge.HugeFrame)
			m.huge.HugeFrame = e.env.AllocHugeFrame(m.dst)
			e.env.NoteMigration(m.huge.HugeFrame.Node)
			req.setStatus(m.slot, int(m.huge.HugeFrame.Node))
			groups.add(src, m.huge.HugeFrame.Node, model.HugePageSize)
			e.noteTier(src, m.huge.HugeFrame.Node, model.HugePageSize)
			res.Moved++
			res.HugeMoved++
			res.Bytes += model.HugePageSize
			continue
		}
		src := m.pte.Frame.Node
		newF := e.env.AllocFrame(m.dst)
		if m.pte.Frame.Data != nil {
			copy(newF.Data, m.pte.Frame.Data)
		}
		e.env.FreeFrame(m.pte.Frame)
		e.env.NoteMigration(newF.Node)
		m.pte.Frame = newF
		// Arrival counts as a fresh LRU insertion for the demotion
		// scan's clock aging; promotions additionally stamp the current
		// scan-period generation for hysteresis.
		m.pte.Age = 0
		if req.StampPromoGen != 0 {
			m.pte.PromoGen = req.StampPromoGen
		}
		if req.ClearNextTouch {
			m.pte.Flags &^= vm.PTENextTouch
		}
		req.setStatus(m.slot, int(newF.Node))
		groups.add(src, newF.Node, model.PageSize)
		e.noteTier(src, newF.Node, model.PageSize)
		if mover != nil && src != newF.Node {
			mover.NotePageMove(src, newF.Node)
		}
		res.Moved++
		res.Bytes += model.PageSize
	}
	// Bulk copy: one transfer per node pair through the migration
	// channel. The batched syscall paths copy outside the PTE lock; the
	// fault path copies while holding it (see pathCosts.copyLocked).
	if c.copyLocked {
		e.flushCopies(req, groups, c.syncChan)
		cl.Release()
	} else {
		cl.Release()
		e.flushCopies(req, groups, c.syncChan)
	}
	return busy
}

// Replicate runs the copy-out half of the pipeline for read-only page
// replication: for every op it allocates a frame on the destination
// node and bulk-copies the source page into it without unmapping the
// source. Request.OnCopied receives every op's frame (nil where the
// source page was absent or already resides on the destination) under
// the chunk lock, so the caller's protection changes and replica
// bookkeeping are atomic with the copy. A page's ops are never split
// across batches: all its copies land inside one lock hold.
func (e *Engine) Replicate(req *Request) {
	pt := req.Space.PageTable()
	e.Stats.Requests++
	s := getScratch()
	defer putScratch(s)
	idx := s.pending
	for i := range req.Ops {
		idx = append(idx, i)
	}
	s.pending = idx

	i := 0
	for i < len(req.Ops) {
		j, ci := e.batchSpan(req.Ops, idx, i)
		// Never cut a batch mid-page: the caller's copied-but-writable
		// window depends on a page's last copy sharing the first one's
		// lock hold.
		for j < len(req.Ops) && req.Ops[j].VPN == req.Ops[j-1].VPN {
			j++
		}

		cl := req.Space.ChunkLock(ci)
		cl.Acquire(req.P)
		groups := &s.groups
		groups.reset()
		for x := i; x < j; x++ {
			op := req.Ops[x]
			pte := pt.Lookup(op.VPN)
			if !pte.Present() || pte.Frame.Node == op.Dst {
				if req.OnCopied != nil {
					req.OnCopied(x, nil)
				}
				continue
			}
			src := pte.Frame.Node
			f := e.env.AllocFrame(op.Dst)
			if pte.Frame.Data != nil {
				copy(f.Data, pte.Frame.Data)
			}
			groups.add(src, f.Node, model.PageSize)
			e.Stats.PagesReplicated++
			e.Stats.BytesReplicated += model.PageSize
			if req.OnCopied != nil {
				req.OnCopied(x, f)
			}
		}
		cl.Release()
		e.flushCopies(req, groups, false)
		i = j
	}

	if req.Flush {
		req.Space.TLBFlush(req.P)
	}
}
