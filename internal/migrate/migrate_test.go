package migrate_test

// Integration tests for the shared migration engine, driven through the
// kernel syscall surface it backs: patched-vs-unpatched cost scaling,
// busy-page (pinned) retry behaviour, and cross-node page-distribution
// invariants after migration.

import (
	"testing"

	"numamig/internal/kern"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

const pg = model.PageSize

type harness struct {
	eng  *sim.Engine
	k    *kern.Kernel
	proc *kern.Process
}

func newHarness(backed bool) *harness {
	eng := sim.NewEngine(7)
	k := kern.New(eng, topology.Opteron4x4(), model.Default(), backed)
	return &harness{eng: eng, k: k, proc: k.NewProcess("test")}
}

func (h *harness) run(t *testing.T, core topology.CoreID, fn func(tk *kern.Task)) {
	t.Helper()
	h.proc.Spawn("t0", core, fn)
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// movePagesTime returns the virtual duration of migrating `pages` pages
// node 0 -> node 1 with the given strategy.
func movePagesTime(t *testing.T, pages int, s migrate.Strategy) sim.Time {
	t.Helper()
	h := newHarness(false)
	var dur sim.Time
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(int64(pages)*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, int64(pages)*pg, true); err != nil {
			t.Fatal(err)
		}
		start := tk.P.Now()
		if _, err := tk.MovePagesRegion(a, int64(pages)*pg, 1, s); err != nil {
			t.Fatal(err)
		}
		dur = tk.P.Now() - start
	})
	return dur
}

func TestPatchedScalesLinearlyUnpatchedQuadratically(t *testing.T) {
	const n = 2048
	p1 := movePagesTime(t, n, migrate.Patched)
	p2 := movePagesTime(t, 2*n, migrate.Patched)
	u1 := movePagesTime(t, n, migrate.Unpatched)
	u2 := movePagesTime(t, 2*n, migrate.Unpatched)

	// Patched: time = base + c*pages, so doubling the pages must less
	// than double the time.
	if r := float64(p2) / float64(p1); r > 2.05 {
		t.Fatalf("patched scaling ratio = %.2f at %d->%d pages, want < 2.05 (linear)", r, n, 2*n)
	}
	// Unpatched: the quadratic term dominates at this size, so the
	// ratio must clearly exceed linear growth.
	if r := float64(u2) / float64(u1); r < 2.5 {
		t.Fatalf("unpatched scaling ratio = %.2f at %d->%d pages, want > 2.5 (quadratic)", r, n, 2*n)
	}
	if u1 <= p1 {
		t.Fatalf("unpatched (%v) should be slower than patched (%v)", u1, p1)
	}
}

func TestEngineStatsCountPipelineOutcomes(t *testing.T) {
	const pages = 128
	h := newHarness(false)
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		// Fault in only the first half: the rest stays absent.
		if _, err := tk.FaultIn(a, pages/2*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.MovePagesTo(a, pages*pg, 1, true); err != nil {
			t.Fatal(err)
		}
		// Second call: everything resident is already on node 1.
		if _, err := tk.MovePagesTo(a, pages*pg, 1, true); err != nil {
			t.Fatal(err)
		}
	})
	st := h.k.Migrator(migrate.Patched).Stats
	if st.Requests != 2 {
		t.Fatalf("engine requests = %d, want 2", st.Requests)
	}
	if st.PagesMoved != pages/2 {
		t.Fatalf("engine pages moved = %d, want %d", st.PagesMoved, pages/2)
	}
	if st.PagesLocal != pages/2 {
		t.Fatalf("engine pages local = %d, want %d", st.PagesLocal, pages/2)
	}
	if st.PagesAbsent != pages {
		t.Fatalf("engine pages absent = %d, want %d (both calls)", st.PagesAbsent, pages)
	}
	if want := float64(pages/2) * pg; st.BytesMoved != want {
		t.Fatalf("engine bytes moved = %v, want %v", st.BytesMoved, want)
	}
}

func TestPinnedPageReturnsBusyAfterRetries(t *testing.T) {
	const pages = 8
	h := newHarness(false)
	var status []int
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		// Pin page 3 only.
		if n, err := tk.PinRange(a+3*pg, pg); err != nil || n != 1 {
			t.Fatalf("pin: n=%d err=%v", n, err)
		}
		var err error
		status, err = tk.MovePagesTo(a, pages*pg, 1, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	for i, s := range status {
		want := 1
		if i == 3 {
			want = migrate.StatusBusy
		}
		if s != want {
			t.Fatalf("status[%d] = %d, want %d", i, s, want)
		}
	}
	st := h.k.Migrator(migrate.Patched).Stats
	if st.PagesBusy != 1 {
		t.Fatalf("engine busy pages = %d, want 1", st.PagesBusy)
	}
	if int(st.RetryPasses) != model.Default().MigrateRetries {
		t.Fatalf("engine retry passes = %d, want %d", st.RetryPasses, model.Default().MigrateRetries)
	}
}

func TestPinnedPageMigratesOnceConcurrentlyUnpinned(t *testing.T) {
	const pages = 4
	h := newHarness(false)
	ready := sim.NewEvent(h.eng)
	var a vm.Addr
	var status []int

	h.proc.Spawn("unpinner", 0, func(tk *kern.Task) {
		ready.Wait(tk.P)
		// Unpin while the mover is inside its retry backoff: move_pages
		// spends ~160us in serialized setup before its first pass, and
		// retry passes follow ~25us apart.
		tk.P.Sleep(sim.Micros(185))
		if _, err := tk.UnpinRange(a, pages*pg); err != nil {
			t.Error(err)
		}
	})
	h.proc.Spawn("mover", 4, func(tk *kern.Task) {
		a, _ = tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.PinRange(a, pages*pg); err != nil {
			t.Fatal(err)
		}
		ready.Fire()
		var err error
		status, err = tk.MovePagesTo(a, pages*pg, 1, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range status {
		if s != 1 {
			t.Fatalf("status[%d] = %d, want 1 (migrated after unpin)", i, s)
		}
	}
	st := h.k.Migrator(migrate.Patched).Stats
	if st.RetryPasses == 0 {
		t.Fatal("expected at least one retry pass while the range was pinned")
	}
	if st.PagesBusy != 0 {
		t.Fatalf("engine busy pages = %d, want 0 (unpinned in time)", st.PagesBusy)
	}
}

func TestMigrationPreservesDistributionAndData(t *testing.T) {
	const pages = 96
	h := newHarness(true)
	h.run(t, 0, func(tk *kern.Task) {
		// Interleave over all four nodes, then gather everything on
		// node 2.
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Interleave(0, 1, 2, 3), 0, "buf")
		payload := make([]byte, pages*pg)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		if err := tk.WriteData(a, payload); err != nil {
			t.Fatal(err)
		}
		allocatedBefore := h.k.Phys.TotalAllocated()

		if _, err := tk.MovePagesTo(a, pages*pg, 2, true); err != nil {
			t.Fatal(err)
		}

		// Invariant 1: every page resides on the target node.
		for i := 0; i < pages; i++ {
			if n := tk.GetNode(a + vm.Addr(i*pg)); n != 2 {
				t.Fatalf("page %d on node %d after migration, want 2", i, n)
			}
		}
		// Invariant 2: frame accounting is conserved — the source
		// frames were freed, so total allocation is unchanged and
		// node 2 holds all pages.
		if after := h.k.Phys.TotalAllocated(); after != allocatedBefore {
			t.Fatalf("allocated frames changed %d -> %d across migration", allocatedBefore, after)
		}
		if got := h.k.Phys.Stats(2).Allocated; got != pages {
			t.Fatalf("node 2 holds %d frames, want %d", got, pages)
		}
		for _, n := range []topology.NodeID{0, 1, 3} {
			if got := h.k.Phys.Stats(n).Allocated; got != 0 {
				t.Fatalf("node %d still holds %d frames", n, got)
			}
		}
		// Invariant 3: backing bytes survived the move.
		got, err := tk.ReadData(a, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("data corrupted at byte %d after migration", i)
			}
		}
	})
	// Invariant 4: migrations were recorded against the target node.
	if got := h.k.Phys.Stats(2).MigratedIn; got < pages/2 {
		t.Fatalf("node 2 migrated-in = %d, want most of %d", got, pages)
	}
}

func TestAllPathsShareOneEngine(t *testing.T) {
	// move_pages, the kernel next-touch fault path, and mbind(MOVE) must
	// all account their pages in the same engine.
	const pages = 32
	h := newHarness(false)
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "a")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.MovePagesTo(a, pages*pg, 1, true); err != nil {
			t.Fatal(err)
		}
		// Kernel next-touch: mark and re-touch from node 1's core.
		if _, err := tk.Madvise(a, pages*pg, kern.AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(8) // node 2
		if _, err := tk.FaultIn(a, pages*pg, false); err != nil {
			t.Fatal(err)
		}
		// mbind(MPOL_MF_MOVE) back to node 0.
		if err := tk.Mbind(a, pages*pg, vm.Bind(0), kern.MbindMove); err != nil {
			t.Fatal(err)
		}
	})
	st := h.k.Migrator(migrate.Patched).Stats
	if st.PagesMoved != 3*pages {
		t.Fatalf("engine saw %d page moves, want %d (all three paths)", st.PagesMoved, 3*pages)
	}
	if h.k.Stats.MovePagesPages != 2*pages { // move_pages + mbind
		t.Fatalf("move_pages counter = %d, want %d", h.k.Stats.MovePagesPages, 2*pages)
	}
	if h.k.Stats.NTMigrations != pages {
		t.Fatalf("next-touch counter = %d, want %d", h.k.Stats.NTMigrations, pages)
	}
}

func TestPinnedNextTouchPageRestoresAccessInPlace(t *testing.T) {
	// A failed lazy migration (pinned page) must clear the mark and
	// leave the page where it is, so the touch settles instead of
	// looping forever.
	const pages = 4
	h := newHarness(false)
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.PinRange(a, pages*pg); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Madvise(a, pages*pg, kern.AdvMigrateOnNextTouch); err != nil {
			t.Fatal(err)
		}
		// Touch from a remote node: migration is impossible, access must
		// still be restored with the pages left on node 0.
		if _, err := tk.FaultIn(a, pages*pg, false); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if n := tk.GetNode(a + vm.Addr(i*pg)); n != 0 {
				t.Fatalf("pinned page %d moved to node %d", i, n)
			}
		}
	})
	st := h.k.Migrator(migrate.Patched).Stats
	if st.PagesBusy != pages {
		t.Fatalf("engine busy pages = %d, want %d", st.PagesBusy, pages)
	}
	if h.k.Stats.NTMigrations != 0 {
		t.Fatalf("NT migrations = %d, want 0 (all pinned)", h.k.Stats.NTMigrations)
	}
}

func TestPinnedLocalPagesSucceedWithoutRetry(t *testing.T) {
	// Pages already on their target node need no isolation, so pinning
	// must not force them through the retry/EBUSY path.
	const pages = 8
	h := newHarness(false)
	var status []int
	h.run(t, 4, func(tk *kern.Task) {
		a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.PinRange(a, pages*pg); err != nil {
			t.Fatal(err)
		}
		var err error
		status, err = tk.MovePagesTo(a, pages*pg, 0, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	for i, s := range status {
		if s != 0 {
			t.Fatalf("status[%d] = %d, want 0 (already local)", i, s)
		}
	}
	st := h.k.Migrator(migrate.Patched).Stats
	if st.PagesBusy != 0 || st.RetryPasses != 0 {
		t.Fatalf("busy=%d retries=%d, want 0/0 for pinned-but-local pages", st.PagesBusy, st.RetryPasses)
	}
	if st.PagesLocal != pages {
		t.Fatalf("local pages = %d, want %d", st.PagesLocal, pages)
	}
}
