package topology

import (
	"testing"
	"testing/quick"
)

func TestOpteron4x4Shape(t *testing.T) {
	m := Opteron4x4()
	if m.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", m.NumNodes())
	}
	if m.NumCores() != 16 {
		t.Fatalf("cores = %d, want 16", m.NumCores())
	}
	if len(m.Links) != 4 {
		t.Fatalf("links = %d, want 4 (square)", len(m.Links))
	}
	if m.Nodes[0].MemBytes != 8<<30 {
		t.Fatalf("mem = %d, want 8GB", m.Nodes[0].MemBytes)
	}
	if m.Nodes[2].L3Bytes != 2<<20 {
		t.Fatalf("l3 = %d, want 2MB", m.Nodes[2].L3Bytes)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpteron4x4Distances(t *testing.T) {
	m := Opteron4x4()
	// Square 0-1, 0-2, 1-3, 2-3: diagonals (0,3) and (1,2) are 2 hops.
	cases := []struct {
		a, b NodeID
		d    int
	}{
		{0, 0, 10}, {0, 1, 12}, {0, 2, 12}, {0, 3, 14}, {1, 2, 14}, {1, 3, 12}, {2, 3, 12},
	}
	for _, c := range cases {
		if m.Distance(c.a, c.b) != c.d {
			t.Errorf("dist[%d][%d] = %d, want %d", c.a, c.b, m.Distance(c.a, c.b), c.d)
		}
	}
	if f := m.NUMAFactor(0, 3); f != 1.4 {
		t.Errorf("NUMA factor 0->3 = %v, want 1.4", f)
	}
	if f := m.NUMAFactor(0, 1); f != 1.2 {
		t.Errorf("NUMA factor 0->1 = %v, want 1.2", f)
	}
	if f := m.NUMAFactor(2, 2); f != 1.0 {
		t.Errorf("NUMA factor local = %v, want 1.0", f)
	}
}

func TestRoutes(t *testing.T) {
	m := Opteron4x4()
	if len(m.Route(0, 1)) != 1 {
		t.Errorf("route 0->1 = %v, want 1 hop", m.Route(0, 1))
	}
	if len(m.Route(0, 3)) != 2 {
		t.Errorf("route 0->3 = %v, want 2 hops", m.Route(0, 3))
	}
	if len(m.Route(1, 1)) != 0 {
		t.Errorf("route 1->1 = %v, want empty", m.Route(1, 1))
	}
	// Route links must actually connect the endpoints.
	for from := NodeID(0); from < 4; from++ {
		for to := NodeID(0); to < 4; to++ {
			if from == to {
				continue
			}
			cur := to // path was built from `to` back to `from`
			for _, li := range m.Route(from, to) {
				l := m.Links[li]
				switch cur {
				case l.A:
					cur = l.B
				case l.B:
					cur = l.A
				default:
					t.Fatalf("route %d->%d: link %d does not touch node %d", from, to, li, cur)
				}
			}
			if cur != from {
				t.Fatalf("route %d->%d ends at %d", from, to, cur)
			}
		}
	}
}

func TestNodeOf(t *testing.T) {
	m := Opteron4x4()
	for c := CoreID(0); c < 16; c++ {
		want := NodeID(int(c) / 4)
		if m.NodeOf(c) != want {
			t.Errorf("NodeOf(%d) = %d, want %d", c, m.NodeOf(c), want)
		}
	}
}

func TestGridShapes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		m := Grid(n, 2, 1<<30, 1<<20)
		if err := m.Validate(); err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		if m.NumNodes() != n || m.NumCores() != 2*n {
			t.Fatalf("Grid(%d): %d nodes %d cores", n, m.NumNodes(), m.NumCores())
		}
	}
}

func TestGridUnsupportedPanics(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Grid(%d) should panic", n)
				}
			}()
			Grid(n, 2, 1<<30, 1<<20)
		}()
	}
}

// The 1..8 shapes predate the 9..64 extension and must stay exactly as
// they were: hypercubes at powers of two, rings otherwise.
func TestGridSmallShapesUnchanged(t *testing.T) {
	wantLinks := map[int]int{1: 0, 2: 1, 3: 3, 4: 4, 5: 5, 6: 6, 7: 7, 8: 12}
	for n, want := range wantLinks {
		m := Grid(n, 1, 1<<30, 1<<20)
		if len(m.Links) != want {
			t.Errorf("Grid(%d): %d links, want %d", n, len(m.Links), want)
		}
	}
	// Spot-check the 8-node cube's farthest pair: 3 bit flips = 3 hops.
	m := Grid(8, 1, 1<<30, 1<<20)
	if m.Distance(0, 7) != 16 {
		t.Errorf("Grid(8) dist 0->7 = %d, want 16", m.Distance(0, 7))
	}
}

func TestGridLargeShapes(t *testing.T) {
	for n := 9; n <= 64; n++ {
		m := Grid(n, 1, 1<<30, 1<<20)
		if err := m.Validate(); err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		if m.NumNodes() != n {
			t.Fatalf("Grid(%d): %d nodes", n, m.NumNodes())
		}
		// Bounded degree: ring membership contributes at most 2 links
		// per node and the leader interconnect at most 6 more (the
		// 64-node hypercube's dimension).
		deg := make(map[NodeID]int)
		for _, l := range m.Links {
			deg[l.A]++
			deg[l.B]++
		}
		for id, d := range deg {
			if d > 8 {
				t.Fatalf("Grid(%d): node %d has degree %d", n, id, d)
			}
		}
	}
	// Pure hypercubes at 16/32/64: n*log2(n)/2 links, diameter log2(n).
	for _, n := range []int{16, 32, 64} {
		m := Grid(n, 1, 1<<30, 1<<20)
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if want := n * dim / 2; len(m.Links) != want {
			t.Errorf("Grid(%d): %d links, want %d", n, len(m.Links), want)
		}
		if m.Distance(0, NodeID(n-1)) != 10+2*dim {
			t.Errorf("Grid(%d): dist 0->%d = %d, want %d", n, n-1, m.Distance(0, NodeID(n-1)), 10+2*dim)
		}
	}
}

// Property: distances are symmetric, triangle-inequality-ish (hop metric)
// and routes have length matching the hop count encoded in Dist.
func TestGridRouteProperties(t *testing.T) {
	check := func(sel uint8) bool {
		sizes := []int{1, 2, 3, 4, 5, 6, 7, 8}
		n := sizes[int(sel)%len(sizes)]
		m := Grid(n, 1, 1<<30, 1<<20)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.Distance(NodeID(i), NodeID(j)) != m.Distance(NodeID(j), NodeID(i)) {
					return false
				}
				wantHops := (m.Distance(NodeID(i), NodeID(j)) - 10) / 2
				if i != j && len(m.Route(NodeID(i), NodeID(j))) != wantHops {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
