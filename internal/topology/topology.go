// Package topology describes the simulated cc-NUMA machine: nodes with
// attached memory and cores, the interconnect link graph, an ACPI
// SLIT-style distance oracle, and per-node-pair routes through the links.
//
// Machines are built by generators (Grid for flat/hierarchical node
// counts up to MaxNodes, Hierarchy for explicit sockets x dies x CXL
// shapes). Construction is O(nodes + links): distances and routes are
// not materialized as dense matrices but computed on demand — one BFS
// per queried source node, cached per source, plus a per-pair route
// cache — so a 1024-node machine costs kilobytes up front instead of
// the O(n^2) distance matrix and O(n^3) route table the old
// representation paid before the first scenario even ran.
package topology

import (
	"fmt"
	"sort"
	"sync"
)

// MaxNodes is the largest node count a generated machine may have.
const MaxNodes = 1024

// DegreeBound is the per-node link-degree cap generated machines stay
// under. Grid never exceeds 8 (node ring + leader ring + top cube);
// Hierarchy leaders can additionally carry the die-leader ring and a
// share of the socket's CXL expander links, so the general bound is 12.
// Hierarchy panics on configs that would exceed it.
const DegreeBound = 12

// NodeID identifies a NUMA node (memory bank + attached cores).
type NodeID int

// CoreID identifies a hardware core, globally numbered.
type CoreID int

// Node is one NUMA node.
type Node struct {
	ID       NodeID
	MemBytes int64
	L3Bytes  int64
	Cores    []CoreID
}

// Core is one processing core.
type Core struct {
	ID   CoreID
	Node NodeID
}

// Link is one interconnect link (e.g. HyperTransport) between two nodes.
type Link struct {
	ID   int
	A, B NodeID
}

// neighbor is one adjacency-list entry: the peer node and the link id
// reaching it.
type neighbor struct {
	node NodeID
	link int
}

// Machine is a complete static description of the host. Distances and
// routes are served on demand (Distance, Route) from per-source BFS
// results cached behind a mutex, so sharing one Machine between
// goroutines is safe and construction stays O(nodes + links).
type Machine struct {
	Nodes []Node
	Cores []Core
	Links []Link

	// adj is the adjacency list, each row sorted by peer id so BFS tree
	// construction (and therefore every route) is deterministic.
	adj [][]neighbor

	mu       sync.Mutex
	hopRows  [][]int16           // lazily-filled per-source BFS hop counts
	parRows  [][]int32           // matching BFS parents (route reconstruction)
	routeTab map[[2]NodeID][]int // per-pair route cache
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return len(m.Cores) }

// NodeOf returns the node a core belongs to.
func (m *Machine) NodeOf(c CoreID) NodeID { return m.Cores[c].Node }

// finish builds the adjacency list from Links and resets the lazy
// caches; every generator calls it once after wiring the links.
func (m *Machine) finish() {
	n := len(m.Nodes)
	m.adj = make([][]neighbor, n)
	for _, l := range m.Links {
		m.adj[l.A] = append(m.adj[l.A], neighbor{node: l.B, link: l.ID})
		m.adj[l.B] = append(m.adj[l.B], neighbor{node: l.A, link: l.ID})
	}
	for i := range m.adj {
		row := m.adj[i]
		sort.Slice(row, func(a, b int) bool { return row[a].node < row[b].node })
	}
	m.hopRows = make([][]int16, n)
	m.parRows = make([][]int32, n)
	m.routeTab = map[[2]NodeID][]int{}
}

// bfsFrom returns (filling the cache if needed) the hop counts and BFS
// parents from src. Caller must hold m.mu.
func (m *Machine) bfsFrom(src NodeID) ([]int16, []int32) {
	if m.hopRows[src] != nil {
		return m.hopRows[src], m.parRows[src]
	}
	n := len(m.Nodes)
	hops := make([]int16, n)
	parents := make([]int32, n)
	for i := range hops {
		hops[i] = -1
		parents[i] = -1
	}
	hops[src] = 0
	queue := make([]NodeID, 0, 16)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range m.adj[u] {
			if hops[nb.node] < 0 {
				hops[nb.node] = hops[u] + 1
				parents[nb.node] = int32(u)
				queue = append(queue, nb.node)
			}
		}
	}
	m.hopRows[src] = hops
	m.parRows[src] = parents
	return hops, parents
}

// Distance returns the SLIT-style distance between two nodes: 10 for
// local, 10 + 2*hops for remote — identical to the dense matrix the
// package used to precompute, now derived from a cached per-source BFS.
func (m *Machine) Distance(from, to NodeID) int {
	if from == to {
		return 10
	}
	m.mu.Lock()
	hops, _ := m.bfsFrom(from)
	d := hops[to]
	m.mu.Unlock()
	if d < 0 {
		panic(fmt.Sprintf("topology: no path %d->%d", from, to))
	}
	return 10 + 2*int(d)
}

// Route returns the link IDs on the path between two nodes (empty for
// from == to). The slice is cached and shared; callers must not mutate
// it. Routes follow the deterministic BFS tree from `from` (neighbors
// explored in ascending node id), listed destination-first like the
// dense table used to store them.
func (m *Machine) Route(from, to NodeID) []int {
	if from == to {
		return nil
	}
	key := [2]NodeID{from, to}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.routeTab[key]; ok {
		return r
	}
	_, parents := m.bfsFrom(from)
	var links []int
	for v := to; v != from; v = NodeID(parents[v]) {
		u := NodeID(parents[v])
		if u < 0 {
			panic(fmt.Sprintf("topology: no route %d->%d", from, to))
		}
		links = append(links, m.linkBetween(u, v))
	}
	m.routeTab[key] = links
	return links
}

// linkBetween returns the id of the direct link joining u and v.
func (m *Machine) linkBetween(u, v NodeID) int {
	for _, nb := range m.adj[u] {
		if nb.node == v {
			return nb.link
		}
	}
	panic(fmt.Sprintf("topology: no link %d-%d", u, v))
}

// Degree returns the number of links attached to a node.
func (m *Machine) Degree(n NodeID) int { return len(m.adj[n]) }

// NUMAFactor returns the access-cost ratio between a remote pair and
// local access (1.0 for local).
func (m *Machine) NUMAFactor(from, to NodeID) float64 {
	return float64(m.Distance(from, to)) / float64(m.Distance(from, from))
}

// Validate checks internal consistency. Structural checks (node/core
// cross-references, link endpoints, connectivity, the degree bound for
// machines above the flat-hypercube range) always run in O(nodes +
// links). The quadratic distance/route checks — symmetry, remote >=
// local, a route for every ordered pair — run in full up to 64 nodes
// and on a deterministic sample of sources above that, so validating a
// 1024-node machine does not force 1024 BFS passes.
func (m *Machine) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("topology: no nodes")
	}
	if len(m.adj) != len(m.Nodes) {
		return fmt.Errorf("topology: adjacency has %d rows, want %d (unfinished machine?)", len(m.adj), len(m.Nodes))
	}
	for c, core := range m.Cores {
		if CoreID(c) != core.ID {
			return fmt.Errorf("topology: core %d has ID %d", c, core.ID)
		}
		if int(core.Node) >= len(m.Nodes) {
			return fmt.Errorf("topology: core %d on invalid node %d", c, core.Node)
		}
	}
	for n, node := range m.Nodes {
		if NodeID(n) != node.ID {
			return fmt.Errorf("topology: node %d has ID %d", n, node.ID)
		}
		for _, c := range node.Cores {
			if m.Cores[c].Node != node.ID {
				return fmt.Errorf("topology: node %d lists foreign core %d", n, c)
			}
		}
	}
	for i, l := range m.Links {
		if l.ID != i {
			return fmt.Errorf("topology: link %d has ID %d", i, l.ID)
		}
		if int(l.A) >= len(m.Nodes) || int(l.B) >= len(m.Nodes) || l.A == l.B {
			return fmt.Errorf("topology: link %d joins invalid pair %d-%d", i, l.A, l.B)
		}
	}
	if len(m.Nodes) > 64 {
		for i := range m.adj {
			if len(m.adj[i]) > DegreeBound {
				return fmt.Errorf("topology: node %d has degree %d > bound %d", i, len(m.adj[i]), DegreeBound)
			}
		}
	}
	// Connectivity: one BFS from node 0 must reach everything.
	m.mu.Lock()
	hops0, _ := m.bfsFrom(0)
	m.mu.Unlock()
	for i, h := range hops0 {
		if h < 0 && len(m.Nodes) > 1 {
			return fmt.Errorf("topology: node %d unreachable from node 0", i)
		}
	}
	srcs := validateSources(len(m.Nodes))
	for _, i := range srcs {
		if m.Distance(NodeID(i), NodeID(i)) != 10 {
			return fmt.Errorf("topology: local distance of node %d is %d", i, m.Distance(NodeID(i), NodeID(i)))
		}
		for j := 0; j < len(m.Nodes); j++ {
			if i == j {
				continue
			}
			d := m.Distance(NodeID(i), NodeID(j))
			if d < 10 {
				return fmt.Errorf("topology: remote distance %d->%d (%d) below local", i, j, d)
			}
			if m.Distance(NodeID(j), NodeID(i)) != d {
				return fmt.Errorf("topology: asymmetric distance %d<->%d", i, j)
			}
			r := m.Route(NodeID(i), NodeID(j))
			if len(r) == 0 {
				return fmt.Errorf("topology: no route %d->%d", i, j)
			}
			for _, l := range r {
				if l < 0 || l >= len(m.Links) {
					return fmt.Errorf("topology: route %d->%d uses invalid link %d", i, j, l)
				}
			}
		}
	}
	return nil
}

// validateSources picks the BFS sources Validate checks exhaustively:
// every node up to 64, a fixed-stride sample (first, last, every 37th)
// above.
func validateSources(n int) []int {
	if n <= 64 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0, n - 1}
	for i := 37; i < n-1; i += 37 {
		out = append(out, i)
	}
	return out
}

// Opteron4x4 builds the paper's experimentation host (Fig. 3): four
// quad-core Opteron 8347HE sockets, 8 GB and one 2 MB shared L3 per
// socket, HyperTransport links in a square (0-1, 0-2, 1-3, 2-3) so that
// diagonally opposite nodes are two hops apart. Distances 10/12/14 give
// the paper's NUMA factor range of 1.2-1.4.
func Opteron4x4() *Machine {
	return Grid(4, 4, 8<<30, 2<<20)
}

// linker accumulates deduplicated links for a machine under
// construction and provides the ring/hypercube/cluster wiring shapes
// the generators share.
type linker struct {
	m    *Machine
	seen map[[2]int]bool
}

func newLinker(m *Machine) *linker { return &linker{m: m, seen: map[[2]int]bool{}} }

func (lk *linker) add(i, j int) {
	if i > j {
		i, j = j, i
	}
	if lk.seen[[2]int{i, j}] {
		return
	}
	lk.seen[[2]int{i, j}] = true
	lk.m.Links = append(lk.m.Links, Link{ID: len(lk.m.Links), A: NodeID(i), B: NodeID(j)})
}

func (lk *linker) ring(ids []int) {
	if len(ids) < 2 {
		return
	}
	for i := range ids {
		lk.add(ids[i], ids[(i+1)%len(ids)])
	}
}

func (lk *linker) hypercube(ids []int) {
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if popcount(i^j) == 1 {
				lk.add(ids[i], ids[j])
			}
		}
	}
}

// cluster wires an id set hierarchically: a ring within each contiguous
// group of up to 8, then the group leaders (each group's first id)
// interconnected recursively — a hypercube once the leader set is a
// power of two of at most 16, a ring while it fits in 8, another
// cluster level otherwise. The recursion keeps every node's degree
// within DegreeBound at any size up to MaxNodes (a deepest-level leader
// carries its node ring, its leader ring and the top cube: 2+2+4).
func (lk *linker) cluster(ids []int) {
	if popcount(len(ids)) == 1 && len(ids) <= 16 {
		lk.hypercube(ids)
		return
	}
	if len(ids) <= 8 {
		lk.ring(ids)
		return
	}
	var leaders []int
	for base := 0; base < len(ids); base += 8 {
		end := base + 8
		if end > len(ids) {
			end = len(ids)
		}
		lk.ring(ids[base:end])
		leaders = append(leaders, ids[base])
	}
	lk.cluster(leaders)
}

// addNodes appends count nodes of the given shape to the machine,
// returning their ids.
func addNodes(m *Machine, count, coresPerNode int, memPerNode, l3PerNode int64) []int {
	ids := make([]int, 0, count)
	for i := 0; i < count; i++ {
		id := NodeID(len(m.Nodes))
		node := Node{ID: id, MemBytes: memPerNode, L3Bytes: l3PerNode}
		for c := 0; c < coresPerNode; c++ {
			cid := CoreID(len(m.Cores))
			node.Cores = append(node.Cores, cid)
			m.Cores = append(m.Cores, Core{ID: cid, Node: id})
		}
		m.Nodes = append(m.Nodes, node)
		ids = append(ids, int(id))
	}
	return ids
}

// Grid builds an n-node machine (1 <= n <= MaxNodes) with coresPerNode
// cores per node and hop-count distances (10 + 2*hops). Power-of-two
// node counts up to 64 get HT-style hypercube links (the square/cube of
// the paper's host, up to a 6-cube at 64); other counts up to 8 (3, 5,
// 6, 7 — e.g. a DRAM machine with CXL expander nodes appended) are
// linked in a ring. Everything else is built as a hierarchy — a ring
// within each contiguous group of up to 8 nodes, and the group leaders
// interconnected recursively (see linker.cluster) — so big machines
// keep a link degree within DegreeBound and a hop gradient like real
// multi-board interconnects. Every shape up to 64 nodes is unchanged
// from when 64 was the upper bound (the grid64.sha256 golden test
// enforces this).
func Grid(nodes, coresPerNode int, memPerNode, l3PerNode int64) *Machine {
	if nodes < 1 || nodes > MaxNodes {
		panic(fmt.Sprintf("topology: unsupported node count %d (want 1..%d)", nodes, MaxNodes))
	}
	m := &Machine{}
	all := addNodes(m, nodes, coresPerNode, memPerNode, l3PerNode)
	lk := newLinker(m)
	switch {
	case popcount(nodes) == 1 && nodes <= 64:
		lk.hypercube(all)
	case nodes <= 8:
		lk.ring(all)
	default:
		lk.cluster(all)
	}
	m.finish()
	if err := m.Validate(); err != nil {
		panic("topology: generated invalid machine: " + err.Error())
	}
	return m
}

// HierarchyConfig describes a generated datacenter-shaped machine:
// compute nodes grouped into dies and sockets, with optional memory-only
// CXL expander nodes hanging off a per-socket switch.
type HierarchyConfig struct {
	// Sockets, DiesPerSocket, NodesPerDie shape the compute hierarchy;
	// all must be >= 1. Total node count (including expanders) must stay
	// within MaxNodes.
	Sockets       int
	DiesPerSocket int
	NodesPerDie   int
	// CXLPerSocket appends that many memory-only expander nodes per
	// socket, attached round-robin across the socket's die leaders (the
	// switch ports), so no single leader absorbs every expander link.
	CXLPerSocket int
	// CoresPerNode is the core count of each compute node (expanders
	// carry no cores).
	CoresPerNode int
	// MemPerNode / L3PerNode size each compute node; CXLMemPerNode sizes
	// each expander (0 means MemPerNode).
	MemPerNode    int64
	L3PerNode     int64
	CXLMemPerNode int64
}

// Hierarchy generates a sockets x dies x nodes machine: the nodes of a
// die are interconnected directly (hypercube or ring by count), die
// leaders form a ring per socket, socket leaders interconnect at the
// top, and CXL expander nodes — memory-only, no cores — attach to their
// socket's leader like devices behind a CXL switch. Node ids number the
// compute nodes first (socket-major, then die, then node), expanders
// last; distances fall out of the link graph via the same BFS oracle
// Grid uses.
func Hierarchy(cfg HierarchyConfig) *Machine {
	if cfg.Sockets < 1 || cfg.DiesPerSocket < 1 || cfg.NodesPerDie < 1 {
		panic("topology: hierarchy needs at least one socket, die and node")
	}
	if cfg.CXLPerSocket < 0 {
		panic("topology: negative CXL expander count")
	}
	total := cfg.Sockets*cfg.DiesPerSocket*cfg.NodesPerDie + cfg.Sockets*cfg.CXLPerSocket
	if total > MaxNodes {
		panic(fmt.Sprintf("topology: hierarchy of %d nodes exceeds MaxNodes %d", total, MaxNodes))
	}
	cxlMem := cfg.CXLMemPerNode
	if cxlMem == 0 {
		cxlMem = cfg.MemPerNode
	}
	m := &Machine{}
	lk := newLinker(m)
	var socketLeaders []int
	dieLeaders := make([][]int, cfg.Sockets)
	for s := 0; s < cfg.Sockets; s++ {
		for d := 0; d < cfg.DiesPerSocket; d++ {
			die := addNodes(m, cfg.NodesPerDie, cfg.CoresPerNode, cfg.MemPerNode, cfg.L3PerNode)
			lk.cluster(die)
			dieLeaders[s] = append(dieLeaders[s], die[0])
		}
		lk.ring(dieLeaders[s])
		socketLeaders = append(socketLeaders, dieLeaders[s][0])
	}
	lk.cluster(socketLeaders)
	for s := 0; s < cfg.Sockets; s++ {
		for x := 0; x < cfg.CXLPerSocket; x++ {
			exp := addNodes(m, 1, 0, cxlMem, 0)
			lk.add(dieLeaders[s][x%len(dieLeaders[s])], exp[0])
		}
	}
	m.finish()
	for i := range m.adj {
		if len(m.adj[i]) > DegreeBound {
			panic(fmt.Sprintf("topology: hierarchy config gives node %d degree %d > bound %d (too many CXL expanders per die?)",
				i, len(m.adj[i]), DegreeBound))
		}
	}
	if err := m.Validate(); err != nil {
		panic("topology: generated invalid machine: " + err.Error())
	}
	return m
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
