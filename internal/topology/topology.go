// Package topology describes the simulated cc-NUMA machine: nodes with
// attached memory and cores, the interconnect link graph, an ACPI
// SLIT-style distance matrix, and per-node-pair routes through the links.
package topology

import "fmt"

// NodeID identifies a NUMA node (memory bank + attached cores).
type NodeID int

// CoreID identifies a hardware core, globally numbered.
type CoreID int

// Node is one NUMA node.
type Node struct {
	ID       NodeID
	MemBytes int64
	L3Bytes  int64
	Cores    []CoreID
}

// Core is one processing core.
type Core struct {
	ID   CoreID
	Node NodeID
}

// Link is one interconnect link (e.g. HyperTransport) between two nodes.
type Link struct {
	ID   int
	A, B NodeID
}

// Machine is a complete static description of the host.
type Machine struct {
	Nodes []Node
	Cores []Core
	Links []Link
	// Dist is the SLIT-style distance matrix: 10 = local; the NUMA
	// factor between nodes i,j is Dist[i][j]/10.
	Dist [][]int
	// routes[i][j] lists link IDs on the path from node i to node j
	// (empty for i==j).
	routes [][][]int
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return len(m.Cores) }

// NodeOf returns the node a core belongs to.
func (m *Machine) NodeOf(c CoreID) NodeID { return m.Cores[c].Node }

// Route returns the link IDs on the path between two nodes.
func (m *Machine) Route(from, to NodeID) []int { return m.routes[from][to] }

// NUMAFactor returns the access-cost ratio between a remote pair and
// local access (1.0 for local).
func (m *Machine) NUMAFactor(from, to NodeID) float64 {
	return float64(m.Dist[from][to]) / float64(m.Dist[from][from])
}

// Validate checks internal consistency.
func (m *Machine) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("topology: no nodes")
	}
	if len(m.Dist) != len(m.Nodes) {
		return fmt.Errorf("topology: distance matrix is %dx?, want %d rows", len(m.Dist), len(m.Nodes))
	}
	for i, row := range m.Dist {
		if len(row) != len(m.Nodes) {
			return fmt.Errorf("topology: distance row %d has %d cols", i, len(row))
		}
		if row[i]%10 != 0 || row[i] <= 0 {
			return fmt.Errorf("topology: local distance of node %d is %d, want positive multiple of 10", i, row[i])
		}
		for j, d := range row {
			if d < row[i] && i != j {
				return fmt.Errorf("topology: remote distance %d->%d (%d) below local (%d)", i, j, d, row[i])
			}
			if m.Dist[j][i] != d {
				return fmt.Errorf("topology: asymmetric distance %d<->%d", i, j)
			}
		}
	}
	for c, core := range m.Cores {
		if CoreID(c) != core.ID {
			return fmt.Errorf("topology: core %d has ID %d", c, core.ID)
		}
		if int(core.Node) >= len(m.Nodes) {
			return fmt.Errorf("topology: core %d on invalid node %d", c, core.Node)
		}
	}
	for n, node := range m.Nodes {
		if NodeID(n) != node.ID {
			return fmt.Errorf("topology: node %d has ID %d", n, node.ID)
		}
		for _, c := range node.Cores {
			if m.Cores[c].Node != node.ID {
				return fmt.Errorf("topology: node %d lists foreign core %d", n, c)
			}
		}
	}
	for i := range m.Nodes {
		for j := range m.Nodes {
			if i == j {
				continue
			}
			r := m.routes[i][j]
			if len(r) == 0 {
				return fmt.Errorf("topology: no route %d->%d", i, j)
			}
			for _, l := range r {
				if l < 0 || l >= len(m.Links) {
					return fmt.Errorf("topology: route %d->%d uses invalid link %d", i, j, l)
				}
			}
		}
	}
	return nil
}

// Opteron4x4 builds the paper's experimentation host (Fig. 3): four
// quad-core Opteron 8347HE sockets, 8 GB and one 2 MB shared L3 per
// socket, HyperTransport links in a square (0-1, 0-2, 1-3, 2-3) so that
// diagonally opposite nodes are two hops apart. Distances 10/12/14 give
// the paper's NUMA factor range of 1.2-1.4.
func Opteron4x4() *Machine {
	return Grid(4, 4, 8<<30, 2<<20)
}

// Grid builds an n-node machine (1 <= n <= 64) with coresPerNode cores
// per node and hop-count distances (10 + 2*hops). Power-of-two node
// counts get HT-style hypercube links (the square/cube of the paper's
// host, up to a 6-cube at 64); other counts up to 8 (3, 5, 6, 7 — e.g.
// a DRAM machine with CXL expander nodes appended) are linked in a
// ring. Non-power-of-two counts above 8 are built as a hierarchy — a
// ring within each contiguous group of up to 8 nodes, and the group
// leaders (each group's first node) interconnected as a hypercube when
// the group count is a power of two, a ring otherwise — so big machines
// keep a bounded link degree and a hop gradient like real multi-board
// interconnects. The 1..8 shapes are unchanged from when 8 was the
// upper bound.
func Grid(nodes, coresPerNode int, memPerNode, l3PerNode int64) *Machine {
	if nodes < 1 || nodes > 64 {
		panic(fmt.Sprintf("topology: unsupported node count %d (want 1..64)", nodes))
	}
	m := &Machine{}
	coreID := CoreID(0)
	for n := 0; n < nodes; n++ {
		node := Node{ID: NodeID(n), MemBytes: memPerNode, L3Bytes: l3PerNode}
		for c := 0; c < coresPerNode; c++ {
			node.Cores = append(node.Cores, coreID)
			m.Cores = append(m.Cores, Core{ID: coreID, Node: NodeID(n)})
			coreID++
		}
		m.Nodes = append(m.Nodes, node)
	}
	// Power of two: hypercube adjacency (nodes differing in one bit are
	// linked). Otherwise: a ring.
	adj := make([][]bool, nodes)
	for i := range adj {
		adj[i] = make([]bool, nodes)
	}
	linkIdx := map[[2]int]int{}
	addLink := func(i, j int) {
		if i > j {
			i, j = j, i
		}
		if adj[i][j] {
			return
		}
		adj[i][j], adj[j][i] = true, true
		linkIdx[[2]int{i, j}] = len(m.Links)
		m.Links = append(m.Links, Link{ID: len(m.Links), A: NodeID(i), B: NodeID(j)})
	}
	ring := func(ids []int) {
		if len(ids) < 2 {
			return
		}
		for i := range ids {
			addLink(ids[i], ids[(i+1)%len(ids)])
		}
	}
	hypercube := func(ids []int) {
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				if popcount(i^j) == 1 {
					addLink(ids[i], ids[j])
				}
			}
		}
	}
	all := make([]int, nodes)
	for i := range all {
		all[i] = i
	}
	switch {
	case popcount(nodes) == 1:
		hypercube(all)
	case nodes <= 8:
		ring(all)
	default:
		// Hierarchy: rings of up to 8 nodes, leaders interconnected.
		var leaders []int
		for base := 0; base < nodes; base += 8 {
			end := base + 8
			if end > nodes {
				end = nodes
			}
			ring(all[base:end])
			leaders = append(leaders, base)
		}
		if popcount(len(leaders)) == 1 {
			hypercube(leaders)
		} else {
			ring(leaders)
		}
	}
	// BFS hop counts and routes.
	m.Dist = make([][]int, nodes)
	m.routes = make([][][]int, nodes)
	for i := 0; i < nodes; i++ {
		m.Dist[i] = make([]int, nodes)
		m.routes[i] = make([][]int, nodes)
		hops, parents := bfs(adj, i)
		for j := 0; j < nodes; j++ {
			m.Dist[i][j] = 10 + 2*hops[j]
			if i == j {
				continue
			}
			// Reconstruct path j -> i, collect links.
			var links []int
			for v := j; v != i; v = parents[v] {
				u := parents[v]
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				links = append(links, linkIdx[[2]int{a, b}])
			}
			m.routes[i][j] = links
		}
	}
	if err := m.Validate(); err != nil {
		panic("topology: generated invalid machine: " + err.Error())
	}
	return m
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func bfs(adj [][]bool, src int) (hops, parents []int) {
	n := len(adj)
	hops = make([]int, n)
	parents = make([]int, n)
	for i := range hops {
		hops[i] = -1
		parents[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if adj[u][v] && hops[v] < 0 {
				hops[v] = hops[u] + 1
				parents[v] = u
				queue = append(queue, v)
			}
		}
	}
	return hops, parents
}
