package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// CanonicalString renders every observable property of a machine —
// nodes, cores, links, all pairwise distances and all routes — in a
// fixed text layout that is independent of the internal representation.
// Two machines with equal canonical strings are indistinguishable to
// every consumer of the package API.
func CanonicalString(m *Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d cores=%d links=%d\n", m.NumNodes(), m.NumCores(), len(m.Links))
	for _, n := range m.Nodes {
		fmt.Fprintf(&b, "node %d mem=%d l3=%d cores=%v\n", n.ID, n.MemBytes, n.L3Bytes, n.Cores)
	}
	for _, c := range m.Cores {
		fmt.Fprintf(&b, "core %d node=%d\n", c.ID, c.Node)
	}
	for _, l := range m.Links {
		fmt.Fprintf(&b, "link %d %d-%d\n", l.ID, l.A, l.B)
	}
	for i := 0; i < m.NumNodes(); i++ {
		for j := 0; j < m.NumNodes(); j++ {
			fmt.Fprintf(&b, "dist %d %d %d\n", i, j, m.Distance(NodeID(i), NodeID(j)))
			if i != j {
				fmt.Fprintf(&b, "route %d %d %v\n", i, j, m.Route(NodeID(i), NodeID(j)))
			}
		}
	}
	return b.String()
}

// CanonicalHash returns the sha256 hex digest of CanonicalString.
func CanonicalHash(m *Machine) string {
	sum := sha256.Sum256([]byte(CanonicalString(m)))
	return hex.EncodeToString(sum[:])
}
