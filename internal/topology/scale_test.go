package topology

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestGrid64Golden locks every 1..64-node Grid shape to the canonical
// hashes captured before the lazy-distance/1024-node refactor
// (testdata/grid64.sha256, regenerated only intentionally via
// tools/topogold). A mismatch means existing scenario families would
// see a different machine.
func TestGrid64Golden(t *testing.T) {
	f, err := os.Open("testdata/grid64.sha256")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[int]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var n int
		var h string
		if _, err := fmt.Sscanf(line, "%d %s", &n, &h); err != nil {
			t.Fatalf("bad golden line %q: %v", line, err)
		}
		want[n] = h
	}
	if len(want) != 64 {
		t.Fatalf("golden file has %d entries, want 64", len(want))
	}
	for n := 1; n <= 64; n++ {
		m := Grid(n, 2, 1<<30, 2<<20)
		if got := CanonicalHash(m); got != want[n] {
			t.Errorf("Grid(%d): canonical hash %s, want %s — shape changed", n, got, want[n])
		}
	}
}

// TestGridLargeProperties exercises the >64-node generated shapes:
// Validate passes, degree stays within DegreeBound, distances are
// symmetric, and routes match hop counts.
func TestGridLargeProperties(t *testing.T) {
	for _, n := range []int{65, 100, 128, 256, 333, 512, 1000, 1024} {
		m := Grid(n, 1, 1<<30, 1<<20)
		if err := m.Validate(); err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
		if m.NumNodes() != n {
			t.Fatalf("Grid(%d): %d nodes", n, m.NumNodes())
		}
		// Grid keeps the tighter ring+ring+cube bound of 8 at any size.
		for id := 0; id < n; id++ {
			if d := m.Degree(NodeID(id)); d > 8 {
				t.Fatalf("Grid(%d): node %d degree %d > 8", n, id, d)
			}
		}
		// Sampled symmetry + route/hop agreement (full n^2 is slow at 1024).
		for i := 0; i < n; i += 97 {
			for j := 0; j < n; j += 31 {
				di, dj := m.Distance(NodeID(i), NodeID(j)), m.Distance(NodeID(j), NodeID(i))
				if di != dj {
					t.Fatalf("Grid(%d): asymmetric %d<->%d: %d vs %d", n, i, j, di, dj)
				}
				if i != j {
					if hops := (di - 10) / 2; len(m.Route(NodeID(i), NodeID(j))) != hops {
						t.Fatalf("Grid(%d): route %d->%d has %d links, dist says %d hops",
							n, i, j, len(m.Route(NodeID(i), NodeID(j))), hops)
					}
				}
			}
		}
	}
}

func TestHierarchyShape(t *testing.T) {
	cfg := HierarchyConfig{
		Sockets: 4, DiesPerSocket: 2, NodesPerDie: 4, CXLPerSocket: 2,
		CoresPerNode: 2, MemPerNode: 4 << 30, L3PerNode: 2 << 20, CXLMemPerNode: 16 << 30,
	}
	m := Hierarchy(cfg)
	wantCompute := 4 * 2 * 4
	wantTotal := wantCompute + 4*2
	if m.NumNodes() != wantTotal {
		t.Fatalf("nodes = %d, want %d", m.NumNodes(), wantTotal)
	}
	if m.NumCores() != wantCompute*2 {
		t.Fatalf("cores = %d, want %d", m.NumCores(), wantCompute*2)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expanders are numbered last, memory-only, sized by CXLMemPerNode,
	// and hang one hop off a die leader (their switch port).
	for i := wantCompute; i < wantTotal; i++ {
		n := m.Nodes[i]
		if len(n.Cores) != 0 {
			t.Fatalf("expander %d has %d cores", i, len(n.Cores))
		}
		if n.MemBytes != 16<<30 {
			t.Fatalf("expander %d mem = %d", i, n.MemBytes)
		}
		if m.Degree(n.ID) != 1 {
			t.Fatalf("expander %d degree = %d, want 1", i, m.Degree(n.ID))
		}
	}
	for id := 0; id < wantTotal; id++ {
		if d := m.Degree(NodeID(id)); d > DegreeBound {
			t.Fatalf("node %d degree %d > %d", id, d, DegreeBound)
		}
	}
	// Same-die nodes are closer than cross-socket ones.
	if m.Distance(0, 1) >= m.Distance(0, NodeID(3*2*4)) {
		t.Fatalf("intra-die dist %d not below cross-socket dist %d",
			m.Distance(0, 1), m.Distance(0, NodeID(3*2*4)))
	}
}

// TestHierarchyMax builds the largest supported hierarchical machine
// and checks construction stays cheap enough to run inside a unit test
// (the old dense Dist/routes precompute made this seconds of work and
// hundreds of MB).
func TestHierarchyMax(t *testing.T) {
	m := Hierarchy(HierarchyConfig{
		Sockets: 16, DiesPerSocket: 4, NodesPerDie: 15, CXLPerSocket: 4,
		CoresPerNode: 1, MemPerNode: 1 << 30, L3PerNode: 1 << 20,
	})
	if m.NumNodes() != 16*4*15+16*4 {
		t.Fatalf("nodes = %d", m.NumNodes())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyOverMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized hierarchy should panic")
		}
	}()
	Hierarchy(HierarchyConfig{Sockets: 32, DiesPerSocket: 8, NodesPerDie: 8, CoresPerNode: 1, MemPerNode: 1 << 30})
}
