package topology_test

import (
	"fmt"

	"numamig/internal/topology"
)

// Example_hierarchicalMachine generates a datacenter-shaped machine —
// two sockets of two dies with four compute nodes each, plus one CXL
// memory expander per socket — and inspects the distance gradient the
// link hierarchy produces. Distances are computed on demand, so even a
// 1024-node machine is cheap to construct.
func Example_hierarchicalMachine() {
	m := topology.Hierarchy(topology.HierarchyConfig{
		Sockets:       2,
		DiesPerSocket: 2,
		NodesPerDie:   4,
		CXLPerSocket:  1,
		CoresPerNode:  2,
		MemPerNode:    4 << 30,
		L3PerNode:     2 << 20,
		CXLMemPerNode: 32 << 30,
	})
	fmt.Printf("nodes=%d cores=%d links=%d\n", m.NumNodes(), m.NumCores(), len(m.Links))
	expander := topology.NodeID(m.NumNodes() - 1) // expanders are numbered last
	fmt.Printf("local=%d intra-die=%d cross-die=%d cross-socket=%d to-expander=%d\n",
		m.Distance(0, 0),        // same node
		m.Distance(0, 1),        // same die
		m.Distance(0, 4),        // other die, same socket
		m.Distance(0, 8),        // other socket
		m.Distance(8, expander)) // socket 1 leader to its CXL expander
	fmt.Printf("expander cores=%d mem=%dGiB\n",
		len(m.Nodes[expander].Cores), m.Nodes[expander].MemBytes>>30)
	// Output:
	// nodes=18 cores=32 links=21
	// local=10 intra-die=12 cross-die=12 cross-socket=12 to-expander=12
	// expander cores=0 mem=32GiB
}
