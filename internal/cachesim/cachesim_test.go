package cachesim

import (
	"testing"
	"testing/quick"
)

func TestHitAfterInstall(t *testing.T) {
	c := New(1000)
	if c.Access(1, 400) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1, 400) {
		t.Fatal("second access should hit")
	}
	if c.Used() != 400 {
		t.Fatalf("used = %d", c.Used())
	}
	if c.Stats.HitBytes != 400 || c.Stats.MissBytes != 400 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1000)
	c.Access(1, 400)
	c.Access(2, 400)
	c.Access(1, 400) // refresh 1; LRU is now 2
	c.Access(3, 400) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatalf("LRU eviction wrong: 1=%v 2=%v 3=%v", c.Contains(1), c.Contains(2), c.Contains(3))
	}
}

func TestOversizedBypasses(t *testing.T) {
	c := New(1000)
	c.Access(1, 400)
	if c.Access(9, 5000) {
		t.Fatal("oversized set hit")
	}
	if !c.Contains(1) {
		t.Fatal("oversized set evicted resident data")
	}
	if c.Used() != 400 {
		t.Fatalf("used = %d", c.Used())
	}
}

func TestSizeChangeReplaces(t *testing.T) {
	c := New(1000)
	c.Access(1, 400)
	if c.Access(1, 600) {
		t.Fatal("resize should miss")
	}
	if c.Used() != 600 {
		t.Fatalf("used = %d", c.Used())
	}
	if !c.Access(1, 600) {
		t.Fatal("after resize install, should hit")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := New(1000)
	c.Access(1, 300)
	c.Access(2, 300)
	c.Invalidate(1)
	if c.Contains(1) || c.Used() != 300 {
		t.Fatal("invalidate failed")
	}
	c.Flush()
	if c.Used() != 0 || c.Contains(2) {
		t.Fatal("flush failed")
	}
}

func TestZeroBytesAlwaysHit(t *testing.T) {
	c := New(10)
	if !c.Access(1, 0) {
		t.Fatal("zero-byte access should hit")
	}
}

func TestGroupIndependence(t *testing.T) {
	g := NewGroup(4, 1000)
	g.Node(0).Access(1, 500)
	if g.Node(1).Contains(1) {
		t.Fatal("caches not independent")
	}
	g.Node(1).Access(1, 500)
	g.InvalidateAll(1)
	if g.Node(0).Contains(1) || g.Node(1).Contains(1) {
		t.Fatal("InvalidateAll failed")
	}
}

// Property: used never exceeds capacity and equals the sum of resident
// entries, regardless of access sequence.
func TestCapacityInvariantProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		c := New(4096)
		resident := map[uint64]int64{}
		for _, op := range ops {
			id := uint64(op % 16)
			bytes := int64(op%5000) + 1
			c.Access(id, bytes)
			// Rebuild resident set from Contains.
			for k := range resident {
				if !c.Contains(k) {
					delete(resident, k)
				}
			}
			if c.Contains(id) {
				resident[id] = bytes
			}
			var sum int64
			for _, b := range resident {
				sum += b
			}
			if c.Used() > 4096 || c.Used() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
