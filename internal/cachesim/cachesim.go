// Package cachesim models the per-socket shared L3 caches at buffer
// granularity: a working set (identified by the caller, e.g. one matrix
// block) either fits and hits, or streams from memory. This coarse model
// is what produces the paper's 512-element crossover in Figure 8 — below
// it the three BLAS3 operands fit in the 2 MB L3 and data placement stops
// mattering — and the BLAS1 non-result of §4.5.
package cachesim

import "container/list"

// Stats counts cache outcomes in bytes.
type Stats struct {
	HitBytes  int64
	MissBytes int64
}

// Cache is one socket's shared last-level cache.
type Cache struct {
	capacity int64
	used     int64
	order    *list.List               // front = most recent
	index    map[uint64]*list.Element // id -> element
	Stats    Stats
}

type entry struct {
	id    uint64
	bytes int64
}

// New creates a cache with the given capacity in bytes.
func New(capacity int64) *Cache {
	return &Cache{capacity: capacity, order: list.New(), index: map[uint64]*list.Element{}}
}

// Capacity returns the cache size in bytes.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache) Used() int64 { return c.used }

// Access touches a working set of the given id and size; it reports
// whether the access hits (the set was fully resident). Missing sets are
// installed front-of-LRU, evicting least-recently-used sets. Sets larger
// than the cache bypass it entirely.
func (c *Cache) Access(id uint64, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	if bytes > c.capacity {
		// Streams straight through; any stale resident version of this
		// set is invalidated rather than left behind.
		c.Invalidate(id)
		c.Stats.MissBytes += bytes
		return false
	}
	if el, ok := c.index[id]; ok {
		e := el.Value.(*entry)
		if e.bytes == bytes {
			c.order.MoveToFront(el)
			c.Stats.HitBytes += bytes
			return true
		}
		// Size changed: treat as replacement.
		c.remove(el)
	}
	c.Stats.MissBytes += bytes
	for c.used+bytes > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.remove(back)
	}
	el := c.order.PushFront(&entry{id: id, bytes: bytes})
	c.index[id] = el
	c.used += bytes
	return false
}

// Contains reports whether the working set is resident (without touching
// LRU order).
func (c *Cache) Contains(id uint64) bool {
	_, ok := c.index[id]
	return ok
}

// Invalidate drops a working set (e.g. after its pages migrated).
func (c *Cache) Invalidate(id uint64) {
	if el, ok := c.index[id]; ok {
		c.remove(el)
	}
}

// Flush empties the cache.
func (c *Cache) Flush() {
	c.order.Init()
	c.index = map[uint64]*list.Element{}
	c.used = 0
}

func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.index, e.id)
	c.used -= e.bytes
}

// Group is one cache per NUMA node/socket.
type Group struct {
	caches []*Cache
}

// NewGroup creates n per-socket caches of the given capacity.
func NewGroup(n int, capacity int64) *Group {
	g := &Group{}
	for i := 0; i < n; i++ {
		g.caches = append(g.caches, New(capacity))
	}
	return g
}

// Node returns the cache of socket n.
func (g *Group) Node(n int) *Cache { return g.caches[n] }

// InvalidateAll drops a working set from every socket's cache.
func (g *Group) InvalidateAll(id uint64) {
	for _, c := range g.caches {
		c.Invalidate(id)
	}
}
