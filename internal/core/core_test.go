package core

import (
	"bytes"
	"testing"

	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

const pg = model.PageSize

type harness struct {
	eng  *sim.Engine
	k    *kern.Kernel
	proc *kern.Process
}

func newHarness(backed bool) *harness {
	eng := sim.NewEngine(11)
	k := kern.New(eng, topology.Opteron4x4(), model.Default(), backed)
	return &harness{eng: eng, k: k, proc: k.NewProcess("core-test")}
}

func (h *harness) run(t *testing.T, core topology.CoreID, fn func(tk *kern.Task)) {
	t.Helper()
	h.proc.Spawn("t0", core, fn)
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUserNTMigratesWholeRegionOnFirstTouch(t *testing.T) {
	h := newHarness(true)
	u := NewUserNT(h.proc, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(32*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 32*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.WriteData(a+5*pg, []byte("hello")); err != nil {
			t.Fatal(err)
		}
		if err := u.Mark(tk, Region{Addr: a, Len: 32 * pg}); err != nil {
			t.Fatal(err)
		}
		if u.Marked() != 1 {
			t.Fatalf("marked = %d", u.Marked())
		}
		// Thread moves to node 2, then touches ONE page: the whole
		// region must follow (the library knows the workset structure).
		tk.MigrateTo(9)
		if err := tk.Touch(a+7*pg, false); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			if n := tk.GetNode(a + vm.Addr(i)*pg); n != 2 {
				t.Fatalf("page %d on node %d, want 2 (whole-region migration)", i, n)
			}
		}
		// Region is consumed; further touches do not re-migrate.
		tk.MigrateTo(0)
		if err := tk.Touch(a, false); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 2 {
			t.Fatalf("unmarked region migrated again to %d", n)
		}
		// Data survived.
		got, err := tk.ReadData(a+5*pg, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("hello")) {
			t.Fatalf("data corrupted: %q", got)
		}
		// The library remembers the placement (§3.4).
		if n, ok := u.Placement(a); !ok || n != 2 {
			t.Fatalf("placement = %v %v", n, ok)
		}
	})
	if u.Stats.Migrations != 1 || u.Stats.PagesMigrated != 32 {
		t.Fatalf("stats = %+v", u.Stats)
	}
}

func TestUserNTOverlappingMarkRejected(t *testing.T) {
	h := newHarness(false)
	u := NewUserNT(h.proc, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		if err := u.Mark(tk, Region{Addr: a, Len: 8 * pg}); err != nil {
			t.Fatal(err)
		}
		if err := u.Mark(tk, Region{Addr: a + 4*pg, Len: 8 * pg}); err == nil {
			t.Fatal("overlapping mark accepted")
		}
		if err := u.Mark(tk, Region{Addr: a, Len: 0}); err == nil {
			t.Fatal("empty mark accepted")
		}
	})
}

func TestUserNTUnrelatedSegvStillFails(t *testing.T) {
	h := newHarness(false)
	NewUserNT(h.proc, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(pg, vm.ProtRW, vm.DefaultPolicy(), 0, "buf")
		if _, err := tk.FaultIn(a, pg, true); err != nil {
			t.Fatal(err)
		}
		if err := tk.Mprotect(a, pg, vm.ProtNone); err != nil {
			t.Fatal(err)
		}
		// Protected but never marked: handler must not "fix" it.
		if err := tk.Touch(a, false); err == nil {
			t.Fatal("touch of unmarked protected page succeeded")
		}
	})
}

func TestUserNTFasterWithPatchedMovePages(t *testing.T) {
	const pages = 4096
	run := func(patched bool) sim.Time {
		h := newHarness(false)
		u := NewUserNT(h.proc, patched)
		var dur sim.Time
		h.run(t, 4, func(tk *kern.Task) {
			a, _ := tk.Mmap(pages*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
			if _, err := tk.FaultIn(a, pages*pg, true); err != nil {
				t.Fatal(err)
			}
			if err := u.Mark(tk, Region{Addr: a, Len: pages * pg}); err != nil {
				t.Fatal(err)
			}
			start := tk.P.Now()
			if err := tk.Touch(a, false); err != nil {
				t.Fatal(err)
			}
			dur = tk.P.Now() - start
		})
		return dur
	}
	patched, unpatched := run(true), run(false)
	if unpatched < 3*patched {
		t.Fatalf("user NT: unpatched %v vs patched %v, want >3x at 4096 pages", unpatched, patched)
	}
}

func TestKernelNTMarkCounts(t *testing.T) {
	h := newHarness(false)
	kn := NewKernelNT(h.proc)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "buf")
		if _, err := tk.FaultIn(a, 10*pg, true); err != nil {
			t.Fatal(err)
		}
		n, err := kn.Mark(tk, Region{Addr: a, Len: 16 * pg})
		if err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Fatalf("marked %d present pages, want 10", n)
		}
		n, err = kn.Unmark(tk, Region{Addr: a, Len: 16 * pg})
		if err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Fatalf("unmarked %d, want 10", n)
		}
	})
}

func TestManagerSyncMode(t *testing.T) {
	h := newHarness(false)
	m := NewManager(h.proc, Sync, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "ws")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		m.Attach(tk, Region{Addr: a, Len: 16 * pg})
		if err := m.MoveThread(tk, 13); err != nil { // node 3
			t.Fatal(err)
		}
		// Sync: pages already moved, no touch needed.
		if n := tk.GetNode(a + 9*pg); n != 3 {
			t.Fatalf("sync move left page on %d", n)
		}
	})
	if m.SyncPages != 16 || m.ThreadMoves != 1 {
		t.Fatalf("stats: %+v", m)
	}
}

func TestManagerLazyKernelMode(t *testing.T) {
	h := newHarness(false)
	m := NewManager(h.proc, LazyKernel, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "ws")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		m.Attach(tk, Region{Addr: a, Len: 16 * pg})
		if err := m.MoveThread(tk, 13); err != nil {
			t.Fatal(err)
		}
		// Lazy: nothing moved yet.
		if n := tk.GetNode(a); n != 0 {
			t.Fatalf("lazy mode moved eagerly to %d", n)
		}
		// Touch half: only touched pages migrate; untouched never move
		// ("no useless migration", §3.4).
		if err := tk.AccessRange(a, 8*pg, kern.Stream, false); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 3 {
			t.Fatalf("touched page on %d", n)
		}
		if n := tk.GetNode(a + 12*pg); n != 0 {
			t.Fatalf("untouched page moved to %d", n)
		}
	})
	if h.k.Stats.NTMigrations != 8 {
		t.Fatalf("nt migrations = %d, want 8", h.k.Stats.NTMigrations)
	}
}

func TestManagerLazyUserMode(t *testing.T) {
	h := newHarness(false)
	m := NewManager(h.proc, LazyUser, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(16*pg, vm.ProtRW, vm.Bind(0), 0, "ws")
		if _, err := tk.FaultIn(a, 16*pg, true); err != nil {
			t.Fatal(err)
		}
		m.Attach(tk, Region{Addr: a, Len: 16 * pg})
		if err := m.MoveThread(tk, 13); err != nil {
			t.Fatal(err)
		}
		if n := tk.GetNode(a); n != 0 {
			t.Fatalf("lazy-user moved eagerly to %d", n)
		}
		// One touch migrates the whole workset.
		if err := tk.Touch(a+3*pg, false); err != nil {
			t.Fatal(err)
		}
		if tk.GetNode(a) != 3 || tk.GetNode(a+15*pg) != 3 {
			t.Fatal("user lazy mode did not migrate whole region")
		}
	})
}

func TestManagerSameNodeMoveIsNoop(t *testing.T) {
	h := newHarness(false)
	m := NewManager(h.proc, Sync, true)
	h.run(t, 0, func(tk *kern.Task) {
		a, _ := tk.Mmap(4*pg, vm.ProtRW, vm.Bind(2), 0, "ws")
		if _, err := tk.FaultIn(a, 4*pg, true); err != nil {
			t.Fatal(err)
		}
		m.Attach(tk, Region{Addr: a, Len: 4 * pg})
		if err := m.MoveThread(tk, 1); err != nil { // still node 0
			t.Fatal(err)
		}
		if m.ThreadMoves != 0 {
			t.Fatal("same-node move counted as migration")
		}
		if n := tk.GetNode(a); n != 2 {
			t.Fatalf("workset moved on same-node thread move: %d", n)
		}
	})
}

func TestModeString(t *testing.T) {
	if Sync.String() != "sync" || LazyKernel.String() != "lazy-kernel" || LazyUser.String() != "lazy-user" {
		t.Fatal("mode strings wrong")
	}
	if Mode(99).String() != "invalid" {
		t.Fatal("invalid mode string")
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Addr: 0x1000, Len: 0x2000}
	if r.End() != 0x3000 {
		t.Fatal("End wrong")
	}
	if !r.Contains(0x1000) || !r.Contains(0x2fff) || r.Contains(0x3000) || r.Contains(0xfff) {
		t.Fatal("Contains wrong")
	}
}
