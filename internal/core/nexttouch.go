// Package core implements the paper's contributions on top of the
// simulated kernel substrate:
//
//   - the user-space Next-touch policy (§3.2): mprotect + SIGSEGV handler
//     that migrates whole application-level regions with (patched)
//     move_pages on first touch;
//   - the kernel Next-touch policy driver (§3.3): the new madvise flag,
//     with migration happening page-by-page in the fault handler;
//   - Lazy Migration (§3.4): mark instead of synchronously migrating,
//     letting pages follow their toucher in the background;
//   - migration decision helpers (§3.4): worksets attached to threads,
//     marked on thread migration, so data follows threads with no
//     affinity bookkeeping in the scheduler.
package core

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/migrate"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Region is a half-open byte range of the application's address space.
type Region struct {
	Addr vm.Addr
	Len  int64
}

// End returns the first address past the region.
func (r Region) End() vm.Addr { return r.Addr + vm.Addr(r.Len) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a vm.Addr) bool { return a >= r.Addr && a < r.End() }

// UserNTStats counts user-space next-touch activity.
type UserNTStats struct {
	Marks         uint64
	Migrations    uint64 // handler invocations that migrated a region
	PagesMigrated uint64
}

// UserNT is the user-space Next-touch library (Fig. 1): Mark protects a
// region with PROT_NONE; the installed SIGSEGV handler migrates the
// *entire* region to the touching thread's node using move_pages, then
// restores the protection. Because the library knows the application's
// workset structure, it migrates at region granularity rather than page
// granularity, and it remembers where each region ended up.
type UserNT struct {
	Proc *kern.Process
	// Strategy selects the migration-engine generation the handler's
	// move_pages call runs on: migrate.Patched is the fixed linear
	// syscall, migrate.Unpatched reproduces the pre-2.6.29 quadratic
	// one under the same policy.
	Strategy migrate.Strategy
	// Prot is the protection restored after migration (default RW).
	Prot vm.Prot

	regions   []Region
	placement map[vm.Addr]topology.NodeID // region base -> node after migration
	Stats     UserNTStats
	prev      kern.SigHandler
}

// NewUserNT creates the library for a process and installs its SIGSEGV
// handler. patched selects the fixed linear move_pages.
func NewUserNT(proc *kern.Process, patched bool) *UserNT {
	u := &UserNT{Proc: proc, Strategy: migrate.StrategyFor(patched), Prot: vm.ProtRW, placement: map[vm.Addr]topology.NodeID{}}
	proc.OnSegv(u.handle)
	return u
}

// Mark registers the region for next-touch migration and revokes access
// so the next touch faults (mprotect to PROT_NONE).
func (u *UserNT) Mark(t *kern.Task, r Region) error {
	if r.Len <= 0 {
		return fmt.Errorf("core: mark of empty region %+v", r)
	}
	for _, q := range u.regions {
		if r.Addr < q.End() && q.Addr < r.End() {
			return fmt.Errorf("core: region %+v overlaps marked region %+v", r, q)
		}
	}
	u.Stats.Marks++
	var err error
	t.P.InCat(kern.CatMprotectMark, func() {
		err = t.Mprotect(r.Addr, r.Len, vm.ProtNone)
	})
	if err != nil {
		return err
	}
	u.regions = append(u.regions, r)
	return nil
}

// Marked returns the number of currently marked regions.
func (u *UserNT) Marked() int { return len(u.regions) }

// Placement returns the node a region was last migrated to by the
// handler, if known. This is the user-space model's extra knowledge the
// paper highlights in §3.4.
func (u *UserNT) Placement(base vm.Addr) (topology.NodeID, bool) {
	n, ok := u.placement[base]
	return n, ok
}

// handle is the SIGSEGV handler: identify the marked region, migrate it
// wholesale to the toucher's node, restore protection (Fig. 1).
func (u *UserNT) handle(t *kern.Task, info kern.SigInfo) {
	idx := -1
	for i, r := range u.regions {
		if r.Contains(info.Addr) {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Not ours: a real segfault. Leave the region untouched so the
		// kernel's retry loop surfaces the failure.
		return
	}
	r := u.regions[idx]
	u.regions = append(u.regions[:idx], u.regions[idx+1:]...)

	dst := t.Node()
	st, err := t.MovePagesRegion(r.Addr, r.Len, dst, u.Strategy)
	if err != nil {
		panic("core: user next-touch move_pages failed: " + err.Error())
	}
	moved := 0
	for _, s := range st {
		if s >= 0 {
			moved++
		}
	}
	u.Stats.Migrations++
	u.Stats.PagesMigrated += uint64(moved)
	u.placement[r.Addr] = dst

	t.P.InCat(kern.CatMprotectRest, func() {
		if err := t.Mprotect(r.Addr, r.Len, u.Prot); err != nil {
			panic("core: user next-touch restore failed: " + err.Error())
		}
	})
}

// KernelNT is the thin driver for the kernel next-touch implementation:
// marking is one madvise call; migration happens page-by-page inside the
// page-fault handler with no user-space involvement.
type KernelNT struct {
	Proc  *kern.Process
	Marks uint64
}

// NewKernelNT creates the driver.
func NewKernelNT(proc *kern.Process) *KernelNT { return &KernelNT{Proc: proc} }

// Mark marks the region Migrate-on-next-touch; returns the number of
// present pages marked.
func (kn *KernelNT) Mark(t *kern.Task, r Region) (int, error) {
	kn.Marks++
	return t.Madvise(r.Addr, r.Len, kern.AdvMigrateOnNextTouch)
}

// Unmark clears the mark.
func (kn *KernelNT) Unmark(t *kern.Task, r Region) (int, error) {
	return t.Madvise(r.Addr, r.Len, kern.AdvNormal)
}
