package core

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/topology"
)

// Mode selects how a workset follows its thread.
type Mode int

// Migration modes.
const (
	// Sync migrates the whole workset immediately with move_pages when
	// the thread moves (the basic model of §3.4).
	Sync Mode = iota
	// LazyKernel marks the workset Migrate-on-next-touch via madvise;
	// pages migrate in the page-fault handler as they are touched, and
	// untouched pages never move (§3.4, "Lazy Migration").
	LazyKernel
	// LazyUser marks the workset with the user-space next-touch library;
	// the whole workset migrates at once on first touch.
	LazyUser
)

func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case LazyKernel:
		return "lazy-kernel"
	case LazyUser:
		return "lazy-user"
	}
	return "invalid"
}

// Manager implements the paper's migration-decision model: the scheduler
// moves threads freely; the manager makes the thread's workset follow it,
// either synchronously or lazily. It removes the need for the scheduler
// to know which buffers belong to which thread (§3.4).
type Manager struct {
	Proc    *kern.Process
	Mode    Mode
	Patched bool // move_pages flavour for Sync/LazyUser

	userNT   *UserNT
	kernelNT *KernelNT
	worksets map[int][]Region // task TID -> workset

	// Stats.
	ThreadMoves uint64
	SyncPages   uint64
}

// NewManager creates a manager with the given migration mode.
func NewManager(proc *kern.Process, mode Mode, patched bool) *Manager {
	m := &Manager{Proc: proc, Mode: mode, Patched: patched, worksets: map[int][]Region{}}
	switch mode {
	case LazyUser:
		m.userNT = NewUserNT(proc, patched)
	case LazyKernel:
		m.kernelNT = NewKernelNT(proc)
	}
	return m
}

// Attach associates a workset with a thread.
func (m *Manager) Attach(t *kern.Task, regions ...Region) {
	m.worksets[t.TID] = append(m.worksets[t.TID], regions...)
}

// Workset returns the regions attached to a thread.
func (m *Manager) Workset(t *kern.Task) []Region { return m.worksets[t.TID] }

// MoveThread migrates the thread to a new core and makes its workset
// follow per the configured mode. With the lazy modes this returns
// immediately after marking; migration happens on touch.
func (m *Manager) MoveThread(t *kern.Task, core topology.CoreID) error {
	oldNode := t.Node()
	t.MigrateTo(core)
	if t.Node() == oldNode {
		return nil // same node: no data movement needed
	}
	m.ThreadMoves++
	for _, r := range m.worksets[t.TID] {
		switch m.Mode {
		case Sync:
			st, err := t.MovePagesTo(r.Addr, r.Len, t.Node(), m.Patched)
			if err != nil {
				return fmt.Errorf("core: sync workset migration: %w", err)
			}
			for _, s := range st {
				if s >= 0 {
					m.SyncPages++
				}
			}
		case LazyKernel:
			if _, err := m.kernelNT.Mark(t, r); err != nil {
				return fmt.Errorf("core: kernel NT mark: %w", err)
			}
		case LazyUser:
			if err := m.userNT.Mark(t, r); err != nil {
				return fmt.Errorf("core: user NT mark: %w", err)
			}
		}
	}
	return nil
}

// UserNT exposes the user-space library when Mode == LazyUser.
func (m *Manager) UserNT() *UserNT { return m.userNT }

// KernelNT exposes the kernel driver when Mode == LazyKernel.
func (m *Manager) KernelNT() *KernelNT { return m.kernelNT }
