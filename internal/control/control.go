// Package control hosts in-sim closed-loop policy daemons: simulated
// kernel threads that subscribe to the telemetry bus and steer tunables
// online, so static and adaptive policies compare as grid axes of the
// same scenario families.
//
// The first controller adapts the slow-tier promotion rate limit
// (model.Params.PromoteRateLimitMBps). The static limiter trades
// promotion bandwidth against slow-tier residency: too tight and hot
// pages linger on the slow tier (drops pile up), too loose and
// promotion traffic steals memory bandwidth from the application. The
// controller walks that trade-off online with an AIMD-style rule over
// two bus signals per period:
//
//   - RateLimitDrop events mean the bucket is turning away promotions
//     the balancer asked for — the limit is the bottleneck — so the
//     controller widens it (multiplicative increase, doubling toward
//     Max);
//   - a run of DecayAfterIdle consecutive periods with no drops and no
//     upward tier traffic means nothing wants promoting at the current
//     limit — so the controller decays it (halving toward Min),
//     reclaiming the headroom. Requiring a run, not a single period,
//     keeps bursty demand (hint-fault batches arrive on scan periods,
//     not continuously) from cancelling every widen one period later;
//   - a period with promotions but no drops is steady state: hold.
//
// Starting from Min, the controller only ever holds bandwidth the
// workload demonstrably asked for, so its slow-tier residency meets or
// beats every static positive limit while keeping the cap that an
// uncapped (limit-off) configuration gives up.
package control

import (
	"numamig/internal/kern"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
)

// Config tunes the adaptive rate-limit controller. Zero values select
// the defaults noted on each field.
type Config struct {
	// Period is the control interval (default: 2 x Params.KswapdPeriod,
	// so the controller reacts one octave slower than the daemons that
	// generate its signals).
	Period sim.Time
	// MinMBps floors the limit (default 1). Must stay positive: at
	// limit <= 0 the kernel bypasses the token bucket entirely and the
	// controller would go signal-blind.
	MinMBps float64
	// MaxMBps caps the limit (default 1024).
	MaxMBps float64
	// InitialMBps is the starting limit (default MinMBps).
	InitialMBps float64
	// DecayAfterIdle is how many consecutive signal-free periods must
	// pass before one decay step (default 4).
	DecayAfterIdle int
}

// Stats summarises one controller's run.
type Stats struct {
	Ticks     int     // control periods evaluated
	Widens    int     // multiplicative increases taken
	Narrows   int     // decays taken
	Drops     uint64  // RateLimitDrop events observed
	PeakMBps  float64 // widest limit reached
	FinalMBps float64 // limit at retirement
}

// Controller is one running adaptive rate-limit daemon.
type Controller struct {
	k   *kern.Kernel
	cfg Config
	cur float64

	drops   uint64 // RateLimitDrop events since the last tick
	upPages uint64 // promotion-direction TierTraffic ops since the last tick
	idle    int    // consecutive signal-free periods

	Stats Stats
}

// EnableAdaptiveRateLimit subscribes a controller to k's telemetry bus
// and spawns its daemon on k's engine. Call before Engine.Run, after
// the kernel exists; the daemon retires itself once every application
// thread has exited, so the engine drains normally. The controller
// owns Params.PromoteRateLimitMBps from the first tick on.
func EnableAdaptiveRateLimit(k *kern.Kernel, cfg Config) *Controller {
	if cfg.Period <= 0 {
		cfg.Period = 2 * k.P.KswapdPeriod
	}
	if cfg.MinMBps <= 0 {
		cfg.MinMBps = 1
	}
	if cfg.MaxMBps < cfg.MinMBps {
		cfg.MaxMBps = 1024
	}
	if cfg.InitialMBps < cfg.MinMBps {
		cfg.InitialMBps = cfg.MinMBps
	}
	if cfg.DecayAfterIdle <= 0 {
		cfg.DecayAfterIdle = 4
	}
	c := &Controller{k: k, cfg: cfg, cur: cfg.InitialMBps}
	k.P.PromoteRateLimitMBps = c.cur
	bus := k.Bus()
	bus.Subscribe(telemetry.TopicRateLimitDrop, func(ev telemetry.Event) {
		c.drops += uint64(ev.Pages)
	})
	bus.Subscribe(telemetry.TopicTierTraffic, func(ev telemetry.Event) {
		if ev.Value < 0 { // promotion direction
			c.upPages += uint64(ev.Pages)
		}
	})
	k.Eng.Spawn("rlctrl", c.daemon)
	return c
}

// Limit returns the current limit, in MB/s.
func (c *Controller) Limit() float64 { return c.cur }

// daemon is the control loop: one AIMD decision per period.
func (c *Controller) daemon(p *sim.Proc) {
	for {
		p.Sleep(c.cfg.Period)
		if c.k.LiveThreads() == 0 {
			c.Stats.FinalMBps = c.cur
			return
		}
		c.tick()
	}
}

// tick evaluates one control period over the signals accumulated since
// the last one.
func (c *Controller) tick() {
	drops, up := c.drops, c.upPages
	c.drops, c.upPages = 0, 0
	c.Stats.Ticks++
	c.Stats.Drops += drops
	switch {
	case drops > 0:
		// The bucket is the bottleneck: widen.
		c.cur *= 2
		if c.cur > c.cfg.MaxMBps {
			c.cur = c.cfg.MaxMBps
		}
		c.Stats.Widens++
		c.idle = 0
	case up == 0:
		// No demand this period. Decay only after a run of them, so a
		// bursty promoter (hint faults arrive on scan periods) does not
		// lose its widened limit between batches.
		if c.idle++; c.idle >= c.cfg.DecayAfterIdle {
			c.cur /= 2
			if c.cur < c.cfg.MinMBps {
				c.cur = c.cfg.MinMBps
			}
			c.Stats.Narrows++
			c.idle = 0
		}
	default:
		// Promotions flowed and nothing was dropped: steady state.
		c.idle = 0
	}
	if c.cur > c.Stats.PeakMBps {
		c.Stats.PeakMBps = c.cur
	}
	// The kernel's token bucket reads Params.PromoteRateLimitMBps on
	// every AllowSlowPromotion call, so the new limit takes effect
	// immediately.
	c.k.P.PromoteRateLimitMBps = c.cur
	c.Stats.FinalMBps = c.cur
}
