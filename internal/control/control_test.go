package control

import (
	"testing"

	"numamig/internal/kern"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
)

// newTestKernel builds a minimal two-node kernel for controller tests.
func newTestKernel(t *testing.T) (*sim.Engine, *kern.Kernel) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := topology.Grid(2, 1, 512*model.PageSize, 1<<20)
	k := kern.New(eng, m, model.Default(), false)
	return eng, k
}

// TestAIMDDecisions drives tick() directly through the three rule arms:
// drops widen multiplicatively, idle periods decay, steady state holds.
func TestAIMDDecisions(t *testing.T) {
	_, k := newTestKernel(t)
	c := &Controller{k: k, cfg: Config{MinMBps: 1, MaxMBps: 8, DecayAfterIdle: 2}, cur: 1}

	c.drops = 3 // bottlenecked: widen 1 -> 2
	c.tick()
	if c.cur != 2 || c.Stats.Widens != 1 {
		t.Fatalf("after drops: cur = %g widens = %d, want 2 and 1", c.cur, c.Stats.Widens)
	}
	if k.P.PromoteRateLimitMBps != 2 {
		t.Fatalf("tick did not write the new limit into Params: %g", k.P.PromoteRateLimitMBps)
	}

	c.drops, c.upPages = 0, 5 // steady state: hold
	c.tick()
	if c.cur != 2 || c.Stats.Widens != 1 || c.Stats.Narrows != 0 {
		t.Fatalf("steady state changed the limit: cur = %g", c.cur)
	}

	// One idle period: the decay hysteresis must hold the limit, so a
	// bursty promoter does not lose its widened bucket between batches.
	c.drops, c.upPages = 0, 0
	c.tick()
	if c.cur != 2 || c.Stats.Narrows != 0 {
		t.Fatalf("a single idle period decayed the limit: cur = %g", c.cur)
	}
	// Second consecutive idle period hits DecayAfterIdle: 2 -> 1.
	c.tick()
	if c.cur != 1 || c.Stats.Narrows != 1 {
		t.Fatalf("after the idle run: cur = %g narrows = %d, want 1 and 1", c.cur, c.Stats.Narrows)
	}

	c.drops = 1 // widen repeatedly: must clamp at MaxMBps
	for i := 0; i < 6; i++ {
		c.tick()
		c.drops = 1
	}
	if c.cur != 8 {
		t.Fatalf("limit escaped MaxMBps: %g", c.cur)
	}

	c.drops, c.upPages = 0, 0 // decay repeatedly: must clamp at MinMBps
	for i := 0; i < 12; i++ {
		c.tick()
	}
	if c.cur != 1 {
		t.Fatalf("limit escaped MinMBps: %g", c.cur)
	}
	if c.Stats.PeakMBps != 8 {
		t.Fatalf("PeakMBps = %g, want 8", c.Stats.PeakMBps)
	}
}

// TestEnableDefaultsAndRetirement checks the zero-config defaults, the
// bus subscriptions, and that the daemon retires once the engine has no
// live application threads (so Engine.Run drains).
func TestEnableDefaultsAndRetirement(t *testing.T) {
	eng, k := newTestKernel(t)
	c := EnableAdaptiveRateLimit(k, Config{})
	if c.cfg.Period != 2*k.P.KswapdPeriod {
		t.Errorf("default Period = %v, want 2x KswapdPeriod %v", c.cfg.Period, 2*k.P.KswapdPeriod)
	}
	if c.cfg.MinMBps != 1 || c.cfg.MaxMBps != 1024 || c.cur != 1 {
		t.Errorf("defaults: min %g max %g cur %g, want 1/1024/1", c.cfg.MinMBps, c.cfg.MaxMBps, c.cur)
	}
	if k.P.PromoteRateLimitMBps != 1 {
		t.Errorf("enable did not install the initial limit: %g", k.P.PromoteRateLimitMBps)
	}
	if !k.Bus().Active(telemetry.TopicRateLimitDrop) || !k.Bus().Active(telemetry.TopicTierTraffic) {
		t.Error("controller did not subscribe to its signal topics")
	}
	// One short-lived app thread; the daemon must notice the engine is
	// empty and retire instead of keeping Run alive forever.
	k.NewProcess("test").Spawn("app", 0, func(task *kern.Task) {
		task.P.Sleep(k.P.KswapdPeriod)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine did not drain with a live controller: %v", err)
	}
	if c.Stats.FinalMBps != c.cur {
		t.Errorf("retirement did not record FinalMBps: %g vs %g", c.Stats.FinalMBps, c.cur)
	}
}
