// Package model holds every calibrated constant of the simulated platform
// in one documented place. The values are derived from the measurements
// the paper itself reports for its experimentation host (4x quad-core
// Opteron 8347HE, 1.9 GHz, HyperTransport, Linux 2.6.27):
//
//   - kernel page copy runs at ~1 GB/s per core (§4.2),
//   - move_pages base overhead ~160 us, migrate_pages ~400 us (§4.2),
//   - patched move_pages sustains ~600 MB/s, migrate_pages ~780 MB/s,
//   - control (locking, page-table updates) is 38 % of move_pages cost and
//     20 % of the kernel next-touch cost (Fig. 6),
//   - kernel next-touch reaches ~800 MB/s even for small buffers (Fig. 5),
//   - parallel migration saturates ~1.3 GB/s with 4 threads (Fig. 7),
//   - NUMA factor 1.2-1.4 (§2.1, §4.1).
package model

import "numamig/internal/sim"

// PageSize is the small-page size of the simulated machine (4 KiB).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// HugePageSize is the huge-page size (2 MiB) used by the huge-page
// extension experiments.
const HugePageSize = 2 << 20

// PTEChunkPages is the number of PTEs covered by one page-table page; the
// kernel holds one PTE lock per such chunk (2 MiB of address space).
const PTEChunkPages = 512

// TierClass describes one memory tier's behaviour on the fluid network:
// how its node-local memory controller bandwidth and access latency
// compare to plain DRAM. Tier 0 is the fast (DRAM) tier; higher ids are
// progressively slower tiers (CXL-attached expanders, persistent
// memory). Zero-valued scales mean "same as DRAM" so a sparsely
// populated class list stays usable.
type TierClass struct {
	// Name labels the tier in diagnostics ("dram", "cxl").
	Name string
	// BandwidthScale multiplies NodeCtrlBW for nodes of this tier
	// (e.g. 0.4 for a CXL expander behind a x8 link). <= 0 means 1.
	BandwidthScale float64
	// LatencyScale multiplies the application-visible access penalty
	// for data resident on this tier (CXL adds ~2-3x DRAM latency).
	// <= 0 means 1.
	LatencyScale float64
}

// Bandwidth returns the normalized bandwidth multiplier.
func (c TierClass) Bandwidth() float64 {
	if c.BandwidthScale <= 0 {
		return 1
	}
	return c.BandwidthScale
}

// Latency returns the normalized latency multiplier.
func (c TierClass) Latency() float64 {
	if c.LatencyScale <= 0 {
		return 1
	}
	return c.LatencyScale
}

// CXLTier is a representative CXL memory-expander class: roughly 40% of
// a local DDR channel's bandwidth and 2.2x its effective latency,
// matching published Type-3 device measurements.
func CXLTier() TierClass {
	return TierClass{Name: "cxl", BandwidthScale: 0.4, LatencyScale: 2.2}
}

// Params carries all cost-model constants. Zero value is not usable; call
// Default for the paper's calibrated platform.
type Params struct {
	// ---- Bandwidths (bytes/second) ----

	// UserCopyRate is the per-core user-space copy rate (MMX/SSE
	// optimized memcpy), the top curve of Figure 4.
	UserCopyRate float64
	// KernCopyRate is the per-core kernel page-copy rate; the kernel does
	// not use vector instructions (§4.2: "pages are copied during
	// move_pages at only 1 GB/s").
	KernCopyRate float64
	// NodeCtrlBW is the per-node memory-controller bandwidth.
	NodeCtrlBW float64
	// HTLinkBW is one HyperTransport link's bandwidth.
	HTLinkBW float64
	// MigChanBW is the effective aggregate bandwidth of the kernel page
	// migration path between one pair of nodes: page-granular copies with
	// page-table maintenance interleave poorly and saturate below the raw
	// link rate. Calibrated so 4-thread lazy migration peaks ~1.3 GB/s
	// (Fig. 7).
	MigChanBW float64
	// MigChanSyncBW is the same channel as seen by the batched
	// move_pages/migrate_pages path, which additionally writes back
	// status arrays and maintains pagevecs between copies; it saturates
	// lower, which is why parallel synchronous migration tops out
	// ~50-60% above single-threaded while lazy reaches ~1.3 GB/s
	// (Fig. 7, §4.4).
	MigChanSyncBW float64

	// ---- Syscall and VM costs ----

	SyscallBase   sim.Time // bare user->kernel->user transition
	MmapBase      sim.Time // mmap/munmap setup
	MprotectBase  sim.Time // mprotect fixed cost (excl. TLB flush)
	MprotectPage  sim.Time // per-page PTE protection change
	MadviseBase   sim.Time // madvise fixed cost
	MadvisePage   sim.Time // per-page next-touch marking (PTE walk)
	TLBShootBase  sim.Time // local TLB flush
	TLBShootCore  sim.Time // per remote core IPI cost of a shootdown
	FaultBase     sim.Time // hardware fault + kernel entry + VMA walk
	DemandZero    sim.Time // allocate + zero a new anonymous page
	SignalDeliver sim.Time // SIGSEGV: kernel -> user handler entry
	SignalReturn  sim.Time // sigreturn back to the faulting instruction
	CtxSwitch     sim.Time // thread migration to another core

	// ---- move_pages / migrate_pages ----

	// MovePagesBase is the fixed syscall overhead; mostly serialized
	// setup (task lookup, per-CPU page-vec drain) modelled under the
	// global migration lock, which is why parallel calls on small
	// buffers do not scale (Fig. 7, §4.4).
	MovePagesBase       sim.Time
	MovePagesBaseLocked sim.Time // portion of MovePagesBase under mig lock
	// MovePagesCtl is per-page control: locking, page-table updates,
	// status handling. 38% of the per-page cost at 4 us/page copy
	// (Fig. 6a) gives ~2.45 us.
	MovePagesCtl sim.Time
	// MovePagesCtlLocked is the part of MovePagesCtl held under the
	// global LRU/migration lock.
	MovePagesCtlLocked sim.Time
	// UnpatchedScanEntry is the per-element cost of the unpatched
	// implementation's linear lookup over the destination-node array for
	// every page (the quadratic bug fixed in 2.6.29).
	UnpatchedScanEntry sim.Time
	// MigratePagesBase is migrate_pages' fixed cost (whole address-space
	// traversal, ~400 us per §4.2).
	MigratePagesBase sim.Time
	// MigratePagesCtl is per-page control for migrate_pages; in-order
	// traversal locks less (§4.2: better locality, ~780 MB/s).
	MigratePagesCtl       sim.Time
	MigratePagesCtlLocked sim.Time

	// ---- Kernel next-touch ----

	// NTFaultCtl is fault + migration control per page for the dedicated
	// kernel next-touch path (20% of ~5 us/page, Fig. 6b).
	NTFaultCtl       sim.Time
	NTFaultCtlLocked sim.Time // portion under the global LRU lock

	// ---- Automatic NUMA balancing (internal/autonuma) ----
	//
	// The AutoNUMA scanner is the transparent counterpart of the paper's
	// explicit next-touch policies: a per-process kernel thread
	// periodically strips access from mapped pages (like
	// change_prot_numa's PROT_NONE hinting marks) so the next touch
	// faults, reveals who uses the page, and lets the balancer promote
	// it toward its accessor through the shared migration engine.

	// NumaScanPeriod is the initial delay between scanner ticks. The
	// scanner adapts within [NumaScanPeriodMin, NumaScanPeriodMax]:
	// ticks that surface remote faults shrink the period, all-local
	// ticks back off, mirroring Linux's numa_scan_period adjustment.
	NumaScanPeriod    sim.Time
	NumaScanPeriodMin sim.Time
	NumaScanPeriodMax sim.Time
	// NumaScanPages bounds the pages examined per scanner tick (soft
	// bound, rounded up to the enclosing PTE chunk).
	NumaScanPages int
	// NumaScanBase is the fixed per-tick walk setup cost.
	NumaScanBase sim.Time
	// NumaScanPage is the per-examined-PTE arming cost (PTE walk plus
	// protection strip).
	NumaScanPage sim.Time
	// NumaHintFault is the per-page hinting-fault service cost (fault
	// entry, PTE restore, statistics update).
	NumaHintFault sim.Time
	// NumaHintCtl is the per-page migration control cost on the hinting
	// fault path; NumaHintCtlLocked is the fraction under the global LRU
	// lock.
	NumaHintCtl       sim.Time
	NumaHintCtlLocked sim.Time
	// NumaFaultThreshold is the decayed per-node fault count a task must
	// accumulate on a node's memory before its pages are promoted;
	// filters one-off touches like Linux's two-stage migration filter.
	NumaFaultThreshold float64
	// NumaFaultDecay multiplies every task's per-node fault counters
	// once per scanner tick (exponential decay of locality history).
	NumaFaultDecay float64

	// ---- Memory pressure: watermarks + kswapd-style demotion ----
	//
	// Every node carries min/low/high watermarks (fractions of its frame
	// count, mirroring the kernel's per-zone watermarks). The placement
	// layer (internal/placement) steers allocations away from nodes at
	// or below their low watermark; a per-node kswapd-style daemon
	// (internal/kern) demotes cold pages from pressured nodes to the
	// least-pressured nearby node through the shared migration engine.

	// WatermarkMinFrac is the min watermark as a fraction of a node's
	// total frames: below it only last-resort allocations land.
	WatermarkMinFrac float64
	// WatermarkLowFrac is the low watermark fraction: at or below it the
	// node counts as pressured (kswapd wakes, allocations prefer other
	// nodes, AutoNUMA stops promoting into it).
	WatermarkLowFrac float64
	// WatermarkHighFrac is the high watermark fraction: demotion stops
	// once free frames recover above it.
	WatermarkHighFrac float64
	// KswapdPeriod is the demotion daemon's wake interval.
	KswapdPeriod sim.Time
	// KswapdBatch bounds the pages demoted per engine request.
	KswapdBatch int
	// KswapdScanPage is the per-examined-PTE cost of the cold-page scan
	// (PTE walk plus accessed-bit aging).
	KswapdScanPage sim.Time
	// DemotionCtl is the per-page migration control cost on the demotion
	// path; DemotionCtlLocked is the fraction under the global LRU lock.
	DemotionCtl       sim.Time
	DemotionCtlLocked sim.Time

	// ---- Memory tiering: promotion/demotion interplay ----
	//
	// The tiering layer keeps the two opposing movers — AutoNUMA
	// promotion toward the accessor and kswapd demotion off pressured
	// nodes — from fighting over the same pages. Promotions stamp the
	// page with the current kswapd scan-period generation; the demotion
	// scan classifies pages by temperature and spreads them over near
	// and far tiers.

	// PromotionHysteresisPeriods is how many kswapd scan periods a
	// freshly promoted page is protected from demotion (the demotion
	// scan skips it entirely, not even aging it). Without it a page
	// promoted into a node hovering at its watermarks can be demoted the
	// very next period — the promote/demote ping-pong Linux's
	// nr_promote/demote hysteresis damps. 0 disables the protection.
	PromotionHysteresisPeriods int
	// FlipWindowPeriods is the ping-pong telemetry window: demoting a
	// page within this many scan periods of its promotion counts one
	// promote/demote flip (kern.Stats.PromoteDemoteFlips, the
	// promote_demote_flips grid column). Independent of the hysteresis
	// knob so disabling protection still measures the resulting churn.
	FlipWindowPeriods int
	// KswapdProactiveBatch bounds the pages demoted per period by the
	// proactive trickle: when a node sits between its low and high
	// watermarks (not yet pressured, but without headroom) kswapd
	// demotes up to this many genuinely cold pages per wake-up, keeping
	// room for allocation bursts before real pressure hits (Linux's
	// proactive reclaim / kswapd-vs-direct-reclaim split). 0 disables.
	KswapdProactiveBatch int
	// WatermarkBoostFactor arms watermark boosting under allocation
	// bursts (Linux's watermark_boost_factor): when an AllocPage
	// multi-pass falls through to the min pass (no node in the target's
	// zonelist could serve the page above its low watermark), the
	// target node's watermarks are temporarily raised by
	// (high - low) * factor frames. The boosted node reads as
	// pressured while still holding free frames, so its kswapd wakes
	// and demotes ahead of the next burst; the boost halves on every
	// kswapd period until it reaches zero. 0 disables boosting, and
	// the factor only takes effect with the demotion daemons running
	// (kern.EnableDemotion) — they are what decays a boost again.
	WatermarkBoostFactor float64

	// ---- Memory tiers (explicit CXL/slow memory) ----
	//
	// The tier map turns the flat machine into explicit memory tiers:
	// each node carries a tier id resolving to a TierClass with its own
	// bandwidth/latency multipliers on the fluid network. Tier 0 is
	// DRAM; every higher tier is slow memory, which is demotion-only
	// for the allocator — first-touch and mempolicy never place there
	// unless the policy's nodemask contains only slow nodes — and
	// placement.DemotionTarget prefers the next tier down.

	// TierClasses defines the tier classes, indexed by tier id. nil (or
	// a missing entry) means a unit class identical to DRAM.
	TierClasses []TierClass
	// NodeTier maps node id -> tier id. nil, or nodes past the end of
	// the slice, default to tier 0 (DRAM); the flat, single-tier
	// machine is therefore the zero value.
	NodeTier []int
	// PromoteRateLimitMBps rate-limits AutoNUMA promotion out of
	// slow-tier nodes, mirroring Linux's
	// numa_balancing_promote_rate_limit_MBps: each slow node owns a
	// token bucket refilled at this many MB per second of virtual
	// time (burst: one KswapdPeriod's worth, at least one page);
	// promotions that find the bucket empty are dropped and counted in
	// kern.Stats.PromoteRateLimited — the page stays put until a later
	// hinting fault retries it. <= 0 disables the limiter. Promotions
	// between fast-tier nodes are never limited.
	PromoteRateLimitMBps float64

	// ---- Migration engine retry policy ----

	// MigrateRetries is how many extra passes the migration engine makes
	// over busy (pinned) pages before reporting EBUSY, mirroring the
	// kernel's EAGAIN loop in migrate_pages().
	MigrateRetries int
	// MigrateRetryDelay is the backoff slept between retry passes.
	MigrateRetryDelay sim.Time

	// ---- Application cost model ----

	// ComputeRate is per-core useful flop rate for the LU/BLAS drivers
	// (reference-BLAS era Opteron, not vendor DGEMM).
	ComputeRate float64
	// L3Bytes is the per-socket shared L3 capacity.
	L3Bytes int64
	// StreamPenalty scales remote traffic for prefetch-friendly
	// sequential streams (latency largely hidden).
	StreamPenalty float64
	// BlockedBoost scales the NUMA distance factor for Blocked
	// (reuse/stride) remote accesses: sustained blocked-access bandwidth
	// degrades faster than the raw latency ratio because out-of-order
	// windows cannot cover the remote round trip. Effective penalty =
	// NUMAFactor * BlockedBoost.
	BlockedBoost float64
	// BatchPages is the page-batch granularity used when charging
	// aggregate per-page costs, bounding DES event counts while
	// preserving lock-contention fidelity (one PTE chunk).
	BatchPages int
}

// Default returns the parameters calibrated against the paper's host.
func Default() Params {
	return Params{
		UserCopyRate:  2.1e9,
		KernCopyRate:  1.0e9,
		NodeCtrlBW:    6.4e9,
		HTLinkBW:      8.0e9,
		MigChanBW:     1.45e9,
		MigChanSyncBW: 0.97e9,

		SyscallBase:   sim.Micros(0.15),
		MmapBase:      sim.Micros(1.0),
		MprotectBase:  sim.Micros(0.8),
		MprotectPage:  sim.Micros(0.012),
		MadviseBase:   sim.Micros(1.2),
		MadvisePage:   sim.Micros(0.06),
		TLBShootBase:  sim.Micros(1.0),
		TLBShootCore:  sim.Micros(0.4),
		FaultBase:     sim.Micros(0.35),
		DemandZero:    sim.Micros(0.9),
		SignalDeliver: sim.Micros(2.2),
		SignalReturn:  sim.Micros(0.9),
		CtxSwitch:     sim.Micros(3.0),

		MovePagesBase:         sim.Micros(158),
		MovePagesBaseLocked:   sim.Micros(120),
		MovePagesCtl:          sim.Micros(2.45),
		MovePagesCtlLocked:    sim.Micros(1.1),
		UnpatchedScanEntry:    sim.Micros(0.005),
		MigratePagesBase:      sim.Micros(400),
		MigratePagesCtl:       sim.Micros(1.25),
		MigratePagesCtlLocked: sim.Micros(0.6),

		NTFaultCtl:       sim.Micros(0.70),
		NTFaultCtlLocked: sim.Micros(0.35),

		NumaScanPeriod:     sim.Micros(250),
		NumaScanPeriodMin:  sim.Micros(125),
		NumaScanPeriodMax:  sim.Micros(8000),
		NumaScanPages:      256,
		NumaScanBase:       sim.Micros(2.0),
		NumaScanPage:       sim.Micros(0.05),
		NumaHintFault:      sim.Micros(0.45),
		NumaHintCtl:        sim.Micros(0.70),
		NumaHintCtlLocked:  sim.Micros(0.35),
		NumaFaultThreshold: 4,
		NumaFaultDecay:     0.5,

		WatermarkMinFrac:  0.02,
		WatermarkLowFrac:  0.05,
		WatermarkHighFrac: 0.08,
		KswapdPeriod:      sim.Micros(200),
		KswapdBatch:       64,
		KswapdScanPage:    sim.Micros(0.03),
		DemotionCtl:       sim.Micros(0.80),
		DemotionCtlLocked: sim.Micros(0.40),

		PromotionHysteresisPeriods: 4,
		FlipWindowPeriods:          4,
		KswapdProactiveBatch:       16,
		// Watermark boosting ships disabled: the pressure/tiering
		// families calibrate their envelopes without burst boosting;
		// scenarios that study bursts turn it on explicitly.
		WatermarkBoostFactor: 0,

		MigrateRetries:    4,
		MigrateRetryDelay: sim.Micros(25),

		ComputeRate:   1.15e9,
		L3Bytes:       2 << 20,
		StreamPenalty: 1.05,
		BlockedBoost:  1.55,
		BatchPages:    64,
	}
}

// TierOf returns the tier id of a node: the NodeTier entry, or 0 (DRAM)
// for nodes the map does not cover.
func (p Params) TierOf(node int) int {
	if node < 0 || node >= len(p.NodeTier) {
		return 0
	}
	if t := p.NodeTier[node]; t > 0 {
		return t
	}
	return 0
}

// TierClassOf returns the class of a tier id, defaulting to the unit
// (DRAM-equivalent) class for ids the class list does not cover.
func (p Params) TierClassOf(tier int) TierClass {
	if tier < 0 || tier >= len(p.TierClasses) {
		return TierClass{}
	}
	return p.TierClasses[tier]
}

// PageCopyTime returns the nominal un-contended time to copy n pages at
// the kernel copy rate; used only for sanity checks and documentation.
func (p Params) PageCopyTime(n int) sim.Time {
	return sim.FromSeconds(float64(n*PageSize) / p.KernCopyRate)
}
