package vm

import (
	"testing"
	"testing/quick"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
)

func newSpace() *Space {
	return NewSpace(mem.NewPhys(topology.Opteron4x4(), false))
}

func TestAddrHelpers(t *testing.T) {
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf boundary wrong")
	}
	if VPN(3).Base() != 3*4096 {
		t.Fatal("VPN.Base wrong")
	}
	if PageFloor(4097) != 4096 || PageCeil(4097) != 8192 || PageCeil(8192) != 8192 {
		t.Fatal("floor/ceil wrong")
	}
	if PagesIn(4095, 2) != 2 {
		t.Fatalf("PagesIn straddle = %d, want 2", PagesIn(4095, 2))
	}
	if PagesIn(0, 4096) != 1 {
		t.Fatal("PagesIn exact")
	}
	if PagesIn(0, 0) != 0 {
		t.Fatal("PagesIn empty")
	}
}

func TestProt(t *testing.T) {
	if ProtNone.Allows(false) || ProtNone.Allows(true) {
		t.Fatal("ProtNone allows access")
	}
	if !ProtRead.Allows(false) || ProtRead.Allows(true) {
		t.Fatal("ProtRead wrong")
	}
	if !ProtRW.Allows(true) {
		t.Fatal("ProtRW wrong")
	}
	if ProtRW.String() != "rw" || ProtRead.String() != "r-" {
		t.Fatal("Prot.String wrong")
	}
}

func TestPTEFlags(t *testing.T) {
	var p PTE
	if p.Present() || p.Allows(false) {
		t.Fatal("zero PTE should be absent")
	}
	p.Flags = PTEPresent
	p.SetProt(ProtRW)
	if !p.Allows(true) || !p.Allows(false) {
		t.Fatal("rw PTE should allow access")
	}
	p.Flags |= PTENextTouch
	if p.Allows(false) {
		t.Fatal("next-touch PTE must fault on access")
	}
	p.Flags &^= PTENextTouch
	p.SetProt(ProtRead)
	if p.Allows(true) {
		t.Fatal("read-only PTE allows write")
	}
	var nilPTE *PTE
	if nilPTE.Present() || nilPTE.Allows(false) {
		t.Fatal("nil PTE should deny")
	}
}

func TestPageTableSparse(t *testing.T) {
	pt := NewPageTable()
	if pt.Lookup(123) != nil {
		t.Fatal("lookup in empty table should be nil")
	}
	e := pt.Entry(123)
	e.Flags = PTEPresent
	if pt.Lookup(123) == nil || !pt.Lookup(123).Present() {
		t.Fatal("entry not visible")
	}
	if pt.NumChunks() != 1 {
		t.Fatalf("chunks = %d", pt.NumChunks())
	}
	// Far-away VPN allocates a second chunk.
	pt.Entry(1 << 20).Flags = PTEPresent
	if pt.NumChunks() != 2 {
		t.Fatalf("chunks = %d", pt.NumChunks())
	}
}

func TestPageTableForEachOrdered(t *testing.T) {
	pt := NewPageTable()
	for _, v := range []VPN{5, 600, 3, 1024} {
		pt.Entry(v).Flags = PTEPresent
	}
	var got []VPN
	pt.ForEach(0, 2000, func(v VPN, pte *PTE) { got = append(got, v) })
	want := []VPN{3, 5, 600, 1024}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Bounded walk.
	got = nil
	pt.ForEach(4, 601, func(v VPN, pte *PTE) { got = append(got, v) })
	if len(got) != 2 || got[0] != 5 || got[1] != 600 {
		t.Fatalf("bounded walk got %v", got)
	}
}

// Policies are pure data here; target resolution is covered in
// internal/placement. This test pins the data-side invariants VMA
// merging depends on.
func TestPolicyEquality(t *testing.T) {
	if !Interleave(1, 2).Equal(Interleave(1, 2)) {
		t.Fatal("Equal false negative")
	}
	if Interleave(1, 2).Equal(Interleave(2, 1)) {
		t.Fatal("Equal false positive")
	}
	wi := WeightedInterleave([]topology.NodeID{0, 1}, []int{3, 1})
	if !wi.Equal(WeightedInterleave([]topology.NodeID{0, 1}, []int{3, 1})) {
		t.Fatal("weighted Equal false negative")
	}
	if wi.Equal(WeightedInterleave([]topology.NodeID{0, 1}, []int{1, 3})) {
		t.Fatal("weighted Equal ignores weights")
	}
	if wi.Equal(Interleave(0, 1)) {
		t.Fatal("weighted Equal ignores kind")
	}
	if wi.TotalWeight() != 4 || wi.Weight(0) != 3 || wi.Weight(1) != 1 {
		t.Fatalf("weights: total=%d w0=%d w1=%d", wi.TotalWeight(), wi.Weight(0), wi.Weight(1))
	}
	// Missing or non-positive weights count as 1.
	partial := WeightedInterleave([]topology.NodeID{0, 1, 2}, []int{2})
	if partial.TotalWeight() != 4 || partial.Weight(2) != 1 {
		t.Fatalf("partial weights: total=%d", partial.TotalWeight())
	}
}

func TestMapFindUnmap(t *testing.T) {
	s := newSpace()
	a, err := s.Map(10*model.PageSize, ProtRW, DefaultPolicy(), 0, "buf")
	if err != nil {
		t.Fatal(err)
	}
	v := s.Find(a)
	if v == nil || v.Pages() != 10 || v.Label != "buf" {
		t.Fatalf("vma = %v", v)
	}
	if s.Find(a+10*model.PageSize) == v {
		t.Fatal("Find beyond end returned vma")
	}
	if err := s.Unmap(a, 10*model.PageSize); err != nil {
		t.Fatal(err)
	}
	if s.Find(a) != nil {
		t.Fatal("vma survives unmap")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoMapsDisjoint(t *testing.T) {
	s := newSpace()
	a, _ := s.Map(4*model.PageSize, ProtRW, DefaultPolicy(), 0, "a")
	b, _ := s.Map(4*model.PageSize, ProtRW, DefaultPolicy(), 0, "b")
	if a == b || (b >= a && b < a+4*model.PageSize) {
		t.Fatalf("maps overlap: %#x %#x", a, b)
	}
	if s.NumVMAs() != 2 {
		t.Fatalf("vmas = %d", s.NumVMAs())
	}
}

func TestApplySplitsAndMerges(t *testing.T) {
	s := newSpace()
	a, _ := s.Map(10*model.PageSize, ProtRW, DefaultPolicy(), 0, "buf")
	// Protect the middle 4 pages.
	mid := a + 3*model.PageSize
	err := s.Apply(mid, mid+4*model.PageSize, func(v *VMA) { v.Prot = ProtNone })
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVMAs() != 3 {
		t.Fatalf("vmas after split = %d, want 3", s.NumVMAs())
	}
	if got := s.Find(mid).Prot; got != ProtNone {
		t.Fatalf("middle prot = %v", got)
	}
	if got := s.Find(a).Prot; got != ProtRW {
		t.Fatalf("head prot = %v", got)
	}
	// Restoring merges back into one.
	err = s.Apply(mid, mid+4*model.PageSize, func(v *VMA) { v.Prot = ProtRW })
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVMAs() != 1 {
		t.Fatalf("vmas after merge = %d, want 1", s.NumVMAs())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapPartial(t *testing.T) {
	s := newSpace()
	phys := s.Phys
	a, _ := s.Map(8*model.PageSize, ProtRW, DefaultPolicy(), 0, "buf")
	// Fake-populate 8 pages on node 0.
	for i := 0; i < 8; i++ {
		f, err := phys.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		e := s.PT.Entry(PageOf(a) + VPN(i))
		e.Frame = f
		e.Flags = PTEPresent
		e.SetProt(ProtRW)
	}
	if err := s.Unmap(a+2*model.PageSize, 3*model.PageSize); err != nil {
		t.Fatal(err)
	}
	if s.NumVMAs() != 2 {
		t.Fatalf("vmas = %d, want 2", s.NumVMAs())
	}
	if got := phys.Stats(0).Allocated; got != 5 {
		t.Fatalf("allocated after partial unmap = %d, want 5", got)
	}
	if n := s.ResidentPages(a, a+8*model.PageSize); n != 5 {
		t.Fatalf("resident = %d, want 5", n)
	}
}

// Property: random sequences of Apply on sub-ranges preserve VMA
// invariants and total mapped length.
func TestApplyInvariantsProperty(t *testing.T) {
	const pages = 64
	check := func(ops []uint16) bool {
		s := newSpace()
		base, _ := s.Map(pages*model.PageSize, ProtRW, DefaultPolicy(), 0, "x")
		for _, op := range ops {
			lo := int(op>>8) % pages
			hi := lo + 1 + int(op&0xff)%(pages-lo)
			prot := ProtRW
			if op%3 == 0 {
				prot = ProtNone
			} else if op%3 == 1 {
				prot = ProtRead
			}
			start := base + Addr(lo*model.PageSize)
			end := base + Addr(hi*model.PageSize)
			if err := s.Apply(start, end, func(v *VMA) { v.Prot = prot }); err != nil {
				return false
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		var total int64
		for _, v := range s.VMAs() {
			total += v.Len()
		}
		return total == pages*model.PageSize
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHugeMapAlignment(t *testing.T) {
	s := newSpace()
	a, err := s.Map(3*model.PageSize, ProtRW, DefaultPolicy(), VMAHuge, "huge")
	if err != nil {
		t.Fatal(err)
	}
	if a%model.HugePageSize != 0 {
		t.Fatalf("huge map base %#x not 2MB aligned", a)
	}
	v := s.Find(a)
	if v.Len() != model.HugePageSize {
		t.Fatalf("huge map len = %d, want 2MB", v.Len())
	}
}
