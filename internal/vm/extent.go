package vm

import (
	"sort"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
)

// This file is the extent-run (maple-tree-style) storage layer of the
// page table. A chunk in compact mode stores its mapping as a sorted
// set of maximal runs of pages with identical (flags, age, promogen,
// node) — a multi-TB sparse mapping costs a few runs per touched chunk
// instead of 512 materialized PTEs. Runs split when a single page
// diverges (fault, migrate, protect) and re-merge when neighbours
// become identical again (the merge sweep after every range mutation,
// plus the explicit Coalesce for chunks that were materialized).
//
// The legacy per-page pointer API (Lookup, Entry, Chunk.PTE, ForEach,
// ForEachRun) hands out aliases into a dense [512]PTE array, so a chunk
// touched through it converts to dense mode first (materialize) and
// stays dense — an outstanding *PTE must remain valid indefinitely.
// Paths rewritten against the native extent API (Get, Touch, Install,
// Extents, the *Range operations, UnmapRange) never force that
// conversion, which is what keeps datacenter-scale scenarios compact.

// extRun is one maximal same-state extent inside a chunk: n pages
// starting at page offset off, all sharing flags/age/promoGen and
// backed by frames on one node (node == -1 and frames == nil for
// frameless present runs). frames[i] belongs to page off+i.
type extRun struct {
	off      uint16
	n        uint16
	flags    uint8
	age      uint8
	promoGen uint32
	node     int32
	frames   []*mem.Frame
}

func (r *extRun) end() uint16 { return r.off + r.n }

// pte materializes the value of page i (0 <= i < n) of the run.
func (r *extRun) pte(i int) PTE {
	e := PTE{Flags: r.flags, Age: r.age, PromoGen: r.promoGen}
	if r.frames != nil {
		e.Frame = r.frames[i]
	}
	return e
}

// attrEqual reports whether two runs could belong to one extent.
func (r *extRun) attrEqual(s *extRun) bool {
	return r.flags == s.flags && r.age == s.age && r.promoGen == s.promoGen &&
		r.node == s.node && (r.frames == nil) == (s.frames == nil)
}

// pteAttrEqual reports whether value e matches the run's shared state.
func (r *extRun) pteAttrEqual(e PTE) bool {
	if r.flags != e.Flags || r.age != e.Age || r.promoGen != e.PromoGen {
		return false
	}
	if e.Frame == nil {
		return r.frames == nil
	}
	return r.frames != nil && r.node == int32(e.Frame.Node)
}

// runForPTE builds a single-page run holding value e at offset off.
func runForPTE(off uint16, e PTE) extRun {
	r := extRun{off: off, n: 1, flags: e.Flags, age: e.Age, promoGen: e.PromoGen, node: -1}
	if e.Frame != nil {
		r.node = int32(e.Frame.Node)
		r.frames = []*mem.Frame{e.Frame}
	}
	return r
}

// FlagsAllow reports whether flag bits permit an access — PTE.Allows
// over a flags value instead of a pointer, usable against extent runs.
func FlagsAllow(flags uint8, write bool) bool {
	if flags&PTEPresent == 0 || flags&(PTENextTouch|PTENumaHint) != 0 {
		return false
	}
	if write {
		return flags&PTEWrite != 0
	}
	return flags&PTERead != 0
}

// findRun returns the index of the first run whose end is past off —
// the run containing off if one does, else the insertion point.
func (c *Chunk) findRun(off uint16) int {
	return sort.Search(len(c.runs), func(i int) bool { return c.runs[i].end() > off })
}

// splitAt ensures no run straddles the boundary off and returns the
// index of the first run whose start is >= off. Frame slices of the
// left half are capacity-clamped so later appends cannot clobber the
// right half's shared backing array.
func (c *Chunk) splitAt(off uint16) int {
	i := c.findRun(off)
	if i == len(c.runs) || c.runs[i].off >= off {
		return i
	}
	r := c.runs[i]
	k := off - r.off
	left, right := r, r
	left.n = k
	right.off, right.n = off, r.n-k
	if r.frames != nil {
		left.frames = r.frames[:k:k]
		right.frames = r.frames[k:]
	}
	c.runs = append(c.runs, extRun{})
	copy(c.runs[i+2:], c.runs[i+1:])
	c.runs[i] = left
	c.runs[i+1] = right
	return i + 1
}

// mergeWindow re-merges adjacent attr-equal runs around the index
// window [i, j) that a mutation just touched.
func (c *Chunk) mergeWindow(i, j int) {
	k := i - 1
	if k < 0 {
		k = 0
	}
	for k < len(c.runs)-1 && k <= j {
		a, b := &c.runs[k], &c.runs[k+1]
		if a.end() == b.off && a.attrEqual(b) {
			if a.frames != nil {
				a.frames = append(a.frames, b.frames...)
			}
			a.n += b.n
			c.runs = append(c.runs[:k+1], c.runs[k+2:]...)
			j--
			continue
		}
		k++
	}
}

// mutateRuns applies fn to every run overlapping [lo, hi), splitting
// boundary runs first and re-merging afterwards. fn must not change a
// run's off/n/frames length.
func (c *Chunk) mutateRuns(lo, hi uint16, fn func(r *extRun)) {
	i := c.splitAt(lo)
	j := c.splitAt(hi)
	for k := i; k < j; k++ {
		fn(&c.runs[k])
	}
	c.mergeWindow(i, j)
}

// removeRange deletes all run pages in [lo, hi), invoking free on each
// non-nil frame removed, and returns the number of present pages
// dropped.
func (c *Chunk) removeRange(lo, hi uint16, free func(*mem.Frame)) int {
	i := c.splitAt(lo)
	j := c.splitAt(hi)
	dropped := 0
	for k := i; k < j; k++ {
		r := &c.runs[k]
		if r.flags&PTEPresent != 0 {
			dropped += int(r.n)
		}
		if free != nil {
			for _, f := range r.frames {
				if f != nil {
					free(f)
				}
			}
		}
	}
	if i < j {
		c.runs = append(c.runs[:i], c.runs[j:]...)
	}
	return dropped
}

// install stores value e at page offset off in a compact chunk,
// splitting whatever run covered the page and merging with identical
// neighbours. A zero value clears the page (leaves a gap).
func (c *Chunk) install(off uint16, e PTE) {
	if e == (PTE{}) {
		c.removeRange(off, off+1, nil)
		return
	}
	// Fast path: the page extends an existing run with identical state —
	// the shape of a sequential demand-fault stream.
	i := c.findRun(off)
	if i < len(c.runs) && c.runs[i].off <= off {
		r := &c.runs[i]
		if r.pteAttrEqual(e) && (e.Frame == nil || r.frames[off-r.off] == e.Frame) {
			return // already stored
		}
	} else if i > 0 {
		r := &c.runs[i-1]
		if r.end() == off && r.pteAttrEqual(e) &&
			(i == len(c.runs) || c.runs[i].off > off) {
			if r.frames != nil {
				r.frames = append(r.frames, e.Frame)
			}
			r.n++
			c.mergeWindow(i-1, i)
			return
		}
	}
	lo := c.splitAt(off)
	hi := c.splitAt(off + 1)
	nr := runForPTE(off, e)
	if lo < hi {
		c.runs[lo] = nr
	} else {
		c.runs = append(c.runs, extRun{})
		copy(c.runs[lo+1:], c.runs[lo:])
		c.runs[lo] = nr
	}
	c.mergeWindow(lo, lo+1)
}

// get returns the value at page offset off (zero PTE when unmapped).
func (c *Chunk) get(off uint16) PTE {
	i := c.findRun(off)
	if i == len(c.runs) || c.runs[i].off > off {
		return PTE{}
	}
	return c.runs[i].pte(int(off - c.runs[i].off))
}

// compactFrom re-encodes a dense array as runs, or returns nil if the
// chunk does not compress (over maxRuns extents, or a non-present entry
// carrying leftover state that gaps cannot represent).
func compactFrom(d *[model.PTEChunkPages]PTE) []extRun {
	const maxRuns = 128
	var runs []extRun
	for i := 0; i < model.PTEChunkPages; i++ {
		e := d[i]
		if e == (PTE{}) {
			continue
		}
		if e.Flags == 0 {
			return nil // stateful non-present entry; stay dense
		}
		if len(runs) > 0 {
			r := &runs[len(runs)-1]
			if r.end() == uint16(i) && r.pteAttrEqual(e) {
				if r.frames != nil {
					r.frames = append(r.frames, e.Frame)
				}
				r.n++
				continue
			}
		}
		if len(runs) == maxRuns {
			return nil
		}
		runs = append(runs, runForPTE(uint16(i), e))
	}
	return runs
}

// Ext is one maximal same-state extent reported by PageTable.Extents:
// N pages from Start sharing Flags/Age/PromoGen, backed on Node (-1
// when frameless or when the extent is a gap). Gap extents (requested
// via withGaps) have Flags == 0 and cover unmapped pages, including
// whole missing chunks and huge-mapped chunks (which the 4 KiB walk
// treats as unmapped, like ForEach does).
type Ext struct {
	Start    VPN
	N        int
	Flags    uint8
	Age      uint8
	PromoGen uint32
	Node     topology.NodeID
}

// Extents walks [start, end) as maximal same-state extents in ascending
// order without materializing or creating chunks — the native read path
// of the compact representation. With withGaps set, unmapped spans are
// reported too (Flags == 0); gaps are maximal within a chunk but not
// coalesced across chunk boundaries. Returning false from fn stops the
// walk.
func (t *PageTable) Extents(start, end VPN, withGaps bool, fn func(e Ext) bool) {
	emitGap := func(s VPN, n int) bool {
		if !withGaps || n <= 0 {
			return true
		}
		return fn(Ext{Start: s, N: n, Node: -1})
	}
	for v := start; v < end; {
		ci := ChunkIndex(v)
		chunkEnd := VPN((ci + 1) * model.PTEChunkPages)
		stop := end
		if chunkEnd < stop {
			stop = chunkEnd
		}
		c := t.chunks[ci]
		if c == nil || c.Huge {
			if !emitGap(v, int(stop-v)) {
				return
			}
			v = stop
			continue
		}
		base := VPN(ci * model.PTEChunkPages)
		if c.dense == nil {
			lo, hi := uint16(v-base), uint16(stop-base)
			i := c.findRun(lo)
			at := lo
			for ; i < len(c.runs) && c.runs[i].off < hi; i++ {
				r := &c.runs[i]
				s, e := r.off, r.end()
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				if s > at && !emitGap(base+VPN(at), int(s-at)) {
					return
				}
				ext := Ext{Start: base + VPN(s), N: int(e - s), Node: topology.NodeID(r.node)}
				if r.flags&PTEPresent != 0 {
					ext.Flags, ext.Age, ext.PromoGen = r.flags, r.age, r.promoGen
					if !fn(ext) {
						return
					}
				} else if !emitGap(ext.Start, ext.N) {
					return
				}
				at = e
			}
			if at < hi && !emitGap(base+VPN(at), int(hi-at)) {
				return
			}
			v = stop
			continue
		}
		// Dense chunk: group by full attr tuple like the compact walk.
		for v < stop {
			off := int(uint64(v) % model.PTEChunkPages)
			pte := &c.dense[off]
			if pte.Flags&PTEPresent == 0 {
				gs := v
				for v < stop && c.dense[uint64(v)%model.PTEChunkPages].Flags&PTEPresent == 0 {
					v++
				}
				if !emitGap(gs, int(v-gs)) {
					return
				}
				continue
			}
			rs := v
			flags, age, gen, node := pte.Flags, pte.Age, pte.PromoGen, frameNode(pte)
			v++
			for v < stop {
				q := &c.dense[uint64(v)%model.PTEChunkPages]
				if q.Flags != flags || q.Age != age || q.PromoGen != gen || frameNode(q) != node {
					break
				}
				v++
			}
			if !fn(Ext{Start: rs, N: int(v - rs), Flags: flags, Age: age, PromoGen: gen, Node: node}) {
				return
			}
		}
	}
}

// Get returns the value of the PTE covering v (zero PTE when unmapped
// or inside a huge chunk) without materializing the chunk.
func (t *PageTable) Get(v VPN) PTE {
	c := t.chunks[ChunkIndex(v)]
	if c == nil || c.Huge {
		return PTE{}
	}
	off := uint16(uint64(v) % model.PTEChunkPages)
	if c.dense != nil {
		return c.dense[off]
	}
	return c.get(off)
}

// Install stores value e for v, creating the covering chunk, splitting
// and re-merging extents as needed. A zero e unmaps the page. Panics
// inside huge chunks like Entry.
func (t *PageTable) Install(v VPN, e PTE) {
	c := t.ChunkOrCreate(v)
	if c.Huge {
		panic("vm: 4k install inside huge-page chunk")
	}
	off := uint16(uint64(v) % model.PTEChunkPages)
	if c.dense != nil {
		c.dense[off] = e
		return
	}
	c.install(off, e)
}

// Touch performs the hardware fast path for an access to v: if the
// mapping's flag bits allow it, the accessed (and for writes dirty) bit
// is set and Touch reports true; otherwise the caller must take the
// fault path. Compact chunks only split when the touched page gains a
// bit its run does not already carry.
func (t *PageTable) Touch(v VPN, write bool) bool {
	c := t.chunks[ChunkIndex(v)]
	if c == nil || c.Huge {
		return false
	}
	off := uint16(uint64(v) % model.PTEChunkPages)
	want := PTEAccessed
	if write {
		want |= PTEDirty
	}
	if c.dense != nil {
		pte := &c.dense[off]
		if !FlagsAllow(pte.Flags, write) {
			return false
		}
		pte.Flags |= want
		return true
	}
	i := c.findRun(off)
	if i == len(c.runs) || c.runs[i].off > off {
		return false
	}
	if !FlagsAllow(c.runs[i].flags, write) {
		return false
	}
	if c.runs[i].flags&want == want {
		return true
	}
	c.mutateRuns(off, off+1, func(r *extRun) { r.flags |= want })
	return true
}

// OrFlagsRange ORs mask into the flags of every present page in
// [start, end) and returns the number of pages covered — the bulk
// access-marking step of AccessRange. Runs already carrying the mask
// are counted without being split.
func (t *PageTable) OrFlagsRange(start, end VPN, mask uint8) int {
	n := 0
	t.forRangeChunks(start, end, func(c *Chunk, base VPN, lo, hi uint16) {
		if c.dense != nil {
			for off := lo; off < hi; off++ {
				pte := &c.dense[off]
				if pte.Flags&PTEPresent != 0 {
					pte.Flags |= mask
					n++
				}
			}
			return
		}
		needs := false
		i := c.findRun(lo)
		for j := i; j < len(c.runs) && c.runs[j].off < hi; j++ {
			r := &c.runs[j]
			if r.flags&PTEPresent != 0 {
				s, e := r.off, r.end()
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				n += int(e - s)
				if r.flags&mask != mask {
					needs = true
				}
			}
		}
		if needs {
			c.mutateRuns(lo, hi, func(r *extRun) {
				if r.flags&PTEPresent != 0 {
					r.flags |= mask
				}
			})
		}
	})
	return n
}

// UnmapRange clears every mapping in [start, end), invoking free on
// each backing frame, and returns the number of present pages dropped.
// Fully-cleared chunks are detached and recycled; huge chunks are left
// to the caller (they carry their frame on the chunk itself).
func (t *PageTable) UnmapRange(start, end VPN, free func(*mem.Frame)) int {
	dropped := 0
	t.forRangeChunks(start, end, func(c *Chunk, base VPN, lo, hi uint16) {
		if c.dense != nil {
			for off := lo; off < hi; off++ {
				pte := &c.dense[off]
				if pte.Flags&PTEPresent != 0 {
					dropped++
					if free != nil && pte.Frame != nil {
						free(pte.Frame)
					}
				}
				*pte = PTE{}
			}
			return
		}
		dropped += c.removeRange(lo, hi, free)
	})
	// Recycle chunks whose whole span was cleared.
	for ci := uint64(start) / model.PTEChunkPages; ci <= uint64(end-1)/model.PTEChunkPages; ci++ {
		cs, ce := VPN(ci*model.PTEChunkPages), VPN((ci+1)*model.PTEChunkPages)
		if start <= cs && ce <= end {
			if c := t.chunks[ci]; c != nil && !c.Huge {
				t.releaseChunk(ci)
			}
		}
	}
	return dropped
}

// Coalesce re-encodes materialized (dense) chunks overlapping
// [start, end) back into compact extent form where they compress.
// Callers must guarantee no outstanding *PTE aliases into the covered
// chunks — a materialized pointer would silently detach from the table.
// Safe points are scenario boundaries and post-unmap cleanup.
func (t *PageTable) Coalesce(start, end VPN) {
	for ci := uint64(start) / model.PTEChunkPages; ci <= uint64(end-1)/model.PTEChunkPages; ci++ {
		c := t.chunks[ci]
		if c == nil || c.Huge || c.dense == nil {
			continue
		}
		runs := compactFrom(c.dense)
		if runs == nil {
			continue
		}
		releaseDense(c.dense)
		c.dense = nil
		c.runs = runs
	}
}

// forRangeChunks invokes fn once per existing non-huge chunk overlapped
// by [start, end), passing the chunk-relative offset window [lo, hi).
func (t *PageTable) forRangeChunks(start, end VPN, fn func(c *Chunk, base VPN, lo, hi uint16)) {
	for v := start; v < end; {
		ci := ChunkIndex(v)
		chunkEnd := VPN((ci + 1) * model.PTEChunkPages)
		stop := end
		if chunkEnd < stop {
			stop = chunkEnd
		}
		if c := t.chunks[ci]; c != nil && !c.Huge {
			base := VPN(ci * model.PTEChunkPages)
			fn(c, base, uint16(v-base), uint16(stop-base))
		}
		v = stop
	}
}
