package vm

import "numamig/internal/topology"

// PolicyKind selects a NUMA memory allocation policy, mirroring Linux
// mempolicies.
type PolicyKind uint8

// Policy kinds.
const (
	// PolDefault allocates on the faulting thread's local node
	// (first-touch).
	PolDefault PolicyKind = iota
	// PolBind allocates strictly on the policy's node set.
	PolBind
	// PolInterleave round-robins allocations over the node set by page
	// index, like MPOL_INTERLEAVE.
	PolInterleave
	// PolPreferred tries the first node of the set, falling back to
	// local.
	PolPreferred
)

func (k PolicyKind) String() string {
	switch k {
	case PolDefault:
		return "default"
	case PolBind:
		return "bind"
	case PolInterleave:
		return "interleave"
	case PolPreferred:
		return "preferred"
	}
	return "invalid"
}

// Policy is a NUMA allocation policy: a kind plus its node set.
type Policy struct {
	Kind  PolicyKind
	Nodes []topology.NodeID
}

// DefaultPolicy is first-touch.
func DefaultPolicy() Policy { return Policy{Kind: PolDefault} }

// Interleave builds an interleave policy over the given nodes.
func Interleave(nodes ...topology.NodeID) Policy {
	return Policy{Kind: PolInterleave, Nodes: nodes}
}

// Bind builds a strict bind policy.
func Bind(nodes ...topology.NodeID) Policy {
	return Policy{Kind: PolBind, Nodes: nodes}
}

// Preferred builds a preferred policy.
func Preferred(node topology.NodeID) Policy {
	return Policy{Kind: PolPreferred, Nodes: []topology.NodeID{node}}
}

// Target returns the node on which page v of a VMA should be allocated,
// given the faulting thread's local node. Interleaving is keyed on the
// VPN so it is stable across faults, like Linux's offset-based
// interleave.
func (p Policy) Target(v VPN, local topology.NodeID) topology.NodeID {
	switch p.Kind {
	case PolBind:
		if len(p.Nodes) == 0 {
			return local
		}
		return p.Nodes[uint64(v)%uint64(len(p.Nodes))]
	case PolInterleave:
		if len(p.Nodes) == 0 {
			return local
		}
		return p.Nodes[uint64(v)%uint64(len(p.Nodes))]
	case PolPreferred:
		if len(p.Nodes) == 0 {
			return local
		}
		return p.Nodes[0]
	default:
		return local
	}
}

// Equal reports whether two policies are identical (used for VMA merge).
func (p Policy) Equal(q Policy) bool {
	if p.Kind != q.Kind || len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	return true
}
