package vm

import "numamig/internal/topology"

// PolicyKind selects a NUMA memory allocation policy, mirroring Linux
// mempolicies. Policies are pure data here; resolving a policy to an
// allocation target (and choosing the physical node under memory
// pressure) is owned by internal/placement.
type PolicyKind uint8

// Policy kinds.
const (
	// PolDefault allocates on the faulting thread's local node
	// (first-touch).
	PolDefault PolicyKind = iota
	// PolBind allocates strictly on the policy's node set.
	PolBind
	// PolInterleave round-robins allocations over the node set by page
	// index, like MPOL_INTERLEAVE.
	PolInterleave
	// PolPreferred tries the first node of the set, falling back to
	// local.
	PolPreferred
	// PolWeightedInterleave distributes pages over the node set in
	// proportion to per-node weights, like MPOL_WEIGHTED_INTERLEAVE
	// (Linux 6.9): a node with weight 3 receives three pages for every
	// one page a weight-1 node receives.
	PolWeightedInterleave
)

func (k PolicyKind) String() string {
	switch k {
	case PolDefault:
		return "default"
	case PolBind:
		return "bind"
	case PolInterleave:
		return "interleave"
	case PolPreferred:
		return "preferred"
	case PolWeightedInterleave:
		return "weighted-interleave"
	}
	return "invalid"
}

// Policy is a NUMA allocation policy: a kind plus its node set. Weights
// parallels Nodes for PolWeightedInterleave (missing or non-positive
// entries count as weight 1).
type Policy struct {
	Kind    PolicyKind
	Nodes   []topology.NodeID
	Weights []int
}

// DefaultPolicy is first-touch.
func DefaultPolicy() Policy { return Policy{Kind: PolDefault} }

// Interleave builds an interleave policy over the given nodes.
func Interleave(nodes ...topology.NodeID) Policy {
	return Policy{Kind: PolInterleave, Nodes: nodes}
}

// Bind builds a strict bind policy.
func Bind(nodes ...topology.NodeID) Policy {
	return Policy{Kind: PolBind, Nodes: nodes}
}

// Preferred builds a preferred policy.
func Preferred(node topology.NodeID) Policy {
	return Policy{Kind: PolPreferred, Nodes: []topology.NodeID{node}}
}

// WeightedInterleave builds a weighted-interleave policy: weights[i]
// pages go to nodes[i] out of every sum(weights) pages.
func WeightedInterleave(nodes []topology.NodeID, weights []int) Policy {
	return Policy{Kind: PolWeightedInterleave, Nodes: nodes, Weights: weights}
}

// Weight returns the effective weight of the i-th policy node (1 when
// unspecified or non-positive).
func (p Policy) Weight(i int) int {
	if i < len(p.Weights) && p.Weights[i] > 0 {
		return p.Weights[i]
	}
	return 1
}

// TotalWeight returns the sum of effective weights over the node set.
func (p Policy) TotalWeight() int {
	w := 0
	for i := range p.Nodes {
		w += p.Weight(i)
	}
	return w
}

// Equal reports whether two policies are identical (used for VMA merge).
func (p Policy) Equal(q Policy) bool {
	if p.Kind != q.Kind || len(p.Nodes) != len(q.Nodes) || len(p.Weights) != len(q.Weights) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for i := range p.Weights {
		if p.Weights[i] != q.Weights[i] {
			return false
		}
	}
	return true
}
