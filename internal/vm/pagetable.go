package vm

import (
	"numamig/internal/mem"
	"numamig/internal/model"
)

// PTE flag bits.
const (
	PTEPresent   uint8 = 1 << iota // a frame is mapped
	PTERead                        // hardware read permitted
	PTEWrite                       // hardware write permitted
	PTENextTouch                   // migrate-on-next-touch mark
	PTEDirty
	PTEAccessed
	PTEPinned   // page has elevated references (DMA / get_user_pages); not migratable
	PTENumaHint // AutoNUMA hinting mark: protection stripped so the next touch faults
)

// PTE is one page-table entry.
type PTE struct {
	Frame *mem.Frame
	Flags uint8
	// Age counts the consecutive kswapd clock-scan encounters that found
	// the accessed bit clear: the scan zeroes it whenever the bit was
	// set and increments it otherwise (saturating). The demotion scan in
	// internal/kern classifies Age 1 as warm and Age >= 2 as cold; the
	// migration engine resets it when the page moves (arrival counts as
	// a fresh LRU insertion).
	Age uint8
	// PromoGen is the kswapd scan-period generation at which the page
	// was last promoted by AutoNUMA (stamped by the migration engine via
	// Request.StampPromoGen), or 0 if never promoted. Demotion
	// hysteresis skips pages promoted within the last
	// Params.PromotionHysteresisPeriods generations, and demoting a page
	// within Params.FlipWindowPeriods of its promotion counts as a
	// promote/demote flip.
	PromoGen uint32
}

// Present reports whether a frame is mapped.
func (p *PTE) Present() bool { return p != nil && p.Flags&PTEPresent != 0 }

// Allows reports whether the hardware bits permit the access. A
// next-touch-marked or NUMA-hint-marked PTE never allows access (the
// kernel cleared its permission bits so the touch faults).
func (p *PTE) Allows(write bool) bool {
	if p == nil || p.Flags&PTEPresent == 0 || p.Flags&(PTENextTouch|PTENumaHint) != 0 {
		return false
	}
	if write {
		return p.Flags&PTEWrite != 0
	}
	return p.Flags&PTERead != 0
}

// SetProt installs hardware permission bits from a Prot mask, preserving
// other flags.
func (p *PTE) SetProt(prot Prot) {
	p.Flags &^= PTERead | PTEWrite
	if prot&ProtRead != 0 {
		p.Flags |= PTERead
	}
	if prot&ProtWrite != 0 {
		p.Flags |= PTEWrite
	}
}

// Chunk is one page-table page: 512 PTEs covering 2 MiB of address space.
// The kernel takes one PTE lock per chunk, which is what limits
// parallel-migration scaling for sub-megabyte buffers (Fig. 7).
//
// A chunk may instead map one 2 MiB huge page (the paper's future-work
// extension); then HugeFrame is set and the ptes array is unused.
type Chunk struct {
	ptes      [model.PTEChunkPages]PTE
	Huge      bool
	HugeFrame *mem.Frame
	HugeFlags uint8
	// HugeFallback marks a chunk of a huge mapping that was served
	// with base pages after huge-frame exhaustion (the THP-style
	// fallback in kern.TouchHuge); it never becomes a huge unit.
	HugeFallback bool
}

// ChunkIndex returns the page-table-chunk index of a VPN.
func ChunkIndex(v VPN) uint64 { return uint64(v) / model.PTEChunkPages }

// PageTable is a sparse two-level table: chunk index -> chunk.
type PageTable struct {
	chunks map[uint64]*Chunk
}

// NewPageTable creates an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{chunks: map[uint64]*Chunk{}}
}

// Chunk returns the chunk covering v, or nil.
func (t *PageTable) Chunk(v VPN) *Chunk { return t.chunks[ChunkIndex(v)] }

// ChunkOrCreate returns the chunk covering v, creating it if needed.
func (t *PageTable) ChunkOrCreate(v VPN) *Chunk {
	ci := ChunkIndex(v)
	c := t.chunks[ci]
	if c == nil {
		c = &Chunk{}
		t.chunks[ci] = c
	}
	return c
}

// Lookup returns the PTE for v, or nil if the covering chunk does not
// exist. The returned pointer aliases table state.
func (t *PageTable) Lookup(v VPN) *PTE {
	c := t.chunks[ChunkIndex(v)]
	if c == nil || c.Huge {
		return nil
	}
	return &c.ptes[uint64(v)%model.PTEChunkPages]
}

// Entry returns the PTE for v, creating the covering chunk.
func (t *PageTable) Entry(v VPN) *PTE {
	c := t.ChunkOrCreate(v)
	if c.Huge {
		panic("vm: 4k entry requested inside huge-page chunk")
	}
	return &c.ptes[uint64(v)%model.PTEChunkPages]
}

// NumChunks returns the number of allocated page-table pages.
func (t *PageTable) NumChunks() int { return len(t.chunks) }

// ForEach visits every present 4 KiB PTE in [start, end) VPNs, in
// ascending order, without creating chunks. Huge chunks are skipped (the
// caller handles them via Chunk).
func (t *PageTable) ForEach(start, end VPN, fn func(v VPN, pte *PTE)) {
	for v := start; v < end; {
		c := t.chunks[ChunkIndex(v)]
		if c == nil || c.Huge {
			// Skip to next chunk boundary.
			v = VPN((ChunkIndex(v) + 1) * model.PTEChunkPages)
			continue
		}
		chunkEnd := VPN((ChunkIndex(v) + 1) * model.PTEChunkPages)
		stop := end
		if chunkEnd < stop {
			stop = chunkEnd
		}
		for ; v < stop; v++ {
			pte := &c.ptes[uint64(v)%model.PTEChunkPages]
			if pte.Flags&PTEPresent != 0 {
				fn(v, pte)
			}
		}
	}
}
