package vm

import (
	"sync"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
)

// PTE flag bits.
const (
	PTEPresent   uint8 = 1 << iota // a frame is mapped
	PTERead                        // hardware read permitted
	PTEWrite                       // hardware write permitted
	PTENextTouch                   // migrate-on-next-touch mark
	PTEDirty
	PTEAccessed
	PTEPinned   // page has elevated references (DMA / get_user_pages); not migratable
	PTENumaHint // AutoNUMA hinting mark: protection stripped so the next touch faults
)

// PTE is one page-table entry.
type PTE struct {
	Frame *mem.Frame
	Flags uint8
	// Age counts the consecutive kswapd clock-scan encounters that found
	// the accessed bit clear: the scan zeroes it whenever the bit was
	// set and increments it otherwise (saturating). The demotion scan in
	// internal/kern classifies Age 1 as warm and Age >= 2 as cold; the
	// migration engine resets it when the page moves (arrival counts as
	// a fresh LRU insertion).
	Age uint8
	// PromoGen is the kswapd scan-period generation at which the page
	// was last promoted by AutoNUMA (stamped by the migration engine via
	// Request.StampPromoGen), or 0 if never promoted. Demotion
	// hysteresis skips pages promoted within the last
	// Params.PromotionHysteresisPeriods generations, and demoting a page
	// within Params.FlipWindowPeriods of its promotion counts as a
	// promote/demote flip.
	PromoGen uint32
}

// Present reports whether a frame is mapped.
func (p *PTE) Present() bool { return p != nil && p.Flags&PTEPresent != 0 }

// Allows reports whether the hardware bits permit the access. A
// next-touch-marked or NUMA-hint-marked PTE never allows access (the
// kernel cleared its permission bits so the touch faults).
func (p *PTE) Allows(write bool) bool {
	if p == nil {
		return false
	}
	return FlagsAllow(p.Flags, write)
}

// SetProt installs hardware permission bits from a Prot mask, preserving
// other flags.
func (p *PTE) SetProt(prot Prot) {
	p.Flags = protFlags(p.Flags, prot)
}

// protFlags returns flags with the hardware permission bits replaced by
// the Prot mask.
func protFlags(flags uint8, prot Prot) uint8 {
	flags &^= PTERead | PTEWrite
	if prot&ProtRead != 0 {
		flags |= PTERead
	}
	if prot&ProtWrite != 0 {
		flags |= PTEWrite
	}
	return flags
}

// Chunk is one page-table page: 512 PTEs covering 2 MiB of address
// space. The kernel takes one PTE lock per chunk, which is what limits
// parallel-migration scaling for sub-megabyte buffers (Fig. 7).
//
// A chunk stores its mapping in one of two forms (see extent.go):
// compact extent runs (`runs`, the default — one record per maximal
// same-state range) or a materialized dense array (`dense`), entered
// the first time a caller takes a *PTE alias into the chunk and kept
// until Coalesce. Huge-page chunks (the paper's future-work extension)
// use neither: HugeFrame maps one 2 MiB unit.
type Chunk struct {
	runs      []extRun
	dense     *[model.PTEChunkPages]PTE
	Huge      bool
	HugeFrame *mem.Frame
	HugeFlags uint8
	// HugeFallback marks a chunk of a huge mapping that was served
	// with base pages after huge-frame exhaustion (the THP-style
	// fallback in kern.TouchHuge); it never becomes a huge unit.
	HugeFallback bool
}

// ChunkIndex returns the page-table-chunk index of a VPN.
func ChunkIndex(v VPN) uint64 { return uint64(v) / model.PTEChunkPages }

// materialize converts the chunk to dense form (no-op if already dense)
// and returns the array. The chunk stays dense afterwards: outstanding
// *PTE aliases must remain valid.
func (c *Chunk) materialize() *[model.PTEChunkPages]PTE {
	if c.dense == nil {
		d := densePool.Get().(*[model.PTEChunkPages]PTE)
		for _, r := range c.runs {
			for i := 0; i < int(r.n); i++ {
				d[int(r.off)+i] = r.pte(i)
			}
		}
		c.dense = d
		c.runs = nil
	}
	return c.dense
}

// PTE returns the chunk's entry at index i (0..model.PTEChunkPages-1),
// aliasing chunk storage — the chunk materializes to dense form if it
// was compact. Callers that already hold the chunk use it to scan the
// PTE array directly instead of re-resolving the chunk map for every
// page (PageTable.Lookup). Meaningless on huge chunks.
func (c *Chunk) PTE(i int) *PTE { return &c.materialize()[i] }

// PageTable is a sparse two-level table: chunk index -> chunk.
type PageTable struct {
	chunks map[uint64]*Chunk
}

// NewPageTable creates an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{chunks: map[uint64]*Chunk{}}
}

// Chunk returns the chunk covering v, or nil.
func (t *PageTable) Chunk(v VPN) *Chunk { return t.chunks[ChunkIndex(v)] }

// chunkPool recycles chunk headers; densePool recycles materialized PTE
// arrays. Both are zeroed before release, so Get returns clean storage
// without a clear on the allocation path.
var chunkPool = sync.Pool{New: func() interface{} { return new(Chunk) }}
var densePool = sync.Pool{New: func() interface{} { return new([model.PTEChunkPages]PTE) }}

func releaseDense(d *[model.PTEChunkPages]PTE) {
	*d = [model.PTEChunkPages]PTE{}
	densePool.Put(d)
}

// ChunkOrCreate returns the chunk covering v, creating it (compact and
// empty) if needed.
func (t *PageTable) ChunkOrCreate(v VPN) *Chunk {
	ci := ChunkIndex(v)
	c := t.chunks[ci]
	if c == nil {
		c = chunkPool.Get().(*Chunk)
		t.chunks[ci] = c
	}
	return c
}

// releaseChunk detaches the chunk at index ci and recycles it. The
// caller must have freed every frame the chunk referenced.
func (t *PageTable) releaseChunk(ci uint64) {
	c := t.chunks[ci]
	if c == nil {
		return
	}
	delete(t.chunks, ci)
	if c.dense != nil {
		releaseDense(c.dense)
	}
	*c = Chunk{}
	chunkPool.Put(c)
}

// Lookup returns the PTE for v, or nil if the covering chunk does not
// exist. The returned pointer aliases table state (materializing the
// chunk); prefer Get/Touch/Install on paths that should stay compact.
func (t *PageTable) Lookup(v VPN) *PTE {
	c := t.chunks[ChunkIndex(v)]
	if c == nil || c.Huge {
		return nil
	}
	return &c.materialize()[uint64(v)%model.PTEChunkPages]
}

// Entry returns the PTE for v, creating the covering chunk.
func (t *PageTable) Entry(v VPN) *PTE {
	c := t.ChunkOrCreate(v)
	if c.Huge {
		panic("vm: 4k entry requested inside huge-page chunk")
	}
	return &c.materialize()[uint64(v)%model.PTEChunkPages]
}

// NumChunks returns the number of allocated page-table pages.
func (t *PageTable) NumChunks() int { return len(t.chunks) }

// ForEach visits every present 4 KiB PTE in [start, end) VPNs, in
// ascending order, without creating chunks (existing compact chunks do
// materialize — the callback may mutate through the pointer). Huge
// chunks are skipped (the caller handles them via Chunk).
func (t *PageTable) ForEach(start, end VPN, fn func(v VPN, pte *PTE)) {
	for v := start; v < end; {
		c := t.chunks[ChunkIndex(v)]
		if c == nil || c.Huge {
			// Skip to next chunk boundary.
			v = VPN((ChunkIndex(v) + 1) * model.PTEChunkPages)
			continue
		}
		d := c.materialize()
		chunkEnd := VPN((ChunkIndex(v) + 1) * model.PTEChunkPages)
		stop := end
		if chunkEnd < stop {
			stop = chunkEnd
		}
		for ; v < stop; v++ {
			pte := &d[uint64(v)%model.PTEChunkPages]
			if pte.Flags&PTEPresent != 0 {
				fn(v, pte)
			}
		}
	}
}

// Run is one maximal extent of present PTEs inside a single chunk that
// share identical Flags and an identical backing node — the unit the
// bulk access, scan and hinting paths charge and mutate at, instead of
// one closure call per 4 KiB page. PTEs aliases chunk storage: index i
// covers VPN Start+i, and mutating entries through it mutates the
// table. Node is -1 when the run's PTEs carry no frame.
type Run struct {
	Start VPN
	PTEs  []PTE
	Flags uint8
	Node  topology.NodeID
}

// Len returns the page count of the run.
func (r *Run) Len() int { return len(r.PTEs) }

// PTE returns the entry covering VPN Start+i, aliasing table state.
func (r *Run) PTE(i int) *PTE { return &r.PTEs[i] }

func frameNode(pte *PTE) topology.NodeID {
	if pte.Frame == nil {
		return -1
	}
	return pte.Frame.Node
}

// ForEachRun visits every present 4 KiB PTE in [start, end) in ascending
// order, grouped into maximal same-state runs (equal Flags, equal
// backing node, contiguous VPNs, one chunk). It never creates chunks;
// huge chunks are skipped like ForEach, and compact chunks materialize
// (fn may mutate the run's PTEs). Visiting per run instead of per page
// keeps per-page work out of the hot loops: a sweep over an untouched,
// uniformly-placed gigabyte costs ~512 run visits rather than ~260k
// closure calls. fn may mutate the run's PTEs (the iterator has already
// advanced past them) but must not unmap pages or mutate chunk
// structure. Read-only walks that should not force materialization use
// Extents instead.
func (t *PageTable) ForEachRun(start, end VPN, fn func(r Run)) {
	for v := start; v < end; {
		ci := ChunkIndex(v)
		c := t.chunks[ci]
		if c == nil || c.Huge {
			v = VPN((ci + 1) * model.PTEChunkPages)
			continue
		}
		d := c.materialize()
		chunkEnd := VPN((ci + 1) * model.PTEChunkPages)
		stop := end
		if chunkEnd < stop {
			stop = chunkEnd
		}
		base := VPN(ci * model.PTEChunkPages)
		for v < stop {
			off := int(v - base)
			pte := &d[off]
			if pte.Flags&PTEPresent == 0 {
				v++
				continue
			}
			runStart := v
			flags := pte.Flags
			node := frameNode(pte)
			v++
			for v < stop {
				q := &d[int(v-base)]
				if q.Flags != flags || frameNode(q) != node {
					break
				}
				v++
			}
			fn(Run{
				Start: runStart,
				PTEs:  d[off : off+int(v-runStart)],
				Flags: flags,
				Node:  node,
			})
		}
	}
}

// SetProtRange installs hardware permission bits on every present PTE
// in [start, end) and returns the number of entries touched — the bulk
// equivalent of calling PTE.SetProt under ForEach. Compact chunks are
// updated run-at-a-time without materializing.
func (t *PageTable) SetProtRange(start, end VPN, prot Prot) int {
	n := 0
	t.forRangeChunks(start, end, func(c *Chunk, base VPN, lo, hi uint16) {
		if c.dense != nil {
			for off := lo; off < hi; off++ {
				pte := &c.dense[off]
				if pte.Flags&PTEPresent != 0 {
					pte.SetProt(prot)
					n++
				}
			}
			return
		}
		c.mutateRuns(lo, hi, func(r *extRun) {
			if r.flags&PTEPresent != 0 {
				r.flags = protFlags(r.flags, prot)
				n += int(r.n)
			}
		})
	})
	return n
}

// ArmRange arms the PTENumaHint mark on present pages of [start, end)
// that are not already next-touch-marked, hint-armed or pinned, and for
// which skip (when non-nil) returns false. It returns the pages armed
// and the present pages examined — the two counts the AutoNUMA scanner
// charges its costs by. Runs whose shared flags disqualify them are
// rejected wholesale without touching their PTEs. With a nil skip the
// walk is fully extent-native; a per-page skip (page replication
// scenarios) materializes the covered chunks.
func (t *PageTable) ArmRange(start, end VPN, skip func(v VPN) bool) (armed, examined int) {
	t.forRangeChunks(start, end, func(c *Chunk, base VPN, lo, hi uint16) {
		if c.dense == nil && skip == nil {
			c.mutateRuns(lo, hi, func(r *extRun) {
				if r.flags&PTEPresent == 0 {
					return
				}
				examined += int(r.n)
				if r.flags&(PTENextTouch|PTENumaHint|PTEPinned) != 0 {
					return
				}
				r.flags |= PTENumaHint
				armed += int(r.n)
			})
			return
		}
		d := c.materialize()
		for off := lo; off < hi; off++ {
			pte := &d[off]
			if pte.Flags&PTEPresent == 0 {
				continue
			}
			examined++
			if pte.Flags&(PTENextTouch|PTENumaHint|PTEPinned) != 0 {
				continue
			}
			if skip != nil && skip(base+VPN(off)) {
				continue
			}
			pte.Flags |= PTENumaHint
			armed++
		}
	})
	return armed, examined
}

// ClearAccessedRange clears the accessed bit (and resets the clock-scan
// age) of every present, accessed page in [start, end), returning the
// number of pages cleared — the bulk form of the clock scan's aging
// step. Runs without the accessed bit are skipped wholesale.
func (t *PageTable) ClearAccessedRange(start, end VPN) int {
	n := 0
	t.forRangeChunks(start, end, func(c *Chunk, base VPN, lo, hi uint16) {
		if c.dense != nil {
			for off := lo; off < hi; off++ {
				pte := &c.dense[off]
				if pte.Flags&(PTEPresent|PTEAccessed) == PTEPresent|PTEAccessed {
					pte.Flags &^= PTEAccessed
					pte.Age = 0
					n++
				}
			}
			return
		}
		c.mutateRuns(lo, hi, func(r *extRun) {
			if r.flags&(PTEPresent|PTEAccessed) == PTEPresent|PTEAccessed {
				r.flags &^= PTEAccessed
				r.age = 0
				n += int(r.n)
			}
		})
	})
	return n
}
