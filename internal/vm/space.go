package vm

import (
	"fmt"
	"sort"

	"numamig/internal/mem"
	"numamig/internal/model"
)

// VMAFlags carry mapping attributes.
type VMAFlags uint8

// VMA flags.
const (
	// VMAAnon marks a private anonymous mapping (the only kind the
	// paper's kernel next-touch supports; shared next-touch is our
	// extension).
	VMAAnon VMAFlags = 1 << iota
	// VMAShared marks a shared mapping.
	VMAShared
	// VMAHuge requests 2 MiB huge pages.
	VMAHuge
)

// VMA is a virtual memory area: a page-aligned address range with uniform
// protection, policy and flags.
type VMA struct {
	Start Addr // inclusive, page aligned
	End   Addr // exclusive, page aligned
	Prot  Prot
	Pol   Policy
	Flags VMAFlags
	Label string // debugging aid
}

// Len returns the byte length.
func (v *VMA) Len() int64 { return int64(v.End - v.Start) }

// Pages returns the page count.
func (v *VMA) Pages() int { return int(v.Len() / model.PageSize) }

// Contains reports whether a falls inside the VMA.
func (v *VMA) Contains(a Addr) bool { return a >= v.Start && a < v.End }

func (v *VMA) String() string {
	return fmt.Sprintf("[%#x-%#x %s %s %q]", v.Start, v.End, v.Prot, v.Pol.Kind, v.Label)
}

// attrEqual reports whether two VMAs can merge.
func (v *VMA) attrEqual(w *VMA) bool {
	return v.Prot == w.Prot && v.Flags == w.Flags && v.Pol.Equal(w.Pol) && v.Label == w.Label
}

// Space is one process address space: a sorted VMA list plus a page
// table.
type Space struct {
	vmas []*VMA
	PT   *PageTable
	brk  Addr
	Phys *mem.Phys
	// DefaultPol is the process mempolicy (set_mempolicy).
	DefaultPol Policy
	// OnFree, when non-nil, observes every 4 KiB frame an unmap
	// releases, called immediately after the frame returns to Phys —
	// the instant the allocator's gauges are consistent — so per-owner
	// ledgers (the tenancy layer) can uncharge at exactly the
	// granularity mem.Phys sees. Huge-chunk frames do not notify (their
	// footprint accounting runs through Alloc/ReleaseFootprint).
	OnFree func(*mem.Frame)
}

// mmapBase is where anonymous mappings start.
const mmapBase Addr = 0x7f00_0000_0000

// NewSpace creates an empty address space backed by phys.
func NewSpace(phys *mem.Phys) *Space {
	return &Space{PT: NewPageTable(), brk: mmapBase, Phys: phys, DefaultPol: DefaultPolicy()}
}

// NumVMAs returns the current VMA count.
func (s *Space) NumVMAs() int { return len(s.vmas) }

// VMAs returns the VMAs in address order (aliases internal state; do not
// mutate the slice).
func (s *Space) VMAs() []*VMA { return s.vmas }

// Find returns the VMA containing a, or nil.
func (s *Space) Find(a Addr) *VMA {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > a })
	if i < len(s.vmas) && s.vmas[i].Contains(a) {
		return s.vmas[i]
	}
	return nil
}

// Map creates a new anonymous mapping of length bytes (rounded up to
// pages) and returns its base address. Huge mappings are aligned to and
// rounded to 2 MiB.
func (s *Space) Map(length int64, prot Prot, pol Policy, flags VMAFlags, label string) (Addr, error) {
	if length <= 0 {
		return 0, fmt.Errorf("vm: map of non-positive length %d", length)
	}
	align := Addr(model.PageSize)
	if flags&VMAHuge != 0 {
		align = model.HugePageSize
	}
	start := (s.brk + align - 1) &^ (align - 1)
	sz := (Addr(length) + align - 1) &^ (align - 1)
	v := &VMA{Start: start, End: start + sz, Prot: prot, Pol: pol, Flags: flags | VMAAnon, Label: label}
	s.brk = v.End + Addr(model.PageSize) // guard page gap
	s.insert(v)
	return start, nil
}

func (s *Space) insert(v *VMA) {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
}

// Unmap removes [start, start+length), freeing mapped frames. Partial
// unmaps split VMAs.
func (s *Space) Unmap(start Addr, length int64) error {
	if start%model.PageSize != 0 || length <= 0 {
		return fmt.Errorf("vm: bad unmap range %#x+%d", start, length)
	}
	end := PageCeil(start + Addr(length))
	if err := s.split(start); err != nil {
		return err
	}
	if err := s.split(end); err != nil {
		return err
	}
	// After the boundary splits every VMA is entirely inside or entirely
	// outside [start, end), and the inside ones are one contiguous index
	// range — locate it by binary search and cut it out, instead of
	// filtering the whole list on every unmap.
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= start })
	j := i
	for j < len(s.vmas) && s.vmas[j].End <= end {
		s.freeRange(s.vmas[j].Start, s.vmas[j].End)
		j++
	}
	if j > i {
		s.vmas = append(s.vmas[:i], s.vmas[j:]...)
	}
	return nil
}

// freeRange releases all frames mapped in [start, end).
func (s *Space) freeRange(start, end Addr) {
	sv, ev := PageOf(start), PageOf(end-1)+1
	// Extent-native clear: frees frames run-at-a-time, recycles
	// fully-covered 4 KiB chunks, never materializes compact ones.
	free := s.Phys.Free
	if s.OnFree != nil {
		onFree := s.OnFree
		free = func(f *mem.Frame) {
			s.Phys.Free(f)
			onFree(f)
		}
	}
	s.PT.UnmapRange(sv, ev, free)
	// Huge chunks carry their frame on the chunk itself; surviving
	// partial chunks of huge mappings also drop their fallback mark.
	for ci := uint64(sv) / model.PTEChunkPages; ci <= uint64(ev-1)/model.PTEChunkPages; ci++ {
		c := s.PT.chunks[ci]
		if c == nil {
			continue
		}
		if c.Huge && c.HugeFrame != nil {
			s.Phys.Free(c.HugeFrame)
			c.HugeFrame = nil
			c.HugeFlags = 0
		}
		c.HugeFallback = false
		cs, ce := VPN(ci*model.PTEChunkPages), VPN((ci+1)*model.PTEChunkPages)
		if sv <= cs && ce <= ev {
			s.PT.releaseChunk(ci)
		}
	}
}

// split ensures a VMA boundary at address a (if a falls inside a VMA).
func (s *Space) split(a Addr) error {
	if a%model.PageSize != 0 {
		return fmt.Errorf("vm: split at unaligned address %#x", a)
	}
	v := s.Find(a)
	if v == nil || v.Start == a {
		return nil
	}
	tail := *v
	tail.Start = a
	v.End = a
	s.insert(&tail)
	return nil
}

// Apply modifies all VMAs overlapping [start, end), splitting at the
// boundaries first, then calling fn on each covered VMA, then re-merging
// identical neighbours. Used by mprotect, mbind, and madvise.
func (s *Space) Apply(start, end Addr, fn func(*VMA)) error {
	if start >= end {
		return fmt.Errorf("vm: empty apply range %#x-%#x", start, end)
	}
	if err := s.split(start); err != nil {
		return err
	}
	if err := s.split(end); err != nil {
		return err
	}
	for _, v := range s.vmas {
		if v.Start >= end || v.End <= start {
			continue
		}
		fn(v)
	}
	s.merge()
	return nil
}

// merge coalesces adjacent VMAs with identical attributes.
func (s *Space) merge() {
	if len(s.vmas) < 2 {
		return
	}
	out := s.vmas[:1]
	for _, v := range s.vmas[1:] {
		last := out[len(out)-1]
		if last.End == v.Start && last.attrEqual(v) {
			last.End = v.End
			continue
		}
		out = append(out, v)
	}
	s.vmas = out
}

// CheckInvariants verifies the VMA list is sorted, non-overlapping and
// page-aligned; used by tests.
func (s *Space) CheckInvariants() error {
	for i, v := range s.vmas {
		if v.Start >= v.End {
			return fmt.Errorf("vm: empty vma %v", v)
		}
		if v.Start%model.PageSize != 0 || v.End%model.PageSize != 0 {
			return fmt.Errorf("vm: unaligned vma %v", v)
		}
		if i > 0 && s.vmas[i-1].End > v.Start {
			return fmt.Errorf("vm: overlap %v / %v", s.vmas[i-1], v)
		}
	}
	return nil
}

// ResidentPages counts present pages in [start, end).
func (s *Space) ResidentPages(start, end Addr) int {
	n := 0
	s.PT.Extents(PageOf(start), PageOf(end-1)+1, false, func(e Ext) bool {
		n += e.N
		return true
	})
	return n
}
