// Package vm implements the virtual-memory data structures of the
// simulated kernel: sparse two-level page tables with PTE flag bits
// (including the Migrate-on-next-touch mark), VMAs with split/merge,
// NUMA memory policies, and whole address spaces. The package is pure
// data structure; all timing costs are charged by package kern.
package vm

import "numamig/internal/model"

// Addr is a virtual address in a simulated address space.
type Addr uint64

// VPN is a virtual page number (Addr >> PageShift).
type VPN uint64

// PageOf returns the page number containing a.
func PageOf(a Addr) VPN { return VPN(a >> model.PageShift) }

// Base returns the first address of page v.
func (v VPN) Base() Addr { return Addr(v) << model.PageShift }

// PageFloor rounds a down to a page boundary.
func PageFloor(a Addr) Addr { return a &^ (model.PageSize - 1) }

// PageCeil rounds a up to a page boundary.
func PageCeil(a Addr) Addr { return (a + model.PageSize - 1) &^ (model.PageSize - 1) }

// PagesIn returns the number of pages covered by [start, start+length).
func PagesIn(start Addr, length int64) int {
	if length <= 0 {
		return 0
	}
	first := PageOf(start)
	last := PageOf(start + Addr(length) - 1)
	return int(last-first) + 1
}

// Prot is a protection mask.
type Prot uint8

// Protection bits.
const (
	ProtRead  Prot = 1 << iota // readable
	ProtWrite                  // writable
	ProtNone  Prot = 0         // no access
)

// ProtRW is read+write.
const ProtRW = ProtRead | ProtWrite

// Allows reports whether p permits the requested access.
func (p Prot) Allows(write bool) bool {
	if write {
		return p&ProtWrite != 0
	}
	return p&ProtRead != 0
}

func (p Prot) String() string {
	s := [2]byte{'-', '-'}
	if p&ProtRead != 0 {
		s[0] = 'r'
	}
	if p&ProtWrite != 0 {
		s[1] = 'w'
	}
	return string(s[:])
}
