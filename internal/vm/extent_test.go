package vm

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"numamig/internal/mem"
	"numamig/internal/model"
	"numamig/internal/topology"
)

// refTable is the dense reference model the extent store is checked
// against: a plain map of nonzero PTE values.
type refTable struct {
	m map[VPN]PTE
}

func newRef() *refTable { return &refTable{m: map[VPN]PTE{}} }

func (r *refTable) install(v VPN, e PTE) {
	if e == (PTE{}) {
		delete(r.m, v)
		return
	}
	r.m[v] = e
}

func (r *refTable) get(v VPN) PTE { return r.m[v] }

func (r *refTable) setProtRange(start, end VPN, prot Prot) int {
	n := 0
	for v := start; v < end; v++ {
		if e, ok := r.m[v]; ok && e.Flags&PTEPresent != 0 {
			e.SetProt(prot)
			r.m[v] = e
			n++
		}
	}
	return n
}

func (r *refTable) armRange(start, end VPN) (armed, examined int) {
	for v := start; v < end; v++ {
		e, ok := r.m[v]
		if !ok || e.Flags&PTEPresent == 0 {
			continue
		}
		examined++
		if e.Flags&(PTENextTouch|PTENumaHint|PTEPinned) != 0 {
			continue
		}
		e.Flags |= PTENumaHint
		r.m[v] = e
		armed++
	}
	return
}

func (r *refTable) clearAccessedRange(start, end VPN) int {
	n := 0
	for v := start; v < end; v++ {
		if e, ok := r.m[v]; ok && e.Flags&(PTEPresent|PTEAccessed) == PTEPresent|PTEAccessed {
			e.Flags &^= PTEAccessed
			e.Age = 0
			r.m[v] = e
			n++
		}
	}
	return n
}

func (r *refTable) orFlagsRange(start, end VPN, mask uint8) int {
	n := 0
	for v := start; v < end; v++ {
		if e, ok := r.m[v]; ok && e.Flags&PTEPresent != 0 {
			e.Flags |= mask
			r.m[v] = e
			n++
		}
	}
	return n
}

func (r *refTable) unmapRange(start, end VPN) int {
	n := 0
	for v := start; v < end; v++ {
		if e, ok := r.m[v]; ok {
			if e.Flags&PTEPresent != 0 {
				n++
			}
			delete(r.m, v)
		}
	}
	return n
}

func (r *refTable) touch(v VPN, write bool) bool {
	e, ok := r.m[v]
	if !ok || !FlagsAllow(e.Flags, write) {
		return false
	}
	e.Flags |= PTEAccessed
	if write {
		e.Flags |= PTEDirty
	}
	r.m[v] = e
	return true
}

// compare asserts the extent table and the reference agree exactly over
// [start, end): same present visit set via ForEach is destructive to
// compactness (it materializes), so the walk uses Extents + Get.
func compare(t *testing.T, pt *PageTable, ref *refTable, start, end VPN, tag string) {
	t.Helper()
	// Extents must reproduce every nonzero present entry with exact state.
	got := map[VPN]PTE{}
	pt.Extents(start, end, false, func(e Ext) bool {
		for i := 0; i < e.N; i++ {
			v := e.Start + VPN(i)
			p := pt.Get(v)
			if p.Flags != e.Flags || p.Age != e.Age || p.PromoGen != e.PromoGen {
				t.Fatalf("%s: Get(%d) = %+v disagrees with extent %+v", tag, v, p, e)
			}
			if p.Frame != nil && p.Frame.Node != e.Node {
				t.Fatalf("%s: extent node %d but frame node %d at %d", tag, e.Node, p.Frame.Node, v)
			}
			got[v] = p
		}
		return true
	})
	want := map[VPN]PTE{}
	for v, e := range ref.m {
		if v >= start && v < end && e.Flags&PTEPresent != 0 {
			want[v] = e
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d present pages, reference has %d", tag, len(got), len(want))
	}
	for v, e := range want {
		if got[v] != e {
			t.Fatalf("%s: page %d = %+v, reference %+v", tag, v, got[v], e)
		}
	}
	// Extents must be ascending, non-overlapping, maximal-within-chunk.
	lastEnd := VPN(0)
	pt.Extents(start, end, true, func(e Ext) bool {
		if e.Start < lastEnd {
			t.Fatalf("%s: extent at %d overlaps previous end %d", tag, e.Start, lastEnd)
		}
		if e.N <= 0 {
			t.Fatalf("%s: empty extent at %d", tag, e.Start)
		}
		lastEnd = e.Start + VPN(e.N)
		return true
	})
}

// TestExtentDifferential drives the extent-stored page table and a dense
// reference model through randomized fault/protect/arm/age/unmap traces
// — including forced materialization (Lookup) and re-compaction
// (Coalesce) — asserting identical visible state and identical returned
// counts after every operation.
func TestExtentDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	frames := make([]*mem.Frame, 4)
	for i := range frames {
		frames[i] = &mem.Frame{Node: topology.NodeID(i), PFN: uint64(i)}
	}
	const span = 3 * model.PTEChunkPages // three chunks
	randVPN := func() VPN { return VPN(rng.Intn(span)) }
	randRange := func() (VPN, VPN) {
		a, b := randVPN(), randVPN()
		if a > b {
			a, b = b, a
		}
		return a, b + 1
	}
	randPTE := func() PTE {
		e := PTE{Flags: PTEPresent | PTERead}
		if rng.Intn(2) == 0 {
			e.Flags |= PTEWrite
		}
		switch rng.Intn(4) {
		case 0:
			e.Flags |= PTEAccessed
		case 1:
			e.Flags |= PTENumaHint
		case 2:
			e.Flags |= PTEPinned
		}
		if rng.Intn(4) > 0 {
			e.Frame = frames[rng.Intn(len(frames))]
		}
		if rng.Intn(3) == 0 {
			e.Age = uint8(rng.Intn(3))
		}
		if rng.Intn(5) == 0 {
			e.PromoGen = uint32(rng.Intn(3))
		}
		return e
	}

	pt := NewPageTable()
	ref := newRef()
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); op {
		case 0, 1, 2: // single-page install (fault/migrate/clear)
			v := randVPN()
			var e PTE
			if rng.Intn(5) > 0 {
				e = randPTE()
			}
			pt.Install(v, e)
			ref.install(v, e)
		case 3: // run install: sequential demand-fault burst
			v := randVPN()
			n := rng.Intn(64) + 1
			e := randPTE()
			for i := 0; i < n && v+VPN(i) < span; i++ {
				pt.Install(v+VPN(i), e)
				ref.install(v+VPN(i), e)
			}
		case 4:
			a, b := randRange()
			prot := Prot(rng.Intn(4))
			if got, want := pt.SetProtRange(a, b, prot), ref.setProtRange(a, b, prot); got != want {
				t.Fatalf("step %d: SetProtRange = %d, reference %d", step, got, want)
			}
		case 5:
			a, b := randRange()
			gotA, gotE := pt.ArmRange(a, b, nil)
			wantA, wantE := ref.armRange(a, b)
			if gotA != wantA || gotE != wantE {
				t.Fatalf("step %d: ArmRange = (%d,%d), reference (%d,%d)", step, gotA, gotE, wantA, wantE)
			}
		case 6:
			a, b := randRange()
			if got, want := pt.ClearAccessedRange(a, b), ref.clearAccessedRange(a, b); got != want {
				t.Fatalf("step %d: ClearAccessedRange = %d, reference %d", step, got, want)
			}
		case 7:
			a, b := randRange()
			if got, want := pt.UnmapRange(a, b, nil), ref.unmapRange(a, b); got != want {
				t.Fatalf("step %d: UnmapRange = %d, reference %d", step, got, want)
			}
		case 8:
			v := randVPN()
			write := rng.Intn(2) == 0
			if got, want := pt.Touch(v, write), ref.touch(v, write); got != want {
				t.Fatalf("step %d: Touch(%d,%v) = %v, reference %v", step, v, write, got, want)
			}
		case 9:
			a, b := randRange()
			mask := uint8(PTEAccessed)
			if rng.Intn(2) == 0 {
				mask |= PTEDirty
			}
			if got, want := pt.OrFlagsRange(a, b, mask), ref.orFlagsRange(a, b, mask); got != want {
				t.Fatalf("step %d: OrFlagsRange = %d, reference %d", step, got, want)
			}
		}
		// Randomly flip representation modes mid-trace.
		if rng.Intn(50) == 0 {
			pt.Lookup(randVPN()) // force-materialize one chunk
		}
		if rng.Intn(50) == 0 {
			pt.Coalesce(0, span) // re-compact everything compactable
		}
		if step%500 == 0 {
			compare(t, pt, ref, 0, span, "periodic")
		}
	}
	compare(t, pt, ref, 0, span, "final")

	// The two legacy view walks must agree with the reference too (they
	// materialize, so they run last).
	var visited []VPN
	pt.ForEach(0, span, func(v VPN, pte *PTE) {
		visited = append(visited, v)
		if *pte != ref.m[v] {
			t.Fatalf("ForEach(%d) = %+v, reference %+v", v, *pte, ref.m[v])
		}
	})
	var present []VPN
	for v, e := range ref.m {
		if e.Flags&PTEPresent != 0 {
			present = append(present, v)
		}
	}
	sort.Slice(present, func(i, j int) bool { return present[i] < present[j] })
	if len(visited) != len(present) {
		t.Fatalf("ForEach visited %d pages, reference has %d present", len(visited), len(present))
	}
	for i := range visited {
		if visited[i] != present[i] {
			t.Fatalf("ForEach visit #%d = %d, reference %d", i, visited[i], present[i])
		}
	}
	runs := 0
	pt.ForEachRun(0, span, func(r Run) { runs += r.Len() })
	if runs != len(present) {
		t.Fatalf("ForEachRun covered %d pages, reference has %d", runs, len(present))
	}
}

// TestExtentSparseFootprint maps one page per chunk across a 4 TB
// virtual span and asserts the compact representation stays orders of
// magnitude below dense chunks: a materialized chunk costs ~12 KiB of
// PTE array, a compact one a header plus one run (~150 B measured). The
// same mapping with dense storage would be ~25 GB of PTE arrays.
func TestExtentSparseFootprint(t *testing.T) {
	const chunkBytes = model.PTEChunkPages * model.PageSize
	const chunks = 4 << 40 / chunkBytes // 4 TB span, one page per 2 MiB chunk

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	pt := NewPageTable()
	for i := 0; i < chunks; i++ {
		pt.Install(VPN(i*model.PTEChunkPages), PTE{Flags: PTEPresent | PTERead})
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	bytes := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	perChunk := bytes / chunks
	t.Logf("4TB sparse mapping: %d chunks, %d bytes total, %d bytes/chunk", chunks, bytes, perChunk)
	if pt.NumChunks() != chunks {
		t.Fatalf("NumChunks = %d, want %d", pt.NumChunks(), chunks)
	}
	// Dense chunks would cost 512*24 B = 12 KiB each; require at least a
	// 10x win to guard against accidental materialization on this path.
	if perChunk > 1200 {
		t.Fatalf("sparse mapping costs %d bytes/chunk; compact representation should stay under 1200", perChunk)
	}
	// The mapping must still read back correctly.
	n := 0
	pt.Extents(0, VPN(chunks*model.PTEChunkPages), false, func(e Ext) bool { n += e.N; return true })
	if n != chunks {
		t.Fatalf("resident pages = %d, want %d", n, chunks)
	}
	runtime.KeepAlive(pt)
}
