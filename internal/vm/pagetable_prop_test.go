package vm

import (
	"math/rand"
	"testing"

	"numamig/internal/mem"
	"numamig/internal/topology"
)

// buildRandomTable populates a fresh page table with a randomized
// mixture of absent pages, present pages with varying flags and
// backing nodes, and gaps spanning chunk boundaries — the state space
// the extent iterator has to group correctly.
func buildRandomTable(rng *rand.Rand, npages int) *PageTable {
	t := NewPageTable()
	flagSets := []uint8{
		PTEPresent | PTERead,
		PTEPresent | PTERead | PTEWrite,
		PTEPresent | PTERead | PTEAccessed,
		PTEPresent | PTERead | PTEWrite | PTEDirty | PTEAccessed,
		PTEPresent | PTENumaHint,
		PTEPresent | PTENextTouch,
		PTEPresent | PTERead | PTEPinned,
	}
	// Walk in variable-length segments so same-state extents of many
	// lengths arise, including ones that straddle chunk boundaries.
	for v := VPN(0); v < VPN(npages); {
		segLen := 1 + rng.Intn(700) // can exceed a 512-page chunk
		state := rng.Intn(len(flagSets) + 2)
		for i := 0; i < segLen && v < VPN(npages); i++ {
			if state >= len(flagSets) {
				v++ // absent segment: leave the PTE (or chunk) unmapped
				continue
			}
			pte := t.Entry(v)
			pte.Flags = flagSets[state]
			if rng.Intn(8) != 0 { // some present pages carry no frame
				pte.Frame = &mem.Frame{Node: topology.NodeID(rng.Intn(4))}
			}
			pte.Age = uint8(rng.Intn(3))
			v++
		}
	}
	return t
}

type pteState struct {
	flags uint8
	node  topology.NodeID
	age   uint8
}

func snapshot(t *PageTable, start, end VPN) map[VPN]pteState {
	m := map[VPN]pteState{}
	t.ForEach(start, end, func(v VPN, pte *PTE) {
		node := topology.NodeID(-1)
		if pte.Frame != nil {
			node = pte.Frame.Node
		}
		m[v] = pteState{flags: pte.Flags, node: node, age: pte.Age}
	})
	return m
}

// ForEachRun must visit exactly the pages ForEach visits, in the same
// ascending order, with every run internally uniform (one chunk, equal
// flags, equal node) and maximal state reported on the Run header.
func TestForEachRunMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		npages := 256 + rng.Intn(4096)
		pt := buildRandomTable(rng, npages)
		start := VPN(rng.Intn(npages / 2))
		end := start + VPN(rng.Intn(npages))

		var perPage []VPN
		pt.ForEach(start, end, func(v VPN, pte *PTE) {
			perPage = append(perPage, v)
		})

		var perRun []VPN
		pt.ForEachRun(start, end, func(r Run) {
			if r.Len() == 0 {
				t.Fatal("empty run")
			}
			if ChunkIndex(r.Start) != ChunkIndex(r.Start+VPN(r.Len()-1)) {
				t.Fatalf("run %d+%d crosses a chunk boundary", r.Start, r.Len())
			}
			for i := 0; i < r.Len(); i++ {
				pte := r.PTE(i)
				if pte.Flags != r.Flags {
					t.Fatalf("run at %d: PTE %d flags %x, run header %x", r.Start, i, pte.Flags, r.Flags)
				}
				node := topology.NodeID(-1)
				if pte.Frame != nil {
					node = pte.Frame.Node
				}
				if node != r.Node {
					t.Fatalf("run at %d: PTE %d node %d, run header %d", r.Start, i, node, r.Node)
				}
				perRun = append(perRun, r.Start+VPN(i))
			}
		})

		if len(perPage) != len(perRun) {
			t.Fatalf("trial %d: ForEach visited %d pages, ForEachRun %d", trial, len(perPage), len(perRun))
		}
		for i := range perPage {
			if perPage[i] != perRun[i] {
				t.Fatalf("trial %d: visit %d is %d per-page but %d per-run", trial, i, perPage[i], perRun[i])
			}
		}
	}
}

// The bulk mutators must leave the table in exactly the state the
// equivalent per-page ForEach loop produces, and report the same
// charged counts.
func TestBulkMutatorsMatchPerPage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		npages := 256 + rng.Intn(4096)
		seed := rng.Int63()
		start := VPN(rng.Intn(npages / 2))
		end := start + VPN(rng.Intn(npages))
		// Two identical tables: mutate one with the bulk op, the other
		// with the per-page reference loop, then diff the snapshots.
		bulk := buildRandomTable(rand.New(rand.NewSource(seed)), npages)
		ref := buildRandomTable(rand.New(rand.NewSource(seed)), npages)

		switch trial % 3 {
		case 0:
			prot := []Prot{0, ProtRead, ProtRW}[rng.Intn(3)]
			gotN := bulk.SetProtRange(start, end, prot)
			wantN := 0
			ref.ForEach(start, end, func(v VPN, pte *PTE) {
				pte.SetProt(prot)
				wantN++
			})
			if gotN != wantN {
				t.Fatalf("trial %d: SetProtRange touched %d, reference %d", trial, gotN, wantN)
			}
		case 1:
			skip := func(v VPN) bool { return v%5 == 0 }
			gotArmed, gotExamined := bulk.ArmRange(start, end, skip)
			wantArmed, wantExamined := 0, 0
			ref.ForEach(start, end, func(v VPN, pte *PTE) {
				wantExamined++
				if pte.Flags&(PTENextTouch|PTENumaHint|PTEPinned) != 0 || skip(v) {
					return
				}
				pte.Flags |= PTENumaHint
				wantArmed++
			})
			if gotArmed != wantArmed || gotExamined != wantExamined {
				t.Fatalf("trial %d: ArmRange = (%d, %d), reference (%d, %d)",
					trial, gotArmed, gotExamined, wantArmed, wantExamined)
			}
		case 2:
			gotN := bulk.ClearAccessedRange(start, end)
			wantN := 0
			ref.ForEach(start, end, func(v VPN, pte *PTE) {
				if pte.Flags&PTEAccessed == 0 {
					return
				}
				pte.Flags &^= PTEAccessed
				pte.Age = 0
				wantN++
			})
			if gotN != wantN {
				t.Fatalf("trial %d: ClearAccessedRange cleared %d, reference %d", trial, gotN, wantN)
			}
		}

		got := snapshot(bulk, 0, VPN(npages))
		want := snapshot(ref, 0, VPN(npages))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d present pages after bulk op, %d after reference", trial, len(got), len(want))
		}
		for v, ws := range want {
			if gs, ok := got[v]; !ok || gs != ws {
				t.Fatalf("trial %d: page %d diverged: bulk %+v, reference %+v", trial, v, got[v], ws)
			}
		}
	}
}
