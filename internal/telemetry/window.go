package telemetry

import (
	"sort"

	"numamig/internal/sim"
)

// WindowStats is the summary a Windows aggregator produces after a run:
// the windowed grid columns of the tiered/tiering families.
type WindowStats struct {
	// Windows is the number of closed windows the run spanned.
	Windows int
	// FaultRateHz is the peak per-window page-fault rate, in
	// faults/second of virtual time.
	FaultRateHz float64
	// MigrateBWPeakMBps is the peak per-window migration-engine
	// bandwidth (MigrateBatch bytes), in MB/s of virtual time.
	MigrateBWPeakMBps float64
	// P99SlowResident is the 99th percentile of the slow-tier
	// residency gauge sampled at each window close, in pages.
	P99SlowResident float64
}

// Windows turns the event stream into fixed-width time windows and
// aggregates per-window fault and migration-bandwidth rates, plus a
// caller-supplied gauge (slow-tier residency) sampled once per closed
// window. It subscribes to every topic so any event — not only the
// ones it accumulates — can close a window, which keeps the sampling
// grid dense whenever the system is doing anything at all.
type Windows struct {
	width sim.Time
	gauge func() int64

	started   bool
	winIdx    int64
	faults    int
	bytes     float64
	peakFault int
	peakBytes float64
	samples   []int64
	windows   int
}

// NewWindows attaches a window aggregator of the given width to b.
// gauge is sampled at each window close (may be nil).
func NewWindows(b *Bus, width sim.Time, gauge func() int64) *Windows {
	if width <= 0 {
		width = sim.FromSeconds(0.001)
	}
	w := &Windows{width: width, gauge: gauge}
	b.SubscribeAll(w.observe)
	return w
}

func (w *Windows) observe(ev Event) {
	idx := int64(ev.Time / w.width)
	if !w.started {
		w.started = true
		w.winIdx = idx
	} else if idx != w.winIdx {
		// Close every window up to idx: the one that accumulated, then
		// one empty window per gap so the gauge sampling grid stays
		// uniform across idle stretches.
		w.close()
		for g := w.winIdx + 1; g < idx; g++ {
			w.sample()
			w.windows++
		}
		w.winIdx = idx
	}
	switch ev.Topic {
	case TopicPageFault:
		w.faults += ev.Pages
	case TopicMigrateBatch:
		w.bytes += ev.Bytes
	}
}

// close finishes the current window: fold its accumulators into the
// peaks, sample the gauge, reset.
func (w *Windows) close() {
	if w.faults > w.peakFault {
		w.peakFault = w.faults
	}
	if w.bytes > w.peakBytes {
		w.peakBytes = w.bytes
	}
	w.faults, w.bytes = 0, 0
	w.sample()
	w.windows++
}

func (w *Windows) sample() {
	if w.gauge != nil {
		w.samples = append(w.samples, w.gauge())
	}
}

// Finalize closes the in-progress window and returns the run's
// windowed stats. Call once, after the simulation has drained.
func (w *Windows) Finalize() WindowStats {
	if w.started {
		w.close()
		w.started = false
	}
	st := WindowStats{
		Windows:           w.windows,
		FaultRateHz:       float64(w.peakFault) / w.width.Seconds(),
		MigrateBWPeakMBps: w.peakBytes / w.width.Seconds() / 1e6,
	}
	if len(w.samples) > 0 {
		s := append([]int64(nil), w.samples...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		st.P99SlowResident = float64(s[(len(s)*99)/100])
	}
	return st
}
