package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"numamig/internal/topology"
)

// Recorder captures the full event stream of one System for offline
// export. Attach with Record before the run; after the run, WriteTrace
// renders the log in the chrome-trace (chrome://tracing / Perfetto)
// JSON format: per-task fault storms and migration batches, per-node
// kswapd reclaim slices and demotions, and control-plane instants
// (rate-limit drops, watermark boosts, tier traffic).
type Recorder struct {
	Events []Event
}

// Record attaches a recorder to every topic of b.
func Record(b *Bus) *Recorder {
	r := &Recorder{}
	b.SubscribeAll(func(ev Event) { r.Events = append(r.Events, ev) })
	return r
}

// traceEvent is one entry of the chrome-trace "traceEvents" array.
// Fixed struct fields (no maps) keep the marshalled output
// deterministic.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"` // microseconds of virtual time
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"` // instant scope
	Args *traceEventArgs `json:"args,omitempty"`
}

type traceEventArgs struct {
	Name  string  `json:"name,omitempty"`
	Pages int     `json:"pages,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`
	Node  int     `json:"node,omitempty"`
	Dst   int     `json:"dst,omitempty"`
	Value float64 `json:"value,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Process/track layout of the exported trace.
const (
	tracePidTasks   = 1 // tid = task (sim proc) ID
	tracePidKswapd  = 2 // tid = node
	tracePidControl = 3 // tid = node
)

func usec(t int64) float64 { return float64(t) / 1e3 }

// WriteTrace renders the recorded log as chrome-trace JSON. Output is
// a pure function of the recorded events: deterministic byte-for-byte.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	emitMeta := func(pid int, name string) {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: &traceEventArgs{Name: name},
		})
	}
	emitMeta(tracePidTasks, "tasks")
	emitMeta(tracePidKswapd, "kswapd")
	emitMeta(tracePidControl, "control")

	// Thread-name metadata: collect the task IDs and nodes the log
	// touches, in sorted order so the header block is stable.
	tasks := map[int]bool{}
	nodes := map[topology.NodeID]bool{}
	for _, ev := range r.Events {
		switch ev.Topic {
		case TopicPageFault, TopicNumaHintFault, TopicMigrateBatch:
			tasks[ev.Task] = true
		case TopicKswapdWake, TopicDemote:
			nodes[ev.Node] = true
		}
	}
	taskIDs := make([]int, 0, len(tasks))
	for id := range tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	nodeIDs := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, int(n))
	}
	sort.Ints(nodeIDs)
	for _, id := range taskIDs {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePidTasks, Tid: id,
			Args: &traceEventArgs{Name: fmt.Sprintf("proc %d", id)},
		})
	}
	for _, n := range nodeIDs {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePidKswapd, Tid: n,
			Args: &traceEventArgs{Name: fmt.Sprintf("kswapd/node%d", n)},
		})
	}

	for _, ev := range r.Events {
		switch ev.Topic {
		case TopicPageFault:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "PageFault", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidTasks, Tid: ev.Task,
				Args: &traceEventArgs{Pages: ev.Pages, Node: int(ev.Node)},
			})
		case TopicNumaHintFault:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "NumaHintFault", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidTasks, Tid: ev.Task,
				Args: &traceEventArgs{Pages: ev.Pages, Node: int(ev.Node)},
			})
		case TopicMigrateBatch:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "MigrateBatch", Ph: "X",
				Ts:  usec(int64(ev.Time - ev.Dur)),
				Dur: usec(int64(ev.Dur)),
				Pid: tracePidTasks, Tid: ev.Task,
				Args: &traceEventArgs{
					Pages: ev.Pages, Bytes: ev.Bytes, Value: ev.Value,
				},
			})
		case TopicKswapdWake:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "KswapdWake", Ph: "X",
				Ts:  usec(int64(ev.Time - ev.Dur)),
				Dur: usec(int64(ev.Dur)),
				Pid: tracePidKswapd, Tid: int(ev.Node),
				Args: &traceEventArgs{Node: int(ev.Node)},
			})
		case TopicDemote:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "Demote", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidKswapd, Tid: int(ev.Node),
				Args: &traceEventArgs{Pages: ev.Pages, Value: ev.Value},
			})
		case TopicPromote:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "Promote", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidControl, Tid: int(ev.Dst),
				Args: &traceEventArgs{Pages: ev.Pages, Dst: int(ev.Dst)},
			})
		case TopicRateLimitDrop:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "RateLimitDrop", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidControl, Tid: int(ev.Node),
				Args: &traceEventArgs{Pages: ev.Pages, Node: int(ev.Node)},
			})
		case TopicWatermarkBoost:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "WatermarkBoost", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidControl, Tid: int(ev.Node),
				Args: &traceEventArgs{Node: int(ev.Node), Value: ev.Value},
			})
		case TopicTierTraffic:
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "TierTraffic", Ph: "i", S: "t",
				Ts: usec(int64(ev.Time)), Pid: tracePidControl, Tid: int(ev.Node),
				Args: &traceEventArgs{
					Bytes: ev.Bytes, Node: int(ev.Node),
					Dst: int(ev.Dst), Value: ev.Value,
				},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}
