// Package telemetry is the deterministic pub/sub event bus of the
// simulated kernel: the observability substrate that turns the
// cumulative counters of kern.Stats and migrate.Stats into a typed,
// ordered event stream.
//
// Emitters across the stack — the fault paths, the AutoNUMA hinting
// machinery, the kswapd demotion daemons, the shared migration engine
// and the placement layer — publish Events on per-System buses. Every
// event is stamped with the engine's virtual time plus a per-instant
// sequence number, so the full event log is a totally ordered stream
// under the same (time, sequence) tie-break discipline as the
// simulator's bucket event queue: byte-identical on every run, at any
// experiment-runner parallelism, whichever goroutine happens to hold
// the execution token when an emitter fires.
//
// Three subscriber families live alongside the bus:
//
//   - Windows (window.go): windowed time-series aggregators that turn
//     the stream into grid columns (fault_rate_hz,
//     migrate_bw_mbps_peak, p99_slow_residency_window);
//   - Recorder (trace.go): a chrome-trace / Perfetto exporter for
//     debugging a single scenario (numabench -trace=out.json);
//   - internal/control: the closed-loop policy daemons, starting with
//     the adaptive promotion rate limiter.
//
// Determinism contract. A Bus belongs to one simulated System and is
// only ever published from simulated code, which the DES engine
// serializes under a single execution token — so Publish needs no
// locking and delivery order is exactly publication order. Handlers
// run synchronously at publication time, inside simulated time but
// outside simulated cost: a subscriber must not sleep, block or
// otherwise advance the simulation. The bus with no subscribers is a
// two-branch no-op, so emitters stay on the fast path when nobody
// listens; hot call sites additionally guard event construction with
// Active.
package telemetry

import (
	"numamig/internal/sim"
	"numamig/internal/topology"
)

// Topic identifies one event type on the bus.
type Topic uint8

// The registered topics. docscheck fails CI when ARCHITECTURE.md does
// not mention every name returned by Topics.
const (
	// TopicPageFault is one batch of page faults taken by a task
	// (Pages faults; mirrors kern.Stats.Faults exactly).
	TopicPageFault Topic = iota
	// TopicNumaHintFault is one batch of AutoNUMA hinting faults
	// (Pages; mirrors kern.Stats.NumaHintFaults).
	TopicNumaHintFault
	// TopicPromote is one hinting-fault promotion batch that moved
	// Pages pages onto Dst (mirrors kern.Stats.NumaPagesPromoted).
	TopicPromote
	// TopicDemote is one kswapd shrink pass that demoted Pages pages
	// off Node; Value carries the cold (far-tier) subset (mirrors
	// kern.Stats.PagesDemoted / PagesDemotedCold).
	TopicDemote
	// TopicRateLimitDrop is one promotion order dropped by Node's
	// slow-tier token bucket (mirrors kern.Stats.PromoteRateLimited).
	TopicRateLimitDrop
	// TopicWatermarkBoost is one burst watermark boost of Node; Value
	// is the boost in frames.
	TopicWatermarkBoost
	// TopicKswapdWake is one pressure wake-up of Node's demotion
	// daemon; Dur spans the reclaim pass ending at Time (mirrors
	// kern.Stats.KswapdWakeups).
	TopicKswapdWake
	// TopicMigrateBatch is one migration-engine request that moved
	// Pages pages / Bytes bytes; Dur spans the request ending at Time
	// and Value carries the migrate.Path that issued it.
	TopicMigrateBatch
	// TopicTierTraffic is one op physically moved across memory tiers:
	// Node -> Dst, Bytes bytes; Value is +1 for the demotion direction
	// (toward a slower tier) and -1 for promotion (mirrors
	// migrate.Stats.PagesTierDown / PagesTierUp).
	TopicTierTraffic
	// TopicTenantAdmit is one tenant admitted by the tenancy layer:
	// Task is the tenant id, Pages its fast-tier cap in pages, Value
	// its priority class (tenancy.Class).
	TopicTenantAdmit
	// TopicTenantExit is one tenant departure: Task is the tenant id,
	// Pages the resident pages released at exit (0 when the tenant
	// unmapped everything before exiting).
	TopicTenantExit
	// TopicCapViolation is one allocation that landed on the fast tier
	// beyond the owning tenant's cap because no slow-tier node could
	// absorb the redirect: Task is the tenant id, Node where the page
	// landed. The serve family requires zero of these per cell.
	TopicCapViolation
	// TopicClassLatency is one timed access probe of a tenant: Task is
	// the tenant id, Dur the probe's virtual duration, Pages the probe
	// size in pages, Value the priority class (tenancy.Class).
	TopicClassLatency
	// TopicTenantResident is one tenant residency change applied by the
	// tenancy ledger: Task is the tenant id, Node the node whose count
	// changed, Pages the signed delta, Value the tenant's resulting
	// total resident pages. Published only at instants where mem.Phys
	// gauges are consistent, so differential tests can compare exactly.
	TopicTenantResident

	// NumTopics bounds the topic space.
	NumTopics
)

var topicNames = [NumTopics]string{
	"PageFault", "NumaHintFault", "Promote", "Demote", "RateLimitDrop",
	"WatermarkBoost", "KswapdWake", "MigrateBatch", "TierTraffic",
	"TenantAdmit", "TenantExit", "CapViolation", "ClassLatency",
	"TenantResident",
}

// String returns the topic's registered name.
func (t Topic) String() string {
	if int(t) < len(topicNames) {
		return topicNames[t]
	}
	return "Unknown"
}

// Topics returns every registered topic name, in topic order. The
// docscheck tool uses it to fail CI on topics ARCHITECTURE.md misses.
func Topics() []string {
	out := make([]string, NumTopics)
	copy(out, topicNames[:])
	return out
}

// NoNode marks an Event node field that does not apply (e.g. the mixed
// sources of a promotion batch).
const NoNode = topology.NodeID(-1)

// Event is one occurrence on the bus. One flat struct serves every
// topic — the per-topic field meaning is documented on the Topic
// constants — so publication allocates nothing and the trace exporter
// and log hashers see a uniform shape.
type Event struct {
	// Time is the engine's virtual time at publication; Seq orders
	// events within one instant (resetting to 0 when time advances).
	// (Time, Seq) is strictly increasing over a bus's lifetime.
	Time sim.Time
	Seq  uint32

	Topic Topic
	// Node is the primary node (fault node, demotion/traffic source,
	// boosted node); Dst the destination where one applies. NoNode
	// where not meaningful.
	Node, Dst topology.NodeID
	// Task is the emitting sim proc's ID (application task or kernel
	// daemon); 0 when emitted outside proc context.
	Task int
	// Pages is the page count of the batch the event describes.
	Pages int
	// Dur, when non-zero, is the span of the activity ending at Time
	// (kswapd reclaim passes, migration batches).
	Dur sim.Time
	// Bytes is the byte volume, where one applies.
	Bytes float64
	// Value is the topic-specific magnitude (see the Topic constants).
	Value float64
}

// Handler consumes events synchronously at publication time. Handlers
// run in simulated-code context and must not block or advance time.
type Handler func(Event)

// Bus is one System's deterministic pub/sub bus. All simulated code of
// a System runs under a single execution token, so the bus needs no
// locking; a Bus must not be shared between Systems or published from
// outside simulated code.
type Bus struct {
	now      func() sim.Time
	lastTime sim.Time
	seq      uint32
	started  bool
	subs     [NumTopics][]Handler
	nsubs    int
}

// NewBus creates a bus stamping events with the given virtual clock
// (typically sim.Engine.Now).
func NewBus(now func() sim.Time) *Bus {
	return &Bus{now: now}
}

// Subscribe registers h for one topic. Delivery order among a topic's
// handlers is subscription order.
func (b *Bus) Subscribe(t Topic, h Handler) {
	b.subs[t] = append(b.subs[t], h)
	b.nsubs++
}

// SubscribeAll registers h for every topic.
func (b *Bus) SubscribeAll(h Handler) {
	for t := Topic(0); t < NumTopics; t++ {
		b.Subscribe(t, h)
	}
}

// Active reports whether any handler listens on t. Hot emitters guard
// event construction with it so the bus-off path costs two branches.
func (b *Bus) Active(t Topic) bool { return len(b.subs[t]) > 0 }

// Publish stamps ev with the current (virtual time, per-instant
// sequence) and delivers it synchronously to t's handlers in
// subscription order. A publish with no subscribers returns
// immediately and consumes no sequence number, so attaching a
// subscriber never perturbs the stamps another subscriber observes.
func (b *Bus) Publish(ev Event) {
	hs := b.subs[ev.Topic]
	if len(hs) == 0 {
		return
	}
	now := b.now()
	if !b.started || now != b.lastTime {
		b.lastTime = now
		b.seq = 0
		b.started = true
	} else {
		b.seq++
	}
	ev.Time = now
	ev.Seq = b.seq
	for _, h := range hs {
		h(ev)
	}
}
