package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"numamig/internal/sim"
	"numamig/internal/topology"
)

// fakeClock drives the bus without a full engine.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) now() sim.Time { return c.t }

// TestPublishStampsTimeAndSeq pins the (Time, Seq) contract: Seq
// counts up within an instant and resets to zero when time advances.
func TestPublishStampsTimeAndSeq(t *testing.T) {
	clk := &fakeClock{}
	b := NewBus(clk.now)
	var got []Event
	b.SubscribeAll(func(ev Event) { got = append(got, ev) })

	clk.t = 10
	b.Publish(Event{Topic: TopicPageFault, Pages: 1})
	b.Publish(Event{Topic: TopicDemote, Pages: 2})
	clk.t = 20
	b.Publish(Event{Topic: TopicPromote, Pages: 3})
	clk.t = 20 // same instant
	b.Publish(Event{Topic: TopicPromote, Pages: 4})

	want := []struct {
		time sim.Time
		seq  uint32
	}{{10, 0}, {10, 1}, {20, 0}, {20, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Time != w.time || got[i].Seq != w.seq {
			t.Errorf("event %d: (time,seq) = (%d,%d), want (%d,%d)",
				i, got[i].Time, got[i].Seq, w.time, w.seq)
		}
	}
}

// TestPublishWithoutSubscribersConsumesNoSeq pins the rule that makes
// subscriber sets composable: an unobserved topic never advances the
// per-instant sequence, so attaching a PageFault subscriber cannot
// change the stamps a Demote subscriber sees.
func TestPublishWithoutSubscribersConsumesNoSeq(t *testing.T) {
	clk := &fakeClock{t: 5}
	b := NewBus(clk.now)
	var got []Event
	b.Subscribe(TopicDemote, func(ev Event) { got = append(got, ev) })

	b.Publish(Event{Topic: TopicPageFault}) // no subscriber: dropped, no seq
	b.Publish(Event{Topic: TopicDemote})
	b.Publish(Event{Topic: TopicPageFault}) // dropped again
	b.Publish(Event{Topic: TopicDemote})

	if len(got) != 2 {
		t.Fatalf("got %d Demote events, want 2", len(got))
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Errorf("Demote seqs = %d,%d; want 0,1 (unobserved topics must not consume sequence numbers)",
			got[0].Seq, got[1].Seq)
	}
}

// TestActive pins the hot-path guard: Active flips per topic as
// subscriptions land, and SubscribeAll lights every topic.
func TestActive(t *testing.T) {
	clk := &fakeClock{}
	b := NewBus(clk.now)
	if b.Active(TopicPageFault) {
		t.Fatal("fresh bus reports TopicPageFault active")
	}
	b.Subscribe(TopicPageFault, func(Event) {})
	if !b.Active(TopicPageFault) {
		t.Fatal("Active false after Subscribe")
	}
	if b.Active(TopicDemote) {
		t.Fatal("subscribing to PageFault activated Demote")
	}
	b.SubscribeAll(func(Event) {})
	for topic := Topic(0); topic < NumTopics; topic++ {
		if !b.Active(topic) {
			t.Errorf("SubscribeAll left %v inactive", topic)
		}
	}
}

// TestTopicsNamesEveryTopic guards the docscheck contract.
func TestTopicsNamesEveryTopic(t *testing.T) {
	names := Topics()
	if len(names) != int(NumTopics) {
		t.Fatalf("Topics() returned %d names, want %d", len(names), NumTopics)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("topic %d has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate topic name %q", n)
		}
		seen[n] = true
		if Topic(i).String() != n {
			t.Errorf("Topic(%d).String() = %q, want %q", i, Topic(i).String(), n)
		}
	}
}

// TestWindowsAggregation feeds a hand-built stream through the window
// aggregator and checks the three derived grid columns.
func TestWindowsAggregation(t *testing.T) {
	clk := &fakeClock{}
	b := NewBus(clk.now)
	gauge := int64(0)
	w := NewWindows(b, 1000, func() int64 { return gauge })

	// Window 0 [0,1000): 4 faulted pages, 2 MiB migrated.
	gauge = 10
	clk.t = 100
	b.Publish(Event{Topic: TopicPageFault, Pages: 4})
	b.Publish(Event{Topic: TopicMigrateBatch, Pages: 512, Bytes: 2 << 20})
	// Window 2 [2000,3000): 2 pages, no migration. Window 1 is a gap —
	// it must still contribute a gauge sample. Window 0 closes (and
	// samples the gauge, still 10) while observing this event.
	clk.t = 2500
	b.Publish(Event{Topic: TopicPageFault, Pages: 2})
	gauge = 7 // seen only by the Finalize close

	ws := w.Finalize()
	if ws.Windows != 3 {
		t.Fatalf("Windows = %d, want 3 (two active + one gap)", ws.Windows)
	}
	// Peak per-window fault rate: 4 pages in one 1000 ns window.
	wantRate := 4.0 / 1000e-9
	if !near(ws.FaultRateHz, wantRate) {
		t.Errorf("FaultRateHz = %g, want %g", ws.FaultRateHz, wantRate)
	}
	// Peak bandwidth: 2 MiB in one 1000 ns window, reported in MB/s.
	wantBW := float64(2<<20) / 1000e-9 / 1e6
	if !near(ws.MigrateBWPeakMBps, wantBW) {
		t.Errorf("MigrateBWPeakMBps = %g, want %g", ws.MigrateBWPeakMBps, wantBW)
	}
	// Gauge samples: 10 (window 0 close), 10 (gap window 1), 7 (final).
	// p99 over a sorted 3-sample set indexes 3*99/100 = 2 -> 10.
	if ws.P99SlowResident != 10 {
		t.Errorf("P99SlowResident = %g, want 10", ws.P99SlowResident)
	}
}

func near(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= want*1e-9
}

// TestTraceDeterministic records the same synthetic stream twice and
// requires byte-identical trace JSON that parses and carries every
// recorded event.
func TestTraceDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		clk := &fakeClock{}
		b := NewBus(clk.now)
		rec := Record(b)
		clk.t = 1000
		b.Publish(Event{Topic: TopicPageFault, Node: 0, Task: 3, Pages: 1})
		b.Publish(Event{Topic: TopicKswapdWake, Node: 1, Task: 9, Dur: 500})
		clk.t = 4000
		b.Publish(Event{Topic: TopicMigrateBatch, Node: NoNode, Dst: NoNode, Task: 3, Pages: 32, Dur: 2000, Bytes: 1 << 17})
		b.Publish(Event{Topic: TopicRateLimitDrop, Node: 2, Dst: topology.NodeID(-1), Pages: 1})
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical recordings produced different trace bytes")
	}
	var tf struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	slices := 0
	for _, ev := range tf.TraceEvents {
		if ev["ph"] == "X" {
			slices++
			if d, ok := ev["dur"].(float64); !ok || d < 0 {
				t.Errorf("X slice with bad dur: %v", ev)
			}
		}
	}
	if slices == 0 {
		t.Error("no X slices for the KswapdWake/MigrateBatch events")
	}
}
