package autonuma_test

import (
	"fmt"
	"testing"

	"numamig/internal/autonuma"
	"numamig/internal/model"
	"numamig/internal/sim"

	numamig "numamig"
)

const pg = model.PageSize

// sweep touches the whole buffer with the blocked pattern.
func sweep(t *testing.T, tk *numamig.Task, buf *numamig.Buffer) {
	t.Helper()
	if err := buf.Access(tk, numamig.Blocked, false); err != nil {
		t.Fatal(err)
	}
}

// TestConvergence is the subsystem's core guarantee: a hot buffer left
// on a remote node ends up ≥90% on the accessor's node within a
// bounded number of scan periods, with no application hint.
func TestConvergence(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	const pages = 512
	// Bound: the scanner needs ceil(pages/ScanPages) ticks to arm the
	// buffer once, plus threshold warm-up and one re-arm round for the
	// pages the threshold filter let through unpromoted. Give it 8 full
	// coverage rounds before declaring failure.
	cover := (pages + bal.Cfg.ScanPages - 1) / bal.Cfg.ScanPages
	maxPeriods := 8 * cover

	const want = pages * 9 / 10
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, pages*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(sys.Machine.Nodes[3].Cores[0]) // farthest node, no hints
		deadline := tk.P.Now() + sim.Time(maxPeriods)*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline {
			sweep(t, tk, buf)
			hist, absent := buf.NodeHistogram(tk)
			if absent != 0 {
				t.Fatalf("absent pages: %d", absent)
			}
			if hist[3] >= want {
				return
			}
		}
		hist, _ := buf.NodeHistogram(tk)
		t.Errorf("no convergence within %d scan periods: hist=%v (want >=%d on node 3)",
			maxPeriods, hist, want)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal.Stats.ScanTicks == 0 || bal.Stats.PagesArmed == 0 {
		t.Fatalf("scanner never worked: %+v", bal.Stats)
	}
	if bal.Stats.PagesPromoted < want {
		t.Fatalf("promoted %d pages, want >= %d", bal.Stats.PagesPromoted, want)
	}
	if got := sys.Stats().NumaPagesPromoted; got < want {
		t.Fatalf("kernel counted %d promotions", got)
	}
}

// TestDeterminism: two identical systems produce identical virtual end
// times and statistics — the property the parallel grid runner rests
// on.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, autonuma.Stats, uint64) {
		sys := numamig.New(numamig.Config{Seed: 7})
		bal := sys.EnableAutoNUMA(autonuma.Config{})
		err := sys.Run(func(tk *numamig.Task) {
			buf := numamig.MustAlloc(tk, 256*pg, numamig.Bind(0))
			if err := buf.Prefault(tk); err != nil {
				t.Fatal(err)
			}
			tk.MigrateTo(sys.Machine.Nodes[2].Cores[0])
			for i := 0; i < 12; i++ {
				sweep(t, tk, buf)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Now(), bal.Stats, sys.Stats().NumaHintFaults
	}
	t1, s1, h1 := run()
	t2, s2, h2 := run()
	if t1 != t2 || s1 != s2 || h1 != h2 {
		t.Fatalf("runs diverge:\n t=%v stats=%+v hints=%d\n t=%v stats=%+v hints=%d",
			t1, s1, h1, t2, s2, h2)
	}
}

// TestScanPeriodBackoff: once the workload is local, quiet windows
// double the period toward the max; remote faults pull it back down.
func TestScanPeriodBackoff(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 128*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		// All-local accesses from node 0: every window is quiet.
		deadline := tk.P.Now() + 20*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline {
			sweep(t, tk, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal.Period() != bal.Cfg.ScanPeriodMax {
		t.Fatalf("period %v after quiet run, want backed off to %v", bal.Period(), bal.Cfg.ScanPeriodMax)
	}
	if bal.Stats.Backoffs == 0 {
		t.Fatal("no backoffs recorded")
	}
	if bal.Stats.RemoteFaults != 0 {
		t.Fatalf("local-only run took %d remote faults", bal.Stats.RemoteFaults)
	}
	if bal.Stats.PagesPromoted != 0 {
		t.Fatalf("local-only run promoted %d pages", bal.Stats.PagesPromoted)
	}
}

// TestThreadFollowsMemory: with FollowThreshold set, a task whose
// faults overwhelmingly hit one remote node moves there instead of
// pulling the memory over.
func TestThreadFollowsMemory(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{FollowThreshold: 0.5})
	var endNode numamig.NodeID
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 256*pg, numamig.Bind(2))
		if err := buf.Prefault(tk); err != nil { // memory lives on node 2
			t.Fatal(err)
		}
		deadline := tk.P.Now() + 16*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline && tk.Node() != 2 {
			sweep(t, tk, buf)
		}
		endNode = tk.Node()
	})
	if err != nil {
		t.Fatal(err)
	}
	if endNode != 2 {
		t.Fatalf("thread on node %d, want followed to 2 (stats %+v)", endNode, bal.Stats)
	}
	if bal.Stats.ThreadMoves == 0 {
		t.Fatal("no thread move recorded")
	}
}

// TestDaemonRetires: the scanner exits after the last thread and the
// engine drains (Run returns without deadlock); Stop unregisters the
// hook immediately.
func TestDaemonRetires(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	if err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 64*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		sweep(t, tk, buf)
	}); err != nil {
		t.Fatalf("engine did not drain after app exit: %v", err)
	}
	bal.Stop()
	if sys.Proc.NumaBalancer() != nil {
		t.Fatal("Stop left the balancer registered")
	}
}

// pingPong runs two threads on different nodes alternately sweeping
// one shared buffer homed on node 0 and returns the balancer stats:
// the canonical shared-page ping-pong that the last-toucher filter is
// meant to damp.
func pingPong(t *testing.T, cfg autonuma.Config) autonuma.Stats {
	t.Helper()
	sys := numamig.New(numamig.Config{Seed: 11})
	bal := sys.EnableAutoNUMA(cfg)
	const pages = 128
	var buf *numamig.Buffer
	ready := sim.NewEvent(sys.Eng)
	sys.Proc.Spawn("setup", 0, func(tk *numamig.Task) {
		buf = numamig.MustAlloc(tk, pages*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		ready.Fire()
	})
	for i, node := range []numamig.NodeID{1, 2} {
		core := sys.Machine.Nodes[node].Cores[0]
		sys.Proc.Spawn(fmt.Sprintf("pingpong%d", i), core, func(tk *numamig.Task) {
			ready.Wait(tk.P)
			deadline := tk.P.Now() + 24*bal.Cfg.ScanPeriodMax
			for tk.P.Now() < deadline {
				sweep(t, tk, buf)
			}
		})
	}
	if err := sys.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return bal.Stats
}

// TestLastToucherDampsPingPong: with the filter on (default), a page
// alternately touched from two nodes never builds the two-consecutive-
// fault streak, so promotions are damped by an order of magnitude
// against the unfiltered balancer chasing every toucher.
func TestLastToucherDampsPingPong(t *testing.T) {
	filtered := pingPong(t, autonuma.Config{})
	unfiltered := pingPong(t, autonuma.Config{NoLastToucher: true})
	if unfiltered.PagesPromoted == 0 {
		t.Fatal("unfiltered ping-pong promoted nothing; the workload is not contending")
	}
	if filtered.PingPongSkips == 0 {
		t.Fatal("filter never withheld a promotion")
	}
	if filtered.PagesPromoted*4 > unfiltered.PagesPromoted {
		t.Fatalf("filter barely damped the ping-pong: %d promotions filtered vs %d unfiltered",
			filtered.PagesPromoted, unfiltered.PagesPromoted)
	}
	if unfiltered.PingPongSkips != 0 {
		t.Fatalf("disabled filter still skipped %d promotions", unfiltered.PingPongSkips)
	}
}

// TestSingleOwnerStillConverges: the filter must not starve the
// common case — a page with one consistent toucher builds its streak
// on the second fault and promotes (TestConvergence covers the full
// guarantee; this pins the streak bookkeeping directly).
func TestSingleOwnerStillConverges(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 64*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(sys.Machine.Nodes[3].Cores[0])
		deadline := tk.P.Now() + 16*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline {
			sweep(t, tk, buf)
		}
		hist, _ := buf.NodeHistogram(tk)
		if hist[3] < 64*9/10 {
			t.Fatalf("single owner did not converge under the filter: hist=%v", hist)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal.Stats.PagesPromoted == 0 {
		t.Fatal("no promotions despite a single consistent toucher")
	}
}

// TestRectFaultPathServicesHints: the blocked-matrix drivers fault
// through FaultInRect, not FaultIn; hinting faults must be serviced
// there too, or balancing is silently inert for Rect-based workloads.
func TestRectFaultPathServicesHints(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 256*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		rect := numamig.Rect{Base: buf.Base, RowBytes: 16 * pg, Stride: 16 * pg, Rows: 16}
		tk.MigrateTo(sys.Machine.Nodes[2].Cores[0])
		deadline := tk.P.Now() + 16*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline {
			if err := tk.AccessRect(rect, numamig.Blocked, false); err != nil {
				t.Fatal(err)
			}
		}
		hist, _ := buf.NodeHistogram(tk)
		if hist[2] < 256*9/10 {
			t.Fatalf("rect path did not converge: hist=%v", hist)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().NumaHintFaults == 0 {
		t.Fatal("rect faults never reached the hinting path")
	}
}

// TestReplicatedPagesNotArmed: a replica set owns its primary frame;
// the scanner must not arm replicated pages (promotion would free a
// frame the set still references and strip its write protection).
func TestReplicatedPagesNotArmed(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	bal := sys.EnableAutoNUMA(autonuma.Config{})
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 64*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.ReplicateRange(buf.Base, buf.Size); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(sys.Machine.Nodes[3].Cores[0])
		deadline := tk.P.Now() + 8*bal.Cfg.ScanPeriodMax
		for tk.P.Now() < deadline {
			if err := tk.ReadReplicated(buf.Base, buf.Size, numamig.Blocked); err != nil {
				t.Fatal(err)
			}
		}
		// The primaries stayed home: replication, not balancing, serves
		// the remote reader.
		hist, _ := buf.NodeHistogram(tk)
		if hist[0] != 64 {
			t.Fatalf("replicated primaries moved: hist=%v", hist)
		}
		// Writing still collapses cleanly (no double free / stale frame).
		if err := tk.Touch(buf.Base, true); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().NumaPagesPromoted; got != 0 {
		t.Fatalf("replicated pages were promoted: %d", got)
	}
}

// TestPinnedPagesSurviveBalancing: the scanner never arms pinned pages
// (and the engine would EBUSY any promotion racing a pin), so balancing
// leaves them in place while the rest of the buffer follows the thread.
func TestPinnedPagesSurviveBalancing(t *testing.T) {
	sys := numamig.New(numamig.Config{})
	sys.EnableAutoNUMA(autonuma.Config{})
	err := sys.Run(func(tk *numamig.Task) {
		buf := numamig.MustAlloc(tk, 64*pg, numamig.Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		if _, err := tk.PinRange(buf.Base, 8*pg); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(sys.Machine.Nodes[1].Cores[0])
		deadline := tk.P.Now() + sim.FromSeconds(0.05)
		for tk.P.Now() < deadline {
			sweep(t, tk, buf)
		}
		hist, _ := buf.NodeHistogram(tk)
		if hist[0] < 8 {
			t.Fatalf("pinned pages moved: hist=%v", hist)
		}
		if hist[1] < 48 {
			t.Fatalf("unpinned pages did not follow: hist=%v", hist)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
