// Package autonuma is a simulated automatic-NUMA-balancing subsystem:
// the transparent counterpart of the paper's explicit next-touch
// policies, modelled after the mechanism Linux adopted after the
// paper's era (CONFIG_NUMA_BALANCING: periodic PROT_NONE hinting-fault
// sampling plus fault-driven page promotion).
//
// Three cooperating parts:
//
//   - A per-process scanner daemon — a simulated kernel thread on the
//     DES engine — periodically walks the mapped address space and arms
//     PTE ranges with hinting marks (vm.PTENumaHint, protection
//     stripped like change_prot_numa), through
//     kern.Process.ArmNumaHints. The scan period adapts between
//     configured bounds: remote faults shrink it, all-local ticks back
//     it off, mirroring numa_scan_period.
//
//   - The hinting-fault path in internal/kern (fault.go / access.go)
//     restores access and reports each faulted (page, node) batch to
//     the Balancer, which maintains per-task × per-node fault
//     statistics with exponential decay.
//
//   - The placement policy promotes pages toward their accessor once
//     the task's decayed fault count on the page's home node passes a
//     threshold (filtering one-off touches, like the kernel's
//     two-stage migration filter), and can optionally migrate the
//     *thread* toward its memory instead when most of its faults hit
//     one remote node. Two further gates damp harmful promotion: the
//     last-toucher filter requires two consecutive faults from the
//     same task before a page moves (damping shared-page ping-pong,
//     like the kernel's last-CPU/PID check), and the placement
//     layer's pressure gate withholds promotion into nodes at their
//     low watermark. All page movement is issued through the shared
//     migration engine (internal/migrate, PathNumaHint), so pinned
//     pages, busy retry and batching behave identically to the manual
//     migration paths. Every promoted page is stamped with the current
//     kswapd scan-period generation (PTE.PromoGen): the demotion scan's
//     hysteresis then refuses to demote it for
//     Params.PromotionHysteresisPeriods periods, closing the
//     promote/demote ping-pong loop from the other side (the tiering
//     scenario family measures the effect as promote_demote_flips).
//
// Unlike the paper's policies, no application or runtime hint is ever
// required: locality is discovered from the faults alone. The autonuma
// scenario family in internal/exp quantifies the resulting trade-off
// (transparent balancing pays sampling overhead and reaction latency;
// explicit next-touch pays API intrusiveness).
package autonuma

import (
	"fmt"

	"numamig/internal/kern"
	"numamig/internal/migrate"
	"numamig/internal/model"
	"numamig/internal/sim"
	"numamig/internal/topology"
	"numamig/internal/vm"
)

// Config tunes the balancer. Zero values fall back to the kernel's
// model.Params (NumaScan*/NumaFault* knobs).
type Config struct {
	// ScanPeriod is the initial delay between scanner ticks.
	ScanPeriod sim.Time
	// ScanPeriodMin/Max bound the adaptive period.
	ScanPeriodMin sim.Time
	ScanPeriodMax sim.Time
	// ScanPages is the soft bound on pages examined per tick.
	ScanPages int
	// FaultThreshold is the decayed per-node fault count a task must
	// reach on a node's memory before pages are promoted off it.
	FaultThreshold float64
	// FaultDecay multiplies the fault counters once per tick.
	FaultDecay float64
	// FollowThreshold, when positive, enables thread-follows-memory: if
	// a task's decayed fault share on one remote node exceeds the
	// threshold (0..1], the thread migrates to that node instead of
	// pulling the memory over. Off by default.
	FollowThreshold float64
	// NoLastToucher disables the last-toucher filter. By default the
	// balancer records the last task that took a hinting fault on each
	// page and promotes only after two consecutive faults from the same
	// task — damping the ping-pong of pages shared by tasks on
	// different nodes, like the kernel's last-CPU/PID check in
	// should_numa_migrate_memory.
	NoLastToucher bool
}

func (c Config) withDefaults(p *model.Params) Config {
	if c.ScanPeriod == 0 {
		c.ScanPeriod = p.NumaScanPeriod
	}
	if c.ScanPeriodMin == 0 {
		c.ScanPeriodMin = p.NumaScanPeriodMin
	}
	if c.ScanPeriodMax == 0 {
		c.ScanPeriodMax = p.NumaScanPeriodMax
	}
	if c.ScanPages == 0 {
		c.ScanPages = p.NumaScanPages
	}
	if c.FaultThreshold == 0 {
		c.FaultThreshold = p.NumaFaultThreshold
	}
	if c.FaultDecay == 0 {
		c.FaultDecay = p.NumaFaultDecay
	}
	if c.ScanPeriod < c.ScanPeriodMin {
		c.ScanPeriod = c.ScanPeriodMin
	}
	if c.ScanPeriod > c.ScanPeriodMax {
		c.ScanPeriod = c.ScanPeriodMax
	}
	return c
}

// Stats counts balancer activity.
type Stats struct {
	ScanTicks     uint64 // scanner wake-ups that did work
	PagesArmed    uint64 // hinting marks installed
	LocalFaults   uint64 // hinting faults on already-local pages
	RemoteFaults  uint64 // hinting faults on remote pages
	PagesPromoted uint64 // migration orders issued (engine may EBUSY some)
	ThreadMoves   uint64 // thread-follows-memory migrations
	Backoffs      uint64 // ticks that doubled the scan period
	PingPongSkips uint64 // promotions withheld by the last-toucher filter
	PressureSkips uint64 // promotions withheld because the target is pressured
}

// taskStats is one task's decayed locality history: hinting-fault
// counts indexed by the node the faulted page resided on.
type taskStats struct {
	memFaults []float64
	total     float64
}

// lastTouch is a page's recent toucher history: the task that took the
// last hinting fault on it and its run of consecutive faults.
type lastTouch struct {
	tid    int
	streak uint8
}

// Balancer is the per-process automatic NUMA balancing policy plus its
// scanner daemon. Create with Enable; it registers itself as the
// process's kern.NumaBalancer and starts scanning immediately.
type Balancer struct {
	Proc *kern.Process
	Cfg  Config

	period  sim.Time
	cursor  vm.VPN
	tasks   map[int]*taskStats
	last    map[vm.VPN]lastTouch // last-toucher filter state
	remote  uint64               // remote faults since the last tick
	stopped bool

	Stats Stats
}

// Enable builds a balancer for the process, registers its fault hook,
// and registers the scanner on the kernel's daemon hub (one batched
// tick per period instead of a parked proc per scanner). The scanner
// retires itself on the first poll after the process's last thread
// exits.
func Enable(proc *kern.Process, cfg Config) *Balancer {
	b := &Balancer{
		Proc:  proc,
		Cfg:   cfg.withDefaults(&proc.K.P),
		tasks: map[int]*taskStats{},
		last:  map[vm.VPN]lastTouch{},
	}
	b.period = b.Cfg.ScanPeriod
	proc.SetNumaBalancer(b)
	proc.K.Hub().Register(b)
	return b
}

// Stop makes the daemon exit at its next wake-up and unregisters the
// fault hook immediately.
func (b *Balancer) Stop() {
	b.stopped = true
	if b.Proc.NumaBalancer() == kern.NumaBalancer(b) {
		b.Proc.SetNumaBalancer(nil)
	}
}

// Period returns the current adaptive scan period.
func (b *Balancer) Period() sim.Time { return b.period }

// Name labels the proc spawned for a scanner tick.
func (b *Balancer) Name() string { return fmt.Sprintf("%s.numa_scand", b.Proc.Name) }

// Poll is the hub-driven tick decision. The scanner never idles: decay
// mutates the fault statistics every period, so every non-retired tick
// does work.
func (b *Balancer) Poll() kern.TickVerdict {
	if b.stopped || b.Proc.NumThreads() == 0 {
		return kern.TickRetire
	}
	return kern.TickRun
}

// Run is one scanner tick: decay statistics, adapt the period to the
// fault traffic of the last window, arm the next window of pages.
func (b *Balancer) Run(p *sim.Proc) {
	b.decay()
	// Adapt to the fault traffic of the last window — but only once
	// a window has actually been sampled: before the first arming
	// pass, zero remote faults says nothing.
	if b.Stats.ScanTicks > 0 {
		if b.remote == 0 {
			// Quiet window: everything local, back off
			// (numa_scan_period growth) so a converged workload stops
			// paying for sampling.
			if b.period < b.Cfg.ScanPeriodMax {
				b.period *= 2
				if b.period > b.Cfg.ScanPeriodMax {
					b.period = b.Cfg.ScanPeriodMax
				}
				b.Stats.Backoffs++
			}
		} else {
			// Remote traffic: rescan aggressively.
			b.period /= 2
			if b.period < b.Cfg.ScanPeriodMin {
				b.period = b.Cfg.ScanPeriodMin
			}
		}
	}
	b.remote = 0
	armed, next := b.Proc.ArmNumaHints(p, b.cursor, b.Cfg.ScanPages)
	b.cursor = next
	b.Stats.ScanTicks++
	b.Stats.PagesArmed += uint64(armed)
}

// decay ages every task's fault history by one tick.
func (b *Balancer) decay() {
	for _, ts := range b.tasks {
		ts.total = 0
		for i := range ts.memFaults {
			ts.memFaults[i] *= b.Cfg.FaultDecay
			ts.total += ts.memFaults[i]
		}
	}
}

// HintFaults implements kern.NumaBalancer: record the fault batch in
// the task's locality history and return promotion orders for the
// remote pages whose home node has accumulated enough faults. Two
// gates damp harmful promotion: the last-toucher filter requires two
// consecutive faults from the same task before a page moves (shared
// pages touched alternately from different nodes never promote), and
// the placement layer's pressure gate withholds promotion into nodes
// at or below their low watermark (pulling pages into a pressured node
// would only force kswapd to demote something right back out).
func (b *Balancer) HintFaults(t *kern.Task, pages []vm.VPN, src []topology.NodeID) []migrate.Op {
	ts := b.tasks[t.TID]
	if ts == nil {
		ts = &taskStats{memFaults: make([]float64, b.Proc.K.M.NumNodes())}
		b.tasks[t.TID] = ts
	}
	dst := t.Node()
	allowDst := b.Proc.K.Placer.AllowPromotion(dst)
	var ops []migrate.Op
	for i, pg := range pages {
		// Last-toucher history: every hinting fault extends or resets
		// the page's consecutive-toucher streak.
		lt := b.last[pg]
		if lt.tid == t.TID {
			if lt.streak < ^uint8(0) {
				lt.streak++
			}
		} else {
			lt = lastTouch{tid: t.TID, streak: 1}
		}
		b.last[pg] = lt
		ts.memFaults[src[i]]++
		ts.total++
		if src[i] == dst {
			b.Stats.LocalFaults++
			continue
		}
		b.Stats.RemoteFaults++
		b.remote++
		if ts.memFaults[src[i]] < b.Cfg.FaultThreshold {
			continue
		}
		if !b.Cfg.NoLastToucher && lt.streak < 2 {
			b.Stats.PingPongSkips++
			continue
		}
		if !allowDst {
			b.Stats.PressureSkips++
			continue
		}
		ops = append(ops, migrate.Op{VPN: pg, Dst: dst})
	}
	if node, ok := b.shouldFollow(ts, dst); ok {
		// Most of this task's recent faults hit memory on one remote
		// node: move the thread to its memory instead of the reverse.
		b.Stats.ThreadMoves++
		t.MigrateTo(b.Proc.K.M.Nodes[node].Cores[0])
		return nil
	}
	b.Stats.PagesPromoted += uint64(len(ops))
	return ops
}

// shouldFollow reports the remote node holding the largest share of the
// task's fault history, when thread-follows-memory is enabled and that
// share clears the threshold.
func (b *Balancer) shouldFollow(ts *taskStats, here topology.NodeID) (topology.NodeID, bool) {
	if b.Cfg.FollowThreshold <= 0 || ts.total < b.Cfg.FaultThreshold {
		return 0, false
	}
	best, bestF := topology.NodeID(0), 0.0
	for n, f := range ts.memFaults {
		if topology.NodeID(n) != here && f > bestF {
			best, bestF = topology.NodeID(n), f
		}
	}
	if bestF/ts.total > b.Cfg.FollowThreshold {
		return best, true
	}
	return 0, false
}
