// Command numasim inspects the simulated machine (numactl
// --hardware-style) and runs small interactive demos of the migration
// primitives.
//
// Usage:
//
//	numasim -hardware                 # topology, distances, link graph
//	numasim -demo nexttouch           # kernel next-touch walkthrough
//	numasim -demo lazy                # lazy migration walkthrough
//	numasim -demo sync                # synchronous move_pages walkthrough
//	numasim -nodes 8 -cores 2 ...     # non-default machine shapes
package main

import (
	"flag"
	"fmt"
	"os"

	"numamig"
	"numamig/internal/topology"
)

func main() {
	hardware := flag.Bool("hardware", false, "print machine topology")
	demo := flag.String("demo", "", "run a demo: nexttouch, lazy, sync")
	nodes := flag.Int("nodes", 4, "NUMA nodes (1,2,4,8)")
	cores := flag.Int("cores", 4, "cores per node")
	flag.Parse()

	sys := numamig.New(numamig.Config{Nodes: *nodes, CoresPerNode: *cores})
	switch {
	case *hardware:
		printHardware(sys)
	case *demo != "":
		if err := runDemo(sys, *demo); err != nil {
			fmt.Fprintln(os.Stderr, "numasim:", err)
			os.Exit(1)
		}
	default:
		printHardware(sys)
	}
}

func printHardware(sys *numamig.System) {
	m := sys.Machine
	fmt.Printf("available: %d nodes (0-%d)\n", m.NumNodes(), m.NumNodes()-1)
	for _, n := range m.Nodes {
		fmt.Printf("node %d cpus:", n.ID)
		for _, c := range n.Cores {
			fmt.Printf(" %d", c)
		}
		fmt.Printf("\nnode %d size: %d MB (L3 %d KB shared)\n",
			n.ID, n.MemBytes>>20, n.L3Bytes>>10)
	}
	fmt.Println("node distances:")
	fmt.Print("node ")
	for j := range m.Nodes {
		fmt.Printf("%4d", j)
	}
	fmt.Println()
	for i := range m.Nodes {
		fmt.Printf("%4d:", i)
		for j := range m.Nodes {
			fmt.Printf("%4d", m.Distance(topology.NodeID(i), topology.NodeID(j)))
		}
		fmt.Println()
	}
	fmt.Println("interconnect links:")
	for _, l := range m.Links {
		fmt.Printf("  link %d: node %d <-> node %d\n", l.ID, l.A, l.B)
	}
}

func runDemo(sys *numamig.System, name string) error {
	const pages = 1024
	size := int64(pages) * numamig.PageSize
	show := func(t *numamig.Task, b *numamig.Buffer, label string) {
		hist, absent := b.NodeHistogram(t)
		fmt.Printf("%-28s t=%-10v pages by node %v (absent %d)\n", label, t.P.Now(), hist, absent)
	}
	switch name {
	case "nexttouch":
		return sys.Run(func(t *numamig.Task) {
			buf := numamig.MustAlloc(t, size, numamig.Bind(0))
			must(buf.Prefault(t))
			show(t, buf, "after first-touch on node 0")
			nt := sys.NewKernelNT()
			if _, err := nt.Mark(t, buf.Region()); err != nil {
				panic(err)
			}
			fmt.Println("madvise(MIGRATE_ON_NEXT_TOUCH) issued")
			t.MigrateTo(numamig.CoreID(sys.Machine.NumCores() - 1))
			fmt.Printf("thread migrated to core %d (node %d)\n", t.Core, t.Node())
			must(buf.Access(t, numamig.Stream, false))
			show(t, buf, "after next touch")
			fmt.Printf("kernel stats: %d next-touch page migrations, %d faults\n",
				sys.Stats().NTMigrations, sys.Stats().Faults)
		})
	case "lazy":
		return sys.Run(func(t *numamig.Task) {
			buf := numamig.MustAlloc(t, size, numamig.Bind(0))
			must(buf.Prefault(t))
			mgr := sys.NewManager(numamig.LazyKernel, true)
			mgr.Attach(t, buf.Region())
			must(mgr.MoveThread(t, 4))
			show(t, buf, "after MoveThread (marked)")
			// Touch only half: untouched pages never migrate.
			must(t.AccessRange(buf.Base, size/2, numamig.Stream, false))
			show(t, buf, "after touching first half")
		})
	case "sync":
		return sys.Run(func(t *numamig.Task) {
			buf := numamig.MustAlloc(t, size, numamig.Bind(0))
			must(buf.Prefault(t))
			start := t.P.Now()
			must(buf.MoveTo(t, 1, true))
			d := t.P.Now() - start
			show(t, buf, "after move_pages to node 1")
			fmt.Printf("throughput: %.1f MB/s\n", float64(size)/d.Seconds()/1e6)
		})
	}
	return fmt.Errorf("unknown demo %q (want nexttouch, lazy, sync)", name)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
