// Command numabench regenerates the paper's tables and figures on the
// simulated platform and runs the scenario grid.
//
// Usage:
//
//	numabench -exp fig4                   # one experiment, full scale
//	numabench -exp table1 -quick          # reduced sweep
//	numabench -all -quick                 # every figure/table
//	numabench -grid                       # full scenario grid, aligned table
//	numabench -grid -parallel 8 -quick    # trimmed grid, 8 workers
//	numabench -grid -format json          # machine-readable output
//	numabench -grid -families replication # one scenario family
//	numabench -grid -nodes 1,2,4,8        # sweep machine sizes explicitly
//	numabench -grid -cores-per-node 2     # narrower sockets
//	numabench -list                       # enumerate families + counts
//	numabench -artifact artifacts/fig7.json  # paper-artifact campaign: repeats + grouped analysis
//
// Experiments: fig4 fig5 fig6a fig6b fig7 table1 fig8 blas1.
// Grid families: see -list (all registered families).
//
// Grid output is deterministic: the same -seed produces byte-identical
// JSON/CSV whatever -parallel is, because every scenario runs its own
// simulated system.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	numamig "numamig"
	"numamig/internal/artifact"
	"numamig/internal/bench"
	"numamig/internal/exp"
	"numamig/internal/telemetry"
	"numamig/internal/topology"
)

func main() {
	expID := flag.String("exp", "", "experiment id ("+strings.Join(bench.Experiments(), ", ")+")")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced parameter sweeps (seconds instead of minutes)")
	grid := flag.Bool("grid", false, "run the scenario grid (internal/exp) instead of one experiment")
	list := flag.Bool("list", false, "list registered scenario families with counts and descriptions")
	families := flag.String("families", "", "comma-separated scenario families for -grid (default: all of "+strings.Join(exp.Families(), ", ")+")")
	parallel := flag.Int("parallel", 0, "grid worker goroutines (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "grid output format: table, csv or json")
	seed := flag.Int64("seed", 1, "base deterministic seed for -grid scenarios")
	nodes := flag.String("nodes", "", "comma-separated topology.Grid node counts to sweep for -grid/-list (subset of 1..1024; default per family)")
	coresPerNode := flag.Int("cores-per-node", 0, "cores per node for -grid/-list scenarios (0 = the Opteron host's 4)")
	scenario := flag.String("scenario", "", "run only the -grid scenario with this exact ID")
	trace := flag.String("trace", "", "write a chrome-trace (chrome://tracing / Perfetto) JSON of the run to this file; requires -grid narrowed to exactly one scenario")
	artifactCfg := flag.String("artifact", "", "run the paper-artifact campaign described by this JSON config (internal/artifact)")
	artifactOut := flag.String("artifact-out", "", "artifact output directory (default: <config dir>/<campaign name>)")
	perf := flag.Bool("perf", false, "run the perf harness and write BENCH_core.json / BENCH_exp.json to -perf-out")
	scale := flag.Bool("scale", false, "with -perf: run only the datacenter-scale points and write BENCH_scale.json")
	serve := flag.Bool("serve", false, "with -perf: run only the multi-tenant serving points and write BENCH_serve.json")
	perfOut := flag.String("perf-out", ".", "directory the -perf reports are written to")
	repeats := flag.Int("repeats", 0, "-perf repeats per point, fastest kept (0 = 3)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
			}
		}()
	}
	if err := run(*expID, *all, *quick, *grid, *list, *families, *parallel, *format,
		*seed, *nodes, *coresPerNode, *scenario, *trace, *artifactCfg, *artifactOut,
		*perf, *scale, *serve, *perfOut, *repeats); err != nil {
		if code, ok := err.(exitCode); ok {
			// Profile defers must run before exiting.
			pprof.StopCPUProfile()
			os.Exit(int(code))
		}
		fmt.Fprintln(os.Stderr, "numabench:", err)
		os.Exit(1)
	}
}

// exitCode carries a specific exit status through run's error return so
// main's profile-writing defers still execute.
type exitCode int

func (c exitCode) Error() string { return fmt.Sprintf("exit %d", int(c)) }

func run(expID string, all, quick, grid, list bool, families string, parallel int,
	format string, seed int64, nodes string, coresPerNode int,
	scenario, trace, artifactCfg, artifactOut string,
	perf, scale, serve bool, perfOut string, repeats int) error {

	nodeList, err := parseNodeList(nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numabench:", err)
		return exitCode(2)
	}
	if coresPerNode < 0 {
		fmt.Fprintln(os.Stderr, "numabench: -cores-per-node must be >= 0")
		return exitCode(2)
	}
	opts := exp.Options{Quick: quick, Seed: seed, NodeList: nodeList, CoresPerNode: coresPerNode}

	if list {
		return listFamilies(os.Stdout, opts)
	}
	if artifactCfg != "" {
		if grid || perf || all || expID != "" {
			fmt.Fprintln(os.Stderr, "numabench: -artifact cannot combine with -grid/-perf/-exp/-all")
			return exitCode(2)
		}
		return runArtifact(artifactCfg, artifactOut, parallel)
	}
	if artifactOut != "" {
		fmt.Fprintln(os.Stderr, "numabench: -artifact-out requires -artifact")
		return exitCode(2)
	}
	if perf {
		po := bench.PerfOptions{
			Quick:    quick,
			Parallel: parallel,
			Repeats:  repeats,
			Seed:     seed,
		}
		if scale && serve {
			fmt.Fprintln(os.Stderr, "numabench: -scale and -serve are mutually exclusive")
			return exitCode(2)
		}
		if scale {
			return bench.RunScalePerf(po, perfOut, os.Stdout)
		}
		if serve {
			return bench.RunServePerf(po, perfOut, os.Stdout)
		}
		return bench.RunPerf(po, perfOut, os.Stdout)
	}
	if scale || serve {
		fmt.Fprintln(os.Stderr, "numabench: -scale and -serve require -perf")
		return exitCode(2)
	}
	if grid {
		return runGrid(families, parallel, format, scenario, trace, opts)
	}
	if scenario != "" || trace != "" {
		fmt.Fprintln(os.Stderr, "numabench: -scenario and -trace require -grid")
		return exitCode(2)
	}

	o := bench.Options{Quick: quick}
	var ids []string
	switch {
	case all:
		ids = bench.Experiments()
	case expID != "":
		ids = strings.Split(expID, ",")
	default:
		fmt.Fprintln(os.Stderr, "numabench: need -exp <id>, -all, -grid or -perf; ids:", strings.Join(bench.Experiments(), ", "))
		return exitCode(2)
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.Run(strings.TrimSpace(id), o, os.Stdout); err != nil {
			return err
		}
		fmt.Printf("# (%s regenerated in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runArtifact executes a paper-artifact campaign (internal/artifact):
// parse + validate the declarative config, run the grid once per
// repeat (streaming raw rows to raw.csv as repeats complete), then
// write the grouped analysis artifacts. Output bytes are independent
// of -parallel and of wall-clock time.
func runArtifact(cfgPath, outDir string, parallel int) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	cfg, err := artifact.ParseConfig(data)
	if err != nil {
		return err
	}
	if outDir == "" {
		outDir = filepath.Join(filepath.Dir(cfgPath), cfg.Name)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ro := artifact.RunOptions{Parallel: parallel, Log: os.Stderr}
	// Stream the raw rows as each repeat completes; WriteDir rewrites
	// the same bytes at the end, so an interrupted campaign still
	// leaves its completed repeats on disk.
	raw, err := os.Create(filepath.Join(outDir, artifact.RawCSVName))
	if err != nil {
		return err
	}
	ro.RawOut = raw
	start := time.Now()
	out, runErr := artifact.RunCampaign(cfg, ro)
	if cerr := raw.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	if runErr != nil {
		return runErr
	}
	if err := out.WriteDir(outDir); err != nil {
		return err
	}
	fmt.Printf("artifact: campaign %s: %d scenarios x %d repeats -> %s (max rel std %.4f, %d speedup ratios, %v wall time)\n",
		cfg.Name, out.Analysis.Scenarios, cfg.Repeats, outDir,
		out.Analysis.MaxRelStd, len(out.Analysis.Speedups), time.Since(start).Round(time.Millisecond))
	return nil
}

// parseNodeList parses the -nodes sweep flag into topology.Grid node
// counts, rejecting sizes the grid generator cannot build.
func parseNodeList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -nodes entry %q", part)
		}
		if n < 1 || n > topology.MaxNodes {
			return nil, fmt.Errorf("-nodes entry %d unsupported (topology.Grid builds 1..%d nodes)", n, topology.MaxNodes)
		}
		out = append(out, n)
	}
	return out, nil
}

// listFamilies enumerates the registered scenario families with their
// scenario counts (full and -quick) and one-line descriptions, so the
// grid is discoverable without reading internal/exp.
func listFamilies(w io.Writer, opts exp.Options) error {
	total, totalQuick := 0, 0
	for _, name := range exp.Families() {
		full := opts
		full.Quick = false
		fullScs, err := exp.Scenarios([]string{name}, full)
		if err != nil {
			return err
		}
		trim := opts
		trim.Quick = true
		trimmed, err := exp.Scenarios([]string{name}, trim)
		if err != nil {
			return err
		}
		total += len(fullScs)
		totalQuick += len(trimmed)
		fmt.Fprintf(w, "%-13s %4d scenarios (%3d quick)  %s\n",
			name, len(fullScs), len(trimmed), exp.Describe(name))
	}
	fmt.Fprintf(w, "%-13s %4d scenarios (%3d quick)\n", "total", total, totalQuick)
	return nil
}

// runGrid expands the requested families and executes them through the
// concurrent runner, rendering in the requested format. scenario
// filters to one exact scenario ID; trace additionally records that
// run's telemetry stream as chrome-trace JSON.
func runGrid(families string, parallel int, format, scenario, trace string, opts exp.Options) error {
	var names []string
	if families != "" {
		for _, n := range strings.Split(families, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	switch format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown -format %q (want table, csv or json)", format)
	}
	scs, err := exp.Scenarios(names, opts)
	if err != nil {
		return err
	}
	if scenario != "" {
		kept := scs[:0]
		for _, s := range scs {
			if s.ID == scenario {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("no scenario with ID %q (check -families/-quick/-nodes)", scenario)
		}
		scs = kept
	}
	if len(scs) == 0 {
		return fmt.Errorf("no scenarios generated (the requested -families need more than the given -nodes)")
	}

	var rec *telemetry.Recorder
	if trace != "" {
		if len(scs) != 1 {
			return fmt.Errorf("-trace needs exactly one scenario, have %d (narrow with -scenario)", len(scs))
		}
		// One scenario, one System: serialize and hook its bus. The
		// observer is process-global, so clear it before returning.
		parallel = 1
		numamig.SetSystemObserver(func(sys *numamig.System) {
			rec = telemetry.Record(sys.Bus())
		})
		defer numamig.SetSystemObserver(nil)
	}

	start := time.Now()
	results := exp.Runner{Parallel: parallel}.Run(scs)

	if trace != "" {
		if rec == nil {
			return fmt.Errorf("-trace: the scenario built no simulated system")
		}
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "numabench: wrote %d trace events to %s\n", len(rec.Events), trace)
	}
	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
		}
	}
	switch format {
	case "json":
		if err := exp.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	case "csv":
		exp.WriteCSV(os.Stdout, results)
	default: // table
		exp.Table(results).Write(os.Stdout)
		fmt.Printf("# (%d scenarios, %d failed, %v wall time)\n",
			len(results), failed, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(results))
	}
	return nil
}
