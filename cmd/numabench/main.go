// Command numabench regenerates the paper's tables and figures on the
// simulated platform.
//
// Usage:
//
//	numabench -exp fig4            # one experiment, full scale
//	numabench -exp table1 -quick   # reduced sweep
//	numabench -all -quick          # everything
//
// Experiments: fig4 fig5 fig6a fig6b fig7 table1 fig8 blas1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"numamig/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id ("+strings.Join(bench.Experiments(), ", ")+")")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced parameter sweeps (seconds instead of minutes)")
	flag.Parse()

	o := bench.Options{Quick: *quick}
	var ids []string
	switch {
	case *all:
		ids = bench.Experiments()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "numabench: need -exp <id> or -all; ids:", strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.Run(strings.TrimSpace(id), o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		fmt.Printf("# (%s regenerated in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
