// Command numabench regenerates the paper's tables and figures on the
// simulated platform and runs the scenario grid.
//
// Usage:
//
//	numabench -exp fig4                   # one experiment, full scale
//	numabench -exp table1 -quick          # reduced sweep
//	numabench -all -quick                 # every figure/table
//	numabench -grid                       # full scenario grid, aligned table
//	numabench -grid -parallel 8 -quick    # trimmed grid, 8 workers
//	numabench -grid -format json          # machine-readable output
//	numabench -grid -families replication # one scenario family
//	numabench -list                       # enumerate families + counts
//
// Experiments: fig4 fig5 fig6a fig6b fig7 table1 fig8 blas1.
// Grid families: see -list (all registered families).
//
// Grid output is deterministic: the same -seed produces byte-identical
// JSON/CSV whatever -parallel is, because every scenario runs its own
// simulated system.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"numamig/internal/bench"
	"numamig/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment id ("+strings.Join(bench.Experiments(), ", ")+")")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced parameter sweeps (seconds instead of minutes)")
	grid := flag.Bool("grid", false, "run the scenario grid (internal/exp) instead of one experiment")
	list := flag.Bool("list", false, "list registered scenario families with counts and descriptions")
	families := flag.String("families", "", "comma-separated scenario families for -grid (default: all of "+strings.Join(exp.Families(), ", ")+")")
	parallel := flag.Int("parallel", 0, "grid worker goroutines (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "grid output format: table, csv or json")
	seed := flag.Int64("seed", 1, "base deterministic seed for -grid scenarios")
	flag.Parse()

	if *list {
		if err := listFamilies(os.Stdout, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		return
	}
	if *grid {
		if err := runGrid(*families, *quick, *parallel, *format, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		return
	}

	o := bench.Options{Quick: *quick}
	var ids []string
	switch {
	case *all:
		ids = bench.Experiments()
	case *expID != "":
		ids = strings.Split(*expID, ",")
	default:
		fmt.Fprintln(os.Stderr, "numabench: need -exp <id>, -all or -grid; ids:", strings.Join(bench.Experiments(), ", "))
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.Run(strings.TrimSpace(id), o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			os.Exit(1)
		}
		fmt.Printf("# (%s regenerated in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// listFamilies enumerates the registered scenario families with their
// scenario counts (full and -quick) and one-line descriptions, so the
// grid is discoverable without reading internal/exp.
func listFamilies(w io.Writer, seed int64) error {
	total, totalQuick := 0, 0
	for _, name := range exp.Families() {
		full, err := exp.Scenarios([]string{name}, exp.Options{Seed: seed})
		if err != nil {
			return err
		}
		trimmed, err := exp.Scenarios([]string{name}, exp.Options{Quick: true, Seed: seed})
		if err != nil {
			return err
		}
		total += len(full)
		totalQuick += len(trimmed)
		fmt.Fprintf(w, "%-13s %4d scenarios (%3d quick)  %s\n",
			name, len(full), len(trimmed), exp.Describe(name))
	}
	fmt.Fprintf(w, "%-13s %4d scenarios (%3d quick)\n", "total", total, totalQuick)
	return nil
}

// runGrid expands the requested families and executes them through the
// concurrent runner, rendering in the requested format.
func runGrid(families string, quick bool, parallel int, format string, seed int64) error {
	var names []string
	if families != "" {
		for _, n := range strings.Split(families, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	switch format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown -format %q (want table, csv or json)", format)
	}
	scs, err := exp.Scenarios(names, exp.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	start := time.Now()
	results := exp.Runner{Parallel: parallel}.Run(scs)
	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
		}
	}
	switch format {
	case "json":
		if err := exp.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	case "csv":
		exp.WriteCSV(os.Stdout, results)
	default: // table
		exp.Table(results).Write(os.Stdout)
		fmt.Printf("# (%d scenarios, %d failed, %v wall time)\n",
			len(results), failed, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(results))
	}
	return nil
}
