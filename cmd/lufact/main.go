// Command lufact runs the threaded LU factorization study (Table 1 of
// the paper) for a single configuration, printing simulated execution
// time and locality statistics. It can also run the real (non-simulated)
// blocked LU on small matrices to validate numerics.
//
// Usage:
//
//	lufact -n 4096 -b 512 -policy next-touch
//	lufact -n 4096 -b 512 -policy static
//	lufact -verify -n 256 -b 32        # real numerics check
package main

import (
	"flag"
	"fmt"
	"os"

	"numamig/internal/linalg"
	"numamig/internal/workload"
)

func main() {
	n := flag.Int("n", 4096, "matrix dimension (N x N floats)")
	b := flag.Int("b", 512, "block dimension")
	threads := flag.Int("threads", 16, "OpenMP threads")
	policy := flag.String("policy", "next-touch", "placement policy: static or next-touch")
	verify := flag.Bool("verify", false, "run the real blocked LU and check numerics instead of simulating")
	flag.Parse()

	if *verify {
		if err := runVerify(*n, *b); err != nil {
			fmt.Fprintln(os.Stderr, "lufact:", err)
			os.Exit(1)
		}
		return
	}

	var pol workload.LUPolicy
	switch *policy {
	case "static":
		pol = workload.LUStatic
	case "next-touch", "nexttouch", "nt":
		pol = workload.LUNextTouch
	default:
		fmt.Fprintf(os.Stderr, "lufact: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	res, err := workload.RunLU(workload.LUConfig{N: *n, B: *b, Threads: *threads, Policy: pol})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lufact:", err)
		os.Exit(1)
	}
	fmt.Printf("LU %dx%d block %dx%d, %d threads, %s policy\n", *n, *n, *b, *b, *threads, pol)
	fmt.Printf("  simulated time:        %.2f s\n", res.Duration.Seconds())
	fmt.Printf("  next-touch migrations: %d pages\n", res.NTMigrations)
	fmt.Printf("  remote traffic share:  %.1f %%\n", 100*res.RemoteFrac)
}

func runVerify(n, b int) error {
	if n > 1024 {
		return fmt.Errorf("-verify is for small matrices (n <= 1024), got %d", n)
	}
	A := linalg.NewMatrix(n, n)
	A.FillDiagonallyDominant(1)
	orig := A.Clone()
	if err := linalg.BlockedLU(A, b); err != nil {
		return err
	}
	L, U := linalg.ExtractLU(A)
	P, err := linalg.MatMul(L, U)
	if err != nil {
		return err
	}
	diff := P.MaxAbsDiff(orig)
	fmt.Printf("blocked LU (n=%d, b=%d): max |L*U - A| = %.3g\n", n, b, diff)
	if diff > 1e-8*float64(n) {
		return fmt.Errorf("numerical verification FAILED")
	}
	fmt.Println("numerics OK")
	return nil
}
