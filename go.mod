module numamig

go 1.22
