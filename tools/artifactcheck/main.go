// Command artifactcheck validates a paper-artifact directory against
// its campaign config: the raw CSV schema must agree with
// exp.Columns(), the row set must cover exactly the config's scenario
// expansion for every repeat (with seeds matching the seed-derivation
// contract and no scenario errors), and the committed summary.json and
// tables.md must byte-match a recomputation from the raw rows — so a
// stale, truncated or hand-edited artifact fails CI.
//
// Usage:
//
//	artifactcheck -config artifacts/fig7.json [-dir artifacts/fig7]
//
// The directory defaults to <config dir>/<campaign name>. Exit status
// is non-zero on any violation.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"numamig/internal/artifact"
	"numamig/internal/exp"
)

func main() {
	cfgPath := flag.String("config", "", "campaign config JSON (required)")
	dir := flag.String("dir", "", "artifact directory (default: <config dir>/<campaign name>)")
	flag.Parse()
	if *cfgPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: artifactcheck -config <campaign.json> [-dir <artifact dir>]")
		os.Exit(2)
	}
	if err := check(*cfgPath, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "artifactcheck:", err)
		os.Exit(1)
	}
}

func check(cfgPath, dir string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	cfg, err := artifact.ParseConfig(data)
	if err != nil {
		return err
	}
	if dir == "" {
		dir = filepath.Join(filepath.Dir(cfgPath), cfg.Name)
	}

	// 1. Raw CSV: header must agree with the live schema, rows must
	// parse (ReadRawCSV enforces both).
	raw, err := os.ReadFile(filepath.Join(dir, artifact.RawCSVName))
	if err != nil {
		return err
	}
	rows, err := artifact.ReadRawCSV(bytes.NewReader(raw))
	if err != nil {
		return err
	}

	// 2. Coverage: the rows must be exactly the config's scenario
	// expansion, repeat by repeat, in order — no missing, duplicated,
	// reordered or extra scenarios.
	if err := checkCoverage(&cfg, rows); err != nil {
		return err
	}

	// 3. Analysis: recompute the grouped statistics from the raw rows.
	// Analyze enforces the rest of the contract (repeat completeness,
	// seed derivation, empty err column, the tolerance bound).
	an, err := artifact.Analyze(&cfg, rows)
	if err != nil {
		return err
	}

	// 4. Derived artifacts must byte-match the recomputation.
	if err := compareDerived(&cfg, an, dir); err != nil {
		return err
	}

	fmt.Printf("artifactcheck: %s ok — %d rows, %d cells, %d repeats, %d speedup ratios, max rel std %.4f\n",
		cfg.Name, an.RowCount, an.Scenarios, cfg.Repeats, len(an.Speedups), an.MaxRelStd)
	return nil
}

// checkCoverage verifies the row sequence equals the config's
// expansion: for each repeat r, the family scenario lists generated at
// that repeat's derived seed, in generation order.
func checkCoverage(cfg *artifact.Config, rows []artifact.Row) error {
	idCol := -1
	for i, n := range exp.ColumnNames() {
		if n == "id" {
			idCol = i
		}
	}
	ri := 0
	for r := 0; r < cfg.Repeats; r++ {
		opts := exp.Options{
			Quick:        cfg.Quick,
			Seed:         cfg.SeedFor(r),
			NodeList:     cfg.Nodes,
			CoresPerNode: cfg.CoresPerNode,
		}
		scs, err := exp.Scenarios(cfg.Families, opts)
		if err != nil {
			return err
		}
		for _, s := range scs {
			if ri >= len(rows) {
				return fmt.Errorf("raw csv ends early: repeat %d scenario %q missing", r, s.ID)
			}
			row := &rows[ri]
			if row.Repeat != r || row.Cells[idCol] != s.ID {
				return fmt.Errorf("raw csv row %d is (repeat %d, %q), expansion says (repeat %d, %q)",
					ri, row.Repeat, row.Cells[idCol], r, s.ID)
			}
			ri++
		}
	}
	if ri != len(rows) {
		return fmt.Errorf("raw csv has %d extra rows beyond the %d the config expands to", len(rows)-ri, ri)
	}
	return nil
}

// compareDerived re-renders summary.json and tables.md from the
// recomputed analysis and byte-compares them with the files on disk.
// figures.txt would need a full simulator run to recompute, so only
// its presence is checked.
func compareDerived(cfg *artifact.Config, an *artifact.Analysis, dir string) error {
	outputs := map[string]bool{}
	if len(cfg.Outputs) == 0 {
		outputs[artifact.OutJSON], outputs[artifact.OutMD] = true, true
		if len(cfg.Experiments) > 0 {
			outputs[artifact.OutFigures] = true
		}
	} else {
		for _, o := range cfg.Outputs {
			outputs[o] = true
		}
	}
	if outputs[artifact.OutJSON] {
		want, err := artifact.RenderSummary(an)
		if err != nil {
			return err
		}
		if err := compareFile(filepath.Join(dir, artifact.SummaryName), want); err != nil {
			return err
		}
	}
	if outputs[artifact.OutMD] {
		want, err := artifact.RenderTables(cfg, an)
		if err != nil {
			return err
		}
		if err := compareFile(filepath.Join(dir, artifact.TablesName), want); err != nil {
			return err
		}
	}
	if outputs[artifact.OutFigures] {
		fi, err := os.Stat(filepath.Join(dir, artifact.FiguresName))
		if err != nil {
			return err
		}
		if fi.Size() == 0 {
			return fmt.Errorf("%s is empty", artifact.FiguresName)
		}
	}
	return nil
}

func compareFile(path string, want []byte) error {
	got, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%s does not match recomputation from raw rows (%d vs %d bytes) — regenerate with numabench -artifact",
			path, len(got), len(want))
	}
	return nil
}
