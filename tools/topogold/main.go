// Command topogold regenerates internal/topology/testdata/grid64.sha256,
// the canonical content hashes of every Grid(n, 2, 1GiB, 2MiB) machine
// for n = 1..64. The topology property tests compare freshly built
// machines against this file, so any refactor of the generator or of
// the distance/route representation that changes an existing shape —
// even by one link id — fails the determinism guard. Regenerate (and
// commit the diff, with justification) only when a shape change is
// intentional.
package main

import (
	"fmt"
	"os"

	"numamig/internal/topology"
)

func main() {
	f, err := os.Create("internal/topology/testdata/grid64.sha256")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "# sha256 of topology.CanonicalString(Grid(n, 2, 1<<30, 2<<20)) for n = 1..64")
	for n := 1; n <= 64; n++ {
		m := topology.Grid(n, 2, 1<<30, 2<<20)
		fmt.Fprintf(f, "%2d %s\n", n, topology.CanonicalHash(m))
	}
}
