// Command benchcmp compares two numamig-bench/v1 reports (the
// BENCH_core.json / BENCH_exp.json files written by
// `numabench -perf`) point by point, matched on point name.
//
// For each point present in both reports it prints old and new
// wall_ns, the wall-clock delta, and the allocs_per_op delta. Points
// present in only one report are listed as added/removed. The
// comparison is warn-only by default so a CI bench job can surface a
// drift without blocking merges on a noisy runner; pass
// -fail-over=25 to exit non-zero when any matched point's wall time
// regressed by more than 25%.
//
// Usage (from the module root):
//
//	go run ./tools/benchcmp old/BENCH_core.json BENCH_core.json
//	go run ./tools/benchcmp -fail-over=25 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type point struct {
	Name        string `json:"name"`
	Scenarios   int    `json:"scenarios"`
	WallNS      int64  `json:"wall_ns"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type benchReport struct {
	Schema string  `json:"schema"`
	Points []point `json:"points"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "numamig-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, want numamig-bench/v1", path, r.Schema)
	}
	return &r, nil
}

func pct(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}

func main() {
	failOver := flag.Float64("fail-over", 0,
		"exit non-zero if any point's wall_ns regresses by more than this percentage (0 = warn only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchcmp [-fail-over=PCT] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	oldByName := map[string]point{}
	for _, p := range oldRep.Points {
		oldByName[p.Name] = p
	}
	failed := false
	seen := map[string]bool{}
	for _, np := range newRep.Points {
		op, ok := oldByName[np.Name]
		if !ok {
			fmt.Printf("%-44s added (%d ns)\n", np.Name, np.WallNS)
			continue
		}
		seen[np.Name] = true
		wallDelta := pct(op.WallNS, np.WallNS)
		allocDelta := pct(int64(op.AllocsPerOp), int64(np.AllocsPerOp))
		status := "ok"
		switch {
		case *failOver > 0 && wallDelta > *failOver:
			status = "FAIL"
			failed = true
		case wallDelta > 5:
			status = "warn"
		case wallDelta < -5:
			status = "improved"
		}
		fmt.Printf("%-44s %12d -> %12d ns  %+7.1f%%  allocs %+7.1f%%  %s\n",
			np.Name, op.WallNS, np.WallNS, wallDelta, allocDelta, status)
	}
	for _, op := range oldRep.Points {
		if !seen[op.Name] {
			fmt.Printf("%-44s removed\n", op.Name)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: wall-time regression over %.0f%% threshold\n", *failOver)
		os.Exit(1)
	}
}
