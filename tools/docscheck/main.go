// Command docscheck enforces the repository's documentation floor:
//
//   - every Go package in the module — the root, internal/, cmd/,
//     examples/ and tools/ alike — must carry a package comment (a doc
//     comment immediately above a `package` clause in at least one of
//     its files);
//   - ARCHITECTURE.md must mention every registered exp scenario
//     family by name, so the family-composition section cannot
//     silently go stale when a new family lands (the check imports
//     internal/exp, so a family registered in code is a family the
//     doc must cover);
//   - ARCHITECTURE.md must likewise name every registered telemetry
//     topic (telemetry.Topics()), so the "Telemetry & control" topic
//     table stays complete as emitters are added;
//   - ARCHITECTURE.md must carry the required sections (currently
//     "## Scale", which documents the extent PTE storage, the
//     hierarchy generator and the daemon batching contract, and
//     "## Tenancy & SLOs", which documents the multi-tenant ledger,
//     cap enforcement and class-priority contracts).
//
// CI runs it as the docs job; it exits non-zero listing every
// undocumented package and every family or telemetry topic
// ARCHITECTURE.md misses.
//
// Usage (from the module root):
//
//	go run ./tools/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"numamig/internal/exp"
	"numamig/internal/telemetry"
)

func main() {
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	var missing []string
	for dir := range dirs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		if !ok {
			missing = append(missing, dir)
		}
	}
	failed := false
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "docscheck: packages without a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		failed = true
	}

	staleFams, err := architectureMissingFamilies("ARCHITECTURE.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if len(staleFams) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: ARCHITECTURE.md does not mention these exp families:")
		for _, f := range staleFams {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		failed = true
	}
	staleTopics, err := architectureMissingTopics("ARCHITECTURE.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if len(staleTopics) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: ARCHITECTURE.md does not mention these telemetry topics:")
		for _, t := range staleTopics {
			fmt.Fprintf(os.Stderr, "  %s\n", t)
		}
		failed = true
	}
	missingSections, err := architectureMissingSections("ARCHITECTURE.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if len(missingSections) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: ARCHITECTURE.md is missing these required sections:")
		for _, s := range missingSections {
			fmt.Fprintf(os.Stderr, "  %s\n", s)
		}
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, %d exp families and %d telemetry topics covered by ARCHITECTURE.md\n",
		len(dirs), len(exp.Families()), len(telemetry.Topics()))
}

// architectureMissingFamilies returns the registered exp family names
// the architecture document never mentions — the content-freshness gap
// CI used to leave open (it only checked that the file exists).
func architectureMissingFamilies(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	text := string(data)
	var missing []string
	for _, name := range exp.Families() {
		if !strings.Contains(text, name) {
			missing = append(missing, name)
		}
	}
	return missing, nil
}

// requiredSections are ARCHITECTURE.md headings whose presence CI
// enforces: sections that document cross-package contracts no single
// package comment can own.
var requiredSections = []string{"## Scale", "## Tenancy & SLOs", "## Artifact"}

// architectureMissingSections returns the required headings the
// architecture document lacks.
func architectureMissingSections(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	text := string(data)
	var missing []string
	for _, s := range requiredSections {
		if !strings.Contains(text, s) {
			missing = append(missing, s)
		}
	}
	return missing, nil
}

// architectureMissingTopics returns the registered telemetry topic
// names the architecture document never mentions, keeping the topic
// table in the "Telemetry & control" section in lockstep with the
// telemetry package's registry.
func architectureMissingTopics(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	text := string(data)
	var missing []string
	for _, name := range telemetry.Topics() {
		if !strings.Contains(text, name) {
			missing = append(missing, name)
		}
	}
	return missing, nil
}

// hasPackageComment reports whether any non-test Go file in dir carries
// a doc comment on its package clause.
func hasPackageComment(dir string) (bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, fmt.Errorf("%s: %w", dir, err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return true, nil
			}
		}
	}
	return false, nil
}
