// Command tracecheck validates a chrome-trace JSON file produced by
// `numabench -trace`. It is the CI smoke gate for the trace exporter:
// a regression that makes the exporter emit malformed JSON, an empty
// event stream, or events chrome://tracing / Perfetto would reject
// fails the job before a human ever loads the file.
//
// Checks:
//
//   - the file parses as a JSON object with a traceEvents array;
//   - the array holds at least one event;
//   - every event has a non-empty name and a phase in the set the
//     exporter may legally emit (M metadata, X complete slices,
//     i/I instants, C counters, B/E duration pairs);
//   - timestamps are non-negative and X slices carry a non-negative
//     duration.
//
// Usage (from the module root):
//
//	go run ./tools/tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// traceEvent mirrors the subset of the chrome-trace event schema the
// checks need; unknown fields are ignored by encoding/json.
type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

var validPhases = map[string]bool{
	"M": true, "X": true, "i": true, "I": true,
	"C": true, "B": true, "E": true,
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: not valid trace JSON: %v\n", path, err)
		os.Exit(1)
	}
	if len(tf.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: traceEvents is empty\n", path)
		os.Exit(1)
	}
	bad := 0
	for i, ev := range tf.TraceEvents {
		switch {
		case ev.Name == "":
			fmt.Fprintf(os.Stderr, "tracecheck: event %d has no name\n", i)
		case !validPhases[ev.Ph]:
			fmt.Fprintf(os.Stderr, "tracecheck: event %d (%s) has invalid phase %q\n", i, ev.Name, ev.Ph)
		case ev.Ts < 0:
			fmt.Fprintf(os.Stderr, "tracecheck: event %d (%s) has negative ts %g\n", i, ev.Name, ev.Ts)
		case ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0):
			fmt.Fprintf(os.Stderr, "tracecheck: event %d (%s) is an X slice without a non-negative dur\n", i, ev.Name)
		default:
			continue
		}
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %d invalid of %d events\n", path, bad, len(tf.TraceEvents))
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: %d events OK\n", path, len(tf.TraceEvents))
}
