// lu demonstrates the paper's LU-factorization pattern written against
// the public API: a matrix interleaved across all nodes, an OpenMP-style
// team updating shrinking trailing column blocks, and the per-iteration
// madvise(MIGRATE_ON_NEXT_TOUCH) hook that keeps data near whichever
// thread works on it. It also validates the numerics with the real
// blocked LU on a small matrix.
//
//	go run ./examples/lu [-n 2048] [-b 256]
package main

import (
	"flag"
	"fmt"

	"numamig"
	"numamig/internal/linalg"
)

func main() {
	n := flag.Int("n", 2048, "matrix dimension (floats)")
	b := flag.Int("b", 256, "block dimension")
	flag.Parse()
	if *n%*b != 0 {
		panic("n must be a multiple of b")
	}

	// Numerics first: the simulated access pattern below follows the
	// same right-looking blocked algorithm this executes for real.
	A := linalg.NewMatrix(256, 256)
	A.FillDiagonallyDominant(7)
	ref := A.Clone()
	if err := linalg.BlockedLU(A, 32); err != nil {
		panic(err)
	}
	L, U := linalg.ExtractLU(A)
	P, _ := linalg.MatMul(L, U)
	fmt.Printf("real blocked LU numerics: max |L*U-A| = %.2g\n\n", P.MaxAbsDiff(ref))

	for _, nextTouch := range []bool{false, true} {
		d := run(*n, *b, nextTouch)
		name := "static interleaved"
		if nextTouch {
			name = "next-touch each iteration"
		}
		fmt.Printf("%-28s simulated time %8.3f s\n", name, d.Seconds())
	}
}

// run factorizes an n x n float matrix with block size b on the
// simulated host, returning the virtual execution time.
func run(n, b int, nextTouch bool) numamig.Time {
	sys := numamig.New(numamig.Config{})
	team := sys.TeamAll()
	nb := n / b
	rowBytes := int64(n) * 4
	var dur numamig.Time

	err := sys.Run(func(master *numamig.Task) {
		mat := numamig.MustAlloc(master, int64(n)*rowBytes, numamig.Interleave(0, 1, 2, 3))
		if err := mat.Prefault(master); err != nil {
			panic(err)
		}
		blockAddr := func(bi, bj int) numamig.Addr {
			return mat.Base + numamig.Addr(int64(bi*b)*rowBytes+int64(bj*b)*4)
		}
		accessBlock := func(t *numamig.Task, bi, bj int, write bool) {
			// One strided range per block row keeps the example simple;
			// the production driver batches this (internal/workload).
			for r := 0; r < b; r++ {
				addr := blockAddr(bi, bj) + numamig.Addr(int64(r)*rowBytes)
				if err := t.AccessRange(addr, int64(b)*4, numamig.Blocked, write); err != nil {
					panic(err)
				}
			}
		}
		start := master.P.Now()
		for k := 0; k < nb; k++ {
			if nextTouch {
				// The paper's hook: re-mark the trailing submatrix at the
				// start of each iteration.
				off := numamig.Addr(int64(k*b) * rowBytes)
				if _, err := master.Madvise(mat.Base+off, int64(n-k*b)*rowBytes,
					numamig.AdvMigrateOnNextTouch); err != nil {
					panic(err)
				}
			}
			accessBlock(master, k, k, true) // pivot block
			if k+1 >= nb {
				break
			}
			// Parallel trailing update over block columns.
			team.ParallelFor(master, k+1, nb, numamig.StaticSchedule(),
				func(t *numamig.Task, j int) {
					accessBlock(t, k, j, true)
					for i := k + 1; i < nb; i++ {
						accessBlock(t, i, j, true)
						t.P.Sleep(numamig.FromSeconds(2 * float64(b) * float64(b) * float64(b) / 1.15e9))
					}
				})
		}
		dur = master.P.Now() - start
	})
	if err != nil {
		panic(err)
	}
	return dur
}
