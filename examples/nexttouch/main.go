// nexttouch compares the paper's three migration strategies on the same
// task: a worker thread on a remote node starts reading a buffer that
// lives on node 0.
//
//   - sync: move_pages before computing (must know what to move)
//   - user next-touch: mprotect+SIGSEGV library migrates the whole
//     buffer at first touch
//   - kernel next-touch: madvise mark, fault-time page migration
//
// It prints throughput and the cost breakdown behind Figures 6(a)/6(b).
//
//	go run ./examples/nexttouch
package main

import (
	"fmt"

	"numamig"
)

const pages = 2048

func main() {
	fmt.Printf("migrating a %d-page (%d MB) buffer node0 -> node1\n\n",
		pages, pages*numamig.PageSize>>20)
	runSync()
	runUserNT(true)
	runUserNT(false)
	runKernelNT()
}

func setup(sys *numamig.System, t *numamig.Task) *numamig.Buffer {
	buf := numamig.MustAlloc(t, pages*numamig.PageSize, numamig.Bind(0))
	if err := buf.Prefault(t); err != nil {
		panic(err)
	}
	return buf
}

func report(name string, sys *numamig.System, d numamig.Time, acct *numamig.Acct) {
	fmt.Printf("%-28s %7.1f MB/s", name, float64(pages*numamig.PageSize)/d.Seconds()/1e6)
	if acct != nil {
		fmt.Print("   breakdown:")
		for _, cat := range acct.Categories() {
			if p := acct.Percent(cat); p >= 0.5 {
				fmt.Printf(" %s %.0f%%", cat, p)
			}
		}
	}
	fmt.Println()
}

func runSync() {
	sys := numamig.New(numamig.Config{})
	var d numamig.Time
	must(sys.RunOn(4, func(t *numamig.Task) { // node 1
		buf := setup(sys, t)
		start := t.P.Now()
		must(buf.MoveTo(t, 1, true))
		d = t.P.Now() - start
	}))
	report("synchronous move_pages", sys, d, nil)
}

func runUserNT(patched bool) {
	sys := numamig.New(numamig.Config{})
	u := sys.NewUserNT(patched)
	acct := numamig.NewAcct()
	var d numamig.Time
	must(sys.RunOn(4, func(t *numamig.Task) {
		buf := setup(sys, t)
		t.P.SetAcct(acct)
		start := t.P.Now()
		must(u.Mark(t, buf.Region()))
		if _, err := t.FaultIn(buf.Base, buf.Size, false); err != nil {
			panic(err)
		}
		d = t.P.Now() - start
	}))
	name := "user next-touch"
	if !patched {
		name += " (no patch)"
	}
	report(name, sys, d, acct)
}

func runKernelNT() {
	sys := numamig.New(numamig.Config{})
	nt := sys.NewKernelNT()
	acct := numamig.NewAcct()
	var d numamig.Time
	must(sys.RunOn(4, func(t *numamig.Task) {
		buf := setup(sys, t)
		t.P.SetAcct(acct)
		start := t.P.Now()
		if _, err := nt.Mark(t, buf.Region()); err != nil {
			panic(err)
		}
		if _, err := t.FaultIn(buf.Base, buf.Size, false); err != nil {
			panic(err)
		}
		d = t.P.Now() - start
	}))
	report("kernel next-touch", sys, d, acct)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
